// lyric_stats — offline inspection of LyriC metrics snapshots.
//
//   $ lyric_stats snapshot.json              pretty-print one snapshot
//   $ lyric_stats --diff old.json new.json   per-metric deltas
//   $ lyric_stats --check-prom file.prom     validate a Prometheus dump
//
// Snapshots are what Registry::ExportJson / LYRIC_METRICS_OUT write (the
// shell's `.metrics json PATH` too). --check-prom runs the same validator
// the ctest exposition gate uses, so CI and operators agree on what a
// well-formed dump is. The JSON reader below covers exactly the subset the
// exporter emits (objects of numbers, two levels deep) — not a general
// JSON library, on purpose: this tool must build with no dependencies.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "obs/metrics.h"

namespace {

struct JsonValue {
  bool is_object = false;
  double num = 0;
  std::map<std::string, JsonValue> members;
};

// Minimal recursive-descent parser for the exporter's subset: objects,
// numbers, and escaped strings as keys. Returns false with a message on
// anything else.
class SnapshotParser {
 public:
  explicit SnapshotParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    bool ok = ParseValue(out) && (SkipWs(), pos_ == text_.size());
    if (!ok && error != nullptr) {
      *error = "parse error near byte " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    if (text_[pos_] == '{') return ParseObject(out);
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->is_object = true;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!ParseValue(&out->members[key])) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'u':
            // Keys the exporter writes never need non-ASCII escapes;
            // decode the common case and keep the raw text otherwise.
            if (pos_ + 4 <= text_.size()) {
              out->append("\\u").append(text_, pos_, 4);
              pos_ += 4;
            }
            break;
          default: out->push_back(esc); break;
        }
        continue;
      }
      out->push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out->num = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool LoadSnapshot(const std::string& path, JsonValue* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::cerr << "lyric_stats: cannot read " << path << "\n";
    return false;
  }
  std::string error;
  if (!SnapshotParser(text).Parse(out, &error) || !out->is_object) {
    std::cerr << "lyric_stats: " << path << ": " << error << "\n";
    return false;
  }
  return true;
}

std::string FormatNum(double v) {
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

// The field order the pretty-printer and differ use for nested metrics;
// anything not listed prints after, alphabetically.
const char* const kFieldOrder[] = {"count", "sum",  "total_ns", "mean",
                                   "p50",   "p90",  "p99",      "p999",
                                   "max",   "max_ns"};

void PrintNested(const JsonValue& metric) {
  std::map<std::string, JsonValue> rest = metric.members;
  bool first = true;
  auto emit = [&](const std::string& field, double v) {
    std::cout << (first ? "" : ", ") << field << "=" << FormatNum(v);
    first = false;
  };
  for (const char* field : kFieldOrder) {
    auto it = rest.find(field);
    if (it == rest.end()) continue;
    emit(field, it->second.num);
    rest.erase(it);
  }
  for (const auto& [field, v] : rest) emit(field, v.num);
  std::cout << "\n";
}

int PrintSnapshot(const std::string& path) {
  JsonValue root;
  if (!LoadSnapshot(path, &root)) return 1;
  for (const auto& [section, metrics] : root.members) {
    if (metrics.members.empty()) continue;
    std::cout << section << ":\n";
    for (const auto& [name, metric] : metrics.members) {
      std::cout << "  " << name << ": ";
      if (metric.is_object) {
        PrintNested(metric);
      } else {
        std::cout << FormatNum(metric.num) << "\n";
      }
    }
  }
  return 0;
}

int DiffSnapshots(const std::string& old_path, const std::string& new_path) {
  JsonValue older, newer;
  if (!LoadSnapshot(old_path, &older) || !LoadSnapshot(new_path, &newer)) {
    return 1;
  }
  for (const auto& [section, metrics] : newer.members) {
    bool header = false;
    for (const auto& [name, metric] : metrics.members) {
      const JsonValue* before = nullptr;
      auto sit = older.members.find(section);
      if (sit != older.members.end()) {
        auto mit = sit->second.members.find(name);
        if (mit != sit->second.members.end()) before = &mit->second;
      }
      std::ostringstream line;
      if (!metric.is_object) {
        const double prev = before != nullptr ? before->num : 0;
        if (metric.num == prev) continue;
        line << FormatNum(prev) << " -> " << FormatNum(metric.num) << " ("
             << (metric.num >= prev ? "+" : "")
             << FormatNum(metric.num - prev) << ")";
      } else {
        // Nested metrics diff by count; the rest of the fields print at
        // their new values (percentiles are not subtractable).
        auto count = metric.members.find("count");
        const double now = count != metric.members.end() ? count->second.num : 0;
        double prev = 0;
        if (before != nullptr) {
          auto pc = before->members.find("count");
          if (pc != before->members.end()) prev = pc->second.num;
        }
        if (now == prev) continue;
        line << "count " << FormatNum(prev) << " -> " << FormatNum(now)
             << " (+" << FormatNum(now - prev) << "); now ";
        std::ostringstream tail;
        std::streambuf* saved = std::cout.rdbuf(tail.rdbuf());
        PrintNested(metric);
        std::cout.rdbuf(saved);
        std::string t = tail.str();
        if (!t.empty() && t.back() == '\n') t.pop_back();
        line << t;
      }
      if (!header) {
        std::cout << section << ":\n";
        header = true;
      }
      std::cout << "  " << name << ": " << line.str() << "\n";
    }
  }
  return 0;
}

int CheckProm(const std::string& path) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::cerr << "lyric_stats: cannot read " << path << "\n";
    return 1;
  }
  std::string error;
  if (!lyric::obs::ValidatePrometheusExposition(text, &error)) {
    std::cerr << "lyric_stats: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << path << ": ok\n";
  return 0;
}

int Usage() {
  std::cerr << "usage: lyric_stats SNAPSHOT.json\n"
               "       lyric_stats --diff OLD.json NEW.json\n"
               "       lyric_stats --check-prom FILE.prom\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && argv[1][0] != '-') return PrintSnapshot(argv[1]);
  if (argc == 4 && std::string(argv[1]) == "--diff") {
    return DiffSnapshots(argv[2], argv[3]);
  }
  if (argc == 3 && std::string(argv[1]) == "--check-prom") {
    return CheckProm(argv[2]);
  }
  return Usage();
}
