// lyric_loadgen: replay the paper query suite against lyric_serverd at
// configurable concurrency and rate, verifying every response against a
// direct in-process evaluation and emitting BENCH_server.json.
//
//   lyric_loadgen [--clients 1,8,64] [--rounds 5] [--qps 0]
//                 [--scale 12] [--exec-threads 4] [--max-concurrent 0]
//                 [--retries 8] [--retry-base-ms 1]
//                 [--connect HOST:PORT]
//                 [--out BENCH_server.json]
//
// The tool starts an in-process server over the Figure 2 office database
// (scaled with --scale extra desks), pre-computes the expected
// serial-evaluation fingerprint for every suite query, then for each
// client count spawns that many threads, each owning one net::Client.
// Every response's Fingerprint() must byte-match the expectation —
// a mismatch is a correctness failure and the exit code is non-zero.
//
// With --connect HOST:PORT no in-process server is started: the load is
// driven against a running lyric_serverd (which must serve the same
// office database at the same --scale, e.g. one hydrated from a store
// seeded by this tool's suite). The chaos harness and the operating
// docs use this mode; reconnects and in_flight_at_disconnect in the
// JSON tell how the external server's restarts/drains treated us.
//
// With --max-concurrent > 0 the server's scheduler sheds under the
// 64-client burst; clients absorb sheds with their RetryPolicy (honoring
// retry-after hints), and responses that still end shed after the final
// retry are counted (shed_final) rather than failed — a shed is the
// admission contract working, not a wrong answer.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/scheduler.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace {

using lyric::Database;
using lyric::EvalOptions;
using lyric::Evaluator;
using lyric::Result;
using lyric::ResultSet;
using lyric::Status;

/// The §4.1 worked examples plus scaled-database sweeps — the same suite
/// the differential tests replay (tests/parallel_diff_test.cc).
const char* kSuite[] = {
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and x = 6 and "
    "y = 4) FROM Office_Object CO WHERE CO.extent[E] and CO.translation[D]",
    "SELECT O FROM Object_in_Room O "
    "WHERE O.location[L] and L(x, y) |= x <= 12",
    "SELECT O FROM Object_in_Room O",
};
constexpr size_t kSuiteSize = sizeof(kSuite) / sizeof(kSuite[0]);

struct Options {
  std::vector<int> client_counts = {1, 8, 64};
  int rounds = 5;
  double qps = 0;  // 0 = unpaced
  int scale = 12;
  size_t exec_threads = 4;
  uint64_t max_concurrent = 0;  // 0 = unlimited (no shedding)
  uint64_t queue_capacity = 0;  // 0 = scheduler default
  uint32_t retries = 8;
  uint64_t retry_base_ms = 1;
  std::string connect;  // "host:port" -> drive an external server
  std::string out = "BENCH_server.json";
};

std::vector<int> ParseIntList(const std::string& text) {
  std::vector<int> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::atoi(item.c_str()));
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "loadgen: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--clients") {
      const char* v = next("--clients");
      if (v == nullptr) return false;
      opt->client_counts = ParseIntList(v);
    } else if (arg == "--rounds") {
      const char* v = next("--rounds");
      if (v == nullptr) return false;
      opt->rounds = std::atoi(v);
    } else if (arg == "--qps") {
      const char* v = next("--qps");
      if (v == nullptr) return false;
      opt->qps = std::atof(v);
    } else if (arg == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return false;
      opt->scale = std::atoi(v);
    } else if (arg == "--exec-threads") {
      const char* v = next("--exec-threads");
      if (v == nullptr) return false;
      opt->exec_threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--max-concurrent") {
      const char* v = next("--max-concurrent");
      if (v == nullptr) return false;
      opt->max_concurrent = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--queue-capacity") {
      const char* v = next("--queue-capacity");
      if (v == nullptr) return false;
      opt->queue_capacity = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--retries") {
      const char* v = next("--retries");
      if (v == nullptr) return false;
      opt->retries = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--retry-base-ms") {
      const char* v = next("--retry-base-ms");
      if (v == nullptr) return false;
      opt->retry_base_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--connect") {
      const char* v = next("--connect");
      if (v == nullptr) return false;
      opt->connect = v;
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      opt->out = v;
    } else if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: lyric_loadgen [--clients 1,8,64] [--rounds N] "
                   "[--qps Q] [--scale N] [--exec-threads N] "
                   "[--max-concurrent N] [--retries N] [--retry-base-ms MS] "
                   "[--connect HOST:PORT] [--out FILE]\n";
      return false;
    } else {
      std::cerr << "loadgen: unknown flag " << arg << "\n";
      return false;
    }
  }
  return true;
}

/// What one client thread observed over the whole run.
struct WorkerResult {
  std::vector<uint64_t> latencies_us;
  uint64_t ok = 0;
  uint64_t shed_final = 0;   ///< Shed even after the last retry.
  uint64_t mismatches = 0;   ///< Fingerprint diverged — a real bug.
  uint64_t errors = 0;       ///< Transport/protocol failures.
  lyric::net::ClientStats client_stats;
};

uint64_t Percentile(std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return 2;

  Database db;
  auto ids = lyric::office::BuildOfficeDatabase(&db);
  if (!ids.ok()) {
    std::cerr << "loadgen: office db: " << ids.status().ToString() << "\n";
    return 2;
  }
  if (opt.scale > 0) {
    Status st = lyric::office::AddScaledDesks(&db, opt.scale, /*seed=*/7);
    if (!st.ok()) {
      std::cerr << "loadgen: scale: " << st.ToString() << "\n";
      return 2;
    }
  }

  // Requests pin threads=1 so the contract under test is the strongest
  // one: every concurrent response byte-identical to a serial run.
  EvalOptions base;
  base.threads = 1;

  // Expected fingerprints from direct in-process evaluation. Evaluating
  // against the same Database the server serves is safe: the suite is
  // read-only and CST interning is content-addressed (order-independent).
  std::vector<std::string> expected(kSuiteSize);
  for (size_t i = 0; i < kSuiteSize; ++i) {
    Evaluator ev(&db, base);
    expected[i] =
        lyric::net::ResponseFromResult(ev.Execute(kSuite[i])).Fingerprint();
  }

  lyric::exec::SchedulerLimits limits;
  if (opt.max_concurrent > 0) limits.max_concurrent = opt.max_concurrent;
  if (opt.queue_capacity > 0) limits.queue_capacity = opt.queue_capacity;
  lyric::exec::QueryScheduler scheduler(limits);

  // --connect drives a running lyric_serverd; otherwise the load runs
  // against an in-process server over the same database.
  std::string target_host = "127.0.0.1";
  uint16_t target_port = 0;
  std::unique_ptr<lyric::net::Server> server;
  if (!opt.connect.empty()) {
    const size_t colon = opt.connect.rfind(':');
    if (colon == std::string::npos || colon + 1 >= opt.connect.size()) {
      std::cerr << "loadgen: --connect wants HOST:PORT, got '" << opt.connect
                << "'\n";
      return 2;
    }
    target_host = opt.connect.substr(0, colon);
    target_port = static_cast<uint16_t>(
        std::atoi(opt.connect.c_str() + colon + 1));
  } else {
    lyric::net::ServerOptions server_options;
    server_options.exec_threads = opt.exec_threads;
    server_options.eval = base;
    server_options.scheduler = &scheduler;
    server = std::make_unique<lyric::net::Server>(&db, server_options);
    Status st = server->Start();
    if (!st.ok()) {
      std::cerr << "loadgen: server start: " << st.ToString() << "\n";
      return 2;
    }
    target_port = server->port();
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"server\",\n";
  json << "  \"suite_queries\": " << kSuiteSize << ",\n";
  json << "  \"rounds\": " << opt.rounds << ",\n";
  json << "  \"scale\": " << opt.scale << ",\n";
  json << "  \"exec_threads\": " << opt.exec_threads << ",\n";
  json << "  \"max_concurrent\": " << opt.max_concurrent << ",\n";
  json << "  \"configs\": [\n";

  bool failed = false;
  for (size_t cfg = 0; cfg < opt.client_counts.size(); ++cfg) {
    const int n_clients = opt.client_counts[cfg];
    std::vector<WorkerResult> results(static_cast<size_t>(n_clients));
    const auto wall_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> workers;
      workers.reserve(static_cast<size_t>(n_clients));
      for (int c = 0; c < n_clients; ++c) {
        workers.emplace_back([&, c] {
          WorkerResult& wr = results[static_cast<size_t>(c)];
          lyric::net::ClientOptions copt;
          copt.host = target_host;
          copt.port = target_port;
          copt.threads = 1;
          copt.retry.max_retries = opt.retries;
          copt.retry.base_backoff_ms = opt.retry_base_ms;
          copt.retry.seed = static_cast<uint64_t>(c) + 1;
          lyric::net::Client client(copt);
          const auto interval =
              opt.qps > 0 ? std::chrono::microseconds(static_cast<int64_t>(
                                1e6 / opt.qps))
                          : std::chrono::microseconds(0);
          auto next_tick = std::chrono::steady_clock::now();
          for (int round = 0; round < opt.rounds; ++round) {
            for (size_t q = 0; q < kSuiteSize; ++q) {
              if (interval.count() > 0) {
                std::this_thread::sleep_until(next_tick);
                next_tick += interval;
              }
              const auto t0 = std::chrono::steady_clock::now();
              Result<lyric::net::QueryResponse> resp =
                  client.Execute(kSuite[q]);
              const auto t1 = std::chrono::steady_clock::now();
              wr.latencies_us.push_back(static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(t1 -
                                                                        t0)
                      .count()));
              if (!resp.ok()) {
                ++wr.errors;
                continue;
              }
              if (resp->status.IsUnavailable()) {
                ++wr.shed_final;
                continue;
              }
              if (resp->Fingerprint() == expected[q]) {
                ++wr.ok;
              } else {
                ++wr.mismatches;
              }
            }
          }
          wr.client_stats = client.stats();
        });
      }
      for (std::thread& t : workers) t.join();
    }
    const uint64_t wall_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());

    std::vector<uint64_t> latencies;
    uint64_t ok = 0, shed_final = 0, mismatches = 0, errors = 0;
    uint64_t shed_responses = 0, wire_sends = 0, requests = 0;
    uint64_t reconnects = 0, in_flight_at_disconnect = 0;
    for (const WorkerResult& wr : results) {
      latencies.insert(latencies.end(), wr.latencies_us.begin(),
                       wr.latencies_us.end());
      ok += wr.ok;
      shed_final += wr.shed_final;
      mismatches += wr.mismatches;
      errors += wr.errors;
      shed_responses += wr.client_stats.shed_responses;
      wire_sends += wr.client_stats.sends;
      requests += wr.client_stats.requests;
      reconnects += wr.client_stats.reconnects;
      in_flight_at_disconnect += wr.client_stats.in_flight_at_disconnect;
    }
    std::sort(latencies.begin(), latencies.end());
    const uint64_t p50 = Percentile(latencies, 0.50);
    const uint64_t p99 = Percentile(latencies, 0.99);

    if (mismatches > 0 || errors > 0) failed = true;

    json << "    {\"clients\": " << n_clients << ", \"requests\": " << requests
         << ", \"wire_sends\": " << wire_sends << ", \"ok\": " << ok
         << ", \"shed_responses\": " << shed_responses
         << ", \"shed_final\": " << shed_final
         << ", \"mismatches\": " << mismatches << ", \"errors\": " << errors
         << ", \"reconnects\": " << reconnects
         << ", \"in_flight_at_disconnect\": " << in_flight_at_disconnect
         << ", \"p50_us\": " << p50 << ", \"p99_us\": " << p99
         << ", \"wall_ms\": " << wall_ms << "}"
         << (cfg + 1 < opt.client_counts.size() ? "," : "") << "\n";

    std::cout << "clients=" << n_clients << " requests=" << requests
              << " ok=" << ok << " shed=" << shed_responses << " (final "
              << shed_final << ") mismatches=" << mismatches
              << " errors=" << errors << " reconnects=" << reconnects
              << " in_flight_at_disconnect=" << in_flight_at_disconnect
              << " p50=" << p50 << "us p99=" << p99
              << "us wall=" << wall_ms << "ms\n";
  }

  json << "  ]\n}\n";
  if (server) server->Stop();

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "loadgen: cannot write " << opt.out << "\n";
    return 2;
  }
  out << json.str();
  std::cout << "wrote " << opt.out << "\n";

  if (failed) {
    std::cerr << "loadgen: FAILED (mismatches or transport errors)\n";
    return 1;
  }
  return 0;
}
