// lyric_check — batch linter for LyriC query files.
//
//   $ lyric_check [options] FILE_OR_DIR...
//
// Reads .lyric files (a directory argument is scanned recursively), splits
// each into queries on top-level ';', and runs the full static analysis:
// parse, schema/typing checks, and the §3 constraint-family pass. Exits
// non-zero when any file has an error-severity finding; warnings and notes
// are reported but do not fail the run.
//
// Options:
//   --format=text|json   output style (default text: carets under spans)
//   --db=PATH            lint against a serialized database's schema
//                        (default: the bundled Figure 1/2 office schema)
//   --codes              print the LY0xx code inventory and exit
//   --quiet              suppress notes (family tags); keep warnings/errors

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/scheduler.h"
#include "office/office_db.h"
#include "query/analyzer.h"
#include "query/diagnostics.h"
#include "storage/serializer.h"

using namespace lyric;  // NOLINT - tool code.

namespace {

struct Options {
  bool json = false;
  bool quiet = false;
  std::string db_path;
  std::vector<std::string> inputs;
};

// Splits a file into queries on top-level ';' (string literals and
// "--" comments respected), recording each chunk's byte offset so that
// diagnostics can be shifted back into whole-file coordinates.
struct Chunk {
  std::string text;
  size_t offset = 0;
};

std::vector<Chunk> SplitQueries(const std::string& source) {
  std::vector<Chunk> chunks;
  size_t begin = 0;
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    char c = source[i];
    if (c == '\'') {  // String literal; '' escapes a quote.
      ++i;
      while (i < n) {
        if (source[i] == '\'') {
          if (i + 1 < n && source[i + 1] == '\'') {
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == ';') {
      chunks.push_back({source.substr(begin, i + 1 - begin), begin});
      ++i;
      begin = i;
      continue;
    }
    ++i;
  }
  if (begin < n) chunks.push_back({source.substr(begin), begin});
  // Drop chunks that hold no query (whitespace / comments only).
  std::vector<Chunk> out;
  for (Chunk& chunk : chunks) {
    size_t j = 0;
    bool blank = true;
    while (j < chunk.text.size()) {
      char c = chunk.text[j];
      if (c == '-' && j + 1 < chunk.text.size() &&
          chunk.text[j + 1] == '-') {
        while (j < chunk.text.size() && chunk.text[j] != '\n') ++j;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(c)) && c != ';') {
        blank = false;
        break;
      }
      ++j;
    }
    if (!blank) out.push_back(std::move(chunk));
  }
  return out;
}

// Lints one file; returns its diagnostics in whole-file coordinates.
std::vector<Diagnostic> LintFile(const Database& db,
                                 const std::string& source) {
  std::vector<Diagnostic> all;
  for (const Chunk& chunk : SplitQueries(source)) {
    CheckResult result = CheckQueryText(db, chunk.text);
    for (Diagnostic& diag : result.diagnostics) {
      diag.span.offset += chunk.offset;
      all.push_back(std::move(diag));
    }
  }
  return all;
}

void PrintCodes() {
  const DiagCode codes[] = {
      DiagCode::kLexError, DiagCode::kSyntaxError, DiagCode::kUnknownClass,
      DiagCode::kUnknownAttribute, DiagCode::kUseBeforeBind,
      DiagCode::kClassConflict, DiagCode::kNotNumeric,
      DiagCode::kNotCstPredicate, DiagCode::kArityMismatch,
      DiagCode::kUnboundOidVar, DiagCode::kUnknownViewParent,
      DiagCode::kUnknownSigTarget, DiagCode::kViewExists,
      DiagCode::kBadSelectFormula, DiagCode::kUnknownSymbolicOid,
      DiagCode::kAttributeVariable, DiagCode::kDuplicateFromVar,
      DiagCode::kDynamicCstAttribute, DiagCode::kFamilyInfo,
      DiagCode::kUnrestrictedProjection, DiagCode::kDisjunctiveEntailment,
      DiagCode::kDnfBlowup, DiagCode::kNonConjunctiveNegation,
      DiagCode::kDisjunctiveOptimize,
  };
  for (DiagCode code : codes) {
    std::cout << DiagCodeToString(code) << "  "
              << SeverityToString(DiagCodeDefaultSeverity(code)) << "  "
              << DiagCodeTitle(code) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--format=json") {
      opts.json = true;
    } else if (arg == "--format=text") {
      opts.json = false;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg.rfind("--db=", 0) == 0) {
      opts.db_path = arg.substr(5);
    } else if (arg == "--codes") {
      PrintCodes();
      return 0;
    } else if (arg == "--help") {
      std::cout << "usage: lyric_check [--format=text|json] [--db=PATH] "
                   "[--quiet] [--codes] FILE_OR_DIR...\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option " << arg << " (--help)\n";
      return 2;
    } else {
      opts.inputs.push_back(arg);
    }
  }
  if (opts.inputs.empty()) {
    std::cerr << "lyric_check: no inputs (--help)\n";
    return 2;
  }

  Database db;
  if (opts.db_path.empty()) {
    if (auto ids = office::BuildOfficeDatabase(&db); !ids.ok()) {
      std::cerr << "internal: office schema failed: " << ids.status()
                << "\n";
      return 2;
    }
  } else {
    // Batch runs retry transient (kUnavailable) load failures under the
    // env-configured policy; each attempt parses into a fresh scratch
    // database so a retry starts clean.
    auto st = exec::RunWithRetry(exec::RetryPolicy::FromEnv(), [&] {
      Database scratch;
      Status attempt = Serializer::LoadFromFile(opts.db_path, &scratch);
      if (attempt.ok()) db = std::move(scratch);
      return attempt;
    });
    if (!st.ok()) {
      std::cerr << "could not load " << opts.db_path << ": " << st << "\n";
      return 2;
    }
  }

  // Expand directories into .lyric files, sorted for stable output.
  std::vector<std::string> files;
  for (const std::string& input : opts.inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(input, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".lyric") {
          files.push_back(entry.path().string());
        }
      }
    } else {
      files.push_back(input);
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "lyric_check: no .lyric files found\n";
    return 2;
  }

  size_t total_errors = 0;
  size_t total_warnings = 0;
  bool first_json = true;
  if (opts.json) std::cout << "[";
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "could not read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();

    // Per-file exception firewall: a malformed file that trips an
    // unexpected throw (including std::bad_alloc on a pathological input)
    // is reported as a failure for that file, and the run moves on to the
    // remaining inputs instead of crashing the whole batch.
    std::vector<Diagnostic> diags;
    try {
      diags = LintFile(db, source);
    } catch (const std::bad_alloc&) {
      std::cerr << file << ": out of memory while linting; skipped\n";
      ++total_errors;
      continue;
    } catch (const std::exception& e) {
      std::cerr << file << ": unexpected exception: " << e.what() << "\n";
      ++total_errors;
      continue;
    } catch (...) {
      std::cerr << file << ": unknown exception while linting\n";
      ++total_errors;
      continue;
    }
    if (opts.quiet) {
      std::erase_if(diags, [](const Diagnostic& d) {
        return d.severity == Severity::kNote;
      });
    }
    total_errors += CountSeverity(diags, Severity::kError);
    total_warnings += CountSeverity(diags, Severity::kWarning);
    if (opts.json) {
      // DiagnosticsToJson emits one array per file; splice its elements
      // into the combined array.
      std::string body = DiagnosticsToJson(source, diags, file);
      if (body.size() > 2) {  // Not "[]": strip the brackets and append.
        if (!first_json) std::cout << ",";
        std::cout << body.substr(1, body.size() - 2);
        first_json = false;
      }
    } else {
      std::cout << RenderDiagnostics(source, diags, file);
    }
  }
  if (opts.json) std::cout << "]\n";
  if (!opts.json) {
    std::cout << files.size() << " file" << (files.size() == 1 ? "" : "s")
              << " checked: " << total_errors << " error"
              << (total_errors == 1 ? "" : "s") << ", " << total_warnings
              << " warning" << (total_warnings == 1 ? "" : "s") << "\n";
  }
  return total_errors == 0 ? 0 : 1;
}
