// lyric_shell — an interactive LyriC session.
//
//   $ lyric_shell [database.lyricdb]
//   lyric> SELECT Y FROM Desk X WHERE X.drawer.extent[Y];
//   lyric> .classes
//   lyric> .save office.lyricdb
//
// Dot commands:
//   .help                this text
//   .classes             list schema classes
//   .schema CLASS        show one class definition
//   .objects [CLASS]     list stored objects (optionally of one class)
//   .office              load the bundled Figure 1/2 office database
//   .analyze QUERY       run the static analyzer only
//   .check QUERY         lint: diagnostics with carets + §3 families
//   .stats               engine counters accumulated this session
//   .metrics [prom|json] [PATH]
//                        dump the metrics registry (Prometheus text or
//                        JSON), to stdout or PATH
//   .log [N]             last N per-query log records as JSONL
//   .profile QUERY       run QUERY with tracing: stage breakdown + counters
//   .trace on PATH       write a Chrome trace JSON per query to PATH
//   .trace off           stop writing traces
//   .threads [N]         show or set evaluator worker threads (1 = serial)
//   .cache [N|clear]     solver memo cache: stats, re-bound, or clear
//   .deadline [MS|off]   show or set the per-query wall-clock deadline
//   .budget [BYTES|off]  show or set the per-query kernel memory budget
//   .admit [MAX [QUEUE [TIMEOUT_MS]]] | off
//                        admission control: cap concurrent queries,
//                        bound the wait queue, show live scheduler state
//   .load PATH / .save PATH
//   .open PATH           attach a crash-safe paged store (docs/STORAGE.md):
//                        a non-empty store loads into the session; an empty
//                        one is seeded from the session database
//   .checkpoint          rewrite the attached store from the session
//                        database and checkpoint it (fsynced, WAL truncated)
//   .close               checkpoint and detach the store
//   .quit
// Anything else is parsed as a LyriC query and evaluated.
//
// Every statement runs inside an exception firewall: an unexpected throw
// (including std::bad_alloc) reports an error and returns to the prompt
// with the database intact, instead of killing the session.

#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <new>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "constraint/solver_cache.h"
#include "exec/scheduler.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "office/office_db.h"
#include "query/analyzer.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "storage/paged_store.h"
#include "storage/serializer.h"
#include "util/fault.h"
#include "util/string_util.h"

using namespace lyric;  // NOLINT - tool code.

namespace {

// .checkpoint/.close: make the attached store mirror the session
// database exactly — delete every record, re-import, checkpoint. The
// deletes and the re-import land in one commit, so a crash mid-rewrite
// recovers either the old snapshot or the new one, never a blend.
Status RewriteStore(storage::PagedStore* store, const Database& db) {
  std::vector<std::string> keys;
  LYRIC_RETURN_NOT_OK(
      store->Scan("", [&](std::string_view k, std::string_view) {
        keys.emplace_back(k);
        return Result<bool>(true);
      }));
  for (const std::string& k : keys) {
    LYRIC_RETURN_NOT_OK(store->Delete(k));
  }
  LYRIC_RETURN_NOT_OK(store->ImportDatabase(db));
  return store->Checkpoint();
}

void PrintClasses(const Database& db) {
  for (const std::string& name : db.schema().ClassNames()) {
    std::cout << "  " << name << "\n";
  }
}

void PrintSchema(const Database& db, const std::string& cls) {
  auto def = db.schema().GetClass(cls);
  if (!def.ok()) {
    std::cout << def.status() << "\n";
    return;
  }
  std::cout << "CLASS " << (*def)->name;
  if (!(*def)->interface_vars.empty()) {
    std::cout << " (" << Join((*def)->interface_vars, ", ") << ")";
  }
  if (!(*def)->parents.empty()) {
    std::cout << " ISA " << Join((*def)->parents, ", ");
  }
  std::cout << "\n";
  auto attrs = db.schema().AllAttributes(cls);
  if (attrs.ok()) {
    for (const AttributeDef* a : *attrs) {
      std::cout << "  " << a->name << (a->set_valued ? "*" : "") << " : "
                << (a->IsCst() ? "CST" : a->target_class);
      if (!a->variables.empty()) {
        std::cout << " (" << Join(a->variables, ", ") << ")";
      }
      std::cout << "\n";
    }
  }
  for (const std::string& m :
       db.methods().VisibleMethods(db.schema(), cls)) {
    std::cout << "  " << m << "()  [method]\n";
  }
}

void PrintObjects(const Database& db, const std::string& cls) {
  std::vector<Oid> oids =
      cls.empty() ? db.AllObjects() : db.Extent(cls);
  for (const Oid& oid : oids) {
    auto c = db.ClassOf(oid);
    std::cout << "  " << oid.ToString() << " : "
              << (c.ok() ? *c : std::string("?")) << "\n";
  }
  std::cout << "(" << oids.size() << " objects, " << db.CstCount()
            << " constraints interned)\n";
}

// Parses a `.deadline`/`.budget` argument; prints usage on garbage.
void SetLimit(const std::string& cmd, const std::string& arg,
              const char* unit, std::optional<uint64_t>* limit) {
  if (arg.empty()) {
    if (limit->has_value()) {
      std::cout << cmd << " = " << **limit << unit << "\n";
    } else {
      std::cout << cmd << " = off\n";
    }
    return;
  }
  if (arg == "off") {
    limit->reset();
    std::cout << cmd << " = off\n";
    return;
  }
  char* end = nullptr;
  unsigned long long n = std::strtoull(arg.c_str(), &end, 10);
  if (end == arg.c_str() || *end != '\0' || n == 0) {
    std::cout << "usage: " << cmd << " [N|off]\n";
    return;
  }
  *limit = static_cast<uint64_t>(n);
  std::cout << cmd << " = " << n << unit << "\n";
}

std::string LimitToString(const std::optional<uint64_t>& v,
                          const char* unit) {
  return v.has_value() ? std::to_string(*v) + unit : std::string("off");
}

// The operator's live view: the knobs `.deadline`/`.budget`/`.threads`/
// `.cache`/`.admit` actually apply to the next statement, plus the
// process-wide scheduler ledger — so `.stats` shows effective limits, not
// just counters.
void PrintEffectiveLimits(size_t threads,
                          const std::optional<uint64_t>& deadline_ms,
                          const std::optional<uint64_t>& budget) {
  exec::QueryScheduler& sched = exec::QueryScheduler::Global();
  exec::SchedulerLimits sl = sched.limits();
  const exec::RetryPolicy& rp = exec::RetryPolicy::FromEnv();
  std::cout << "effective limits:\n"
            << "  deadline = " << LimitToString(deadline_ms, "ms")
            << " | budget = " << LimitToString(budget, "B")
            << " | threads = " << threads
            << " | cache = " << SolverCache::Global().capacity()
            << " entries\n"
            << "  admit: max_concurrent = "
            << LimitToString(sl.max_concurrent, "")
            << " | queue = " << LimitToString(sl.queue_capacity, "")
            << " | timeout = " << LimitToString(sl.queue_timeout_ms, "ms")
            << " | ledger = " << LimitToString(sl.max_total_memory, "B")
            << "\n  retry: max = " << rp.max_retries
            << " | base = " << rp.base_backoff_ms << "ms\n  "
            << sched.stats().ToString() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  if (auto st = RegisterBuiltinCstMethods(&db); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  if (argc > 1) {
    Database fresh;
    if (auto st = Serializer::LoadFromFile(argv[1], &fresh); !st.ok()) {
      std::cerr << "could not load " << argv[1] << ": " << st << "\n";
      return 1;
    }
    db = std::move(fresh);
    (void)RegisterBuiltinCstMethods(&db);
    std::cout << "loaded " << db.ObjectCount() << " objects from "
              << argv[1] << "\n";
  }

  std::cout << "LyriC shell — .help for commands, .quit to exit\n";
  std::string line;
  std::string pending;
  std::string trace_path;  // non-empty: write a Chrome trace per query
  size_t threads = DefaultEvalThreads();  // worker threads per query
  // Per-query governor limits; the defaults pick up LYRIC_DEADLINE_MS /
  // LYRIC_MEMORY_BUDGET through EvalOptions.
  std::optional<uint64_t> deadline_ms = EvalOptions{}.deadline_ms;
  std::optional<uint64_t> budget = EvalOptions{}.memory_budget;
  // Attached crash-safe paged store (.open / .checkpoint / .close).
  std::unique_ptr<storage::PagedStore> pstore;
  while (true) {
    std::cout << (pending.empty() ? "lyric> " : "  ...> ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    // Per-statement exception firewall: break/continue below leave the
    // try block normally; only a throw reaches the handlers, which report
    // and return to the prompt with the session state intact.
    try {
    if (fault::Enabled() && fault::Inject(fault::kSiteShell)) {
      // Simulated allocation failure inside statement execution.
      throw std::bad_alloc();
    }
    // Dot commands act immediately.
    if (pending.empty() && !line.empty() && line[0] == '.') {
      std::istringstream ss(line);
      std::string cmd, arg;
      ss >> cmd;
      std::getline(ss, arg);
      while (!arg.empty() && arg.front() == ' ') arg.erase(arg.begin());
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        std::cout << "  .classes | .schema CLASS | .objects [CLASS] | "
                     ".office | .analyze QUERY | .load PATH | .save PATH | "
                     ".quit\n  .check QUERY         lint the query: LY0xx "
                     "diagnostics with carets,\n                       "
                     "inferred §3 constraint families, variable classes\n"
                     "  .stats               engine counters for this "
                     "session\n"
                     "  .metrics [prom|json] [PATH]\n"
                     "                       dump the metrics registry "
                     "(Prometheus text or JSON)\n"
                     "  .log [N]             last N per-query log records "
                     "as JSONL (default 10)\n"
                     "  .profile QUERY       stage timings + counter "
                     "deltas for one query\n  .trace on PATH       write a "
                     "Chrome trace JSON per query to PATH\n  .trace off       "
                     "    stop writing traces\n  .threads [N]         show or "
                     "set evaluator worker threads (1 = serial;\n             "
                     "          parallel results are byte-identical)\n"
                     "  .cache [N|clear]     solver memo cache: show stats, "
                     "re-bound to N\n                       entries (0 "
                     "disables), or drop all entries\n  .deadline [MS|off]   "
                     "per-query wall-clock deadline; a query that\n           "
                     "            exceeds it returns its partial rows\n"
                     "  .budget [BYTES|off]  per-query kernel memory budget\n"
                     "  .admit [MAX [QUEUE [TIMEOUT_MS]]] | .admit off\n"
                     "                       admission control: cap "
                     "concurrent queries, bound\n                       "
                     "the wait queue; bare .admit shows live state\n"
                     "  .open PATH | .checkpoint | .close\n"
                     "                       crash-safe paged store: attach "
                     "(load or seed),\n                       sync the "
                     "session into it, detach (docs/STORAGE.md)\n"
                     "  anything else: a LyriC query ending in ';'\n";
      } else if (cmd == ".stats") {
        std::cout << obs::Registry::Global().Snapshot().ToString();
        PrintEffectiveLimits(threads, deadline_ms, budget);
      } else if (cmd == ".metrics") {
        std::istringstream as(arg);
        std::string fmt, path;
        as >> fmt >> path;
        if (fmt.empty()) fmt = "prom";
        if (fmt != "prom" && fmt != "json") {
          std::cout << "usage: .metrics [prom|json] [PATH]\n";
        } else {
          const std::string dump =
              fmt == "prom" ? obs::Registry::Global().ExportPrometheus()
                            : obs::Registry::Global().ExportJson();
          if (path.empty()) {
            std::cout << dump;
          } else {
            std::ofstream out(path, std::ios::trunc);
            if (out) {
              out << dump;
              std::cout << "(metrics written to " << path << ")\n";
            } else {
              std::cout << "(could not open " << path << ")\n";
            }
          }
        }
      } else if (cmd == ".log") {
        size_t n = 10;
        bool ok_arg = true;
        if (!arg.empty()) {
          char* end = nullptr;
          unsigned long long v = std::strtoull(arg.c_str(), &end, 10);
          if (end == arg.c_str() || *end != '\0' || v == 0) {
            std::cout << "usage: .log [N]\n";
            ok_arg = false;
          } else {
            n = static_cast<size_t>(v);
          }
        }
        if (ok_arg) {
          obs::QueryLog& qlog = obs::QueryLog::Global();
          std::vector<obs::QueryLogRecord> recent = qlog.Recent(n);
          if (recent.empty()) {
            std::cout << "(query log empty)\n";
          } else {
            for (const obs::QueryLogRecord& rec : recent) {
              std::cout << rec.ToJson() << "\n";
            }
            std::cout << "(" << recent.size() << " of "
                      << qlog.total_appended() << " records)\n";
          }
        }
      } else if (cmd == ".threads") {
        if (arg.empty()) {
          std::cout << "threads = " << threads << "\n";
        } else {
          char* end = nullptr;
          unsigned long long n = std::strtoull(arg.c_str(), &end, 10);
          if (end == arg.c_str() || *end != '\0' || n == 0 || n > 64) {
            std::cout << "usage: .threads N  (1..64)\n";
          } else {
            threads = static_cast<size_t>(n);
            std::cout << "threads = " << threads
                      << (threads == 1 ? " (serial)" : "") << "\n";
          }
        }
      } else if (cmd == ".deadline") {
        SetLimit(".deadline", arg, "ms", &deadline_ms);
      } else if (cmd == ".budget") {
        SetLimit(".budget", arg, "B", &budget);
      } else if (cmd == ".admit") {
        exec::QueryScheduler& sched = exec::QueryScheduler::Global();
        if (arg.empty()) {
          PrintEffectiveLimits(threads, deadline_ms, budget);
        } else if (arg == "off") {
          sched.Configure(exec::SchedulerLimits{});
          std::cout << "admission control off\n";
        } else {
          std::istringstream as(arg);
          uint64_t max_concurrent = 0;
          if (!(as >> max_concurrent) || max_concurrent == 0) {
            std::cout << "usage: .admit [MAX [QUEUE [TIMEOUT_MS]]] | "
                         ".admit off\n";
          } else {
            exec::SchedulerLimits sl = sched.limits();
            sl.max_concurrent = max_concurrent;
            uint64_t queue = 0, timeout = 0;
            if (as >> queue) sl.queue_capacity = queue;
            if (as >> timeout) sl.queue_timeout_ms = timeout;
            sched.Configure(sl);
            std::cout << "admit: max_concurrent = "
                      << LimitToString(sl.max_concurrent, "")
                      << " | queue = "
                      << LimitToString(sl.queue_capacity, "")
                      << " | timeout = "
                      << LimitToString(sl.queue_timeout_ms, "ms") << "\n";
          }
        }
      } else if (cmd == ".cache") {
        SolverCache& cache = SolverCache::Global();
        if (arg.empty()) {
          std::cout << cache.stats().ToString() << "\n";
        } else if (arg == "clear") {
          cache.Clear();
          std::cout << "cache cleared\n";
        } else {
          char* end = nullptr;
          unsigned long long n = std::strtoull(arg.c_str(), &end, 10);
          if (end == arg.c_str() || *end != '\0') {
            std::cout << "usage: .cache | .cache CAPACITY | .cache clear\n";
          } else {
            cache.set_capacity(static_cast<size_t>(n));
            std::cout << cache.stats().ToString() << "\n";
          }
        }
      } else if (cmd == ".profile") {
        EvalOptions opts;
        opts.collect_trace = true;
        opts.threads = threads;
        opts.deadline_ms = deadline_ms;
        opts.memory_budget = budget;
        Evaluator ev(&db, opts);
        auto r = ev.Execute(arg);
        if (!r.ok()) {
          std::cout << r.status() << "\n";
          continue;
        }
        std::cout << r->ToString() << "\n";
        if (r->profile() != nullptr) {
          std::cout << r->profile()->ToString();
        }
      } else if (cmd == ".trace") {
        std::istringstream as(arg);
        std::string mode, path;
        as >> mode >> path;
        if (mode == "off") {
          trace_path.clear();
          std::cout << "tracing off\n";
        } else if (mode == "on" && !path.empty()) {
          trace_path = path;
          std::cout << "tracing to " << trace_path << "\n";
        } else {
          std::cout << "usage: .trace on PATH | .trace off\n";
        }
      } else if (cmd == ".classes") {
        PrintClasses(db);
      } else if (cmd == ".schema") {
        PrintSchema(db, arg);
      } else if (cmd == ".objects") {
        PrintObjects(db, arg);
      } else if (cmd == ".office") {
        Database fresh;
        auto ids = office::BuildOfficeDatabase(&fresh);
        if (ids.ok()) {
          db = std::move(fresh);
          (void)RegisterBuiltinCstMethods(&db);
          std::cout << "office database loaded\n";
        } else {
          std::cout << ids.status() << "\n";
        }
      } else if (cmd == ".check") {
        CheckResult check = CheckQueryText(db, arg);
        if (check.diagnostics.empty()) {
          std::cout << "clean: no findings\n";
        } else {
          std::cout << RenderDiagnostics(arg, check.diagnostics);
        }
        for (const auto& [var, cls] : check.var_classes) {
          std::cout << "  " << var << " : " << cls << "\n";
        }
        size_t errors = CountSeverity(check.diagnostics, Severity::kError);
        std::cout << (errors == 0 ? "ok" : "failed") << " ("
                  << errors << " error" << (errors == 1 ? "" : "s") << ", "
                  << CountSeverity(check.diagnostics, Severity::kWarning)
                  << " warnings, "
                  << CountSeverity(check.diagnostics, Severity::kNote)
                  << " notes)\n";
      } else if (cmd == ".analyze") {
        auto q = ParseQuery(arg);
        if (!q.ok()) {
          std::cout << q.status() << "\n";
          continue;
        }
        Analyzer an(&db);
        auto r = an.Analyze(*q);
        if (!r.ok()) {
          std::cout << r.status() << "\n";
          continue;
        }
        for (const auto& [var, cls] : r->var_classes) {
          std::cout << "  " << var << " : " << cls << "\n";
        }
        for (const std::string& w : r->warnings) {
          std::cout << "  warning: " << w << "\n";
        }
        std::cout << "ok\n";
      } else if (cmd == ".load") {
        // Transient (injected) load failures are retryable: each attempt
        // parses into its own scratch database (all-or-nothing), so a
        // retry always starts clean.
        Database fresh;
        auto st = exec::RunWithRetry(exec::RetryPolicy::FromEnv(), [&] {
          Database scratch;
          Status attempt = Serializer::LoadFromFile(arg, &scratch);
          if (attempt.ok()) fresh = std::move(scratch);
          return attempt;
        });
        if (st.ok()) {
          db = std::move(fresh);
          (void)RegisterBuiltinCstMethods(&db);
          std::cout << "loaded " << db.ObjectCount() << " objects\n";
        } else {
          std::cout << st << "\n";
        }
      } else if (cmd == ".save") {
        auto st = exec::RunWithRetry(
            exec::RetryPolicy::FromEnv(),
            [&] { return Serializer::SaveToFile(db, arg); });
        std::cout << (st.ok() ? "saved" : st.ToString()) << "\n";
      } else if (cmd == ".open") {
        if (arg.empty()) {
          std::cout << "usage: .open PATH\n";
        } else if (pstore != nullptr) {
          std::cout << "a store is already attached (" << pstore->path()
                    << "); .close it first\n";
        } else {
          auto store_or = storage::PagedStore::Open({.path = arg});
          if (!store_or.ok()) {
            std::cout << store_or.status() << "\n";
          } else {
            pstore = std::move(*store_or);
            const storage::RecoveryInfo& rec = pstore->recovery();
            if (rec.committed_txns > 0 || rec.torn_tail_bytes > 0) {
              std::cout << "recovered " << rec.committed_txns
                        << " committed transaction(s), " << rec.images_applied
                        << " page(s); ignored " << rec.torn_tail_bytes
                        << " torn byte(s)\n";
            }
            if (pstore->RecordCount() > 0) {
              // Non-empty store: its contents become the session.
              Database fresh;
              Status st = pstore->ExportToDatabase(&fresh);
              if (!st.ok()) {
                std::cout << st << "\n";
                pstore.reset();
              } else {
                db = std::move(fresh);
                (void)RegisterBuiltinCstMethods(&db);
                std::cout << "opened " << arg << ": loaded "
                          << db.ObjectCount() << " objects\n";
              }
            } else {
              // Empty store: seed it from the session.
              Status st = pstore->ImportDatabase(db);
              if (st.ok()) st = pstore->Checkpoint();
              if (!st.ok()) {
                std::cout << st << "\n";
                pstore.reset();
              } else {
                std::cout << "opened " << arg << ": seeded with "
                          << db.ObjectCount() << " objects\n";
              }
            }
          }
        }
      } else if (cmd == ".checkpoint") {
        if (pstore == nullptr) {
          std::cout << "no store attached (.open PATH)\n";
        } else {
          Status st = RewriteStore(pstore.get(), db);
          std::cout << (st.ok() ? "checkpointed" : st.ToString()) << "\n";
        }
      } else if (cmd == ".close") {
        if (pstore == nullptr) {
          std::cout << "no store attached\n";
        } else {
          Status st = RewriteStore(pstore.get(), db);
          if (st.ok()) st = pstore->Close();
          pstore.reset();
          std::cout << (st.ok() ? "closed" : st.ToString()) << "\n";
        }
      } else {
        std::cout << "unknown command " << cmd << " (.help)\n";
      }
      continue;
    }
    // Accumulate query text until a ';'.
    pending += line + "\n";
    if (line.find(';') == std::string::npos) continue;
    EvalOptions opts;
    opts.collect_trace = !trace_path.empty();
    opts.threads = threads;
    opts.deadline_ms = deadline_ms;
    opts.memory_budget = budget;
    Evaluator ev(&db, opts);
    auto r = ev.Execute(pending);
    pending.clear();
    if (!r.ok()) {
      std::cout << r.status() << "\n";
      continue;
    }
    if (!trace_path.empty() && r->profile() != nullptr) {
      std::ofstream out(trace_path, std::ios::trunc);
      if (out) {
        out << r->profile()->ToChromeTraceJson();
        std::cout << "(trace written to " << trace_path << ")\n";
      } else {
        std::cout << "(could not open " << trace_path << ")\n";
      }
    }
    std::cout << r->ToString() << "\n";
    for (const std::string& cls : ev.created_classes()) {
      std::cout << "created class " << cls << "\n";
    }
    } catch (const std::bad_alloc&) {
      std::cout << "error: out of memory executing statement; "
                   "session state preserved\n";
      pending.clear();
    } catch (const std::exception& e) {
      std::cout << "error: unexpected exception: " << e.what() << "\n";
      pending.clear();
    } catch (...) {
      std::cout << "error: unknown exception executing statement\n";
      pending.clear();
    }
  }
  return 0;
}
