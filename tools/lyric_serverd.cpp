// lyric_serverd: the standalone LyriC query server.
//
//   lyric_serverd [--host 127.0.0.1] [--port 7464] [--load dump.lyricdb]
//                 [--store store.lyricpg] [--scale N] [--exec-threads N]
//                 [--eval-threads N] [--max-rows N] [--max-concurrent N]
//                 [--queue-capacity N] [--queue-timeout-ms N]
//                 [--max-memory BYTES] [--drain-deadline-ms N]
//                 [--port-file PATH]
//
// Serves one of:
//   * --store PATH   a crash-safe PagedStore. Boot runs WAL redo
//                    recovery, then hydrates the serving database from
//                    the store; an empty store is seeded from --load or
//                    the built-in office database and the seed is
//                    committed before the listener opens. Schema
//                    mutations write through to the store before the
//                    client is acknowledged (docs/ROBUSTNESS.md).
//   * --load FILE    a persisted dump (storage-layer text format),
//                    memory-only.
//   * neither        the built-in Figure 2 office database (optionally
//                    grown with --scale extra desks), memory-only.
//
// Lifecycle (docs/SERVER.md "Lifecycle and health"):
//
//   SIGTERM/SIGINT   graceful drain: stop accepting, answer every
//                    already-accepted query, wait for connected clients
//                    to disconnect, checkpoint + close the store, exit 0.
//                    --drain-deadline-ms bounds the wait (default 5000).
//   second signal    hard stop, exit 3 (durable state is still safe:
//                    every acknowledged commit is on disk).
//
// Signals are observed via sigaction + self-pipe — the handler writes
// one byte; the main thread blocks in poll() on the pipe, so shutdown
// latency is the syscall wakeup, not a poll interval.
//
// --port-file writes "PORT\n" atomically once the listener is live;
// supervisors (the chaos harness) use it to discover an ephemeral port.
//
// The admission flags configure a scheduler owned by this process; with
// none given the evaluator falls back to the process-wide scheduler and
// its LYRIC_MAX_CONCURRENT / LYRIC_QUEUE_* environment limits.
//
// Protocol, frame layout, and error mapping: docs/SERVER.md. Talk to it
// with net::Client or tools/lyric_loadgen.

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "exec/scheduler.h"
#include "net/server.h"
#include "office/office_db.h"
#include "storage/file_io.h"
#include "storage/paged_store.h"
#include "storage/serializer.h"

namespace {

using lyric::Database;
using lyric::Status;

struct Options {
  std::string host = "127.0.0.1";
  int port = 7464;
  std::string load;   // dump file; empty = built-in office database
  std::string store;  // PagedStore path; empty = memory-only serving
  std::string port_file;
  int scale = 0;
  size_t exec_threads = 0;  // 0 = hardware concurrency
  size_t eval_threads = 0;  // 0 = evaluator default
  uint64_t max_rows = 0;
  uint64_t drain_deadline_ms = 5000;
  std::optional<uint64_t> max_concurrent;
  std::optional<uint64_t> queue_capacity;
  std::optional<uint64_t> queue_timeout_ms;
  std::optional<uint64_t> max_memory;
};

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "lyric_serverd: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--host") {
      if ((v = next("--host")) == nullptr) return false;
      opt->host = v;
    } else if (arg == "--port") {
      if ((v = next("--port")) == nullptr) return false;
      opt->port = std::atoi(v);
    } else if (arg == "--load") {
      if ((v = next("--load")) == nullptr) return false;
      opt->load = v;
    } else if (arg == "--store") {
      if ((v = next("--store")) == nullptr) return false;
      opt->store = v;
    } else if (arg == "--port-file") {
      if ((v = next("--port-file")) == nullptr) return false;
      opt->port_file = v;
    } else if (arg == "--scale") {
      if ((v = next("--scale")) == nullptr) return false;
      opt->scale = std::atoi(v);
    } else if (arg == "--exec-threads") {
      if ((v = next("--exec-threads")) == nullptr) return false;
      opt->exec_threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--eval-threads") {
      if ((v = next("--eval-threads")) == nullptr) return false;
      opt->eval_threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--max-rows") {
      if ((v = next("--max-rows")) == nullptr) return false;
      opt->max_rows = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--drain-deadline-ms") {
      if ((v = next("--drain-deadline-ms")) == nullptr) return false;
      opt->drain_deadline_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--max-concurrent") {
      if ((v = next("--max-concurrent")) == nullptr) return false;
      opt->max_concurrent = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--queue-capacity") {
      if ((v = next("--queue-capacity")) == nullptr) return false;
      opt->queue_capacity = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--queue-timeout-ms") {
      if ((v = next("--queue-timeout-ms")) == nullptr) return false;
      opt->queue_timeout_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--max-memory") {
      if ((v = next("--max-memory")) == nullptr) return false;
      opt->max_memory = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: lyric_serverd [--host H] [--port P] "
                   "[--load FILE] [--store FILE] [--port-file PATH] "
                   "[--scale N] [--exec-threads N] [--eval-threads N] "
                   "[--max-rows N] [--max-concurrent N] "
                   "[--queue-capacity N] [--queue-timeout-ms N] "
                   "[--max-memory BYTES] [--drain-deadline-ms N]\n";
      return false;
    } else {
      std::cerr << "lyric_serverd: unknown flag " << arg << "\n";
      return false;
    }
  }
  return true;
}

// Self-pipe: the handler's only action is a single write() — the one
// async-signal-safe way to hand the event to the main thread, which
// blocks in poll() on the read end. O_NONBLOCK keeps a signal storm
// from ever blocking the handler.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  const char byte = 1;
  // EAGAIN (pipe full) is fine: one pending byte already means "shut
  // down"; additional signals are counted by draining the pipe later.
  ssize_t ignored = write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

bool InstallSignalHandlers() {
  if (pipe2(g_signal_pipe, O_CLOEXEC | O_NONBLOCK) != 0) {
    std::cerr << "lyric_serverd: pipe2: " << errno << "\n";
    return false;
  }
  struct sigaction sa;
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (sigaction(SIGINT, &sa, nullptr) != 0 ||
      sigaction(SIGTERM, &sa, nullptr) != 0) {
    std::cerr << "lyric_serverd: sigaction: " << errno << "\n";
    return false;
  }
  return true;
}

/// Blocks up to `timeout_ms` (-1 = forever) for a signal byte; drains
/// and returns the number of bytes seen (0 on timeout).
int AwaitSignal(int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = g_signal_pipe[0];
  pfd.events = POLLIN;
  for (;;) {
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc == 0) return 0;
    if (rc < 0) {
      if (errno == EINTR) continue;  // retry; the byte is still coming
      return 0;
    }
    char buf[16];
    int seen = 0;
    for (;;) {
      const ssize_t n = read(g_signal_pipe[0], buf, sizeof buf);
      if (n > 0) {
        seen += static_cast<int>(n);
        continue;
      }
      break;  // EAGAIN: pipe drained
    }
    if (seen > 0) return seen;
  }
}

/// Seeds `db` from --load or the built-in office database.
Status BuildInitialDatabase(const Options& opt, Database* db) {
  if (!opt.load.empty()) {
    LYRIC_RETURN_NOT_OK(lyric::Serializer::LoadFromFile(opt.load, db));
    std::cout << "lyric_serverd: loaded " << opt.load << "\n";
    return Status::OK();
  }
  auto ids = lyric::office::BuildOfficeDatabase(db);
  if (!ids.ok()) return ids.status();
  if (opt.scale > 0) {
    LYRIC_RETURN_NOT_OK(
        lyric::office::AddScaledDesks(db, opt.scale, /*seed=*/7));
  }
  std::cout << "lyric_serverd: serving the built-in office database"
            << (opt.scale > 0 ? " (+" + std::to_string(opt.scale) + " desks)"
                              : "")
            << "\n";
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return 2;
  if (!InstallSignalHandlers()) return 2;

  // -- hydrate -------------------------------------------------------------
  Database db;
  std::unique_ptr<lyric::storage::PagedStore> store;
  if (!opt.store.empty()) {
    lyric::storage::StoreOptions sopt;
    sopt.path = opt.store;
    auto opened = lyric::storage::PagedStore::Open(sopt);
    if (!opened.ok()) {
      std::cerr << "lyric_serverd: store open failed: "
                << opened.status().ToString() << "\n";
      return 1;
    }
    store = std::move(*opened);
    const auto& rec = store->recovery();
    std::cout << "lyric_serverd: opened store " << opt.store << " (recovered "
              << rec.committed_txns << " txns, " << rec.images_applied
              << " page images, torn tail " << rec.torn_tail_bytes
              << " bytes)\n";
    if (store->RecordCount() == 0) {
      // Fresh store: seed it from --load / the office database, and
      // make the seed durable BEFORE the listener opens — a crash
      // after boot replays to this exact state.
      Status st = BuildInitialDatabase(opt, &db);
      if (!st.ok()) {
        std::cerr << "lyric_serverd: seed failed: " << st.ToString() << "\n";
        return 1;
      }
      st = store->ImportDatabase(db);
      if (!st.ok()) {
        std::cerr << "lyric_serverd: store seed import failed: "
                  << st.ToString() << "\n";
        return 1;
      }
      std::cout << "lyric_serverd: seeded empty store\n";
    } else {
      if (!opt.load.empty()) {
        // Refusing is safer than guessing which of the two databases
        // the operator meant to serve.
        std::cerr << "lyric_serverd: --load given but store is non-empty; "
                     "drop --load to serve the store, or point --store at "
                     "a fresh path to re-seed\n";
        return 2;
      }
      Status st = store->ExportToDatabase(&db);
      if (!st.ok()) {
        std::cerr << "lyric_serverd: store hydrate failed: " << st.ToString()
                  << "\n";
        return 1;
      }
      std::cout << "lyric_serverd: hydrated " << store->RecordCount()
                << " records from store\n";
    }
  } else {
    Status st = BuildInitialDatabase(opt, &db);
    if (!st.ok()) {
      std::cerr << "lyric_serverd: load failed: " << st.ToString() << "\n";
      return 1;
    }
  }

  // -- serve ---------------------------------------------------------------
  lyric::exec::SchedulerLimits limits;
  limits.max_concurrent = opt.max_concurrent;
  limits.queue_capacity = opt.queue_capacity;
  limits.queue_timeout_ms = opt.queue_timeout_ms;
  limits.max_total_memory = opt.max_memory;
  lyric::exec::QueryScheduler scheduler(limits);

  lyric::net::ServerOptions sopts;
  sopts.host = opt.host;
  sopts.port = opt.port;
  sopts.exec_threads = opt.exec_threads;
  // 0 means "keep the evaluator default" for these flags — EvalOptions
  // itself treats 0 literally (max_rows = 0 rejects every row).
  if (opt.eval_threads > 0) sopts.eval.threads = opt.eval_threads;
  if (opt.max_rows > 0) sopts.eval.max_rows = opt.max_rows;
  if (limits.Any()) sopts.scheduler = &scheduler;
  sopts.store = store.get();

  lyric::net::Server server(&db, sopts);
  Status st = server.Start();
  if (!st.ok()) {
    std::cerr << "lyric_serverd: start failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "lyric_serverd: listening on " << opt.host << ":"
            << server.port() << (limits.Any() ? " (admission limits on)" : "")
            << (store ? " [store-backed]" : "") << std::endl;

  if (!opt.port_file.empty()) {
    st = lyric::storage::AtomicWriteFile(opt.port_file,
                                         std::to_string(server.port()) + "\n");
    if (!st.ok()) {
      std::cerr << "lyric_serverd: port-file write failed: " << st.ToString()
                << "\n";
      server.Stop();
      return 1;
    }
  }

  // -- lifecycle -----------------------------------------------------------
  AwaitSignal(-1);
  std::cout << "lyric_serverd: draining (" << server.in_flight_queries()
            << " queries in flight, " << server.active_sessions()
            << " sessions)" << std::endl;
  server.BeginDrain();

  // Phase 1: every accepted query gets its response delivered. Phase 2:
  // linger until the (now shed-only) clients hang up, so their last
  // response is never cut off mid-write by Stop. Both phases share the
  // deadline and abort on a second signal.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opt.drain_deadline_ms);
  bool forced = false;
  for (;;) {
    const bool idle = server.in_flight_queries() == 0 &&
                      server.active_sessions() == 0;
    if (idle) break;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      std::cerr << "lyric_serverd: drain deadline ("
                << opt.drain_deadline_ms << "ms) exceeded, forcing stop\n";
      forced = true;
      break;
    }
    // Wake early for a second signal; otherwise re-check at 20ms —
    // WaitForDrainIdle covers the queries, the poll covers sessions.
    server.WaitForDrainIdle(1);
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const int slice =
        static_cast<int>(std::min<int64_t>(20, remaining.count()));
    if (AwaitSignal(slice > 0 ? slice : 0) > 0) {
      std::cerr << "lyric_serverd: second signal, forcing stop\n";
      forced = true;
      break;
    }
  }

  std::cout << "lyric_serverd: shutting down (" << server.sessions_opened()
            << " sessions served)" << std::endl;
  server.Stop();

  if (store) {
    // Checkpoint inside Close compacts the WAL; failure is logged, not
    // fatal — acknowledged commits are already durable in the WAL.
    Status closed = store->Close();
    if (!closed.ok()) {
      std::cerr << "lyric_serverd: store close: " << closed.ToString() << "\n";
    }
  }
  return forced ? 3 : 0;
}
