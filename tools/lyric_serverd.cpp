// lyric_serverd: the standalone LyriC query server.
//
//   lyric_serverd [--host 127.0.0.1] [--port 7464] [--load dump.lyricdb]
//                 [--scale N] [--exec-threads N] [--eval-threads N]
//                 [--max-rows N] [--max-concurrent N] [--queue-capacity N]
//                 [--queue-timeout-ms N] [--max-memory BYTES]
//
// Serves either a persisted database dump (--load, the storage-layer
// text format) or the built-in Figure 2 office database (optionally
// grown with --scale extra desks) until SIGINT/SIGTERM. The admission
// flags configure a scheduler owned by this process; with none given the
// evaluator falls back to the process-wide scheduler and its
// LYRIC_MAX_CONCURRENT / LYRIC_QUEUE_* environment limits.
//
// Protocol, frame layout, and error mapping: docs/SERVER.md. Talk to it
// with net::Client or tools/lyric_loadgen.

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "exec/scheduler.h"
#include "net/server.h"
#include "office/office_db.h"
#include "storage/serializer.h"

namespace {

using lyric::Database;
using lyric::Status;

struct Options {
  std::string host = "127.0.0.1";
  int port = 7464;
  std::string load;  // empty = built-in office database
  int scale = 0;
  size_t exec_threads = 0;  // 0 = hardware concurrency
  size_t eval_threads = 0;  // 0 = evaluator default
  uint64_t max_rows = 0;
  std::optional<uint64_t> max_concurrent;
  std::optional<uint64_t> queue_capacity;
  std::optional<uint64_t> queue_timeout_ms;
  std::optional<uint64_t> max_memory;
};

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "lyric_serverd: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--host") {
      if ((v = next("--host")) == nullptr) return false;
      opt->host = v;
    } else if (arg == "--port") {
      if ((v = next("--port")) == nullptr) return false;
      opt->port = std::atoi(v);
    } else if (arg == "--load") {
      if ((v = next("--load")) == nullptr) return false;
      opt->load = v;
    } else if (arg == "--scale") {
      if ((v = next("--scale")) == nullptr) return false;
      opt->scale = std::atoi(v);
    } else if (arg == "--exec-threads") {
      if ((v = next("--exec-threads")) == nullptr) return false;
      opt->exec_threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--eval-threads") {
      if ((v = next("--eval-threads")) == nullptr) return false;
      opt->eval_threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--max-rows") {
      if ((v = next("--max-rows")) == nullptr) return false;
      opt->max_rows = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--max-concurrent") {
      if ((v = next("--max-concurrent")) == nullptr) return false;
      opt->max_concurrent = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--queue-capacity") {
      if ((v = next("--queue-capacity")) == nullptr) return false;
      opt->queue_capacity = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--queue-timeout-ms") {
      if ((v = next("--queue-timeout-ms")) == nullptr) return false;
      opt->queue_timeout_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--max-memory") {
      if ((v = next("--max-memory")) == nullptr) return false;
      opt->max_memory = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: lyric_serverd [--host H] [--port P] "
                   "[--load FILE] [--scale N] [--exec-threads N] "
                   "[--eval-threads N] [--max-rows N] [--max-concurrent N] "
                   "[--queue-capacity N] [--queue-timeout-ms N] "
                   "[--max-memory BYTES]\n";
      return false;
    } else {
      std::cerr << "lyric_serverd: unknown flag " << arg << "\n";
      return false;
    }
  }
  return true;
}

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return 2;

  Database db;
  if (!opt.load.empty()) {
    Status st = lyric::Serializer::LoadFromFile(opt.load, &db);
    if (!st.ok()) {
      std::cerr << "lyric_serverd: load failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "lyric_serverd: loaded " << opt.load << "\n";
  } else {
    auto ids = lyric::office::BuildOfficeDatabase(&db);
    if (!ids.ok()) {
      std::cerr << "lyric_serverd: office build failed: "
                << ids.status().ToString() << "\n";
      return 1;
    }
    if (opt.scale > 0) {
      Status st = lyric::office::AddScaledDesks(&db, opt.scale, /*seed=*/7);
      if (!st.ok()) {
        std::cerr << "lyric_serverd: scale failed: " << st.ToString() << "\n";
        return 1;
      }
    }
    std::cout << "lyric_serverd: serving the built-in office database"
              << (opt.scale > 0 ? " (+" + std::to_string(opt.scale) + " desks)"
                                : "")
              << "\n";
  }

  lyric::exec::SchedulerLimits limits;
  limits.max_concurrent = opt.max_concurrent;
  limits.queue_capacity = opt.queue_capacity;
  limits.queue_timeout_ms = opt.queue_timeout_ms;
  limits.max_total_memory = opt.max_memory;
  lyric::exec::QueryScheduler scheduler(limits);

  lyric::net::ServerOptions sopts;
  sopts.host = opt.host;
  sopts.port = opt.port;
  sopts.exec_threads = opt.exec_threads;
  // 0 means "keep the evaluator default" for these flags — EvalOptions
  // itself treats 0 literally (max_rows = 0 rejects every row).
  if (opt.eval_threads > 0) sopts.eval.threads = opt.eval_threads;
  if (opt.max_rows > 0) sopts.eval.max_rows = opt.max_rows;
  if (limits.Any()) sopts.scheduler = &scheduler;

  lyric::net::Server server(&db, sopts);
  Status st = server.Start();
  if (!st.ok()) {
    std::cerr << "lyric_serverd: start failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "lyric_serverd: listening on " << opt.host << ":"
            << server.port() << (limits.Any() ? " (admission limits on)" : "")
            << std::endl;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  std::cout << "lyric_serverd: shutting down ("
            << server.sessions_opened() << " sessions served)\n";
  server.Stop();
  return 0;
}
