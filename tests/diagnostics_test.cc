// Golden tests for the structured diagnostics layer: stable LY0xx codes,
// exact line:col spans, caret rendering, and the §3 constraint-family
// inference over the paper's §4.1 queries.

#include "query/diagnostics.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "office/office_db.h"
#include "query/analyzer.h"
#include "query/evaluator.h"
#include "query/family_check.h"
#include "query/parser.h"

namespace lyric {
namespace {

class DiagnosticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
  }

  CheckResult Check(const std::string& text) {
    return CheckQueryText(db_, text);
  }

  // The diagnostics matching `code`, in emission order.
  static std::vector<Diagnostic> OfCode(const CheckResult& r,
                                        DiagCode code) {
    std::vector<Diagnostic> out;
    for (const Diagnostic& d : r.diagnostics) {
      if (d.code == code) out.push_back(d);
    }
    return out;
  }

  static size_t Errors(const CheckResult& r) {
    return CountSeverity(r.diagnostics, Severity::kError);
  }

  Database db_;
};

// --- primitive helpers ----------------------------------------------------

TEST(DiagCodeTest, RenderedCodesAreStable) {
  EXPECT_EQ(DiagCodeToString(DiagCode::kLexError), "LY001");
  EXPECT_EQ(DiagCodeToString(DiagCode::kSyntaxError), "LY002");
  EXPECT_EQ(DiagCodeToString(DiagCode::kUnknownAttribute), "LY011");
  EXPECT_EQ(DiagCodeToString(DiagCode::kArityMismatch), "LY016");
  EXPECT_EQ(DiagCodeToString(DiagCode::kFamilyInfo), "LY040");
  EXPECT_EQ(DiagCodeToString(DiagCode::kUnrestrictedProjection), "LY041");
  EXPECT_EQ(DiagCodeToString(DiagCode::kDisjunctiveOptimize), "LY045");
}

TEST(DiagCodeTest, DefaultSeverities) {
  EXPECT_EQ(DiagCodeDefaultSeverity(DiagCode::kUnknownClass),
            Severity::kError);
  EXPECT_EQ(DiagCodeDefaultSeverity(DiagCode::kUnknownSymbolicOid),
            Severity::kWarning);
  EXPECT_EQ(DiagCodeDefaultSeverity(DiagCode::kUnrestrictedProjection),
            Severity::kWarning);
  EXPECT_EQ(DiagCodeDefaultSeverity(DiagCode::kFamilyInfo),
            Severity::kNote);
  EXPECT_EQ(DiagCodeDefaultSeverity(DiagCode::kDisjunctiveOptimize),
            Severity::kNote);
}

TEST(LineColTest, OffsetsMapToOneBasedPositions) {
  const std::string text = "ab\ncd\nef";
  EXPECT_EQ(LineColAt(text, 0).line, 1u);
  EXPECT_EQ(LineColAt(text, 0).col, 1u);
  EXPECT_EQ(LineColAt(text, 1).col, 2u);
  EXPECT_EQ(LineColAt(text, 3).line, 2u);
  EXPECT_EQ(LineColAt(text, 3).col, 1u);
  EXPECT_EQ(LineColAt(text, 7).line, 3u);
  EXPECT_EQ(LineColAt(text, 7).col, 2u);
  // Past-the-end clamps.
  EXPECT_EQ(LineColAt(text, 99).line, 3u);
}

TEST(RenderTest, CaretSnippetUnderlinesSpan) {
  const std::string src = "SELECT X FROM Dekk X";
  Diagnostic d = MakeDiag(DiagCode::kUnknownClass, {14, 4},
                          "FROM: unknown class 'Dekk'");
  std::string rendered = RenderDiagnostic(src, d, "q.lyric");
  EXPECT_NE(rendered.find("q.lyric:1:15: error[LY010]"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("  SELECT X FROM Dekk X"), std::string::npos);
  EXPECT_NE(rendered.find("^~~~"), std::string::npos);
}

TEST(RenderTest, JsonCarriesPositionsAndCodes) {
  const std::string src = "SELECT X FROM Dekk X";
  std::vector<Diagnostic> diags = {MakeDiag(
      DiagCode::kUnknownClass, {14, 4}, "FROM: unknown class 'Dekk'")};
  std::string json = DiagnosticsToJson(src, diags, "q.lyric");
  EXPECT_NE(json.find("\"code\": \"LY010\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"col\": 15"), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
}

// --- §4.1 paper queries: all error-clean ----------------------------------

TEST_F(DiagnosticsTest, Q1DrawerExtentClean) {
  CheckResult r = Check("SELECT Y FROM Desk X WHERE X.drawer.extent[Y]");
  ASSERT_TRUE(r.parsed);
  EXPECT_EQ(Errors(r), 0u) << RenderDiagnostics("", r.diagnostics);
  EXPECT_EQ(r.var_classes.at("X"), "Desk");
  EXPECT_EQ(r.var_classes.at("Y"), "CST(2)");
}

TEST_F(DiagnosticsTest, Q2GlobalExtentFamiliesInferred) {
  // The acceptance query: every CST expression gets a family note and
  // there are zero errors.
  CheckResult r = Check(
      "SELECT CO, ((u, v) | E and D and x = 6 and y = 4) "
      "FROM Office_Object CO "
      "WHERE CO.extent[E] and CO.translation[D]");
  ASSERT_TRUE(r.parsed);
  EXPECT_EQ(Errors(r), 0u) << RenderDiagnostics("", r.diagnostics);
  // One family note for the SELECT projection.
  std::vector<Diagnostic> notes = OfCode(r, DiagCode::kFamilyInfo);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].message.find("existential-conjunctive"),
            std::string::npos)
      << notes[0].message;
  // The projection eliminates w,z,x,y keeping u,v: unrestricted (§3.1).
  std::vector<Diagnostic> qe = OfCode(r, DiagCode::kUnrestrictedProjection);
  ASSERT_EQ(qe.size(), 1u);
  EXPECT_EQ(qe[0].severity, Severity::kWarning);
  EXPECT_NE(qe[0].message.find("eliminates 4 of 6"), std::string::npos)
      << qe[0].message;
  // Both notes anchor at the projection formula (offset 11, line 1).
  EXPECT_EQ(notes[0].span.offset, 11u);
  EXPECT_EQ(qe[0].span.offset, 11u);
}

TEST_F(DiagnosticsTest, Q4EntailmentFamiliesInferred) {
  CheckResult r = Check(
      "SELECT DSK, ((w, z) | DSK.drawer.extent(w, z) and z >= w) "
      "FROM Desk DSK "
      "WHERE DSK.color = 'red' and DSK.drawer_center[C] and "
      "C(p, q) |= p = -2");
  ASSERT_TRUE(r.parsed);
  EXPECT_EQ(Errors(r), 0u) << RenderDiagnostics("", r.diagnostics);
  // Family notes: the SELECT projection, the entailment lhs and rhs.
  EXPECT_EQ(OfCode(r, DiagCode::kFamilyInfo).size(), 3u);
  // A conjunctive rhs: no disjunctive-entailment warning.
  EXPECT_TRUE(OfCode(r, DiagCode::kDisjunctiveEntailment).empty());
}

TEST_F(DiagnosticsTest, Q5RestrictedEntailmentClean) {
  CheckResult r = Check(
      "SELECT DSK FROM Object_in_Room O, Desk DSK "
      "WHERE O.catalog_object[DSK] and O.location[L] and "
      "DSK.translation[D] and DSK.drawer_center[DC] and "
      "DSK.drawer.extent[DE] and DSK.drawer.translation[DD] and "
      "((u, v) | D(w, z, x, y, u, v) and DD(w1, z1, x1, y1, u1, v1) and "
      "w = u1 and z = v1 and DC(p, q) and DE(w1, z1) and L(x, y)) "
      "|= ((u, v) | 0 < u and u < 20 and 0 < v and v < 10)");
  ASSERT_TRUE(r.parsed);
  EXPECT_EQ(Errors(r), 0u) << RenderDiagnostics("", r.diagnostics);
  EXPECT_TRUE(OfCode(r, DiagCode::kDisjunctiveEntailment).empty());
}

// --- broken variants: exact codes and positions ---------------------------

TEST_F(DiagnosticsTest, UnknownAttributePositioned) {
  //         1         2
  // 123456789012345678901234567890
  // SELECT X FROM Desk X WHERE X.location[L]
  CheckResult r = Check("SELECT X FROM Desk X WHERE X.location[L]");
  ASSERT_TRUE(r.parsed);
  std::vector<Diagnostic> diags = OfCode(r, DiagCode::kUnknownAttribute);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  LineCol pos = LineColAt("SELECT X FROM Desk X WHERE X.location[L]",
                          diags[0].span.offset);
  EXPECT_EQ(pos.line, 1u);
  EXPECT_EQ(pos.col, 30u);  // 'location' starts at column 30.
  EXPECT_EQ(diags[0].span.length, 8u);
}

TEST_F(DiagnosticsTest, UseBeforeBindPositioned) {
  const std::string q =
      "SELECT DSK FROM Desk DSK WHERE SAT(E(p, q)) and DSK.extent[E]";
  CheckResult r = Check(q);
  ASSERT_TRUE(r.parsed);
  std::vector<Diagnostic> diags = OfCode(r, DiagCode::kUseBeforeBind);
  ASSERT_EQ(diags.size(), 1u);
  LineCol pos = LineColAt(q, diags[0].span.offset);
  EXPECT_EQ(pos.col, 36u);  // The E inside SAT(...).
  EXPECT_NE(diags[0].message.find("'E'"), std::string::npos);
}

TEST_F(DiagnosticsTest, ArityMismatchPositioned) {
  const std::string q =
      "SELECT DSK FROM Desk DSK WHERE DSK.extent[E] and SAT(E(a, b, c))";
  CheckResult r = Check(q);
  ASSERT_TRUE(r.parsed);
  std::vector<Diagnostic> diags = OfCode(r, DiagCode::kArityMismatch);
  ASSERT_EQ(diags.size(), 1u);
  LineCol pos = LineColAt(q, diags[0].span.offset);
  EXPECT_EQ(pos.col, 54u);  // The E inside SAT(...).
  EXPECT_NE(diags[0].message.find("dimension 2"), std::string::npos);
  EXPECT_NE(diags[0].message.find("3 variables"), std::string::npos);
}

TEST_F(DiagnosticsTest, UnknownClassPositioned) {
  CheckResult r = Check("SELECT X FROM Dekk X");
  ASSERT_TRUE(r.parsed);
  std::vector<Diagnostic> diags = OfCode(r, DiagCode::kUnknownClass);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].span.offset, 14u);
  EXPECT_EQ(diags[0].span.length, 4u);
}

TEST_F(DiagnosticsTest, SyntaxErrorHasSpan) {
  CheckResult r = Check("SELECT X WHERE X.extent[E]");
  EXPECT_FALSE(r.parsed);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].code, DiagCode::kSyntaxError);
  EXPECT_EQ(r.diagnostics[0].span.offset, 9u);  // WHERE token.
  EXPECT_EQ(r.diagnostics[0].span.length, 5u);
}

TEST_F(DiagnosticsTest, LexErrorHasSpan) {
  CheckResult r = Check("SELECT X FROM Desk X WHERE X.color = 'red");
  EXPECT_FALSE(r.parsed);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].code, DiagCode::kLexError);
  EXPECT_EQ(r.diagnostics[0].span.offset, 37u);  // The opening quote.
}

TEST_F(DiagnosticsTest, MultipleErrorsCollected) {
  // Check() keeps going after the first broken clause: the unknown FROM
  // class and the unbound SELECT variable both surface.
  CheckResult r = Check("SELECT X FROM Dekk X");
  EXPECT_GE(Errors(r), 2u);
  EXPECT_EQ(OfCode(r, DiagCode::kUnknownClass).size(), 1u);
  EXPECT_EQ(OfCode(r, DiagCode::kUseBeforeBind).size(), 1u);
}

// --- out-of-fragment findings ---------------------------------------------

TEST_F(DiagnosticsTest, DisjunctiveEntailmentWarns) {
  CheckResult r = Check(
      "SELECT DSK FROM Desk DSK "
      "WHERE DSK.drawer_center[C] and "
      "C(p, q) |= (p <= 0 or p >= 1)");
  ASSERT_TRUE(r.parsed);
  EXPECT_EQ(Errors(r), 0u) << RenderDiagnostics("", r.diagnostics);
  std::vector<Diagnostic> diags =
      OfCode(r, DiagCode::kDisjunctiveEntailment);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_NE(diags[0].message.find("disjunctive"), std::string::npos);
}

TEST_F(DiagnosticsTest, NotEqualAtomIsDisjunctive) {
  CheckResult r = Check(
      "SELECT DSK FROM Desk DSK "
      "WHERE DSK.drawer_center[C] and SAT(C(p, q) and p != 0)");
  ASSERT_TRUE(r.parsed);
  std::vector<Diagnostic> notes = OfCode(r, DiagCode::kFamilyInfo);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].message.find("disjunctive"), std::string::npos)
      << notes[0].message;
}

TEST_F(DiagnosticsTest, NonConjunctiveNegationWarns) {
  CheckResult r = Check(
      "SELECT DSK FROM Desk DSK "
      "WHERE DSK.drawer_center[C] and "
      "SAT(C(p, q) and not (p <= 0 or q <= 0))");
  ASSERT_TRUE(r.parsed);
  std::vector<Diagnostic> diags =
      OfCode(r, DiagCode::kNonConjunctiveNegation);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST_F(DiagnosticsTest, DnfBlowupEstimated) {
  // Six two-way disjunctions conjoined: 64 estimated disjuncts.
  std::string q = "SELECT DSK FROM Desk DSK WHERE SAT(";
  for (int i = 0; i < 6; ++i) {
    if (i > 0) q += " and ";
    q += "(x" + std::to_string(i) + " <= 0 or x" + std::to_string(i) +
         " >= 1)";
  }
  q += ")";
  CheckResult r = Check(q);
  ASSERT_TRUE(r.parsed);
  std::vector<Diagnostic> diags = OfCode(r, DiagCode::kDnfBlowup);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("64"), std::string::npos)
      << diags[0].message;
}

TEST_F(DiagnosticsTest, DisjunctiveOptimizeNoted) {
  CheckResult r = Check(
      "SELECT MAX(p SUBJECT TO ((p) | p <= 4 or p <= 2)) "
      "FROM Desk DSK");
  ASSERT_TRUE(r.parsed);
  EXPECT_EQ(Errors(r), 0u) << RenderDiagnostics("", r.diagnostics);
  std::vector<Diagnostic> notes = OfCode(r, DiagCode::kDisjunctiveOptimize);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].message.find("per disjunct"), std::string::npos);
}

TEST_F(DiagnosticsTest, RestrictedProjectionStaysQuiet) {
  // ((w) | E and z >= 0) keeps one variable: restricted (§3.1), no LY041.
  CheckResult r = Check(
      "SELECT ((w) | E and z >= 0) FROM Desk DSK WHERE DSK.extent[E]");
  ASSERT_TRUE(r.parsed);
  EXPECT_EQ(Errors(r), 0u);
  EXPECT_TRUE(OfCode(r, DiagCode::kUnrestrictedProjection).empty())
      << RenderDiagnostics("", r.diagnostics);
}

// --- legacy Analyze() keeps its strict contract ---------------------------

TEST_F(DiagnosticsTest, AnalyzeMapsCodesToStatus) {
  Analyzer an(&db_);
  auto bad_class = ParseQuery("SELECT X FROM Dekk X");
  ASSERT_TRUE(bad_class.ok());
  EXPECT_TRUE(an.Analyze(*bad_class).status().IsNotFound());

  auto bad_attr = ParseQuery("SELECT X FROM Desk X WHERE X.location[L]");
  ASSERT_TRUE(bad_attr.ok());
  EXPECT_TRUE(an.Analyze(*bad_attr).status().IsTypeError());
}

// --- evaluator pre-flight -------------------------------------------------

TEST_F(DiagnosticsTest, PreflightAbortsOnErrors) {
  EvalOptions opts;
  opts.analyze_first = true;
  Evaluator ev(&db_, opts);
  auto r = ev.Execute("SELECT X FROM Desk X WHERE X.location[L]");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());
}

TEST_F(DiagnosticsTest, PreflightAttachesDiagnosticsToResult) {
  EvalOptions opts;
  opts.analyze_first = true;
  Evaluator ev(&db_, opts);
  auto r = ev.Execute(
      "SELECT CO, ((u, v) | E and D and x = 6 and y = 4) "
      "FROM Office_Object CO "
      "WHERE CO.extent[E] and CO.translation[D]");
  ASSERT_TRUE(r.ok()) << r.status();
  // The unrestricted-projection warning and the family note ride along.
  EXPECT_FALSE(r->diagnostics().empty());
  EXPECT_FALSE(HasErrors(r->diagnostics()));
  bool has_family_note = std::any_of(
      r->diagnostics().begin(), r->diagnostics().end(),
      [](const Diagnostic& d) { return d.code == DiagCode::kFamilyInfo; });
  EXPECT_TRUE(has_family_note);
}

TEST_F(DiagnosticsTest, PreflightOffByDefault) {
  Evaluator ev(&db_);
  auto r = ev.Execute("SELECT Y FROM Desk X WHERE X.drawer.extent[Y]");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->diagnostics().empty());
}

}  // namespace
}  // namespace lyric
