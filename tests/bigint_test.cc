#include "arith/bigint.h"

#include <cstdint>
#include <random>

#include <gtest/gtest.h>

namespace lyric {
namespace {

TEST(BigIntTest, ZeroBasics) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsNegative());
  EXPECT_EQ(z.Sign(), 0);
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z, BigInt(0));
  EXPECT_EQ(-z, z);
}

TEST(BigIntTest, ConstructFromInt64) {
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, FromStringRoundTrip) {
  for (const char* s : {"0", "1", "-1", "123456789012345678901234567890",
                        "-99999999999999999999999999"}) {
    auto v = BigInt::FromString(s);
    ASSERT_TRUE(v.ok()) << s;
    EXPECT_EQ(v->ToString(), s);
  }
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a3").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
}

TEST(BigIntTest, AdditionSigns) {
  EXPECT_EQ(BigInt(7) + BigInt(5), BigInt(12));
  EXPECT_EQ(BigInt(7) + BigInt(-5), BigInt(2));
  EXPECT_EQ(BigInt(-7) + BigInt(5), BigInt(-2));
  EXPECT_EQ(BigInt(-7) + BigInt(-5), BigInt(-12));
  EXPECT_EQ(BigInt(7) + BigInt(-7), BigInt(0));
}

TEST(BigIntTest, MultiplicationSigns) {
  EXPECT_EQ(BigInt(6) * BigInt(7), BigInt(42));
  EXPECT_EQ(BigInt(-6) * BigInt(7), BigInt(-42));
  EXPECT_EQ(BigInt(-6) * BigInt(-7), BigInt(42));
  EXPECT_EQ(BigInt(6) * BigInt(0), BigInt(0));
}

TEST(BigIntTest, LargeMultiplication) {
  auto a = BigInt::FromString("123456789123456789123456789").value();
  auto b = BigInt::FromString("987654321987654321").value();
  EXPECT_EQ((a * b).ToString(),
            "121932631356500531469135800347203169112635269");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) / BigInt(-2), BigInt(3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
}

TEST(BigIntTest, LargeDivision) {
  auto a = BigInt::FromString("121932631356500531469135800347203169112635269")
               .value();
  auto b = BigInt::FromString("987654321987654321").value();
  EXPECT_EQ((a / b).ToString(), "123456789123456789123456789");
  EXPECT_TRUE((a % b).IsZero());
}

TEST(BigIntTest, DivModIdentityRandomized) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 500; ++i) {
    int64_t x = static_cast<int64_t>(rng()) % 1000000007;
    int64_t y = static_cast<int64_t>(rng()) % 99991;
    if (y == 0) y = 17;
    BigInt a(x), b(y);
    EXPECT_EQ((a / b) * b + a % b, a) << x << " " << y;
  }
}

TEST(BigIntTest, MultiLimbDivModIdentity) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 100; ++i) {
    BigInt a(static_cast<int64_t>(rng() >> 1));
    BigInt b(static_cast<int64_t>(rng() >> 1));
    BigInt big = a * a * a;  // ~189 bits
    BigInt div = b * b;      // ~126 bits
    if (div.IsZero()) continue;
    BigInt q = big / div;
    BigInt r = big % div;
    EXPECT_EQ(q * div + r, big);
    EXPECT_TRUE(r.Abs() < div.Abs());
  }
}

TEST(BigIntTest, Ordering) {
  EXPECT_LT(BigInt(-10), BigInt(-9));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(99), BigInt(100));
  auto big = BigInt::FromString("10000000000000000000000").value();
  EXPECT_LT(BigInt(INT64_MAX), big);
  EXPECT_LT(-big, BigInt(INT64_MIN));
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(5), BigInt(0)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, ToInt64) {
  EXPECT_EQ(BigInt(123).ToInt64().value(), 123);
  EXPECT_EQ(BigInt(-123).ToInt64().value(), -123);
  EXPECT_EQ(BigInt(INT64_MAX).ToInt64().value(), INT64_MAX);
  EXPECT_EQ(BigInt(INT64_MIN).ToInt64().value(), INT64_MIN);
  auto big = BigInt::FromString("9223372036854775808").value();  // 2^63
  EXPECT_FALSE(big.ToInt64().ok());
  EXPECT_EQ((-big).ToInt64().value(), INT64_MIN);
}

TEST(BigIntTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(1000).ToDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(BigInt(-1000).ToDouble(), -1000.0);
  auto big = BigInt::FromString("1000000000000000000000").value();
  EXPECT_NEAR(big.ToDouble(), 1e21, 1e6);
}

TEST(BigIntTest, SubtractionBorrowsAcrossLimbs) {
  auto a = BigInt::FromString("18446744073709551616").value();  // 2^64
  EXPECT_EQ((a - BigInt(1)).ToString(), "18446744073709551615");
  EXPECT_EQ((a - a).ToString(), "0");
}

TEST(BigIntTest, AssociativityRandomized) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 200; ++i) {
    BigInt a(static_cast<int64_t>(rng()));
    BigInt b(static_cast<int64_t>(rng()));
    BigInt c(static_cast<int64_t>(rng()));
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

}  // namespace
}  // namespace lyric
