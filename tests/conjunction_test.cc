#include "constraint/conjunction.h"

#include <gtest/gtest.h>

namespace lyric {
namespace {

class ConjunctionTest : public ::testing::Test {
 protected:
  VarId x_ = Variable::Intern("x");
  VarId y_ = Variable::Intern("y");

  LinearExpr X() { return LinearExpr::Var(x_); }
  LinearExpr Y() { return LinearExpr::Var(y_); }
  LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }
};

TEST_F(ConjunctionTest, EmptyIsTrue) {
  Conjunction c;
  EXPECT_TRUE(c.IsTrue());
  EXPECT_EQ(c.ToString(), "true");
  EXPECT_TRUE(c.Eval({}).value());
}

TEST_F(ConjunctionTest, ConstantTrueAtomsDropped) {
  Conjunction c;
  c.Add(LinearConstraint::Le(C(0), C(1)));
  EXPECT_TRUE(c.IsTrue());
}

TEST_F(ConjunctionTest, ConstantFalseCollapses) {
  Conjunction c;
  c.Add(LinearConstraint::Le(X(), C(1)));
  c.Add(LinearConstraint::Le(C(1), C(0)));
  EXPECT_TRUE(c.HasConstantFalse());
  EXPECT_EQ(c, Conjunction::False());
  // Adding more atoms to FALSE keeps it FALSE.
  c.Add(LinearConstraint::Le(X(), C(5)));
  EXPECT_EQ(c, Conjunction::False());
}

TEST_F(ConjunctionTest, EvalAll) {
  Conjunction c;
  c.Add(LinearConstraint::Ge(X(), C(0)));
  c.Add(LinearConstraint::Le(X() + Y(), C(3)));
  EXPECT_TRUE(c.Eval({{x_, Rational(1)}, {y_, Rational(1)}}).value());
  EXPECT_FALSE(c.Eval({{x_, Rational(-1)}, {y_, Rational(1)}}).value());
  EXPECT_FALSE(c.Eval({{x_, Rational(2)}, {y_, Rational(2)}}).value());
}

TEST_F(ConjunctionTest, FreeVars) {
  Conjunction c;
  c.Add(LinearConstraint::Le(X() + Y(), C(3)));
  EXPECT_EQ(c.FreeVars(), (VarSet{x_, y_}));
}

TEST_F(ConjunctionTest, SubstituteAllAtoms) {
  Conjunction c;
  c.Add(LinearConstraint::Ge(X(), C(0)));
  c.Add(LinearConstraint::Le(X(), C(2)));
  Conjunction out = c.Substitute(x_, Y() + C(1));
  // Becomes -1 <= y <= 1.
  EXPECT_TRUE(out.Eval({{y_, Rational(0)}}).value());
  EXPECT_FALSE(out.Eval({{y_, Rational(2)}}).value());
}

TEST_F(ConjunctionTest, SortAndDedupe) {
  Conjunction c;
  c.Add(LinearConstraint::Le(X(), C(2)));
  c.Add(LinearConstraint::Ge(X(), C(0)));
  c.Add(LinearConstraint::Le(X().Scale(Rational(2)), C(4)));  // dup of first
  EXPECT_EQ(c.size(), 3u);
  c.SortAndDedupe();
  EXPECT_EQ(c.size(), 2u);
}

TEST_F(ConjunctionTest, CompareCanonical) {
  Conjunction a;
  a.Add(LinearConstraint::Le(X(), C(2)));
  a.Add(LinearConstraint::Ge(X(), C(0)));
  Conjunction b;
  b.Add(LinearConstraint::Ge(X(), C(0)));
  b.Add(LinearConstraint::Le(X(), C(2)));
  a.SortAndDedupe();
  b.SortAndDedupe();
  EXPECT_EQ(a.Compare(b), 0);
  EXPECT_EQ(a, b);
}

TEST_F(ConjunctionTest, HasDisequality) {
  Conjunction c;
  EXPECT_FALSE(c.HasDisequality());
  c.Add(LinearConstraint::Neq(X(), C(0)));
  EXPECT_TRUE(c.HasDisequality());
}

TEST_F(ConjunctionTest, ConjoinUnionsAtoms) {
  Conjunction a;
  a.Add(LinearConstraint::Ge(X(), C(0)));
  Conjunction b;
  b.Add(LinearConstraint::Le(X(), C(1)));
  Conjunction both = a.Conjoin(b);
  EXPECT_EQ(both.size(), 2u);
  EXPECT_TRUE(both.Eval({{x_, Rational(1, 2)}}).value());
}

TEST_F(ConjunctionTest, RenameAllAtoms) {
  Conjunction c;
  c.Add(LinearConstraint::Le(X(), C(1)));
  std::map<VarId, VarId> renaming{{x_, y_}};
  Conjunction out = c.Rename(renaming);
  EXPECT_EQ(out.FreeVars(), VarSet{y_});
}

}  // namespace
}  // namespace lyric
