#!/usr/bin/env bash
# Regression test for the lyric_shell exception firewall: a statement
# that throws (std::bad_alloc injected via the LYRIC_FAULT shell site)
# must be reported per statement, leave the session alive for the next
# statement, and exit cleanly — not kill the process.
#
# Usage: shell_robustness_test.sh <path-to-lyric_shell> [path-to-lyric_check]
set -u

SHELL_BIN="$1"
CHECK_BIN="${2:-}"
fails=0

fail() {
  echo "FAIL: $1" >&2
  fails=$((fails + 1))
}

# 1. Every statement throws: the shell must survive all of them and quit
#    normally at EOF.
out=$(printf 'SELECT X FROM Desk X;\nSELECT Y FROM Desk Y;\n.quit\n' \
      | LYRIC_FAULT=shell:1.0 "$SHELL_BIN" 2>&1)
rc=$?
[ "$rc" -eq 0 ] || fail "shell exited $rc under LYRIC_FAULT=shell:1.0"
echo "$out" | grep -q "out of memory" \
  || fail "shell did not report the injected bad_alloc: $out"
count=$(echo "$out" | grep -c "out of memory")
[ "$count" -ge 2 ] \
  || fail "shell stopped reporting after the first throw (got $count)"

# 2. Intermittent throws: statements before and after a crash still run.
out=$(printf '.help\n.stats\n.quit\n' \
      | LYRIC_FAULT=shell:0.5:42 "$SHELL_BIN" 2>&1)
rc=$?
[ "$rc" -eq 0 ] || fail "shell exited $rc under intermittent faults"

# 3. No fault: a normal session still works and answers a query.
out=$(printf '.office\nSELECT X FROM Desk X;\n.quit\n' | "$SHELL_BIN" 2>&1)
rc=$?
[ "$rc" -eq 0 ] || fail "clean shell session exited $rc"
echo "$out" | grep -q "row" || fail "clean session produced no rows: $out"

# 4. A corrupt .load reports an error and the session continues.
corrupt=$(mktemp /tmp/lyric_corrupt.XXXXXX)
printf -- '-- lyric database dump v1\nCLASS Br' > "$corrupt"
out=$(printf '.office\n.load %s\nSELECT X FROM Desk X;\n.quit\n' "$corrupt" \
      | "$SHELL_BIN" 2>&1)
rc=$?
rm -f "$corrupt"
[ "$rc" -eq 0 ] || fail "shell exited $rc after corrupt .load"
echo "$out" | grep -qi "error" || fail "corrupt .load not reported: $out"
echo "$out" | grep -q "row" || fail "session dead after corrupt .load: $out"

# 4b. Admission control from the shell: .admit configures the scheduler,
#     .stats reports the effective limits, queries still run under the
#     cap, and .admit off clears it.
out=$(printf '.office\n.admit 2 4 500\n.stats\nSELECT X FROM Desk X;\n.admit off\n.admit\n.quit\n' \
      | "$SHELL_BIN" 2>&1)
rc=$?
[ "$rc" -eq 0 ] || fail "shell exited $rc during .admit session"
echo "$out" | grep -q "max_concurrent = 2" \
  || fail ".stats did not report the configured concurrency cap: $out"
echo "$out" | grep -q "scheduler:" \
  || fail ".stats did not print live scheduler counters: $out"
echo "$out" | grep -q "row" || fail "query failed under .admit cap: $out"
echo "$out" | grep -q "max_concurrent = off" \
  || fail ".admit off did not clear the cap: $out"

# 4c. A forced admission shed surfaces as a typed transient error and the
#     session survives; with LYRIC_RETRY armed the same query succeeds.
out=$(printf '.office\nSELECT X FROM Desk X;\n.quit\n' \
      | LYRIC_FAULT=scheduler:0.5:5 LYRIC_RETRY=16:1 "$SHELL_BIN" 2>&1)
rc=$?
[ "$rc" -eq 0 ] || fail "shell exited $rc under scheduler faults"
echo "$out" | grep -q "row" \
  || fail "retry policy did not recover the shed query: $out"

# 5. lyric_check per-file firewall: a batch with a bad file reports and
#    keeps going (non-zero exit, no crash signal).
if [ -n "$CHECK_BIN" ]; then
  bad=$(mktemp /tmp/lyric_bad.XXXXXX.lyric)
  printf 'SELECT FROM WHERE ((((\n' > "$bad"
  "$CHECK_BIN" "$bad" > /dev/null 2>&1
  rc=$?
  rm -f "$bad"
  { [ "$rc" -ge 1 ] && [ "$rc" -lt 126 ]; } \
    || fail "lyric_check crashed (exit $rc) instead of reporting"
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails shell robustness check(s) failed" >&2
  exit 1
fi
echo "shell robustness: all checks passed"
