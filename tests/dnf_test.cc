#include "constraint/dnf.h"

#include <gtest/gtest.h>

namespace lyric {
namespace {

class DnfTest : public ::testing::Test {
 protected:
  VarId x_ = Variable::Intern("x");
  VarId y_ = Variable::Intern("y");

  LinearExpr X() { return LinearExpr::Var(x_); }
  LinearExpr Y() { return LinearExpr::Var(y_); }
  LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

  Conjunction Interval(int64_t lo, int64_t hi) {
    Conjunction c;
    c.Add(LinearConstraint::Ge(X(), C(lo)));
    c.Add(LinearConstraint::Le(X(), C(hi)));
    return c;
  }
};

TEST_F(DnfTest, EmptyIsFalse) {
  Dnf d;
  EXPECT_TRUE(d.IsFalse());
  EXPECT_FALSE(d.Satisfiable().value());
  EXPECT_EQ(d.ToString(), "false");
}

TEST_F(DnfTest, TrueDnf) {
  EXPECT_TRUE(Dnf::True().IsTrue());
  EXPECT_TRUE(Dnf::True().Satisfiable().value());
}

TEST_F(DnfTest, FalseDisjunctsDropped) {
  Dnf d(Conjunction::False());
  EXPECT_TRUE(d.IsFalse());
}

TEST_F(DnfTest, OrUnion) {
  Dnf d = Dnf(Interval(0, 1)).Or(Dnf(Interval(5, 6)));
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.Eval({{x_, Rational(1, 2)}}).value());
  EXPECT_TRUE(d.Eval({{x_, Rational(5)}}).value());
  EXPECT_FALSE(d.Eval({{x_, Rational(3)}}).value());
}

TEST_F(DnfTest, AndDistributes) {
  Dnf a = Dnf(Interval(0, 3)).Or(Dnf(Interval(10, 13)));
  Dnf b = Dnf(Interval(2, 11));
  Dnf both = a.And(b);
  // Intersections: [2,3] and [10,11].
  EXPECT_TRUE(both.Eval({{x_, Rational(2)}}).value());
  EXPECT_TRUE(both.Eval({{x_, Rational(11)}}).value());
  EXPECT_FALSE(both.Eval({{x_, Rational(5)}}).value());
}

TEST_F(DnfTest, NegateConjunctionCoversComplement) {
  Conjunction c = Interval(0, 1);
  Dnf neg = Dnf::NegateConjunction(c);
  for (int64_t v = -3; v <= 4; ++v) {
    Assignment pt{{x_, Rational(v)}};
    EXPECT_NE(c.Eval(pt).value(), neg.Eval(pt).value()) << v;
  }
}

TEST_F(DnfTest, NegateTrueAndFalse) {
  EXPECT_TRUE(Dnf::True().Negate().IsFalse());
  EXPECT_TRUE(Dnf::False().Negate().IsTrue());
}

TEST_F(DnfTest, DoubleNegationSemantics) {
  Dnf d = Dnf(Interval(0, 1)).Or(Dnf(Interval(3, 4)));
  Dnf nn = d.Negate().Negate();
  for (int64_t v = -1; v <= 5; ++v) {
    Assignment pt{{x_, Rational(v)}};
    EXPECT_EQ(d.Eval(pt).value(), nn.Eval(pt).value()) << v;
  }
}

TEST_F(DnfTest, SplitDisequalities) {
  Conjunction c = Interval(0, 2);
  c.Add(LinearConstraint::Neq(X(), C(1)));
  Dnf split = Dnf(c).SplitDisequalities();
  EXPECT_EQ(split.size(), 2u);
  for (const Conjunction& d : split.disjuncts()) {
    EXPECT_FALSE(d.HasDisequality());
  }
  for (int64_t num = 0; num <= 8; ++num) {
    Assignment pt{{x_, Rational(num, 4)}};
    EXPECT_EQ(Dnf(c).Eval(pt).value(), split.Eval(pt).value()) << num;
  }
}

TEST_F(DnfTest, SplitTwoDisequalitiesGivesFourPieces) {
  Conjunction c = Interval(0, 3);
  c.Add(LinearConstraint::Neq(X(), C(1)));
  c.Add(LinearConstraint::Neq(X(), C(2)));
  Dnf split = Dnf(c).SplitDisequalities();
  // 2^2 candidates; the (x<1 and x>2) piece is infeasible but only
  // syntactically dropped later — semantics must still match.
  for (int64_t num = -1; num <= 13; ++num) {
    Assignment pt{{x_, Rational(num, 4)}};
    EXPECT_EQ(Dnf(c).Eval(pt).value(), split.Eval(pt).value()) << num;
  }
}

TEST_F(DnfTest, EliminateVariableAcrossDisjuncts) {
  // (y = x, 0<=x<=1) or (y = -x, 0<=x<=1); eliminate x -> -1<=y<=1 range
  // split across two disjuncts.
  Conjunction a;
  a.Add(LinearConstraint::Eq(Y(), X()));
  a.Add(LinearConstraint::Ge(X(), C(0)));
  a.Add(LinearConstraint::Le(X(), C(1)));
  Conjunction b;
  b.Add(LinearConstraint::Eq(Y(), -X()));
  b.Add(LinearConstraint::Ge(X(), C(0)));
  b.Add(LinearConstraint::Le(X(), C(1)));
  Dnf d = Dnf(a).Or(Dnf(b));
  Dnf out = d.EliminateVariable(x_).value();
  EXPECT_TRUE(out.Eval({{y_, Rational(1)}}).value());
  EXPECT_TRUE(out.Eval({{y_, Rational(-1)}}).value());
  EXPECT_FALSE(out.Eval({{y_, Rational(2)}}).value());
}

TEST_F(DnfTest, EliminateVariableSplitsDisequalityAutomatically) {
  // 0 <= x <= 2, y = x, x != 1; eliminate x. The disequality mentions x,
  // so the DNF layer must split, yielding y in [0,1) u (1,2].
  Conjunction c = Interval(0, 2);
  c.Add(LinearConstraint::Eq(Y(), X()));
  c.Add(LinearConstraint::Neq(X(), C(1)));
  Dnf out = Dnf(c).EliminateVariable(x_).value();
  EXPECT_TRUE(out.Eval({{y_, Rational(1, 2)}}).value());
  EXPECT_FALSE(out.Eval({{y_, Rational(1)}}).value());
  EXPECT_TRUE(out.Eval({{y_, Rational(2)}}).value());
  EXPECT_FALSE(out.Eval({{y_, Rational(3)}}).value());
}

TEST_F(DnfTest, FindPointSkipsEmptyDisjuncts) {
  Conjunction empty;
  empty.Add(LinearConstraint::Ge(X(), C(2)));
  empty.Add(LinearConstraint::Le(X(), C(1)));
  Dnf d = Dnf(empty).Or(Dnf(Interval(5, 6)));
  auto pt = d.FindPoint().value();
  ASSERT_TRUE(pt.has_value());
  EXPECT_GE(pt->at(x_), Rational(5));
  EXPECT_LE(pt->at(x_), Rational(6));
}

TEST_F(DnfTest, RenameAndSubstitute) {
  Dnf d(Interval(0, 1));
  Dnf renamed = d.Rename({{x_, y_}});
  EXPECT_EQ(renamed.FreeVars(), VarSet{y_});
  Dnf substituted = d.Substitute(x_, Y() + C(5));
  // y + 5 in [0,1] -> y in [-5,-4].
  EXPECT_TRUE(substituted.Eval({{y_, Rational(-5)}}).value());
  EXPECT_FALSE(substituted.Eval({{y_, Rational(0)}}).value());
}

}  // namespace
}  // namespace lyric
