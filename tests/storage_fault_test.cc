// Satellite: injected storage I/O failures (LYRIC_FAULT=storage:...)
// must surface as typed Status errors — never crashes, never silent
// corruption — and a store poisoned by a failed commit must recover its
// last durable state on reopen.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <map>
#include <string>

#include "storage/file_io.h"
#include "storage/paged_store.h"
#include "util/fault.h"

namespace lyric {
namespace storage {
namespace {

std::string FreshPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  ::unlink(path.c_str());
  ::unlink(PagedStore::WalPathFor(path).c_str());
  return path;
}

class StorageFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fault::ConfigureForTesting(""));
    ArmDiskFullForTesting(-1);
  }
  void TearDown() override {
    ASSERT_TRUE(fault::ConfigureForTesting(""));
    ArmDiskFullForTesting(-1);
  }
};

TEST_F(StorageFaultTest, InjectedIoFailuresAreTypedUnavailable) {
  ASSERT_TRUE(fault::ConfigureForTesting("storage:1.0:7"));
  File f = File::OpenReadWrite(FreshPath("sf_io.bin")).value();
  char buf[16] = {};
  Status w = f.WriteAt(0, buf, sizeof buf);
  EXPECT_TRUE(w.IsUnavailable()) << w;
  EXPECT_NE(w.message().find("injected fault: storage"), std::string::npos);
  Status s = f.Sync();
  EXPECT_TRUE(s.IsUnavailable()) << s;
  auto r = f.ReadAtMost(0, buf, sizeof buf);
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status();
}

TEST_F(StorageFaultTest, FailedCommitPoisonsButReopenRecovers) {
  std::string path = FreshPath("sf_poison.lyricpg");
  {
    auto store = PagedStore::Open({.path = path}).value();
    ASSERT_TRUE(store->Put("committed", "before-fault").ok());
    ASSERT_TRUE(store->Commit().ok());
    ASSERT_TRUE(store->Put("lost", "after-fault").ok());

    // Every I/O now fails: the commit must return a typed error...
    ASSERT_TRUE(fault::ConfigureForTesting("storage:1.0:21"));
    Status c = store->Commit();
    ASSERT_FALSE(c.ok());
    EXPECT_TRUE(c.IsUnavailable()) << c;

    // ...and the store is poisoned fail-stop: every later call reports
    // the original failure rather than limping on half-applied state.
    Status p = store->Put("more", "x");
    EXPECT_FALSE(p.ok());
    EXPECT_TRUE(store->Get("committed").status().IsUnavailable());
    fault::ConfigureForTesting("");
    // Close is best-effort on a poisoned store; ignore its status.
    (void)store->Close();
  }
  // Reopen recovers exactly the durable prefix: the committed record is
  // there, the in-flight one is gone.
  auto store = PagedStore::Open({.path = path}).value();
  EXPECT_EQ(store->Get("committed").value(), "before-fault");
  EXPECT_TRUE(store->Get("lost").status().IsNotFound());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(StorageFaultTest, ProbabilisticFaultsNeverCorrupt) {
  // Hammer the store with ~20% I/O failures while armed. Any individual
  // op may fail (typed); whenever the store poisons, disarm, reopen
  // (recovery itself runs clean — a crashed box comes back with a
  // healthy disk), re-arm, and continue. At the end the surviving store
  // must hold, for every oracle key, the oracle value or a provably
  // newer one (an injected fsync-fault can strike after the kernel
  // already persisted the commit, so "newer" is legal; "older" or
  // garbage is corruption).
  std::string path = FreshPath("sf_hammer.lyricpg");
  std::map<std::string, std::string> oracle;   // committed state
  std::map<std::string, std::string> pending;  // since last commit
  int reopens = 0;

  auto store = PagedStore::Open({.path = path}).value();
  ASSERT_TRUE(fault::ConfigureForTesting("storage:0.2:1234"));

  auto reopen = [&] {
    fault::ConfigureForTesting("");
    (void)store->Close();
    pending.clear();
    auto reopened = PagedStore::Open({.path = path});
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    store = std::move(*reopened);
    ++reopens;
    ASSERT_TRUE(fault::ConfigureForTesting(
        "storage:0.2:" + std::to_string(1234 + reopens)));
  };

  for (int i = 0; i < 300; ++i) {
    std::string k = "k" + std::to_string(i % 40);
    std::string v = "v" + std::to_string(i);
    Status st = store->Put(k, v);
    if (st.ok()) {
      pending[k] = v;
      if (i % 7 == 0) {
        Status c = store->Commit();
        if (c.ok()) {
          for (auto& [pk, pv] : pending) oracle[pk] = pv;
          pending.clear();
        }
      }
    }
    auto probe = store->Get(k);
    if (!probe.ok() && !probe.status().IsNotFound()) {
      reopen();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  fault::ConfigureForTesting("");
  (void)store->Close();

  auto final_store = PagedStore::Open({.path = path}).value();
  for (const auto& [k, v] : oracle) {
    auto got = final_store->Get(k);
    ASSERT_TRUE(got.ok()) << k << ": " << got.status();
    // v is "v<i>" where i % 40 identifies the key; a legal recovered
    // value is any later write of the SAME key.
    int got_n = std::atoi(got->c_str() + 1);
    int want_n = std::atoi(v.c_str() + 1);
    int key_n = std::atoi(k.c_str() + 1);
    EXPECT_EQ((*got)[0], 'v') << k << " holds garbage: " << *got;
    EXPECT_GE(got_n, want_n) << k << " lost a committed write";
    EXPECT_EQ(got_n % 40, key_n) << k << " holds another key's value";
  }
  ASSERT_TRUE(final_store->Close().ok());
  SUCCEED() << "survived with " << reopens << " reopens";
}

TEST_F(StorageFaultTest, DiskFullFailsWholeAndSticks) {
  // A budget of 8 bytes: a 16-byte write must fail WHOLE (a full disk
  // never leaves a torn record), and every write after it — even one
  // that would fit the original budget — keeps failing, like a
  // genuinely full filesystem.
  File f = File::OpenReadWrite(FreshPath("sf_enospc_raw.bin")).value();
  ArmDiskFullForTesting(8);
  char buf[16] = {};
  Status w1 = f.WriteAt(0, buf, sizeof buf);
  EXPECT_TRUE(w1.IsResourceExhausted()) << w1;
  EXPECT_NE(w1.message().find("no space left"), std::string::npos);
  EXPECT_EQ(f.Size().value(), 0u) << "a failed ENOSPC write tore bytes";
  Status w2 = f.WriteAt(0, buf, 1);
  EXPECT_TRUE(w2.IsResourceExhausted()) << "ENOSPC was not sticky: " << w2;
  // "Freeing space" (disarming) makes writes work again.
  ArmDiskFullForTesting(-1);
  EXPECT_TRUE(f.WriteAt(0, buf, sizeof buf).ok());
}

TEST_F(StorageFaultTest, DiskFullCommitPoisonsButReopenRecovers) {
  std::string path = FreshPath("sf_enospc.lyricpg");
  {
    auto store = PagedStore::Open({.path = path}).value();
    ASSERT_TRUE(store->Put("committed", "fits").ok());
    ASSERT_TRUE(store->Commit().ok());
    ASSERT_TRUE(store->Put("lost", "does-not-fit").ok());

    // The disk fills up: the commit must surface the typed
    // kResourceExhausted (operators alert on it differently than on
    // kUnavailable)...
    ArmDiskFullForTesting(0);
    Status c = store->Commit();
    ASSERT_FALSE(c.ok());
    EXPECT_TRUE(c.IsResourceExhausted()) << c;

    // ...and poison fail-stop like any failed commit.
    EXPECT_FALSE(store->Put("more", "x").ok());
    EXPECT_TRUE(store->poison_status().IsResourceExhausted());
    ArmDiskFullForTesting(-1);
    (void)store->Close();
  }
  // Space freed, reopen: exactly the durable prefix is back.
  auto store = PagedStore::Open({.path = path}).value();
  EXPECT_EQ(store->Get("committed").value(), "fits");
  EXPECT_TRUE(store->Get("lost").status().IsNotFound());
  ASSERT_TRUE(store->Close().ok());
}

}  // namespace
}  // namespace storage
}  // namespace lyric
