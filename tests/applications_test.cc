// Application-shaped integration tests: the §1.2 MDA and manufacturing
// workloads with asserted answers (the examples print these; here they
// are pinned).

#include <gtest/gtest.h>

#include "object/database.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

LinearExpr V(const char* n) { return LinearExpr::Var(Variable::Intern(n)); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

class MdaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClassDef goal;
    goal.name = "Goal";
    goal.attributes = {
        {"gname", false, kStringClass, {}},
        {"region", false, kCstClass, {"course", "speed", "depth", "time"}},
    };
    ASSERT_TRUE(db_.schema().AddClass(goal).ok());
    AddGoal("envelope", [](Conjunction* c) {
      c->Add(LinearConstraint::Ge(V("speed"), C(0)));
      c->Add(LinearConstraint::Le(V("speed"), C(30)));
      c->Add(LinearConstraint::Ge(V("depth"), C(0)));
      c->Add(LinearConstraint::Le(V("depth"), C(800)));
      c->Add(LinearConstraint::Ge(V("time"), C(0)));
      c->Add(LinearConstraint::Le(V("time"), C(60)));
    });
    AddGoal("quiet", [](Conjunction* c) {
      c->Add(LinearConstraint::Le(
          V("speed") + V("depth").Scale(Rational(1, 100)), C(18)));
    });
    AddGoal("deep_window", [](Conjunction* c) {
      c->Add(LinearConstraint::Ge(V("depth"), C(150)));
      c->Add(LinearConstraint::Le(V("depth"), C(250)));
    });
    AddGoal("early_only", [](Conjunction* c) {
      c->Add(LinearConstraint::Le(V("time"), C(10)));
    });
    AddGoal("late_only", [](Conjunction* c) {
      c->Add(LinearConstraint::Ge(V("time"), C(45)));
    });
  }

  template <typename Fn>
  void AddGoal(const std::string& name, Fn fill) {
    Oid oid = Oid::Symbol(name);
    ASSERT_TRUE(db_.Insert(oid, "Goal").ok());
    ASSERT_TRUE(
        db_.SetAttribute(oid, "gname", Value::Scalar(Oid::Str(name))).ok());
    Conjunction c;
    fill(&c);
    auto obj = CstObject::FromConjunction(
        {Variable::Intern("course"), Variable::Intern("speed"),
         Variable::Intern("depth"), Variable::Intern("time")},
        c);
    ASSERT_TRUE(obj.ok());
    ASSERT_TRUE(db_.SetCstAttribute(oid, "region", *obj).ok());
  }

  ResultSet Run(const std::string& text) {
    Evaluator ev(&db_);
    auto r = ev.Execute(text);
    EXPECT_TRUE(r.ok()) << text << "\n -> " << r.status();
    return r.ok() ? *r : ResultSet();
  }

  Database db_;
};

TEST_F(MdaTest, ContradictingGoalsDetected) {
  ResultSet r = Run(
      "SELECT G1.gname, G2.gname FROM Goal G1, Goal G2 "
      "WHERE G1.region[R1] and G2.region[R2] and "
      "not G1.gname = G2.gname and "
      "not SAT(R1(c, s, d, t) and R2(c, s, d, t))");
  // Exactly the early/late pair, both orders.
  ASSERT_EQ(r.size(), 2u);
  std::set<std::string> names;
  for (const auto& row : r.rows()) names.insert(row[0].AsString());
  EXPECT_TRUE(names.count("early_only"));
  EXPECT_TRUE(names.count("late_only"));
}

TEST_F(MdaTest, BestSpeedUnderJointGoals) {
  // max speed s.t. envelope, quiet, depth window: at depth 150,
  // speed <= 18 - 1.5 = 33/2.
  ResultSet r = Run(
      "SELECT MAX(speed SUBJECT TO ((speed) | E(c, s0, d, t) and "
      "Q(c, s0, d, t) and W(c, s0, d, t) and speed = s0)) "
      "FROM Goal GE, Goal GQ, Goal GW "
      "WHERE GE.gname = 'envelope' and GE.region[E] and "
      "GQ.gname = 'quiet' and GQ.region[Q] and "
      "GW.gname = 'deep_window' and GW.region[W]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], Oid::Real(Rational(33, 2)));
}

TEST_F(MdaTest, GoalSubsumption) {
  // envelope conjoined with deep_window entails the envelope (trivially)
  // and also depth <= 300.
  ResultSet r = Run(
      "SELECT GW.gname FROM Goal GW, Goal GE "
      "WHERE GW.gname = 'deep_window' and GW.region[R] and "
      "GE.gname = 'envelope' and GE.region[E] and "
      "((d) | R(c, s, d, t) and E(c, s, d, t) and depth = d) "
      "|= ((d) | 150 <= d and d <= 250)");
  EXPECT_EQ(r.size(), 1u);
}

class ManufacturingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClassDef process;
    process.name = "Process";
    process.attributes = {
        {"pname", false, kStringClass, {}},
        {"io", false, kCstClass, {"m1", "m2", "p1"}},
    };
    ASSERT_TRUE(db_.schema().AddClass(process).ok());
    // p1 of product needs 2 m1 + 1 m2; capacity 50.
    Conjunction io;
    for (const char* v : {"m1", "m2", "p1"}) {
      io.Add(LinearConstraint::Ge(V(v), C(0)));
    }
    io.Add(LinearConstraint::Ge(V("m1"), V("p1").Scale(Rational(2))));
    io.Add(LinearConstraint::Ge(V("m2"), V("p1")));
    io.Add(LinearConstraint::Le(V("p1"), C(50)));
    Oid proc = Oid::Symbol("proc");
    ASSERT_TRUE(db_.Insert(proc, "Process").ok());
    ASSERT_TRUE(
        db_.SetAttribute(proc, "pname", Value::Scalar(Oid::Str("proc")))
            .ok());
    ASSERT_TRUE(db_.SetCstAttribute(
                      proc, "io",
                      CstObject::FromConjunction(
                          {Variable::Intern("m1"), Variable::Intern("m2"),
                           Variable::Intern("p1")},
                          io)
                          .value())
                    .ok());
  }

  ResultSet Run(const std::string& text) {
    Evaluator ev(&db_);
    auto r = ev.Execute(text);
    EXPECT_TRUE(r.ok()) << text << "\n -> " << r.status();
    return r.ok() ? *r : ResultSet();
  }

  Database db_;
};

TEST_F(ManufacturingTest, MinimalPurchaseForDemand) {
  // To make 20 units: at least 40 m1 and 20 m2.
  ResultSet r = Run(
      "SELECT MIN(m1 SUBJECT TO ((m1) | IO(m1, m2, p1) and p1 >= 20)), "
      "MIN(m2 SUBJECT TO ((m2) | IO(m1, m2, p1) and p1 >= 20)) "
      "FROM Process P WHERE P.io[IO]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], Oid::Real(Rational(40)));
  EXPECT_EQ(r.rows()[0][1], Oid::Real(Rational(20)));
}

TEST_F(ManufacturingTest, ProducibleRangeFromStock) {
  // With 30 m1 and 100 m2: p1 in [0, 15].
  ResultSet r = Run(
      "SELECT ((p1) | IO(m1, m2, p1) and m1 <= 30 and m2 <= 100) "
      "FROM Process P WHERE P.io[IO]");
  ASSERT_EQ(r.size(), 1u);
  Evaluator ev(&db_);
  CstObject range = db_.GetCst(r.rows()[0][0]).value();
  EXPECT_TRUE(range.Contains({Rational(15)}).value());
  EXPECT_FALSE(range.Contains({Rational(16)}).value());
}

TEST_F(ManufacturingTest, ProfitQueryWithObjectiveOverTwoSpaces) {
  // max 3*p1 - m1 - m2 subject to the process: each unit nets 3-2-1 = 0;
  // optimum 0 (any production level) — the LP sees through it exactly.
  ResultSet r = Run(
      "SELECT MAX(3 * p1 - m1 - m2 SUBJECT TO ((p1) | IO(m1, m2, p1))) "
      "FROM Process P WHERE P.io[IO]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], Oid::Real(Rational(0)));
}

}  // namespace
}  // namespace lyric
