#include "arith/rational.h"

#include <random>

#include <gtest/gtest.h>

namespace lyric {
namespace {

TEST(RationalTest, CanonicalForm) {
  Rational r(6, 8);
  EXPECT_EQ(r.num(), BigInt(3));
  EXPECT_EQ(r.den(), BigInt(4));
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), BigInt(-1));
  EXPECT_EQ(neg.den(), BigInt(2));
  Rational z(0, 17);
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.den(), BigInt(1));
}

TEST(RationalTest, EqualityIsStructural) {
  EXPECT_EQ(Rational(1, 2), Rational(2, 4));
  EXPECT_EQ(Rational(-1, 2), Rational(1, -2));
  EXPECT_NE(Rational(1, 2), Rational(1, 3));
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(RationalTest, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LE(Rational(1, 2), Rational(2, 4));
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(RationalTest, FromStringForms) {
  EXPECT_EQ(Rational::FromString("3").value(), Rational(3));
  EXPECT_EQ(Rational::FromString("-7/2").value(), Rational(-7, 2));
  EXPECT_EQ(Rational::FromString("1.25").value(), Rational(5, 4));
  EXPECT_EQ(Rational::FromString("-0.5").value(), Rational(-1, 2));
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("a").ok());
  EXPECT_FALSE(Rational::FromString("1.").ok());
}

TEST(RationalTest, FromDoubleExact) {
  EXPECT_EQ(Rational::FromDouble(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::FromDouble(-0.25), Rational(-1, 4));
  EXPECT_EQ(Rational::FromDouble(3.0), Rational(3));
  EXPECT_EQ(Rational::FromDouble(0.0), Rational(0));
}

TEST(RationalTest, ToStringForms) {
  EXPECT_EQ(Rational(3).ToString(), "3");
  EXPECT_EQ(Rational(-7, 2).ToString(), "-7/2");
  EXPECT_EQ(Rational(0).ToString(), "0");
}

TEST(RationalTest, InverseAndAbs) {
  EXPECT_EQ(Rational(2, 3).Inverse(), Rational(3, 2));
  EXPECT_EQ(Rational(-2, 3).Inverse(), Rational(-3, 2));
  EXPECT_EQ(Rational(-5, 7).Abs(), Rational(5, 7));
}

TEST(RationalTest, FieldAxiomsRandomized) {
  std::mt19937_64 rng(5);
  auto rand_rat = [&]() {
    int64_t num = static_cast<int64_t>(rng() % 2001) - 1000;
    int64_t den = static_cast<int64_t>(rng() % 999) + 1;
    return Rational(num, den);
  };
  for (int i = 0; i < 300; ++i) {
    Rational a = rand_rat(), b = rand_rat(), c = rand_rat();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), Rational(1));
      EXPECT_EQ(b / a * a, b);
    }
  }
}

TEST(RationalTest, NoPrecisionLossInLongSums) {
  // 1/3 summed 3000 times is exactly 1000 — the reason constraints use
  // Rational, not double.
  Rational sum;
  for (int i = 0; i < 3000; ++i) sum += Rational(1, 3);
  EXPECT_EQ(sum, Rational(1000));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-7, 4).ToDouble(), -1.75);
}

}  // namespace
}  // namespace lyric
