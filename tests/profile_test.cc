// End-to-end observability tests: QueryProfile attachment, span tree
// shape, counter deltas on a real §4.1 paper query, counter monotonicity
// across executions, and EvalOptions::max_rows truncation.

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

// The §4.1 global-coordinates query: translate every office object's
// extent to room coordinates. Exercises FROM enumeration, path-expression
// WHERE conjuncts, and CST construction with FM projection + LP-based
// canonicalization in SELECT.
constexpr char kGlobalCoordinatesQuery[] =
    "SELECT O, ((u, v) | E and D and L) "
    "FROM Object_in_Room O, Office_Object CO "
    "WHERE O.catalog_object[CO] and O.location[L] and CO.extent[E] and "
    "CO.translation[D]";

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(office::BuildOfficeDatabase(&db_).ok());
  }

  Database db_;
};

TEST_F(ProfileTest, NoProfileByDefault) {
  Evaluator ev(&db_);
  auto r = ev.Execute(kGlobalCoordinatesQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->profile(), nullptr);
}

TEST_F(ProfileTest, ProfileAttachedWithSpanTree) {
  EvalOptions opts;
  opts.collect_trace = true;
  Evaluator ev(&db_, opts);
  auto r = ev.Execute(kGlobalCoordinatesQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_NE(r->profile(), nullptr);
  EXPECT_GT(r->size(), 0u);

  const obs::SpanNode& root = r->profile()->trace.root();
  EXPECT_EQ(root.name, "query");
  EXPECT_NE(root.FindChild("parse"), nullptr);
  EXPECT_NE(root.FindChild("from"), nullptr);
  // One WHERE span per enumerated binding, one SELECT span per surviving
  // binding; every row in the result came from a surviving binding.
  EXPECT_GE(root.CountChildren("where"), root.CountChildren("select"));
  EXPECT_GE(root.CountChildren("select"), r->size());
  EXPECT_GT(root.dur_ns, 0u);
}

TEST_F(ProfileTest, CounterDeltasAttributeEngineWork) {
  EvalOptions opts;
  opts.collect_trace = true;
  Evaluator ev(&db_, opts);
  auto r = ev.Execute(kGlobalCoordinatesQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_NE(r->profile(), nullptr);

  obs::MetricsSnapshot delta = r->profile()->CounterDeltas();
  // Projecting the extent formula runs Fourier-Motzkin; canonicalizing
  // the result runs redundancy LPs through the simplex.
  EXPECT_GE(delta.counters["simplex.lp_solves"], 1u);
  EXPECT_GE(delta.counters["fm.vars_eliminated"], 1u);
  EXPECT_GE(delta.counters["evaluator.queries"], 1u);
  EXPECT_GE(delta.counters["evaluator.rows_emitted"], r->size());
  EXPECT_GE(delta.counters["evaluator.cst_constructed"], 1u);

  // And the human-readable rendering mentions the stages and counters.
  std::string text = r->profile()->ToString();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("simplex.lp_solves"), std::string::npos);
}

TEST_F(ProfileTest, ChromeTraceJsonIsEmitted) {
  EvalOptions opts;
  opts.collect_trace = true;
  Evaluator ev(&db_, opts);
  auto r = ev.Execute(kGlobalCoordinatesQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_NE(r->profile(), nullptr);
  std::string json = r->profile()->ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"query\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ProfileTest, CountersAreMonotonicAcrossExecutions) {
  Evaluator ev(&db_);
  ASSERT_TRUE(ev.Execute(kGlobalCoordinatesQuery).ok());
  obs::MetricsSnapshot first = obs::Registry::Global().Snapshot();
  ASSERT_TRUE(ev.Execute(kGlobalCoordinatesQuery).ok());
  obs::MetricsSnapshot second = obs::Registry::Global().Snapshot();

  uint64_t q1 = first.counters["evaluator.queries"];
  uint64_t q2 = second.counters["evaluator.queries"];
  EXPECT_EQ(q2, q1 + 1);
  EXPECT_GE(second.counters["simplex.lp_solves"],
            first.counters["simplex.lp_solves"]);
  EXPECT_GT(second.counters["evaluator.bindings_enumerated"],
            first.counters["evaluator.bindings_enumerated"]);
}

TEST_F(ProfileTest, MaxRowsTruncatesAndCounts) {
  ASSERT_TRUE(office::AddScaledDesks(&db_, /*num_desks=*/5, /*seed=*/7).ok());
  obs::MetricsSnapshot before = obs::Registry::Global().Snapshot();

  EvalOptions opts;
  opts.max_rows = 1;
  Evaluator ev(&db_, opts);
  auto r = ev.Execute("SELECT O FROM Object_in_Room O");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 1u);
  EXPECT_TRUE(r->truncated());

  obs::MetricsSnapshot delta =
      obs::Registry::Global().Snapshot().DeltaSince(before);
  EXPECT_GE(delta.counters["evaluator.rows_truncated"], 1u);
}

TEST_F(ProfileTest, NoTruncationUnderLimit) {
  Evaluator ev(&db_);
  auto r = ev.Execute("SELECT O FROM Object_in_Room O");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->truncated());
}

}  // namespace
}  // namespace lyric
