#include "object/schema.h"

#include <gtest/gtest.h>

#include "office/office_db.h"

namespace lyric {
namespace {

TEST(SchemaTest, BuiltinsExist) {
  Schema s;
  EXPECT_TRUE(s.HasClass("int"));
  EXPECT_TRUE(s.HasClass("real"));
  EXPECT_TRUE(s.HasClass("string"));
  EXPECT_TRUE(s.HasClass("bool"));
  EXPECT_TRUE(s.HasClass("CST"));
  EXPECT_TRUE(s.HasClass("CST(2)"));
  EXPECT_FALSE(s.HasClass("Desk"));
}

TEST(SchemaTest, CstClassNames) {
  EXPECT_EQ(CstClassName(2), "CST(2)");
  EXPECT_EQ(ParseCstClassName("CST(2)"), 2u);
  EXPECT_EQ(ParseCstClassName("CST(10)"), 10u);
  EXPECT_FALSE(ParseCstClassName("CST").has_value());
  EXPECT_FALSE(ParseCstClassName("CST()").has_value());
  EXPECT_FALSE(ParseCstClassName("CST(x)").has_value());
  EXPECT_FALSE(ParseCstClassName("Desk").has_value());
}

TEST(SchemaTest, BuiltinSubclassing) {
  Schema s;
  EXPECT_TRUE(s.IsSubclass("int", "real"));  // 20 has the properties of 20.0
  EXPECT_FALSE(s.IsSubclass("real", "int"));
  EXPECT_TRUE(s.IsSubclass("CST(3)", "CST"));
  EXPECT_FALSE(s.IsSubclass("CST", "CST(3)"));
  EXPECT_TRUE(s.IsSubclass("string", "string"));
}

TEST(SchemaTest, DuplicateClassRejected) {
  Schema s;
  ClassDef c;
  c.name = "A";
  ASSERT_TRUE(s.AddClass(c).ok());
  EXPECT_TRUE(s.AddClass(c).IsAlreadyExists());
  ClassDef builtin;
  builtin.name = "int";
  EXPECT_TRUE(s.AddClass(builtin).IsAlreadyExists());
}

TEST(SchemaTest, UnknownParentRejected) {
  Schema s;
  ClassDef c;
  c.name = "B";
  c.parents = {"Nope"};
  EXPECT_TRUE(s.AddClass(c).IsNotFound());
}

TEST(SchemaTest, UnknownAttributeTargetRejected) {
  Schema s;
  ClassDef c;
  c.name = "C";
  c.attributes = {{"a", false, "Nope", {}}};
  EXPECT_TRUE(s.AddClass(c).IsNotFound());
}

TEST(SchemaTest, CstAttributeNeedsVariables) {
  Schema s;
  ClassDef c;
  c.name = "D";
  c.attributes = {{"ext", false, kCstClass, {}}};
  EXPECT_TRUE(s.AddClass(c).IsInvalidArgument());
  c.attributes = {{"ext", false, kCstClass, {"w", "w"}}};
  EXPECT_TRUE(s.AddClass(c).IsInvalidArgument());
}

TEST(SchemaTest, RenamingArityChecked) {
  Schema s;
  ClassDef target;
  target.name = "Target";
  target.interface_vars = {"x", "y"};
  ASSERT_TRUE(s.AddClass(target).ok());
  ClassDef user;
  user.name = "User";
  user.attributes = {{"t", false, "Target", {"p"}}};  // Arity 1 != 2.
  EXPECT_TRUE(s.AddClass(user).IsTypeError());
  user.attributes = {{"t", false, "Target", {"p", "q"}}};
  EXPECT_TRUE(s.AddClass(user).ok());
}

TEST(SchemaTest, OfficeSchemaIsA) {
  Schema s;
  ASSERT_TRUE(office::BuildOfficeSchema(&s).ok());
  EXPECT_TRUE(s.IsSubclass("Desk", "Office_Object"));
  EXPECT_TRUE(s.IsSubclass("File_Cabinet", "Office_Object"));
  EXPECT_FALSE(s.IsSubclass("Office_Object", "Desk"));
  EXPECT_FALSE(s.IsSubclass("Desk", "File_Cabinet"));
  EXPECT_TRUE(s.IsSubclass("Region", "CST(2)"));
  EXPECT_TRUE(s.IsSubclass("Region", "CST"));
}

TEST(SchemaTest, AttributeInheritance) {
  Schema s;
  ASSERT_TRUE(office::BuildOfficeSchema(&s).ok());
  // Desk inherits extent from Office_Object.
  auto ext = s.FindAttribute("Desk", "extent");
  ASSERT_TRUE(ext.ok());
  EXPECT_TRUE((*ext)->IsCst());
  EXPECT_EQ((*ext)->variables, (std::vector<std::string>{"w", "z"}));
  // Desk's own drawer attribute renames Drawer's interface.
  auto drawer = s.FindAttribute("Desk", "drawer");
  ASSERT_TRUE(drawer.ok());
  EXPECT_EQ((*drawer)->target_class, "Drawer");
  EXPECT_EQ((*drawer)->variables, (std::vector<std::string>{"p", "q"}));
  // Office_Object itself has no drawer.
  EXPECT_TRUE(s.FindAttribute("Office_Object", "drawer").status().IsNotFound());
}

TEST(SchemaTest, SetValuedAttribute) {
  Schema s;
  ASSERT_TRUE(office::BuildOfficeSchema(&s).ok());
  auto dc = s.FindAttribute("File_Cabinet", "drawer_center");
  ASSERT_TRUE(dc.ok());
  EXPECT_TRUE((*dc)->set_valued);
  auto desk_dc = s.FindAttribute("Desk", "drawer_center");
  ASSERT_TRUE(desk_dc.ok());
  EXPECT_FALSE((*desk_dc)->set_valued);
}

TEST(SchemaTest, AllAttributesIncludesInherited) {
  Schema s;
  ASSERT_TRUE(office::BuildOfficeSchema(&s).ok());
  auto attrs = s.AllAttributes("Desk");
  ASSERT_TRUE(attrs.ok());
  std::set<std::string> names;
  for (const AttributeDef* a : *attrs) names.insert(a->name);
  EXPECT_TRUE(names.count("drawer"));
  EXPECT_TRUE(names.count("drawer_center"));
  EXPECT_TRUE(names.count("extent"));       // Inherited.
  EXPECT_TRUE(names.count("translation"));  // Inherited.
  EXPECT_TRUE(names.count("color"));        // Inherited.
}

TEST(SchemaTest, SubclassesOf) {
  Schema s;
  ASSERT_TRUE(office::BuildOfficeSchema(&s).ok());
  auto subs = s.SubclassesOf("Office_Object");
  std::set<std::string> names(subs.begin(), subs.end());
  EXPECT_TRUE(names.count("Office_Object"));
  EXPECT_TRUE(names.count("Desk"));
  EXPECT_TRUE(names.count("File_Cabinet"));
  EXPECT_FALSE(names.count("Drawer"));
}

}  // namespace
}  // namespace lyric
