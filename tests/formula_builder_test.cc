#include "query/formula_builder.h"

#include <gtest/gtest.h>

#include "office/office_db.h"
#include "query/parser.h"
#include "query/path_walker.h"

namespace lyric {
namespace {

class FormulaBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
    declared_ = {"X", "E", "D", "L", "N"};
    // Bind E to the desk extent with its schema dim context, as the path
    // walker would.
    binding_.vars["X"] = ids_.standard_desk;
    Value ext = db_.GetAttribute(ids_.standard_desk, "extent").value();
    binding_.vars["E"] = ext.scalar();
    binding_.cst_dims["E"] = {
        {"w", "standard_desk.w"}, {"z", "standard_desk.z"}};
    Value tr = db_.GetAttribute(ids_.standard_desk, "translation").value();
    binding_.vars["D"] = tr.scalar();
    binding_.cst_dims["D"] = {
        {"w", "standard_desk.w"}, {"z", "standard_desk.z"},
        {"x", "standard_desk.x"}, {"y", "standard_desk.y"},
        {"u", "standard_desk.u"}, {"v", "standard_desk.v"}};
    binding_.vars["N"] = Oid::Int(3);
  }

  DisjunctiveExistential Build(const std::string& text) {
    ast::Formula f = ParseFormula(text).value();
    FormulaBuilder fb(&db_, &declared_);
    auto r = fb.Build(f, binding_);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
    return r.ok() ? *r : DisjunctiveExistential();
  }

  Status BuildError(const std::string& text) {
    ast::Formula f = ParseFormula(text).value();
    FormulaBuilder fb(&db_, &declared_);
    return fb.Build(f, binding_).status();
  }

  Database db_;
  office::OfficeIds ids_;
  std::set<std::string> declared_;
  Binding binding_;
};

TEST_F(FormulaBuilderTest, PlainAtom) {
  auto de = Build("x + y <= 3");
  Assignment in{{Variable::Intern("x"), Rational(1)},
                {Variable::Intern("y"), Rational(1)}};
  Assignment out{{Variable::Intern("x"), Rational(2)},
                 {Variable::Intern("y"), Rational(2)}};
  EXPECT_TRUE(de.EvalFree(in).value());
  EXPECT_FALSE(de.EvalFree(out).value());
}

TEST_F(FormulaBuilderTest, BoundQueryVarIsConstant) {
  // N is bound to 3: "x <= N" means x <= 3.
  auto de = Build("x <= N");
  EXPECT_TRUE(de.EvalFree({{Variable::Intern("x"), Rational(3)}}).value());
  EXPECT_FALSE(de.EvalFree({{Variable::Intern("x"), Rational(4)}}).value());
}

TEST_F(FormulaBuilderTest, PathValuedConstant) {
  // 2 * N + 1 = 7.
  auto de = Build("x = 2 * N + 1");
  EXPECT_TRUE(de.EvalFree({{Variable::Intern("x"), Rational(7)}}).value());
}

TEST_F(FormulaBuilderTest, NonLinearProductRejected) {
  EXPECT_TRUE(BuildError("x * y <= 1").IsTypeError());
  EXPECT_TRUE(BuildError("x / y <= 1").IsTypeError());
  // Division by constant zero.
  EXPECT_TRUE(BuildError("x / 0 <= 1").IsArithmeticError());
  // Constant * var is fine.
  EXPECT_TRUE(Build("3 * x <= 6").Satisfiable().value());
}

TEST_F(FormulaBuilderTest, NonNumericQueryVarRejected) {
  // X is bound to an object oid, not a number.
  EXPECT_TRUE(BuildError("x <= X").IsTypeError());
}

TEST_F(FormulaBuilderTest, BarePredicateUsesSchemaNames) {
  auto de = Build("E and w >= 4");
  // extent w in [-4,4]: only w = 4 stays.
  EXPECT_TRUE(de.EvalFree({{Variable::Intern("w"), Rational(4)},
                           {Variable::Intern("z"), Rational(0)}})
                  .value());
  EXPECT_FALSE(de.EvalFree({{Variable::Intern("w"), Rational(5)},
                            {Variable::Intern("z"), Rational(0)}})
                   .value());
}

TEST_F(FormulaBuilderTest, ExplicitArgsRenameDims) {
  auto de = Build("E(a, b) and a >= 4");
  EXPECT_TRUE(de.EvalFree({{Variable::Intern("a"), Rational(4)},
                           {Variable::Intern("b"), Rational(0)}})
                  .value());
}

TEST_F(FormulaBuilderTest, ArityMismatchRejected) {
  EXPECT_TRUE(BuildError("E(a, b, c)").IsTypeError());
  EXPECT_TRUE(BuildError("E(a)").IsTypeError());
}

TEST_F(FormulaBuilderTest, RepeatedInvocationVarsMeanEquality) {
  // E(t, t): the square's diagonal within the extent box.
  auto de = Build("E(t, t)");
  EXPECT_TRUE(de.EvalFree({{Variable::Intern("t"), Rational(2)}}).value());
  EXPECT_FALSE(de.EvalFree({{Variable::Intern("t"), Rational(3)}}).value());
}

TEST_F(FormulaBuilderTest, ImplicitEqualityAcrossSharedIdentity) {
  // E renamed to fresh names but sharing identity with bare D: the
  // identity-based equality w=a, z=b must link them. D's (w, z) dims and
  // E(a, b) share identities standard_desk.w / standard_desk.z.
  auto de = Build("E(a, b) and D and u = x + 100");
  // In D, u = x + w; forcing u = x + 100 makes w = 100, which by identity
  // equality a = w escapes E's [-4, 4] bound -> unsatisfiable.
  EXPECT_FALSE(de.Satisfiable().value());
}

TEST_F(FormulaBuilderTest, ProjectionKeepsOnlyListedVars) {
  ast::Formula f = ParseFormula("((w) | E and z >= 0)").value();
  FormulaBuilder fb(&db_, &declared_);
  CstObject obj = fb.BuildProjectionObject(f, binding_, true).value();
  EXPECT_EQ(obj.Dimension(), 1u);
  EXPECT_TRUE(obj.Contains({Rational(-4)}).value());
  EXPECT_FALSE(obj.Contains({Rational(5)}).value());
}

TEST_F(FormulaBuilderTest, LazyProjectionSameSemantics) {
  ast::Formula f = ParseFormula("((w) | E and z >= 0)").value();
  FormulaBuilder fb(&db_, &declared_);
  CstObject eager = fb.BuildProjectionObject(f, binding_, true).value();
  CstObject lazy = fb.BuildProjectionObject(f, binding_, false).value();
  EXPECT_TRUE(eager.EquivalentTo(lazy).value());
  EXPECT_EQ(lazy.Family(), ConstraintFamily::kExistentialConjunctive);
}

TEST_F(FormulaBuilderTest, NotOnConjunctiveOnly) {
  EXPECT_TRUE(Build("not (w >= 5)").Satisfiable().value());
  // NOT of a disjunction is rejected (§3.1 negates conjunctive only).
  EXPECT_TRUE(BuildError("not (w >= 5 or w <= -5)").IsTypeError());
}

TEST_F(FormulaBuilderTest, UnboundCstVarRejected) {
  EXPECT_TRUE(BuildError("L and x >= 0").IsInvalidArgument());
}

TEST_F(FormulaBuilderTest, TrueAndFalseLiterals) {
  EXPECT_TRUE(Build("true").Satisfiable().value());
  EXPECT_FALSE(Build("false").Satisfiable().value());
}

TEST_F(FormulaBuilderTest, ExistsQuantifiesVariables) {
  // exists h . (x = 2h and 0 <= h <= 1) == x in [0, 2].
  auto de = Build("exists h . (x = 2 * h and 0 <= h and h <= 1)");
  EXPECT_EQ(de.FreeVars(), VarSet{Variable::Intern("x")});
  EXPECT_TRUE(de.EvalFree({{Variable::Intern("x"), Rational(2)}}).value());
  EXPECT_TRUE(
      de.EvalFree({{Variable::Intern("x"), Rational(1, 3)}}).value());
  EXPECT_FALSE(de.EvalFree({{Variable::Intern("x"), Rational(3)}}).value());
}

TEST_F(FormulaBuilderTest, ExistsOverPredicate) {
  // exists z . E : the w-shadow of the extent.
  auto de = Build("exists z . (E)");
  EXPECT_EQ(de.FreeVars(), VarSet{Variable::Intern("w")});
  EXPECT_TRUE(de.EvalFree({{Variable::Intern("w"), Rational(4)}}).value());
  EXPECT_FALSE(de.EvalFree({{Variable::Intern("w"), Rational(5)}}).value());
}

TEST_F(FormulaBuilderTest, DisequalityAtomThreads) {
  auto de = Build("E and w != 0");
  EXPECT_TRUE(de.EvalFree({{Variable::Intern("w"), Rational(1)},
                           {Variable::Intern("z"), Rational(0)}})
                  .value());
  EXPECT_FALSE(de.EvalFree({{Variable::Intern("w"), Rational(0)},
                            {Variable::Intern("z"), Rational(0)}})
                   .value());
}

}  // namespace
}  // namespace lyric
