// Cross-subsystem concurrency stress (ISSUE 7): hammer every lock in the
// docs/CONCURRENCY.md hierarchy at once — governed query execution
// (scheduler, thread pool, solver cache, governor, variable interner),
// Prometheus exposition (registry), query-log appends with a rotating
// sink, and tombstone churn (the cache-shard -> governor ForceTrip
// nesting plus wholesale Clear()). With LYRIC_RANK_CHECK on (the
// default) any lock-order inversion on any interleaving aborts the
// binary; under the CI TSan job the same schedule is race-checked.
// Answers from governed runs must still match a serial baseline.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "constraint/solver_cache.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

// §4.1 worked examples — read-mostly, shared Database across all threads.
const char* kPaperQueries[] = {
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and x = 6 and "
    "y = 4) FROM Office_Object CO WHERE CO.extent[E] and CO.translation[D]",
    "SELECT O FROM Object_in_Room O "
    "WHERE O.location[L] and L(x, y) |= x <= 12",
    "SELECT CO, ((u, v) | CO.extent and CO.translation and x = 6 and y = 4) "
    "FROM Office_Object CO",
};

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    SolverCache::Global().Clear();
    obs::QueryLog::Global().ClearForTesting();
  }
  void TearDown() override {
    SolverCache::Global().Clear();
    // Detach the sink so later tests in other binaries never inherit it.
    obs::QueryLog::Global().ConfigureSink("", 0);
    obs::QueryLog::Global().ClearForTesting();
  }

  Database db_;
};

TEST_F(ConcurrencyStressTest, ExecuteExportLogAndChurnInParallel) {
  // Serial baseline answers first, before any contention.
  std::vector<std::string> expected;
  for (const char* q : kPaperQueries) {
    EvalOptions opts;
    opts.threads = 1;
    Evaluator ev(&db_, opts);
    auto r = ev.Execute(q);
    ASSERT_TRUE(r.ok()) << q << "\n -> " << r.status();
    expected.push_back(r->ToString());
  }
  SolverCache::Global().Clear();

  // A deliberately tiny rotation budget: every few appends the sink
  // rolls over, so rotation runs while other threads are mid-append.
  const std::string sink_path =
      std::string(::testing::TempDir()) + "/concurrency_stress_qlog.jsonl";
  obs::QueryLog::Global().ConfigureSink(sink_path, 4096);
  obs::QueryLog::Global().SetCapacityForTesting(16);

  std::atomic<bool> stop{false};
  std::atomic<int> wrong_answers{0};
  std::atomic<uint64_t> governed_ok{0};
  std::atomic<uint64_t> tripped{0};

  // 1) Governed executors: correct answers required. deadline-only
  //    limits, so pivot tombstones stored by the churners are ignored
  //    (LookupTombstone only dooms budgets <= the one that tripped).
  std::vector<std::thread> workers;
  constexpr int kExecutors = 4;
  for (int id = 0; id < kExecutors; ++id) {
    workers.emplace_back([&, id] {
      EvalOptions opts;
      opts.threads = 2;
      opts.deadline_ms = 60000;
      Evaluator ev(&db_, opts);
      int i = id;
      while (!stop.load(std::memory_order_relaxed)) {
        const int q = i++ % 4;
        auto r = ev.Execute(kPaperQueries[q]);
        if (!r.ok() || r->ToString() != expected[q]) {
          wrong_answers.fetch_add(1);
          return;
        }
        governed_ok.fetch_add(1);
      }
    });
  }

  // 2) Tombstone churners: entailment forces simplex runs, and a
  //    one-pivot budget trips the governor on the first one, storing a
  //    tombstone; the next iteration hits it (ForceTrip runs under the
  //    cache-shard lock — the deepest cross-subsystem nesting in the
  //    hierarchy). Trips surface as a degraded result, not an error.
  constexpr int kChurners = 2;
  for (int id = 0; id < kChurners; ++id) {
    workers.emplace_back([&] {
      EvalOptions opts;
      opts.threads = 1;
      opts.max_pivots = 1;
      Evaluator ev(&db_, opts);
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = ev.Execute(
            "SELECT DSK FROM Desk DSK WHERE DSK.drawer_center[C] and "
            "C(p, q) |= p = -2");
        if (!r.ok() || !r->governor_status().ok()) tripped.fetch_add(1);
      }
    });
  }

  // 3) Prometheus exposition: walks the whole registry (name maps under
  //    the registry lock) while executors mint counters under it.
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::string body = obs::Registry::Global().ExportPrometheus();
      if (body.empty()) {
        wrong_answers.fetch_add(1);
        return;
      }
      std::this_thread::yield();
    }
  });

  // 4) Query-log readers: Recent() copies the ring under the log lock
  //    while every finished query appends (and rotates the sink).
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto recent = obs::QueryLog::Global().Recent(16);
      if (recent.size() > 16) {
        wrong_answers.fetch_add(1);
        return;
      }
      std::this_thread::yield();
    }
  });

  // 5) Cache churn: wholesale Clear() sweeps every shard in sequence
  //    while lookups, stores, and tombstone hits race against it.
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      SolverCache::Global().Clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : workers) th.join();

  EXPECT_EQ(wrong_answers.load(), 0)
      << "a governed query returned a wrong answer (or an export/read "
         "invariant broke) under contention";
  EXPECT_GT(governed_ok.load(), 0u);
  EXPECT_GT(tripped.load(), 0u) << "the one-pivot budget never tripped — "
                                   "tombstone churn did not run";

  // The storm really flowed through the log and the registry.
  EXPECT_GT(obs::QueryLog::Global().total_appended(),
            governed_ok.load() / 2);
  std::string body = obs::Registry::Global().ExportPrometheus();
  EXPECT_NE(body.find("lyric_evaluator_queries"), std::string::npos) << body;

  std::remove(sink_path.c_str());
}

TEST_F(ConcurrencyStressTest, SinkRotationSurvivesConcurrentAppends) {
  // Focused rotation hammer: 8 appender threads against a 1 KiB sink
  // budget force a rotation roughly every 4 records per thread batch.
  const std::string sink_path =
      std::string(::testing::TempDir()) + "/rotation_stress_qlog.jsonl";
  obs::QueryLog::Global().ConfigureSink(sink_path, 1024);

  const uint64_t before = obs::QueryLog::Global().total_appended();
  constexpr int kThreads = 8;
  constexpr int kAppends = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kAppends; ++i) {
        obs::QueryLogRecord rec;
        rec.query = "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]";
        rec.status = "ok";
        rec.rows = static_cast<uint64_t>(t);
        rec.duration_ns = static_cast<uint64_t>(i) * 1000;
        obs::QueryLog::Global().Append(rec);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(obs::QueryLog::Global().total_appended() - before,
            static_cast<uint64_t>(kThreads) * kAppends);
  auto recent = obs::QueryLog::Global().Recent(64);
  ASSERT_FALSE(recent.empty());
  // Sequence numbers stay strictly increasing through rotations.
  for (size_t i = 1; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].seq, recent[i - 1].seq + 1);
  }

  std::remove(sink_path.c_str());
  std::remove((sink_path + ".1").c_str());
}

}  // namespace
}  // namespace lyric
