#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"
#include "util/string_util.h"

namespace lyric {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("no desk");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_FALSE(st.IsTypeError());
  EXPECT_EQ(st.message(), "no desk");
  EXPECT_EQ(st.ToString(), "not-found: no desk");
}

TEST(StatusTest, AllConstructorsMatchPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::ArithmeticError("x").IsArithmeticError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

Status FailsAtTwo(int i) {
  if (i == 2) return Status::InvalidArgument("two");
  return Status::OK();
}

Status Loop() {
  for (int i = 0; i < 5; ++i) {
    LYRIC_RETURN_NOT_OK(FailsAtTwo(i));
  }
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  Status st = Loop();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "two");
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  LYRIC_ASSIGN_OR_RETURN(int h, Half(v));
  return Half(h);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.ValueOr(-1), 5);
  Result<int> err = Half(3);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("CST(2)", "CST"));
  EXPECT_FALSE(StartsWith("CS", "CST"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToLower("abc_123"), "abc_123");
}

}  // namespace
}  // namespace lyric
