// Int64 fast-path overflow audit (PR 4): every BigInt operator with a
// small-representation fast path must detect intermediate overflow and
// route through the limb slow path, and Rational must stay exact when
// cross-multiplication leaves int64 range. These tests pin the behavior
// at the INT64_MAX / INT64_MIN boundaries; the audit found the binary
// operators already guard via __int128 (FitsInt64) and the unary /
// division / gcd paths exclude INT64_MIN — run under UBSan in CI, any
// regression to unchecked int64 arithmetic fails loudly here.

#include <gtest/gtest.h>

#include <cstdint>

#include "arith/bigint.h"
#include "arith/rational.h"
#include "constraint/conjunction.h"
#include "constraint/fourier_motzkin.h"
#include "constraint/linear_constraint.h"
#include "constraint/linear_expr.h"
#include "constraint/simplex.h"
#include "constraint/variable.h"

namespace lyric {
namespace {

constexpr int64_t kMax = INT64_MAX;
constexpr int64_t kMin = INT64_MIN;

TEST(ArithOverflowTest, AdditionPromotesAtTheBoundary) {
  BigInt sum = BigInt(kMax) + BigInt(1);
  EXPECT_FALSE(sum.IsSmallRep());
  EXPECT_EQ(sum.ToString(), "9223372036854775808");
  EXPECT_FALSE(sum.ToInt64().ok());

  // Near-boundary sums that still fit stay small and exact.
  BigInt fits = BigInt(kMax - 1) + BigInt(1);
  EXPECT_TRUE(fits.IsSmallRep());
  EXPECT_EQ(fits.ToInt64().value(), kMax);
}

TEST(ArithOverflowTest, SubtractionPromotesBelowMin) {
  BigInt diff = BigInt(kMin) - BigInt(1);
  EXPECT_FALSE(diff.IsSmallRep());
  EXPECT_EQ(diff.ToString(), "-9223372036854775809");
  EXPECT_EQ((diff + BigInt(1)).ToInt64().value(), kMin);
}

TEST(ArithOverflowTest, MultiplicationPromotesAndStaysExact) {
  BigInt prod = BigInt(kMax) * BigInt(kMax);
  EXPECT_FALSE(prod.IsSmallRep());
  EXPECT_EQ(prod.ToString(), "85070591730234615847396907784232501249");
  // (max * max) / max == max round-trips through the slow path.
  EXPECT_EQ((prod / BigInt(kMax)).ToInt64().value(), kMax);
  EXPECT_TRUE((prod % BigInt(kMax)).IsZero());
}

TEST(ArithOverflowTest, NegationOfMinPromotes) {
  BigInt neg = -BigInt(kMin);
  EXPECT_FALSE(neg.IsSmallRep());
  EXPECT_EQ(neg.ToString(), "9223372036854775808");
  // Negating back re-enters the small representation.
  BigInt back = -neg;
  EXPECT_TRUE(back.IsSmallRep());
  EXPECT_EQ(back.ToInt64().value(), kMin);
  EXPECT_EQ(BigInt(kMin).Abs().ToString(), "9223372036854775808");
}

TEST(ArithOverflowTest, DivisionMinByMinusOnePromotes) {
  BigInt q = BigInt(kMin) / BigInt(-1);
  EXPECT_FALSE(q.IsSmallRep());
  EXPECT_EQ(q.ToString(), "9223372036854775808");
  EXPECT_TRUE((BigInt(kMin) % BigInt(-1)).IsZero());
}

TEST(ArithOverflowTest, GcdHandlesMinWithoutNegatingInInt64) {
  EXPECT_EQ(BigInt::Gcd(BigInt(kMin), BigInt(kMin)).ToString(),
            "9223372036854775808");
  EXPECT_EQ(BigInt::Gcd(BigInt(kMin), BigInt(2)).ToInt64().value(), 2);
  EXPECT_EQ(BigInt::Gcd(BigInt(2), BigInt(kMin)).ToInt64().value(), 2);
  EXPECT_EQ(BigInt::Gcd(BigInt(kMin), BigInt(0)).ToString(),
            "9223372036854775808");
}

TEST(ArithOverflowTest, DemotionAfterRoundTripKeepsHashAndEquality) {
  BigInt big = (BigInt(kMax) + BigInt(1)) - BigInt(1);
  EXPECT_TRUE(big.IsSmallRep());
  EXPECT_EQ(big, BigInt(kMax));
  EXPECT_EQ(big.Hash(), BigInt(kMax).Hash());
}

TEST(ArithOverflowTest, RationalNormalizesNegativeMinDenominator) {
  // 1/min: normalization negates num and den; -min must promote, not
  // wrap to min again.
  Rational r{BigInt(1), BigInt(kMin)};
  EXPECT_EQ(r.ToString(), "-1/9223372036854775808");
  Rational whole{BigInt(kMin), BigInt(kMin)};
  EXPECT_EQ(whole.ToString(), "1");
}

TEST(ArithOverflowTest, RationalArithmeticCrossesInt64Exactly) {
  Rational max{BigInt(kMax), BigInt(1)};
  EXPECT_EQ((max + max).ToString(), "18446744073709551614");
  // max/(max-1) * (max-1)/max cancels exactly through big intermediates.
  Rational a{BigInt(kMax), BigInt(kMax - 1)};
  Rational b{BigInt(kMax - 1), BigInt(kMax)};
  EXPECT_EQ((a * b).ToString(), "1");
  // Comparison cross-multiplies (max * max territory) without wrapping.
  Rational c{BigInt(kMax), BigInt(kMax - 1)};
  Rational d{BigInt(kMax - 1), BigInt(kMax - 2)};
  EXPECT_LT(c, d);
  EXPECT_GT(d, c);
}

TEST(ArithOverflowTest, FromStringBeyondInt64RoundTrips) {
  auto v = BigInt::FromString("-170141183460469231731687303715884105728");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToString(), "-170141183460469231731687303715884105728");
  auto max_plus = BigInt::FromString("9223372036854775808");
  ASSERT_TRUE(max_plus.ok());
  EXPECT_FALSE(max_plus->IsSmallRep());
  EXPECT_EQ(*max_plus - BigInt(1), BigInt(kMax));
}

// End to end: constraint solving with near-INT64_MAX coefficients stays
// exact — the simplex tableau multiplies coefficients, so any unchecked
// fast path would silently change the polyhedron.
TEST(ArithOverflowTest, SimplexStaysExactWithHugeCoefficients) {
  VarId x = Variable::Intern("ovf_x");
  VarId y = Variable::Intern("ovf_y");
  Rational big{BigInt(kMax - 1), BigInt(1)};

  // { big*x <= big, x >= 1 } forces x == 1; adding big*x >= big + 1 is
  // infeasible only if the arithmetic is exact at the boundary.
  Conjunction feasible;
  feasible.Add(LinearConstraint::Le(
      LinearExpr::Term(big, x), LinearExpr::Constant(big)));
  feasible.Add(LinearConstraint::Ge(LinearExpr::Var(x),
                                    LinearExpr::Constant(Rational(1))));
  EXPECT_TRUE(Simplex::IsSatisfiable(feasible).value());

  Conjunction infeasible = feasible;
  infeasible.Add(LinearConstraint::Ge(
      LinearExpr::Term(big, x),
      LinearExpr::Constant(big + Rational(1))));
  EXPECT_FALSE(Simplex::IsSatisfiable(infeasible).value());

  // Fourier-Motzkin with huge coefficients: eliminate y from
  // { y <= big*x, y >= big*x } == { y = big*x } conjoined with x = 1;
  // the projection onto x keeps x = 1 exactly satisfiable.
  Conjunction fm;
  fm.Add(LinearConstraint::Le(LinearExpr::Var(y), LinearExpr::Term(big, x)));
  fm.Add(LinearConstraint::Ge(LinearExpr::Var(y), LinearExpr::Term(big, x)));
  fm.Add(LinearConstraint::Eq(LinearExpr::Var(x),
                              LinearExpr::Constant(Rational(1))));
  auto projected = FourierMotzkin::ProjectOnto(fm, VarSet{x});
  ASSERT_TRUE(projected.ok()) << projected.status();
  EXPECT_TRUE(Simplex::IsSatisfiable(*projected).value());
}

}  // namespace
}  // namespace lyric
