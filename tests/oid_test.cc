#include "object/oid.h"

#include <gtest/gtest.h>

#include "object/value.h"

namespace lyric {
namespace {

TEST(OidTest, KindsAndAccessors) {
  EXPECT_EQ(Oid::Int(20).AsInt(), 20);
  EXPECT_EQ(Oid::Real(Rational(1, 2)).AsReal(), Rational(1, 2));
  EXPECT_EQ(Oid::Str("red").AsString(), "red");
  EXPECT_TRUE(Oid::Bool(true).AsBool());
  EXPECT_EQ(Oid::Symbol("my_desk").AsString(), "my_desk");
  EXPECT_EQ(Oid::Cst("((@0) | @0 <= 1)").kind(), OidKind::kCst);
}

TEST(OidTest, NumericHelpers) {
  EXPECT_TRUE(Oid::Int(3).IsNumeric());
  EXPECT_TRUE(Oid::Real(Rational(3)).IsNumeric());
  EXPECT_FALSE(Oid::Str("3").IsNumeric());
  EXPECT_EQ(Oid::Int(3).AsNumeric(), Rational(3));
  EXPECT_EQ(Oid::Real(Rational(1, 3)).AsNumeric(), Rational(1, 3));
}

TEST(OidTest, EqualityWithinKind) {
  EXPECT_EQ(Oid::Int(5), Oid::Int(5));
  EXPECT_NE(Oid::Int(5), Oid::Int(6));
  EXPECT_EQ(Oid::Symbol("a"), Oid::Symbol("a"));
  EXPECT_NE(Oid::Symbol("a"), Oid::Str("a"));  // Kinds differ.
  EXPECT_NE(Oid::Int(1), Oid::Bool(true));
}

TEST(OidTest, FunctionalOids) {
  // §2.1: secretary(dept77); identity is function name + arguments.
  Oid f1 = Oid::Func("secretary", {Oid::Symbol("dept77")});
  Oid f2 = Oid::Func("secretary", {Oid::Symbol("dept77")});
  Oid f3 = Oid::Func("secretary", {Oid::Symbol("dept78")});
  Oid f4 = Oid::Func("manager", {Oid::Symbol("dept77")});
  EXPECT_EQ(f1, f2);
  EXPECT_NE(f1, f3);
  EXPECT_NE(f1, f4);
  EXPECT_EQ(f1.ToString(), "secretary(dept77)");
}

TEST(OidTest, NestedFunctionalOids) {
  Oid inner = Oid::Func("pair", {Oid::Int(1), Oid::Int(2)});
  Oid outer = Oid::Func("wrap", {inner});
  EXPECT_EQ(outer.ToString(), "wrap(pair(1, 2))");
  EXPECT_EQ(outer, Oid::Func("wrap", {Oid::Func("pair", {Oid::Int(1),
                                                         Oid::Int(2)})}));
}

TEST(OidTest, TotalOrderIsConsistent) {
  std::vector<Oid> oids = {Oid::Int(1),        Oid::Int(2),
                           Oid::Real(Rational(1, 2)),
                           Oid::Str("a"),      Oid::Symbol("a"),
                           Oid::Bool(false),   Oid::Cst("c"),
                           Oid::Func("f", {})};
  for (const Oid& a : oids) {
    EXPECT_EQ(a.Compare(a), 0);
    for (const Oid& b : oids) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a));
      if (a.Compare(b) == 0) {
        EXPECT_EQ(a.Hash(), b.Hash());
      }
    }
  }
}

TEST(OidTest, ToStringForms) {
  EXPECT_EQ(Oid::Int(-7).ToString(), "-7");
  EXPECT_EQ(Oid::Real(Rational(5, 4)).ToString(), "5/4");
  EXPECT_EQ(Oid::Str("red").ToString(), "'red'");
  EXPECT_EQ(Oid::Bool(true).ToString(), "true");
}

TEST(ValueTest, ScalarVsSet) {
  Value s = Value::Scalar(Oid::Int(1));
  EXPECT_TRUE(s.is_scalar());
  EXPECT_EQ(s.scalar(), Oid::Int(1));
  Value set = Value::Set({Oid::Int(2), Oid::Int(1), Oid::Int(2)});
  EXPECT_TRUE(set.is_set());
  EXPECT_EQ(set.elements().size(), 2u);  // Dedup + sort.
  EXPECT_TRUE(set.Contains(Oid::Int(1)));
  EXPECT_FALSE(set.Contains(Oid::Int(3)));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Scalar(Oid::Str("red")).ToString(), "'red'");
  EXPECT_EQ(Value::Set({Oid::Int(1), Oid::Int(2)}).ToString(), "{1, 2}");
  EXPECT_EQ(Value::Set({}).ToString(), "{}");
}

}  // namespace
}  // namespace lyric
