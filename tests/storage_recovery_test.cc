// Satellite: kill -9 crash matrix. A writer process is killed at
// randomized (deterministically seeded) WAL byte offsets via the
// LYRIC_STORAGE_CRASH_AT budget; the reopened store must recover
// EXACTLY the longest durable prefix of commits — never a partial
// transaction, never corruption — and keep answering the paper query
// suite byte-identically. An in-process matrix additionally truncates a
// copied WAL at every interesting boundary, and torn-page/corpus tests
// prove corruption surfaces as typed kDataLoss, never a crash.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "office/office_db.h"
#include "query/evaluator.h"
#include "storage/file_io.h"
#include "storage/paged_store.h"
#include "storage/serializer.h"

#ifndef LYRIC_TEST_CORPUS_DIR
#define LYRIC_TEST_CORPUS_DIR "tests/corpus"
#endif

namespace lyric {
namespace storage {
namespace {

using KvState = std::map<std::string, std::string>;

// Reference-run stores must stay open so their WAL files survive for
// copying (Close would checkpoint and truncate them). Parking them here
// keeps them reachable — no leak-sanitizer report — and never destructs
// them (heap-allocated holder), so no exit-time checkpoint either.
std::vector<std::unique_ptr<PagedStore>>& ParkedStores() {
  static auto* v = new std::vector<std::unique_ptr<PagedStore>>();
  return *v;
}

std::string FreshPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  ::unlink(path.c_str());
  ::unlink(PagedStore::WalPathFor(path).c_str());
  return path;
}

uint64_t FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

void CopyFile(const std::string& src, const std::string& dst) {
  std::filesystem::copy_file(src, dst,
                             std::filesystem::copy_options::overwrite_existing);
}

KvState ScanAll(PagedStore* store) {
  KvState out;
  Status st = store->Scan("", [&](std::string_view k, std::string_view v) {
    out.emplace(std::string(k), std::string(v));
    return Result<bool>(true);
  });
  EXPECT_TRUE(st.ok()) << st;
  return out;
}

// The deterministic multi-transaction workload the crash matrix kills.
// Transaction t writes keys that overlap earlier transactions (updates)
// and adds new ones, then commits. Mirrors the writes into `expected`
// snapshots when provided. Returns non-OK on any storage error.
constexpr int kTxns = 8;
constexpr int kKeysPerTxn = 12;

Status RunKvWorkload(const std::string& path,
                     std::vector<uint64_t>* wal_size_after_commit,
                     std::vector<KvState>* states) {
  StoreOptions opts;
  opts.path = path;
  opts.pool_pages = 256;  // ample: no eviction, data file stays fresh
  LYRIC_ASSIGN_OR_RETURN(auto store, PagedStore::Open(opts));
  KvState mirror;
  if (states != nullptr) states->push_back(mirror);  // S_0: empty
  for (int t = 1; t <= kTxns; ++t) {
    for (int j = 0; j < kKeysPerTxn; ++j) {
      // Key space 20 wide: txns overwrite one another's keys.
      std::string k = "key" + std::to_string((t * 5 + j) % 20);
      std::string v = "txn" + std::to_string(t) + "-v" + std::to_string(j) +
                      std::string(40, 'a' + (t + j) % 26);
      LYRIC_RETURN_NOT_OK(store->Put(k, v));
      mirror[k] = v;
    }
    LYRIC_RETURN_NOT_OK(store->Commit());
    if (wal_size_after_commit != nullptr) {
      wal_size_after_commit->push_back(FileSize(PagedStore::WalPathFor(path)));
    }
    if (states != nullptr) states->push_back(mirror);
  }
  // No Close: the caller either _exits (crash child) or wants the WAL
  // left intact for inspection.
  ParkedStores().push_back(std::move(store));
  return Status::OK();
}

// Forks a child that arms the crash budget at `offset` appended WAL
// bytes and runs the workload. Returns the child's wait status.
int RunCrashChild(const std::string& path, int64_t offset) {
  ::pid_t pid = ::fork();
  if (pid == 0) {
    ArmCrashBudgetForTesting(offset);
    Status st = RunKvWorkload(path, nullptr, nullptr);
    ::_exit(st.ok() ? 0 : 3);
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return wstatus;
}

TEST(StorageRecoveryTest, CrashMatrixRecoversExactDurablePrefix) {
  // Reference run (no crash): per-commit WAL sizes and expected states.
  std::string ref_path = FreshPath("rec_ref.lyricpg");
  std::vector<uint64_t> wal_after;  // c_1..c_m, file sizes incl. header
  std::vector<KvState> states;      // S_0..S_m
  ASSERT_TRUE(RunKvWorkload(ref_path, &wal_after, &states).ok());
  ASSERT_EQ(wal_after.size(), static_cast<size_t>(kTxns));
  const int64_t total =
      static_cast<int64_t>(wal_after.back() - Wal::kHeaderSize);

  // The matrix: exact commit boundaries, their neighbors, and seeded
  // random offsets across the whole log.
  std::vector<int64_t> offsets;
  for (uint64_t c : {wal_after[0], wal_after[kTxns / 2], wal_after.back()}) {
    int64_t b = static_cast<int64_t>(c - Wal::kHeaderSize);
    offsets.push_back(b - 1);
    offsets.push_back(b);
    offsets.push_back(b + 1);
  }
  std::mt19937_64 rng(20260808);  // deterministic seed
  std::uniform_int_distribution<int64_t> dist(1, total - 1);
  for (int i = 0; i < 8; ++i) offsets.push_back(dist(rng));
  std::sort(offsets.begin(), offsets.end());
  offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());

  int matrix_point = 0;
  for (int64_t n : offsets) {
    SCOPED_TRACE("crash offset " + std::to_string(n));
    std::string path =
        FreshPath("rec_crash_" + std::to_string(matrix_point++) + ".lyricpg");
    int wstatus = RunCrashChild(path, n);
    ASSERT_TRUE(WIFEXITED(wstatus));
    if (n < total) {
      ASSERT_EQ(WEXITSTATUS(wstatus), 137);  // died mid-append, as armed
    } else {
      ASSERT_EQ(WEXITSTATUS(wstatus), 0);  // budget never crossed
    }

    // Recovery must land on S_j for j = max{j : commit j fully appended
    // at offset n}. (Commit j's last byte is wal_after[j-1] - header.)
    size_t j = 0;
    while (j < wal_after.size() &&
           static_cast<int64_t>(wal_after[j] - Wal::kHeaderSize) <= n) {
      ++j;
    }
    StoreOptions opts;
    opts.path = path;
    auto store_or = PagedStore::Open(opts);
    ASSERT_TRUE(store_or.ok()) << store_or.status();
    auto store = std::move(*store_or);
    EXPECT_EQ(store->recovery().committed_txns, j);
    EXPECT_EQ(ScanAll(store.get()), states[j]);
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST(StorageRecoveryTest, RecoveredStoreStaysWritable) {
  // Kill mid-log, recover, then keep writing through another reopen:
  // the post-recovery WAL reset must leave a fully serviceable log.
  std::string ref_path = FreshPath("rec_w_ref.lyricpg");
  std::vector<uint64_t> wal_after;
  std::vector<KvState> states;
  ASSERT_TRUE(RunKvWorkload(ref_path, &wal_after, &states).ok());
  const int64_t mid =
      static_cast<int64_t>(wal_after[kTxns / 2] - Wal::kHeaderSize) + 177;

  std::string path = FreshPath("rec_writable.lyricpg");
  int wstatus = RunCrashChild(path, mid);
  ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 137);

  {
    auto store = PagedStore::Open({.path = path}).value();
    ASSERT_TRUE(store->Put("after-crash", "alive").ok());
    ASSERT_TRUE(store->Commit().ok());
    ASSERT_TRUE(store->Close().ok());
  }
  auto store = PagedStore::Open({.path = path}).value();
  EXPECT_EQ(store->Get("after-crash").value(), "alive");
  ASSERT_TRUE(store->Close().ok());
}

TEST(StorageRecoveryTest, ImportCrashMatrixAnswersPaperSuiteByteIdentically) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  ASSERT_TRUE(ids.ok()) << ids.status();
  std::string dump_ref = Serializer::DumpDatabase(db).value();

  // Reference import to size the single import transaction.
  std::string ref_path = FreshPath("rec_imp_ref.lyricpg");
  {
    auto store = PagedStore::Open({.path = ref_path}).value();
    ASSERT_TRUE(store->ImportDatabase(db).ok());
    ParkedStores().push_back(std::move(store));  // keep the WAL intact
  }
  const int64_t import_bytes = static_cast<int64_t>(
      FileSize(PagedStore::WalPathFor(ref_path)) - Wal::kHeaderSize);
  ASSERT_GT(import_bytes, 0);

  const std::vector<int64_t> offsets = {
      1,     import_bytes / 3,  import_bytes / 2, (import_bytes * 9) / 10,
      import_bytes - 1, import_bytes};
  int point = 0;
  for (int64_t n : offsets) {
    SCOPED_TRACE("import crash offset " + std::to_string(n));
    std::string path =
        FreshPath("rec_imp_" + std::to_string(point++) + ".lyricpg");
    ::pid_t pid = ::fork();
    if (pid == 0) {
      ArmCrashBudgetForTesting(n);
      Database child_db;
      if (!office::BuildOfficeDatabase(&child_db).ok()) ::_exit(3);
      auto store_or = PagedStore::Open({.path = path});
      if (!store_or.ok()) ::_exit(3);
      Status st = (*store_or)->ImportDatabase(child_db);
      (*store_or).release();
      ::_exit(st.ok() ? 0 : 3);
    }
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), n < import_bytes ? 137 : 0);

    auto store = PagedStore::Open({.path = path}).value();
    if (n < import_bytes) {
      // The import transaction tore: all or nothing means nothing.
      EXPECT_EQ(store->RecordCount(), 0u);
    } else {
      Database loaded;
      ASSERT_TRUE(store->ExportToDatabase(&loaded).ok());
      // Byte-identical dump => byte-identical answers to every query in
      // the paper suite; spot-check Q2 end to end on top.
      EXPECT_EQ(Serializer::DumpDatabase(loaded).value(), dump_ref);
      Evaluator ev(&loaded);
      ResultSet r = ev.Execute(
                          "SELECT CO, ((u, v) | E and D and x = 6 and y = 4) "
                          "FROM Office_Object CO "
                          "WHERE CO.extent[E] and CO.translation[D]")
                        .value();
      ASSERT_EQ(r.size(), 1u);
      CstObject answer = loaded.GetCst(r.rows()[0][1]).value();
      EXPECT_TRUE(answer.Contains({Rational(2), Rational(2)}).value());
      EXPECT_FALSE(answer.Contains({Rational(1), Rational(2)}).value());
    }
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST(StorageRecoveryTest, TruncatedWalMatrixEveryBoundary) {
  // Build a store whose data file is untouched since creation (ample
  // pool, no checkpoint), snapshot both files, then truncate the WAL
  // copy at every interesting length: header edges, each commit
  // boundary +/- 1, mid-record offsets. Open must succeed every time
  // and recover exactly the longest prefix of whole commits.
  std::string base = FreshPath("rec_trunc_base.lyricpg");
  std::vector<uint64_t> wal_after;
  std::vector<KvState> states;
  ASSERT_TRUE(RunKvWorkload(base, &wal_after, &states).ok());
  const std::string wal_base = PagedStore::WalPathFor(base);
  const uint64_t wal_size = FileSize(wal_base);

  std::vector<uint64_t> lengths = {0, 1, Wal::kHeaderSize - 1,
                                   Wal::kHeaderSize, Wal::kHeaderSize + 1};
  for (uint64_t c : wal_after) {
    lengths.push_back(c - 1);
    lengths.push_back(c);
    lengths.push_back(c + 40);  // mid-record of the following txn
  }
  std::sort(lengths.begin(), lengths.end());
  lengths.erase(std::unique(lengths.begin(), lengths.end()), lengths.end());

  int point = 0;
  for (uint64_t len : lengths) {
    if (len > wal_size) continue;
    SCOPED_TRACE("wal truncated to " + std::to_string(len));
    std::string path =
        FreshPath("rec_trunc_" + std::to_string(point++) + ".lyricpg");
    CopyFile(base, path);
    CopyFile(wal_base, PagedStore::WalPathFor(path));
    ASSERT_EQ(::truncate(PagedStore::WalPathFor(path).c_str(),
                         static_cast<off_t>(len)),
              0);

    size_t j = 0;
    while (j < wal_after.size() && wal_after[j] <= len) ++j;
    auto store_or = PagedStore::Open({.path = path});
    ASSERT_TRUE(store_or.ok()) << store_or.status();
    auto store = std::move(*store_or);
    EXPECT_EQ(store->recovery().committed_txns, j);
    EXPECT_EQ(ScanAll(store.get()), states[j]);
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST(StorageRecoveryTest, CorruptWalHeaderIsTypedDataLoss) {
  std::string base = FreshPath("rec_hdr_base.lyricpg");
  ASSERT_TRUE(RunKvWorkload(base, nullptr, nullptr).ok());
  std::string path = FreshPath("rec_hdr.lyricpg");
  CopyFile(base, path);
  CopyFile(PagedStore::WalPathFor(base), PagedStore::WalPathFor(path));
  {
    File f = File::OpenReadWrite(PagedStore::WalPathFor(path)).value();
    uint8_t garbage = 0x5A;
    ASSERT_TRUE(f.WriteAt(3, &garbage, 1).ok());
  }
  auto store = PagedStore::Open({.path = path});
  ASSERT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsDataLoss()) << store.status();
}

TEST(StorageRecoveryTest, TornDataPageIsTypedDataLoss) {
  std::string path = FreshPath("rec_torn.lyricpg");
  {
    auto store = PagedStore::Open({.path = path}).value();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          store->Put("key" + std::to_string(i), std::string(100, 'x')).ok());
    }
    ASSERT_TRUE(store->Close().ok());  // checkpoints: pages hit the file
  }
  ASSERT_GT(FileSize(path), kPageSize);  // more than just the meta page
  {
    // Flip a byte inside page 1 (a B-tree page after checkpoint).
    File f = File::OpenReadWrite(path).value();
    uint8_t b = 0;
    ASSERT_TRUE(f.ReadAt(kPageSize + 100, &b, 1).ok());
    b ^= 0xFF;
    ASSERT_TRUE(f.WriteAt(kPageSize + 100, &b, 1).ok());
  }
  {
    // Open succeeds (only page 0 is read); touching the torn page is a
    // typed kDataLoss, never a crash or a wrong answer.
    auto store = PagedStore::Open({.path = path}).value();
    bool hit_data_loss = false;
    for (int i = 0; i < 50 && !hit_data_loss; ++i) {
      auto got = store->Get("key" + std::to_string(i));
      if (!got.ok()) {
        EXPECT_TRUE(got.status().IsDataLoss()) << got.status();
        hit_data_loss = true;
      }
    }
    EXPECT_TRUE(hit_data_loss);
    (void)store->Close();
  }
  {
    // Now corrupt the meta page: Open itself must fail typed.
    File f = File::OpenReadWrite(path).value();
    uint8_t b = 0;
    ASSERT_TRUE(f.ReadAt(kPageHeaderSize + 2, &b, 1).ok());
    b ^= 0xFF;
    ASSERT_TRUE(f.WriteAt(kPageHeaderSize + 2, &b, 1).ok());
  }
  auto broken = PagedStore::Open({.path = path});
  ASSERT_FALSE(broken.ok());
  EXPECT_TRUE(broken.status().IsDataLoss()) << broken.status();
}

TEST(StorageRecoveryTest, CorpusArtifactsNeverCrashRecovery) {
  // Every checked-in damaged store must either open (and then scan
  // clean or fail typed) or fail to open with a typed status. The
  // corpus holds real kill -9 debris plus hand-damaged files.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(LYRIC_TEST_CORPUS_DIR) / "storage";
  ASSERT_TRUE(fs::exists(dir)) << dir;
  int seen = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.path().extension() != ".lyricpg") continue;
    SCOPED_TRACE(name);
    ++seen;
    // Work on copies: recovery may truncate/rewrite the WAL.
    std::string path = FreshPath("corpus_" + name);
    CopyFile(entry.path().string(), path);
    std::string src_wal = entry.path().string() + "-wal";
    if (fs::exists(src_wal)) CopyFile(src_wal, PagedStore::WalPathFor(path));

    auto store_or = PagedStore::Open({.path = path});
    if (!store_or.ok()) {
      EXPECT_TRUE(store_or.status().IsDataLoss() ||
                  store_or.status().IsInternal())
          << store_or.status();
      continue;
    }
    auto store = std::move(*store_or);
    KvState all;
    Status st = store->Scan("", [&](std::string_view k, std::string_view v) {
      all.emplace(std::string(k), std::string(v));
      return Result<bool>(true);
    });
    EXPECT_TRUE(st.ok() || st.IsDataLoss()) << st;
    (void)store->Close();
  }
  EXPECT_GE(seen, 4) << "storage corpus went missing";
}

// Regenerates the checked-in corpus (tests/corpus/storage). Skipped in
// normal runs; set LYRIC_REGEN_STORAGE_CORPUS=1 and run this test alone
// to rebuild the artifacts deterministically.
TEST(StorageRecoveryTest, RegenerateCorpusArtifacts) {
  const char* regen = ::getenv("LYRIC_REGEN_STORAGE_CORPUS");
  if (regen == nullptr || *regen == '\0') {
    GTEST_SKIP() << "set LYRIC_REGEN_STORAGE_CORPUS=1 to regenerate";
  }
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(LYRIC_TEST_CORPUS_DIR) / "storage";
  fs::create_directories(dir);

  auto emit = [&](const std::string& src, const std::string& name) {
    CopyFile(src, (dir / name).string());
    if (fs::exists(PagedStore::WalPathFor(src))) {
      CopyFile(PagedStore::WalPathFor(src), (dir / (name + "-wal")).string());
    }
  };

  // 1. Real kill -9 debris: torn mid-commit.
  std::vector<uint64_t> wal_after;
  std::string ref = FreshPath("corpusgen_ref.lyricpg");
  ASSERT_TRUE(RunKvWorkload(ref, &wal_after, nullptr).ok());
  std::string torn = FreshPath("corpusgen_torn.lyricpg");
  int wstatus = RunCrashChild(
      torn, static_cast<int64_t>(wal_after[2] - Wal::kHeaderSize) + 333);
  ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 137);
  emit(torn, "torn_commit.lyricpg");

  // 2. WAL truncated inside a record.
  std::string trunc = FreshPath("corpusgen_trunc.lyricpg");
  CopyFile(ref, trunc);
  CopyFile(PagedStore::WalPathFor(ref), PagedStore::WalPathFor(trunc));
  ASSERT_EQ(::truncate(PagedStore::WalPathFor(trunc).c_str(),
                       static_cast<off_t>(wal_after[1] + 99)),
            0);
  emit(trunc, "truncated_wal.lyricpg");

  // 3. Checkpointed store with a torn B-tree page.
  std::string tornpg = FreshPath("corpusgen_tornpg.lyricpg");
  {
    auto store = PagedStore::Open({.path = tornpg}).value();
    for (int i = 0; i < 80; ++i) {
      ASSERT_TRUE(
          store->Put("k" + std::to_string(i), std::string(200, 'p')).ok());
    }
    ASSERT_TRUE(store->Close().ok());
    File f = File::OpenReadWrite(tornpg).value();
    uint8_t b = 0;
    ASSERT_TRUE(f.ReadAt(2 * kPageSize + 77, &b, 1).ok());
    b ^= 0xA5;
    ASSERT_TRUE(f.WriteAt(2 * kPageSize + 77, &b, 1).ok());
  }
  emit(tornpg, "torn_page.lyricpg");

  // 4. Hand-damaged: wrong magic in the data file.
  std::string badmagic = FreshPath("corpusgen_badmagic.lyricpg");
  {
    File f = File::OpenReadWrite(badmagic).value();
    std::string junk(2 * kPageSize, 'Z');
    ASSERT_TRUE(f.WriteAt(0, junk.data(), junk.size()).ok());
  }
  emit(badmagic, "bad_magic.lyricpg");

  // 5. Valid data file, garbage WAL header.
  std::string badwal = FreshPath("corpusgen_badwal.lyricpg");
  CopyFile(ref, badwal);
  CopyFile(PagedStore::WalPathFor(ref), PagedStore::WalPathFor(badwal));
  {
    File f = File::OpenReadWrite(PagedStore::WalPathFor(badwal)).value();
    uint8_t garbage[8] = {0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF};
    ASSERT_TRUE(f.WriteAt(8, garbage, sizeof garbage).ok());
  }
  emit(badwal, "bad_wal_header.lyricpg");
}

}  // namespace
}  // namespace storage
}  // namespace lyric
