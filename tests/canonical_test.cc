#include "constraint/canonical.h"

#include <gtest/gtest.h>

#include "constraint/simplex.h"

namespace lyric {
namespace {

class CanonicalTest : public ::testing::Test {
 protected:
  VarId x_ = Variable::Intern("x");
  VarId y_ = Variable::Intern("y");
  VarId z_ = Variable::Intern("z");

  LinearExpr X() { return LinearExpr::Var(x_); }
  LinearExpr Y() { return LinearExpr::Var(y_); }
  LinearExpr Z() { return LinearExpr::Var(z_); }
  LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }
};

TEST_F(CanonicalTest, SyntacticDedupe) {
  Conjunction c;
  c.Add(LinearConstraint::Le(X(), C(1)));
  c.Add(LinearConstraint::Le(X().Scale(Rational(3)), C(3)));
  Conjunction out =
      Canonical::Simplify(c, CanonicalLevel::kSyntactic).value();
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(CanonicalTest, CheapDetectsInfeasibleConjunct) {
  Conjunction c;
  c.Add(LinearConstraint::Ge(X() + Y(), C(3)));
  c.Add(LinearConstraint::Le(X(), C(1)));
  c.Add(LinearConstraint::Le(Y(), C(1)));
  // Syntactic keeps it; cheap collapses to FALSE.
  EXPECT_NE(Canonical::Simplify(c, CanonicalLevel::kSyntactic).value(),
            Conjunction::False());
  EXPECT_EQ(Canonical::Simplify(c, CanonicalLevel::kCheap).value(),
            Conjunction::False());
}

TEST_F(CanonicalTest, SolveEqualitiesSubstitutes) {
  // x = y + 1 and x <= 3 -> y <= 2 (plus the solved equality).
  Conjunction c;
  c.Add(LinearConstraint::Eq(X(), Y() + C(1)));
  c.Add(LinearConstraint::Le(X(), C(3)));
  Conjunction out = Canonical::SolveEqualities(c);
  bool found_y_bound = false;
  for (const LinearConstraint& atom : out.atoms()) {
    if (atom.op() == RelOp::kLe && atom.FreeVars() == VarSet{y_}) {
      found_y_bound = true;
    }
  }
  EXPECT_TRUE(found_y_bound) << out.ToString();
  // Semantics preserved.
  for (int64_t xv = 0; xv <= 4; ++xv) {
    for (int64_t yv = 0; yv <= 4; ++yv) {
      Assignment pt{{x_, Rational(xv)}, {y_, Rational(yv)}};
      EXPECT_EQ(c.Eval(pt).value(), out.Eval(pt).value());
    }
  }
}

TEST_F(CanonicalTest, SolveEqualitiesChain) {
  // x = y, y = z, z = 5: all collapse.
  Conjunction c;
  c.Add(LinearConstraint::Eq(X(), Y()));
  c.Add(LinearConstraint::Eq(Y(), Z()));
  c.Add(LinearConstraint::Eq(Z(), C(5)));
  Conjunction out = Canonical::SolveEqualities(c);
  Assignment good{{x_, Rational(5)}, {y_, Rational(5)}, {z_, Rational(5)}};
  Assignment bad{{x_, Rational(5)}, {y_, Rational(4)}, {z_, Rational(5)}};
  EXPECT_TRUE(out.Eval(good).value());
  EXPECT_FALSE(out.Eval(bad).value());
}

TEST_F(CanonicalTest, ContradictoryEqualitiesCollapse) {
  Conjunction c;
  c.Add(LinearConstraint::Eq(X(), Y()));
  c.Add(LinearConstraint::Eq(X(), Y() + C(1)));
  Conjunction out = Canonical::Simplify(c, CanonicalLevel::kCheap).value();
  EXPECT_EQ(out, Conjunction::False());
}

TEST_F(CanonicalTest, RedundancyRemovesImpliedAtom) {
  // x <= 1 implies x <= 5.
  Conjunction c;
  c.Add(LinearConstraint::Le(X(), C(1)));
  c.Add(LinearConstraint::Le(X(), C(5)));
  Conjunction cheap = Canonical::Simplify(c, CanonicalLevel::kCheap).value();
  EXPECT_EQ(cheap.size(), 2u);  // Cheap level keeps both.
  Conjunction tight =
      Canonical::Simplify(c, CanonicalLevel::kRedundancy).value();
  EXPECT_EQ(tight.size(), 1u);
  EXPECT_EQ(tight.atoms()[0], LinearConstraint::Le(X(), C(1)));
}

TEST_F(CanonicalTest, RedundancyRemovesImpliedCombination) {
  // x <= 1, y <= 1 imply x + y <= 2.
  Conjunction c;
  c.Add(LinearConstraint::Le(X(), C(1)));
  c.Add(LinearConstraint::Le(Y(), C(1)));
  c.Add(LinearConstraint::Le(X() + Y(), C(2)));
  Conjunction out =
      Canonical::Simplify(c, CanonicalLevel::kRedundancy).value();
  EXPECT_EQ(out.size(), 2u) << out.ToString();
}

TEST_F(CanonicalTest, RedundancyKeepsBindingAtoms) {
  Conjunction c;
  c.Add(LinearConstraint::Ge(X(), C(0)));
  c.Add(LinearConstraint::Le(X(), C(1)));
  c.Add(LinearConstraint::Ge(Y(), C(0)));
  Conjunction out =
      Canonical::Simplify(c, CanonicalLevel::kRedundancy).value();
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(CanonicalTest, DnfDropsInconsistentDisjuncts) {
  Conjunction bad;
  bad.Add(LinearConstraint::Ge(X(), C(2)));
  bad.Add(LinearConstraint::Le(X(), C(1)));
  Conjunction good;
  good.Add(LinearConstraint::Ge(X(), C(0)));
  Dnf d = Dnf(bad).Or(Dnf(good));
  Dnf out = Canonical::Simplify(d, CanonicalLevel::kCheap).value();
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(CanonicalTest, DnfDeletesSyntacticDuplicates) {
  Conjunction a;
  a.Add(LinearConstraint::Ge(X(), C(0)));
  a.Add(LinearConstraint::Le(X(), C(1)));
  Conjunction b;  // Same constraints, different order and scaling.
  b.Add(LinearConstraint::Le(X().Scale(Rational(2)), C(2)));
  b.Add(LinearConstraint::Ge(X(), C(0)));
  Dnf d = Dnf(a).Or(Dnf(b));
  Dnf out = Canonical::Simplify(d, CanonicalLevel::kSyntactic).value();
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(CanonicalTest, DnfDoesNotDetectSemanticRedundancy) {
  // [0,2] or [0,1]: the second disjunct is semantically redundant but not
  // a syntactic duplicate — per §3.1 it must survive (detection is co-NP).
  Conjunction wide;
  wide.Add(LinearConstraint::Ge(X(), C(0)));
  wide.Add(LinearConstraint::Le(X(), C(2)));
  Conjunction narrow;
  narrow.Add(LinearConstraint::Ge(X(), C(0)));
  narrow.Add(LinearConstraint::Le(X(), C(1)));
  Dnf d = Dnf(wide).Or(Dnf(narrow));
  Dnf out = Canonical::Simplify(d, CanonicalLevel::kRedundancy).value();
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(CanonicalTest, SimplifyPreservesSemantics) {
  Conjunction c;
  c.Add(LinearConstraint::Eq(X(), Y() + C(1)));
  c.Add(LinearConstraint::Le(X(), C(3)));
  c.Add(LinearConstraint::Le(X(), C(7)));
  c.Add(LinearConstraint::Ge(Y(), C(0)));
  for (CanonicalLevel level :
       {CanonicalLevel::kSyntactic, CanonicalLevel::kCheap,
        CanonicalLevel::kRedundancy}) {
    Conjunction out = Canonical::Simplify(c, level).value();
    for (int64_t xv = 0; xv <= 4; ++xv) {
      for (int64_t yv = -1; yv <= 4; ++yv) {
        Assignment pt{{x_, Rational(xv)}, {y_, Rational(yv)}};
        EXPECT_EQ(c.Eval(pt).value(), out.Eval(pt).value())
            << CanonicalLevelToString(level) << " " << out.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace lyric
