// End-to-end differential tests for lyric_serverd: every response a
// client reads off the wire must be byte-identical to evaluating the
// same query directly in process — rendered table, truncation flag,
// diagnostics, PARTIAL trailers, typed error statuses. The server adds
// transport, framing, session handling and pool dispatch; it must add
// exactly zero observable semantics.
//
// Every client in this binary is armed with a deterministic RetryPolicy
// (8 retries, 1ms base), so the whole binary doubles as the `net`
// fault gate: ctest runs it again under LYRIC_FAULT=net:0.1:7, where
// ~10% of socket operations fail with typed kUnavailable faults, and
// every assertion here must still hold (fault_gate_server_net in
// tests/CMakeLists.txt). The CI TSan job runs it a third time for
// data-race coverage.

#include <gtest/gtest.h>

#include <chrono>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

const char* kSuite[] = {
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and x = 6 and "
    "y = 4) FROM Office_Object CO WHERE CO.extent[E] and CO.translation[D]",
    "SELECT O FROM Object_in_Room O "
    "WHERE O.location[L] and L(x, y) |= x <= 12",
    "SELECT O FROM Object_in_Room O",
};
constexpr size_t kSuiteSize = sizeof(kSuite) / sizeof(kSuite[0]);

Database MakeDb(int scaled_desks) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  EXPECT_TRUE(ids.ok()) << ids.status();
  if (scaled_desks > 0) {
    Status st = office::AddScaledDesks(&db, scaled_desks, /*seed=*/7);
    EXPECT_TRUE(st.ok()) << st;
  }
  return db;
}

net::ClientOptions TestClientOptions(uint16_t port, uint64_t seed = 1) {
  net::ClientOptions opts;
  opts.port = port;
  opts.threads = 1;
  // Armed so the binary survives the net fault gate: injected transport
  // faults and sheds are absorbed deterministically.
  opts.retry.max_retries = 8;
  opts.retry.base_backoff_ms = 1;
  opts.retry.seed = seed;
  return opts;
}

/// The expected response for `query`, evaluated directly in process with
/// the same options the server applies.
net::QueryResponse DirectEval(Database* db, const std::string& query,
                              EvalOptions opts) {
  opts.threads = 1;
  opts.retry = exec::RetryPolicy{};  // Mirrors the server's forced default.
  Evaluator ev(db, opts);
  return net::ResponseFromResult(ev.Execute(query));
}

/// Strips the one timing-variable token in a governor report ("after
/// Nms") so PARTIAL responses can be byte-compared; everything else in
/// the report (trip kind, site, pivot/binding/memory counts) is
/// deterministic and stays.
std::string StripElapsed(const std::string& text) {
  static const std::regex kElapsed("after [0-9]+ms");
  return std::regex_replace(text, kElapsed, "after Xms");
}

TEST(ServerE2E, ByteIdenticalUnderConcurrency) {
  Database db = MakeDb(10);
  net::ServerOptions sopts;
  sopts.exec_threads = 4;
  sopts.eval.threads = 1;
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());

  EvalOptions direct;
  direct.threads = 1;
  std::vector<std::string> expected(kSuiteSize);
  for (size_t q = 0; q < kSuiteSize; ++q) {
    expected[q] = DirectEval(&db, kSuite[q], direct).Fingerprint();
  }

  constexpr int kClients = 6;
  constexpr int kRounds = 3;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      net::Client client(
          TestClientOptions(server.port(), static_cast<uint64_t>(c) + 1));
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < kSuiteSize; ++q) {
          Result<net::QueryResponse> resp = client.Execute(kSuite[q]);
          if (!resp.ok()) {
            failures[c] = "transport: " + resp.status().ToString();
            return;
          }
          if (resp->Fingerprint() != expected[q]) {
            failures[c] = std::string("fingerprint diverged on: ") + kSuite[q];
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  server.Stop();
  EXPECT_EQ(server.active_sessions(), 0u);
}

TEST(ServerE2E, ErrorsTravelTyped) {
  Database db = MakeDb(0);
  net::Server server(&db, net::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const std::string bad_queries[] = {
      "SELECT",                                  // parse error
      "SELECT O FROM NoSuchClass O",             // unknown class
      "SELECT O FROM Desk O WHERE O.location[",  // parse error
  };
  net::Client client(TestClientOptions(server.port()));
  for (const std::string& q : bad_queries) {
    EvalOptions direct;
    Evaluator ev(&db, direct);
    Result<ResultSet> want = ev.Execute(q);
    ASSERT_FALSE(want.ok()) << q;

    Result<net::QueryResponse> resp = client.Execute(q);
    ASSERT_TRUE(resp.ok()) << q << " -> " << resp.status();
    EXPECT_EQ(resp->status.code(), want.status().code()) << q;
    EXPECT_EQ(resp->status.message(), want.status().message()) << q;
  }
  server.Stop();
}

TEST(ServerE2E, DiagnosticsTravel) {
  Database db = MakeDb(0);
  net::Server server(&db, net::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // Trips the analyzer's disjunctive-entailment warning, so the wire
  // must carry a non-empty diagnostics list, byte-equal to direct
  // evaluation's.
  const std::string query =
      "SELECT DSK FROM Desk DSK "
      "WHERE DSK.drawer_center[C] and C(p, q) |= (p <= 0 or p >= 1)";
  EvalOptions direct;
  direct.analyze_first = true;
  net::QueryResponse want = DirectEval(&db, query, direct);
  ASSERT_FALSE(want.diagnostics.empty());

  net::ClientOptions copts = TestClientOptions(server.port());
  copts.analyze_first = true;
  net::Client client(copts);
  Result<net::QueryResponse> resp = client.Execute(query);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->diagnostics, want.diagnostics);
  EXPECT_EQ(resp->Fingerprint(), want.Fingerprint());
  server.Stop();
}

TEST(ServerE2E, PartialTrailerTravels) {
  Database db = MakeDb(12);
  // A pivot budget small enough that the scan trips mid-flight: the
  // response must carry the partial rows, the governor code, and the
  // "-- PARTIAL" trailer in the rendered table, matching direct
  // evaluation modulo the elapsed-ms token.
  net::ServerOptions sopts;
  sopts.eval.threads = 1;
  sopts.eval.max_pivots = 20;
  // The governor report counts pivots actually spent, and a solver-cache
  // hit spends none — disable memoization on both sides so the counts in
  // the compared reports are run-order independent.
  sopts.eval.cache_capacity = 0;
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());

  const std::string query =
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and L(x, y) |= x <= 12";
  EvalOptions direct;
  direct.max_pivots = 20;
  direct.cache_capacity = 0;
  net::QueryResponse want = DirectEval(&db, query, direct);
  ASSERT_TRUE(want.status.ok());
  ASSERT_NE(want.governor_code, 0) << "budget did not trip; raise the scale";
  ASSERT_NE(want.rendered.find("-- PARTIAL"), std::string::npos);

  net::Client client(TestClientOptions(server.port()));
  Result<net::QueryResponse> resp = client.Execute(query);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->governor_code, want.governor_code);
  EXPECT_NE(resp->rendered.find("-- PARTIAL"), std::string::npos);
  EXPECT_EQ(StripElapsed(resp->Fingerprint()), StripElapsed(want.Fingerprint()));
  EXPECT_EQ(StripElapsed(resp->governor_report),
            StripElapsed(want.governor_report));
  server.Stop();
}

TEST(ServerE2E, TruncationFlagTravels) {
  Database db = MakeDb(20);
  net::Server server(&db, net::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const std::string query = "SELECT O FROM Object_in_Room O";
  EvalOptions direct;
  direct.max_rows = 5;
  net::QueryResponse want = DirectEval(&db, query, direct);
  ASSERT_TRUE(want.truncated);

  net::ClientOptions copts = TestClientOptions(server.port());
  copts.max_rows = 5;
  net::Client client(copts);
  Result<net::QueryResponse> resp = client.Execute(query);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->truncated);
  EXPECT_EQ(resp->row_count, want.row_count);
  EXPECT_EQ(resp->Fingerprint(), want.Fingerprint());
  server.Stop();
}

TEST(ServerE2E, CreateViewSerializedAcrossClients) {
  Database db = MakeDb(6);
  net::ServerOptions sopts;
  sopts.exec_threads = 4;
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());

  // Several clients race view creation (exclusive schema gate) against
  // reads (shared gate). Every request must succeed; afterwards every
  // view must be queryable.
  constexpr int kCreators = 3;
  std::vector<std::string> failures(kCreators);
  std::vector<std::thread> threads;
  for (int c = 0; c < kCreators; ++c) {
    threads.emplace_back([&, c] {
      net::Client client(
          TestClientOptions(server.port(), static_cast<uint64_t>(c) + 11));
      const std::string view = "E2E_View_" + std::to_string(c);
      Result<net::QueryResponse> created = client.Execute(
          "CREATE VIEW " + view +
          " AS SUBCLASS OF Object_in_Room SELECT O FROM Object_in_Room O "
          "WHERE O.location[L] and L(x, y) |= x <= 12");
      // Under the net fault gate a lost response frame makes the client
      // retry a CREATE that already committed; the AlreadyExists on the
      // second attempt proves the first one worked.
      if (!created.ok() ||
          (!created->status.ok() && !created->status.IsAlreadyExists())) {
        failures[c] = "create failed";
        return;
      }
      for (int i = 0; i < 4; ++i) {
        Result<net::QueryResponse> read =
            client.Execute("SELECT O FROM Object_in_Room O");
        if (!read.ok() || !read->status.ok()) {
          failures[c] = "interleaved read failed";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kCreators; ++c) EXPECT_EQ(failures[c], "");

  net::Client reader(TestClientOptions(server.port(), 99));
  for (int c = 0; c < kCreators; ++c) {
    Result<net::QueryResponse> resp =
        reader.Execute("SELECT V FROM E2E_View_" + std::to_string(c) + " V");
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->status.ok()) << resp->status;
  }
  server.Stop();
}

TEST(ServerE2E, PingAndSessionAccounting) {
  Database db = MakeDb(0);
  net::Server server(&db, net::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  {
    net::Client client(TestClientOptions(server.port()));
    // Ping has no retry loop of its own; under the fault gate a probe
    // can legitimately fail, so allow a few attempts.
    Status st = Status::Unavailable("unset");
    for (int attempt = 0; attempt < 20 && !st.ok(); ++attempt) {
      st = client.Ping();
    }
    EXPECT_TRUE(st.ok()) << st;
    EXPECT_GE(server.sessions_opened(), 1u);
  }
  // The client destructor closed the connection; the server notices the
  // EOF and marks the session done.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.active_sessions() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.active_sessions(), 0u) << "session leaked after EOF";
  server.Stop();
}

TEST(ServerE2E, SurvivesAbruptDisconnects) {
  Database db = MakeDb(0);
  net::Server server(&db, net::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // Connections that vanish mid-frame must not take the server down or
  // leak sessions.
  for (int i = 0; i < 5; ++i) {
    Result<net::Socket> raw = net::Socket::Connect("127.0.0.1", server.port());
    if (!raw.ok()) continue;  // Injected fault under the gate; fine.
    char header[net::kFrameHeaderBytes];
    net::EncodeFrameHeader(net::FrameType::kQuery, 1024, header);
    // Send the header promising 1024 payload bytes, then hang up.
    (void)raw->WriteFull(header, sizeof(header));
    raw->Close();
  }

  net::Client client(TestClientOptions(server.port()));
  Result<net::QueryResponse> resp =
      client.Execute("SELECT O FROM Object_in_Room O");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->status.ok());

  client.Close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.active_sessions() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.active_sessions(), 0u);
  server.Stop();
}

TEST(ServerE2E, ProtocolViolationsGetTypedErrorFrames) {
  Database db = MakeDb(0);
  net::Server server(&db, net::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  struct Violation {
    const char* name;
    std::string bytes;
  };
  std::vector<Violation> violations;
  {
    char h[net::kFrameHeaderBytes];
    net::EncodeFrameHeader(net::FrameType::kQuery, 0, h);
    std::string bad_magic(h, sizeof(h));
    bad_magic[0] = 'X';
    violations.push_back({"bad magic", bad_magic});

    net::EncodeFrameHeader(net::FrameType::kQuery, 0, h);
    std::string bad_version(h, sizeof(h));
    bad_version[4] = 42;
    violations.push_back({"bad version", bad_version});

    net::EncodeFrameHeader(net::FrameType::kQuery, net::kMaxPayloadBytes + 1,
                           h);
    violations.push_back({"oversized payload", std::string(h, sizeof(h))});

    // Zero-length payload on a kQuery frame: too short to decode.
    net::EncodeFrameHeader(net::FrameType::kQuery, 0, h);
    violations.push_back({"empty query payload", std::string(h, sizeof(h))});

    // A server->client-only frame type arriving at the server.
    net::EncodeFrameHeader(net::FrameType::kResult, 0, h);
    violations.push_back({"client sent kResult", std::string(h, sizeof(h))});
  }

  for (const Violation& v : violations) {
    Result<net::Socket> raw = net::Socket::Connect("127.0.0.1", server.port());
    if (!raw.ok()) continue;  // Injected fault under the gate.
    Status wrote = raw->WriteFull(v.bytes.data(), v.bytes.size());
    if (!wrote.ok()) continue;
    char rh[net::kFrameHeaderBytes];
    Status read = raw->ReadFull(rh, sizeof(rh));
    if (!read.ok()) continue;  // Fault ate the error frame; survival is next.
    net::FrameHeader header;
    ASSERT_TRUE(net::DecodeFrameHeader(rh, sizeof(rh), net::kMaxPayloadBytes,
                                       &header)
                    .ok())
        << v.name;
    EXPECT_EQ(header.type, net::FrameType::kError) << v.name;
    std::string payload(header.payload_len, '\0');
    if (header.payload_len != 0 &&
        !raw->ReadFull(payload.data(), payload.size()).ok()) {
      continue;
    }
    net::WireError err;
    ASSERT_TRUE(net::DecodeWireError(payload, &err).ok()) << v.name;
    EXPECT_EQ(err.code, StatusCode::kInvalidArgument) << v.name;
    EXPECT_FALSE(err.message.empty()) << v.name;
    // The server closes after an error frame: the next read is EOF.
    bool clean = false;
    EXPECT_FALSE(raw->ReadFull(rh, 1, &clean).ok()) << v.name;
  }

  // Whatever the violations did, the server must still serve.
  net::Client client(TestClientOptions(server.port()));
  Result<net::QueryResponse> resp =
      client.Execute("SELECT O FROM Object_in_Room O");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->status.ok());
  server.Stop();
}

}  // namespace
}  // namespace lyric
