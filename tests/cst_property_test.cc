// Property suite: algebraic laws of CST objects checked on randomized
// instances. These are the semantic invariants everything above the
// constraint engine (evaluator, flat algebra, FP combinators) relies on.

#include <random>

#include <gtest/gtest.h>

#include "constraint/cst_object.h"

namespace lyric {
namespace {

class CstProperty : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    rng_.seed(static_cast<uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ull);
    x_ = Variable::Intern("ppx");
    y_ = Variable::Intern("ppy");
  }

  Rational RandCoeff() {
    return Rational(static_cast<int64_t>(rng_() % 7) - 3);
  }

  // A random (possibly empty, possibly disjunctive) 2-D CST object within
  // a bounded window.
  CstObject RandomObject() {
    Dnf d;
    int disjuncts = 1 + static_cast<int>(rng_() % 2);
    for (int k = 0; k < disjuncts; ++k) {
      Conjunction c;
      c.Add(LinearConstraint::Ge(LinearExpr::Var(x_),
                                 LinearExpr::Constant(Rational(-6))));
      c.Add(LinearConstraint::Le(LinearExpr::Var(x_),
                                 LinearExpr::Constant(Rational(6))));
      c.Add(LinearConstraint::Ge(LinearExpr::Var(y_),
                                 LinearExpr::Constant(Rational(-6))));
      c.Add(LinearConstraint::Le(LinearExpr::Var(y_),
                                 LinearExpr::Constant(Rational(6))));
      for (int i = 0; i < 3; ++i) {
        LinearExpr e;
        e.AddTerm(x_, RandCoeff());
        e.AddTerm(y_, RandCoeff());
        e.AddConstant(Rational(static_cast<int64_t>(rng_() % 13) - 6));
        c.Add(LinearConstraint(e, rng_() % 4 == 0 ? RelOp::kLt : RelOp::kLe));
      }
      d.AddDisjunct(std::move(c));
    }
    return CstObject::FromDnf({x_, y_}, d).value();
  }

  std::vector<Rational> RandomPoint() {
    auto r = [&]() {
      return Rational(static_cast<int64_t>(rng_() % 29) - 14, 2);
    };
    return {r(), r()};
  }

  std::mt19937_64 rng_;
  VarId x_, y_;
};

TEST_P(CstProperty, ConjoinIsIntersection) {
  CstObject a = RandomObject();
  CstObject b = RandomObject();
  CstObject both = a.Conjoin(b).value();
  for (int i = 0; i < 24; ++i) {
    auto p = RandomPoint();
    EXPECT_EQ(both.Contains(p).value(),
              a.Contains(p).value() && b.Contains(p).value());
  }
}

TEST_P(CstProperty, DisjoinIsUnion) {
  CstObject a = RandomObject();
  CstObject b = RandomObject();
  CstObject either = a.Disjoin(b).value();
  for (int i = 0; i < 24; ++i) {
    auto p = RandomPoint();
    EXPECT_EQ(either.Contains(p).value(),
              a.Contains(p).value() || b.Contains(p).value());
  }
}

TEST_P(CstProperty, NegateIsComplementForConjunctive) {
  // Build a purely conjunctive object (single disjunct).
  Conjunction c;
  c.Add(LinearConstraint::Ge(LinearExpr::Var(x_),
                             LinearExpr::Constant(RandCoeff())));
  c.Add(LinearConstraint::Le(LinearExpr::Var(x_) + LinearExpr::Var(y_),
                             LinearExpr::Constant(Rational(
                                 static_cast<int64_t>(rng_() % 9)))));
  CstObject a = CstObject::FromConjunction({x_, y_}, c).value();
  CstObject not_a = a.Negate().value();
  for (int i = 0; i < 24; ++i) {
    auto p = RandomPoint();
    EXPECT_NE(a.Contains(p).value(), not_a.Contains(p).value());
  }
}

TEST_P(CstProperty, EntailsIsSampledImplication) {
  CstObject a = RandomObject();
  CstObject b = RandomObject();
  bool entails = a.Entails(b).value();
  if (entails) {
    for (int i = 0; i < 24; ++i) {
      auto p = RandomPoint();
      if (a.Contains(p).value()) {
        EXPECT_TRUE(b.Contains(p).value());
      }
    }
  }
  // Reflexivity always.
  EXPECT_TRUE(a.Entails(a).value());
}

TEST_P(CstProperty, EntailmentRespectsConjoin) {
  // a conjoin b entails both a and b.
  CstObject a = RandomObject();
  CstObject b = RandomObject();
  CstObject both = a.Conjoin(b).value();
  EXPECT_TRUE(both.Entails(a).value());
  EXPECT_TRUE(both.Entails(b).value());
  // And both a, b entail a disjoin b.
  CstObject either = a.Disjoin(b).value();
  EXPECT_TRUE(a.Entails(either).value());
  EXPECT_TRUE(b.Entails(either).value());
}

TEST_P(CstProperty, CanonicalizePreservesSemantics) {
  CstObject a = RandomObject();
  for (CanonicalLevel level :
       {CanonicalLevel::kSyntactic, CanonicalLevel::kCheap,
        CanonicalLevel::kRedundancy}) {
    CstObject canon = a.Canonicalize(level).value();
    for (int i = 0; i < 16; ++i) {
      auto p = RandomPoint();
      EXPECT_EQ(a.Contains(p).value(), canon.Contains(p).value())
          << CanonicalLevelToString(level);
    }
  }
}

TEST_P(CstProperty, CanonicalStringIdentityIsSound) {
  // Equal canonical strings imply equal point sets (sampled); renaming
  // the interface never changes the identity.
  CstObject a = RandomObject();
  VarId u = Variable::Intern("ppu");
  VarId v = Variable::Intern("ppv");
  CstObject renamed = a.RenameTo({u, v}).value();
  EXPECT_EQ(a.CanonicalString().value(), renamed.CanonicalString().value());
  CstObject b = RandomObject();
  if (a.CanonicalString().value() == b.CanonicalString().value()) {
    for (int i = 0; i < 16; ++i) {
      auto p = RandomPoint();
      EXPECT_EQ(a.Contains(p).value(), b.Contains(p).value());
    }
  }
}

TEST_P(CstProperty, ProjectionIsSoundAndComplete) {
  CstObject a = RandomObject();
  CstObject shadow = a.ProjectEager({x_}).value();
  // Sampled x is in the shadow iff some y extends it into a.
  for (int i = 0; i < 12; ++i) {
    Rational px(static_cast<int64_t>(rng_() % 29) - 14, 2);
    // exists y . a(px, y)?
    bool extends = false;
    {
      Conjunction grounded;
      // a with x fixed: conjoin with x = px and test satisfiability.
      Conjunction fix;
      fix.Add(LinearConstraint::Eq(LinearExpr::Var(x_),
                                   LinearExpr::Constant(px)));
      CstObject fixed =
          a.Conjoin(CstObject::FromConjunction({x_}, fix).value()).value();
      extends = fixed.Satisfiable().value();
      (void)grounded;
    }
    EXPECT_EQ(shadow.Contains({px}).value(), extends) << px;
  }
  // Lazy projection agrees with eager.
  CstObject lazy = a.Project({x_}).value();
  EXPECT_TRUE(lazy.EquivalentTo(shadow).value());
}

TEST_P(CstProperty, BoundingBoxContainsAllMembers) {
  CstObject a = RandomObject();
  if (!a.Satisfiable().value()) return;
  auto box = a.BoundingBox().value();
  ASSERT_EQ(box.size(), 2u);
  for (int i = 0; i < 24; ++i) {
    auto p = RandomPoint();
    if (!a.Contains(p).value()) continue;
    for (size_t d = 0; d < 2; ++d) {
      if (box[d].lower.has_value()) {
        EXPECT_GE(p[d], *box[d].lower);
      }
      if (box[d].upper.has_value()) {
        EXPECT_LE(p[d], *box[d].upper);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CstProperty, ::testing::Range(1, 21));

}  // namespace
}  // namespace lyric
