#include <gtest/gtest.h>

#include "office/office_db.h"
#include "query/evaluator.h"
#include "relational/translator.h"

namespace lyric {
namespace {

class RelationalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
  }

  FlatDatabase Flat() { return FlatDatabase::Flatten(db_).value(); }

  FlatRelation RunFlat(const std::string& text) {
    FlatDatabase flat = Flat();
    FlatTranslator tr(&flat, &db_);
    auto r = tr.Execute(text);
    EXPECT_TRUE(r.ok()) << text << "\n -> " << r.status();
    return r.ok() ? *r : FlatRelation();
  }

  Database db_;
  office::OfficeIds ids_;
};

TEST_F(RelationalTest, FlattenProducesPerClassRelations) {
  FlatDatabase flat = Flat();
  const FlatRelation* desks = flat.Relation("Desk").value();
  // Columns: oid + drawer_center, drawer, then inherited name, color,
  // extent, translation.
  EXPECT_EQ(desks->columns().size(), 7u);
  EXPECT_EQ(desks->columns()[0], "oid");
  ASSERT_EQ(desks->size(), 1u);
  EXPECT_EQ(desks->tuples()[0][0], ids_.standard_desk);
}

TEST_F(RelationalTest, FlattenInheritanceIntoSuperclassRelation) {
  FlatDatabase flat = Flat();
  // The desk appears in the Office_Object relation too (extent of the
  // superclass includes subclasses).
  const FlatRelation* objs = flat.Relation("Office_Object").value();
  ASSERT_EQ(objs->size(), 1u);
  EXPECT_EQ(objs->tuples()[0][0], ids_.standard_desk);
}

TEST_F(RelationalTest, FlattenUnnestsSetValuedAttributes) {
  // A file cabinet with two drawers yields two flat tuples.
  Oid cab = Oid::Symbol("flat_cab");
  ASSERT_TRUE(db_.Insert(cab, "File_Cabinet").ok());
  ASSERT_TRUE(db_.SetAttribute(cab, "name",
                               Value::Scalar(Oid::Str("cabinet"))).ok());
  ASSERT_TRUE(db_.SetAttribute(cab, "color",
                               Value::Scalar(Oid::Str("gray"))).ok());
  ASSERT_TRUE(
      db_.SetCstAttribute(cab, "extent", office::BoxExtent(1, 2)).ok());
  ASSERT_TRUE(db_.SetCstAttribute(cab, "translation",
                                  office::StandardTranslation()).ok());
  Oid d1 = Oid::Symbol("flat_cab_d1");
  Oid d2 = Oid::Symbol("flat_cab_d2");
  for (const Oid& d : {d1, d2}) {
    ASSERT_TRUE(db_.Insert(d, "Drawer").ok());
  }
  ASSERT_TRUE(db_.SetAttribute(cab, "drawer", Value::Set({d1, d2})).ok());
  // drawer_center is set-valued on File_Cabinet.
  Oid center = db_.InternCst(office::StandardDrawerCenter()).value();
  ASSERT_TRUE(
      db_.SetAttribute(cab, "drawer_center", Value::Set({center})).ok());
  FlatDatabase flat = Flat();
  const FlatRelation* cabs = flat.Relation("File_Cabinet").value();
  EXPECT_EQ(cabs->size(), 2u);  // One per drawer.
}

TEST_F(RelationalTest, ObjectsMissingAttributesDropOut) {
  Oid bare = Oid::Symbol("bare_desk");
  ASSERT_TRUE(db_.Insert(bare, "Desk").ok());
  FlatDatabase flat = Flat();
  const FlatRelation* desks = flat.Relation("Desk").value();
  // Only the fully populated standard desk appears.
  ASSERT_EQ(desks->size(), 1u);
  EXPECT_EQ(desks->tuples()[0][0], ids_.standard_desk);
}

TEST_F(RelationalTest, SimpleSelectViaTranslation) {
  FlatRelation r = RunFlat("SELECT X FROM Desk X WHERE X.color = 'red'");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.tuples()[0][0], ids_.standard_desk);
  EXPECT_EQ(RunFlat("SELECT X FROM Desk X WHERE X.color = 'blue'").size(),
            0u);
}

TEST_F(RelationalTest, PathPredicateBecomesJoin) {
  FlatRelation r = RunFlat("SELECT Y FROM Desk X WHERE X.drawer[Y]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.tuples()[0][0], ids_.the_drawer);
}

TEST_F(RelationalTest, MultiStepPathJoins) {
  FlatRelation r =
      RunFlat("SELECT Y FROM Desk X WHERE X.drawer.extent[Y]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.tuples()[0][0].IsCst());
}

TEST_F(RelationalTest, CstSatSelection) {
  FlatRelation in = RunFlat(
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and SAT(L(x, y) and x >= 5)");
  EXPECT_EQ(in.size(), 1u);
  FlatRelation out_rel = RunFlat(
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and SAT(L(x, y) and x >= 7)");
  EXPECT_EQ(out_rel.size(), 0u);
}

TEST_F(RelationalTest, CstEntailmentSelection) {
  EXPECT_EQ(RunFlat("SELECT DSK FROM Desk DSK "
                    "WHERE DSK.drawer_center[C] and C(p, q) |= p = -2")
                .size(),
            1u);
  EXPECT_EQ(RunFlat("SELECT DSK FROM Desk DSK "
                    "WHERE DSK.drawer_center[C] and C(p, q) |= p = 0")
                .size(),
            0u);
}

TEST_F(RelationalTest, ConstructCstColumn) {
  FlatRelation r = RunFlat(
      "SELECT CO, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and x = 6 "
      "and y = 4) "
      "FROM Office_Object CO WHERE CO.extent[E] and CO.translation[D]");
  ASSERT_EQ(r.size(), 1u);
  ASSERT_EQ(r.tuples()[0].size(), 2u);
  CstObject obj = db_.GetCst(r.tuples()[0][1]).value();
  // The same [2,10]x[2,6] box the paper (and the direct evaluator) yield.
  EXPECT_TRUE(obj.Contains({Rational(2), Rational(2)}).value());
  EXPECT_TRUE(obj.Contains({Rational(10), Rational(6)}).value());
  EXPECT_FALSE(obj.Contains({Rational(1), Rational(4)}).value());
}

TEST_F(RelationalTest, FlatAgreesWithDirectEvaluator) {
  ASSERT_TRUE(office::AddScaledDesks(&db_, 8, 5).ok());
  const char* queries[] = {
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and SAT(L(x, y) and x >= 10)",
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and SAT(L(x, y) and 0 <= x and x <= 10 and "
      "0 <= y and y <= 5)",
      "SELECT Y FROM Desk X WHERE X.drawer[Y]",
  };
  for (const char* q : queries) {
    Evaluator ev(&db_);
    ResultSet direct = ev.Execute(q).value();
    FlatRelation flat = RunFlat(q);
    EXPECT_EQ(direct.size(), flat.size()) << q;
    for (const auto& row : flat.tuples()) {
      EXPECT_TRUE(direct.ContainsOid(row[0])) << q << " " << row[0];
    }
  }
}

TEST_F(RelationalTest, UnsupportedShapesReportNotImplemented) {
  FlatDatabase flat = Flat();
  FlatTranslator tr(&flat, &db_);
  // OR in WHERE.
  auto r1 = tr.Execute(
      "SELECT X FROM Desk X WHERE X.color = 'red' or X.color = 'blue'");
  EXPECT_TRUE(r1.status().IsNotImplemented());
  // Bare predicate use.
  auto r2 = tr.Execute(
      "SELECT O FROM Object_in_Room O WHERE O.location[L] and SAT(L)");
  EXPECT_TRUE(r2.status().IsNotImplemented());
  // Views.
  auto r3 = tr.Execute(
      "CREATE VIEW V AS SUBCLASS OF Desk SELECT X FROM Desk X");
  EXPECT_TRUE(r3.status().IsNotImplemented());
}

TEST_F(RelationalTest, AlgebraPrimitives) {
  FlatRelation r({"a", "b"});
  ASSERT_TRUE(r.Add({Oid::Int(1), Oid::Int(2)}).ok());
  ASSERT_TRUE(r.Add({Oid::Int(1), Oid::Int(2)}).ok());
  ASSERT_TRUE(r.Add({Oid::Int(3), Oid::Int(3)}).ok());
  r.Dedupe();
  EXPECT_EQ(r.size(), 2u);
  FlatRelation eq = FlatAlgebra::SelectCols(r, "a", "=", "b").value();
  EXPECT_EQ(eq.size(), 1u);
  FlatRelation lt = FlatAlgebra::SelectConst(r, "a", "<", Oid::Int(2)).value();
  EXPECT_EQ(lt.size(), 1u);
  FlatRelation proj = FlatAlgebra::Project(r, {"b"}).value();
  EXPECT_EQ(proj.size(), 2u);
  // Arity mismatch and unknown columns are errors.
  EXPECT_FALSE(r.Add({Oid::Int(1)}).ok());
  EXPECT_FALSE(FlatAlgebra::Project(r, {"nope"}).ok());
  // Column clash in product.
  EXPECT_TRUE(FlatAlgebra::Product(r, r).status().IsInvalidArgument());
  FlatRelation pref = r.WithPrefix("r2.");
  EXPECT_EQ(FlatAlgebra::Product(r, pref).value().size(), 4u);
}

}  // namespace
}  // namespace lyric
