// Unit tests for the wire protocol: header and payload round-trips, and
// the rejection contract for malformed bytes (the same code paths the
// fuzz harness drives at scale).

#include <gtest/gtest.h>

#include <string>

#include "net/frame.h"

namespace lyric {
namespace net {
namespace {

TEST(FrameHeader, RoundTrip) {
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kQuery, 12345, bytes);
  FrameHeader header;
  ASSERT_TRUE(
      DecodeFrameHeader(bytes, sizeof(bytes), kMaxPayloadBytes, &header).ok());
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.type, FrameType::kQuery);
  EXPECT_EQ(header.payload_len, 12345u);
}

TEST(FrameHeader, RejectsBadMagic) {
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kPing, 0, bytes);
  bytes[1] = 'x';
  FrameHeader header;
  Status st = DecodeFrameHeader(bytes, sizeof(bytes), kMaxPayloadBytes, &header);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("magic"), std::string::npos);
}

TEST(FrameHeader, RejectsWrongVersion) {
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kPing, 0, bytes);
  bytes[4] = 9;
  FrameHeader header;
  Status st = DecodeFrameHeader(bytes, sizeof(bytes), kMaxPayloadBytes, &header);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("version"), std::string::npos);
}

TEST(FrameHeader, RejectsUnknownType) {
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kPing, 0, bytes);
  bytes[5] = 77;
  FrameHeader header;
  Status st = DecodeFrameHeader(bytes, sizeof(bytes), kMaxPayloadBytes, &header);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(FrameHeader, RejectsOversizedPayload) {
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kQuery, kMaxPayloadBytes + 1, bytes);
  FrameHeader header;
  Status st = DecodeFrameHeader(bytes, sizeof(bytes), kMaxPayloadBytes, &header);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("cap"), std::string::npos);
}

TEST(FrameHeader, RejectsTruncatedHeader) {
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kQuery, 0, bytes);
  FrameHeader header;
  EXPECT_TRUE(DecodeFrameHeader(bytes, 7, kMaxPayloadBytes, &header)
                  .IsInvalidArgument());
}

TEST(FrameHeader, ReservedBytesIgnoredOnReceive) {
  // The forward-compat rule: senders write 0, receivers ignore.
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kPing, 0, bytes);
  bytes[6] = static_cast<char>(0xAB);
  bytes[7] = static_cast<char>(0xCD);
  FrameHeader header;
  EXPECT_TRUE(
      DecodeFrameHeader(bytes, sizeof(bytes), kMaxPayloadBytes, &header).ok());
}

TEST(QueryRequestWire, RoundTripAllFields) {
  QueryRequest req;
  req.query = "SELECT O FROM Object_in_Room O";
  req.deadline_ms = 250;
  req.memory_budget = 1u << 20;
  req.threads = 4;
  req.max_rows = 99;
  req.analyze_first = true;
  QueryRequest back;
  ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(req), &back).ok());
  EXPECT_EQ(req, back);
}

TEST(QueryRequestWire, RoundTripUnsetOptionals) {
  QueryRequest req;
  req.query = "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]";
  QueryRequest back;
  ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(req), &back).ok());
  EXPECT_EQ(req, back);
  EXPECT_FALSE(back.deadline_ms.has_value());
  EXPECT_FALSE(back.memory_budget.has_value());
}

TEST(QueryRequestWire, RejectsTruncationAtEveryPrefix) {
  QueryRequest req;
  req.query = "SELECT O FROM Object_in_Room O";
  req.deadline_ms = 7;
  const std::string full = EncodeQueryRequest(req);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    QueryRequest back;
    EXPECT_TRUE(DecodeQueryRequest(full.substr(0, cut), &back)
                    .IsInvalidArgument())
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(QueryRequestWire, RejectsTrailingBytes) {
  QueryRequest req;
  req.query = "SELECT O FROM Object_in_Room O";
  QueryRequest back;
  EXPECT_TRUE(DecodeQueryRequest(EncodeQueryRequest(req) + "x", &back)
                  .IsInvalidArgument());
}

QueryResponse SampleResponse() {
  QueryResponse resp;
  resp.status = Status::OK();
  resp.rendered = "| O |\n| desk1 |\n-- PARTIAL: deadline";
  resp.row_count = 1;
  resp.truncated = true;
  resp.diagnostics = {"warning: W001 something", "note: N002 else"};
  resp.governor_code = 9;
  resp.governor_report = "governor: tripped deadline after 3ms";
  resp.admission_mode = "queued";
  resp.queue_wait_ns = 12345;
  resp.threads_used = 2;
  resp.server_retries = 1;
  return resp;
}

TEST(QueryResponseWire, RoundTripFullResult) {
  const QueryResponse resp = SampleResponse();
  QueryResponse back;
  ASSERT_TRUE(DecodeQueryResponse(EncodeQueryResponse(resp), &back).ok());
  EXPECT_EQ(back.status.code(), resp.status.code());
  EXPECT_EQ(back.rendered, resp.rendered);
  EXPECT_EQ(back.row_count, resp.row_count);
  EXPECT_EQ(back.truncated, resp.truncated);
  EXPECT_EQ(back.diagnostics, resp.diagnostics);
  EXPECT_EQ(back.governor_code, resp.governor_code);
  EXPECT_EQ(back.governor_report, resp.governor_report);
  EXPECT_EQ(back.admission_mode, resp.admission_mode);
  EXPECT_EQ(back.queue_wait_ns, resp.queue_wait_ns);
  EXPECT_EQ(back.threads_used, resp.threads_used);
  EXPECT_EQ(back.server_retries, resp.server_retries);
  EXPECT_EQ(back.Fingerprint(), resp.Fingerprint());
}

TEST(QueryResponseWire, RoundTripErrorWithRetryAfter) {
  QueryResponse resp;
  resp.status =
      Status::Unavailable("admission: queue full").WithRetryAfter(42);
  QueryResponse back;
  ASSERT_TRUE(DecodeQueryResponse(EncodeQueryResponse(resp), &back).ok());
  EXPECT_TRUE(back.status.IsUnavailable());
  EXPECT_EQ(back.status.message(), "admission: queue full");
  EXPECT_EQ(back.status.retry_after_ms(), 42u);
  EXPECT_TRUE(back.rendered.empty());
}

TEST(QueryResponseWire, RejectsTruncationAtEveryPrefix) {
  const std::string full = EncodeQueryResponse(SampleResponse());
  for (size_t cut = 0; cut < full.size(); ++cut) {
    QueryResponse back;
    EXPECT_TRUE(DecodeQueryResponse(full.substr(0, cut), &back)
                    .IsInvalidArgument())
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(QueryResponseWire, RejectsUnknownStatusCode) {
  std::string bytes = EncodeQueryResponse(SampleResponse());
  bytes[0] = 55;  // Status code far outside the enum.
  QueryResponse back;
  EXPECT_TRUE(DecodeQueryResponse(bytes, &back).IsInvalidArgument());
}

TEST(WireErrorWire, RoundTrip) {
  WireError err;
  err.code = StatusCode::kInvalidArgument;
  err.message = "frame: bad magic";
  WireError back;
  ASSERT_TRUE(DecodeWireError(EncodeWireError(err), &back).ok());
  EXPECT_EQ(back.code, err.code);
  EXPECT_EQ(back.message, err.message);
}

TEST(WireReaderTest, LyingStringLengthRejected) {
  WireWriter w;
  w.U32(1000);  // Claims 1000 bytes follow...
  std::string payload = w.Take();
  payload += "short";  // ...but only 5 do.
  WireReader r(payload);
  std::string s;
  EXPECT_FALSE(r.Str(&s));
}

}  // namespace
}  // namespace net
}  // namespace lyric
