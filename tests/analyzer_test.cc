#include "query/evaluator.h"
#include "query/analyzer.h"

#include <gtest/gtest.h>

#include "office/office_db.h"
#include "query/parser.h"

namespace lyric {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
  }

  Result<AnalysisReport> Analyze(const std::string& text) {
    auto q = ParseQuery(text);
    if (!q.ok()) return q.status();
    Analyzer an(&db_);
    return an.Analyze(*q);
  }

  Database db_;
};

TEST_F(AnalyzerTest, ValidQueryReportsClasses) {
  auto r = Analyze(
      "SELECT Y FROM Desk X WHERE X.drawer[Y] and Y.color = 'red'");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->var_classes.at("X"), "Desk");
  EXPECT_EQ(r->var_classes.at("Y"), "Drawer");
  EXPECT_TRUE(r->warnings.empty());
}

TEST_F(AnalyzerTest, CstVariableClassInferred) {
  auto r = Analyze("SELECT E FROM Desk X WHERE X.extent[E]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->var_classes.at("E"), "CST(2)");
}

TEST_F(AnalyzerTest, UnknownFromClass) {
  EXPECT_TRUE(Analyze("SELECT X FROM Nope X").status().IsNotFound());
}

TEST_F(AnalyzerTest, UnknownAttributeIsHigherOrderVariable) {
  // An identifier that names no attribute anywhere in the schema is a
  // higher-order attribute variable, not a typo error — the analyzer
  // surfaces it as a warning (it enumerates at evaluation time).
  auto r = Analyze("SELECT X FROM Desk X WHERE X.wheels[W]");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_FALSE(r->warnings.empty());
  EXPECT_NE(r->warnings[0].find("wheels"), std::string::npos);
}

TEST_F(AnalyzerTest, MisusedExistingAttributeIsError) {
  // 'location' exists in the schema (on Object_in_Room) but not on Desk:
  // a genuine type error, not an attribute variable.
  auto r = Analyze("SELECT X FROM Desk X WHERE X.location[L]");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());
  EXPECT_NE(r.status().message().find("location"), std::string::npos);
}

TEST_F(AnalyzerTest, UseBeforeBindDetected) {
  auto r = Analyze(
      "SELECT X FROM Desk D WHERE X.color = 'red' and D.drawer[X]");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());
  EXPECT_NE(r.status().message().find("before it is bound"),
            std::string::npos);
}

TEST_F(AnalyzerTest, BindingInsideOrDoesNotEscape) {
  auto r = Analyze(
      "SELECT D FROM Desk D "
      "WHERE (D.drawer[X] or D.drawer[Y]) and X.color = 'red'");
  EXPECT_FALSE(r.ok());
}

TEST_F(AnalyzerTest, PredicateArityCheckedStatically) {
  auto r = Analyze(
      "SELECT DSK FROM Desk DSK "
      "WHERE DSK.drawer_center[C] and SAT(C(p, q, r) and p = 0)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());
  EXPECT_NE(r.status().message().find("dimension"), std::string::npos);
}

TEST_F(AnalyzerTest, NonCstPredicateRejected) {
  auto r = Analyze(
      "SELECT D FROM Desk D WHERE D.drawer[W] and SAT(W(p, q) and p = 0)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());
}

TEST_F(AnalyzerTest, ObjectVarUsedAsNumberRejected) {
  auto r = Analyze("SELECT D FROM Desk D WHERE SAT(x <= D)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());
}

TEST_F(AnalyzerTest, VariableClassConflict) {
  // Y bound as Drawer, then compared as catalog_object (Office_Object).
  auto r = Analyze(
      "SELECT Y FROM Desk X, Object_in_Room O "
      "WHERE X.drawer[Y] and O.catalog_object[Y]");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());
}

TEST_F(AnalyzerTest, AttributeVariableWarns) {
  auto r = Analyze("SELECT X FROM Desk X WHERE X.A[C]");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_FALSE(r->warnings.empty());
  EXPECT_NE(r->warnings[0].find("higher-order"), std::string::npos);
}

TEST_F(AnalyzerTest, UnknownSymbolWarns) {
  auto r = Analyze("SELECT D FROM Desk D WHERE missing_thing.color['red']");
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->warnings.empty());
}

TEST_F(AnalyzerTest, ViewChecks) {
  EXPECT_TRUE(Analyze("CREATE VIEW V AS SUBCLASS OF Nope "
                      "SELECT X FROM Desk X")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(Analyze("CREATE VIEW V AS SUBCLASS OF Desk "
                      "SELECT a = X SIGNATURE a => Nope FROM Desk X")
                  .status()
                  .IsNotFound());
  // Existing class name as view name.
  EXPECT_TRUE(Analyze("CREATE VIEW Desk AS SUBCLASS OF Office_Object "
                      "SELECT X FROM Desk X")
                  .status()
                  .IsAlreadyExists());
  // Variable-named views are fine (Region pattern).
  EXPECT_TRUE(Analyze("CREATE VIEW X AS SUBCLASS OF Object_in_Room "
                      "SELECT Y FROM Object_in_Room Y, Region X "
                      "WHERE Y.location[U] and U |= X")
                  .ok());
}

TEST_F(AnalyzerTest, OidFunctionVarsMustBeBound) {
  auto r = Analyze(
      "SELECT X.name FROM Desk X OID FUNCTION OF X, W");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());
}

TEST_F(AnalyzerTest, EvaluatorAnalyzeFirstOption) {
  EvalOptions opts;
  opts.analyze_first = true;
  Evaluator ev(&db_, opts);
  // A schema typo fails fast with the analyzer's message.
  auto bad = ev.Execute("SELECT X FROM Desk X WHERE X.location[L]");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsTypeError());
  // Valid queries run normally.
  auto good = ev.Execute("SELECT X FROM Desk X WHERE X.color = 'red'");
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(good->size(), 1u);
}

TEST_F(AnalyzerTest, PaperQueriesAllPass) {
  const char* queries[] = {
      "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
      "SELECT CO, ((u, v) | E and D and x = 6 and y = 4) "
      "FROM Office_Object CO WHERE CO.extent[E] and CO.translation[D]",
      "SELECT DSK FROM Desk DSK WHERE DSK.color = 'red' and "
      "DSK.drawer_center[C] and C(p, q) |= p = 0",
      "SELECT MAX(w + z SUBJECT TO ((w, z) | E)) "
      "FROM Desk X WHERE X.extent[E]",
  };
  for (const char* q : queries) {
    auto r = Analyze(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status();
  }
}

}  // namespace
}  // namespace lyric
