// The kill -9 chaos harness: a REAL lyric_serverd process, under a real
// client, killed at deterministic WAL byte offsets (LYRIC_STORAGE_CRASH_AT,
// the PR-9 crash budget) in the middle of acknowledged CREATE commits —
// then restarted, and the recovered store held to the contract:
//
//   acked  ⊆  recovered  ⊆  acked ∪ {the one in-flight mutation}
//
// with the recovered database byte-identical (Serializer dump) to an
// in-process replica that ran exactly the recovered statement prefix.
// "acked" means the client read a successful response off the wire:
// commit-before-ack says every such mutation MUST survive; the single
// in-flight statement at the kill MAY have committed (the crash can land
// after the commit record but before the response) — never more.
//
// The same harness drives the graceful half: SIGTERM must answer every
// accepted query (zero in_flight_at_disconnect across all clients) and
// exit 0; a second signal, or an expired --drain-deadline-ms, forces a
// hard stop with exit 3.
//
// The short matrix (a handful of crash points) runs in every ctest
// invocation; LYRIC_CHAOS_FULL=1 sweeps a dense delta grid around every
// commit boundary (the CI nightly). On failure each round preserves its
// store + WAL debris under LYRIC_CHAOS_ARTIFACT_DIR when set.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "office/office_db.h"
#include "query/evaluator.h"
#include "storage/paged_store.h"
#include "storage/serializer.h"

#ifndef LYRIC_SERVERD_PATH
#error "build must define LYRIC_SERVERD_PATH (see tests/CMakeLists.txt)"
#endif

namespace lyric {
namespace {

using storage::PagedStore;

// -- the mutation workload -------------------------------------------------

constexpr int kViews = 3;

std::string ViewName(int i) { return "Chaos_V" + std::to_string(i); }

std::string ViewStatement(int i) {
  return "CREATE VIEW " + ViewName(i) +
         " AS SUBCLASS OF Object_in_Room SELECT O FROM Object_in_Room O "
         "WHERE O.location[L] and L(x, y) |= x <= " + std::to_string(8 + i);
}

Database MakeOfficeDb() {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  EXPECT_TRUE(ids.ok()) << ids.status();
  return db;
}

// -- process plumbing ------------------------------------------------------

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveStore(const std::string& path) {
  ::unlink(path.c_str());
  ::unlink(PagedStore::WalPathFor(path).c_str());
}

/// Seeds a fresh store with the office database and closes it cleanly:
/// the serverd under test boots on a non-empty store with an empty WAL,
/// so crash budgets map 1:1 onto its own commit appends.
void SeedStore(const std::string& path) {
  RemoveStore(path);
  auto store = PagedStore::Open({.path = path}).value();
  Database db = MakeOfficeDb();
  ASSERT_TRUE(store->ImportDatabase(db).ok());
  ASSERT_TRUE(store->Close().ok());
}

struct Serverd {
  pid_t pid = -1;
  uint16_t port = 0;
  std::string port_file;
};

/// fork/execs the real lyric_serverd on `store`, with the crash budget
/// armed in the CHILD's environment only. Returns pid -1 on failure.
Serverd LaunchServerd(const std::string& store, int64_t crash_at,
                      uint64_t drain_deadline_ms) {
  static std::atomic<int> launch_seq{0};
  Serverd sd;
  sd.port_file =
      TempPath("chaos_port." + std::to_string(launch_seq.fetch_add(1)));
  ::unlink(sd.port_file.c_str());

  pid_t pid = ::fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork failed";
    return sd;
  }
  if (pid == 0) {
    // Child. Quiet unless an artifact dir wants the logs.
    const char* artifact_dir = std::getenv("LYRIC_CHAOS_ARTIFACT_DIR");
    std::string log = artifact_dir != nullptr
                          ? std::string(artifact_dir) + "/serverd." +
                                std::to_string(::getpid()) + ".log"
                          : "/dev/null";
    int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      ::close(fd);
    }
    if (crash_at >= 0) {
      ::setenv("LYRIC_STORAGE_CRASH_AT", std::to_string(crash_at).c_str(),
               1);
    } else {
      ::unsetenv("LYRIC_STORAGE_CRASH_AT");
    }
    ::unsetenv("LYRIC_STORAGE_FULL_AT");
    ::unsetenv("LYRIC_FAULT");
    const std::string deadline = std::to_string(drain_deadline_ms);
    ::execl(LYRIC_SERVERD_PATH, "lyric_serverd", "--store", store.c_str(),
            "--port", "0", "--port-file", sd.port_file.c_str(),
            "--drain-deadline-ms", deadline.c_str(), "--exec-threads", "2",
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  sd.pid = pid;
  return sd;
}

/// Polls for the port file (the serverd writes it atomically once the
/// listener is live). False when the child exits first or time runs out.
bool AwaitReady(Serverd* sd, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(sd->port_file);
    int port = 0;
    if (in && (in >> port) && port > 0) {
      sd->port = static_cast<uint16_t>(port);
      return true;
    }
    int status = 0;
    if (::waitpid(sd->pid, &status, WNOHANG) == sd->pid) {
      ADD_FAILURE() << "serverd exited before becoming ready, status="
                    << status;
      sd->pid = -1;
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

/// Reaps the child; -1 on timeout (after SIGKILL), else the exit code
/// (or 128+signal when signalled).
int WaitExit(Serverd* sd, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int status = 0;
    pid_t r = ::waitpid(sd->pid, &status, WNOHANG);
    if (r == sd->pid) {
      sd->pid = -1;
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
      return -2;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(sd->pid, SIGKILL);
      ::waitpid(sd->pid, &status, 0);
      sd->pid = -1;
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void KillHard(Serverd* sd) {
  if (sd->pid > 0) {
    ::kill(sd->pid, SIGKILL);
    int status = 0;
    ::waitpid(sd->pid, &status, 0);
    sd->pid = -1;
  }
}

int64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_size);
}

/// Copies the store + WAL into LYRIC_CHAOS_ARTIFACT_DIR (when set) so a
/// failed round leaves its debris for post-mortem.
void PreserveDebris(const std::string& store, const std::string& tag) {
  const char* dir = std::getenv("LYRIC_CHAOS_ARTIFACT_DIR");
  if (dir == nullptr) return;
  ::mkdir(dir, 0755);
  for (const std::string& src : {store, PagedStore::WalPathFor(store)}) {
    std::ifstream in(src, std::ios::binary);
    if (!in) continue;
    std::string base = src.substr(src.find_last_of('/') + 1);
    std::ofstream out(std::string(dir) + "/" + tag + "." + base,
                      std::ios::binary);
    out << in.rdbuf();
  }
}

net::ClientOptions PlainClient(uint16_t port) {
  net::ClientOptions opts;
  opts.port = port;
  opts.threads = 1;
  return opts;
}

/// The serializer dump of an office database that ran the first
/// `n_views` chaos statements — the byte-identity oracle.
std::string ReplicaDump(int n_views) {
  Database replica = MakeOfficeDb();
  Evaluator ev(&replica, EvalOptions{});
  for (int i = 0; i < n_views; ++i) {
    auto res = ev.Execute(ViewStatement(i));
    EXPECT_TRUE(res.ok()) << res.status();
  }
  auto dump = Serializer::DumpDatabase(replica);
  EXPECT_TRUE(dump.ok()) << dump.status();
  return dump.ok() ? *dump : std::string();
}

// -- the crash matrix ------------------------------------------------------

/// One crash round: seed, serve, kill at `crash_at` WAL-append bytes,
/// verify the recovery contract, then prove the recovered store serves.
/// Returns false (with gtest failures recorded) when the round failed.
bool RunCrashRound(const std::string& store, int64_t crash_at,
                   const std::string& tag) {
  SeedStore(store);
  if (::testing::Test::HasFatalFailure()) return false;
  Serverd sd = LaunchServerd(store, crash_at, /*drain_deadline_ms=*/5000);
  if (sd.pid < 0 || !AwaitReady(&sd)) {
    ADD_FAILURE() << tag << ": serverd did not become ready";
    KillHard(&sd);
    return false;
  }

  // Drive CREATEs until the crash cuts the connection. acked = the
  // prefix whose responses arrived; the first unacked one (if any) is
  // the single in-flight statement.
  int acked = 0;
  bool died = false;
  {
    net::Client client(PlainClient(sd.port));
    for (int i = 0; i < kViews; ++i) {
      Result<net::QueryResponse> resp = client.Execute(ViewStatement(i));
      if (!resp.ok()) {
        died = true;  // transport cut: the kill landed during this one
        break;
      }
      if (!resp->status.ok()) {
        ADD_FAILURE() << tag << ": CREATE " << i
                      << " failed in-band: " << resp->status.ToString();
        KillHard(&sd);
        return false;
      }
      acked = i + 1;
    }
  }

  const int exit_code = WaitExit(&sd);
  if (exit_code != 137) {
    ADD_FAILURE() << tag << ": expected exit 137 (simulated kill -9), got "
                  << exit_code << " (acked=" << acked << ", died=" << died
                  << ")";
    return false;
  }

  // Recovery: reopen in process and hold the contract.
  auto reopened = PagedStore::Open({.path = store});
  if (!reopened.ok()) {
    ADD_FAILURE() << tag << ": recovery failed: "
                  << reopened.status().ToString();
    return false;
  }
  Database recovered;
  Status exported = (*reopened)->ExportToDatabase(&recovered);
  if (!exported.ok()) {
    ADD_FAILURE() << tag << ": export failed: " << exported.ToString();
    return false;
  }

  // Views commit in statement order, so the recovered set must be a
  // prefix of the issued sequence.
  int n_recovered = 0;
  for (int i = 0; i < kViews; ++i) {
    const bool has = recovered.schema().HasClass(ViewName(i));
    if (has && n_recovered != i) {
      ADD_FAILURE() << tag << ": recovered view set is not a prefix: has "
                    << ViewName(i) << " but not " << ViewName(n_recovered);
      return false;
    }
    if (has) n_recovered = i + 1;
  }

  EXPECT_GE(n_recovered, acked)
      << tag << ": an ACKNOWLEDGED commit was lost (commit-before-ack "
      << "violated)";
  EXPECT_LE(n_recovered, acked + 1)
      << tag << ": more than the one in-flight statement materialized";
  if (n_recovered < acked || n_recovered > acked + 1) return false;

  // Byte-identity: the recovered database must dump exactly like a
  // replica that ran the recovered prefix.
  auto dump = Serializer::DumpDatabase(recovered);
  EXPECT_TRUE(dump.ok()) << tag << ": " << dump.status().ToString();
  if (!dump.ok()) return false;
  const std::string want = ReplicaDump(n_recovered);
  EXPECT_EQ(*dump, want) << tag << ": recovered dump diverged";
  if (*dump != want) return false;
  EXPECT_TRUE((*reopened)->Close().ok());

  // And the recovered store SERVES: restart serverd on it, read every
  // recovered view over the wire, then drain out cleanly.
  Serverd sd2 = LaunchServerd(store, /*crash_at=*/-1,
                              /*drain_deadline_ms=*/5000);
  if (sd2.pid < 0 || !AwaitReady(&sd2)) {
    ADD_FAILURE() << tag << ": restart did not become ready";
    KillHard(&sd2);
    return false;
  }
  {
    net::Client client(PlainClient(sd2.port));
    net::HealthInfo info;
    Status hs = client.Health(&info);
    EXPECT_TRUE(hs.ok()) << tag << ": " << hs.ToString();
    if (hs.ok()) {
      EXPECT_TRUE(info.store_backed);
      EXPECT_EQ(info.state, net::HealthState::kServing);
    }
    for (int i = 0; i < n_recovered; ++i) {
      Result<net::QueryResponse> resp =
          client.Execute("SELECT V FROM " + ViewName(i) + " V");
      EXPECT_TRUE(resp.ok() && resp->status.ok())
          << tag << ": recovered view " << i << " does not serve";
    }
  }
  ::kill(sd2.pid, SIGTERM);
  EXPECT_EQ(WaitExit(&sd2), 0) << tag << ": restart did not drain cleanly";
  return !::testing::Test::HasFailure();
}

TEST(ServerChaos, KillNineAtCommitBoundariesRecoversAckedPrefix) {
  const std::string store = TempPath("chaos_crash.lyricpg");

  // Reference round: same seed, same statements, no crash. The WAL file
  // size after each acknowledged CREATE marks that commit's end offset;
  // subtracting the size at boot (the replayed-then-reset WAL header)
  // turns offsets into this-process crash budgets.
  SeedStore(store);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  Serverd ref = LaunchServerd(store, /*crash_at=*/-1,
                              /*drain_deadline_ms=*/5000);
  ASSERT_GE(ref.pid, 0);
  ASSERT_TRUE(AwaitReady(&ref));
  const std::string wal = PagedStore::WalPathFor(store);
  const int64_t base = FileSize(wal);
  ASSERT_GT(base, 0);
  std::vector<int64_t> commit_end(kViews);
  {
    net::Client client(PlainClient(ref.port));
    for (int i = 0; i < kViews; ++i) {
      Result<net::QueryResponse> resp = client.Execute(ViewStatement(i));
      ASSERT_TRUE(resp.ok()) << resp.status();
      ASSERT_TRUE(resp->status.ok()) << resp->status;
      commit_end[i] = FileSize(wal) - base;
      ASSERT_GT(commit_end[i], 0);
    }
  }
  ::kill(ref.pid, SIGTERM);
  ASSERT_EQ(WaitExit(&ref), 0) << "reference round did not drain cleanly";

  // Crash points: exactly at each commit boundary (the record is whole,
  // the response may not have left) and just inside it (torn tail). The
  // full sweep adds a dense delta grid per boundary.
  std::vector<int64_t> crash_points;
  const bool full = std::getenv("LYRIC_CHAOS_FULL") != nullptr;
  for (int i = 0; i < kViews; ++i) {
    // A budget equal to the LAST commit's end never fires (budgets
    // trip on the append that would cross them, and nothing follows),
    // so the exact-boundary point exists only for earlier commits.
    if (i + 1 < kViews) crash_points.push_back(commit_end[i]);
    crash_points.push_back(commit_end[i] - 1);
    if (full) {
      for (int64_t delta : {2, 4, 8, 16, 32, 64, 128}) {
        if (commit_end[i] - delta > 0) {
          crash_points.push_back(commit_end[i] - delta);
        }
      }
    }
  }

  int rounds_failed = 0;
  for (int64_t crash_at : crash_points) {
    const std::string tag = "crash_at_" + std::to_string(crash_at);
    if (!RunCrashRound(store, crash_at, tag)) {
      PreserveDebris(store, tag);
      ++rounds_failed;
    }
  }
  EXPECT_EQ(rounds_failed, 0)
      << rounds_failed << "/" << crash_points.size()
      << " crash rounds failed (debris preserved when "
      << "LYRIC_CHAOS_ARTIFACT_DIR is set)";
  RemoveStore(store);
}

// -- graceful drain, process level -----------------------------------------

TEST(ServerChaos, SigtermDrainDropsNoAcceptedQuery) {
  const std::string store = TempPath("chaos_drain.lyricpg");
  SeedStore(store);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  Serverd sd = LaunchServerd(store, /*crash_at=*/-1,
                             /*drain_deadline_ms=*/10000);
  ASSERT_GE(sd.pid, 0);
  ASSERT_TRUE(AwaitReady(&sd));

  constexpr int kClients = 3;
  std::atomic<uint64_t> ok_responses{0};
  std::atomic<uint64_t> dropped_in_flight{0};
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client(PlainClient(sd.port));
      for (int round = 0; round < 100000; ++round) {
        Result<net::QueryResponse> resp =
            client.Execute("SELECT O FROM Object_in_Room O");
        if (!resp.ok()) {
          // A transport failure = an accepted query whose response was
          // never delivered. Drain forbids exactly this.
          failures[c] = "transport: " + resp.status().ToString();
          dropped_in_flight += client.stats().in_flight_at_disconnect;
          return;
        }
        if (resp->status.IsUnavailable()) return;  // typed shed: drained
        if (!resp->status.ok()) {
          failures[c] = "eval: " + resp->status.ToString();
          return;
        }
        ++ok_responses;
      }
    });
  }

  // Let the load establish, then SIGTERM mid-flight.
  while (ok_responses.load() < 6) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::kill(sd.pid, SIGTERM);
  for (std::thread& t : threads) t.join();

  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], "");
  EXPECT_EQ(dropped_in_flight.load(), 0u);
  EXPECT_EQ(WaitExit(&sd), 0) << "drain with well-behaved clients must "
                              << "exit 0";
  if (::testing::Test::HasFailure()) PreserveDebris(store, "sigterm_drain");
  RemoveStore(store);
}

TEST(ServerChaos, SecondSignalForcesHardStop) {
  const std::string store = TempPath("chaos_force.lyricpg");
  SeedStore(store);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  Serverd sd = LaunchServerd(store, /*crash_at=*/-1,
                             /*drain_deadline_ms=*/60000);
  ASSERT_GE(sd.pid, 0);
  ASSERT_TRUE(AwaitReady(&sd));

  // An idle but CONNECTED client keeps the drain lingering (sessions
  // must disconnect before a clean exit), so the second signal is what
  // ends it — exit 3, the forced-stop code.
  net::Client client(PlainClient(sd.port));
  ASSERT_TRUE(client.Ping().ok());
  ::kill(sd.pid, SIGTERM);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ::kill(sd.pid, SIGTERM);
  EXPECT_EQ(WaitExit(&sd), 3);

  // Forced or not, acknowledged state survives: the store reopens.
  auto reopened = PagedStore::Open({.path = store});
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_GT((*reopened)->RecordCount(), 0u);
  EXPECT_TRUE((*reopened)->Close().ok());
  RemoveStore(store);
}

TEST(ServerChaos, DrainDeadlineForcesHardStop) {
  const std::string store = TempPath("chaos_deadline.lyricpg");
  SeedStore(store);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  Serverd sd = LaunchServerd(store, /*crash_at=*/-1,
                             /*drain_deadline_ms=*/300);
  ASSERT_GE(sd.pid, 0);
  ASSERT_TRUE(AwaitReady(&sd));

  // The lingering session never goes away; the deadline must.
  net::Client client(PlainClient(sd.port));
  ASSERT_TRUE(client.Ping().ok());
  ::kill(sd.pid, SIGTERM);
  EXPECT_EQ(WaitExit(&sd), 3);
  RemoveStore(store);
}

}  // namespace
}  // namespace lyric
