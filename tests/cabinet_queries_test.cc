// Set-valued attributes end to end: a File_Cabinet with several drawers,
// each with its own sliding range (the drawer_center* / drawer* pair of
// Figure 1).

#include <gtest/gtest.h>

#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

class CabinetQueriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;

    cab_ = Oid::Symbol("cab");
    ASSERT_TRUE(db_.Insert(cab_, "File_Cabinet").ok());
    ASSERT_TRUE(db_.SetAttribute(cab_, "name",
                                 Value::Scalar(Oid::Str("cabinet"))).ok());
    ASSERT_TRUE(db_.SetAttribute(cab_, "color",
                                 Value::Scalar(Oid::Str("gray"))).ok());
    ASSERT_TRUE(
        db_.SetCstAttribute(cab_, "extent", office::BoxExtent(1, 3)).ok());
    ASSERT_TRUE(db_.SetCstAttribute(cab_, "translation",
                                    office::StandardTranslation()).ok());
    // Two drawers with distinct colors.
    top_ = Oid::Symbol("cab_top");
    bottom_ = Oid::Symbol("cab_bottom");
    int64_t i = 0;
    for (const Oid& d : {top_, bottom_}) {
      ASSERT_TRUE(db_.Insert(d, "Drawer").ok());
      ASSERT_TRUE(db_.SetAttribute(
                        d, "color",
                        Value::Scalar(Oid::Str(i == 0 ? "red" : "blue")))
                      .ok());
      ASSERT_TRUE(
          db_.SetCstAttribute(d, "extent", office::BoxExtent(1, 1)).ok());
      ASSERT_TRUE(db_.SetCstAttribute(d, "translation",
                                      office::StandardTranslation()).ok());
      ++i;
    }
    ASSERT_TRUE(
        db_.SetAttribute(cab_, "drawer", Value::Set({top_, bottom_})).ok());
    // Two sliding ranges, one per drawer position.
    VarId p1 = Variable::Intern("p1");
    VarId q1 = Variable::Intern("q1");
    auto range = [&](int64_t qlo, int64_t qhi) {
      Conjunction c;
      c.Add(LinearConstraint::Eq(LinearExpr::Var(p1),
                                 LinearExpr::Constant(Rational(0))));
      c.Add(LinearConstraint::Ge(LinearExpr::Var(q1),
                                 LinearExpr::Constant(Rational(qlo))));
      c.Add(LinearConstraint::Le(LinearExpr::Var(q1),
                                 LinearExpr::Constant(Rational(qhi))));
      return CstObject::FromConjunction({p1, q1}, c).value();
    };
    Oid r1 = db_.InternCst(range(1, 2)).value();
    Oid r2 = db_.InternCst(range(-2, -1)).value();
    ASSERT_TRUE(
        db_.SetAttribute(cab_, "drawer_center", Value::Set({r1, r2})).ok());
    ASSERT_TRUE(db_.CheckIntegrity().ok());
  }

  ResultSet Run(const std::string& text) {
    Evaluator ev(&db_);
    auto r = ev.Execute(text);
    EXPECT_TRUE(r.ok()) << text << "\n -> " << r.status();
    return r.ok() ? *r : ResultSet();
  }

  Database db_;
  office::OfficeIds ids_;
  Oid cab_, top_, bottom_;
};

TEST_F(CabinetQueriesTest, SetValuedPathEnumerates) {
  ResultSet r = Run("SELECT D FROM File_Cabinet F WHERE F.drawer[D]");
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(CabinetQueriesTest, SelectorFiltersWithinSet) {
  ResultSet red = Run(
      "SELECT D FROM File_Cabinet F WHERE F.drawer[D].color['red']");
  ASSERT_EQ(red.size(), 1u);
  EXPECT_EQ(red.rows()[0][0], top_);
}

TEST_F(CabinetQueriesTest, SetValuedCstAttributeEnumerates) {
  // Each sliding range is a separate binding of C.
  ResultSet r = Run(
      "SELECT C FROM File_Cabinet F WHERE F.drawer_center[C]");
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(CabinetQueriesTest, FormulaOverChosenRange) {
  // Ranges whose whole travel keeps q1 positive: only the top drawer's.
  ResultSet r = Run(
      "SELECT C FROM File_Cabinet F "
      "WHERE F.drawer_center[C] and C(a, b) |= b >= 0");
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(CabinetQueriesTest, SetValuedPredicateWithoutSelectorRejected) {
  // Using the set-valued path directly as a CST predicate is ambiguous.
  Evaluator ev(&db_);
  auto r = ev.Execute(
      "SELECT F FROM File_Cabinet F "
      "WHERE SAT(F.drawer_center(a, b) and a = 0)");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError()) << r.status();
}

TEST_F(CabinetQueriesTest, CountsViaComparison) {
  // CONTAINS on path tail sets: the cabinet's drawers contain the top
  // drawer's singleton set.
  ResultSet r = Run(
      "SELECT F FROM File_Cabinet F, Desk X "
      "WHERE F.drawer contains X.drawer");
  // Desk's drawer (std_drawer) is not among cab's drawers.
  EXPECT_EQ(r.size(), 0u);
  ResultSet r2 = Run(
      "SELECT F FROM File_Cabinet F WHERE F.drawer contains F.drawer");
  EXPECT_EQ(r2.size(), 1u);
}

TEST_F(CabinetQueriesTest, InterfaceRenamingThroughSetAttribute) {
  // drawer : (p1, q1) renames Drawer (x, y); the drawer's translation dims
  // x, y thus carry the cabinet's p1, q1 identities, linking them to the
  // drawer_center use in one formula: with b (= q1 = y1) in [1, 2], the
  // drawer's extent z in [-1, 1] lands v = y1 + z in [0, 3].
  ResultSet r = Run(
      "SELECT F, ((v) | DD(w1, z1, x1, y1, u1, v1) and DE(w1, z1) and "
      "C(a, b) and v = v1) "
      "FROM File_Cabinet F "
      "WHERE F.drawer_center[C] and F.drawer[D] and "
      "D.translation[DD] and D.extent[DE] and C(a, b) |= b >= 1");
  // Only the top range entails b >= 1; two drawers share it -> 2 rows of
  // (F, cst); the cst column differs per drawer? No - both drawers have
  // identical extent/translation, so rows collapse by dedup.
  ASSERT_GE(r.size(), 1u);
  CstObject v_range = db_.GetCst(r.rows()[0][1]).value();
  EXPECT_TRUE(v_range.Contains({Rational(0)}).value());
  EXPECT_TRUE(v_range.Contains({Rational(3)}).value());
  EXPECT_FALSE(v_range.Contains({Rational(4)}).value());
}

}  // namespace
}  // namespace lyric
