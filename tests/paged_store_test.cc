#include "storage/paged_store.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "office/office_db.h"
#include "query/evaluator.h"
#include "storage/serializer.h"

namespace lyric {
namespace storage {
namespace {

std::string FreshPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  ::unlink(path.c_str());
  ::unlink(PagedStore::WalPathFor(path).c_str());
  return path;
}

std::unique_ptr<PagedStore> MustOpen(const std::string& path,
                                     size_t pool_pages = 64) {
  StoreOptions opts;
  opts.path = path;
  opts.pool_pages = pool_pages;
  auto store = PagedStore::Open(opts);
  EXPECT_TRUE(store.ok()) << store.status();
  return std::move(*store);
}

TEST(PagedStoreTest, PutGetDeleteRoundTrip) {
  std::string path = FreshPath("ps_basic.lyricpg");
  auto store = MustOpen(path);
  ASSERT_TRUE(store->Put("alpha", "1").ok());
  ASSERT_TRUE(store->Put("beta", "2").ok());
  EXPECT_TRUE(store->HasUncommitted());
  EXPECT_EQ(store->Get("alpha").value(), "1");
  EXPECT_EQ(store->Get("beta").value(), "2");
  EXPECT_TRUE(store->Get("gamma").status().IsNotFound());
  ASSERT_TRUE(store->Commit().ok());
  EXPECT_FALSE(store->HasUncommitted());
  // Overwrite and delete.
  ASSERT_TRUE(store->Put("alpha", "one").ok());
  EXPECT_EQ(store->Get("alpha").value(), "one");
  ASSERT_TRUE(store->Delete("beta").ok());
  EXPECT_TRUE(store->Get("beta").status().IsNotFound());
  EXPECT_EQ(store->RecordCount(), 1u);
  ASSERT_TRUE(store->Close().ok());
}

TEST(PagedStoreTest, PersistsAcrossReopen) {
  std::string path = FreshPath("ps_reopen.lyricpg");
  {
    auto store = MustOpen(path);
    for (int i = 0; i < 100; ++i) {
      std::string k = "key" + std::to_string(i);
      ASSERT_TRUE(store->Put(k, "value-" + std::to_string(i * i)).ok());
    }
    ASSERT_TRUE(store->Close().ok());
  }
  {
    auto store = MustOpen(path);
    EXPECT_EQ(store->RecordCount(), 100u);
    for (int i = 0; i < 100; ++i) {
      std::string k = "key" + std::to_string(i);
      EXPECT_EQ(store->Get(k).value(), "value-" + std::to_string(i * i));
    }
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST(PagedStoreTest, UncommittedMutationsDoNotSurviveReopen) {
  std::string path = FreshPath("ps_uncommitted.lyricpg");
  {
    auto store = MustOpen(path);
    ASSERT_TRUE(store->Put("durable", "yes").ok());
    ASSERT_TRUE(store->Commit().ok());
    ASSERT_TRUE(store->Put("volatile", "no").ok());
    // No Commit, no Close: simulate the process dying. Release the
    // store without checkpointing by leaking the destructor's close
    // into a poisoned-free path — destructor checkpoints, so instead
    // verify via an explicit abandoned copy of the files.
    ASSERT_TRUE(store->Checkpoint().ok());  // persist "volatile" too
    ASSERT_TRUE(store->Close().ok());
  }
  // The real no-commit crash path is exercised by storage_recovery_test
  // via LYRIC_STORAGE_CRASH_AT; here just confirm both keys landed.
  auto store = MustOpen(path);
  EXPECT_EQ(store->Get("durable").value(), "yes");
  EXPECT_EQ(store->Get("volatile").value(), "no");
  ASSERT_TRUE(store->Close().ok());
}

TEST(PagedStoreTest, LargeValuesSpillToOverflowPages) {
  std::string path = FreshPath("ps_overflow.lyricpg");
  std::string big(50'000, 'x');
  for (size_t i = 0; i < big.size(); ++i) big[i] = 'a' + (i * 31 % 26);
  {
    auto store = MustOpen(path, 16);  // tiny pool forces eviction too
    ASSERT_TRUE(store->Put("big", big).ok());
    ASSERT_TRUE(store->Put("small", "s").ok());
    ASSERT_TRUE(store->Commit().ok());
    EXPECT_EQ(store->Get("big").value(), big);
    ASSERT_TRUE(store->Close().ok());
  }
  auto store = MustOpen(path, 16);
  EXPECT_EQ(store->Get("big").value(), big);
  EXPECT_EQ(store->Get("small").value(), "s");
  // Deleting the big value frees its overflow chain; the pages get
  // reused by later inserts rather than growing the file.
  ASSERT_TRUE(store->Delete("big").ok());
  ASSERT_TRUE(store->Put("big2", big).ok());
  ASSERT_TRUE(store->Commit().ok());
  EXPECT_EQ(store->Get("big2").value(), big);
  ASSERT_TRUE(store->Close().ok());
}

TEST(PagedStoreTest, ManyKeysSplitAndScanInOrder) {
  std::string path = FreshPath("ps_split.lyricpg");
  auto store = MustOpen(path, 32);
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back("k" + std::to_string(i * 7919 % 100000));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<std::string> shuffled = keys;
  std::mt19937 rng(42);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  for (const auto& k : shuffled) {
    ASSERT_TRUE(store->Put(k, "v:" + k).ok());
  }
  ASSERT_TRUE(store->Commit().ok());
  EXPECT_EQ(store->RecordCount(), keys.size());
  std::vector<std::string> seen;
  ASSERT_TRUE(store
                  ->Scan("",
                         [&](std::string_view k, std::string_view v) {
                           EXPECT_EQ(v, "v:" + std::string(k));
                           seen.emplace_back(k);
                           return Result<bool>(true);
                         })
                  .ok());
  EXPECT_EQ(seen, keys);  // B-tree scan is total-ordered
  // Bounded scan starts at the lower bound.
  std::string lower = keys[keys.size() / 2];
  std::vector<std::string> tail;
  ASSERT_TRUE(store
                  ->Scan(lower,
                         [&](std::string_view k, std::string_view) {
                           tail.emplace_back(k);
                           return Result<bool>(tail.size() < 5);
                         })
                  .ok());
  ASSERT_GE(tail.size(), 1u);
  EXPECT_EQ(tail[0], lower);
  ASSERT_TRUE(store->Close().ok());
}

TEST(PagedStoreTest, RejectsOversizedAndEmptyKeys) {
  std::string path = FreshPath("ps_badkeys.lyricpg");
  auto store = MustOpen(path);
  EXPECT_TRUE(store->Put("", "v").IsInvalidArgument());
  std::string huge_key(kMaxKeyLen + 1, 'k');
  EXPECT_TRUE(store->Put(huge_key, "v").IsInvalidArgument());
  // Validation failures must NOT poison the store.
  EXPECT_TRUE(store->Put("fine", "v").ok());
  ASSERT_TRUE(store->Close().ok());
}

TEST(PagedStoreTest, OpenRejectsNonStoreFile) {
  std::string path = FreshPath("ps_notastore.lyricpg");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::string junk(8192, 'Z');
    fwrite(junk.data(), 1, junk.size(), f);
    fclose(f);
  }
  StoreOptions opts;
  opts.path = path;
  auto store = PagedStore::Open(opts);
  EXPECT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsDataLoss()) << store.status();
}

TEST(PagedStoreTest, ImportExportRoundTripsOfficeDatabase) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  ASSERT_TRUE(ids.ok()) << ids.status();

  std::string path = FreshPath("ps_office.lyricpg");
  {
    auto store = MustOpen(path);
    ASSERT_TRUE(store->ImportDatabase(db).ok());
    ASSERT_TRUE(store->Close().ok());
  }
  auto store = MustOpen(path);
  Database loaded;
  ASSERT_TRUE(store->ExportToDatabase(&loaded).ok());
  ASSERT_TRUE(store->Close().ok());

  EXPECT_EQ(loaded.schema().ClassNames(), db.schema().ClassNames());
  EXPECT_EQ(loaded.ObjectCount(), db.ObjectCount());
  EXPECT_TRUE(loaded.CheckIntegrity().ok());
  for (const auto& [oid, rec] : db.objects()) {
    for (const auto& [attr, value] : rec.attrs) {
      EXPECT_EQ(loaded.GetAttribute(oid, attr).value(), value)
          << oid << "." << attr;
    }
  }
  // The exported database answers the paper's Q2 exactly as the
  // original does.
  Evaluator ev(&loaded);
  ResultSet r = ev.Execute(
                      "SELECT CO, ((u, v) | E and D and x = 6 and y = 4) "
                      "FROM Office_Object CO "
                      "WHERE CO.extent[E] and CO.translation[D]")
                    .value();
  ASSERT_EQ(r.size(), 1u);
  CstObject answer = loaded.GetCst(r.rows()[0][1]).value();
  EXPECT_TRUE(answer.Contains({Rational(2), Rational(2)}).value());
  EXPECT_FALSE(answer.Contains({Rational(1), Rational(2)}).value());
}

TEST(PagedStoreTest, ExportedDumpMatchesSerializerByteForByte) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  ASSERT_TRUE(ids.ok()) << ids.status();
  std::string direct = Serializer::DumpDatabase(db).value();

  std::string path = FreshPath("ps_bytes.lyricpg");
  auto store = MustOpen(path);
  ASSERT_TRUE(store->ImportDatabase(db).ok());
  Database loaded;
  ASSERT_TRUE(store->ExportToDatabase(&loaded).ok());
  ASSERT_TRUE(store->Close().ok());

  // Dumping the export reproduces the original dump byte-identically:
  // proof the store loses nothing the serializer can express.
  std::string redumped = Serializer::DumpDatabase(loaded).value();
  EXPECT_EQ(redumped, direct);
}

TEST(PagedStoreTest, ImportRequiresEmptyStore) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  ASSERT_TRUE(ids.ok()) << ids.status();
  std::string path = FreshPath("ps_nonempty.lyricpg");
  auto store = MustOpen(path);
  ASSERT_TRUE(store->Put("occupied", "1").ok());
  ASSERT_TRUE(store->Commit().ok());
  EXPECT_TRUE(store->ImportDatabase(db).IsInvalidArgument());
  ASSERT_TRUE(store->Close().ok());
}

TEST(PagedStoreTest, CheckpointTruncatesWal) {
  std::string path = FreshPath("ps_ckpt.lyricpg");
  auto store = MustOpen(path);
  std::string filler(2000, 'f');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Put("k" + std::to_string(i), filler).ok());
  }
  ASSERT_TRUE(store->Commit().ok());
  struct stat st{};
  ASSERT_EQ(::stat(PagedStore::WalPathFor(path).c_str(), &st), 0);
  EXPECT_GT(st.st_size, static_cast<off_t>(Wal::kHeaderSize));
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_EQ(::stat(PagedStore::WalPathFor(path).c_str(), &st), 0);
  EXPECT_EQ(st.st_size, static_cast<off_t>(Wal::kHeaderSize));
  // Data survives the truncation, of course.
  EXPECT_EQ(store->Get("k49").value(), filler);
  ASSERT_TRUE(store->Close().ok());
}

TEST(PagedStoreTest, FreshOpenReportsNoRecovery) {
  std::string path = FreshPath("ps_fresh.lyricpg");
  auto store = MustOpen(path);
  EXPECT_EQ(store->recovery().committed_txns, 0u);
  EXPECT_EQ(store->recovery().images_applied, 0u);
  EXPECT_EQ(store->recovery().torn_tail_bytes, 0u);
  ASSERT_TRUE(store->Close().ok());
}

}  // namespace
}  // namespace storage
}  // namespace lyric
