#include "query/parser.h"

#include <gtest/gtest.h>

namespace lyric {
namespace {

using ast::Formula;
using ast::Query;
using ast::SelectItem;
using ast::WhereExpr;

TEST(ParserTest, MinimalQuery) {
  Query q = ParseQuery("SELECT Y FROM Desk X WHERE X.drawer[Y]").value();
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].kind, SelectItem::Kind::kPath);
  EXPECT_EQ(q.select[0].path.ToString(), "Y");
  ASSERT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.from[0].class_name, "Desk");
  EXPECT_EQ(q.from[0].var, "X");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind, WhereExpr::Kind::kPathPred);
  EXPECT_EQ(q.where->path.ToString(), "X.drawer[Y]");
}

TEST(ParserTest, PathWithLiteralSelector) {
  Query q =
      ParseQuery("SELECT Y FROM Desk X WHERE X.drawer[Y].color['red']")
          .value();
  const auto& steps = q.where->path.steps;
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[1].attribute, "color");
  ASSERT_TRUE(steps[1].selector.has_value());
  EXPECT_EQ(steps[1].selector->kind, ast::NameOrLiteral::Kind::kLiteral);
  EXPECT_EQ(steps[1].selector->literal, Oid::Str("red"));
}

TEST(ParserTest, ComparisonInWhere) {
  Query q =
      ParseQuery("SELECT X FROM Desk X WHERE X.color = 'red'").value();
  EXPECT_EQ(q.where->kind, WhereExpr::Kind::kCompare);
  EXPECT_EQ(q.where->cmp_op, "=");
  EXPECT_EQ(q.where->cmp_lhs.kind, WhereExpr::Operand::Kind::kPath);
  EXPECT_EQ(q.where->cmp_rhs.kind, WhereExpr::Operand::Kind::kLiteral);
}

TEST(ParserTest, BooleanStructure) {
  Query q = ParseQuery(
                "SELECT X FROM Desk X "
                "WHERE X.a and (X.b or not X.c)")
                .value();
  ASSERT_EQ(q.where->kind, WhereExpr::Kind::kAnd);
  ASSERT_EQ(q.where->children.size(), 2u);
  EXPECT_EQ(q.where->children[1]->kind, WhereExpr::Kind::kOr);
  EXPECT_EQ(q.where->children[1]->children[1]->kind, WhereExpr::Kind::kNot);
}

TEST(ParserTest, ProjectionSelectItem) {
  Query q = ParseQuery(
                "SELECT CO, ((u, v) | E and D and x = 6 and y = 4) "
                "FROM Office_Object CO "
                "WHERE CO.extent[E] and CO.translation[D]")
                .value();
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[1].kind, SelectItem::Kind::kFormulaObject);
  const Formula& f = *q.select[1].formula;
  EXPECT_EQ(f.kind, Formula::Kind::kProject);
  EXPECT_EQ(f.proj_vars, (std::vector<std::string>{"u", "v"}));
  EXPECT_EQ(f.children[0]->kind, Formula::Kind::kAnd);
}

TEST(ParserTest, PredWithExplicitArgs) {
  Formula f = ParseFormula("E(w, z) and D(w, z, x, y, u, v)").value();
  ASSERT_EQ(f.kind, Formula::Kind::kAnd);
  const Formula& e = *f.children[0];
  EXPECT_EQ(e.kind, Formula::Kind::kPred);
  EXPECT_EQ(e.pred->ToString(), "E");
  ASSERT_TRUE(e.pred_args.has_value());
  EXPECT_EQ(*e.pred_args, (std::vector<std::string>{"w", "z"}));
}

TEST(ParserTest, PredViaPathInFormula) {
  Formula f = ParseFormula("DSK.drawer.extent(w, z) and z >= w").value();
  ASSERT_EQ(f.kind, Formula::Kind::kAnd);
  EXPECT_EQ(f.children[0]->kind, Formula::Kind::kPred);
  EXPECT_EQ(f.children[0]->pred->ToString(), "DSK.drawer.extent");
}

TEST(ParserTest, ChainedComparisons) {
  Formula f = ParseFormula("0 <= x <= 10").value();
  ASSERT_EQ(f.kind, Formula::Kind::kAnd);
  ASSERT_EQ(f.children.size(), 2u);
  EXPECT_EQ(f.children[0]->relop, "<=");
  EXPECT_EQ(f.children[1]->relop, "<=");
}

TEST(ParserTest, ParenthesizedArithmeticAtom) {
  Formula f = ParseFormula("(x + y) <= 3").value();
  EXPECT_EQ(f.kind, Formula::Kind::kAtom);
}

TEST(ParserTest, NestedProjectionInFormula) {
  Formula f = ParseFormula("((x) | x <= 1 and y = x)").value();
  EXPECT_EQ(f.kind, Formula::Kind::kProject);
  EXPECT_EQ(f.proj_vars, std::vector<std::string>{"x"});
}

TEST(ParserTest, SatPredicate) {
  Query q = ParseQuery(
                "SELECT O FROM Object_in_Room O "
                "WHERE O.location[L] and SAT(L(x, y) and 0 <= x and x <= 10)")
                .value();
  ASSERT_EQ(q.where->kind, WhereExpr::Kind::kAnd);
  EXPECT_EQ(q.where->children[1]->kind, WhereExpr::Kind::kFormulaSat);
}

TEST(ParserTest, EntailmentPredicate) {
  Query q = ParseQuery(
                "SELECT DSK FROM Desk DSK "
                "WHERE DSK.drawer_center[C] and C(p, q) |= p = 0")
                .value();
  ASSERT_EQ(q.where->kind, WhereExpr::Kind::kAnd);
  const WhereExpr& ent = *q.where->children[1];
  EXPECT_EQ(ent.kind, WhereExpr::Kind::kEntails);
  EXPECT_EQ(ent.ent_lhs->kind, Formula::Kind::kPred);
  EXPECT_EQ(ent.ent_rhs->kind, Formula::Kind::kAtom);
}

TEST(ParserTest, EntailmentBetweenVariables) {
  // The Region view test: U |= X.
  Query q = ParseQuery(
                "SELECT Y FROM Object_in_Room Y, Region X "
                "WHERE Y.location[U] and U |= X")
                .value();
  const WhereExpr& ent = *q.where->children[1];
  EXPECT_EQ(ent.kind, WhereExpr::Kind::kEntails);
  EXPECT_EQ(ent.ent_lhs->pred->ToString(), "U");
  EXPECT_EQ(ent.ent_rhs->pred->ToString(), "X");
}

TEST(ParserTest, MaxSubjectTo) {
  Query q = ParseQuery(
                "SELECT MAX(x + 2 * y SUBJECT TO ((x, y) | E)) "
                "FROM Office_Object CO WHERE CO.extent[E]")
                .value();
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].kind, SelectItem::Kind::kOptimize);
  EXPECT_EQ(q.select[0].opt, SelectItem::OptKind::kMax);
  EXPECT_EQ(q.select[0].formula->kind, Formula::Kind::kProject);
}

TEST(ParserTest, NamedSelectItemsAndOidFunction) {
  Query q = ParseQuery(
                "SELECT name = X.name, drawer = W "
                "FROM Office_Object X OID FUNCTION OF X, W "
                "WHERE X.drawer[W]")
                .value();
  EXPECT_EQ(q.select[0].name, "name");
  EXPECT_EQ(q.select[1].name, "drawer");
  EXPECT_EQ(q.oid_function_of, (std::vector<std::string>{"X", "W"}));
}

TEST(ParserTest, CreateViewWithSignature) {
  Query q = ParseQuery(
                "CREATE VIEW Overlap AS SUBCLASS OF Object_in_Room "
                "SELECT first = X, second = Y "
                "SIGNATURE first => Office_Object, second =>> Office_Object "
                "FROM Office_Object X, Office_Object Y "
                "OID FUNCTION OF X, Y "
                "WHERE SAT(U and V) and X.extent[U] and Y.extent[V]")
                .value();
  EXPECT_TRUE(q.is_view);
  EXPECT_EQ(q.view_name, "Overlap");
  EXPECT_EQ(q.view_parent, "Object_in_Room");
  ASSERT_EQ(q.signature.size(), 2u);
  EXPECT_FALSE(q.signature[0].set_valued);
  EXPECT_TRUE(q.signature[1].set_valued);
}

TEST(ParserTest, CstClassNameInFrom) {
  Query q = ParseQuery("SELECT X FROM CST(2) X").value();
  EXPECT_EQ(q.from[0].class_name, "CST(2)");
}

TEST(ParserTest, ErrorsArePositioned) {
  auto r = ParseQuery("SELECT FROM Desk X");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseQuery("SELECT X FROM Desk X garbage garbage").ok());
}

TEST(ParserTest, SemicolonAccepted) {
  EXPECT_TRUE(ParseQuery("SELECT X FROM Desk X;").ok());
}

TEST(ParserTest, OrOfFormulasInsideSat) {
  Query q = ParseQuery(
                "SELECT X FROM Desk X WHERE SAT(x <= 1 or x >= 5)")
                .value();
  EXPECT_EQ(q.where->formula->kind, Formula::Kind::kOr);
}

TEST(ParserTest, ExistsFormula) {
  Formula f = ParseFormula("exists h . (x = 2 * h and 0 <= h and h <= 1)")
                  .value();
  EXPECT_EQ(f.kind, Formula::Kind::kExists);
  EXPECT_EQ(f.proj_vars, std::vector<std::string>{"h"});
  EXPECT_EQ(f.children[0]->kind, Formula::Kind::kAnd);
  // Multiple quantified variables.
  Formula g = ParseFormula("exists a, b . (x = a + b)").value();
  EXPECT_EQ(g.proj_vars, (std::vector<std::string>{"a", "b"}));
  // Round-trips through ToString.
  Formula h = ParseFormula(f.ToString()).value();
  EXPECT_EQ(h.kind, Formula::Kind::kExists);
}

TEST(ParserTest, ExistsInsideConjunction) {
  Formula f =
      ParseFormula("x >= 0 and exists h . (x = 2 * h)").value();
  ASSERT_EQ(f.kind, Formula::Kind::kAnd);
  EXPECT_EQ(f.children[1]->kind, Formula::Kind::kExists);
}

TEST(ParserTest, DisequalityAtom) {
  Formula f = ParseFormula("x != 3").value();
  EXPECT_EQ(f.kind, Formula::Kind::kAtom);
  EXPECT_EQ(f.relop, "!=");
}

TEST(ParserTest, PaperQueryThreeShape) {
  // The big drawer-area query of §4.1 parses end to end.
  const char* text =
      "SELECT O, ((u, v) | D(w, z, x, y, u, v) and "
      "  DD(w1, z1, x1, y1, u1, v1) and w = u1 and z = v1 and "
      "  DC(p, q) and DE(w1, z1) and L(x, y)) "
      "FROM Object_in_Room O, Desk DSK "
      "WHERE O.location[L] and O.catalog_object[DSK] and "
      "  SAT(L(x, y) and 0 <= x and x <= 10 and 5 <= y and y <= 10) and "
      "  DSK.translation[D] and DSK.drawer_center[DC] and "
      "  DSK.drawer.translation[DD] and DSK.drawer.extent[DE]";
  auto q = ParseQuery(text);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select.size(), 2u);
}

}  // namespace
}  // namespace lyric
