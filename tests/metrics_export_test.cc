// The metrics-export gate: after driving real queries through the
// evaluator, the registry's Prometheus exposition must validate (well-
// formed lines, no duplicate series) and both file writers must produce
// parseable output. This is the ctest stand-in for a scrape: if the
// exporter ever emits a malformed or duplicated series, this fails before
// a dashboard ever sees it.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  std::string base = dir != nullptr && *dir != '\0' ? dir : "/tmp";
  if (base.back() != '/') base += '/';
  return base + name + "." + std::to_string(::getpid());
}

// Drives enough of the engine that every metric family has members:
// counters (kernels), gauges (cache/scheduler/log), histograms (solve,
// canonicalize, query latency), timers (any legacy sites).
void RunWorkload() {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  ASSERT_TRUE(ids.ok()) << ids.status();
  Evaluator ev(&db);
  for (const char* q : {
           "SELECT X FROM Desk X",
           "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
           "SELECT D FROM Drawer D",
       }) {
    auto r = ev.Execute(std::string(q));
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
  }
}

TEST(MetricsExportGate, PrometheusExpositionValidates) {
  RunWorkload();
  std::string text = obs::Registry::Global().ExportPrometheus();
  ASSERT_FALSE(text.empty());
  std::string error;
  EXPECT_TRUE(obs::ValidatePrometheusExposition(text, &error)) << error;
  // The hot-path histograms and subsystem gauges are present as series.
  EXPECT_NE(text.find("lyric_simplex_solve_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lyric_query_latency_ns_count"), std::string::npos);
  EXPECT_NE(text.find("lyric_solver_cache_entries"), std::string::npos);
  EXPECT_NE(text.find("lyric_evaluator_queries_total"), std::string::npos);
}

TEST(MetricsExportGate, FileWritersRoundTrip) {
  RunWorkload();
  const std::string prom_path = TempPath("lyric_metrics") + ".prom";
  const std::string json_path = TempPath("lyric_metrics") + ".json";
  ASSERT_TRUE(obs::WriteMetricsFile(prom_path));
  ASSERT_TRUE(obs::WriteMetricsFile(json_path));

  std::string error;
  EXPECT_TRUE(obs::ValidatePrometheusExposition(ReadAll(prom_path), &error))
      << error;

  std::string json = ReadAll(json_path);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"query.latency\""), std::string::npos);

  std::remove(prom_path.c_str());
  std::remove(json_path.c_str());
}

TEST(MetricsExportGate, WriteToUnwritablePathFails) {
  EXPECT_FALSE(obs::WriteMetricsFile("/nonexistent-dir-xyz/m.prom"));
}

}  // namespace
}  // namespace lyric
