#include "query/lexer.h"

#include <gtest/gtest.h>

namespace lyric {
namespace {

std::vector<TokenKind> Kinds(const std::string& text) {
  auto tokens = Lex(text).value();
  std::vector<TokenKind> out;
  for (const Token& t : tokens) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  EXPECT_EQ(Kinds("SELECT select SeLeCt"),
            (std::vector<TokenKind>{TokenKind::kSelect, TokenKind::kSelect,
                                    TokenKind::kSelect, TokenKind::kEnd}));
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = Lex("My_Desk drawer X").value();
  EXPECT_EQ(tokens[0].text, "My_Desk");
  EXPECT_EQ(tokens[1].text, "drawer");
  EXPECT_EQ(tokens[2].text, "X");
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("42 2.5 0.125").value();
  EXPECT_EQ(tokens[0].number, Rational(42));
  EXPECT_EQ(tokens[1].number, Rational(5, 2));
  EXPECT_EQ(tokens[2].number, Rational(1, 8));
}

TEST(LexerTest, NegativeIsOperatorPlusNumber) {
  EXPECT_EQ(Kinds("-3"), (std::vector<TokenKind>{TokenKind::kMinus,
                                                 TokenKind::kNumber,
                                                 TokenKind::kEnd}));
}

TEST(LexerTest, Strings) {
  auto tokens = Lex("'red' 'it''s'").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "red");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(LexerTest, OperatorsGreedy) {
  EXPECT_EQ(Kinds("<= < >= > != = |= | => =>>"),
            (std::vector<TokenKind>{
                TokenKind::kLe, TokenKind::kLt, TokenKind::kGe, TokenKind::kGt,
                TokenKind::kNeq, TokenKind::kEq, TokenKind::kEntails,
                TokenKind::kBar, TokenKind::kArrow, TokenKind::kDArrow,
                TokenKind::kEnd}));
}

TEST(LexerTest, PathPunctuation) {
  EXPECT_EQ(Kinds("X.drawer[Y].color"),
            (std::vector<TokenKind>{
                TokenKind::kIdent, TokenKind::kDot, TokenKind::kIdent,
                TokenKind::kLBracket, TokenKind::kIdent, TokenKind::kRBracket,
                TokenKind::kDot, TokenKind::kIdent, TokenKind::kEnd}));
}

TEST(LexerTest, CommentsSkipped) {
  EXPECT_EQ(Kinds("SELECT -- the answer\n X"),
            (std::vector<TokenKind>{TokenKind::kSelect, TokenKind::kIdent,
                                    TokenKind::kEnd}));
}

TEST(LexerTest, CommentVsMinus) {
  // A single '-' stays an operator; '--' starts a comment.
  EXPECT_EQ(Kinds("a - b"),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kMinus,
                                    TokenKind::kIdent, TokenKind::kEnd}));
  EXPECT_EQ(Kinds("a -- b"),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kEnd}));
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto r = Lex("a $ b");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(LexerTest, OffsetsRecorded) {
  auto tokens = Lex("ab cd").value();
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

TEST(LexerTest, MaxPointKeyword) {
  EXPECT_EQ(Kinds("MAX_POINT MIN_POINT MAX MIN"),
            (std::vector<TokenKind>{TokenKind::kMaxPoint, TokenKind::kMinPoint,
                                    TokenKind::kMax, TokenKind::kMin,
                                    TokenKind::kEnd}));
}

}  // namespace
}  // namespace lyric
