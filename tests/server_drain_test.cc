// Graceful drain: BeginDrain() must deliver a response for every query
// the server already accepted, refuse new connections at the TCP level,
// and shed queries arriving on surviving sessions with a typed
// kUnavailable + retry-after — never a cut connection. WaitForDrainIdle
// is the barrier lyric_serverd's SIGTERM path waits on; the process-
// level version of this test (a real SIGTERM against a real serverd)
// lives in server_chaos_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

Database MakeDb(int scale) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  EXPECT_TRUE(ids.ok()) << ids.status();
  if (scale > 0) {
    Status st = office::AddScaledDesks(&db, scale, /*seed=*/7);
    EXPECT_TRUE(st.ok()) << st;
  }
  return db;
}

net::ClientOptions PlainClient(uint16_t port) {
  net::ClientOptions opts;
  opts.port = port;
  opts.threads = 1;
  return opts;
}

const char kQuery[] = "SELECT O FROM Object_in_Room O";

TEST(ServerDrain, ShedsNewWorkRefusesNewConnectionsAnswersHealth) {
  Database db = MakeDb(0);
  net::ServerOptions sopts;
  sopts.drain_retry_after_ms = 77;
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());

  net::Client survivor(PlainClient(server.port()));
  Result<net::QueryResponse> before = survivor.Execute(kQuery);
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_TRUE(before->status.ok()) << before->status;
  EXPECT_EQ(survivor.last_server_health(), net::HealthState::kServing);

  server.BeginDrain();
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(server.health(), net::HealthState::kDraining);

  // New connections are refused at the TCP level — the listener is
  // closed, not just ignoring accepts.
  net::Client late(PlainClient(server.port()));
  EXPECT_FALSE(late.Connect().ok());

  // The surviving session stays connected: its queries come back as
  // typed sheds with the configured retry-after, not cut connections.
  Result<net::QueryResponse> shed = survivor.Execute(kQuery);
  ASSERT_TRUE(shed.ok()) << "drain cut an open session: " << shed.status();
  EXPECT_TRUE(shed->status.IsUnavailable()) << shed->status;
  EXPECT_NE(shed->status.message().find("draining"), std::string::npos)
      << shed->status;
  EXPECT_EQ(shed->status.retry_after_ms(), 77u);
  EXPECT_EQ(survivor.last_server_health(), net::HealthState::kDraining);
  EXPECT_EQ(survivor.stats().in_flight_at_disconnect, 0u);

  // Health probes still answer during the drain (how a supervisor
  // watches it finish).
  net::HealthInfo info;
  ASSERT_TRUE(survivor.Health(&info).ok());
  EXPECT_EQ(info.state, net::HealthState::kDraining);
  EXPECT_TRUE(info.draining);

  // Nothing in flight -> the barrier clears immediately.
  EXPECT_TRUE(server.WaitForDrainIdle(1000));
  survivor.Close();
  server.Stop();
  EXPECT_EQ(server.active_sessions(), 0u);
}

TEST(ServerDrain, AcceptedQueriesCompleteWithCorrectAnswers) {
  Database db = MakeDb(10);
  net::ServerOptions sopts;
  sopts.exec_threads = 4;
  sopts.eval.threads = 1;
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());

  // The answer accepted queries must still produce, drain or no drain.
  EvalOptions direct;
  direct.threads = 1;
  direct.retry = exec::RetryPolicy{};
  std::string expected;
  {
    Evaluator ev(&db, direct);
    expected = net::ResponseFromResult(ev.Execute(kQuery)).Fingerprint();
  }

  // Clients hammer the server; none is retry-armed, so the FIRST shed
  // each one sees ends its loop — mirroring how lyric_serverd's drain
  // expects clients to go away.
  constexpr int kClients = 4;
  std::atomic<uint64_t> ok_responses{0};
  std::atomic<uint64_t> sheds{0};
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client(PlainClient(server.port()));
      for (int round = 0; round < 10000; ++round) {
        Result<net::QueryResponse> resp = client.Execute(kQuery);
        if (!resp.ok()) {
          // A transport failure means an accepted query was dropped —
          // exactly what drain forbids.
          failures[c] = "transport: " + resp.status().ToString();
          return;
        }
        if (resp->status.IsUnavailable()) {
          ++sheds;
          return;  // drained; disconnect like a well-behaved client
        }
        if (!resp->status.ok()) {
          failures[c] = "eval: " + resp->status.ToString();
          return;
        }
        if (resp->Fingerprint() != expected) {
          failures[c] = "fingerprint diverged under drain";
          return;
        }
        ++ok_responses;
      }
    });
  }

  // Let the load establish, then drain mid-flight — ideally while a
  // query is actually evaluating, but the assertions hold either way.
  for (int spin = 0; spin < 2000; ++spin) {
    if (ok_responses.load() >= 4 && server.in_flight_queries() > 0) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  server.BeginDrain();

  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], "");
  EXPECT_EQ(sheds.load(), static_cast<uint64_t>(kClients))
      << "every client should end on exactly one shed";
  EXPECT_GT(ok_responses.load(), 0u);

  // All clients disconnected after their shed; the barrier must clear
  // and no session may leak.
  EXPECT_TRUE(server.WaitForDrainIdle(5000));
  for (int spin = 0; spin < 5000 && server.active_sessions() != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.active_sessions(), 0u);
  server.Stop();
}

TEST(ServerDrain, IdempotentAndStopAfterDrainIsClean) {
  Database db = MakeDb(0);
  net::Server server(&db, net::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  server.BeginDrain();
  server.BeginDrain();  // second call is a no-op
  EXPECT_TRUE(server.WaitForDrainIdle(100));
  server.Stop();
  server.Stop();
  EXPECT_EQ(server.active_sessions(), 0u);
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace lyric
