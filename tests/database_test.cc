#include "object/database.h"

#include <gtest/gtest.h>

#include "office/office_db.h"

namespace lyric {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
  }

  Database db_;
  office::OfficeIds ids_;
};

TEST_F(DatabaseTest, FigureTwoInstanceComplete) {
  EXPECT_TRUE(db_.HasObject(ids_.my_desk));
  EXPECT_EQ(db_.ClassOf(ids_.my_desk).value(), "Object_in_Room");
  EXPECT_EQ(db_.ClassOf(ids_.standard_desk).value(), "Desk");
  EXPECT_EQ(db_.ClassOf(ids_.the_drawer).value(), "Drawer");
  EXPECT_EQ(db_.GetAttribute(ids_.my_desk, "inv_number").value(),
            Value::Scalar(Oid::Str("22-354")));
  EXPECT_TRUE(db_.CheckIntegrity().ok());
}

TEST_F(DatabaseTest, CstAttributeRoundTrip) {
  Value loc = db_.GetAttribute(ids_.my_desk, "location").value();
  ASSERT_TRUE(loc.is_scalar());
  ASSERT_TRUE(loc.scalar().IsCst());
  CstObject obj = db_.GetCst(loc.scalar()).value();
  EXPECT_EQ(obj.Dimension(), 2u);
  EXPECT_TRUE(obj.Contains({Rational(6), Rational(4)}).value());
  EXPECT_FALSE(obj.Contains({Rational(6), Rational(5)}).value());
}

TEST_F(DatabaseTest, CstInterningSharesOids) {
  // The desk and the drawer have the same translation constraint: the
  // store must intern them to one oid.
  Value a = db_.GetAttribute(ids_.standard_desk, "translation").value();
  Value b = db_.GetAttribute(ids_.the_drawer, "translation").value();
  EXPECT_EQ(a.scalar(), b.scalar());
  // Distinct constraints get distinct oids.
  Value e = db_.GetAttribute(ids_.standard_desk, "extent").value();
  EXPECT_NE(a.scalar(), e.scalar());
}

TEST_F(DatabaseTest, InstanceOfLiterals) {
  EXPECT_TRUE(db_.InstanceOf(Oid::Int(20), "int"));
  EXPECT_TRUE(db_.InstanceOf(Oid::Int(20), "real"));
  EXPECT_FALSE(db_.InstanceOf(Oid::Int(20), "string"));
  EXPECT_TRUE(db_.InstanceOf(Oid::Str("red"), "string"));
  EXPECT_TRUE(db_.InstanceOf(Oid::Bool(true), "bool"));
}

TEST_F(DatabaseTest, InstanceOfViaIsA) {
  EXPECT_TRUE(db_.InstanceOf(ids_.standard_desk, "Desk"));
  EXPECT_TRUE(db_.InstanceOf(ids_.standard_desk, "Office_Object"));
  EXPECT_FALSE(db_.InstanceOf(ids_.standard_desk, "File_Cabinet"));
  EXPECT_FALSE(db_.InstanceOf(ids_.my_desk, "Desk"));
}

TEST_F(DatabaseTest, InstanceOfCstByDimension) {
  Value loc = db_.GetAttribute(ids_.my_desk, "location").value();
  EXPECT_TRUE(db_.InstanceOf(loc.scalar(), "CST"));
  EXPECT_TRUE(db_.InstanceOf(loc.scalar(), "CST(2)"));
  EXPECT_FALSE(db_.InstanceOf(loc.scalar(), "CST(3)"));
}

TEST_F(DatabaseTest, ExtentWithInheritance) {
  auto office_objects = db_.Extent("Office_Object");
  EXPECT_EQ(office_objects.size(), 1u);  // standard_desk (a Desk).
  auto desks = db_.Extent("Desk");
  EXPECT_EQ(desks.size(), 1u);
  auto drawers = db_.Extent("Drawer");
  EXPECT_EQ(drawers.size(), 1u);
  auto cabinets = db_.Extent("File_Cabinet");
  EXPECT_TRUE(cabinets.empty());
}

TEST_F(DatabaseTest, ExtentOfCstClasses) {
  // location (1), extent boxes (2 distinct), translation (1 shared),
  // drawer_center (1) -> 5 two-dimensional + 1 six-dimensional.
  auto cst2 = db_.Extent("CST(2)");
  EXPECT_EQ(cst2.size(), 4u);
  auto cst6 = db_.Extent("CST(6)");
  EXPECT_EQ(cst6.size(), 1u);
  auto all = db_.Extent("CST");
  EXPECT_EQ(all.size(), 5u);
}

TEST_F(DatabaseTest, SetAttributeTypeChecked) {
  // Wrong target class.
  EXPECT_TRUE(db_.SetAttribute(ids_.my_desk, "catalog_object",
                               Value::Scalar(Oid::Int(5)))
                  .IsTypeError());
  // Scalar attribute given a set.
  EXPECT_TRUE(db_.SetAttribute(ids_.my_desk, "inv_number",
                               Value::Set({Oid::Str("a")}))
                  .IsTypeError());
  // Unknown attribute.
  EXPECT_TRUE(db_.SetAttribute(ids_.my_desk, "nope",
                               Value::Scalar(Oid::Int(1)))
                  .IsNotFound());
  // CST dimension mismatch: location wants CST(2).
  CstObject six = office::StandardTranslation();
  auto st = db_.SetCstAttribute(ids_.my_desk, "location", six);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.status().IsTypeError());
}

TEST_F(DatabaseTest, SetValuedAttributeOnFileCabinet) {
  Oid cab = Oid::Symbol("cab1");
  ASSERT_TRUE(db_.Insert(cab, "File_Cabinet").ok());
  Oid d1 = Oid::Symbol("cab_drawer1");
  Oid d2 = Oid::Symbol("cab_drawer2");
  for (const Oid& d : {d1, d2}) {
    ASSERT_TRUE(db_.Insert(d, "Drawer").ok());
    ASSERT_TRUE(
        db_.SetCstAttribute(d, "extent", office::BoxExtent(1, 1)).ok());
  }
  ASSERT_TRUE(db_.SetAttribute(cab, "drawer", Value::Set({d1, d2})).ok());
  Value v = db_.GetAttribute(cab, "drawer").value();
  EXPECT_EQ(v.elements().size(), 2u);
  EXPECT_TRUE(db_.CheckIntegrity().ok());
}

TEST_F(DatabaseTest, AddInstanceOfRegionView) {
  // A CST(2) oid can be classified into the Region subclass (the §4.1
  // higher-order view mechanism).
  Value loc = db_.GetAttribute(ids_.my_desk, "location").value();
  ASSERT_TRUE(db_.AddInstanceOf(loc.scalar(), "Region").ok());
  EXPECT_TRUE(db_.InstanceOf(loc.scalar(), "Region"));
  auto regions = db_.Extent("Region");
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], loc.scalar());
}

TEST_F(DatabaseTest, DuplicateInsertRejected) {
  EXPECT_TRUE(db_.Insert(ids_.my_desk, "Desk").IsAlreadyExists());
  EXPECT_TRUE(db_.Insert(Oid::Symbol("q"), "Nope").IsNotFound());
}

TEST_F(DatabaseTest, UpdateIsFullyGeneral) {
  // §6: "there is no reason that moving a desk would be limited in any
  // way" — overwrite the location wholesale.
  ASSERT_TRUE(
      db_.SetCstAttribute(ids_.my_desk, "location", office::LocationAt(1, 1))
          .ok());
  CstObject moved =
      db_.GetCst(db_.GetAttribute(ids_.my_desk, "location").value().scalar())
          .value();
  EXPECT_TRUE(moved.Contains({Rational(1), Rational(1)}).value());
  EXPECT_FALSE(moved.Contains({Rational(6), Rational(4)}).value());
}

TEST_F(DatabaseTest, ClearAttribute) {
  ASSERT_TRUE(db_.ClearAttribute(ids_.my_desk, "inv_number").ok());
  EXPECT_TRUE(
      db_.GetAttribute(ids_.my_desk, "inv_number").status().IsNotFound());
  EXPECT_TRUE(db_.ClearAttribute(ids_.my_desk, "inv_number").IsNotFound());
  EXPECT_TRUE(
      db_.ClearAttribute(Oid::Symbol("ghost"), "x").IsNotFound());
}

TEST_F(DatabaseTest, DeleteObjectProtectsReferences) {
  // The drawer is referenced by the desk: plain delete refuses.
  Status st = db_.DeleteObject(ids_.the_drawer);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("referenced"), std::string::npos);
  // Forced delete cascades: the desk loses its drawer attribute.
  ASSERT_TRUE(db_.DeleteObject(ids_.the_drawer, /*force=*/true).ok());
  EXPECT_FALSE(db_.HasObject(ids_.the_drawer));
  EXPECT_TRUE(
      db_.GetAttribute(ids_.standard_desk, "drawer").status().IsNotFound());
  EXPECT_TRUE(db_.CheckIntegrity().ok());
}

TEST_F(DatabaseTest, DeleteFromSetValuedAttribute) {
  Oid cab = Oid::Symbol("del_cab");
  ASSERT_TRUE(db_.Insert(cab, "File_Cabinet").ok());
  Oid d1 = Oid::Symbol("del_d1");
  Oid d2 = Oid::Symbol("del_d2");
  for (const Oid& d : {d1, d2}) ASSERT_TRUE(db_.Insert(d, "Drawer").ok());
  ASSERT_TRUE(db_.SetAttribute(cab, "drawer", Value::Set({d1, d2})).ok());
  ASSERT_TRUE(db_.DeleteObject(d1, /*force=*/true).ok());
  EXPECT_EQ(db_.GetAttribute(cab, "drawer").value(), Value::Set({d2}));
}

TEST_F(DatabaseTest, ScaledDesksGenerate) {
  ASSERT_TRUE(office::AddScaledDesks(&db_, 10, 42).ok());
  EXPECT_EQ(db_.Extent("Object_in_Room").size(), 11u);
  EXPECT_TRUE(db_.CheckIntegrity().ok());
  // Deterministic: same seed, same positions.
  Database db2;
  ASSERT_TRUE(office::BuildOfficeDatabase(&db2).ok());
  ASSERT_TRUE(office::AddScaledDesks(&db2, 10, 42).ok());
  Oid d0 = Oid::Func("desk_in_room", {Oid::Int(0), Oid::Int(42)});
  EXPECT_EQ(db_.GetAttribute(d0, "location").value(),
            db2.GetAttribute(d0, "location").value());
}

TEST_F(DatabaseTest, ScaledDesksPerDeskCatalog) {
  ASSERT_TRUE(office::AddScaledDesks(&db_, 5, 7, /*share_catalog=*/false).ok());
  EXPECT_EQ(db_.Extent("Desk").size(), 6u);  // standard + 5 models.
  EXPECT_TRUE(db_.CheckIntegrity().ok());
}

}  // namespace
}  // namespace lyric
