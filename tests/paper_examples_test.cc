// E1/E2: the worked examples of §4.1 evaluated end to end on the Figure 2
// database, checked against the answers the paper states.

#include <gtest/gtest.h>

#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
  }

  ResultSet Run(const std::string& text) {
    Evaluator ev(&db_);
    auto r = ev.Execute(text);
    EXPECT_TRUE(r.ok()) << text << "\n -> " << r.status();
    return r.ok() ? *r : ResultSet();
  }

  CstObject Cst(const Oid& oid) { return db_.GetCst(oid).value(); }

  // Builds a box [lo_u, hi_u] x [lo_v, hi_v] over (u, v) for comparisons.
  CstObject UvBox(int64_t lo_u, int64_t hi_u, int64_t lo_v, int64_t hi_v) {
    VarId u = Variable::Intern("u");
    VarId v = Variable::Intern("v");
    Conjunction c;
    c.Add(LinearConstraint::Ge(LinearExpr::Var(u),
                               LinearExpr::Constant(Rational(lo_u))));
    c.Add(LinearConstraint::Le(LinearExpr::Var(u),
                               LinearExpr::Constant(Rational(hi_u))));
    c.Add(LinearConstraint::Ge(LinearExpr::Var(v),
                               LinearExpr::Constant(Rational(lo_v))));
    c.Add(LinearConstraint::Le(LinearExpr::Var(v),
                               LinearExpr::Constant(Rational(hi_v))));
    return CstObject::FromConjunction({u, v}, c).value();
  }

  Database db_;
  office::OfficeIds ids_;
};

// §4.1 query 1: "retrieve all extent attributes of drawers in desks".
// Expected answer: the logical oid of ((w,z) | -1<=w<=1 and -1<=z<=1).
TEST_F(PaperExamplesTest, Q1DrawerExtentAsLogicalOid) {
  ResultSet r = Run("SELECT Y FROM Desk X WHERE X.drawer.extent[Y]");
  ASSERT_EQ(r.size(), 1u);
  ASSERT_TRUE(r.rows()[0][0].IsCst());
  CstObject expected = office::BoxExtent(1, 1);
  EXPECT_TRUE(Cst(r.rows()[0][0]).EquivalentTo(expected).value());
  // Identity is the canonical form: the stored attribute has the same oid.
  EXPECT_EQ(r.rows()[0][0],
            db_.GetAttribute(ids_.the_drawer, "extent").value().scalar());
}

// §4.1 query 2 (explicit variables): the extent of each catalog object in
// room coordinates with its center at (6, 4). The paper simplifies the
// answer to ((u,v) | 2 <= u <= 10 and 2 <= v <= 6).
TEST_F(PaperExamplesTest, Q2GlobalExtentExplicitVariables) {
  ResultSet r = Run(
      "SELECT CO, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and x = 6 and "
      "y = 4) "
      "FROM Office_Object CO "
      "WHERE CO.extent[E] and CO.translation[D]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], ids_.standard_desk);
  CstObject answer = Cst(r.rows()[0][1]);
  EXPECT_EQ(answer.Dimension(), 2u);
  EXPECT_TRUE(answer.EquivalentTo(UvBox(2, 10, 2, 6)).value());
}

// §4.1 query 2 (short form): "the same variables (w,z) are used in the
// description of extent and translation of the same object", so the bare
// uses E and D conjoin through the schema names.
TEST_F(PaperExamplesTest, Q2GlobalExtentBareUses) {
  ResultSet r = Run(
      "SELECT CO, ((u, v) | E and D and x = 6 and y = 4) "
      "FROM Office_Object CO "
      "WHERE CO.extent[E] and CO.translation[D]");
  ASSERT_EQ(r.size(), 1u);
  CstObject answer = Cst(r.rows()[0][1]);
  EXPECT_TRUE(answer.EquivalentTo(UvBox(2, 10, 2, 6)).value());
}

// The §4.1 footnote result printed for my_desk: with the location
// constraint L instead of literal x = 6, y = 4.
TEST_F(PaperExamplesTest, Q2ViaLocationAttribute) {
  ResultSet r = Run(
      "SELECT O, ((u, v) | E and D and L) "
      "FROM Object_in_Room O, Office_Object CO "
      "WHERE O.catalog_object[CO] and O.location[L] and "
      "      CO.extent[E] and CO.translation[D]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], ids_.my_desk);
  EXPECT_TRUE(Cst(r.rows()[0][1]).EquivalentTo(UvBox(2, 10, 2, 6)).value());
}

// §4.1 query 3: the area the drawer can occupy, in room coordinates. The
// schema-derived implicit equalities p = x1, q = y1 link the drawer
// center to the drawer translation. For my_desk at (6, 4) with drawer
// center p = -2, -2 <= q <= 0 and drawer extent [-1,1]^2 the answer is
// [3,5] x [1,5].
TEST_F(PaperExamplesTest, Q3DrawerAreaWithImplicitEqualities) {
  ResultSet r = Run(
      "SELECT O, ((u, v) | D(w, z, x, y, u, v) and "
      "  DD(w1, z1, x1, y1, u1, v1) and w = u1 and z = v1 and "
      "  DC(p, q) and DE(w1, z1) and L(x, y)) "
      "FROM Object_in_Room O, Desk DSK "
      "WHERE O.location[L] and O.catalog_object[DSK] and "
      "  DSK.translation[D] and DSK.drawer_center[DC] and "
      "  DSK.drawer.translation[DD] and DSK.drawer.extent[DE]");
  ASSERT_EQ(r.size(), 1u);
  CstObject area = Cst(r.rows()[0][1]);
  EXPECT_TRUE(area.EquivalentTo(UvBox(3, 5, 1, 5)).value())
      << area.ToString();
}

// §4.1 query 3's WHERE filter: only desks whose center may appear in the
// left upper quarter of the 20 x 10 room. my_desk is at (6, 4), outside.
TEST_F(PaperExamplesTest, Q3LocationFilterExcludesMyDesk) {
  ResultSet r = Run(
      "SELECT O FROM Object_in_Room O, Desk DSK "
      "WHERE O.location[L] and O.catalog_object[DSK] and "
      "  SAT(L(x, y) and 0 <= x and x <= 10 and 5 <= y and y <= 10)");
  EXPECT_EQ(r.size(), 0u);
  // The lower quarter filter admits it.
  ResultSet r2 = Run(
      "SELECT O FROM Object_in_Room O, Desk DSK "
      "WHERE O.location[L] and O.catalog_object[DSK] and "
      "  SAT(L(x, y) and 0 <= x and x <= 10 and 0 <= y and y <= 5)");
  EXPECT_EQ(r2.size(), 1u);
}

// §4.1 query 4: red desks with the drawer in the middle of the desk,
// tested with the |= predicate. The standard desk's drawer line is at
// p = -2, so the paper's p = 0 test rejects it and p = -2 accepts it.
TEST_F(PaperExamplesTest, Q4DrawerMiddleEntailment) {
  ResultSet centered = Run(
      "SELECT DSK, ((w, z) | DSK.drawer.extent(w, z) and z >= w) "
      "FROM Desk DSK "
      "WHERE DSK.color = 'red' and DSK.drawer_center[C] and "
      "      C(p, q) |= p = 0");
  EXPECT_EQ(centered.size(), 0u);

  ResultSet offset = Run(
      "SELECT DSK, ((w, z) | DSK.drawer.extent(w, z) and z >= w) "
      "FROM Desk DSK "
      "WHERE DSK.color = 'red' and DSK.drawer_center[C] and "
      "      C(p, q) |= p = -2");
  ASSERT_EQ(offset.size(), 1u);
  // The returned CST object is the drawer extent above the 45-degree
  // line: the triangle w,z in [-1,1], z >= w.
  CstObject tri = Cst(offset.rows()[0][1]);
  EXPECT_TRUE(tri.Contains({Rational(-1), Rational(1)}).value());
  EXPECT_TRUE(tri.Contains({Rational(0), Rational(0)}).value());
  EXPECT_FALSE(tri.Contains({Rational(1), Rational(0)}).value());
  EXPECT_FALSE(tri.Contains({Rational(2), Rational(2)}).value());
}

// §4.1 query 5: desks in the room whose drawer never touches the walls of
// the 20 x 10 room — entailment of the drawer area in the open room box.
TEST_F(PaperExamplesTest, Q5DrawerNeverTouchesWalls) {
  // my_desk's drawer area is [3,5] x [1,5], strictly inside the room.
  ResultSet r = Run(
      "SELECT DSK FROM Object_in_Room O, Desk DSK "
      "WHERE O.catalog_object[DSK] and O.location[L] and "
      "  DSK.translation[D] and DSK.drawer_center[DC] and "
      "  DSK.drawer.extent[DE] and DSK.drawer.translation[DD] and "
      "  ((u, v) | D(w, z, x, y, u, v) and DD(w1, z1, x1, y1, u1, v1) and "
      "   w = u1 and z = v1 and DC(p, q) and DE(w1, z1) and L(x, y)) "
      "  |= ((u, v) | 0 < u and u < 20 and 0 < v and v < 10)");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], ids_.standard_desk);
}

// §4.1 query 5 negative: in a 6-wide room the drawer area [3,5] x [1,5]
// touches nothing horizontally but the v range exceeds a 4-high room.
TEST_F(PaperExamplesTest, Q5TouchingWallRejected) {
  ResultSet r = Run(
      "SELECT DSK FROM Object_in_Room O, Desk DSK "
      "WHERE O.catalog_object[DSK] and O.location[L] and "
      "  DSK.translation[D] and DSK.drawer_center[DC] and "
      "  DSK.drawer.extent[DE] and DSK.drawer.translation[DD] and "
      "  ((u, v) | D(w, z, x, y, u, v) and DD(w1, z1, x1, y1, u1, v1) and "
      "   w = u1 and z = v1 and DC(p, q) and DE(w1, z1) and L(x, y)) "
      "  |= ((u, v) | 0 < u and u < 20 and 0 < v and v < 4)");
  EXPECT_EQ(r.size(), 0u);
}

// §2.2's Overlap view: pairs of catalog objects occupying the same volume.
// With one extra desk at the same position, the overlap test (conjunction
// satisfiability of the two room-coordinate extents) fires.
TEST_F(PaperExamplesTest, OverlapViewFromSectionTwo) {
  ASSERT_TRUE(office::AddScaledDesks(&db_, 1, 99).ok());
  Evaluator ev(&db_);
  // Overlap of room objects: conjoin each object's extent translated to
  // its own location; shared names are renamed apart per object.
  auto r = ev.Execute(
      "CREATE VIEW Overlap AS SUBCLASS OF Object_in_Room "
      "SELECT first = O1, second = O2 "
      "FROM Object_in_Room O1, Object_in_Room O2 "
      "OID FUNCTION OF O1, O2 "
      "WHERE O1.location[L1] and O1.catalog_object.extent[E1] and "
      "      O1.catalog_object.translation[D1] and "
      "      O2.location[L2] and O2.catalog_object.extent[E2] and "
      "      O2.catalog_object.translation[D2] and "
      "      not O1.inv_number = O2.inv_number and "
      "      SAT( ((u, v) | E1(w, z) and D1(w, z, x, y, u, v) and L1(x, y)) "
      "       and ((u, v) | E2(w2, z2) and D2(w2, z2, x2, y2, u, v) and "
      "            L2(x2, y2)) )");
  ASSERT_TRUE(r.ok()) << r.status();
  // Whether the random desk overlaps my_desk depends on the seed; the
  // view machinery itself must have registered the class.
  EXPECT_TRUE(db_.schema().HasClass("Overlap"));
  EXPECT_TRUE(db_.schema().IsSubclass("Overlap", "Object_in_Room"));
  // Every overlap is symmetric: (a,b) in result iff (b,a) in result.
  std::set<std::pair<std::string, std::string>> pairs;
  for (const auto& row : r->rows()) {
    pairs.emplace(row[0].ToString(), row[1].ToString());
  }
  for (const auto& [a, b] : pairs) {
    EXPECT_TRUE(pairs.count({b, a})) << a << " overlaps " << b;
  }
}

// §3.2's instance table rendered back: my_desk.location is exactly
// ((x,y) | x = 6 and y = 4).
TEST_F(PaperExamplesTest, InstanceTableRoundTrip) {
  Value loc = db_.GetAttribute(ids_.my_desk, "location").value();
  std::string canonical = Cst(loc.scalar()).CanonicalString().value();
  EXPECT_EQ(canonical, office::LocationAt(6, 4).CanonicalString().value());
  Value ext = db_.GetAttribute(ids_.standard_desk, "extent").value();
  EXPECT_EQ(Cst(ext.scalar()).CanonicalString().value(),
            office::BoxExtent(4, 2).CanonicalString().value());
}

// "Show a projection of their cut at the height of 1/2 feet" (§1.2): fix
// v and project the room-coordinate extent onto u.
TEST_F(PaperExamplesTest, CutProjectionQuery) {
  ResultSet r = Run(
      "SELECT ((u) | E and D and L and v = 5/2 + 1/2) "
      "FROM Object_in_Room O, Office_Object CO "
      "WHERE O.catalog_object[CO] and O.location[L] and "
      "      CO.extent[E] and CO.translation[D]");
  ASSERT_EQ(r.size(), 1u);
  CstObject cut = Cst(r.rows()[0][0]);
  EXPECT_EQ(cut.Dimension(), 1u);
  // At height 3 (within [2,6]) the u-range is the full [2,10].
  EXPECT_TRUE(cut.Contains({Rational(2)}).value());
  EXPECT_TRUE(cut.Contains({Rational(10)}).value());
  EXPECT_FALSE(cut.Contains({Rational(11)}).value());
}

}  // namespace
}  // namespace lyric
