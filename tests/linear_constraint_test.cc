#include "constraint/linear_constraint.h"

#include <gtest/gtest.h>

namespace lyric {
namespace {

class LinearConstraintTest : public ::testing::Test {
 protected:
  VarId x_ = Variable::Intern("x");
  VarId y_ = Variable::Intern("y");

  LinearExpr X() { return LinearExpr::Var(x_); }
  LinearExpr Y() { return LinearExpr::Var(y_); }
  LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }
};

TEST_F(LinearConstraintTest, GeAndGtFlipToLeAndLt) {
  LinearConstraint ge = LinearConstraint::Ge(X(), C(3));  // x >= 3
  EXPECT_EQ(ge.op(), RelOp::kLe);
  EXPECT_EQ(ge.ToString(), "-x <= -3");
  LinearConstraint gt = LinearConstraint::Gt(X(), C(3));
  EXPECT_EQ(gt.op(), RelOp::kLt);
}

TEST_F(LinearConstraintTest, ScalingNormalization) {
  // 2x <= 4 and x <= 2 normalize identically.
  EXPECT_EQ(LinearConstraint::Le(X().Scale(Rational(2)), C(4)),
            LinearConstraint::Le(X(), C(2)));
  // x/2 <= 1 and x <= 2 normalize identically.
  EXPECT_EQ(LinearConstraint::Le(X().Scale(Rational(1, 2)), C(1)),
            LinearConstraint::Le(X(), C(2)));
}

TEST_F(LinearConstraintTest, EqualitySignNormalization) {
  // x - y = 0 and y - x = 0 are the same atom.
  EXPECT_EQ(LinearConstraint::Eq(X() - Y(), C(0)),
            LinearConstraint::Eq(Y() - X(), C(0)));
  // Same for disequalities.
  EXPECT_EQ(LinearConstraint::Neq(X() - Y(), C(0)),
            LinearConstraint::Neq(Y() - X(), C(0)));
}

TEST_F(LinearConstraintTest, InequalitySignsStayDistinct) {
  EXPECT_NE(LinearConstraint::Le(X(), C(0)),
            LinearConstraint::Le(-X(), C(0)));
}

TEST_F(LinearConstraintTest, ConstantTruth) {
  EXPECT_EQ(LinearConstraint::Le(C(0), C(1)).ConstantTruth(), Truth::kTrue);
  EXPECT_EQ(LinearConstraint::Le(C(1), C(0)).ConstantTruth(), Truth::kFalse);
  EXPECT_EQ(LinearConstraint::Eq(C(2), C(2)).ConstantTruth(), Truth::kTrue);
  EXPECT_EQ(LinearConstraint::Lt(C(2), C(2)).ConstantTruth(), Truth::kFalse);
  EXPECT_EQ(LinearConstraint::Neq(C(2), C(3)).ConstantTruth(), Truth::kTrue);
  EXPECT_EQ(LinearConstraint::Le(X(), C(0)).ConstantTruth(), Truth::kUnknown);
}

TEST_F(LinearConstraintTest, Eval) {
  LinearConstraint c = LinearConstraint::Le(X() + Y(), C(3));
  EXPECT_TRUE(c.Eval({{x_, Rational(1)}, {y_, Rational(2)}}).value());
  EXPECT_FALSE(c.Eval({{x_, Rational(2)}, {y_, Rational(2)}}).value());
  LinearConstraint strict = LinearConstraint::Lt(X(), C(1));
  EXPECT_FALSE(strict.Eval({{x_, Rational(1)}}).value());
  EXPECT_TRUE(strict.Eval({{x_, Rational(0)}}).value());
}

TEST_F(LinearConstraintTest, NegateEquality) {
  LinearConstraint eq = LinearConstraint::Eq(X(), C(1));
  auto neg = eq.Negate();
  ASSERT_EQ(neg.size(), 2u);
  // The two pieces are x < 1 and x > 1; together with x = 1 they tile R.
  for (const Rational& v : {Rational(0), Rational(1), Rational(2)}) {
    Assignment a{{x_, v}};
    bool eq_holds = eq.Eval(a).value();
    bool n0 = neg[0].Eval(a).value();
    bool n1 = neg[1].Eval(a).value();
    EXPECT_EQ(eq_holds, !(n0 || n1));
    EXPECT_FALSE(n0 && n1);
  }
}

TEST_F(LinearConstraintTest, NegateInequalities) {
  LinearConstraint le = LinearConstraint::Le(X(), C(1));
  auto neg = le.Negate();
  ASSERT_EQ(neg.size(), 1u);
  EXPECT_EQ(neg[0].op(), RelOp::kLt);
  for (const Rational& v : {Rational(0), Rational(1), Rational(2)}) {
    Assignment a{{x_, v}};
    EXPECT_NE(le.Eval(a).value(), neg[0].Eval(a).value());
  }
}

TEST_F(LinearConstraintTest, NegateDisequality) {
  auto neg = LinearConstraint::Neq(X(), C(1)).Negate();
  ASSERT_EQ(neg.size(), 1u);
  EXPECT_EQ(neg[0], LinearConstraint::Eq(X(), C(1)));
}

TEST_F(LinearConstraintTest, Closure) {
  EXPECT_EQ(LinearConstraint::Lt(X(), C(1)).Closure().op(), RelOp::kLe);
  EXPECT_EQ(LinearConstraint::Le(X(), C(1)).Closure().op(), RelOp::kLe);
  EXPECT_EQ(LinearConstraint::Eq(X(), C(1)).Closure().op(), RelOp::kEq);
}

TEST_F(LinearConstraintTest, SubstituteRenormalizes) {
  // x + y <= 3 with x := 3 - y becomes constant-true 0 <= 0.
  LinearConstraint c = LinearConstraint::Le(X() + Y(), C(3));
  LinearConstraint out = c.Substitute(x_, C(3) - Y());
  EXPECT_EQ(out.ConstantTruth(), Truth::kTrue);
}

TEST_F(LinearConstraintTest, ToStringMovesConstantRight) {
  EXPECT_EQ(LinearConstraint::Le(X() + Y() + C(-3), C(0)).ToString(),
            "x + y <= 3");
  EXPECT_EQ(LinearConstraint::Eq(X(), C(6)).ToString(), "x = 6");
}

}  // namespace
}  // namespace lyric
