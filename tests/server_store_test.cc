// Store-backed serving: a Server with ServerOptions::store attached
// must make every acknowledged schema mutation durable BEFORE the
// client sees the response (commit-before-ack), hydrate byte-identically
// on reopen, and degrade to read-only — reads keep serving, writes shed
// typed errors — when the store fails underneath it.
//
// The crash half of the story (kill -9 mid-commit against a real
// lyric_serverd process) lives in server_chaos_test.cc; this binary
// covers the same write-through path in process, where failures can be
// injected deterministically.

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "office/office_db.h"
#include "storage/file_io.h"
#include "storage/paged_store.h"
#include "storage/serializer.h"
#include "util/fault.h"

namespace lyric {
namespace {

using storage::PagedStore;
using storage::StoreOptions;

std::string FreshStorePath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  ::unlink(path.c_str());
  ::unlink(PagedStore::WalPathFor(path).c_str());
  return path;
}

Database MakeOfficeDb() {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  EXPECT_TRUE(ids.ok()) << ids.status();
  return db;
}

net::ClientOptions PlainClient(uint16_t port) {
  net::ClientOptions opts;
  opts.port = port;
  opts.threads = 1;
  return opts;
}

const char kViewQuery[] =
    "CREATE VIEW Near_Wall AS SUBCLASS OF Object_in_Room "
    "SELECT O FROM Object_in_Room O "
    "WHERE O.location[L] and L(x, y) |= x <= 12";
const char kReadQuery[] = "SELECT O FROM Object_in_Room O";
const char kViewReadQuery[] = "SELECT V FROM Near_Wall V";

// The ENOSPC fault gate (fault_gate_server_enospc in tests/CMakeLists.txt):
// ctest runs this whole binary with LYRIC_STORAGE_FULL_AT in the
// environment. This test is defined BEFORE every other test here so the
// once-per-process env parse — the path an operator would actually hit —
// arms the budget, not ArmDiskFullForTesting; it skips in normal runs.
// The fixture tests below disarm in SetUp, so the burned budget cannot
// bleed into them.
TEST(ServerStoreGate, EnvArmedFullDiskDegradesToReadOnlyTyped) {
  if (std::getenv("LYRIC_STORAGE_FULL_AT") == nullptr) {
    GTEST_SKIP() << "gate-only: runs via fault_gate_server_enospc";
  }
  const std::string path = FreshStorePath("srv_store_env_enospc.lyricpg");
  // The gate budget covers boot + the office seed + a few commits.
  auto opened = PagedStore::Open({.path = path});
  ASSERT_TRUE(opened.ok()) << "gate budget too small for boot: "
                           << opened.status().ToString();
  auto store = std::move(*opened);
  Database db = MakeOfficeDb();
  ASSERT_TRUE(store->ImportDatabase(db).ok())
      << "gate budget too small for the seed";

  net::ServerOptions sopts;
  sopts.store = store.get();
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());
  net::Client client(PlainClient(server.port()));

  // CREATE views until the "disk" fills. The crossing commit must come
  // back as the typed kResourceExhausted — never an abort, never a
  // silent ack — and flip the server read-only.
  bool exhausted = false;
  for (int i = 0; i < 200 && !exhausted; ++i) {
    Result<net::QueryResponse> resp = client.Execute(
        "CREATE VIEW Gate_V" + std::to_string(i) +
        " AS SUBCLASS OF Object_in_Room SELECT O FROM Object_in_Room O "
        "WHERE O.location[L] and L(x, y) |= x <= " + std::to_string(i % 20));
    ASSERT_TRUE(resp.ok()) << resp.status();
    if (resp->status.ok()) continue;
    EXPECT_TRUE(resp->status.IsResourceExhausted()) << resp->status;
    exhausted = true;
  }
  ASSERT_TRUE(exhausted) << "gate budget never crossed — lower "
                         << "LYRIC_STORAGE_FULL_AT in the ctest entry";
  EXPECT_TRUE(server.read_only());
  EXPECT_EQ(client.last_server_health(), net::HealthState::kReadOnly);
  // Reads keep serving on the degraded server.
  Result<net::QueryResponse> read = client.Execute(kReadQuery);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->status.ok()) << read->status;

  server.Stop();
  storage::ArmDiskFullForTesting(-1);
  (void)store->Close();
}

class ServerStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fault::ConfigureForTesting(""));
    storage::ArmDiskFullForTesting(-1);
  }
  void TearDown() override {
    ASSERT_TRUE(fault::ConfigureForTesting(""));
    storage::ArmDiskFullForTesting(-1);
  }
};

TEST_F(ServerStoreTest, AcknowledgedCreateSurvivesReopenByteIdentically) {
  const std::string path = FreshStorePath("srv_store_roundtrip.lyricpg");

  // Boot 1: seed the store with the office database, serve, CREATE.
  {
    auto store = PagedStore::Open({.path = path}).value();
    Database db = MakeOfficeDb();
    ASSERT_TRUE(store->ImportDatabase(db).ok());

    net::ServerOptions sopts;
    sopts.exec_threads = 2;
    sopts.store = store.get();
    net::Server server(&db, sopts);
    ASSERT_TRUE(server.Start().ok());

    net::Client client(PlainClient(server.port()));
    Result<net::QueryResponse> created = client.Execute(kViewQuery);
    ASSERT_TRUE(created.ok()) << created.status();
    ASSERT_TRUE(created->status.ok()) << created->status;
    // The response was acknowledged, so the mutation is already
    // durable: the server stays healthy (kServing on the frame).
    EXPECT_EQ(client.last_server_health(), net::HealthState::kServing);
    server.Stop();
    ASSERT_TRUE(store->Close().ok());
  }

  // Boot 2: hydrate from the store; the view must be there, and the
  // whole database must dump byte-identically to an in-memory replica
  // that ran the same CREATE.
  {
    auto store = PagedStore::Open({.path = path}).value();
    Database recovered;
    ASSERT_TRUE(store->ExportToDatabase(&recovered).ok());

    Database replica = MakeOfficeDb();
    {
      Evaluator ev(&replica, EvalOptions{});
      auto res = ev.Execute(kViewQuery);
      ASSERT_TRUE(res.ok()) << res.status();
    }
    auto recovered_dump = Serializer::DumpDatabase(recovered);
    auto replica_dump = Serializer::DumpDatabase(replica);
    ASSERT_TRUE(recovered_dump.ok());
    ASSERT_TRUE(replica_dump.ok());
    EXPECT_EQ(*recovered_dump, *replica_dump);

    // And it serves: the hydrated database answers through a server.
    net::ServerOptions sopts;
    sopts.store = store.get();
    net::Server server(&recovered, sopts);
    ASSERT_TRUE(server.Start().ok());
    net::Client client(PlainClient(server.port()));
    Result<net::QueryResponse> read = client.Execute(kViewReadQuery);
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_TRUE(read->status.ok()) << read->status;
    server.Stop();
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST_F(ServerStoreTest, FailedWriteThroughDegradesToReadOnly) {
  const std::string path = FreshStorePath("srv_store_degrade.lyricpg");
  auto store = PagedStore::Open({.path = path}).value();
  Database db = MakeOfficeDb();
  ASSERT_TRUE(store->ImportDatabase(db).ok());

  net::ServerOptions sopts;
  sopts.exec_threads = 2;
  sopts.store = store.get();
  sopts.read_only_retry_after_ms = 321;
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());
  net::Client client(PlainClient(server.port()));

  // The disk fills up under the server. The CREATE evaluates fine in
  // memory, but the write-through commit fails — the client must get
  // the typed storage error, NOT an acknowledgement.
  storage::ArmDiskFullForTesting(0);
  Result<net::QueryResponse> created = client.Execute(kViewQuery);
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_TRUE(created->status.IsResourceExhausted()) << created->status;
  EXPECT_NE(created->status.message().find("write-through"),
            std::string::npos)
      << created->status;

  // The server is now read-only: frames say so...
  EXPECT_TRUE(server.read_only());
  EXPECT_EQ(client.last_server_health(), net::HealthState::kReadOnly);

  // ...reads keep serving...
  Result<net::QueryResponse> read = client.Execute(kReadQuery);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->status.ok()) << read->status;

  // ...and further writes shed BEFORE evaluation with the typed
  // kUnavailable + the configured retry-after hint.
  Result<net::QueryResponse> shed = client.Execute(
      "CREATE VIEW Second AS SUBCLASS OF Object_in_Room "
      "SELECT O FROM Object_in_Room O");
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_TRUE(shed->status.IsUnavailable()) << shed->status;
  EXPECT_NE(shed->status.message().find("read-only"), std::string::npos);
  EXPECT_EQ(shed->status.retry_after_ms(), 321u);

  // HEALTH reports the degraded state with the cause.
  net::HealthInfo info;
  ASSERT_TRUE(client.Health(&info).ok());
  EXPECT_EQ(info.state, net::HealthState::kReadOnly);
  EXPECT_TRUE(info.read_only);
  EXPECT_TRUE(info.store_backed);
  // The detail names the poisoning cause, so an operator reading a
  // HEALTH probe knows WHY the server degraded.
  EXPECT_NE(info.detail.find("no space left"), std::string::npos)
      << info.detail;

  server.Stop();
  storage::ArmDiskFullForTesting(-1);
  (void)store->Close();

  // The acknowledged prefix — the seed, NOT the failed CREATE — is what
  // reopen recovers: the client was never told the view existed.
  auto reopened = PagedStore::Open({.path = path}).value();
  Database recovered;
  ASSERT_TRUE(reopened->ExportToDatabase(&recovered).ok());
  Database replica = MakeOfficeDb();
  auto recovered_dump = Serializer::DumpDatabase(recovered);
  auto replica_dump = Serializer::DumpDatabase(replica);
  ASSERT_TRUE(recovered_dump.ok());
  ASSERT_TRUE(replica_dump.ok());
  EXPECT_EQ(*recovered_dump, *replica_dump);
  ASSERT_TRUE(reopened->Close().ok());
}

TEST_F(ServerStoreTest, BootOnPoisonedStoreStartsReadOnly) {
  const std::string path = FreshStorePath("srv_store_boot_ro.lyricpg");
  auto store = PagedStore::Open({.path = path}).value();
  Database db = MakeOfficeDb();
  ASSERT_TRUE(store->ImportDatabase(db).ok());

  // Poison the store before the server boots (failed commit).
  storage::ArmDiskFullForTesting(0);
  ASSERT_TRUE(store->Put("x", "y").ok());
  ASSERT_FALSE(store->Commit().ok());
  storage::ArmDiskFullForTesting(-1);
  ASSERT_FALSE(store->poison_status().ok());

  net::ServerOptions sopts;
  sopts.store = store.get();
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.read_only());

  net::Client client(PlainClient(server.port()));
  Result<net::QueryResponse> shed = client.Execute(kViewQuery);
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_TRUE(shed->status.IsUnavailable()) << shed->status;
  Result<net::QueryResponse> read = client.Execute(kReadQuery);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->status.ok()) << read->status;

  server.Stop();
  (void)store->Close();
}

TEST_F(ServerStoreTest, HealthProbeReportsRecoveryAndLoad) {
  const std::string path = FreshStorePath("srv_store_health.lyricpg");

  // Create some WAL history so reopen has transactions to replay: the
  // seed plus one schema mutation synced the way a live server would.
  {
    auto store = PagedStore::Open({.path = path}).value();
    Database db = MakeOfficeDb();
    ASSERT_TRUE(store->ImportDatabase(db).ok());
    {
      Evaluator ev(&db, EvalOptions{});
      auto res = ev.Execute(kViewQuery);
      ASSERT_TRUE(res.ok()) << res.status();
    }
    ASSERT_TRUE(store->SyncDatabase(db).ok());
    // No Checkpoint/clean Close: leave the WAL populated. Closing via
    // destructor checkpoints best-effort, so drop it abruptly instead.
    store.release();  // leak on purpose: simulate an unclean exit
  }

  auto store = PagedStore::Open({.path = path}).value();
  Database db;
  ASSERT_TRUE(store->ExportToDatabase(&db).ok());

  net::ServerOptions sopts;
  sopts.store = store.get();
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());

  net::Client client(PlainClient(server.port()));
  net::HealthInfo info;
  ASSERT_TRUE(client.Health(&info).ok());
  EXPECT_EQ(info.state, net::HealthState::kServing);
  EXPECT_TRUE(info.store_backed);
  EXPECT_FALSE(info.read_only);
  EXPECT_FALSE(info.draining);
  EXPECT_EQ(info.recovered_txns, store->recovery().committed_txns);
  EXPECT_EQ(info.recovered_images, store->recovery().images_applied);
  EXPECT_GE(info.sessions_opened, 1u);
  EXPECT_EQ(info.in_flight_queries, 0u);

  // The probe's own frame carries the health byte too.
  EXPECT_EQ(client.last_server_health(), net::HealthState::kServing);

  server.Stop();
  ASSERT_TRUE(store->Close().ok());
}

// Same ENOSPC story as the gate test at the top of this file, but armed
// in process so it runs (deterministically) in every invocation, env or
// not.
TEST_F(ServerStoreTest, EnospcSurfacesThroughServerTyped) {
  const std::string path = FreshStorePath("srv_store_enospc.lyricpg");
  auto store = PagedStore::Open({.path = path}).value();
  Database db = MakeOfficeDb();
  ASSERT_TRUE(store->ImportDatabase(db).ok());

  net::ServerOptions sopts;
  sopts.store = store.get();
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());
  net::Client client(PlainClient(server.port()));

  storage::ArmDiskFullForTesting(64);  // a commit needs far more
  Result<net::QueryResponse> created = client.Execute(kViewQuery);
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_TRUE(created->status.IsResourceExhausted()) << created->status;
  storage::ArmDiskFullForTesting(-1);

  EXPECT_TRUE(server.read_only());
  server.Stop();
  (void)store->Close();
}

}  // namespace
}  // namespace lyric
