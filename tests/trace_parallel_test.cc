// Cross-thread tracing tests: worker lanes, per-thread tids in the Chrome
// export, and the evaluator integration — a threads=4 parallel scan must
// produce a trace whose worker spans carry distinct tids (the acceptance
// gate for multi-thread trace support).

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

// Extracts every distinct "tid": N value from a Chrome trace JSON.
std::set<int> TidsIn(const std::string& json) {
  std::set<int> tids;
  size_t pos = 0;
  while ((pos = json.find("\"tid\": ", pos)) != std::string::npos) {
    pos += 7;
    tids.insert(std::atoi(json.c_str() + pos));
  }
  return tids;
}

TEST(WorkerTraceTest, NullCollectorIsNoOp) {
  obs::WorkerTraceScope scope(nullptr);
  EXPECT_EQ(obs::TraceCollector::Current(), nullptr);
  obs::Span span("orphan");  // must not record anywhere
}

TEST(WorkerTraceTest, WorkerLanesRecordPerThreadSpans) {
  obs::TraceCollector collector;
  {
    obs::ScopedTraceSession session(&collector);
    obs::Span main_span("main_work");
    std::vector<std::thread> workers;
    for (size_t w = 0; w < 4; ++w) {
      workers.emplace_back([&collector, w] {
        obs::WorkerTraceScope scope(&collector);
        EXPECT_EQ(obs::TraceCollector::Current(), &collector);
        obs::Span chunk("chunk", w);
        obs::Span inner("where");
      });
    }
    for (std::thread& t : workers) t.join();
  }
  // Main tree holds only the main thread's spans.
  EXPECT_EQ(collector.root().CountChildren("main_work"), 1u);
  EXPECT_EQ(collector.root().CountChildren("chunk[0]"), 0u);
  // Each worker got its own lane with its spans nested correctly.
  auto lanes = collector.worker_lanes();
  ASSERT_EQ(lanes.size(), 4u);
  std::set<std::thread::id> lane_threads;
  size_t chunks_seen = 0;
  for (const auto& lane : lanes) {
    lane_threads.insert(lane.thread);
    ASSERT_EQ(lane.spans->children.size(), 1u);
    const obs::SpanNode& chunk = *lane.spans->children[0];
    EXPECT_EQ(chunk.name.rfind("chunk[", 0), 0u);
    EXPECT_NE(chunk.FindChild("where"), nullptr);
    ++chunks_seen;
  }
  EXPECT_EQ(chunks_seen, 4u);
  EXPECT_EQ(lane_threads.size(), 4u);  // four distinct recording threads

  // Chrome export: main thread is tid 1, workers get 2..5.
  std::string json = collector.ToChromeTraceJson();
  std::set<int> tids = TidsIn(json);
  EXPECT_EQ(tids, (std::set<int>{1, 2, 3, 4, 5}));
  EXPECT_NE(json.find("\"name\": \"chunk[2]\""), std::string::npos);

  // Pretty export labels the worker sections.
  std::string pretty = collector.ToPrettyString();
  EXPECT_NE(pretty.find("[worker tid=2]"), std::string::npos);
  EXPECT_NE(pretty.find("[worker tid=5]"), std::string::npos);
}

TEST(WorkerTraceTest, SameThreadLanesShareTid) {
  obs::TraceCollector collector;
  {
    obs::ScopedTraceSession session(&collector);
    std::thread worker([&collector] {
      // Two scopes on the same OS thread (a pool thread running two
      // chunk tasks) are two lanes but one tid in the export.
      {
        obs::WorkerTraceScope scope(&collector);
        obs::Span chunk("chunk", 0);
      }
      {
        obs::WorkerTraceScope scope(&collector);
        obs::Span chunk("chunk", 1);
      }
    });
    worker.join();
  }
  EXPECT_EQ(collector.worker_lanes().size(), 2u);
  std::set<int> tids = TidsIn(collector.ToChromeTraceJson());
  EXPECT_EQ(tids, (std::set<int>{1, 2}));
}

// The acceptance gate: a parallel evaluation at threads=4 produces a
// trace with worker-thread spans under tids distinct from the query
// thread's tid 1.
TEST(WorkerTraceTest, ParallelQueryTraceHasWorkerTids) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  ASSERT_TRUE(ids.ok()) << ids.status();
  // 40 extra objects -> 41 Object_in_Room bindings, comfortably more
  // than one chunk per worker.
  ASSERT_TRUE(office::AddScaledDesks(&db, 40, /*seed=*/7).ok());

  EvalOptions opts;
  opts.collect_trace = true;
  opts.threads = 4;
  Evaluator ev(&db, opts);
  auto r = ev.Execute(std::string("SELECT O FROM Object_in_Room O"));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_NE(r->profile(), nullptr);
  const obs::TraceCollector& trace = r->profile()->trace;

  // Worker lanes exist and carry chunk spans with the per-binding stages.
  auto lanes = trace.worker_lanes();
  ASSERT_FALSE(lanes.empty());
  size_t chunk_spans = 0;
  for (const auto& lane : lanes) {
    for (const auto& span : lane.spans->children) {
      if (span->name.rfind("chunk[", 0) == 0) ++chunk_spans;
    }
  }
  EXPECT_GT(chunk_spans, 0u);

  // The Chrome export shows the query thread plus at least one distinct
  // worker tid (>= 2 distinct tids total; exactly how many workers ran
  // chunks is scheduling-dependent).
  std::string json = trace.ToChromeTraceJson();
  std::set<int> tids = TidsIn(json);
  EXPECT_GE(tids.size(), 2u) << json.substr(0, 500);
  EXPECT_TRUE(tids.count(1) == 1) << "query thread tid missing";
  EXPECT_TRUE(*tids.rbegin() >= 2) << "no worker tid in trace";
  // Merge-side spans stay on the query thread; worker chunks appear.
  EXPECT_NE(json.find("\"name\": \"chunk_merge\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"chunk["), std::string::npos);

  // Serial run of the same query records no worker lanes.
  EvalOptions serial = opts;
  serial.threads = 1;
  Evaluator sev(&db, serial);
  auto sr = sev.Execute(std::string("SELECT O FROM Object_in_Room O"));
  ASSERT_TRUE(sr.ok()) << sr.status();
  ASSERT_NE(sr->profile(), nullptr);
  EXPECT_TRUE(sr->profile()->trace.worker_lanes().empty());
  EXPECT_EQ(TidsIn(sr->profile()->trace.ToChromeTraceJson()),
            (std::set<int>{1}));
}

}  // namespace
}  // namespace lyric
