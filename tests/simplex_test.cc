#include "constraint/simplex.h"

#include <random>

#include <gtest/gtest.h>

namespace lyric {
namespace {

class SimplexTest : public ::testing::Test {
 protected:
  VarId x_ = Variable::Intern("x");
  VarId y_ = Variable::Intern("y");
  VarId z_ = Variable::Intern("z");

  LinearExpr X() { return LinearExpr::Var(x_); }
  LinearExpr Y() { return LinearExpr::Var(y_); }
  LinearExpr Z() { return LinearExpr::Var(z_); }
  LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

  Conjunction Box01() {
    Conjunction c;
    c.Add(LinearConstraint::Ge(X(), C(0)));
    c.Add(LinearConstraint::Le(X(), C(1)));
    c.Add(LinearConstraint::Ge(Y(), C(0)));
    c.Add(LinearConstraint::Le(Y(), C(1)));
    return c;
  }
};

TEST_F(SimplexTest, EmptyConjunctionIsSat) {
  EXPECT_TRUE(Simplex::IsSatisfiable(Conjunction()).value());
}

TEST_F(SimplexTest, FalseIsUnsat) {
  EXPECT_FALSE(Simplex::IsSatisfiable(Conjunction::False()).value());
}

TEST_F(SimplexTest, BoxIsSat) {
  EXPECT_TRUE(Simplex::IsSatisfiable(Box01()).value());
}

TEST_F(SimplexTest, ContradictoryBoundsUnsat) {
  Conjunction c;
  c.Add(LinearConstraint::Ge(X(), C(2)));
  c.Add(LinearConstraint::Le(X(), C(1)));
  EXPECT_FALSE(Simplex::IsSatisfiable(c).value());
}

TEST_F(SimplexTest, FreeVariablesCanBeNegative) {
  Conjunction c;
  c.Add(LinearConstraint::Le(X(), C(-5)));
  EXPECT_TRUE(Simplex::IsSatisfiable(c).value());
  auto pt = Simplex::FindPoint(c).value();
  ASSERT_TRUE(pt.has_value());
  EXPECT_LE(pt->at(x_), Rational(-5));
}

TEST_F(SimplexTest, StrictBoundaryOnlyIsUnsat) {
  // x >= 1 and x < 1: only the boundary point of the closure exists.
  Conjunction c;
  c.Add(LinearConstraint::Ge(X(), C(1)));
  c.Add(LinearConstraint::Lt(X(), C(1)));
  EXPECT_FALSE(Simplex::IsSatisfiable(c).value());
}

TEST_F(SimplexTest, StrictOpenIntervalIsSat) {
  Conjunction c;
  c.Add(LinearConstraint::Gt(X(), C(0)));
  c.Add(LinearConstraint::Lt(X(), C(1)));
  EXPECT_TRUE(Simplex::IsSatisfiable(c).value());
  auto pt = Simplex::FindPoint(c).value();
  ASSERT_TRUE(pt.has_value());
  EXPECT_GT(pt->at(x_), Rational(0));
  EXPECT_LT(pt->at(x_), Rational(1));
}

TEST_F(SimplexTest, DisequalityOnPointUnsat) {
  // x = 3 and x != 3.
  Conjunction c;
  c.Add(LinearConstraint::Eq(X(), C(3)));
  c.Add(LinearConstraint::Neq(X(), C(3)));
  EXPECT_FALSE(Simplex::IsSatisfiable(c).value());
}

TEST_F(SimplexTest, DisequalityInsideSegmentSat) {
  // 0 <= x <= 1 and x != 1/2: still satisfiable, witness avoids 1/2.
  Conjunction c;
  c.Add(LinearConstraint::Ge(X(), C(0)));
  c.Add(LinearConstraint::Le(X(), C(1)));
  c.Add(LinearConstraint::Neq(X().Scale(Rational(2)), C(1)));
  EXPECT_TRUE(Simplex::IsSatisfiable(c).value());
  auto pt = Simplex::FindPoint(c).value();
  ASSERT_TRUE(pt.has_value());
  EXPECT_NE(pt->at(x_), Rational(1, 2));
  EXPECT_TRUE(c.Eval(*pt).value());
}

TEST_F(SimplexTest, ManyDisequalitiesRepaired) {
  Conjunction c = Box01();
  c.Add(LinearConstraint::Eq(Y(), C(0)));
  // Exclude x = 0, x = 1/2, x = 1: all on the witness segment.
  c.Add(LinearConstraint::Neq(X(), C(0)));
  c.Add(LinearConstraint::Neq(X().Scale(Rational(2)), C(1)));
  c.Add(LinearConstraint::Neq(X(), C(1)));
  auto pt = Simplex::FindPoint(c).value();
  ASSERT_TRUE(pt.has_value());
  EXPECT_TRUE(c.Eval(*pt).value());
}

TEST_F(SimplexTest, MaximizeOverBox) {
  // max x + y over the unit box = 2 at (1, 1).
  auto sol = Simplex::Maximize(X() + Y(), Box01()).value();
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.value, Rational(2));
  EXPECT_TRUE(sol.attained);
  EXPECT_EQ(sol.point.at(x_), Rational(1));
  EXPECT_EQ(sol.point.at(y_), Rational(1));
}

TEST_F(SimplexTest, MinimizeOverBox) {
  auto sol = Simplex::Minimize(X() + Y(), Box01()).value();
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.value, Rational(0));
  EXPECT_TRUE(sol.attained);
}

TEST_F(SimplexTest, MaximizeUnbounded) {
  Conjunction c;
  c.Add(LinearConstraint::Ge(X(), C(0)));
  auto sol = Simplex::Maximize(X(), c).value();
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST_F(SimplexTest, MaximizeInfeasible) {
  auto sol = Simplex::Maximize(X(), Conjunction::False()).value();
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST_F(SimplexTest, SupremumNotAttainedOnOpenSet) {
  // max x over x < 1: supremum 1, not attained.
  Conjunction c;
  c.Add(LinearConstraint::Lt(X(), C(1)));
  c.Add(LinearConstraint::Ge(X(), C(0)));
  auto sol = Simplex::Maximize(X(), c).value();
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.value, Rational(1));
  EXPECT_FALSE(sol.attained);
}

TEST_F(SimplexTest, RationalOptimum) {
  // max x s.t. 3x <= 2  ->  2/3.
  Conjunction c;
  c.Add(LinearConstraint::Le(X().Scale(Rational(3)), C(2)));
  auto sol = Simplex::Maximize(X(), c).value();
  EXPECT_EQ(sol.value, Rational(2, 3));
}

TEST_F(SimplexTest, ObjectiveWithConstantOffset) {
  // max (x + 10) over x <= 5.
  Conjunction c;
  c.Add(LinearConstraint::Le(X(), C(5)));
  auto sol = Simplex::Maximize(X() + C(10), c).value();
  EXPECT_EQ(sol.value, Rational(15));
}

TEST_F(SimplexTest, EqualitiesHandled) {
  // x + y = 3, x - y = 1 -> unique point (2, 1).
  Conjunction c;
  c.Add(LinearConstraint::Eq(X() + Y(), C(3)));
  c.Add(LinearConstraint::Eq(X() - Y(), C(1)));
  auto sol = Simplex::Maximize(X(), c).value();
  EXPECT_EQ(sol.value, Rational(2));
  EXPECT_EQ(sol.point.at(y_), Rational(1));
  auto sol2 = Simplex::Minimize(X(), c).value();
  EXPECT_EQ(sol2.value, Rational(2));
}

TEST_F(SimplexTest, DegenerateRedundantRows) {
  // Same constraint three times plus an implied one; simplex must not cycle.
  Conjunction c;
  c.Add(LinearConstraint::Le(X() + Y(), C(1)));
  c.Add(LinearConstraint::Le(X() + Y(), C(1)));
  c.Add(LinearConstraint::Le(X().Scale(Rational(2)) + Y().Scale(Rational(2)),
                             C(2)));
  c.Add(LinearConstraint::Ge(X(), C(0)));
  c.Add(LinearConstraint::Ge(Y(), C(0)));
  auto sol = Simplex::Maximize(X() + Y(), c).value();
  EXPECT_EQ(sol.value, Rational(1));
}

TEST_F(SimplexTest, EntailsZero) {
  // On {x + y = 3, x - y = 1}, x - 2 == 0 everywhere.
  Conjunction c;
  c.Add(LinearConstraint::Eq(X() + Y(), C(3)));
  c.Add(LinearConstraint::Eq(X() - Y(), C(1)));
  EXPECT_TRUE(Simplex::EntailsZero(c, X() - C(2)).value());
  EXPECT_FALSE(Simplex::EntailsZero(c, X() - C(1)).value());
  EXPECT_FALSE(Simplex::EntailsZero(Box01(), X()).value());
  // Vacuous entailment on the empty set.
  EXPECT_TRUE(Simplex::EntailsZero(Conjunction::False(), X()).value());
}

TEST_F(SimplexTest, ThreeVarLp) {
  // max x + 2y + 3z s.t. x+y+z <= 10, x,y,z in [0, 4].
  Conjunction c;
  for (const LinearExpr& v : {X(), Y(), Z()}) {
    c.Add(LinearConstraint::Ge(v, C(0)));
    c.Add(LinearConstraint::Le(v, C(4)));
  }
  c.Add(LinearConstraint::Le(X() + Y() + Z(), C(10)));
  auto sol =
      Simplex::Maximize(X() + Y().Scale(Rational(2)) + Z().Scale(Rational(3)),
                        c)
          .value();
  // Optimal: z=4, y=4, x=2 -> 2 + 8 + 12 = 22.
  EXPECT_EQ(sol.value, Rational(22));
  EXPECT_TRUE(sol.attained);
}

// Property sweep: on random bounded polytopes that contain a known point,
// satisfiability must hold and the optimum must weakly dominate the value
// at the known point.
class SimplexRandomized : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomized, OptimumDominatesInteriorPoint) {
  std::mt19937_64 rng(GetParam());
  VarId vars[3] = {Variable::Intern("rx"), Variable::Intern("ry"),
                   Variable::Intern("rz")};
  auto rand_coeff = [&]() {
    return Rational(static_cast<int64_t>(rng() % 11) - 5);
  };
  // Known point p.
  Assignment p;
  for (VarId v : vars) p[v] = Rational(static_cast<int64_t>(rng() % 7) - 3);
  Conjunction c;
  for (int i = 0; i < 8; ++i) {
    LinearExpr e;
    for (VarId v : vars) e.AddTerm(v, rand_coeff());
    // Make the constraint loose at p: e <= e(p) + slackness.
    Rational at_p = e.Eval(p).value();
    Rational slack(static_cast<int64_t>(rng() % 5));
    c.Add(LinearConstraint::Le(e, LinearExpr::Constant(at_p + slack)));
  }
  // Bound the region so optima exist.
  for (VarId v : vars) {
    c.Add(LinearConstraint::Ge(LinearExpr::Var(v),
                               LinearExpr::Constant(Rational(-100))));
    c.Add(LinearConstraint::Le(LinearExpr::Var(v),
                               LinearExpr::Constant(Rational(100))));
  }
  ASSERT_TRUE(Simplex::IsSatisfiable(c).value());
  LinearExpr obj;
  for (VarId v : vars) obj.AddTerm(v, rand_coeff());
  auto sol = Simplex::Maximize(obj, c).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_GE(sol.value, obj.Eval(p).value());
  // The reported point must satisfy the (closed) constraints and achieve
  // the reported value.
  EXPECT_EQ(obj.Eval(sol.point).value(), sol.value);
  EXPECT_TRUE(c.Eval(sol.point).value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomized,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace lyric
