#include "constraint/fourier_motzkin.h"

#include <random>

#include <gtest/gtest.h>

#include "constraint/simplex.h"

namespace lyric {
namespace {

class FourierMotzkinTest : public ::testing::Test {
 protected:
  VarId x_ = Variable::Intern("x");
  VarId y_ = Variable::Intern("y");
  VarId z_ = Variable::Intern("z");

  LinearExpr X() { return LinearExpr::Var(x_); }
  LinearExpr Y() { return LinearExpr::Var(y_); }
  LinearExpr Z() { return LinearExpr::Var(z_); }
  LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }
};

TEST_F(FourierMotzkinTest, EliminateThroughEquality) {
  // y = x + 1, 0 <= y <= 3; eliminating y gives -1 <= x <= 2.
  Conjunction c;
  c.Add(LinearConstraint::Eq(Y(), X() + C(1)));
  c.Add(LinearConstraint::Ge(Y(), C(0)));
  c.Add(LinearConstraint::Le(Y(), C(3)));
  Conjunction out = FourierMotzkin::EliminateVariable(c, y_).value();
  EXPECT_FALSE(out.FreeVars().count(y_));
  EXPECT_TRUE(out.Eval({{x_, Rational(0)}}).value());
  EXPECT_TRUE(out.Eval({{x_, Rational(-1)}}).value());
  EXPECT_TRUE(out.Eval({{x_, Rational(2)}}).value());
  EXPECT_FALSE(out.Eval({{x_, Rational(-2)}}).value());
  EXPECT_FALSE(out.Eval({{x_, Rational(3)}}).value());
}

TEST_F(FourierMotzkinTest, EliminateByCombination) {
  // x <= y, y <= z: eliminating y yields x <= z.
  Conjunction c;
  c.Add(LinearConstraint::Le(X(), Y()));
  c.Add(LinearConstraint::Le(Y(), Z()));
  Conjunction out = FourierMotzkin::EliminateVariable(c, y_).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.atoms()[0], LinearConstraint::Le(X(), Z()));
}

TEST_F(FourierMotzkinTest, StrictnessPropagates) {
  // x < y, y <= z  =>  x < z.
  Conjunction c;
  c.Add(LinearConstraint::Lt(X(), Y()));
  c.Add(LinearConstraint::Le(Y(), Z()));
  Conjunction out = FourierMotzkin::EliminateVariable(c, y_).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.atoms()[0].op(), RelOp::kLt);
}

TEST_F(FourierMotzkinTest, UnboundedSideDropsOut) {
  // Only lower bounds on y: eliminating y keeps just the unrelated atom.
  Conjunction c;
  c.Add(LinearConstraint::Ge(Y(), X()));
  c.Add(LinearConstraint::Le(X(), C(5)));
  Conjunction out = FourierMotzkin::EliminateVariable(c, y_).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.atoms()[0], LinearConstraint::Le(X(), C(5)));
}

TEST_F(FourierMotzkinTest, DisequalityOnEliminatedVarRejected) {
  Conjunction c;
  c.Add(LinearConstraint::Neq(Y(), C(0)));
  auto r = FourierMotzkin::EliminateVariable(c, y_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(FourierMotzkinTest, InfeasibleDetectedDuringElimination) {
  // x <= y <= x - 1 is infeasible; elimination exposes 0 <= -1.
  Conjunction c;
  c.Add(LinearConstraint::Le(X(), Y()));
  c.Add(LinearConstraint::Le(Y(), X() - C(1)));
  Conjunction out = FourierMotzkin::EliminateVariable(c, y_).value();
  EXPECT_EQ(out, Conjunction::False());
}

TEST_F(FourierMotzkinTest, ProjectOntoOneVarLpInterval) {
  // Triangle 0 <= x, 0 <= y, x + y <= 4: projection on x is [0, 4].
  Conjunction c;
  c.Add(LinearConstraint::Ge(X(), C(0)));
  c.Add(LinearConstraint::Ge(Y(), C(0)));
  c.Add(LinearConstraint::Le(X() + Y(), C(4)));
  Conjunction out = FourierMotzkin::ProjectOntoAtMostOne(c, x_).value();
  EXPECT_TRUE(out.Eval({{x_, Rational(0)}}).value());
  EXPECT_TRUE(out.Eval({{x_, Rational(4)}}).value());
  EXPECT_FALSE(out.Eval({{x_, Rational(5)}}).value());
  EXPECT_FALSE(out.Eval({{x_, Rational(-1)}}).value());
}

TEST_F(FourierMotzkinTest, ProjectOntoOneVarOpenEndpoint) {
  // x < y < 1, x >= 0: projection on x is [0, 1).
  Conjunction c;
  c.Add(LinearConstraint::Lt(X(), Y()));
  c.Add(LinearConstraint::Lt(Y(), C(1)));
  c.Add(LinearConstraint::Ge(X(), C(0)));
  Conjunction out = FourierMotzkin::ProjectOntoAtMostOne(c, x_).value();
  EXPECT_TRUE(out.Eval({{x_, Rational(0)}}).value());
  EXPECT_TRUE(out.Eval({{x_, Rational(1, 2)}}).value());
  EXPECT_FALSE(out.Eval({{x_, Rational(1)}}).value());
}

TEST_F(FourierMotzkinTest, ProjectOntoOneVarPointInterval) {
  // x = 3 after eliminating y from {x = y, y = 3}.
  Conjunction c;
  c.Add(LinearConstraint::Eq(X(), Y()));
  c.Add(LinearConstraint::Eq(Y(), C(3)));
  Conjunction out = FourierMotzkin::ProjectOntoAtMostOne(c, x_).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.atoms()[0], LinearConstraint::Eq(X(), C(3)));
}

TEST_F(FourierMotzkinTest, ProjectOntoZeroVars) {
  Conjunction sat;
  sat.Add(LinearConstraint::Le(X(), C(1)));
  EXPECT_TRUE(FourierMotzkin::ProjectOntoAtMostOne(sat, std::nullopt)
                  .value()
                  .IsTrue());
  Conjunction unsat;
  unsat.Add(LinearConstraint::Le(X(), C(0)));
  unsat.Add(LinearConstraint::Ge(X(), C(1)));
  EXPECT_EQ(FourierMotzkin::ProjectOntoAtMostOne(unsat, std::nullopt).value(),
            Conjunction::False());
}

TEST_F(FourierMotzkinTest, ProjectOntoUnconstrainedVar) {
  Conjunction c;
  c.Add(LinearConstraint::Le(Y(), C(1)));
  Conjunction out = FourierMotzkin::ProjectOntoAtMostOne(c, x_).value();
  EXPECT_TRUE(out.IsTrue());
}

TEST_F(FourierMotzkinTest, ProjectOntoCarriesKeptVarDisequality) {
  // 0 <= x <= 1, y = x, x != 1/2 kept as a puncture.
  Conjunction c;
  c.Add(LinearConstraint::Ge(X(), C(0)));
  c.Add(LinearConstraint::Le(X(), C(1)));
  c.Add(LinearConstraint::Eq(Y(), X()));
  c.Add(LinearConstraint::Neq(X().Scale(Rational(2)), C(1)));
  Conjunction out = FourierMotzkin::ProjectOntoAtMostOne(c, x_).value();
  EXPECT_FALSE(out.Eval({{x_, Rational(1, 2)}}).value());
  EXPECT_TRUE(out.Eval({{x_, Rational(1, 4)}}).value());
}

TEST_F(FourierMotzkinTest, GeneralProjectTwoOfThree) {
  // Box 0<=x,y,z<=1 with x + y + z <= 3/2: project onto (x, y).
  Conjunction c;
  for (const LinearExpr& v : {X(), Y(), Z()}) {
    c.Add(LinearConstraint::Ge(v, C(0)));
    c.Add(LinearConstraint::Le(v, C(1)));
  }
  c.Add(LinearConstraint::Le(X() + Y() + Z(),
                             LinearExpr::Constant(Rational(3, 2))));
  Conjunction out = FourierMotzkin::ProjectOnto(c, VarSet{x_, y_}).value();
  EXPECT_FALSE(out.FreeVars().count(z_));
  // (1, 1/2): need z <= 0 and z >= 0 -> z = 0 works.
  EXPECT_TRUE(out.Eval({{x_, Rational(1)}, {y_, Rational(1, 2)}}).value());
  // (1, 1): x+y = 2 > 3/2 even with z = 0 -> excluded.
  EXPECT_FALSE(out.Eval({{x_, Rational(1)}, {y_, Rational(1)}}).value());
}

// Property: projection is sound and complete on sampled points — a kept
// point satisfies the projection iff some value of the eliminated variable
// extends it into the original system.
class FmSoundness : public ::testing::TestWithParam<int> {};

TEST_P(FmSoundness, ProjectionMatchesExistentialTruth) {
  std::mt19937_64 rng(GetParam() * 7919);
  VarId x = Variable::Intern("px");
  VarId y = Variable::Intern("py");
  VarId e = Variable::Intern("pe");
  auto coeff = [&]() {
    return Rational(static_cast<int64_t>(rng() % 7) - 3);
  };
  Conjunction c;
  for (int i = 0; i < 6; ++i) {
    LinearExpr expr;
    expr.AddTerm(x, coeff());
    expr.AddTerm(y, coeff());
    expr.AddTerm(e, coeff());
    expr.AddConstant(Rational(static_cast<int64_t>(rng() % 9) - 4));
    c.Add(LinearConstraint(expr, (rng() % 3 == 0) ? RelOp::kLt : RelOp::kLe));
  }
  Conjunction projected =
      FourierMotzkin::EliminateVariable(c, e).value();
  for (int t = 0; t < 25; ++t) {
    Assignment pt{{x, Rational(static_cast<int64_t>(rng() % 11) - 5)},
                  {y, Rational(static_cast<int64_t>(rng() % 11) - 5)}};
    bool in_projection = projected.Eval(pt).value();
    // exists e . c(pt, e)?
    Conjunction grounded = c.Substitute(x, LinearExpr::Constant(pt[x]))
                               .Substitute(y, LinearExpr::Constant(pt[y]));
    bool extends = Simplex::IsSatisfiable(grounded).value();
    EXPECT_EQ(in_projection, extends)
        << "seed=" << GetParam() << " point x=" << pt[x] << " y=" << pt[y]
        << "\n c = " << c.ToString()
        << "\n proj = " << projected.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmSoundness, ::testing::Range(1, 16));

// Property: the LP-interval projection agrees with iterated FM when both
// apply.
class FmVsLp : public ::testing::TestWithParam<int> {};

TEST_P(FmVsLp, IntervalProjectionMatchesIteratedFm) {
  std::mt19937_64 rng(GetParam() * 104729);
  VarId x = Variable::Intern("qx");
  VarId a = Variable::Intern("qa");
  VarId b = Variable::Intern("qb");
  auto coeff = [&]() {
    return Rational(static_cast<int64_t>(rng() % 5) - 2);
  };
  Conjunction c;
  // Keep the system feasible by making all constraints loose at origin.
  for (int i = 0; i < 5; ++i) {
    LinearExpr expr;
    expr.AddTerm(x, coeff());
    expr.AddTerm(a, coeff());
    expr.AddTerm(b, coeff());
    c.Add(LinearConstraint::Le(
        expr, LinearExpr::Constant(
                  Rational(static_cast<int64_t>(rng() % 5)))));
  }
  Conjunction via_lp =
      FourierMotzkin::ProjectOntoAtMostOne(c, x).value();
  Conjunction via_fm = FourierMotzkin::ProjectOnto(c, VarSet{x}).value();
  for (int64_t v = -8; v <= 8; ++v) {
    Assignment pt{{x, Rational(v)}};
    EXPECT_EQ(via_lp.Eval(pt).value(), via_fm.Eval(pt).value())
        << "x=" << v << "\n c = " << c.ToString()
        << "\n lp = " << via_lp.ToString()
        << "\n fm = " << via_fm.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmVsLp, ::testing::Range(1, 16));

}  // namespace
}  // namespace lyric
