#include "object/method.h"

#include <gtest/gtest.h>

#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

class MethodTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
    ASSERT_TRUE(RegisterBuiltinCstMethods(&db_).ok());
  }

  Oid ExtentOid() {
    return db_.GetAttribute(ids_.standard_desk, "extent").value().scalar();
  }

  Database db_;
  office::OfficeIds ids_;
};

TEST_F(MethodTest, DynamicClassOf) {
  EXPECT_EQ(db_.DynamicClassOf(ids_.standard_desk).value(), "Desk");
  EXPECT_EQ(db_.DynamicClassOf(Oid::Int(3)).value(), "int");
  EXPECT_EQ(db_.DynamicClassOf(Oid::Str("x")).value(), "string");
  EXPECT_EQ(db_.DynamicClassOf(ExtentOid()).value(), "CST(2)");
  EXPECT_TRUE(db_.DynamicClassOf(Oid::Symbol("ghost")).status().IsNotFound());
}

TEST_F(MethodTest, BuiltinDimension) {
  Value v = db_.InvokeMethod(ExtentOid(), "dimension", {}).value();
  EXPECT_EQ(v, Value::Scalar(Oid::Int(2)));
}

TEST_F(MethodTest, BuiltinSatisfiableAndBounded) {
  EXPECT_EQ(db_.InvokeMethod(ExtentOid(), "satisfiable", {}).value(),
            Value::Scalar(Oid::Bool(true)));
  EXPECT_EQ(db_.InvokeMethod(ExtentOid(), "bounded", {}).value(),
            Value::Scalar(Oid::Bool(true)));
  // An unbounded object: w >= 0 over one dimension.
  VarId w = Variable::Intern("w");
  Conjunction half;
  half.Add(LinearConstraint::Ge(LinearExpr::Var(w),
                                LinearExpr::Constant(Rational(0))));
  Oid half_oid =
      db_.InternCst(CstObject::FromConjunction({w}, half).value()).value();
  EXPECT_EQ(db_.InvokeMethod(half_oid, "bounded", {}).value(),
            Value::Scalar(Oid::Bool(false)));
}

TEST_F(MethodTest, BuiltinConjoinIntersects) {
  // extent ([-4,4]x[-2,2]) conjoin drawer extent ([-1,1]^2) = [-1,1]^2.
  Oid drawer_extent =
      db_.GetAttribute(ids_.the_drawer, "extent").value().scalar();
  Value v =
      db_.InvokeMethod(ExtentOid(), "conjoin", {drawer_extent}).value();
  CstObject out = db_.GetCst(v.scalar()).value();
  CstObject expected = office::BoxExtent(1, 1);
  EXPECT_TRUE(out.EquivalentTo(expected).value());
}

TEST_F(MethodTest, BuiltinEntails) {
  Oid drawer_extent =
      db_.GetAttribute(ids_.the_drawer, "extent").value().scalar();
  EXPECT_EQ(
      db_.InvokeMethod(drawer_extent, "entails", {ExtentOid()}).value(),
      Value::Scalar(Oid::Bool(true)));
  EXPECT_EQ(
      db_.InvokeMethod(ExtentOid(), "entails", {drawer_extent}).value(),
      Value::Scalar(Oid::Bool(false)));
}

TEST_F(MethodTest, BuiltinComplement) {
  Value v = db_.InvokeMethod(ExtentOid(), "complement", {}).value();
  CstObject out = db_.GetCst(v.scalar()).value();
  EXPECT_FALSE(out.Contains({Rational(0), Rational(0)}).value());
  EXPECT_TRUE(out.Contains({Rational(9), Rational(0)}).value());
}

TEST_F(MethodTest, UnknownMethodNotFound) {
  EXPECT_TRUE(db_.InvokeMethod(ExtentOid(), "teleport", {})
                  .status()
                  .IsNotFound());
  // Arity mismatch is also a resolution failure.
  EXPECT_TRUE(db_.InvokeMethod(ExtentOid(), "dimension", {Oid::Int(1)})
                  .status()
                  .IsNotFound());
}

TEST_F(MethodTest, UserMethodWithInheritance) {
  // Register footprint_area on Office_Object; Desk inherits it.
  ASSERT_TRUE(db_.methods()
                  .Register("Office_Object", "footprint_area",
                            MethodSignature{{}, kRealClass, false},
                            [](Database* d, const Oid& self,
                               const std::vector<Oid>&) -> Result<Value> {
                              LYRIC_ASSIGN_OR_RETURN(
                                  Value ext, d->GetAttribute(self, "extent"));
                              LYRIC_ASSIGN_OR_RETURN(
                                  CstObject obj, d->GetCst(ext.scalar()));
                              LYRIC_ASSIGN_OR_RETURN(auto box,
                                                     obj.BoundingBox());
                              Rational area =
                                  (*box[0].upper - *box[0].lower) *
                                  (*box[1].upper - *box[1].lower);
                              return Value::Scalar(Oid::Real(area));
                            })
                  .ok());
  Value v =
      db_.InvokeMethod(ids_.standard_desk, "footprint_area", {}).value();
  EXPECT_EQ(v, Value::Scalar(Oid::Real(Rational(32))));  // 8 x 4.
}

TEST_F(MethodTest, PolymorphicDispatchOnArguments) {
  // scale(int) and scale(string) on Desk: first matching signature wins.
  auto reg = [&](const std::string& arg_cls, const std::string& tag) {
    ASSERT_TRUE(db_.methods()
                    .Register("Desk", "scale",
                              MethodSignature{{arg_cls}, kStringClass, false},
                              [tag](Database*, const Oid&,
                                    const std::vector<Oid>&)
                                  -> Result<Value> {
                                return Value::Scalar(Oid::Str(tag));
                              })
                    .ok());
  };
  reg(kIntClass, "by-int");
  reg(kStringClass, "by-string");
  EXPECT_EQ(db_.InvokeMethod(ids_.standard_desk, "scale", {Oid::Int(2)})
                .value(),
            Value::Scalar(Oid::Str("by-int")));
  EXPECT_EQ(db_.InvokeMethod(ids_.standard_desk, "scale", {Oid::Str("x")})
                .value(),
            Value::Scalar(Oid::Str("by-string")));
}

TEST_F(MethodTest, ResultSignatureEnforced) {
  ASSERT_TRUE(db_.methods()
                  .Register("Desk", "lies",
                            MethodSignature{{}, kIntClass, false},
                            [](Database*, const Oid&, const std::vector<Oid>&)
                                -> Result<Value> {
                              return Value::Scalar(Oid::Str("not an int"));
                            })
                  .ok());
  auto r = db_.InvokeMethod(ids_.standard_desk, "lies", {});
  EXPECT_TRUE(r.status().IsTypeError());
}

TEST_F(MethodTest, ZeroAryMethodInPathExpression) {
  // "An attribute is regarded as a 0-ary method": E.dimension works in a
  // query path once E is bound to a CST oid.
  Evaluator ev(&db_);
  ResultSet r = ev.Execute(
                      "SELECT E.dimension FROM Desk X WHERE X.extent[E]")
                    .value();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], Oid::Int(2));
}

TEST_F(MethodTest, MethodInWhereComparison) {
  Evaluator ev(&db_);
  ResultSet r = ev.Execute(
                      "SELECT X FROM Desk X "
                      "WHERE X.extent[E] and E.dimension = 2")
                    .value();
  EXPECT_EQ(r.size(), 1u);
  ResultSet r2 = ev.Execute(
                       "SELECT X FROM Desk X "
                       "WHERE X.extent[E] and E.dimension = 3")
                     .value();
  EXPECT_EQ(r2.size(), 0u);
}

TEST_F(MethodTest, VisibleMethodsIncludesInherited) {
  auto names = db_.methods().VisibleMethods(db_.schema(), "CST(2)");
  std::set<std::string> set(names.begin(), names.end());
  EXPECT_TRUE(set.count("dimension"));
  EXPECT_TRUE(set.count("conjoin"));
}

}  // namespace
}  // namespace lyric
