// Shed-path tests for lyric_serverd: when the server's scheduler is at
// capacity, the wire must carry the typed kUnavailable with the
// scheduler's retry-after hint, and a client armed with the
// deterministic RetryPolicy must consume the hint and eventually
// succeed. This is the PR-5 admission contract made end-to-end visible.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "exec/scheduler.h"
#include "net/client.h"
#include "net/server.h"
#include "office/office_db.h"
#include "util/fault.h"

namespace lyric {
namespace {

Database MakeDb(int scaled_desks) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  EXPECT_TRUE(ids.ok()) << ids.status();
  if (scaled_desks > 0) {
    Status st = office::AddScaledDesks(&db, scaled_desks, /*seed=*/7);
    EXPECT_TRUE(st.ok()) << st;
  }
  return db;
}

const char* kFastQuery = "SELECT O FROM Object_in_Room O";

// Deterministic staging: one lane, a one-deep queue. The test holds the
// lane and parks a waiter directly through the scheduler the server
// shares — a ticket held here is indistinguishable from a running query,
// and no assumption about query duration is needed. The next wire
// arrival MUST shed with a positive retry-after hint.
TEST(ServerShed, ShedCarriesRetryAfterOverTheWire) {
  Database db = MakeDb(4);
  exec::SchedulerLimits limits;
  limits.max_concurrent = 1;
  limits.queue_capacity = 1;
  exec::QueryScheduler scheduler(limits);

  net::ServerOptions sopts;
  sopts.exec_threads = 4;
  sopts.eval.threads = 1;
  sopts.scheduler = &scheduler;
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());

  // Seed the scheduler's EWMA so the hint has a real duration behind it
  // (this also proves the wiring works before admission is saturated).
  {
    net::ClientOptions copts;
    copts.port = server.port();
    net::Client warmup(copts);
    Result<net::QueryResponse> resp = warmup.Execute(kFastQuery);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_TRUE(resp->status.ok()) << resp->status;
  }

  // Occupy the only lane.
  Result<exec::AdmissionTicket> lane = scheduler.Admit({});
  ASSERT_TRUE(lane.ok()) << lane.status();

  // Fill the one-deep queue with a parked waiter.
  std::atomic<bool> waiter_ok{false};
  std::thread waiter([&] {
    Result<exec::AdmissionTicket> ticket = scheduler.Admit({});
    waiter_ok = ticket.ok();
  });
  ASSERT_TRUE(scheduler.WaitForWaiters(1, /*timeout_ms=*/30000))
      << "waiter never queued";

  // Queue full: this arrival sheds, and the shed must reach this side of
  // the wire as a typed kUnavailable carrying the hint.
  net::ClientOptions no_retry;
  no_retry.port = server.port();
  net::Client shed_client(no_retry);
  Result<net::QueryResponse> shed = shed_client.Execute(kFastQuery);
  ASSERT_TRUE(shed.ok()) << "shed must be a response, not a transport error: "
                         << shed.status();
  EXPECT_TRUE(shed->status.IsUnavailable()) << shed->status;
  EXPECT_GT(shed->status.retry_after_ms(), 0u);
  EXPECT_NE(shed->status.message().find("admission"), std::string::npos);
  EXPECT_EQ(shed_client.stats().shed_responses, 1u);

  // Free the lane; the parked waiter gets the grant.
  lane->Release();
  waiter.join();
  EXPECT_TRUE(waiter_ok);

  // With admission unsaturated the very same no-retry client succeeds —
  // the shed above was admission control, not a broken server.
  Result<net::QueryResponse> after = shed_client.Execute(kFastQuery);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(after->status.ok()) << after->status;
  server.Stop();
}

// With retries armed, forced sheds (the scheduler fault site, probability
// 1 for the first attempts is too strict — use 0.6 so a retry can land)
// must be absorbed: the client backs off by at least the server's hint
// and eventually succeeds.
TEST(ServerShed, RetryPolicyConsumesHintsAndSucceeds) {
  Database db = MakeDb(4);
  exec::SchedulerLimits limits;
  limits.max_concurrent = 2;
  exec::QueryScheduler scheduler(limits);

  net::ServerOptions sopts;
  sopts.eval.threads = 1;
  sopts.scheduler = &scheduler;
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());

  // Force sheds on ~60% of admissions, deterministically seeded.
  ASSERT_TRUE(fault::ConfigureForTesting("scheduler:0.6:21"));

  net::ClientOptions copts;
  copts.port = server.port();
  copts.retry.max_retries = 10;
  copts.retry.base_backoff_ms = 1;
  copts.retry.seed = 3;
  net::Client client(copts);
  int succeeded = 0;
  for (int i = 0; i < 12; ++i) {
    Result<net::QueryResponse> resp = client.Execute(kFastQuery);
    ASSERT_TRUE(resp.ok()) << resp.status();
    if (resp->status.ok()) ++succeeded;
  }
  fault::ConfigureForTesting("");

  EXPECT_EQ(succeeded, 12) << "retries failed to absorb forced sheds";
  EXPECT_GT(client.stats().shed_responses, 0u)
      << "fault site never fired; the test exercised nothing";
  // Every shed consumed backs off by at least the 1ms-clamped hint.
  EXPECT_GE(client.stats().backoff_ms_total, client.stats().shed_responses);
  server.Stop();
}

}  // namespace
}  // namespace lyric
