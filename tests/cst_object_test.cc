#include "constraint/cst_object.h"

#include <gtest/gtest.h>

namespace lyric {
namespace {

class CstObjectTest : public ::testing::Test {
 protected:
  VarId w_ = Variable::Intern("w");
  VarId z_ = Variable::Intern("z");
  VarId u_ = Variable::Intern("u");
  VarId v_ = Variable::Intern("v");
  VarId x_ = Variable::Intern("x");
  VarId y_ = Variable::Intern("y");

  LinearExpr E(VarId v) { return LinearExpr::Var(v); }
  LinearExpr C(int64_t c) { return LinearExpr::Constant(Rational(c)); }

  // The paper's standard-desk extent: ((w,z) | -4<=w<=4 and -2<=z<=2).
  CstObject DeskExtent() {
    Conjunction c;
    c.Add(LinearConstraint::Ge(E(w_), C(-4)));
    c.Add(LinearConstraint::Le(E(w_), C(4)));
    c.Add(LinearConstraint::Ge(E(z_), C(-2)));
    c.Add(LinearConstraint::Le(E(z_), C(2)));
    return CstObject::FromConjunction({w_, z_}, c).value();
  }

  // The translation: ((w,z,x,y,u,v) | u = x + w and v = y + z).
  CstObject Translation() {
    Conjunction c;
    c.Add(LinearConstraint::Eq(E(u_), E(x_) + E(w_)));
    c.Add(LinearConstraint::Eq(E(v_), E(y_) + E(z_)));
    return CstObject::FromConjunction({w_, z_, x_, y_, u_, v_}, c).value();
  }
};

TEST_F(CstObjectTest, ConstructionAndFamily) {
  CstObject desk = DeskExtent();
  EXPECT_EQ(desk.Dimension(), 2u);
  EXPECT_EQ(desk.Family(), ConstraintFamily::kConjunctive);
}

TEST_F(CstObjectTest, BodyOutsideInterfaceRejected) {
  Conjunction c;
  c.Add(LinearConstraint::Le(E(w_) + E(u_), C(0)));
  auto r = CstObject::FromConjunction({w_}, c);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(CstObjectTest, RepeatedInterfaceRejected) {
  auto r = CstObject::FromConjunction({w_, w_}, Conjunction());
  EXPECT_FALSE(r.ok());
}

TEST_F(CstObjectTest, ContainsPoint) {
  CstObject desk = DeskExtent();
  EXPECT_TRUE(desk.Contains({Rational(0), Rational(0)}).value());
  EXPECT_TRUE(desk.Contains({Rational(4), Rational(-2)}).value());
  EXPECT_FALSE(desk.Contains({Rational(5), Rational(0)}).value());
  EXPECT_FALSE(desk.Contains({Rational(0)}).ok());  // Arity error.
}

TEST_F(CstObjectTest, RenameToIsInvocation) {
  // DeskExtent as E(a, b).
  VarId a = Variable::Intern("a");
  VarId b = Variable::Intern("b");
  CstObject renamed = DeskExtent().RenameTo({a, b}).value();
  EXPECT_EQ(renamed.Interface(), (std::vector<VarId>{a, b}));
  EXPECT_TRUE(renamed.Contains({Rational(4), Rational(2)}).value());
  EXPECT_FALSE(DeskExtent().RenameTo({a}).ok());  // Arity mismatch.
}

TEST_F(CstObjectTest, PaperGlobalExtentPipeline) {
  // The §4.1 flagship example: conjoin extent, translation, and x=6, y=4;
  // project onto (u, v); expect exactly 2 <= u <= 10 and 2 <= v <= 6.
  CstObject e = DeskExtent();
  CstObject d = Translation();
  Conjunction at;
  at.Add(LinearConstraint::Eq(E(x_), C(6)));
  at.Add(LinearConstraint::Eq(E(y_), C(4)));
  CstObject pos = CstObject::FromConjunction({x_, y_}, at).value();
  CstObject combined = e.Conjoin(d).value().Conjoin(pos).value();
  EXPECT_EQ(combined.Dimension(), 6u);
  // Unrestricted projection absorbs into existential family...
  CstObject lazy = combined.Project({u_, v_}).value();
  EXPECT_EQ(lazy.Family(), ConstraintFamily::kExistentialConjunctive);
  EXPECT_TRUE(lazy.Contains({Rational(2), Rational(2)}).value());
  EXPECT_TRUE(lazy.Contains({Rational(10), Rational(6)}).value());
  EXPECT_FALSE(lazy.Contains({Rational(1), Rational(2)}).value());
  // ...while eager projection materializes the box the paper prints.
  CstObject eager = combined.ProjectEager({u_, v_}).value();
  Conjunction expected;
  expected.Add(LinearConstraint::Ge(E(u_), C(2)));
  expected.Add(LinearConstraint::Le(E(u_), C(10)));
  expected.Add(LinearConstraint::Ge(E(v_), C(2)));
  expected.Add(LinearConstraint::Le(E(v_), C(6)));
  CstObject expected_obj =
      CstObject::FromConjunction({u_, v_}, expected).value();
  EXPECT_TRUE(eager.EquivalentTo(expected_obj).value());
}

TEST_F(CstObjectTest, ConjoinSharedVariablesIdentify) {
  // Conjoin uses variable names: extent(w,z) and translation(w,z,...)
  // share w,z — exactly the paper's implicit schema equality.
  CstObject both = DeskExtent().Conjoin(Translation()).value();
  EXPECT_EQ(both.Dimension(), 6u);
  // (w,z,x,y,u,v) = (4,2,6,4,10,6) is on the boundary.
  EXPECT_TRUE(both.Contains({Rational(4), Rational(2), Rational(6),
                             Rational(4), Rational(10), Rational(6)})
                  .value());
  // Breaking u = x + w excludes the point.
  EXPECT_FALSE(both.Contains({Rational(4), Rational(2), Rational(6),
                              Rational(4), Rational(11), Rational(6)})
                   .value());
}

TEST_F(CstObjectTest, DisjoinMakesDisjunctive) {
  CstObject a = DeskExtent();
  CstObject b = DeskExtent().RenameTo({w_, z_}).value();
  CstObject u = a.Disjoin(b).value();
  EXPECT_TRUE(FamilyHasDisjunction(u.Family()) ||
              u.Family() == ConstraintFamily::kConjunctive)
      << ConstraintFamilyToString(u.Family());
}

TEST_F(CstObjectTest, NegateConjunctiveOnly) {
  CstObject desk = DeskExtent();
  CstObject neg = desk.Negate().value();
  EXPECT_EQ(neg.Family(), ConstraintFamily::kDisjunctive);
  EXPECT_FALSE(neg.Contains({Rational(0), Rational(0)}).value());
  EXPECT_TRUE(neg.Contains({Rational(9), Rational(0)}).value());
  // Negating the disjunctive result is rejected.
  EXPECT_FALSE(neg.Negate().ok());
}

TEST_F(CstObjectTest, RestrictedProjectionStaysConjunctive) {
  // Dropping one of two dims: keep <= 1 -> LP interval path.
  CstObject desk = DeskExtent();
  CstObject onto_w = desk.Project({w_}).value();
  EXPECT_EQ(onto_w.Family(), ConstraintFamily::kConjunctive);
  EXPECT_TRUE(onto_w.Contains({Rational(-4)}).value());
  EXPECT_FALSE(onto_w.Contains({Rational(5)}).value());
}

TEST_F(CstObjectTest, ProjectionCanAddFreshDimensions) {
  // §3.1: "a projection can add new free variables".
  CstObject desk = DeskExtent();
  VarId t = Variable::Intern("t_fresh");
  CstObject lifted = desk.Project({w_, z_, t}).value();
  EXPECT_EQ(lifted.Dimension(), 3u);
  EXPECT_TRUE(
      lifted.Contains({Rational(0), Rational(0), Rational(1000)}).value());
}

TEST_F(CstObjectTest, MaximizeOverObject) {
  CstObject desk = DeskExtent();
  auto sol = desk.Maximize(E(w_) + E(z_)).value();
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.value, Rational(6));
  EXPECT_TRUE(sol.attained);
  EXPECT_EQ(sol.point.at(w_), Rational(4));
  auto mn = desk.Minimize(E(z_)).value();
  EXPECT_EQ(mn.value, Rational(-2));
}

TEST_F(CstObjectTest, MaximizeThroughQuantifier) {
  // max u over exists w,z,x,y . (extent and translation and x=6, y=4).
  CstObject combined = DeskExtent().Conjoin(Translation()).value();
  Conjunction at;
  at.Add(LinearConstraint::Eq(E(x_), C(6)));
  at.Add(LinearConstraint::Eq(E(y_), C(4)));
  combined =
      combined.Conjoin(CstObject::FromConjunction({x_, y_}, at).value())
          .value();
  CstObject projected = combined.Project({u_, v_}).value();
  auto sol = projected.Maximize(E(u_)).value();
  EXPECT_EQ(sol.value, Rational(10));
}

TEST_F(CstObjectTest, EntailsPositional) {
  // Small box entails desk extent after positional alignment.
  Conjunction small;
  small.Add(LinearConstraint::Ge(E(u_), C(0)));
  small.Add(LinearConstraint::Le(E(u_), C(1)));
  small.Add(LinearConstraint::Ge(E(v_), C(0)));
  small.Add(LinearConstraint::Le(E(v_), C(1)));
  CstObject small_obj = CstObject::FromConjunction({u_, v_}, small).value();
  EXPECT_TRUE(small_obj.Entails(DeskExtent()).value());
  EXPECT_FALSE(DeskExtent().Entails(small_obj).value());
}

TEST_F(CstObjectTest, CanonicalStringNameInvariant) {
  // The same box over different variable names has the same identity.
  Conjunction c1;
  c1.Add(LinearConstraint::Ge(E(w_), C(0)));
  c1.Add(LinearConstraint::Le(E(w_), C(1)));
  Conjunction c2;
  c2.Add(LinearConstraint::Ge(E(u_), C(0)));
  c2.Add(LinearConstraint::Le(E(u_), C(1)));
  CstObject o1 = CstObject::FromConjunction({w_}, c1).value();
  CstObject o2 = CstObject::FromConjunction({u_}, c2).value();
  EXPECT_EQ(o1.CanonicalString().value(), o2.CanonicalString().value());
  // Different point sets get different identities.
  Conjunction c3;
  c3.Add(LinearConstraint::Ge(E(u_), C(0)));
  c3.Add(LinearConstraint::Le(E(u_), C(2)));
  CstObject o3 = CstObject::FromConjunction({u_}, c3).value();
  EXPECT_NE(o1.CanonicalString().value(), o3.CanonicalString().value());
}

TEST_F(CstObjectTest, CanonicalStringDropsInconsistentDisjunct) {
  Conjunction sat;
  sat.Add(LinearConstraint::Ge(E(w_), C(0)));
  Conjunction unsat;
  unsat.Add(LinearConstraint::Ge(E(w_), C(1)));
  unsat.Add(LinearConstraint::Le(E(w_), C(0)));
  CstObject with = CstObject::FromDnf({w_}, Dnf(sat).Or(Dnf(unsat))).value();
  CstObject without = CstObject::FromDnf({w_}, Dnf(sat)).value();
  EXPECT_EQ(with.CanonicalString().value(),
            without.CanonicalString().value());
}

TEST_F(CstObjectTest, ZeroDimensionalObjects) {
  CstObject t;  // TRUE
  EXPECT_EQ(t.Dimension(), 0u);
  EXPECT_TRUE(t.Satisfiable().value());
  EXPECT_TRUE(t.Contains({}).value());
}

}  // namespace
}  // namespace lyric
