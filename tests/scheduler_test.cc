// QueryScheduler unit tests: the admission state machine (admit / queue /
// degrade / shed) exercised deterministically on private scheduler
// instances, plus the RetryPolicy backoff contract. Threaded staging uses
// WaitForWaiters so grant ordering is observed, never raced.

#include "exec/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/fault.h"
#include "util/sync.h"

namespace lyric {
namespace exec {
namespace {

AdmissionRequest Req(std::optional<uint64_t> deadline_ms = std::nullopt,
                     uint64_t memory = 0) {
  AdmissionRequest r;
  r.deadline_ms = deadline_ms;
  r.memory_budget = memory;
  return r;
}

TEST(SchedulerTest, UnlimitedByDefaultAdmitsEverythingUndegraded) {
  QueryScheduler sched;
  std::vector<AdmissionTicket> tickets;
  for (int i = 0; i < 32; ++i) {
    auto t = sched.Admit(Req());
    ASSERT_TRUE(t.ok()) << t.status();
    EXPECT_TRUE(t->admitted());
    EXPECT_FALSE(t->degraded());
    tickets.push_back(std::move(*t));
  }
  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.admitted, 32u);
  EXPECT_EQ(stats.active, 32u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.shed, 0u);
  tickets.clear();
  EXPECT_EQ(sched.stats().active, 0u);
}

TEST(SchedulerTest, TicketReleaseReturnsSlotAndLedger) {
  SchedulerLimits limits;
  limits.max_concurrent = 1;
  limits.max_total_memory = 100;
  QueryScheduler sched(limits);
  {
    auto t = sched.Admit(Req(std::nullopt, 80));
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(sched.stats().active, 1u);
    EXPECT_EQ(sched.stats().reserved_memory, 80u);
    t->Release();
    EXPECT_EQ(sched.stats().active, 0u);
    EXPECT_EQ(sched.stats().reserved_memory, 0u);
    t->Release();  // Idempotent.
    EXPECT_EQ(sched.stats().active, 0u);
  }
  // The slot freed by Release is usable again.
  auto again = sched.Admit(Req(std::nullopt, 100));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(sched.stats().reserved_memory, 100u);
}

TEST(SchedulerTest, OversizedBudgetIsPermanentlyRejected) {
  SchedulerLimits limits;
  limits.max_total_memory = 1000;
  QueryScheduler sched(limits);
  auto t = sched.Admit(Req(std::nullopt, 1001));
  ASSERT_FALSE(t.ok());
  // Could never fit: permanent kResourceExhausted, not a retryable shed.
  EXPECT_TRUE(t.status().IsResourceExhausted()) << t.status();
  EXPECT_FALSE(t.status().IsUnavailable());
  EXPECT_EQ(sched.stats().shed, 0u);
  // Exactly the ledger is fine.
  EXPECT_TRUE(sched.Admit(Req(std::nullopt, 1000)).ok());
}

TEST(SchedulerTest, QueueFullShedsWithRetryAfterHint) {
  SchedulerLimits limits;
  limits.max_concurrent = 1;
  limits.queue_capacity = 0;  // No waiting room at all.
  QueryScheduler sched(limits);
  auto held = sched.Admit(Req());
  ASSERT_TRUE(held.ok());
  auto shed = sched.Admit(Req());
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status();
  EXPECT_GT(shed.status().retry_after_ms(), 0u);
  EXPECT_NE(shed.status().message().find("queue full"), std::string::npos);
  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.expired, 0u);
}

TEST(SchedulerTest, QueueTimeoutShedsAsExpired) {
  SchedulerLimits limits;
  limits.max_concurrent = 1;
  limits.queue_timeout_ms = 20;
  QueryScheduler sched(limits);
  auto held = sched.Admit(Req());
  ASSERT_TRUE(held.ok());
  auto shed = sched.Admit(Req());
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status();
  EXPECT_GT(shed.status().retry_after_ms(), 0u);
  EXPECT_NE(shed.status().message().find("timed out"), std::string::npos);
  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.waiting, 0u);  // The expired waiter removed itself.
}

TEST(SchedulerTest, DeclaredDeadlineExpiresWhileQueued) {
  SchedulerLimits limits;
  limits.max_concurrent = 1;
  QueryScheduler sched(limits);
  auto held = sched.Admit(Req());
  ASSERT_TRUE(held.ok());
  // 15ms declared deadline, slot never frees: shed by own deadline.
  auto shed = sched.Admit(Req(15));
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status();
  EXPECT_NE(shed.status().message().find("deadline expired"),
            std::string::npos);
  EXPECT_EQ(sched.stats().expired, 1u);
}

TEST(SchedulerTest, QueueGrantsAreDegradedAndFifoWithinDeadline) {
  SchedulerLimits limits;
  limits.max_concurrent = 1;
  limits.queue_capacity = 8;
  QueryScheduler sched(limits);
  auto held = sched.Admit(Req());
  ASSERT_TRUE(held.ok());

  lyric::sync::Mutex mu;
  std::vector<int> grant_order;
  std::vector<std::thread> threads;
  // Stage waiters one at a time so arrival order (seq) is deterministic:
  // id 0 — no deadline (sorts last), id 1 — deadline 60s, id 2 — deadline
  // 60s (FIFO after id 1), id 3 — deadline 10s (earliest, granted first).
  const std::optional<uint64_t> deadlines[] = {std::nullopt, 60000, 60000,
                                               10000};
  for (int id = 0; id < 4; ++id) {
    threads.emplace_back([&sched, &mu, &grant_order, id, &deadlines] {
      auto t = sched.Admit(Req(deadlines[id]));
      ASSERT_TRUE(t.ok()) << t.status();
      EXPECT_TRUE(t->degraded());  // Every grant off the queue degrades.
      lyric::sync::MutexLock lock(mu);
      grant_order.push_back(id);
      // Hold briefly so the next grant happens strictly after this record.
      // (Grants only occur on Release; ticket destruction below is that
      // release, after the order entry is committed.)
    });
    ASSERT_TRUE(sched.WaitForWaiters(static_cast<uint64_t>(id + 1), 5000));
  }
  held->Release();  // Start the cascade: one grant per release.
  for (auto& th : threads) th.join();
  EXPECT_EQ(grant_order, (std::vector<int>{3, 1, 2, 0}));
  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.queued, 4u);
  EXPECT_EQ(stats.degraded, 4u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.waiting, 0u);
}

TEST(SchedulerTest, DirectGrantDegradesUnderLedgerPressure) {
  SchedulerLimits limits;
  limits.max_total_memory = 1000;
  QueryScheduler sched(limits);
  auto a = sched.Admit(Req(std::nullopt, 600));  // 600/1000 > half: pressure.
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->degraded());  // First grant saw an empty ledger.
  auto b = sched.Admit(Req(std::nullopt, 100));
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->degraded());
  EXPECT_EQ(sched.stats().degraded, 1u);
}

TEST(SchedulerTest, MemoryGateQueuesUntilLedgerDrains) {
  SchedulerLimits limits;
  limits.max_total_memory = 1000;
  QueryScheduler sched(limits);
  auto big = sched.Admit(Req(std::nullopt, 900));
  ASSERT_TRUE(big.ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    auto t = sched.Admit(Req(std::nullopt, 500));
    ASSERT_TRUE(t.ok()) << t.status();
    EXPECT_EQ(sched.stats().reserved_memory, 500u);  // Ticket still held.
    granted.store(true);
  });
  ASSERT_TRUE(sched.WaitForWaiters(1, 5000));
  EXPECT_FALSE(granted.load());  // 900 + 500 > 1000: must wait.
  big->Release();
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(sched.stats().reserved_memory, 0u);  // Ledger fully drained.
}

TEST(SchedulerTest, FaultSiteForcesShed) {
  ASSERT_TRUE(fault::ConfigureForTesting("scheduler:1.0"));
  QueryScheduler sched;  // No limits: would otherwise always admit.
  auto t = sched.Admit(Req());
  ASSERT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsUnavailable()) << t.status();
  EXPECT_NE(t.status().message().find("injected fault"), std::string::npos);
  ASSERT_TRUE(fault::ConfigureForTesting(""));
  EXPECT_TRUE(sched.Admit(Req()).ok());
}

TEST(SchedulerTest, ConfigureAppliesToFutureAdmissionsAndWakesQueue) {
  SchedulerLimits limits;
  limits.max_concurrent = 1;
  QueryScheduler sched(limits);
  auto held = sched.Admit(Req());
  ASSERT_TRUE(held.ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    auto t = sched.Admit(Req());
    ASSERT_TRUE(t.ok()) << t.status();
    granted.store(true);
  });
  ASSERT_TRUE(sched.WaitForWaiters(1, 5000));
  EXPECT_FALSE(granted.load());
  // Raising the cap grants the queued waiter without any release.
  SchedulerLimits wider;
  wider.max_concurrent = 4;
  sched.Configure(wider);
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(sched.limits().max_concurrent, 4u);
}

// -- RetryPolicy -----------------------------------------------------------

TEST(SchedulerTest, RetryPolicyOnlyRetriesUnavailable) {
  RetryPolicy policy;
  policy.max_retries = 3;
  Status shed = Status::Unavailable("queue full");
  EXPECT_TRUE(policy.ShouldRetry(shed, 0));
  EXPECT_TRUE(policy.ShouldRetry(shed, 2));
  EXPECT_FALSE(policy.ShouldRetry(shed, 3));  // Budget spent.
  EXPECT_FALSE(policy.ShouldRetry(Status::DeadlineExceeded("partial"), 0));
  EXPECT_FALSE(policy.ShouldRetry(Status::ResourceExhausted("budget"), 0));
  EXPECT_FALSE(policy.ShouldRetry(Status::Internal("bug"), 0));
  EXPECT_FALSE(policy.ShouldRetry(Status::OK(), 0));
  RetryPolicy off;  // Default: disabled.
  EXPECT_FALSE(off.ShouldRetry(shed, 0));
}

TEST(SchedulerTest, BackoffIsDeterministicCappedAndJittered) {
  RetryPolicy policy;
  policy.max_retries = 8;
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 100;
  policy.seed = 42;
  Status shed = Status::Unavailable("queue full");
  for (uint32_t k = 0; k < 8; ++k) {
    uint64_t cap = std::min<uint64_t>(10ull << k, 100);
    uint64_t b1 = policy.BackoffMs(k, shed);
    uint64_t b2 = policy.BackoffMs(k, shed);
    EXPECT_EQ(b1, b2) << "attempt " << k;  // Same seed, same backoff.
    EXPECT_GE(b1, std::max<uint64_t>(cap - cap / 2, 1)) << "attempt " << k;
    EXPECT_LE(b1, cap) << "attempt " << k;
  }
  RetryPolicy other = policy;
  other.seed = 43;
  bool any_differ = false;
  for (uint32_t k = 0; k < 8 && !any_differ; ++k) {
    any_differ = policy.BackoffMs(k, shed) != other.BackoffMs(k, shed);
  }
  EXPECT_TRUE(any_differ);  // Jitter actually depends on the seed.
}

TEST(SchedulerTest, BackoffHonorsRetryAfterHint) {
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 4;
  Status hinted = Status::Unavailable("queue full").WithRetryAfter(250);
  EXPECT_GE(policy.BackoffMs(0, hinted), 250u);
  Status unhinted = Status::Unavailable("queue full");
  EXPECT_LE(policy.BackoffMs(0, unhinted), 4u);
}

TEST(SchedulerTest, RunWithRetryRecoversFromTransientsOnly) {
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  int calls = 0;
  Status ok = RunWithRetry(policy, [&calls] {
    ++calls;
    return calls < 3 ? Status::Unavailable("transient") : Status::OK();
  });
  EXPECT_TRUE(ok.ok()) << ok;
  EXPECT_EQ(calls, 3);

  calls = 0;
  Status permanent = RunWithRetry(policy, [&calls] {
    ++calls;
    return Status::ResourceExhausted("budget");
  });
  EXPECT_TRUE(permanent.IsResourceExhausted());
  EXPECT_EQ(calls, 1);  // Never retried.

  calls = 0;
  Status exhausted = RunWithRetry(policy, [&calls] {
    ++calls;
    return Status::Unavailable("always down");
  });
  EXPECT_TRUE(exhausted.IsUnavailable());
  EXPECT_EQ(calls, 6);  // 1 initial + 5 retries.
}

TEST(SchedulerTest, StatusRetryAfterPlumbsThroughCopies) {
  Status s = Status::Unavailable("shed").WithRetryAfter(77);
  EXPECT_EQ(s.retry_after_ms(), 77u);
  Status copy = s;
  EXPECT_EQ(copy.retry_after_ms(), 77u);
  EXPECT_TRUE(copy.IsUnavailable());
  EXPECT_EQ(Status::OK().retry_after_ms(), 0u);
}

}  // namespace
}  // namespace exec
}  // namespace lyric
