#include "algebra/combinators.h"

#include <gtest/gtest.h>

#include "office/office_db.h"

namespace lyric {
namespace {

class AlgebraTest : public ::testing::Test {
 protected:
  VarId w_ = Variable::Intern("w");
  VarId z_ = Variable::Intern("z");

  CstObject Interval(int64_t lo, int64_t hi) {
    Conjunction c;
    c.Add(LinearConstraint::Ge(LinearExpr::Var(w_),
                               LinearExpr::Constant(Rational(lo))));
    c.Add(LinearConstraint::Le(LinearExpr::Var(w_),
                               LinearExpr::Constant(Rational(hi))));
    return CstObject::FromConjunction({w_}, c).value();
  }
};

TEST_F(AlgebraTest, IdentityAndConstant) {
  AValue v(Rational(7));
  EXPECT_EQ(Fp::Identity()(v).value().AsNumber(), Rational(7));
  EXPECT_EQ(Fp::Constant(AValue("x"))(v).value().AsString(), "x");
}

TEST_F(AlgebraTest, ComposeOrder) {
  // (add1 . double)(3) = 7 with add1 = +[id, 1], double = +[id, id].
  AFn add1 = Fp::Compose(
      Fp::NumAdd(), Fp::Construct({Fp::Identity(),
                                   Fp::Constant(AValue(Rational(1)))}));
  AFn dbl = Fp::Compose(Fp::NumAdd(),
                        Fp::Construct({Fp::Identity(), Fp::Identity()}));
  EXPECT_EQ(Fp::Compose(add1, dbl)(AValue(Rational(3))).value().AsNumber(),
            Rational(7));
  EXPECT_EQ(Fp::Compose(dbl, add1)(AValue(Rational(3))).value().AsNumber(),
            Rational(8));
}

TEST_F(AlgebraTest, ApplyToAll) {
  AFn sat_all = Fp::ApplyToAll(Fp::CstSatisfiable());
  AValue::List objs{AValue(Interval(0, 1)), AValue(Interval(5, 3))};
  AValue out = sat_all(AValue(objs)).value();
  ASSERT_TRUE(out.IsList());
  EXPECT_TRUE(out.AsList()[0].AsBool());
  EXPECT_FALSE(out.AsList()[1].AsBool());
  // Non-list input is a type error.
  EXPECT_TRUE(sat_all(AValue(Rational(1))).status().IsTypeError());
}

TEST_F(AlgebraTest, FilterBySatisfiability) {
  AFn keep_nonempty = Fp::Filter(Fp::CstSatisfiable());
  AValue::List objs{AValue(Interval(0, 1)), AValue(Interval(5, 3)),
                    AValue(Interval(2, 9))};
  AValue out = keep_nonempty(AValue(objs)).value();
  EXPECT_EQ(out.AsList().size(), 2u);
}

TEST_F(AlgebraTest, InsertFoldsIntersection) {
  // Fold intersection over [0,10], [3,20], [5,8] -> [5,8].
  AValue::List objs{AValue(Interval(0, 10)), AValue(Interval(3, 20)),
                    AValue(Interval(5, 8))};
  AFn fold = Fp::Insert(Fp::CstConjoinPair(), AValue(Interval(-100, 100)));
  AValue out = fold(AValue(objs)).value();
  ASSERT_TRUE(out.IsCst());
  EXPECT_TRUE(out.AsCst().EquivalentTo(Interval(5, 8)).value());
}

TEST_F(AlgebraTest, SelectIndex) {
  AValue::List pair{AValue(Rational(1)), AValue(Rational(2))};
  EXPECT_EQ(Fp::Select(1)(AValue(pair)).value().AsNumber(), Rational(2));
  EXPECT_TRUE(Fp::Select(5)(AValue(pair)).status().IsInvalidArgument());
}

TEST_F(AlgebraTest, NotCombinator) {
  AFn empty = Fp::Not(Fp::CstSatisfiable());
  EXPECT_FALSE(empty(AValue(Interval(0, 1))).value().AsBool());
  EXPECT_TRUE(empty(AValue(Interval(3, 2))).value().AsBool());
}

TEST_F(AlgebraTest, CstEntailsAndProject) {
  AFn inside = Fp::CstEntails(Interval(0, 10));
  EXPECT_TRUE(inside(AValue(Interval(2, 3))).value().AsBool());
  EXPECT_FALSE(inside(AValue(Interval(2, 30))).value().AsBool());

  // Project the desk extent onto w.
  CstObject extent = office::BoxExtent(4, 2);
  AFn proj = Fp::CstProject({w_});
  AValue out = proj(AValue(extent)).value();
  EXPECT_TRUE(out.AsCst().EquivalentTo(Interval(-4, 4)).value());
}

TEST_F(AlgebraTest, CstOptimize) {
  AFn max_w = Fp::CstMaximize(LinearExpr::Var(w_));
  EXPECT_EQ(max_w(AValue(Interval(2, 9))).value().AsNumber(), Rational(9));
  AFn min_w = Fp::CstMinimize(LinearExpr::Var(w_));
  EXPECT_EQ(min_w(AValue(Interval(2, 9))).value().AsNumber(), Rational(2));
  // Infeasible and unbounded report errors.
  EXPECT_FALSE(max_w(AValue(Interval(9, 2))).ok());
  Conjunction free_c;
  CstObject free_obj = CstObject::FromConjunction({w_}, free_c).value();
  EXPECT_FALSE(max_w(AValue(free_obj)).ok());
}

TEST_F(AlgebraTest, QueryAsComposition) {
  // The SELECT ((w) | E and w >= 0) FROM ... WHERE satisfiable(E) pattern
  // as pure composition: filter satisfiable, conjoin with w >= 0, project.
  Conjunction half;
  half.Add(LinearConstraint::Ge(LinearExpr::Var(w_),
                                LinearExpr::Constant(Rational(0))));
  CstObject half_obj = CstObject::FromConjunction({w_}, half).value();
  AFn pipeline = Fp::Compose(
      Fp::ApplyToAll(Fp::Compose(Fp::CstProject({w_}),
                                 Fp::CstConjoin(half_obj))),
      Fp::Filter(Fp::CstSatisfiable()));
  AValue::List input{AValue(Interval(-3, 2)), AValue(Interval(4, 1)),
                     AValue(Interval(-9, -5))};
  AValue out = pipeline(AValue(input)).value();
  ASSERT_EQ(out.AsList().size(), 2u);
  EXPECT_TRUE(out.AsList()[0].AsCst().EquivalentTo(Interval(0, 2)).value());
  // [-9,-5] intersected with w >= 0 is empty but kept (filter ran first).
  EXPECT_FALSE(out.AsList()[1].AsCst().Satisfiable().value());
}

TEST_F(AlgebraTest, NumCompare) {
  EXPECT_TRUE(Fp::NumCompare("<", Rational(5))(AValue(Rational(3)))
                  .value()
                  .AsBool());
  EXPECT_FALSE(Fp::NumCompare(">=", Rational(5))(AValue(Rational(3)))
                   .value()
                   .AsBool());
  EXPECT_TRUE(Fp::NumCompare("<", Rational(5))(AValue("x")).status()
                  .IsTypeError());
  EXPECT_FALSE(Fp::NumCompare("??", Rational(5))(AValue(Rational(1))).ok());
}

TEST_F(AlgebraTest, ValueToString) {
  EXPECT_EQ(AValue(Rational(1, 2)).ToString(), "1/2");
  EXPECT_EQ(AValue(true).ToString(), "true");
  EXPECT_EQ(AValue("hi").ToString(), "'hi'");
  EXPECT_EQ(AValue(AValue::List{AValue(Rational(1)), AValue(false)})
                .ToString(),
            "[1, false]");
}

}  // namespace
}  // namespace lyric
