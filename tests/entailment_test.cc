#include "constraint/entailment.h"

#include <random>

#include <gtest/gtest.h>

namespace lyric {
namespace {

class EntailmentTest : public ::testing::Test {
 protected:
  VarId x_ = Variable::Intern("x");
  VarId y_ = Variable::Intern("y");

  LinearExpr X() { return LinearExpr::Var(x_); }
  LinearExpr Y() { return LinearExpr::Var(y_); }
  LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

  Conjunction Box(int64_t lo, int64_t hi) {
    Conjunction c;
    c.Add(LinearConstraint::Ge(X(), C(lo)));
    c.Add(LinearConstraint::Le(X(), C(hi)));
    c.Add(LinearConstraint::Ge(Y(), C(lo)));
    c.Add(LinearConstraint::Le(Y(), C(hi)));
    return c;
  }
};

TEST_F(EntailmentTest, SmallerBoxEntailsBigger) {
  EXPECT_TRUE(Entailment::Entails(Dnf(Box(1, 2)), Dnf(Box(0, 3))).value());
  EXPECT_FALSE(Entailment::Entails(Dnf(Box(0, 3)), Dnf(Box(1, 2))).value());
}

TEST_F(EntailmentTest, Reflexive) {
  Dnf d(Box(0, 1));
  EXPECT_TRUE(Entailment::Entails(d, d).value());
}

TEST_F(EntailmentTest, FalseEntailsEverything) {
  EXPECT_TRUE(Entailment::Entails(Dnf::False(), Dnf(Box(0, 1))).value());
  EXPECT_TRUE(Entailment::Entails(Dnf::False(), Dnf::False()).value());
}

TEST_F(EntailmentTest, EverythingEntailsTrue) {
  EXPECT_TRUE(Entailment::Entails(Dnf(Box(0, 1)), Dnf::True()).value());
  EXPECT_FALSE(Entailment::Entails(Dnf::True(), Dnf(Box(0, 1))).value());
}

TEST_F(EntailmentTest, UnionOnRightSide) {
  // [0,1] |= [0,1/2] or [1/2,1] needs genuine case splitting: neither
  // disjunct alone covers the left side.
  Conjunction left;
  left.Add(LinearConstraint::Ge(X(), C(0)));
  left.Add(LinearConstraint::Le(X(), C(1)));
  Conjunction lo;
  lo.Add(LinearConstraint::Ge(X(), C(0)));
  lo.Add(LinearConstraint::Le(X().Scale(Rational(2)), C(1)));
  Conjunction hi;
  hi.Add(LinearConstraint::Ge(X().Scale(Rational(2)), C(1)));
  hi.Add(LinearConstraint::Le(X(), C(1)));
  Dnf rhs = Dnf(lo).Or(Dnf(hi));
  EXPECT_TRUE(Entailment::Entails(Dnf(left), rhs).value());
  // With a gap ([0,1/2) u (1/2,1] minus the point 1/2... make the gap
  // real: [0,1/3] or [2/3,1]) the entailment fails.
  Conjunction lo2;
  lo2.Add(LinearConstraint::Ge(X(), C(0)));
  lo2.Add(LinearConstraint::Le(X().Scale(Rational(3)), C(1)));
  Conjunction hi2;
  hi2.Add(LinearConstraint::Ge(X().Scale(Rational(3)), C(2)));
  hi2.Add(LinearConstraint::Le(X(), C(1)));
  EXPECT_FALSE(Entailment::Entails(Dnf(left), Dnf(lo2).Or(Dnf(hi2))).value());
}

TEST_F(EntailmentTest, EqualityEntailment) {
  // x = 1 |= x >= 0; x >= 0 does not entail x = 1.
  Conjunction eq;
  eq.Add(LinearConstraint::Eq(X(), C(1)));
  Conjunction ge;
  ge.Add(LinearConstraint::Ge(X(), C(0)));
  EXPECT_TRUE(Entailment::Entails(Dnf(eq), Dnf(ge)).value());
  EXPECT_FALSE(Entailment::Entails(Dnf(ge), Dnf(eq)).value());
}

TEST_F(EntailmentTest, StrictVsNonStrict) {
  Conjunction open;
  open.Add(LinearConstraint::Lt(X(), C(1)));
  Conjunction closed;
  closed.Add(LinearConstraint::Le(X(), C(1)));
  EXPECT_TRUE(Entailment::Entails(Dnf(open), Dnf(closed)).value());
  EXPECT_FALSE(Entailment::Entails(Dnf(closed), Dnf(open)).value());
}

TEST_F(EntailmentTest, PaperDrawerCenterExample) {
  // From §4.1: C(p,q) |= p = 0 — "every possible center of the drawer
  // must be in the middle of the desk". Here C is p = 0, -2 <= q <= 0.
  VarId p = Variable::Intern("p");
  VarId q = Variable::Intern("q");
  Conjunction center;
  center.Add(LinearConstraint::Eq(LinearExpr::Var(p), C(0)));
  center.Add(LinearConstraint::Ge(LinearExpr::Var(q), C(-2)));
  center.Add(LinearConstraint::Le(LinearExpr::Var(q), C(0)));
  Conjunction middle;
  middle.Add(LinearConstraint::Eq(LinearExpr::Var(p), C(0)));
  EXPECT_TRUE(Entailment::Entails(Dnf(center), Dnf(middle)).value());
  // The my_desk drawer_center (p = -2) does NOT satisfy it.
  Conjunction off_center;
  off_center.Add(LinearConstraint::Eq(LinearExpr::Var(p), C(-2)));
  off_center.Add(LinearConstraint::Ge(LinearExpr::Var(q), C(-2)));
  off_center.Add(LinearConstraint::Le(LinearExpr::Var(q), C(0)));
  EXPECT_FALSE(Entailment::Entails(Dnf(off_center), Dnf(middle)).value());
}

TEST_F(EntailmentTest, ContainsOverlapsDisjoint) {
  Dnf big(Box(0, 10));
  Dnf small(Box(2, 3));
  Dnf other(Box(20, 30));
  Dnf touching(Box(10, 12));
  EXPECT_TRUE(Entailment::Contains(big, small).value());
  EXPECT_FALSE(Entailment::Contains(small, big).value());
  EXPECT_TRUE(Entailment::Overlaps(big, small).value());
  EXPECT_TRUE(Entailment::Overlaps(big, touching).value());  // Shared edge.
  EXPECT_TRUE(Entailment::Disjoint(big, other).value());
  EXPECT_FALSE(Entailment::Disjoint(big, touching).value());
}

TEST_F(EntailmentTest, EquivalentDifferentSyntax) {
  // {x >= 0, x <= 1} == {2x <= 2, -x <= 0} as point sets.
  Conjunction a;
  a.Add(LinearConstraint::Ge(X(), C(0)));
  a.Add(LinearConstraint::Le(X(), C(1)));
  Conjunction b;
  b.Add(LinearConstraint::Le(X().Scale(Rational(2)), C(2)));
  b.Add(LinearConstraint::Le(-X(), C(0)));
  EXPECT_TRUE(Entailment::Equivalent(Dnf(a), Dnf(b)).value());
}

TEST_F(EntailmentTest, SplitUnionEquivalence) {
  // [0,2] == [0,1] u [1,2].
  Conjunction whole;
  whole.Add(LinearConstraint::Ge(X(), C(0)));
  whole.Add(LinearConstraint::Le(X(), C(2)));
  Conjunction lo;
  lo.Add(LinearConstraint::Ge(X(), C(0)));
  lo.Add(LinearConstraint::Le(X(), C(1)));
  Conjunction hi;
  hi.Add(LinearConstraint::Ge(X(), C(1)));
  hi.Add(LinearConstraint::Le(X(), C(2)));
  EXPECT_TRUE(
      Entailment::Equivalent(Dnf(whole), Dnf(lo).Or(Dnf(hi))).value());
}

// Property: entailment agrees with pointwise implication on a sampled
// grid (soundness direction: if lhs |= rhs then every sampled lhs point
// is an rhs point; completeness spot-check: if entailment fails, a grid
// counterexample often exists, but we only assert soundness).
class EntailmentSoundness : public ::testing::TestWithParam<int> {};

TEST_P(EntailmentSoundness, EntailedMeansPointwise) {
  std::mt19937_64 rng(GetParam() * 31337);
  VarId x = Variable::Intern("ex");
  VarId y = Variable::Intern("ey");
  auto random_dnf = [&]() {
    Dnf d;
    int disjuncts = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < disjuncts; ++i) {
      Conjunction c;
      for (int j = 0; j < 3; ++j) {
        LinearExpr e;
        e.AddTerm(x, Rational(static_cast<int64_t>(rng() % 5) - 2));
        e.AddTerm(y, Rational(static_cast<int64_t>(rng() % 5) - 2));
        e.AddConstant(Rational(static_cast<int64_t>(rng() % 9) - 4));
        c.Add(LinearConstraint(e, RelOp::kLe));
      }
      d.AddDisjunct(std::move(c));
    }
    return d;
  };
  Dnf lhs = random_dnf();
  Dnf rhs = random_dnf();
  bool entails = Entailment::Entails(lhs, rhs).value();
  bool pointwise = true;
  for (int64_t xv = -4; xv <= 4; ++xv) {
    for (int64_t yv = -4; yv <= 4; ++yv) {
      Assignment pt{{x, Rational(xv)}, {y, Rational(yv)}};
      if (lhs.Eval(pt).value() && !rhs.Eval(pt).value()) pointwise = false;
    }
  }
  if (entails) {
    EXPECT_TRUE(pointwise);
  }
  // The converse cannot be asserted from a grid sample alone.
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntailmentSoundness, ::testing::Range(1, 26));

}  // namespace
}  // namespace lyric
