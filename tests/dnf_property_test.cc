// Property suite over DNF boolean laws on randomized formulas: negation,
// disequality splitting, distribution, and De Morgan, all checked
// pointwise on sampled grids.

#include <random>

#include <gtest/gtest.h>

#include "constraint/dnf.h"
#include "constraint/existential.h"

namespace lyric {
namespace {

class DnfProperty : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    rng_.seed(static_cast<uint64_t>(GetParam()) * 48271ull);
    x_ = Variable::Intern("dpx");
    y_ = Variable::Intern("dpy");
  }

  LinearConstraint RandomAtom(bool allow_neq) {
    LinearExpr e;
    e.AddTerm(x_, Rational(static_cast<int64_t>(rng_() % 5) - 2));
    e.AddTerm(y_, Rational(static_cast<int64_t>(rng_() % 5) - 2));
    e.AddConstant(Rational(static_cast<int64_t>(rng_() % 9) - 4));
    switch (rng_() % (allow_neq ? 4 : 3)) {
      case 0:
        return LinearConstraint(e, RelOp::kEq);
      case 1:
        return LinearConstraint(e, RelOp::kLt);
      case 3:
        return LinearConstraint(e, RelOp::kNeq);
      default:
        return LinearConstraint(e, RelOp::kLe);
    }
  }

  Dnf RandomDnf(bool allow_neq) {
    Dnf d;
    int disjuncts = 1 + static_cast<int>(rng_() % 3);
    for (int k = 0; k < disjuncts; ++k) {
      Conjunction c;
      int atoms = 1 + static_cast<int>(rng_() % 3);
      for (int i = 0; i < atoms; ++i) c.Add(RandomAtom(allow_neq));
      d.AddDisjunct(std::move(c));
    }
    return d;
  }

  void ForGrid(const std::function<void(const Assignment&)>& fn) {
    for (int64_t xv = -3; xv <= 3; ++xv) {
      for (int64_t yv = -3; yv <= 3; ++yv) {
        fn(Assignment{{x_, Rational(xv)}, {y_, Rational(yv)}});
      }
    }
  }

  std::mt19937_64 rng_;
  VarId x_, y_;
};

TEST_P(DnfProperty, NegateIsPointwiseComplement) {
  Dnf d = RandomDnf(/*allow_neq=*/true);
  Dnf neg = d.Negate();
  ForGrid([&](const Assignment& pt) {
    EXPECT_NE(d.Eval(pt).value(), neg.Eval(pt).value());
  });
}

TEST_P(DnfProperty, DeMorgan) {
  Dnf a = RandomDnf(false);
  Dnf b = RandomDnf(false);
  // not(a or b) == not(a) and not(b).
  Dnf lhs = a.Or(b).Negate();
  Dnf rhs = a.Negate().And(b.Negate());
  ForGrid([&](const Assignment& pt) {
    EXPECT_EQ(lhs.Eval(pt).value(), rhs.Eval(pt).value());
  });
}

TEST_P(DnfProperty, AndDistributesOverOr) {
  Dnf a = RandomDnf(false);
  Dnf b = RandomDnf(false);
  Dnf c = RandomDnf(false);
  Dnf lhs = a.And(b.Or(c));
  Dnf rhs = a.And(b).Or(a.And(c));
  ForGrid([&](const Assignment& pt) {
    EXPECT_EQ(lhs.Eval(pt).value(), rhs.Eval(pt).value());
  });
}

TEST_P(DnfProperty, SplitDisequalitiesIsPointwiseIdentity) {
  Dnf d = RandomDnf(/*allow_neq=*/true);
  Dnf split = d.SplitDisequalities();
  for (const Conjunction& c : split.disjuncts()) {
    EXPECT_FALSE(c.HasDisequality());
  }
  ForGrid([&](const Assignment& pt) {
    EXPECT_EQ(d.Eval(pt).value(), split.Eval(pt).value());
  });
}

TEST_P(DnfProperty, SatisfiabilityMatchesWitness) {
  Dnf d = RandomDnf(true);
  bool sat = d.Satisfiable().value();
  auto pt = d.FindPoint().value();
  EXPECT_EQ(sat, pt.has_value());
  if (pt.has_value()) {
    EXPECT_TRUE(d.Eval(*pt).value());
  }
}

TEST_P(DnfProperty, ExistentialConjoinSoundOnSamples) {
  // (exists-free wrappers) And = pointwise conjunction on free vars.
  Dnf a = RandomDnf(false);
  Dnf b = RandomDnf(false);
  DisjunctiveExistential ea = DisjunctiveExistential::FromDnf(a);
  DisjunctiveExistential eb = DisjunctiveExistential::FromDnf(b);
  DisjunctiveExistential both = ea.And(eb);
  ForGrid([&](const Assignment& pt) {
    EXPECT_EQ(both.EvalFree(pt).value(),
              a.Eval(pt).value() && b.Eval(pt).value());
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace lyric
