// Differential tests for the parallel evaluator: for every query, the
// result of EvalOptions{threads = 2, 4, 8} must be byte-identical to the
// serial run — same rendered table, same diagnostics, same truncation
// flag. Parallelism is an implementation detail; any observable
// divergence is a bug (docs/PARALLELISM.md).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

constexpr size_t kThreadCounts[] = {2, 4, 8};

// Renders everything observable about a result: the table, the truncation
// flag, and every diagnostic.
std::string Fingerprint(const ResultSet& r) {
  std::string out = r.ToString();
  out += "\ntruncated=";
  out += r.truncated() ? "yes" : "no";
  for (const Diagnostic& d : r.diagnostics()) {
    out += "\n" + d.ToString();
  }
  return out;
}

class ParallelDiffTest : public ::testing::Test {
 protected:
  // Each run gets a fresh database: evaluation interns CST objects, so
  // reusing one instance would let an earlier run's store leak into a
  // later run's extents.
  static Database FreshDb(int scaled_desks) {
    Database db;
    auto ids = office::BuildOfficeDatabase(&db);
    EXPECT_TRUE(ids.ok()) << ids.status();
    if (scaled_desks > 0) {
      Status st = office::AddScaledDesks(&db, scaled_desks, /*seed=*/7);
      EXPECT_TRUE(st.ok()) << st;
    }
    return db;
  }

  static Result<ResultSet> Run(Database* db, const std::string& text,
                               EvalOptions options) {
    options.analyze_first = true;  // diagnostics must match too
    Evaluator ev(db, options);
    return ev.Execute(text);
  }

  // Asserts serial and parallel runs are byte-identical for `text`.
  static void ExpectIdentical(const std::string& text, int scaled_desks,
                              EvalOptions base = EvalOptions()) {
    base.threads = 1;
    Database serial_db = FreshDb(scaled_desks);
    Result<ResultSet> serial = Run(&serial_db, text, base);
    ASSERT_TRUE(serial.ok()) << text << "\n -> " << serial.status();
    for (size_t threads : kThreadCounts) {
      EvalOptions opts = base;
      opts.threads = threads;
      Database par_db = FreshDb(scaled_desks);
      Result<ResultSet> parallel = Run(&par_db, text, opts);
      ASSERT_TRUE(parallel.ok())
          << text << " @" << threads << "t\n -> " << parallel.status();
      EXPECT_EQ(Fingerprint(*serial), Fingerprint(*parallel))
          << text << " diverged at threads=" << threads;
      EXPECT_EQ(serial_db.CstCount(), par_db.CstCount())
          << text << " interned a different CST set at threads=" << threads;
    }
  }
};

// The §4.1 worked examples over the Figure 2 database.
TEST_F(ParallelDiffTest, PaperQ1DrawerExtent) {
  ExpectIdentical("SELECT Y FROM Desk X WHERE X.drawer.extent[Y]", 0);
}

TEST_F(ParallelDiffTest, PaperQ2GlobalExtentExplicit) {
  ExpectIdentical(
      "SELECT CO, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and x = 6 and "
      "y = 4) "
      "FROM Office_Object CO "
      "WHERE CO.extent[E] and CO.translation[D]",
      0);
}

TEST_F(ParallelDiffTest, PaperQ2ShortForm) {
  ExpectIdentical(
      "SELECT CO, ((u, v) | CO.extent and CO.translation and x = 6 and "
      "y = 4) "
      "FROM Office_Object CO",
      0);
}

TEST_F(ParallelDiffTest, PaperQ3ObjectsNearWall) {
  ExpectIdentical(
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and L(x, y) |= x <= 12",
      0);
}

// Randomized instances: scaled databases where the binding stream is long
// enough that every thread count actually partitions work.
TEST_F(ParallelDiffTest, ScaledSelectAll) {
  ExpectIdentical("SELECT O FROM Object_in_Room O", 40);
}

TEST_F(ParallelDiffTest, ScaledWhereEntailment) {
  ExpectIdentical(
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and L(x, y) |= (x <= 15 and y <= 8)",
      40);
}

TEST_F(ParallelDiffTest, ScaledConstructedCst) {
  ExpectIdentical(
      "SELECT O, ((u, v) | O.location and u = x + 1 and v = y + 1) "
      "FROM Object_in_Room O",
      24);
}

TEST_F(ParallelDiffTest, ScaledJoinPair) {
  ExpectIdentical(
      "SELECT A, B FROM Object_in_Room A, Object_in_Room B "
      "WHERE A.location[L1] and B.location[L2] and L1 |= L2",
      10);
}

// Regression (issue satellite): max_rows truncation must count committed
// merged rows, not per-worker rows. Every thread count must truncate at
// the identical prefix, flag the result, and agree with serial.
TEST_F(ParallelDiffTest, MaxRowsTruncatesAtMergedRowCount) {
  const std::string query = "SELECT O FROM Object_in_Room O";
  constexpr size_t kLimit = 13;
  EvalOptions base;
  base.max_rows = kLimit;

  Database serial_db = FreshDb(40);
  Result<ResultSet> serial = Run(&serial_db, query, base);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(serial->truncated());
  ASSERT_EQ(serial->size(), kLimit);

  for (size_t threads : kThreadCounts) {
    EvalOptions opts = base;
    opts.threads = threads;
    Database par_db = FreshDb(40);
    Result<ResultSet> parallel = Run(&par_db, query, opts);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_TRUE(parallel->truncated()) << "threads=" << threads;
    EXPECT_EQ(parallel->size(), kLimit) << "threads=" << threads;
    EXPECT_EQ(Fingerprint(*serial), Fingerprint(*parallel))
        << "truncated prefix diverged at threads=" << threads;
  }
}

// Errors surface identically: the first failing binding in input order
// wins, regardless of which worker hit it first. analyze_first stays off
// so the error must travel the per-binding worker path.
TEST_F(ParallelDiffTest, ErrorsMatchSerial) {
  const std::string query =
      "SELECT X FROM Object_in_Room D WHERE X.color['red'] and D.location[X]";
  Database serial_db = FreshDb(12);
  Evaluator serial_ev(&serial_db);
  Result<ResultSet> serial = serial_ev.Execute(query);
  ASSERT_FALSE(serial.ok());
  for (size_t threads : kThreadCounts) {
    EvalOptions opts;
    opts.threads = threads;
    Database par_db = FreshDb(12);
    Evaluator par_ev(&par_db, opts);
    Result<ResultSet> parallel = par_ev.Execute(query);
    ASSERT_FALSE(parallel.ok()) << "threads=" << threads;
    EXPECT_EQ(serial.status().code(), parallel.status().code());
    EXPECT_EQ(serial.status().message(), parallel.status().message());
  }
}

// CREATE VIEW runs serially regardless of the thread option — the result
// and the created classes must match a one-thread run.
TEST_F(ParallelDiffTest, ViewsForcedSerial) {
  const std::string query =
      "CREATE VIEW Near_Wall AS SUBCLASS OF Object_in_Room "
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and L(x, y) |= x <= 12";
  Database serial_db = FreshDb(8);
  EvalOptions base;
  Evaluator serial_ev(&serial_db, base);
  Result<ResultSet> serial = serial_ev.Execute(query);
  ASSERT_TRUE(serial.ok()) << serial.status();

  EvalOptions opts;
  opts.threads = 8;
  Database par_db = FreshDb(8);
  Evaluator par_ev(&par_db, opts);
  Result<ResultSet> parallel = par_ev.Execute(query);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(serial->ToString(), parallel->ToString());
  EXPECT_EQ(serial_ev.created_classes(), par_ev.created_classes());
  EXPECT_EQ(serial_db.ObjectCount(), par_db.ObjectCount());
}

// Thread counts beyond the binding count degrade gracefully (pool clamps
// to the chunk count; empty chunks are legal).
TEST_F(ParallelDiffTest, MoreThreadsThanBindings) {
  Database serial_db = FreshDb(0);
  EvalOptions base;
  Result<ResultSet> serial =
      Run(&serial_db, "SELECT O FROM Object_in_Room O", base);
  ASSERT_TRUE(serial.ok());

  EvalOptions opts;
  opts.threads = 64;
  Database par_db = FreshDb(0);
  Result<ResultSet> parallel =
      Run(&par_db, "SELECT O FROM Object_in_Room O", opts);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(Fingerprint(*serial), Fingerprint(*parallel));
}

}  // namespace
}  // namespace lyric
