// Printer <-> parser consistency: every Conjunction/Dnf rendered by the
// engine parses back through the query layer into an equivalent
// constraint. This is the glue the storage layer and the shell rely on.

#include <random>

#include <gtest/gtest.h>

#include "constraint/entailment.h"
#include "query/formula_builder.h"
#include "query/parser.h"

namespace lyric {
namespace {

class RoundTrip : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    rng_.seed(static_cast<uint64_t>(GetParam()) * 1000003ull);
    vars_ = {Variable::Intern("rta"), Variable::Intern("rtb"),
             Variable::Intern("rtc")};
  }

  LinearConstraint RandomAtom() {
    LinearExpr e;
    for (VarId v : vars_) {
      e.AddTerm(v, Rational(static_cast<int64_t>(rng_() % 9) - 4,
                            1 + static_cast<int64_t>(rng_() % 3)));
    }
    e.AddConstant(Rational(static_cast<int64_t>(rng_() % 21) - 10));
    switch (rng_() % 4) {
      case 0:
        return LinearConstraint(e, RelOp::kEq);
      case 1:
        return LinearConstraint(e, RelOp::kLt);
      case 2:
        return LinearConstraint(e, RelOp::kNeq);
      default:
        return LinearConstraint(e, RelOp::kLe);
    }
  }

  Conjunction RandomConjunction(int atoms) {
    Conjunction c;
    for (int i = 0; i < atoms; ++i) c.Add(RandomAtom());
    return c;
  }

  // Parses `text` as a formula and instantiates it with no bindings.
  Dnf Reparse(const std::string& text) {
    auto f = ParseFormula(text);
    EXPECT_TRUE(f.ok()) << text << "\n -> " << f.status();
    if (!f.ok()) return Dnf::False();
    Database db;
    std::set<std::string> none;
    FormulaBuilder fb(&db, &none);
    auto de = fb.Build(*f, Binding{});
    EXPECT_TRUE(de.ok()) << text << "\n -> " << de.status();
    if (!de.ok()) return Dnf::False();
    auto dnf = de->ToDnf();
    EXPECT_TRUE(dnf.ok()) << de->ToString();
    return dnf.ok() ? *dnf : Dnf::False();
  }

  std::mt19937_64 rng_;
  std::vector<VarId> vars_;
};

TEST_P(RoundTrip, AtomPrintsAndReparses) {
  for (int i = 0; i < 10; ++i) {
    LinearConstraint atom = RandomAtom();
    if (atom.ConstantTruth() != Truth::kUnknown) continue;
    Dnf back = Reparse(atom.ToString());
    Conjunction c;
    c.Add(atom);
    EXPECT_TRUE(Entailment::Equivalent(Dnf(c), back).value())
        << atom.ToString() << "  vs  " << back.ToString();
  }
}

TEST_P(RoundTrip, ConjunctionPrintsAndReparses) {
  Conjunction c = RandomConjunction(4);
  Dnf back = Reparse(c.ToString());
  EXPECT_TRUE(Entailment::Equivalent(Dnf(c), back).value())
      << c.ToString() << "  vs  " << back.ToString();
}

TEST_P(RoundTrip, DnfPrintsAndReparses) {
  Dnf d;
  d.AddDisjunct(RandomConjunction(3));
  d.AddDisjunct(RandomConjunction(3));
  Dnf back = Reparse(d.ToString());
  EXPECT_TRUE(Entailment::Equivalent(d, back).value())
      << d.ToString() << "  vs  " << back.ToString();
}

TEST_P(RoundTrip, TrueAndFalseForms) {
  EXPECT_TRUE(Reparse(Conjunction().ToString()).IsTrue());
  EXPECT_TRUE(Reparse(Dnf::False().ToString()).IsFalse());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range(1, 13));

}  // namespace
}  // namespace lyric
