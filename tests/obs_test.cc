// Unit tests for the observability layer: the metric registry, snapshot
// deltas, trace span trees, and the LpStatus string round-trip.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "constraint/simplex.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lyric {
namespace obs {
namespace {

TEST(RegistryTest, GetCounterReturnsSameInstance) {
  Counter& a = Registry::Global().GetCounter("test.same_instance");
  Counter& b = Registry::Global().GetCounter("test.same_instance");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.same_instance");
}

TEST(RegistryTest, CounterIsMonotonic) {
  Counter& c = Registry::Global().GetCounter("test.monotonic");
  uint64_t before = c.value();
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), before + 42);
}

TEST(RegistryTest, SnapshotDelta) {
  Counter& c = Registry::Global().GetCounter("test.delta");
  MetricsSnapshot before = Registry::Global().Snapshot();
  c.Increment(7);
  MetricsSnapshot after = Registry::Global().Snapshot();
  MetricsSnapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.counters.at("test.delta"), 7u);
}

TEST(RegistryTest, SnapshotJsonContainsMetrics) {
  Registry::Global().GetCounter("test.json_counter").Increment(3);
  Timer& t = Registry::Global().GetTimer("test.json_timer");
  t.Record(1000);
  std::string json = Registry::Global().Snapshot().ToJson();
  EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_timer\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
}

TEST(RegistryTest, TimerRecordsCountTotalMax) {
  Timer& t = Registry::Global().GetTimer("test.timer_stats");
  t.Record(100);
  t.Record(300);
  t.Record(200);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  const auto& stats = snap.timers.at("test.timer_stats");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.total_ns, 600u);
  EXPECT_EQ(stats.max_ns, 300u);
}

TEST(RegistryTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  Counter& c = Registry::Global().GetCounter("test.concurrent");
  uint64_t before = c.value();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    // Each thread re-fetches the counter by name, exercising the
    // registry's get-or-create lock under contention too.
    threads.emplace_back([] {
      Counter& mine = Registry::Global().GetCounter("test.concurrent");
      for (int k = 0; k < kIncrements; ++k) mine.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), before + kThreads * kIncrements);
}

TEST(RegistryTest, CountMacroIncrements) {
  uint64_t before =
      Registry::Global().GetCounter("test.macro_counter").value();
  LYRIC_OBS_COUNT("test.macro_counter");
  LYRIC_OBS_COUNT_N("test.macro_counter", 4);
  EXPECT_EQ(Registry::Global().GetCounter("test.macro_counter").value(),
            before + 5);
}

TEST(TraceTest, SpanWithoutCollectorIsNoOp) {
  ASSERT_EQ(TraceCollector::Current(), nullptr);
  Span span("orphan");  // Must not crash or allocate a tree anywhere.
  SUCCEED();
}

TEST(TraceTest, CollectsNestedSpans) {
  TraceCollector collector;
  {
    ScopedTraceSession session(&collector);
    EXPECT_EQ(TraceCollector::Current(), &collector);
    {
      Span outer("from");
      Span inner("where");
    }
    Span select("select");
  }
  EXPECT_EQ(TraceCollector::Current(), nullptr);
  const SpanNode& root = collector.root();
  EXPECT_EQ(root.name, "query");
  ASSERT_EQ(root.children.size(), 2u);
  const SpanNode* from = root.FindChild("from");
  ASSERT_NE(from, nullptr);
  EXPECT_NE(from->FindChild("where"), nullptr);
  EXPECT_NE(root.FindChild("select"), nullptr);
  EXPECT_EQ(root.CountChildren("from"), 1u);
  EXPECT_EQ(root.CountChildren("nope"), 0u);
}

TEST(TraceTest, IndexedSpanNames) {
  TraceCollector collector;
  {
    ScopedTraceSession session(&collector);
    Span s("where", 3);
  }
  EXPECT_NE(collector.root().FindChild("where[3]"), nullptr);
}

TEST(TraceTest, ChromeTraceJsonShape) {
  TraceCollector collector;
  {
    ScopedTraceSession session(&collector);
    Span s("parse");
  }
  std::string json = collector.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
}

TEST(TraceTest, PrettyStringListsStages) {
  TraceCollector collector;
  {
    ScopedTraceSession session(&collector);
    Span s("from");
  }
  std::string pretty = collector.ToPrettyString();
  EXPECT_NE(pretty.find("query"), std::string::npos);
  EXPECT_NE(pretty.find("from"), std::string::npos);
}

TEST(TraceTest, SessionsNest) {
  TraceCollector outer_collector;
  TraceCollector inner_collector;
  ScopedTraceSession outer(&outer_collector);
  {
    ScopedTraceSession inner(&inner_collector);
    EXPECT_EQ(TraceCollector::Current(), &inner_collector);
  }
  EXPECT_EQ(TraceCollector::Current(), &outer_collector);
  outer.Stop();
  EXPECT_EQ(TraceCollector::Current(), nullptr);
}

TEST(LpStatusTest, StringRoundTrip) {
  for (LpStatus s : {LpStatus::kOptimal, LpStatus::kInfeasible,
                     LpStatus::kUnbounded}) {
    auto back = LpStatusFromString(LpStatusToString(s));
    ASSERT_TRUE(back.has_value()) << LpStatusToString(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(LpStatusFromString("no-such-status").has_value());
  EXPECT_FALSE(LpStatusFromString("").has_value());
}

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
}

// Golden escaping table: every class of byte the Chrome-trace exporter
// can meet (span names come from query text via indexed spans). The
// escaped form must parse as a JSON string literal — quotes and
// backslashes escaped, control characters as \u00xx, invalid UTF-8
// replaced, never passed through raw.
TEST(JsonEscapeTest, GoldenEscapes) {
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscape(std::string("a\x01")), "a\\u0001");
  EXPECT_EQ(JsonEscape(std::string("\x1f")), "\\u001f");
  EXPECT_EQ(JsonEscape(std::string("\x7f")), "\\u007f");
  EXPECT_EQ(JsonEscape(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(JsonEscape("say \"hi\"\\now"), "say \\\"hi\\\"\\\\now");
  // Well-formed UTF-8 passes through untouched.
  EXPECT_EQ(JsonEscape("caf\xC3\xA9"), "caf\xC3\xA9");
  EXPECT_EQ(JsonEscape("\xE2\x86\x92"), "\xE2\x86\x92");  // U+2192 arrow
  // Invalid bytes are replaced with U+FFFD, one per bad byte.
  EXPECT_EQ(JsonEscape(std::string("\xFF")), "\xEF\xBF\xBD");
  EXPECT_EQ(JsonEscape(std::string("\xC0\xAF")),  // overlong encoding
            "\xEF\xBF\xBD\xEF\xBF\xBD");
  EXPECT_EQ(JsonEscape(std::string("\xC3")), "\xEF\xBF\xBD");  // truncated
  EXPECT_EQ(JsonEscape(std::string("\xED\xA0\x80")),  // UTF-16 surrogate
            "\xEF\xBF\xBD\xEF\xBF\xBD\xEF\xBF\xBD");
}

TEST(GaugeTest, SetAddAndSnapshot) {
  Gauge& g = Registry::Global().GetGauge("test.gauge_basic");
  g.Set(42);
  g.Add(-2);
  EXPECT_EQ(g.value(), 40);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(snap.gauges.at("test.gauge_basic"), 40);
  g.Set(-7);  // Gauges are signed; negative values survive the snapshot.
  EXPECT_EQ(Registry::Global().Snapshot().gauges.at("test.gauge_basic"), -7);
}

TEST(GaugeTest, DeltaKeepsLaterValue) {
  Gauge& g = Registry::Global().GetGauge("test.gauge_delta");
  g.Set(5);
  MetricsSnapshot before = Registry::Global().Snapshot();
  g.Set(3);
  MetricsSnapshot delta = Registry::Global().Snapshot().DeltaSince(before);
  // Point-in-time semantics: a delta reports the current reading, not a
  // meaningless subtraction.
  EXPECT_EQ(delta.gauges.at("test.gauge_delta"), 3);
}

TEST(HistogramTest, BucketIndexExactBelowSixteen) {
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<size_t>(v));
    EXPECT_EQ(Histogram::BucketUpperEdge(v), v);
  }
}

TEST(HistogramTest, BucketEdgesContainTheirValues) {
  // Every value must land in a bucket whose upper edge is >= the value
  // and whose predecessor's upper edge is < the value, across the full
  // uint64 range (powers of two are the boundary-heavy cases).
  std::vector<uint64_t> samples;
  for (int p = 0; p < 64; ++p) {
    uint64_t v = uint64_t{1} << p;
    samples.push_back(v);
    samples.push_back(v - 1);
    samples.push_back(v + 1);
    samples.push_back(v + v / 3);
  }
  samples.push_back(UINT64_MAX);
  for (uint64_t v : samples) {
    size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, Histogram::kNumBuckets) << v;
    EXPECT_GE(Histogram::BucketUpperEdge(idx), v) << v;
    if (idx > 0) EXPECT_LT(Histogram::BucketUpperEdge(idx - 1), v) << v;
  }
}

TEST(HistogramTest, PercentilesOfUniformDistribution) {
  Histogram& h = Registry::Global().GetHistogram("test.hist_uniform");
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  const auto& stats = snap.histograms.at("test.hist_uniform");
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_EQ(stats.sum, 500500u);
  EXPECT_EQ(stats.max, 1000u);
  EXPECT_EQ(stats.mean(), 500u);
  // Log-linear contract: the reported quantile is the bucket upper edge,
  // so it is >= the true order statistic and within one sub-bucket
  // (1/16th of magnitude) above it.
  struct { double q; uint64_t truth; } cases[] = {
      {0.50, 500}, {0.90, 900}, {0.99, 990}, {0.999, 999}};
  for (const auto& c : cases) {
    uint64_t got = stats.ValueAtQuantile(c.q);
    EXPECT_GE(got, c.truth) << c.q;
    EXPECT_LE(got, c.truth + c.truth / 8 + 1) << c.q;
  }
}

TEST(HistogramTest, SmallSampleHighQuantilesAreExact) {
  Histogram& h = Registry::Global().GetHistogram("test.hist_small");
  h.Record(3);
  h.Record(7);
  h.Record(11);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  const auto& stats = snap.histograms.at("test.hist_small");
  // Values below 16 get exact buckets, and high quantiles clamp to the
  // observed max — small samples report exact order statistics.
  EXPECT_EQ(stats.p50(), 7u);
  EXPECT_EQ(stats.p90(), 11u);
  EXPECT_EQ(stats.p99(), 11u);
  EXPECT_EQ(stats.p999(), 11u);
  EXPECT_EQ(stats.ValueAtQuantile(0.0), 3u);
}

TEST(HistogramTest, SingleValueReportsItselfEverywhere) {
  Histogram& h = Registry::Global().GetHistogram("test.hist_single");
  h.Record(123456789);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  const auto& stats = snap.histograms.at("test.hist_single");
  // The max clamp makes every quantile of a single sample exact even
  // though the value itself sits mid-bucket.
  EXPECT_EQ(stats.p50(), 123456789u);
  EXPECT_EQ(stats.p999(), 123456789u);
  EXPECT_EQ(stats.max, 123456789u);
}

TEST(HistogramTest, DeltaSubtractsBuckets) {
  Histogram& h = Registry::Global().GetHistogram("test.hist_delta");
  for (int i = 0; i < 100; ++i) h.Record(10);
  MetricsSnapshot before = Registry::Global().Snapshot();
  for (int i = 0; i < 50; ++i) h.Record(1000000);
  MetricsSnapshot delta = Registry::Global().Snapshot().DeltaSince(before);
  const auto& stats = delta.histograms.at("test.hist_delta");
  // Only the interval's recordings remain, so the delta's percentiles
  // describe just the new values.
  EXPECT_EQ(stats.count, 50u);
  EXPECT_GE(stats.p50(), 1000000u);
}

// The registry under concurrent get-or-create, recording, and snapshot
// readers — the TSan CI job runs this binary, so a data race anywhere in
// the counter/gauge/histogram hot paths or the snapshot copy fails there.
TEST(RegistryTest, ConcurrentGetRecordAndSnapshot) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  Histogram& h = Registry::Global().GetHistogram("test.conc_mixed_hist");
  MetricsSnapshot before = Registry::Global().Snapshot();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        Registry::Global()
            .GetHistogram("test.conc_mixed_hist")
            .Record(static_cast<uint64_t>(i));
        Registry::Global().GetCounter("test.conc_mixed_counter").Increment();
        Registry::Global()
            .GetGauge("test.conc_mixed_gauge")
            .Set(static_cast<int64_t>(i));
        if (i % 256 == t) {
          MetricsSnapshot snap = Registry::Global().Snapshot();
          // Reader sees an atomically-copied value set; count can lag sum
          // but the structures themselves must be coherent.
          EXPECT_LE(snap.histograms.at("test.conc_mixed_hist").count,
                    static_cast<uint64_t>(kThreads) * kIters);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MetricsSnapshot delta = Registry::Global().Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.histograms.at("test.conc_mixed_hist").count,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(delta.counters.at("test.conc_mixed_counter"),
            static_cast<uint64_t>(kThreads) * kIters);
  (void)h;
}

TEST(PrometheusTest, ExportIsWellFormedAndCarriesSeries) {
  Registry::Global().GetCounter("test.prom.counter").Increment(3);
  Registry::Global().GetGauge("test.prom.gauge").Set(-4);
  Histogram& h = Registry::Global().GetHistogram("test.prom.hist");
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v * 1000);
  std::string text = Registry::Global().ExportPrometheus();
  std::string error;
  EXPECT_TRUE(ValidatePrometheusExposition(text, &error)) << error;
  // Names are sanitized into the lyric_ namespace; counters get _total,
  // histograms become summaries with quantile series in nanoseconds.
  EXPECT_NE(text.find("lyric_test_prom_counter_total 3"), std::string::npos);
  EXPECT_NE(text.find("lyric_test_prom_gauge -4"), std::string::npos);
  EXPECT_NE(text.find("lyric_test_prom_hist_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lyric_test_prom_hist_ns{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lyric_test_prom_hist_ns_count 100"),
            std::string::npos);
  EXPECT_NE(text.find("lyric_test_prom_hist_ns_max 100000"),
            std::string::npos);
}

TEST(PrometheusValidatorTest, AcceptsWellFormedLines) {
  std::string error;
  EXPECT_TRUE(ValidatePrometheusExposition("", &error)) << error;
  EXPECT_TRUE(ValidatePrometheusExposition(
      "# HELP foo help text\n# TYPE foo counter\nfoo 1\n"
      "bar{quantile=\"0.5\"} 2.5\nbar{quantile=\"0.9\"} 3\n"
      "bar_sum 10\nbar_count 4\nbaz +Inf\nqux 1.5e9 1700000000\n",
      &error))
      << error;
}

TEST(PrometheusValidatorTest, RejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(ValidatePrometheusExposition("9leading_digit 1\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(ValidatePrometheusExposition("foo bar\n", &error));
  EXPECT_FALSE(ValidatePrometheusExposition("foo\n", &error));
  EXPECT_FALSE(ValidatePrometheusExposition("foo{a=\"b} 1\n", &error));
  EXPECT_FALSE(ValidatePrometheusExposition("foo{a=\"b\" 1\n", &error));
}

TEST(PrometheusValidatorTest, RejectsDuplicateSeries) {
  std::string error;
  EXPECT_FALSE(ValidatePrometheusExposition("foo 1\nfoo 2\n", &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
  EXPECT_NE(error.find("line 2"), std::string::npos);
  // Same name with different labels is a different series — allowed.
  EXPECT_TRUE(ValidatePrometheusExposition(
      "foo{q=\"a\"} 1\nfoo{q=\"b\"} 2\n", &error))
      << error;
}

}  // namespace
}  // namespace obs
}  // namespace lyric
