// Unit tests for the observability layer: the metric registry, snapshot
// deltas, trace span trees, and the LpStatus string round-trip.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "constraint/simplex.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lyric {
namespace obs {
namespace {

TEST(RegistryTest, GetCounterReturnsSameInstance) {
  Counter& a = Registry::Global().GetCounter("test.same_instance");
  Counter& b = Registry::Global().GetCounter("test.same_instance");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.same_instance");
}

TEST(RegistryTest, CounterIsMonotonic) {
  Counter& c = Registry::Global().GetCounter("test.monotonic");
  uint64_t before = c.value();
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), before + 42);
}

TEST(RegistryTest, SnapshotDelta) {
  Counter& c = Registry::Global().GetCounter("test.delta");
  MetricsSnapshot before = Registry::Global().Snapshot();
  c.Increment(7);
  MetricsSnapshot after = Registry::Global().Snapshot();
  MetricsSnapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.counters.at("test.delta"), 7u);
}

TEST(RegistryTest, SnapshotJsonContainsMetrics) {
  Registry::Global().GetCounter("test.json_counter").Increment(3);
  Timer& t = Registry::Global().GetTimer("test.json_timer");
  t.Record(1000);
  std::string json = Registry::Global().Snapshot().ToJson();
  EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_timer\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
}

TEST(RegistryTest, TimerRecordsCountTotalMax) {
  Timer& t = Registry::Global().GetTimer("test.timer_stats");
  t.Record(100);
  t.Record(300);
  t.Record(200);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  const auto& stats = snap.timers.at("test.timer_stats");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.total_ns, 600u);
  EXPECT_EQ(stats.max_ns, 300u);
}

TEST(RegistryTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  Counter& c = Registry::Global().GetCounter("test.concurrent");
  uint64_t before = c.value();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    // Each thread re-fetches the counter by name, exercising the
    // registry's get-or-create lock under contention too.
    threads.emplace_back([] {
      Counter& mine = Registry::Global().GetCounter("test.concurrent");
      for (int k = 0; k < kIncrements; ++k) mine.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), before + kThreads * kIncrements);
}

TEST(RegistryTest, CountMacroIncrements) {
  uint64_t before =
      Registry::Global().GetCounter("test.macro_counter").value();
  LYRIC_OBS_COUNT("test.macro_counter");
  LYRIC_OBS_COUNT_N("test.macro_counter", 4);
  EXPECT_EQ(Registry::Global().GetCounter("test.macro_counter").value(),
            before + 5);
}

TEST(TraceTest, SpanWithoutCollectorIsNoOp) {
  ASSERT_EQ(TraceCollector::Current(), nullptr);
  Span span("orphan");  // Must not crash or allocate a tree anywhere.
  SUCCEED();
}

TEST(TraceTest, CollectsNestedSpans) {
  TraceCollector collector;
  {
    ScopedTraceSession session(&collector);
    EXPECT_EQ(TraceCollector::Current(), &collector);
    {
      Span outer("from");
      Span inner("where");
    }
    Span select("select");
  }
  EXPECT_EQ(TraceCollector::Current(), nullptr);
  const SpanNode& root = collector.root();
  EXPECT_EQ(root.name, "query");
  ASSERT_EQ(root.children.size(), 2u);
  const SpanNode* from = root.FindChild("from");
  ASSERT_NE(from, nullptr);
  EXPECT_NE(from->FindChild("where"), nullptr);
  EXPECT_NE(root.FindChild("select"), nullptr);
  EXPECT_EQ(root.CountChildren("from"), 1u);
  EXPECT_EQ(root.CountChildren("nope"), 0u);
}

TEST(TraceTest, IndexedSpanNames) {
  TraceCollector collector;
  {
    ScopedTraceSession session(&collector);
    Span s("where", 3);
  }
  EXPECT_NE(collector.root().FindChild("where[3]"), nullptr);
}

TEST(TraceTest, ChromeTraceJsonShape) {
  TraceCollector collector;
  {
    ScopedTraceSession session(&collector);
    Span s("parse");
  }
  std::string json = collector.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
}

TEST(TraceTest, PrettyStringListsStages) {
  TraceCollector collector;
  {
    ScopedTraceSession session(&collector);
    Span s("from");
  }
  std::string pretty = collector.ToPrettyString();
  EXPECT_NE(pretty.find("query"), std::string::npos);
  EXPECT_NE(pretty.find("from"), std::string::npos);
}

TEST(TraceTest, SessionsNest) {
  TraceCollector outer_collector;
  TraceCollector inner_collector;
  ScopedTraceSession outer(&outer_collector);
  {
    ScopedTraceSession inner(&inner_collector);
    EXPECT_EQ(TraceCollector::Current(), &inner_collector);
  }
  EXPECT_EQ(TraceCollector::Current(), &outer_collector);
  outer.Stop();
  EXPECT_EQ(TraceCollector::Current(), nullptr);
}

TEST(LpStatusTest, StringRoundTrip) {
  for (LpStatus s : {LpStatus::kOptimal, LpStatus::kInfeasible,
                     LpStatus::kUnbounded}) {
    auto back = LpStatusFromString(LpStatusToString(s));
    ASSERT_TRUE(back.has_value()) << LpStatusToString(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(LpStatusFromString("no-such-status").has_value());
  EXPECT_FALSE(LpStatusFromString("").has_value());
}

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace obs
}  // namespace lyric
