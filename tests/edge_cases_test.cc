// Edge cases across smaller surfaces: result sets, hashing, degenerate
// dimensions, and evaluator guardrails.

#include <gtest/gtest.h>

#include "constraint/cst_object.h"
#include "office/office_db.h"
#include "query/evaluator.h"
#include "query/result_set.h"

namespace lyric {
namespace {

TEST(ResultSetTest, DeduplicatesRows) {
  ResultSet r({"a", "b"});
  r.AddRow({Oid::Int(1), Oid::Int(2)});
  r.AddRow({Oid::Int(1), Oid::Int(2)});
  r.AddRow({Oid::Int(3), Oid::Int(4)});
  EXPECT_EQ(r.size(), 2u);
}

TEST(ResultSetTest, ColumnAndContains) {
  ResultSet r({"a", "b"});
  r.AddRow({Oid::Int(1), Oid::Str("x")});
  r.AddRow({Oid::Int(2), Oid::Str("y")});
  EXPECT_TRUE(r.ContainsOid(Oid::Int(1)));
  EXPECT_FALSE(r.ContainsOid(Oid::Str("x")));  // Only first column.
  auto col = r.Column(1);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col[0], Oid::Str("x"));
  EXPECT_EQ(r.Column(7).size(), 0u);  // Out-of-range column is empty.
}

TEST(ResultSetTest, ToStringShape) {
  ResultSet r({"only"});
  EXPECT_NE(r.ToString().find("(0 rows)"), std::string::npos);
  r.AddRow({Oid::Int(1)});
  EXPECT_NE(r.ToString().find("(1 row)"), std::string::npos);
}

TEST(HashingTest, EqualValuesHashEqual) {
  VarId x = Variable::Intern("hx");
  LinearExpr a = LinearExpr::Term(Rational(2), x);
  LinearExpr b = LinearExpr::Term(Rational(4), x).Scale(Rational(1, 2));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  LinearConstraint ca = LinearConstraint::Le(a, LinearExpr());
  LinearConstraint cb = LinearConstraint::Le(b, LinearExpr());
  EXPECT_EQ(ca.Hash(), cb.Hash());
  Conjunction c1;
  c1.Add(ca);
  Conjunction c2;
  c2.Add(cb);
  EXPECT_EQ(c1.Hash(), c2.Hash());
  EXPECT_EQ(Dnf(c1).Hash(), Dnf(c2).Hash());
}

TEST(ZeroDimensionalTest, CstObjectOperations) {
  CstObject t;  // TRUE, dimension 0.
  CstObject f = CstObject::FromDnf({}, Dnf::False()).value();
  EXPECT_TRUE(t.Satisfiable().value());
  EXPECT_FALSE(f.Satisfiable().value());
  // Entailment between 0-dimensional objects is propositional.
  EXPECT_TRUE(f.Entails(t).value());
  EXPECT_FALSE(t.Entails(f).value());
  EXPECT_TRUE(t.Conjoin(f).value().Satisfiable().value() == false);
  EXPECT_TRUE(t.Disjoin(f).value().Satisfiable().value());
  // Canonical identity distinguishes them.
  EXPECT_NE(t.CanonicalString().value(), f.CanonicalString().value());
}

TEST(ZeroDimensionalTest, ProjectionToNothing) {
  VarId x = Variable::Intern("zx");
  Conjunction c;
  c.Add(LinearConstraint::Ge(LinearExpr::Var(x),
                             LinearExpr::Constant(Rational(5))));
  CstObject obj = CstObject::FromConjunction({x}, c).value();
  CstObject empty_iface = obj.ProjectEager({}).value();
  EXPECT_EQ(empty_iface.Dimension(), 0u);
  EXPECT_TRUE(empty_iface.Satisfiable().value());  // x >= 5 is satisfiable.
}

TEST(EvaluatorGuardTest, MaxRowsEnforced) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(office::AddScaledDesks(&db, 12, 1).ok());
  EvalOptions opts;
  opts.max_rows = 5;
  Evaluator ev(&db, opts);
  auto r = ev.Execute("SELECT O1, O2 FROM Object_in_Room O1, "
                      "Object_in_Room O2");
  // The limit truncates the result instead of failing the query; the
  // truncation is flagged so callers can tell a full answer from a cut.
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 5u);
  EXPECT_TRUE(r->truncated());
}

TEST(EvaluatorGuardTest, EmptyFromProductIsEmpty) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  ASSERT_TRUE(ids.ok());
  Evaluator ev(&db);
  // File_Cabinet extent is empty: the cartesian product collapses.
  auto r = ev.Execute("SELECT X FROM Desk X, File_Cabinet F");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 0u);
}

TEST(OidEdgeTest, EmptyFunctionArgs) {
  Oid f = Oid::Func("now", {});
  EXPECT_EQ(f.ToString(), "now()");
  EXPECT_EQ(f, Oid::Func("now", {}));
  EXPECT_NE(f, Oid::Symbol("now"));
}

TEST(ConjunctionEdgeTest, FalseAbsorbs) {
  Conjunction f = Conjunction::False();
  Conjunction c;
  c.Add(LinearConstraint::Ge(LinearExpr::Var(Variable::Intern("fx")),
                             LinearExpr::Constant(Rational(0))));
  EXPECT_EQ(f.Conjoin(c), Conjunction::False());
  // Conjoining FALSE from either side collapses to the canonical FALSE.
  EXPECT_EQ(c.Conjoin(f), Conjunction::False());
  EXPECT_TRUE(c.Conjoin(f).HasConstantFalse());
}

}  // namespace
}  // namespace lyric
