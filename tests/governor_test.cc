// Resource-governed query execution: deadlines, budgets, pivot and
// disjunct caps trip with typed statuses and partial-progress
// diagnostics, and never leave the engine (Database, SolverCache) in a
// state that corrupts later queries. Covers the PR-4 acceptance
// criteria: a Figure-2 paper query under a tiny deadline (serial and 4
// threads) returns kDeadlineExceeded, and an adversarial DNF-blowup
// query trips max_disjuncts with kResourceExhausted instead of
// exhausting memory.

#include "exec/governor.h"

#include <gtest/gtest.h>

#include <thread>

#include "constraint/solver_cache.h"
#include "office/office_db.h"
#include "query/evaluator.h"
#include "util/fault.h"

namespace lyric {
namespace {

using exec::CancellationToken;
using exec::GovernorLimits;
using exec::GovernorReport;
using exec::GovernorScope;
using exec::LimitKind;

// Q3 from §4.1 — the drawer-area query on the Figure 2 database; the
// heaviest of the paper's worked examples (translation composition plus
// projection).
constexpr const char* kFigure2Query =
    "SELECT O, ((u, v) | D(w, z, x, y, u, v) and "
    "  DD(w1, z1, x1, y1, u1, v1) and w = u1 and z = v1 and "
    "  DC(p, q) and DE(w1, z1) and L(x, y)) "
    "FROM Object_in_Room O, Desk DSK "
    "WHERE O.location[L] and O.catalog_object[DSK] and "
    "  DSK.translation[D] and DSK.drawer_center[DC] and "
    "  DSK.drawer.translation[DD] and DSK.drawer.extent[DE]";

class GovernorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fault::ConfigureForTesting(""));
    SolverCache::Global().Clear();
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
  }

  void TearDown() override { ASSERT_TRUE(fault::ConfigureForTesting("")); }

  // Runs `text` with the given options; the query-level Result must be OK
  // (a governor trip is reported on the ResultSet, not as an error).
  ResultSet Run(const std::string& text, const EvalOptions& opts) {
    Evaluator ev(&db_, opts);
    auto r = ev.Execute(text);
    EXPECT_TRUE(r.ok()) << text << "\n -> " << r.status();
    return r.ok() ? *r : ResultSet();
  }

  Database db_;
};

// -- CancellationToken unit behavior ---------------------------------------

TEST_F(GovernorTest, UntrippedTokenReportsOk) {
  GovernorLimits limits;
  limits.max_pivots = 100;
  CancellationToken token(limits);
  EXPECT_FALSE(token.stopped());
  EXPECT_TRUE(token.Check("test.site").ok());
  EXPECT_TRUE(token.ToStatus().ok());
  EXPECT_EQ(token.tripped_kind(), LimitKind::kNone);
}

TEST_F(GovernorTest, PivotCapTripsStickyWithFirstSite) {
  GovernorLimits limits;
  limits.max_pivots = 10;
  CancellationToken token(limits);
  EXPECT_FALSE(token.AccountPivots(10, "site.a"));  // Exactly at the cap.
  EXPECT_TRUE(token.AccountPivots(1, "site.b"));    // Over.
  EXPECT_TRUE(token.stopped());
  EXPECT_EQ(token.tripped_kind(), LimitKind::kPivots);
  Status s = token.ToStatus();
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_NE(s.message().find("site.b"), std::string::npos);
  // Later trips at other sites do not overwrite the first record.
  token.AccountPivots(5, "site.c");
  EXPECT_NE(token.ToStatus().message().find("site.b"), std::string::npos);
  GovernorReport report = token.Report();
  EXPECT_EQ(report.tripped, LimitKind::kPivots);
  EXPECT_EQ(report.site, "site.b");
  EXPECT_EQ(report.pivots_used, 16u);
}

TEST_F(GovernorTest, MemoryAndDisjunctCapsTripAsResourceExhausted) {
  GovernorLimits limits;
  limits.memory_budget = 64;
  limits.max_disjuncts = 4;
  CancellationToken token(limits);
  EXPECT_TRUE(token.AccountMemory(65, "mem.site"));
  EXPECT_EQ(token.tripped_kind(), LimitKind::kMemory);
  EXPECT_TRUE(token.ToStatus().IsResourceExhausted());

  CancellationToken token2(limits);
  EXPECT_FALSE(token2.AccountDisjuncts(4, "dnf.site"));
  EXPECT_TRUE(token2.AccountDisjuncts(1, "dnf.site"));
  EXPECT_EQ(token2.tripped_kind(), LimitKind::kDisjuncts);
  EXPECT_TRUE(token2.ToStatus().IsResourceExhausted());
}

TEST_F(GovernorTest, ZeroDeadlineTripsImmediately) {
  GovernorLimits limits;
  limits.deadline_ms = 0;
  CancellationToken token(limits);
  EXPECT_TRUE(token.CheckDeadline("deadline.site"));
  EXPECT_EQ(token.tripped_kind(), LimitKind::kDeadline);
  EXPECT_TRUE(token.ToStatus().IsDeadlineExceeded());
  EXPECT_TRUE(token.Check("later.site").IsDeadlineExceeded());
}

TEST_F(GovernorTest, ShortDeadlineExpiresOnTheClock) {
  GovernorLimits limits;
  limits.deadline_ms = 1;
  CancellationToken token(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.CheckDeadline("deadline.site"));
  EXPECT_TRUE(token.ToStatus().IsDeadlineExceeded());
  EXPECT_GE(token.Report().elapsed_ms, 1u);
}

TEST_F(GovernorTest, ScopesNestAndRestore) {
  EXPECT_EQ(GovernorScope::Current(), nullptr);
  GovernorLimits limits;
  limits.max_pivots = 1;
  CancellationToken outer(limits);
  CancellationToken inner(limits);
  {
    GovernorScope outer_scope(&outer);
    EXPECT_EQ(GovernorScope::Current(), &outer);
    {
      GovernorScope inner_scope(&inner);
      EXPECT_EQ(GovernorScope::Current(), &inner);
    }
    EXPECT_EQ(GovernorScope::Current(), &outer);
  }
  EXPECT_EQ(GovernorScope::Current(), nullptr);
}

TEST_F(GovernorTest, FreeHooksAreNoOpsWhenUngoverned) {
  ASSERT_EQ(GovernorScope::Current(), nullptr);
  EXPECT_FALSE(exec::AccountPivots(1'000'000, "x"));
  EXPECT_FALSE(exec::AccountKernelMemory(1'000'000'000, "x"));
  EXPECT_FALSE(exec::AccountDisjuncts(1'000'000, "x"));
  EXPECT_FALSE(exec::CancellationRequested());
  EXPECT_TRUE(exec::CheckCancellation("x").ok());
}

TEST_F(GovernorTest, ReportToStringNamesEveryCounter) {
  GovernorLimits limits;
  limits.max_pivots = 1;
  CancellationToken token(limits);
  token.AccountPivots(2, "simplex.run");
  std::string text = token.Report().ToString();
  EXPECT_NE(text.find("tripped pivots"), std::string::npos);
  EXPECT_NE(text.find("simplex.run"), std::string::npos);
  EXPECT_NE(text.find("pivots=2"), std::string::npos);
  EXPECT_NE(text.find("bindings="), std::string::npos);
  EXPECT_NE(text.find("memory="), std::string::npos);
  EXPECT_NE(text.find("disjuncts="), std::string::npos);
}

// -- End-to-end: Figure-2 paper query under a deadline ---------------------

TEST_F(GovernorTest, DeadlineTripsFigure2QuerySerial) {
  EvalOptions opts;
  opts.threads = 1;
  opts.deadline_ms = 0;  // Already expired: trips at the first checkpoint.
  ResultSet r = Run(kFigure2Query, opts);
  EXPECT_TRUE(r.governor_status().IsDeadlineExceeded())
      << r.governor_status();
  EXPECT_EQ(r.governor_report().tripped, LimitKind::kDeadline);
  EXPECT_FALSE(r.governor_report().site.empty());
  // Partial progress: fewer rows than the full answer (which has 1).
  EXPECT_LE(r.size(), 1u);
  EXPECT_NE(r.ToString().find("PARTIAL"), std::string::npos);
  EXPECT_NE(r.ToString().find("deadline"), std::string::npos);

  // Engine state is intact: an unlimited evaluation over the same
  // Database and SolverCache still produces the paper's answer.
  ResultSet full = Run(kFigure2Query, EvalOptions{});
  EXPECT_TRUE(full.governor_status().ok());
  EXPECT_EQ(full.size(), 1u);
}

TEST_F(GovernorTest, DeadlineTripsFigure2QueryParallel) {
  EvalOptions serial_opts;
  serial_opts.threads = 1;
  serial_opts.deadline_ms = 0;
  ResultSet serial = Run(kFigure2Query, serial_opts);

  EvalOptions parallel_opts;
  parallel_opts.threads = 4;
  parallel_opts.deadline_ms = 0;
  ResultSet parallel = Run(kFigure2Query, parallel_opts);

  // Both report the same typed code with diagnostics attached.
  EXPECT_TRUE(serial.governor_status().IsDeadlineExceeded());
  EXPECT_TRUE(parallel.governor_status().IsDeadlineExceeded());
  EXPECT_EQ(parallel.governor_report().tripped, LimitKind::kDeadline);
  EXPECT_FALSE(parallel.governor_report().site.empty());

  // And the engine still answers unlimited queries afterwards.
  ResultSet full = Run(kFigure2Query, EvalOptions{});
  EXPECT_TRUE(full.governor_status().ok());
  EXPECT_EQ(full.size(), 1u);
}

// -- End-to-end: adversarial DNF blowup under max_disjuncts ----------------

// ANDs of ORs: the CST-expression body multiplies out through Dnf::And
// into 3^6 = 729 disjuncts before simplification can trim anything.
constexpr const char* kBlowupQuery =
    "SELECT DSK, ((u, v) | "
    "  (u = 1 or u = 2 or v = 1) and (u = 3 or u = 4 or v = 2) and "
    "  (u = 5 or u = 6 or v = 3) and (u = 7 or u = 8 or v = 4) and "
    "  (u = 9 or u = 10 or v = 5) and (u = 11 or u = 12 or v = 6)) "
    "FROM Desk DSK";

TEST_F(GovernorTest, DnfBlowupTripsMaxDisjuncts) {
  EvalOptions opts;
  opts.threads = 1;
  opts.max_disjuncts = 32;
  Evaluator ev(&db_, opts);
  auto r = ev.Execute(kBlowupQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->governor_status().IsResourceExhausted())
      << r->governor_status();
  EXPECT_EQ(r->governor_report().tripped, LimitKind::kDisjuncts);
  EXPECT_GE(r->governor_report().disjuncts_used, 32u);

  // The same evaluator instance then answers an in-budget query
  // correctly — per-query token state does not leak across Execute calls.
  auto ok = ev.Execute("SELECT Y FROM Desk X WHERE X.drawer.extent[Y]");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok->governor_status().ok());
  EXPECT_EQ(ok->size(), 1u);
}

TEST_F(GovernorTest, UnlimitedBlowupQueryStillCompletes) {
  // Sanity check on the adversarial query itself: ungoverned, 729
  // disjuncts are large but computable, and the governor fields stay OK.
  ResultSet r = Run(kBlowupQuery, EvalOptions{});
  EXPECT_TRUE(r.governor_status().ok());
  EXPECT_EQ(r.governor_report().tripped, LimitKind::kNone);
  EXPECT_EQ(r.size(), 1u);
}

// -- End-to-end: pivot cap and memory budget -------------------------------

TEST_F(GovernorTest, PivotCapTripsEntailmentQuery) {
  EvalOptions opts;
  opts.threads = 1;
  opts.max_pivots = 1;
  // Entailment forces simplex runs; one pivot cannot finish them.
  ResultSet r = Run(
      "SELECT DSK FROM Desk DSK WHERE DSK.drawer_center[C] and "
      "C(p, q) |= p = -2",
      opts);
  EXPECT_TRUE(r.governor_status().IsResourceExhausted())
      << r.governor_status();
  EXPECT_EQ(r.governor_report().tripped, LimitKind::kPivots);
  EXPECT_GE(r.governor_report().pivots_used, 1u);

  // The cache must not have memoized any verdict from the aborted solve:
  // the unlimited rerun still answers correctly.
  ResultSet full = Run(
      "SELECT DSK FROM Desk DSK WHERE DSK.drawer_center[C] and "
      "C(p, q) |= p = -2",
      EvalOptions{});
  EXPECT_TRUE(full.governor_status().ok());
  EXPECT_EQ(full.size(), 1u);
}

TEST_F(GovernorTest, MemoryBudgetTripsTableauAccounting) {
  EvalOptions opts;
  opts.threads = 1;
  opts.memory_budget = 1;  // One byte: the first tableau trips it.
  ResultSet r = Run(
      "SELECT DSK FROM Desk DSK WHERE DSK.drawer_center[C] and "
      "C(p, q) |= q = -1",
      opts);
  EXPECT_TRUE(r.governor_status().IsResourceExhausted())
      << r.governor_status();
  EXPECT_EQ(r.governor_report().tripped, LimitKind::kMemory);
  EXPECT_GE(r.governor_report().memory_used, 1u);
}

TEST_F(GovernorTest, InjectedAllocFaultTripsMemoryBudget) {
  // The alloc fault site lets the fault gate exercise the budget-trip
  // path without a genuinely huge query: with a budget configured and
  // the site armed, the first accounted allocation trips.
  ASSERT_TRUE(fault::ConfigureForTesting("alloc:1.0:7"));
  EvalOptions opts;
  opts.threads = 1;
  opts.memory_budget = 1ull << 40;  // Generous; only the fault trips it.
  ResultSet r = Run(
      "SELECT DSK FROM Desk DSK WHERE DSK.drawer_center[C] and "
      "C(p, q) |= p = -2",
      opts);
  EXPECT_TRUE(r.governor_status().IsResourceExhausted())
      << r.governor_status();
  EXPECT_EQ(r.governor_report().tripped, LimitKind::kMemory);
}

TEST_F(GovernorTest, UngovernedQueriesCarryNoGovernorState) {
  ResultSet r = Run(kFigure2Query, EvalOptions{});
  EXPECT_TRUE(r.governor_status().ok());
  EXPECT_EQ(r.governor_report().tripped, LimitKind::kNone);
  EXPECT_EQ(r.ToString().find("PARTIAL"), std::string::npos);
}

TEST_F(GovernorTest, GenerousLimitsDoNotPerturbResults) {
  // A fully-governed run with limits far above the query's needs must be
  // indistinguishable from the ungoverned run.
  EvalOptions governed;
  governed.deadline_ms = 60'000;
  governed.memory_budget = 1ull << 32;
  governed.max_pivots = 10'000'000;
  governed.max_disjuncts = 1'000'000;
  ResultSet g = Run(kFigure2Query, governed);
  ResultSet u = Run(kFigure2Query, EvalOptions{});
  EXPECT_TRUE(g.governor_status().ok());
  EXPECT_EQ(g.ToString(), u.ToString());
}

}  // namespace
}  // namespace lyric
