// Governor-aware cache tombstones: a query tripped by a budget limit
// (pivots / memory / disjuncts) records a "too expensive" marker in the
// SolverCache, so repeat runs under the same (or a tighter) budget fail
// fast with the byte-identical typed status instead of re-burning the
// budget. Tombstones never outlive their usefulness: larger budgets and
// ungoverned runs ignore them, successful recomputation overwrites them,
// and they evict from the LRU like any other entry.

#include <gtest/gtest.h>

#include <string>

#include "constraint/simplex.h"
#include "constraint/solver_cache.h"
#include "exec/governor.h"
#include "obs/metrics.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

using exec::CancellationToken;
using exec::GovernorLimits;
using exec::GovernorScope;
using exec::LimitKind;

uint64_t TombstoneHits() {
  return obs::Registry::Global().GetCounter("cache.tombstone.hit").value();
}

Conjunction IntervalConjunction(int64_t lo, int64_t hi) {
  VarId x = Variable::Intern("x");
  Conjunction c;
  c.Add(LinearConstraint::Ge(LinearExpr::Var(x),
                             LinearExpr::Constant(Rational(lo))));
  c.Add(LinearConstraint::Le(LinearExpr::Var(x),
                             LinearExpr::Constant(Rational(hi))));
  return c;
}

class TombstoneTest : public ::testing::Test {
 protected:
  void SetUp() override { SolverCache::Global().Clear(); }
  void TearDown() override { SolverCache::Global().Clear(); }
};

// -- Unit behavior against the cache API -----------------------------------

TEST_F(TombstoneTest, StoredTombstoneReplaysTheOriginalTrip) {
  SolverCache& cache = SolverCache::Global();
  Conjunction doomed = IntervalConjunction(0, 10);

  GovernorLimits limits;
  limits.max_pivots = 32;
  std::string tripped_message;
  {
    CancellationToken token(limits);
    GovernorScope scope(&token);
    token.ForceTrip(LimitKind::kPivots, "simplex.solve");
    tripped_message = token.ToStatus().message();
    cache.StoreSatTombstone(doomed);
  }

  // A fresh governed run with the same budget is doomed before solving.
  CancellationToken token(limits);
  GovernorScope scope(&token);
  uint64_t before = TombstoneHits();
  std::optional<Status> hit = cache.LookupSatTombstone(doomed);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->IsResourceExhausted()) << *hit;
  EXPECT_EQ(hit->message(), tripped_message);  // Byte-identical replay.
  EXPECT_EQ(TombstoneHits(), before + 1);
  // The serving token is now genuinely tripped (sticky), as if it had
  // done the doomed work itself.
  EXPECT_TRUE(token.stopped());
  EXPECT_EQ(token.tripped_kind(), LimitKind::kPivots);
}

TEST_F(TombstoneTest, LargerBudgetAndUngovernedLookupsIgnoreTombstones) {
  SolverCache& cache = SolverCache::Global();
  Conjunction doomed = IntervalConjunction(0, 10);
  GovernorLimits limits;
  limits.max_pivots = 32;
  {
    CancellationToken token(limits);
    GovernorScope scope(&token);
    token.ForceTrip(LimitKind::kPivots, "simplex.solve");
    cache.StoreSatTombstone(doomed);
  }
  {
    // Twice the budget: the tombstone proves nothing — really retry.
    GovernorLimits wider;
    wider.max_pivots = 64;
    CancellationToken token(wider);
    GovernorScope scope(&token);
    EXPECT_FALSE(cache.LookupSatTombstone(doomed).has_value());
    EXPECT_FALSE(token.stopped());
  }
  {
    // A governed run with no pivot limit at all.
    GovernorLimits deadline_only;
    deadline_only.deadline_ms = 60000;
    CancellationToken token(deadline_only);
    GovernorScope scope(&token);
    EXPECT_FALSE(cache.LookupSatTombstone(doomed).has_value());
  }
  // Ungoverned: no token, no tombstone service.
  EXPECT_FALSE(cache.LookupSatTombstone(doomed).has_value());
  // The tombstone entry also never answers a plain verdict lookup.
  EXPECT_FALSE(cache.LookupSat(doomed).has_value());
}

TEST_F(TombstoneTest, DeadlineTripsAreNeverTombstoned) {
  SolverCache& cache = SolverCache::Global();
  Conjunction c = IntervalConjunction(0, 10);
  GovernorLimits limits;
  limits.deadline_ms = 1;
  limits.max_pivots = 32;
  {
    CancellationToken token(limits);
    GovernorScope scope(&token);
    token.ForceTrip(LimitKind::kDeadline, "simplex.solve");
    cache.StoreSatTombstone(c);  // Must be a no-op for wall-clock trips.
  }
  CancellationToken token(limits);
  GovernorScope scope(&token);
  EXPECT_FALSE(cache.LookupSatTombstone(c).has_value());
}

TEST_F(TombstoneTest, SuccessfulRecomputationOverwritesTheTombstone) {
  SolverCache& cache = SolverCache::Global();
  Conjunction doomed = IntervalConjunction(0, 10);
  GovernorLimits limits;
  limits.max_pivots = 32;
  {
    CancellationToken token(limits);
    GovernorScope scope(&token);
    token.ForceTrip(LimitKind::kPivots, "simplex.solve");
    cache.StoreSatTombstone(doomed);
  }
  // A larger budget recomputes and stores the real verdict over the
  // tombstone (shared key).
  cache.StoreSat(doomed, true);
  CancellationToken token(limits);
  GovernorScope scope(&token);
  EXPECT_FALSE(cache.LookupSatTombstone(doomed).has_value());
  EXPECT_EQ(cache.LookupSat(doomed), std::optional<bool>(true));
}

TEST_F(TombstoneTest, TombstonesEvictLikeNormalEntries) {
  SolverCache& cache = SolverCache::Global();
  size_t previous = cache.capacity();
  cache.set_capacity(16);
  cache.Clear();
  Conjunction doomed = IntervalConjunction(0, 10);
  GovernorLimits limits;
  limits.max_pivots = 32;
  {
    CancellationToken token(limits);
    GovernorScope scope(&token);
    token.ForceTrip(LimitKind::kPivots, "simplex.solve");
    cache.StoreSatTombstone(doomed);
  }
  // Flood every shard until the tombstone falls off the LRU.
  for (int i = 0; i < 512; ++i) {
    cache.StoreSat(IntervalConjunction(-1000 - i, 1000 + i), true);
  }
  CancellationToken token(limits);
  GovernorScope scope(&token);
  EXPECT_FALSE(cache.LookupSatTombstone(doomed).has_value());
  cache.set_capacity(previous);
  cache.Clear();
}

// -- End-to-end: a budget-tripped query fails fast on repeat ---------------

TEST_F(TombstoneTest, RepeatGovernedQueryFailsFastWithIdenticalStatus) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  ASSERT_TRUE(ids.ok()) << ids.status();

  // An entailment query under a pivot budget far too small to finish: the
  // in-flight kernel computation trips and tombstones its key.
  const char* kQuery =
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and L(x, y) |= x <= 12";
  EvalOptions governed;
  governed.threads = 1;
  governed.max_pivots = 1;

  Evaluator ev(&db, governed);
  auto first = ev.Execute(kQuery);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->governor_status().IsResourceExhausted())
      << first->governor_status();
  ASSERT_EQ(first->governor_report().tripped, LimitKind::kPivots);
  const std::string first_message = first->governor_status().message();

  // Same budget again: served from the tombstone, byte-identical status,
  // and the kernels never re-burn the pivot budget on the doomed key.
  uint64_t before = TombstoneHits();
  Evaluator again(&db, governed);
  auto second = again.Execute(kQuery);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->governor_status().IsResourceExhausted())
      << second->governor_status();
  EXPECT_EQ(second->governor_status().message(), first_message);
  EXPECT_EQ(second->governor_report().site, first->governor_report().site);
  EXPECT_GT(TombstoneHits(), before);

  // A generous budget ignores the tombstone and completes the query.
  EvalOptions generous;
  generous.threads = 1;
  generous.max_pivots = 1000000;
  Evaluator wide(&db, generous);
  auto full = wide.Execute(kQuery);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_TRUE(full->governor_status().ok()) << full->governor_status();
  EXPECT_GT(full->size(), 0u);

  // The successful recomputation overwrote the tombstones: the tight
  // budget now rides the warm cache instead of failing fast.
  uint64_t after_success = TombstoneHits();
  Evaluator warm(&db, governed);
  auto third = warm.Execute(kQuery);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(TombstoneHits(), after_success);
}

}  // namespace
}  // namespace lyric
