// Serializer robustness: truncated and corrupted payloads are rejected
// with a clean Status — no UB, no crash, and no partial mutation of the
// target Database (LoadDatabase parses into a scratch database and only
// moves it into the target once the whole payload applied).
//
// The checked-in corpus under tests/corpus/ seeds the corruption shapes
// (truncation, binary garbage, unterminated strings, dangling
// references, duplicate oids, zero denominators, bracket damage); the
// sweeps below generate hundreds more mechanically from a fresh dump.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "office/office_db.h"
#include "storage/serializer.h"

#ifndef LYRIC_TEST_CORPUS_DIR
#define LYRIC_TEST_CORPUS_DIR "tests/corpus"
#endif

namespace lyric {
namespace {

class SerializerRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(office::BuildOfficeDatabase(&db_).ok());
    auto dump = Serializer::DumpDatabase(db_);
    ASSERT_TRUE(dump.ok()) << dump.status();
    dump_ = *dump;
  }

  // Loads `text` into a fresh database; on failure the target must be
  // exactly as empty as it started (all-or-nothing).
  void ExpectCleanRejectionOrFullLoad(const std::string& text,
                                      const std::string& label) {
    Database target;
    Status s = Serializer::LoadDatabase(text, &target);
    if (s.ok()) {
      EXPECT_TRUE(target.CheckIntegrity().ok()) << label;
      return;
    }
    EXPECT_FALSE(s.message().empty()) << label;
    EXPECT_EQ(target.ObjectCount(), 0u) << label << " mutated the target";
    EXPECT_TRUE(target.schema().ClassNames().empty())
        << label << " mutated the schema";
  }

  Database db_;
  std::string dump_;
};

TEST_F(SerializerRobustnessTest, CheckedInCorpusRejectsCleanly) {
  size_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(LYRIC_TEST_CORPUS_DIR)) {
    if (!entry.is_regular_file()) continue;
    ++files;
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buf;
    buf << in.rdbuf();

    Database target;
    Status s = Serializer::LoadDatabase(buf.str(), &target);
    EXPECT_FALSE(s.ok()) << entry.path() << " should have been rejected";
    EXPECT_EQ(target.ObjectCount(), 0u) << entry.path();
    EXPECT_TRUE(target.schema().ClassNames().empty()) << entry.path();
  }
  EXPECT_GE(files, 9u) << "corpus directory " << LYRIC_TEST_CORPUS_DIR
                       << " is missing its seed files";
}

TEST_F(SerializerRobustnessTest, EveryTruncationRejectsOrRoundTrips) {
  // Sweep prefixes: a fine-grained pass over the first bytes (where the
  // header and schema live) and a coarser stride through the rest, plus
  // every cut point near the end.
  std::vector<size_t> cuts;
  for (size_t i = 0; i < std::min<size_t>(dump_.size(), 64); ++i) {
    cuts.push_back(i);
  }
  for (size_t i = 64; i + 50 < dump_.size(); i += 7) cuts.push_back(i);
  for (size_t i = dump_.size() > 50 ? dump_.size() - 50 : 0;
       i < dump_.size(); ++i) {
    cuts.push_back(i);
  }
  for (size_t cut : cuts) {
    ExpectCleanRejectionOrFullLoad(dump_.substr(0, cut),
                                   "truncation at " + std::to_string(cut));
  }
}

TEST_F(SerializerRobustnessTest, SingleByteCorruptionNeverCrashesOrLeaks) {
  // Flip one byte at a stride of positions; any individual flip may
  // happen to stay parseable (e.g. inside a name), but none may crash,
  // and every rejection must leave the target untouched.
  for (size_t pos = 0; pos < dump_.size(); pos += 11) {
    for (char corrupt : {'\0', '\xff', '(', '\'', '9'}) {
      std::string mutated = dump_;
      if (mutated[pos] == corrupt) continue;
      mutated[pos] = corrupt;
      ExpectCleanRejectionOrFullLoad(
          mutated, "flip at " + std::to_string(pos) + " to " +
                       std::to_string(static_cast<int>(corrupt)));
    }
  }
}

TEST_F(SerializerRobustnessTest, LoadRequiresEmptyTarget) {
  Database target;
  ASSERT_TRUE(office::BuildOfficeDatabase(&target).ok());
  Status s = Serializer::LoadDatabase(dump_, &target);
  EXPECT_TRUE(s.IsInvalidArgument()) << s;
}

TEST_F(SerializerRobustnessTest, FailedLoadLeavesTargetReusable) {
  // A target that survived a rejected load must accept a good payload
  // afterwards — the scratch-database path may not leave partial interned
  // state behind.
  Database target;
  std::string corrupt = dump_.substr(0, dump_.size() / 2);
  EXPECT_FALSE(Serializer::LoadDatabase(corrupt, &target).ok());
  ASSERT_TRUE(Serializer::LoadDatabase(dump_, &target).ok());
  EXPECT_EQ(target.ObjectCount(), db_.ObjectCount());
  EXPECT_TRUE(target.CheckIntegrity().ok());
}

TEST_F(SerializerRobustnessTest, LoadFromMissingFileFailsCleanly) {
  Database target;
  Status s = Serializer::LoadFromFile("/nonexistent/lyric.db", &target);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(target.ObjectCount(), 0u);
}

}  // namespace
}  // namespace lyric
