#include "geometry/polytope2.h"

#include <random>

#include <gtest/gtest.h>

#include "constraint/fourier_motzkin.h"

namespace lyric {
namespace {

class Polytope2Test : public ::testing::Test {
 protected:
  VarId x_ = Variable::Intern("gx");
  VarId y_ = Variable::Intern("gy");

  LinearExpr X() { return LinearExpr::Var(x_); }
  LinearExpr Y() { return LinearExpr::Var(y_); }
  LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

  Conjunction Box(int64_t x0, int64_t x1, int64_t y0, int64_t y1) {
    Conjunction c;
    c.Add(LinearConstraint::Ge(X(), C(x0)));
    c.Add(LinearConstraint::Le(X(), C(x1)));
    c.Add(LinearConstraint::Ge(Y(), C(y0)));
    c.Add(LinearConstraint::Le(Y(), C(y1)));
    return c;
  }
};

TEST_F(Polytope2Test, BoxVertices) {
  auto verts = Polytope2::Vertices(Box(0, 4, 0, 2), x_, y_).value();
  ASSERT_EQ(verts.size(), 4u);
  // CCW from the lexicographically smallest vertex.
  EXPECT_EQ(verts[0], (Point2{Rational(0), Rational(0)}));
  EXPECT_EQ(Polytope2::SignedArea(verts), Rational(8));
}

TEST_F(Polytope2Test, BoxArea) {
  EXPECT_EQ(Polytope2::Area(Box(0, 4, 0, 2), x_, y_).value(), Rational(8));
  EXPECT_EQ(Polytope2::Area(Box(-4, 4, -2, 2), x_, y_).value(), Rational(32));
}

TEST_F(Polytope2Test, TriangleArea) {
  // x >= 0, y >= 0, x + y <= 3: right triangle, area 9/2.
  Conjunction c;
  c.Add(LinearConstraint::Ge(X(), C(0)));
  c.Add(LinearConstraint::Ge(Y(), C(0)));
  c.Add(LinearConstraint::Le(X() + Y(), C(3)));
  EXPECT_EQ(Polytope2::Area(c, x_, y_).value(), Rational(9, 2));
}

TEST_F(Polytope2Test, RedundantConstraintsIgnored) {
  Conjunction c = Box(0, 2, 0, 2);
  c.Add(LinearConstraint::Le(X() + Y(), C(100)));  // Far away.
  EXPECT_EQ(Polytope2::Area(c, x_, y_).value(), Rational(4));
}

TEST_F(Polytope2Test, EmptyRegion) {
  Conjunction c = Box(0, 1, 0, 1);
  c.Add(LinearConstraint::Ge(X(), C(5)));
  EXPECT_EQ(Polytope2::Vertices(c, x_, y_).value().size(), 0u);
  EXPECT_EQ(Polytope2::Area(c, x_, y_).value(), Rational(0));
}

TEST_F(Polytope2Test, DegenerateSegmentAndPoint) {
  // A segment: x in [0,2], y = 1.
  Conjunction seg;
  seg.Add(LinearConstraint::Ge(X(), C(0)));
  seg.Add(LinearConstraint::Le(X(), C(2)));
  seg.Add(LinearConstraint::Eq(Y(), C(1)));
  auto verts = Polytope2::Vertices(seg, x_, y_).value();
  EXPECT_EQ(verts.size(), 2u);
  EXPECT_EQ(Polytope2::Area(seg, x_, y_).value(), Rational(0));
  // A point.
  Conjunction pt;
  pt.Add(LinearConstraint::Eq(X(), C(1)));
  pt.Add(LinearConstraint::Eq(Y(), C(2)));
  EXPECT_EQ(Polytope2::Vertices(pt, x_, y_).value().size(), 1u);
}

TEST_F(Polytope2Test, UnboundedRejected) {
  Conjunction c;
  c.Add(LinearConstraint::Ge(X(), C(0)));
  c.Add(LinearConstraint::Ge(Y(), C(0)));
  auto r = Polytope2::Vertices(c, x_, y_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(Polytope2Test, ThirdVariableRejected) {
  Conjunction c = Box(0, 1, 0, 1);
  c.Add(LinearConstraint::Le(LinearExpr::Var(Variable::Intern("gz")), C(1)));
  EXPECT_FALSE(Polytope2::Vertices(c, x_, y_).ok());
}

TEST_F(Polytope2Test, DisequalityRejected) {
  Conjunction c = Box(0, 1, 0, 1);
  c.Add(LinearConstraint::Neq(X(), C(0)));
  EXPECT_FALSE(Polytope2::Area(c, x_, y_).ok());
}

TEST_F(Polytope2Test, FromPolygonRoundTrip) {
  std::vector<Point2> tri{{Rational(0), Rational(0)},
                          {Rational(3), Rational(0)},
                          {Rational(0), Rational(3)}};
  Conjunction c = Polytope2::FromPolygon(tri, x_, y_).value();
  EXPECT_EQ(Polytope2::Area(c, x_, y_).value(), Rational(9, 2));
  // Clockwise input is normalized.
  std::vector<Point2> cw{{Rational(0), Rational(0)},
                         {Rational(0), Rational(3)},
                         {Rational(3), Rational(0)}};
  Conjunction c2 = Polytope2::FromPolygon(cw, x_, y_).value();
  EXPECT_EQ(Polytope2::Area(c2, x_, y_).value(), Rational(9, 2));
  // Interior membership matches.
  EXPECT_TRUE(
      c.Eval({{x_, Rational(1)}, {y_, Rational(1)}}).value());
  EXPECT_FALSE(
      c.Eval({{x_, Rational(3)}, {y_, Rational(3)}}).value());
}

TEST_F(Polytope2Test, FromPolygonDegenerateRejected) {
  std::vector<Point2> line{{Rational(0), Rational(0)},
                           {Rational(1), Rational(1)},
                           {Rational(2), Rational(2)}};
  EXPECT_FALSE(Polytope2::FromPolygon(line, x_, y_).ok());
  EXPECT_FALSE(
      Polytope2::FromPolygon({{Rational(0), Rational(0)}}, x_, y_).ok());
}

// Property: the area of a random clipped polygon equals the area computed
// after a round trip through halfplanes, and FM projection of the region
// onto x spans exactly [min_x, max_x] of the vertices.
class PolytopeRandom : public ::testing::TestWithParam<int> {};

TEST_P(PolytopeRandom, ProjectionSpansVertexRange) {
  std::mt19937_64 rng(GetParam() * 2654435761u);
  VarId x = Variable::Intern("gx");
  VarId y = Variable::Intern("gy");
  Conjunction c;
  // Random bounded region: box plus random cutting halfplanes through it.
  c.Add(LinearConstraint::Ge(LinearExpr::Var(x),
                             LinearExpr::Constant(Rational(-10))));
  c.Add(LinearConstraint::Le(LinearExpr::Var(x),
                             LinearExpr::Constant(Rational(10))));
  c.Add(LinearConstraint::Ge(LinearExpr::Var(y),
                             LinearExpr::Constant(Rational(-10))));
  c.Add(LinearConstraint::Le(LinearExpr::Var(y),
                             LinearExpr::Constant(Rational(10))));
  for (int i = 0; i < 4; ++i) {
    LinearExpr e;
    e.AddTerm(x, Rational(static_cast<int64_t>(rng() % 7) - 3));
    e.AddTerm(y, Rational(static_cast<int64_t>(rng() % 7) - 3));
    e.AddConstant(Rational(-(static_cast<int64_t>(rng() % 10) + 5)));
    c.Add(LinearConstraint(e, RelOp::kLe));
  }
  auto verts_r = Polytope2::Vertices(c, x, y);
  ASSERT_TRUE(verts_r.ok()) << verts_r.status();
  if (verts_r->size() < 2) return;  // Degenerate draw; nothing to check.
  Rational min_x = (*verts_r)[0].x, max_x = (*verts_r)[0].x;
  for (const Point2& p : *verts_r) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
  }
  Conjunction proj = FourierMotzkin::ProjectOnto(c, VarSet{x}).value();
  EXPECT_TRUE(proj.Eval({{x, min_x}}).value());
  EXPECT_TRUE(proj.Eval({{x, max_x}}).value());
  Rational eps(1, 100);
  EXPECT_FALSE(proj.Eval({{x, min_x - eps}}).value());
  EXPECT_FALSE(proj.Eval({{x, max_x + eps}}).value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolytopeRandom, ::testing::Range(1, 16));

}  // namespace
}  // namespace lyric
