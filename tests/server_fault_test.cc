// Fault-injection tests for the `net` site (LYRIC_FAULT=net:prob:seed):
// injected transport faults must surface as typed kUnavailable statuses,
// the server must keep serving through them, and nothing may leak —
// sessions drain to zero and the admission ledger returns to empty.
// (The broader gate — the whole e2e suite under LYRIC_FAULT=net —
// is fault_gate_server_net in tests/CMakeLists.txt.)

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "exec/scheduler.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "office/office_db.h"
#include "util/fault.h"

namespace lyric {
namespace {

Database MakeDb() {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  EXPECT_TRUE(ids.ok()) << ids.status();
  return db;
}

uint64_t InjectedCount() {
  return obs::Registry::Global().GetCounter("net.faults.injected").value();
}

class ServerFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::ConfigureForTesting(""); }
};

TEST_F(ServerFaultTest, FaultsAreTypedUnavailable) {
  ASSERT_TRUE(fault::ConfigureForTesting("net:1.0:5"));
  const uint64_t before = InjectedCount();
  Result<net::Socket> sock = net::Socket::Connect("127.0.0.1", 1);
  ASSERT_FALSE(sock.ok());
  EXPECT_TRUE(sock.status().IsUnavailable()) << sock.status();
  EXPECT_NE(sock.status().message().find("injected"), std::string::npos);
  EXPECT_GT(InjectedCount(), before);
}

TEST_F(ServerFaultTest, ServerKeepsServingThroughFaults) {
  Database db = MakeDb();
  exec::SchedulerLimits limits;
  limits.max_concurrent = 2;
  exec::QueryScheduler scheduler(limits);

  net::ServerOptions sopts;
  sopts.eval.threads = 1;
  sopts.scheduler = &scheduler;
  net::Server server(&db, sopts);
  ASSERT_TRUE(server.Start().ok());

  const std::string query = "SELECT O FROM Object_in_Room O";
  std::string expected;
  {
    net::ClientOptions copts;
    copts.port = server.port();
    net::Client clean(copts);
    Result<net::QueryResponse> resp = clean.Execute(query);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_TRUE(resp->status.ok());
    expected = resp->Fingerprint();
  }

  // Arm the site AFTER the server is up so Bind/Listen stay clean; from
  // here every read/write/accept/connect can fail with probability 0.2.
  ASSERT_TRUE(fault::ConfigureForTesting("net:0.2:9"));
  const uint64_t before = InjectedCount();

  net::ClientOptions copts;
  copts.port = server.port();
  copts.retry.max_retries = 32;
  copts.retry.base_backoff_ms = 1;
  copts.retry.seed = 4;
  net::Client client(copts);
  int ok = 0;
  constexpr int kRequests = 20;
  for (int i = 0; i < kRequests; ++i) {
    Result<net::QueryResponse> resp = client.Execute(query);
    if (resp.ok() && resp->status.ok() && resp->Fingerprint() == expected) {
      ++ok;
    }
  }
  EXPECT_GT(InjectedCount(), before) << "the site never fired";
  // An attempt touches several socket ops, so at p=0.2 a single attempt
  // fails often; 32 retries push whole-request exhaustion below 1e-4
  // even with the op sequence perturbed by scheduling (partial reads,
  // reconnect races). Anything less than a full sweep means retries are
  // not reconnecting properly.
  EXPECT_EQ(ok, kRequests);
  EXPECT_GT(client.stats().transport_errors, 0u)
      << "no transport error ever observed at p=0.2; injection is broken";

  // Disarm and verify the server is fully healthy, with nothing leaked.
  fault::ConfigureForTesting("");
  client.Close();
  {
    net::ClientOptions clean_opts;
    clean_opts.port = server.port();
    net::Client clean(clean_opts);
    Result<net::QueryResponse> resp = clean.Execute(query);
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->Fingerprint(), expected);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.active_sessions() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.active_sessions(), 0u) << "session leaked across faults";
  // The admission ledger must be empty: every ticket released despite
  // evaluations whose response write failed.
  exec::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.waiting, 0u);
  EXPECT_EQ(stats.reserved_memory, 0u);
  server.Stop();
}

TEST_F(ServerFaultTest, StopUnderFaultsLeaksNothing) {
  Database db = MakeDb();
  net::Server server(&db, net::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // A few live sessions mid-traffic, then Stop with faults firing on the
  // teardown path itself.
  std::vector<std::unique_ptr<net::Client>> clients;
  for (int i = 0; i < 3; ++i) {
    net::ClientOptions copts;
    copts.port = server.port();
    copts.retry.max_retries = 8;
    copts.retry.base_backoff_ms = 1;
    auto client = std::make_unique<net::Client>(copts);
    (void)client->Execute("SELECT O FROM Object_in_Room O");
    clients.push_back(std::move(client));
  }
  ASSERT_TRUE(fault::ConfigureForTesting("net:0.5:11"));
  server.Stop();
  EXPECT_EQ(server.active_sessions(), 0u);
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace lyric
