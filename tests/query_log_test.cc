// Tests for the per-query event log: record JSON shape, the bounded ring,
// JSONL sink rotation, and the evaluator integration that fills one
// record per executed query (docs/OBSERVABILITY.md).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/query_log.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  std::string base = dir != nullptr && *dir != '\0' ? dir : "/tmp";
  if (base.back() != '/') base += '/';
  return base + name + "." + std::to_string(::getpid());
}

class QueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::QueryLog::Global().ConfigureSink("", 0);
    obs::QueryLog::Global().SetCapacityForTesting(256);
    obs::QueryLog::Global().ClearForTesting();
  }
  void TearDown() override {
    obs::QueryLog::Global().ConfigureSink("", 0);
    obs::QueryLog::Global().ClearForTesting();
  }
};

TEST_F(QueryLogTest, HashIsStableFnv1a) {
  // FNV-1a 64-bit test vectors; the hash keys dashboards, so it must
  // never silently change.
  EXPECT_EQ(obs::HashQueryText(""), 14695981039346656037ull);
  EXPECT_EQ(obs::HashQueryText("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(obs::HashQueryText("SELECT X FROM Desk X"),
            obs::HashQueryText("SELECT X FROM Desk X"));
  EXPECT_NE(obs::HashQueryText("SELECT X FROM Desk X"),
            obs::HashQueryText("SELECT Y FROM Desk Y"));
}

TEST_F(QueryLogTest, RecordJsonShape) {
  obs::QueryLogRecord rec;
  rec.query = "SELECT \"X\" FROM Desk X";
  rec.query_hash = 0xabcull;
  rec.status = "ok";
  rec.admission = "direct";
  rec.duration_ns = 12345;
  rec.rows = 2;
  rec.threads = 4;
  rec.truncated = true;
  std::string json = rec.ToJson();
  // Quotes in the query text must be escaped — the record is one JSONL
  // line, so a raw quote would corrupt the whole sink.
  EXPECT_NE(json.find("\"query\": \"SELECT \\\"X\\\" FROM Desk X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"query_hash\": \"0000000000000abc\""),
            std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"admission\": \"direct\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\": 12345"), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"truncated\": true"), std::string::npos);
  EXPECT_NE(json.find("\"slow\": false"), std::string::npos);
  // No stage profile attached -> the key is omitted entirely.
  EXPECT_EQ(json.find("\"stages\""), std::string::npos);
  rec.stages = "query 1ms\n  parse 0.1ms";
  EXPECT_NE(rec.ToJson().find("\"stages\": \"query 1ms\\n  parse 0.1ms\""),
            std::string::npos);
}

TEST_F(QueryLogTest, RingEvictsOldestAndStampsSeq) {
  obs::QueryLog& log = obs::QueryLog::Global();
  log.SetCapacityForTesting(4);
  const uint64_t total_before = log.total_appended();
  for (int i = 0; i < 10; ++i) {
    obs::QueryLogRecord rec;
    rec.query = "q" + std::to_string(i);
    log.Append(std::move(rec));
  }
  std::vector<obs::QueryLogRecord> recent = log.Recent(100);
  ASSERT_EQ(recent.size(), 4u);  // bounded by capacity
  EXPECT_EQ(recent.front().query, "q6");  // oldest surviving
  EXPECT_EQ(recent.back().query, "q9");
  // Seq is monotonic and survives eviction; unix_ms is stamped.
  for (size_t i = 1; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].seq, recent[i - 1].seq + 1);
  }
  EXPECT_GT(recent.back().unix_ms, 0u);
  EXPECT_EQ(log.total_appended(), total_before + 10);
  EXPECT_EQ(log.Recent(2).size(), 2u);
  EXPECT_EQ(log.Recent(2).front().query, "q8");
}

TEST_F(QueryLogTest, LongQueryTextIsTruncated) {
  obs::QueryLog& log = obs::QueryLog::Global();
  obs::QueryLogRecord rec;
  rec.query = std::string(5000, 'x');
  log.Append(std::move(rec));
  EXPECT_EQ(log.Recent(1).front().query.size(), 200u);
}

TEST_F(QueryLogTest, SinkWritesJsonlAndRotates) {
  const std::string path = TempPath("lyric_qlog");
  const std::string rotated = path + ".1";
  std::remove(path.c_str());
  std::remove(rotated.c_str());
  obs::QueryLog& log = obs::QueryLog::Global();
  // Each record line is ~260 bytes; a 1000-byte cap rotates after a few.
  log.ConfigureSink(path, 1000);
  for (int i = 0; i < 12; ++i) {
    obs::QueryLogRecord rec;
    rec.query = "sink query " + std::to_string(i);
    rec.status = "ok";
    log.Append(std::move(rec));
  }
  // The live file stayed under the cap, the rotated generation exists,
  // and every line in both is one JSON object.
  ASSERT_TRUE(FileExists(path));
  EXPECT_TRUE(FileExists(rotated));
  for (const std::string& p : {path, rotated}) {
    std::istringstream lines(ReadAll(p));
    std::string line;
    size_t n = 0;
    while (std::getline(lines, line)) {
      ASSERT_FALSE(line.empty());
      EXPECT_EQ(line.front(), '{') << p;
      EXPECT_EQ(line.back(), '}') << p;
      EXPECT_NE(line.find("\"seq\""), std::string::npos) << p;
      ++n;
    }
    EXPECT_GT(n, 0u) << p;
  }
  EXPECT_LE(ReadAll(path).size(), 1000u);
  log.ConfigureSink("", 0);
  std::remove(path.c_str());
  std::remove(rotated.c_str());
}

TEST_F(QueryLogTest, EvaluatorAppendsOneRecordPerQuery) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  ASSERT_TRUE(ids.ok()) << ids.status();
  obs::QueryLog& log = obs::QueryLog::Global();
  const uint64_t before = log.total_appended();

  Evaluator ev(&db);
  auto r = ev.Execute(std::string("SELECT X FROM Desk X"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(log.total_appended(), before + 1);
  obs::QueryLogRecord rec = log.Recent(1).front();
  EXPECT_EQ(rec.query, "SELECT X FROM Desk X");
  EXPECT_EQ(rec.query_hash, obs::HashQueryText("SELECT X FROM Desk X"));
  EXPECT_EQ(rec.status, "ok");
  EXPECT_EQ(rec.rows, r->size());
  EXPECT_EQ(rec.threads, 1u);
  EXPECT_GT(rec.duration_ns, 0u);
  EXPECT_FALSE(rec.truncated);
  // No scheduler limits configured: admission is a direct grant.
  EXPECT_EQ(rec.admission, "direct");
  EXPECT_EQ(rec.governor, "");

  // A parse failure still logs, with the error category as the status.
  auto bad = ev.Execute(std::string("SELEC nonsense"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(log.total_appended(), before + 2);
  rec = log.Recent(1).front();
  EXPECT_NE(rec.status, "ok");
  EXPECT_EQ(rec.rows, 0u);
}

TEST_F(QueryLogTest, SlowThresholdPromotesStageProfile) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  ASSERT_TRUE(ids.ok()) << ids.status();
  obs::QueryLog& log = obs::QueryLog::Global();

  // Threshold 0 disables promotion entirely.
  {
    EvalOptions opts;
    opts.slow_ms = 0;
    Evaluator ev(&db, opts);
    ASSERT_TRUE(ev.Execute(std::string("SELECT X FROM Desk X")).ok());
    obs::QueryLogRecord rec = log.Recent(1).front();
    EXPECT_FALSE(rec.slow);
    EXPECT_TRUE(rec.stages.empty());
  }
  // A 1ms threshold against a 41x41 cross product with per-binding
  // simplex work: comfortably slow on any machine, so the promotion is
  // deterministic.
  {
    ASSERT_TRUE(office::AddScaledDesks(&db, 40, /*seed=*/7).ok());
    EvalOptions opts;
    opts.slow_ms = 1;
    Evaluator ev(&db, opts);
    ASSERT_TRUE(
        ev.Execute(std::string("SELECT A, B FROM Object_in_Room A, "
                               "Object_in_Room B WHERE A.location[B]"))
            .ok());
    obs::QueryLogRecord rec = log.Recent(1).front();
    ASSERT_TRUE(rec.slow) << "cross-product query finished under 1ms?";
    // The promoted profile names the evaluation stages.
    EXPECT_NE(rec.stages.find("query"), std::string::npos);
    EXPECT_NE(rec.stages.find("from"), std::string::npos);
  }
}

}  // namespace
}  // namespace lyric
