#include "constraint/linear_expr.h"

#include <gtest/gtest.h>

namespace lyric {
namespace {

class LinearExprTest : public ::testing::Test {
 protected:
  VarId x_ = Variable::Intern("x");
  VarId y_ = Variable::Intern("y");
  VarId z_ = Variable::Intern("z");
};

TEST_F(LinearExprTest, ZeroExpr) {
  LinearExpr e;
  EXPECT_TRUE(e.IsConstant());
  EXPECT_TRUE(e.constant().IsZero());
  EXPECT_EQ(e.ToString(), "0");
  EXPECT_TRUE(e.FreeVars().empty());
}

TEST_F(LinearExprTest, TermConstruction) {
  LinearExpr e = LinearExpr::Term(Rational(2), x_);
  EXPECT_EQ(e.Coeff(x_), Rational(2));
  EXPECT_EQ(e.Coeff(y_), Rational(0));
  EXPECT_EQ(e.FreeVars(), VarSet{x_});
}

TEST_F(LinearExprTest, ZeroCoefficientsNeverStored) {
  LinearExpr e = LinearExpr::Var(x_);
  e.AddTerm(x_, Rational(-1));
  EXPECT_TRUE(e.IsConstant());
  EXPECT_EQ(e, LinearExpr());
  e.AddTerm(y_, Rational(0));
  EXPECT_TRUE(e.terms().empty());
}

TEST_F(LinearExprTest, AdditionMergesTerms) {
  LinearExpr a = LinearExpr::Term(Rational(2), x_) + LinearExpr::Var(y_);
  LinearExpr b = LinearExpr::Term(Rational(3), x_) +
                 LinearExpr::Constant(Rational(5));
  LinearExpr sum = a + b;
  EXPECT_EQ(sum.Coeff(x_), Rational(5));
  EXPECT_EQ(sum.Coeff(y_), Rational(1));
  EXPECT_EQ(sum.constant(), Rational(5));
}

TEST_F(LinearExprTest, Scale) {
  LinearExpr e = LinearExpr::Term(Rational(2), x_) +
                 LinearExpr::Constant(Rational(3));
  LinearExpr s = e.Scale(Rational(1, 2));
  EXPECT_EQ(s.Coeff(x_), Rational(1));
  EXPECT_EQ(s.constant(), Rational(3, 2));
  EXPECT_EQ(e.Scale(Rational(0)), LinearExpr());
}

TEST_F(LinearExprTest, Substitute) {
  // x + 2y with x := 3z + 1  ->  3z + 2y + 1.
  LinearExpr e = LinearExpr::Var(x_) + LinearExpr::Term(Rational(2), y_);
  LinearExpr repl = LinearExpr::Term(Rational(3), z_) +
                    LinearExpr::Constant(Rational(1));
  LinearExpr out = e.Substitute(x_, repl);
  EXPECT_EQ(out.Coeff(x_), Rational(0));
  EXPECT_EQ(out.Coeff(y_), Rational(2));
  EXPECT_EQ(out.Coeff(z_), Rational(3));
  EXPECT_EQ(out.constant(), Rational(1));
}

TEST_F(LinearExprTest, SubstituteAbsentVarIsNoop) {
  LinearExpr e = LinearExpr::Var(y_);
  EXPECT_EQ(e.Substitute(x_, LinearExpr::Var(z_)), e);
}

TEST_F(LinearExprTest, Rename) {
  LinearExpr e = LinearExpr::Var(x_) + LinearExpr::Term(Rational(2), y_);
  std::map<VarId, VarId> renaming{{x_, z_}};
  LinearExpr out = e.Rename(renaming);
  EXPECT_EQ(out.Coeff(z_), Rational(1));
  EXPECT_EQ(out.Coeff(y_), Rational(2));
  EXPECT_EQ(out.Coeff(x_), Rational(0));
}

TEST_F(LinearExprTest, RenameMergingCollision) {
  // x + 2y with y -> x merges into 3x.
  LinearExpr e = LinearExpr::Var(x_) + LinearExpr::Term(Rational(2), y_);
  std::map<VarId, VarId> renaming{{y_, x_}};
  EXPECT_EQ(e.Rename(renaming).Coeff(x_), Rational(3));
}

TEST_F(LinearExprTest, Eval) {
  LinearExpr e = LinearExpr::Term(Rational(2), x_) +
                 LinearExpr::Term(Rational(-1), y_) +
                 LinearExpr::Constant(Rational(7));
  Assignment a{{x_, Rational(3)}, {y_, Rational(1, 2)}};
  EXPECT_EQ(e.Eval(a).value(), Rational(25, 2));
  Assignment missing{{x_, Rational(3)}};
  EXPECT_FALSE(e.Eval(missing).ok());
}

TEST_F(LinearExprTest, ToStringReadable) {
  LinearExpr e = LinearExpr::Term(Rational(2), x_) +
                 LinearExpr::Term(Rational(-3), y_) +
                 LinearExpr::Constant(Rational(-5));
  EXPECT_EQ(e.ToString(), "2*x - 3*y - 5");
  EXPECT_EQ(LinearExpr::Var(x_).ToString(), "x");
  EXPECT_EQ((-LinearExpr::Var(x_)).ToString(), "-x");
}

TEST_F(LinearExprTest, CompareTotalOrder) {
  LinearExpr a = LinearExpr::Var(x_);
  LinearExpr b = LinearExpr::Var(y_);
  LinearExpr c = LinearExpr::Var(x_) + LinearExpr::Constant(Rational(1));
  EXPECT_EQ(a.Compare(a), 0);
  EXPECT_EQ(a.Compare(b), -b.Compare(a) == 1 ? a.Compare(b) : a.Compare(b));
  EXPECT_NE(a.Compare(c), 0);
  EXPECT_EQ(a.Compare(c), -c.Compare(a));
}

}  // namespace
}  // namespace lyric
