#include "constraint/family.h"

#include <gtest/gtest.h>

namespace lyric {
namespace {

constexpr ConstraintFamily kC = ConstraintFamily::kConjunctive;
constexpr ConstraintFamily kEC = ConstraintFamily::kExistentialConjunctive;
constexpr ConstraintFamily kD = ConstraintFamily::kDisjunctive;
constexpr ConstraintFamily kDE = ConstraintFamily::kDisjunctiveExistential;

TEST(FamilyTest, JoinIsIdempotentAndCommutative) {
  for (ConstraintFamily a : {kC, kEC, kD, kDE}) {
    EXPECT_EQ(FamilyJoin(a, a), a);
    for (ConstraintFamily b : {kC, kEC, kD, kDE}) {
      EXPECT_EQ(FamilyJoin(a, b), FamilyJoin(b, a));
    }
  }
}

TEST(FamilyTest, LatticeShape) {
  // Conjunctive is the bottom.
  EXPECT_EQ(FamilyJoin(kC, kEC), kEC);
  EXPECT_EQ(FamilyJoin(kC, kD), kD);
  EXPECT_EQ(FamilyJoin(kC, kDE), kDE);
  // The incomparable middle joins at the top (§3.1: "disjunctive
  // existential constraints include all the others").
  EXPECT_EQ(FamilyJoin(kEC, kD), kDE);
  EXPECT_EQ(FamilyJoin(kEC, kDE), kDE);
  EXPECT_EQ(FamilyJoin(kD, kDE), kDE);
}

TEST(FamilyTest, JoinIsAssociative) {
  for (ConstraintFamily a : {kC, kEC, kD, kDE}) {
    for (ConstraintFamily b : {kC, kEC, kD, kDE}) {
      for (ConstraintFamily c : {kC, kEC, kD, kDE}) {
        EXPECT_EQ(FamilyJoin(FamilyJoin(a, b), c),
                  FamilyJoin(a, FamilyJoin(b, c)));
      }
    }
  }
}

TEST(FamilyTest, Inclusion) {
  // Every family includes itself and conjunctive.
  for (ConstraintFamily f : {kC, kEC, kD, kDE}) {
    EXPECT_TRUE(FamilyIncluded(f, f));
    EXPECT_TRUE(FamilyIncluded(kC, f));
    EXPECT_TRUE(FamilyIncluded(f, kDE));
  }
  EXPECT_FALSE(FamilyIncluded(kEC, kD));
  EXPECT_FALSE(FamilyIncluded(kD, kEC));
  EXPECT_FALSE(FamilyIncluded(kDE, kC));
  EXPECT_FALSE(FamilyIncluded(kD, kC));
}

TEST(FamilyTest, PredicatesAndNames) {
  EXPECT_FALSE(FamilyHasExistentials(kC));
  EXPECT_TRUE(FamilyHasExistentials(kEC));
  EXPECT_FALSE(FamilyHasExistentials(kD));
  EXPECT_TRUE(FamilyHasExistentials(kDE));
  EXPECT_FALSE(FamilyHasDisjunction(kC));
  EXPECT_FALSE(FamilyHasDisjunction(kEC));
  EXPECT_TRUE(FamilyHasDisjunction(kD));
  EXPECT_TRUE(FamilyHasDisjunction(kDE));
  EXPECT_STREQ(ConstraintFamilyToString(kC), "conjunctive");
  EXPECT_STREQ(ConstraintFamilyToString(kDE), "disjunctive-existential");
}

}  // namespace
}  // namespace lyric
