// Property suite: the direct evaluator and the §5 flat translation agree
// on every supported query across randomized database instances — the
// semantic core of the paper's equivalence argument.

#include <gtest/gtest.h>

#include "office/office_db.h"
#include "query/evaluator.h"
#include "relational/translator.h"

namespace lyric {
namespace {

class FlatEquivalence : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    int seed = GetParam();
    // Alternate between shared and per-desk catalogs across seeds.
    ASSERT_TRUE(office::AddScaledDesks(&db_, 4 + seed % 7,
                                       static_cast<uint64_t>(seed),
                                       /*share_catalog=*/seed % 2 == 0)
                    .ok());
  }

  Database db_;
};

TEST_P(FlatEquivalence, SameAnswersOnSupportedQueries) {
  const char* queries[] = {
      // Pure scan.
      "SELECT O FROM Object_in_Room O",
      // Attribute comparison.
      "SELECT X FROM Desk X WHERE X.color = 'red'",
      // Path join.
      "SELECT Y FROM Desk X WHERE X.drawer[Y]",
      // Multi-step path join ending in a CST value.
      "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
      // Constraint satisfiability filter.
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and SAT(L(x, y) and 0 <= x and x <= 10)",
      // Constraint entailment filter.
      "SELECT DSK FROM Desk DSK "
      "WHERE DSK.drawer_center[C] and C(p, q) |= p = -2",
      // Two-variable join with comparison.
      "SELECT O1 FROM Object_in_Room O1, Object_in_Room O2 "
      "WHERE O1.inv_number = O2.inv_number and O1.location[L] and "
      "SAT(L(x, y) and y >= 4)",
      // Construction of a new CST object.
      "SELECT O, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and L(x, y)) "
      "FROM Object_in_Room O, Office_Object CO "
      "WHERE O.catalog_object[CO] and O.location[L] and "
      "CO.extent[E] and CO.translation[D]",
  };
  FlatDatabase flat = FlatDatabase::Flatten(db_).value();
  for (const char* q : queries) {
    Evaluator ev(&db_);
    auto direct = ev.Execute(q);
    ASSERT_TRUE(direct.ok()) << q << "\n -> " << direct.status();
    FlatTranslator tr(&flat, &db_);
    auto via_flat = tr.Execute(q);
    ASSERT_TRUE(via_flat.ok()) << q << "\n -> " << via_flat.status();
    // Same multiset of rows up to set semantics.
    EXPECT_EQ(direct->size(), via_flat->size()) << q;
    for (const auto& row : via_flat->tuples()) {
      bool found = false;
      for (const auto& drow : direct->rows()) {
        if (drow == row) found = true;
      }
      EXPECT_TRUE(found) << q << "\n flat row missing from direct: "
                         << row[0].ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatEquivalence, ::testing::Range(1, 9));

}  // namespace
}  // namespace lyric
