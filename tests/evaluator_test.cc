#include "query/evaluator.h"

#include <gtest/gtest.h>

#include "office/office_db.h"

namespace lyric {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
  }

  ResultSet Run(const std::string& text) {
    Evaluator ev(&db_);
    auto r = ev.Execute(text);
    EXPECT_TRUE(r.ok()) << text << "\n -> " << r.status();
    return r.ok() ? *r : ResultSet();
  }

  Database db_;
  office::OfficeIds ids_;
};

TEST_F(EvaluatorTest, FromEnumeratesExtent) {
  ResultSet r = Run("SELECT X FROM Office_Object X");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], ids_.standard_desk);
}

TEST_F(EvaluatorTest, FromSubclassExtent) {
  EXPECT_EQ(Run("SELECT X FROM Desk X").size(), 1u);
  EXPECT_EQ(Run("SELECT X FROM File_Cabinet X").size(), 0u);
  EXPECT_EQ(Run("SELECT X FROM Drawer X").size(), 1u);
}

TEST_F(EvaluatorTest, PathInSelect) {
  ResultSet r = Run("SELECT X.name FROM Desk X");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], Oid::Str("standard desk"));
}

TEST_F(EvaluatorTest, MultiStepPathInSelect) {
  ResultSet r = Run("SELECT X.drawer.color FROM Desk X");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], Oid::Str("red"));
}

TEST_F(EvaluatorTest, GSelectorHead) {
  // Paths may start at a named object directly.
  ResultSet r = Run("SELECT standard_desk.color FROM Desk X");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], Oid::Str("red"));
}

TEST_F(EvaluatorTest, WherePathPredicateBindsVariable) {
  ResultSet r = Run("SELECT Y FROM Desk X WHERE X.drawer[Y]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], ids_.the_drawer);
}

TEST_F(EvaluatorTest, WhereLiteralSelectorFilters) {
  EXPECT_EQ(Run("SELECT Y FROM Desk X WHERE X.drawer[Y].color['red']").size(),
            1u);
  EXPECT_EQ(Run("SELECT Y FROM Desk X WHERE X.drawer[Y].color['blue']").size(),
            0u);
}

TEST_F(EvaluatorTest, WhereComparison) {
  EXPECT_EQ(Run("SELECT X FROM Desk X WHERE X.color = 'red'").size(), 1u);
  EXPECT_EQ(Run("SELECT X FROM Desk X WHERE X.color = 'blue'").size(), 0u);
  EXPECT_EQ(Run("SELECT X FROM Desk X WHERE X.color != 'blue'").size(), 1u);
}

TEST_F(EvaluatorTest, WhereBooleanOps) {
  EXPECT_EQ(Run("SELECT X FROM Desk X "
                "WHERE X.color = 'red' and X.name = 'standard desk'")
                .size(),
            1u);
  EXPECT_EQ(Run("SELECT X FROM Desk X "
                "WHERE X.color = 'blue' or X.name = 'standard desk'")
                .size(),
            1u);
  EXPECT_EQ(Run("SELECT X FROM Desk X WHERE not X.color = 'red'").size(), 0u);
}

TEST_F(EvaluatorTest, SelectCstOidAsLogicalId) {
  // "This query treats CST objects purely as logical oids" (§4.1).
  ResultSet r = Run("SELECT Y FROM Desk X WHERE X.drawer.extent[Y]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.rows()[0][0].IsCst());
  CstObject obj = db_.GetCst(r.rows()[0][0]).value();
  // The drawer extent is the unit box around the origin.
  EXPECT_TRUE(obj.Contains({Rational(1), Rational(1)}).value());
  EXPECT_FALSE(obj.Contains({Rational(2), Rational(0)}).value());
}

TEST_F(EvaluatorTest, SatisfiabilityPredicate) {
  // my_desk at (6, 4): inside the right half [0,10]x[0,10]? x >= 5 holds.
  EXPECT_EQ(Run("SELECT O FROM Object_in_Room O "
                "WHERE O.location[L] and SAT(L(x, y) and x >= 5)")
                .size(),
            1u);
  EXPECT_EQ(Run("SELECT O FROM Object_in_Room O "
                "WHERE O.location[L] and SAT(L(x, y) and x >= 7)")
                .size(),
            0u);
}

TEST_F(EvaluatorTest, SatisfiabilityWithBareUse) {
  // Bare use pulls schema names (x, y) from the location attribute.
  EXPECT_EQ(Run("SELECT O FROM Object_in_Room O "
                "WHERE O.location[L] and SAT(L and x >= 5)")
                .size(),
            1u);
}

TEST_F(EvaluatorTest, EntailmentPredicate) {
  // The standard desk's drawer center has p = -2, not p = 0 (§4.1 query 4
  // returns empty on this database).
  EXPECT_EQ(Run("SELECT DSK FROM Desk DSK WHERE DSK.color = 'red' and "
                "DSK.drawer_center[C] and C(p, q) |= p = 0")
                .size(),
            0u);
  EXPECT_EQ(Run("SELECT DSK FROM Desk DSK "
                "WHERE DSK.drawer_center[C] and C(p, q) |= p = -2")
                .size(),
            1u);
}

TEST_F(EvaluatorTest, SelectProjectionCreatesObject) {
  ResultSet r = Run(
      "SELECT ((w) | E(w, z)) FROM Desk X WHERE X.extent[E]");
  ASSERT_EQ(r.size(), 1u);
  CstObject obj = db_.GetCst(r.rows()[0][0]).value();
  EXPECT_EQ(obj.Dimension(), 1u);
  // Extent w-range is [-4, 4].
  EXPECT_TRUE(obj.Contains({Rational(4)}).value());
  EXPECT_FALSE(obj.Contains({Rational(5)}).value());
}

TEST_F(EvaluatorTest, MaxSubjectTo) {
  ResultSet r = Run(
      "SELECT MAX(w + z SUBJECT TO ((w, z) | E)) "
      "FROM Desk X WHERE X.extent[E]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], Oid::Real(Rational(6)));  // 4 + 2.
}

TEST_F(EvaluatorTest, MinSubjectTo) {
  ResultSet r = Run(
      "SELECT MIN(w SUBJECT TO ((w, z) | E)) FROM Desk X WHERE X.extent[E]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], Oid::Real(Rational(-4)));
}

TEST_F(EvaluatorTest, MaxPointSubjectTo) {
  ResultSet r = Run(
      "SELECT MAX_POINT(w + z SUBJECT TO ((w, z) | E)) "
      "FROM Desk X WHERE X.extent[E]");
  ASSERT_EQ(r.size(), 1u);
  CstObject pt = db_.GetCst(r.rows()[0][0]).value();
  EXPECT_EQ(pt.Dimension(), 2u);
  EXPECT_TRUE(pt.Contains({Rational(4), Rational(2)}).value());
}

TEST_F(EvaluatorTest, InfeasibleOptimizationYieldsNoRow) {
  ResultSet r = Run(
      "SELECT MAX(w SUBJECT TO ((w) | E(w, z) and w >= 100)) "
      "FROM Desk X WHERE X.extent[E]");
  EXPECT_EQ(r.size(), 0u);
}

TEST_F(EvaluatorTest, OidFunctionOfNamedTuple) {
  // The §2.2 example: name each office object with its drawer.
  Evaluator ev(&db_);
  ResultSet r = ev.Execute(
                      "CREATE VIEW DeskDrawerPair AS SUBCLASS OF Desk "
                      "SELECT name = X.name, drawer = W "
                      "FROM Desk X OID FUNCTION OF X, W WHERE X.drawer[W]")
                    .value();
  ASSERT_EQ(r.size(), 1u);
  // The pair object exists with a functional oid and both attributes.
  Oid pair = Oid::Func("DeskDrawerPair", {ids_.standard_desk, ids_.the_drawer});
  EXPECT_TRUE(db_.HasObject(pair));
  EXPECT_EQ(db_.GetAttribute(pair, "name").value(),
            Value::Scalar(Oid::Str("standard desk")));
  EXPECT_EQ(db_.GetAttribute(pair, "drawer").value(),
            Value::Scalar(ids_.the_drawer));
}

TEST_F(EvaluatorTest, HigherOrderAttributeVariable) {
  // Find which attributes of the desk hold CST(2) objects: extent and
  // drawer_center (A ranges over attribute names).
  ResultSet r = Run(
      "SELECT A FROM Desk X, CST(2) C WHERE X.A[C]");
  // A is an attribute variable; results bind it per attribute name. The
  // SELECT of an attribute variable yields... the bound attribute's value
  // objects; instead select the CST to count pairs.
  EXPECT_GE(r.size(), 1u);
}

TEST_F(EvaluatorTest, UnknownClassInFrom) {
  Evaluator ev(&db_);
  auto r = ev.Execute("SELECT X FROM Nope X");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(EvaluatorTest, UnboundHeadVariableIsError) {
  // X is bracket-declared by the second conjunct but used (unbound) at
  // the head of the first: binding order is left to right.
  Evaluator ev(&db_);
  auto r = ev.Execute(
      "SELECT X FROM Desk D WHERE X.color['red'] and D.drawer[X]");
  EXPECT_FALSE(r.ok());
  // The other order works.
  auto ok = ev.Execute(
      "SELECT X FROM Desk D WHERE D.drawer[X] and X.color['red']");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->size(), 1u);
}

TEST_F(EvaluatorTest, UndeclaredHeadIsSymbolicOid) {
  // An identifier that is neither FROM- nor bracket-declared denotes a
  // symbolic oid; a missing object yields an empty path set, not an error.
  ResultSet r = Run("SELECT D FROM Desk D WHERE no_such_thing.color['red']");
  EXPECT_EQ(r.size(), 0u);
}

TEST_F(EvaluatorTest, CartesianProductFrom) {
  ASSERT_TRUE(office::AddScaledDesks(&db_, 3, 1).ok());
  // 4 room objects x 1 desk catalog = 4 rows.
  ResultSet r = Run("SELECT O, D FROM Object_in_Room O, Desk D");
  EXPECT_EQ(r.size(), 4u);
}

TEST_F(EvaluatorTest, RegionClassificationView) {
  // Register a region covering the left half of the room, then classify
  // room objects into it (§4.1's higher-order view, instances = objects).
  VarId x = Variable::Intern("x");
  VarId y = Variable::Intern("y");
  Conjunction left;
  left.Add(LinearConstraint::Ge(LinearExpr::Var(x),
                                LinearExpr::Constant(Rational(0))));
  left.Add(LinearConstraint::Le(LinearExpr::Var(x),
                                LinearExpr::Constant(Rational(10))));
  left.Add(LinearConstraint::Ge(LinearExpr::Var(y),
                                LinearExpr::Constant(Rational(0))));
  left.Add(LinearConstraint::Le(LinearExpr::Var(y),
                                LinearExpr::Constant(Rational(10))));
  CstObject region = CstObject::FromConjunction({x, y}, left).value();
  Oid region_oid = db_.InternCst(region).value();
  ASSERT_TRUE(db_.AddInstanceOf(region_oid, "Region").ok());

  Evaluator ev(&db_);
  ResultSet r = ev.Execute(
                      "CREATE VIEW X AS SUBCLASS OF Object_in_Room "
                      "SELECT Y FROM Object_in_Room Y, Region X "
                      "WHERE Y.location[U] and U |= X")
                    .value();
  // my_desk at (6, 4) lies in the region.
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows()[0][0], ids_.my_desk);
  // One class was created, named by the region oid, containing my_desk.
  ASSERT_EQ(ev.created_classes().size(), 1u);
  const std::string& cls = ev.created_classes()[0];
  EXPECT_TRUE(db_.schema().IsSubclass(cls, "Object_in_Room"));
  EXPECT_TRUE(db_.InstanceOf(ids_.my_desk, cls));
}

TEST_F(EvaluatorTest, ResultDeduplicated) {
  // Two identical FROM items over the same class with distinct vars give
  // one row after projection to a constant-ish column.
  ResultSet r = Run("SELECT X.color FROM Desk X, Drawer D");
  EXPECT_EQ(r.size(), 1u);
}

}  // namespace
}  // namespace lyric
