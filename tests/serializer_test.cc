#include "storage/serializer.h"

#include <gtest/gtest.h>

#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

class SerializerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
  }

  Database db_;
  office::OfficeIds ids_;
};

TEST_F(SerializerTest, DumpContainsEverySection) {
  std::string text = Serializer::DumpDatabase(db_).value();
  EXPECT_NE(text.find("CLASS Office_Object (x, y)"), std::string::npos);
  EXPECT_NE(text.find("CLASS Desk"), std::string::npos);
  EXPECT_NE(text.find("ISA Office_Object"), std::string::npos);
  EXPECT_NE(text.find("OBJECT my_desk => Object_in_Room"), std::string::npos);
  EXPECT_NE(text.find("inv_number = '22-354'"), std::string::npos);
  EXPECT_NE(text.find("CST ((@0, @1) |"), std::string::npos);
}

TEST_F(SerializerTest, RoundTripPreservesSchema) {
  std::string text = Serializer::DumpDatabase(db_).value();
  Database loaded;
  ASSERT_TRUE(Serializer::LoadDatabase(text, &loaded).ok());
  EXPECT_EQ(loaded.schema().ClassNames(), db_.schema().ClassNames());
  // Attribute signatures survive, including set-valuedness and renaming.
  auto dc = loaded.schema().FindAttribute("File_Cabinet", "drawer_center");
  ASSERT_TRUE(dc.ok());
  EXPECT_TRUE((*dc)->set_valued);
  EXPECT_EQ((*dc)->variables, (std::vector<std::string>{"p1", "q1"}));
  auto drawer = loaded.schema().FindAttribute("Desk", "drawer");
  ASSERT_TRUE(drawer.ok());
  EXPECT_EQ((*drawer)->target_class, "Drawer");
  EXPECT_EQ((*drawer)->variables, (std::vector<std::string>{"p", "q"}));
}

TEST_F(SerializerTest, RoundTripPreservesObjectsAndCstIdentities) {
  std::string text = Serializer::DumpDatabase(db_).value();
  Database loaded;
  ASSERT_TRUE(Serializer::LoadDatabase(text, &loaded).ok());
  EXPECT_EQ(loaded.ObjectCount(), db_.ObjectCount());
  EXPECT_TRUE(loaded.CheckIntegrity().ok());
  // Every attribute of every object matches, including CST oids (identity
  // is the canonical form, so interning on load reproduces equal oids).
  for (const auto& [oid, rec] : db_.objects()) {
    for (const auto& [attr, value] : rec.attrs) {
      EXPECT_EQ(loaded.GetAttribute(oid, attr).value(), value)
          << oid << "." << attr;
    }
  }
}

TEST_F(SerializerTest, RoundTripSemanticsViaQueries) {
  std::string text = Serializer::DumpDatabase(db_).value();
  Database loaded;
  ASSERT_TRUE(Serializer::LoadDatabase(text, &loaded).ok());
  // The paper's Q2 yields the same box on the loaded database.
  Evaluator ev(&loaded);
  ResultSet r = ev.Execute(
                      "SELECT CO, ((u, v) | E and D and x = 6 and y = 4) "
                      "FROM Office_Object CO "
                      "WHERE CO.extent[E] and CO.translation[D]")
                    .value();
  ASSERT_EQ(r.size(), 1u);
  CstObject answer = loaded.GetCst(r.rows()[0][1]).value();
  VarId u = Variable::Intern("u");
  VarId v = Variable::Intern("v");
  EXPECT_TRUE(answer.Contains({Rational(2), Rational(2)}).value());
  EXPECT_FALSE(answer.Contains({Rational(1), Rational(2)}).value());
  (void)u;
  (void)v;
}

TEST_F(SerializerTest, RoundTripLazyExistentialObjects) {
  // Store a CST attribute with a quantified body ("exists ..."); the dump
  // prints the quantifier and the loader parses it back.
  VarId x = Variable::Intern("x");
  VarId h = Variable::Intern("hidden");
  Conjunction c;
  c.Add(LinearConstraint::Eq(LinearExpr::Var(x),
                             LinearExpr::Var(h).Scale(Rational(2))));
  c.Add(LinearConstraint::Ge(LinearExpr::Var(h),
                             LinearExpr::Constant(Rational(0))));
  c.Add(LinearConstraint::Le(LinearExpr::Var(h),
                             LinearExpr::Constant(Rational(1))));
  CstObject lazy =
      CstObject::Make({x}, DisjunctiveExistential(
                               ExistentialConjunction(c, VarSet{h})))
          .value();
  ClassDef holder;
  holder.name = "Holder";
  holder.attributes = {{"body", false, kCstClass, {"x"}}};
  ASSERT_TRUE(db_.schema().AddClass(holder).ok());
  Oid hobj = Oid::Symbol("holder1");
  ASSERT_TRUE(db_.Insert(hobj, "Holder").ok());
  ASSERT_TRUE(db_.SetCstAttribute(hobj, "body", lazy).ok());

  std::string text = Serializer::DumpDatabase(db_).value();
  EXPECT_NE(text.find("exists"), std::string::npos);
  Database loaded;
  ASSERT_TRUE(Serializer::LoadDatabase(text, &loaded).ok());
  Oid body = loaded.GetAttribute(hobj, "body").value().scalar();
  CstObject obj = loaded.GetCst(body).value();
  // Semantics preserved: x in [0, 2].
  EXPECT_TRUE(obj.Contains({Rational(2)}).value());
  EXPECT_TRUE(obj.Contains({Rational(1, 3)}).value());
  EXPECT_FALSE(obj.Contains({Rational(3)}).value());
}

TEST_F(SerializerTest, RoundTripSetValuesAndFunctionalOids) {
  ASSERT_TRUE(office::AddScaledDesks(&db_, 3, 5).ok());
  Oid cab = Oid::Symbol("ser_cab");
  ASSERT_TRUE(db_.Insert(cab, "File_Cabinet").ok());
  Oid d1 = Oid::Symbol("ser_d1");
  Oid d2 = Oid::Symbol("ser_d2");
  for (const Oid& d : {d1, d2}) ASSERT_TRUE(db_.Insert(d, "Drawer").ok());
  ASSERT_TRUE(db_.SetAttribute(cab, "drawer", Value::Set({d1, d2})).ok());

  std::string text = Serializer::DumpDatabase(db_).value();
  Database loaded;
  ASSERT_TRUE(Serializer::LoadDatabase(text, &loaded).ok());
  EXPECT_EQ(loaded.GetAttribute(cab, "drawer").value(),
            Value::Set({d1, d2}));
  // Functional oids from the scaled generator survive.
  Oid gen = Oid::Func("desk_in_room", {Oid::Int(0), Oid::Int(5)});
  EXPECT_TRUE(loaded.HasObject(gen));
}

TEST_F(SerializerTest, RoundTripInstanceOfFacts) {
  Oid region = db_.InternCst(office::BoxExtent(2, 2)).value();
  ASSERT_TRUE(db_.AddInstanceOf(region, "Region").ok());
  std::string text = Serializer::DumpDatabase(db_).value();
  Database loaded;
  ASSERT_TRUE(Serializer::LoadDatabase(text, &loaded).ok());
  auto regions = loaded.Extent("Region");
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], region);
}

TEST_F(SerializerTest, KeywordNamedAttributesRoundTrip) {
  // Attribute and class names may collide with query keywords.
  ClassDef limits;
  limits.name = "Limits";
  limits.attributes = {{"max", false, kIntClass, {}},
                       {"view", false, kStringClass, {}}};
  ASSERT_TRUE(db_.schema().AddClass(limits).ok());
  Oid obj = Oid::Symbol("lim1");
  ASSERT_TRUE(db_.Insert(obj, "Limits").ok());
  ASSERT_TRUE(
      db_.SetAttribute(obj, "max", Value::Scalar(Oid::Int(9))).ok());
  ASSERT_TRUE(
      db_.SetAttribute(obj, "view", Value::Scalar(Oid::Str("side"))).ok());
  std::string text = Serializer::DumpDatabase(db_).value();
  Database loaded;
  ASSERT_TRUE(Serializer::LoadDatabase(text, &loaded).ok());
  EXPECT_EQ(loaded.GetAttribute(obj, "max").value(),
            Value::Scalar(Oid::Int(9)));
  EXPECT_EQ(loaded.GetAttribute(obj, "view").value(),
            Value::Scalar(Oid::Str("side")));
}

TEST_F(SerializerTest, LoadRequiresEmptyDatabase) {
  std::string text = Serializer::DumpDatabase(db_).value();
  EXPECT_TRUE(Serializer::LoadDatabase(text, &db_).IsInvalidArgument());
}

TEST_F(SerializerTest, LoadRejectsGarbage) {
  Database fresh;
  EXPECT_TRUE(
      Serializer::LoadDatabase("HELLO WORLD", &fresh).IsParseError());
  Database fresh2;
  EXPECT_FALSE(
      Serializer::LoadDatabase("OBJECT x => Missing [ ]", &fresh2).ok());
}

TEST_F(SerializerTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/lyric_dump_test.lyricdb";
  ASSERT_TRUE(Serializer::SaveToFile(db_, path).ok());
  Database loaded;
  ASSERT_TRUE(Serializer::LoadFromFile(path, &loaded).ok());
  EXPECT_EQ(loaded.ObjectCount(), db_.ObjectCount());
  EXPECT_TRUE(
      Serializer::LoadFromFile("/nonexistent/nope", &loaded).IsNotFound());
}

}  // namespace
}  // namespace lyric
