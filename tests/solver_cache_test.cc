// Property tests for the solver memo cache: a cache hit must be
// indistinguishable from a fresh solve. Three properties are hammered
// with pseudo-random constraint workloads:
//
//   1. cached-vs-fresh verdicts agree (sat, canonical, entailment),
//   2. eviction at tiny capacities never changes any answer,
//   3. forced hash collisions fall back to structural equality.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "constraint/canonical.h"
#include "constraint/entailment.h"
#include "constraint/simplex.h"
#include "constraint/solver_cache.h"

namespace lyric {
namespace {

// Deterministic LCG — tests must not depend on the run's entropy.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed ? seed : 1) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }
  int64_t Range(int64_t lo, int64_t hi) {  // inclusive
    return lo + static_cast<int64_t>(Next() % (hi - lo + 1));
  }

 private:
  uint64_t state_;
};

// A random conjunction of interval and sum constraints over (x, y) —
// roughly half satisfiable, and small enough that solving is instant.
Conjunction RandomConjunction(Lcg& rng) {
  VarId x = Variable::Intern("x");
  VarId y = Variable::Intern("y");
  Conjunction c;
  int atoms = static_cast<int>(rng.Range(1, 4));
  for (int i = 0; i < atoms; ++i) {
    LinearExpr lhs;
    switch (rng.Range(0, 2)) {
      case 0: lhs = LinearExpr::Var(x); break;
      case 1: lhs = LinearExpr::Var(y); break;
      default:
        lhs = LinearExpr::Var(x);
        lhs.AddTerm(y, Rational(1));
        break;
    }
    LinearExpr rhs = LinearExpr::Constant(Rational(rng.Range(-8, 8)));
    if (rng.Range(0, 1) == 0) {
      c.Add(LinearConstraint::Le(lhs, rhs));
    } else {
      c.Add(LinearConstraint::Ge(lhs, rhs));
    }
  }
  return c;
}

// Runs `fn` with the global cache in a known state and restores the
// previous capacity afterwards (the hooks in simplex/canonical/entailment
// consult SolverCache::Global(), which the whole test binary shares).
template <typename Fn>
void WithGlobalCapacity(size_t capacity, Fn fn) {
  SolverCache& cache = SolverCache::Global();
  size_t previous = cache.capacity();
  cache.set_capacity(capacity);
  cache.Clear();
  fn(cache);
  cache.set_capacity(previous);
  cache.Clear();
}

// Property 1a: a satisfiability verdict served from cache equals the
// verdict of a fresh solve with caching disabled.
TEST(SolverCacheProperty, CachedSatVerdictsAgreeWithFresh) {
  Lcg rng(42);
  std::vector<Conjunction> inputs;
  for (int i = 0; i < 200; ++i) inputs.push_back(RandomConjunction(rng));

  std::vector<bool> fresh;
  WithGlobalCapacity(0, [&](SolverCache&) {
    for (const Conjunction& c : inputs) {
      fresh.push_back(Simplex::IsSatisfiable(c).value());
    }
  });

  WithGlobalCapacity(4096, [&](SolverCache& cache) {
    for (int pass = 0; pass < 3; ++pass) {
      for (size_t i = 0; i < inputs.size(); ++i) {
        EXPECT_EQ(Simplex::IsSatisfiable(inputs[i]).value(), fresh[i])
            << "input " << i << " pass " << pass;
      }
    }
    EXPECT_GT(cache.stats().hits, 0u);  // later passes must actually hit
  });
}

// Property 1b: canonical forms served from cache equal fresh ones.
TEST(SolverCacheProperty, CachedCanonicalFormsAgreeWithFresh) {
  Lcg rng(7);
  std::vector<Conjunction> inputs;
  for (int i = 0; i < 80; ++i) inputs.push_back(RandomConjunction(rng));

  std::vector<Conjunction> fresh;
  WithGlobalCapacity(0, [&](SolverCache&) {
    for (const Conjunction& c : inputs) {
      fresh.push_back(
          Canonical::Simplify(c, CanonicalLevel::kRedundancy).value());
    }
  });

  WithGlobalCapacity(4096, [&](SolverCache& cache) {
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < inputs.size(); ++i) {
        Conjunction got =
            Canonical::Simplify(inputs[i], CanonicalLevel::kRedundancy)
                .value();
        EXPECT_EQ(got, fresh[i]) << "input " << i << " pass " << pass;
      }
    }
    EXPECT_GT(cache.stats().hits, 0u);
  });
}

// Property 1c: entailment answers served from cache equal fresh ones.
TEST(SolverCacheProperty, CachedEntailmentAnswersAgreeWithFresh) {
  Lcg rng(1234);
  std::vector<std::pair<Conjunction, Dnf>> inputs;
  for (int i = 0; i < 120; ++i) {
    Conjunction lhs = RandomConjunction(rng);
    Dnf rhs(RandomConjunction(rng));
    if (rng.Range(0, 1) == 0) rhs.AddDisjunct(RandomConjunction(rng));
    inputs.emplace_back(std::move(lhs), std::move(rhs));
  }

  std::vector<bool> fresh;
  WithGlobalCapacity(0, [&](SolverCache&) {
    for (const auto& [lhs, rhs] : inputs) {
      fresh.push_back(Entailment::ConjunctionEntails(lhs, rhs).value());
    }
  });

  WithGlobalCapacity(4096, [&](SolverCache& cache) {
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < inputs.size(); ++i) {
        EXPECT_EQ(Entailment::ConjunctionEntails(inputs[i].first,
                                                 inputs[i].second)
                      .value(),
                  fresh[i])
            << "input " << i << " pass " << pass;
      }
    }
    EXPECT_GT(cache.stats().hits, 0u);
  });
}

// Property 2: a cache far smaller than the working set thrashes (evicts
// constantly) yet never changes a single verdict.
TEST(SolverCacheProperty, EvictionAtTinyCapacityNeverChangesAnswers) {
  Lcg rng(99);
  std::vector<Conjunction> inputs;
  for (int i = 0; i < 150; ++i) inputs.push_back(RandomConjunction(rng));

  std::vector<bool> fresh;
  WithGlobalCapacity(0, [&](SolverCache&) {
    for (const Conjunction& c : inputs) {
      fresh.push_back(Simplex::IsSatisfiable(c).value());
    }
  });

  WithGlobalCapacity(16, [&](SolverCache& cache) {
    for (int pass = 0; pass < 4; ++pass) {
      for (size_t i = 0; i < inputs.size(); ++i) {
        EXPECT_EQ(Simplex::IsSatisfiable(inputs[i]).value(), fresh[i])
            << "input " << i << " pass " << pass;
      }
    }
    SolverCache::Stats stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);       // the point of the test
    EXPECT_LE(stats.size, size_t{16});    // the bound held throughout
  });
}

// Property 3: when every key lands in one hash bucket, structural
// equality must still route each lookup to its own entry.
TEST(SolverCacheProperty, HashCollisionsFallBackToStructuralEquality) {
  SolverCache cache(1024);
  cache.SetHashOverrideForTesting([](size_t) { return size_t{17}; });

  Lcg rng(5);
  std::vector<Conjunction> inputs;
  std::vector<bool> verdicts;
  for (int i = 0; i < 60; ++i) {
    Conjunction c = RandomConjunction(rng);
    bool sat = Simplex::IsSatisfiable(c).value();
    // Skip duplicates: StoreSat overwrites an equal key, which is fine,
    // but the test wants N distinct colliding keys.
    bool dup = false;
    for (const Conjunction& seen : inputs) {
      if (seen == c) dup = true;
    }
    if (dup) continue;
    cache.StoreSat(c, sat);
    inputs.push_back(std::move(c));
    verdicts.push_back(sat);
  }
  ASSERT_GT(inputs.size(), 20u);

  for (size_t i = 0; i < inputs.size(); ++i) {
    std::optional<bool> cached = cache.LookupSat(inputs[i]);
    ASSERT_TRUE(cached.has_value()) << "collision chain lost entry " << i;
    EXPECT_EQ(*cached, verdicts[i]) << "collision returned a foreign verdict";
  }

  // A structurally new key must miss even though its bucket is full.
  Conjunction unseen;
  unseen.Add(LinearConstraint::Le(
      LinearExpr::Var(Variable::Intern("collision_probe")),
      LinearExpr::Constant(Rational(123456))));
  EXPECT_FALSE(cache.LookupSat(unseen).has_value());

  cache.SetHashOverrideForTesting(nullptr);
}

// The kinds are distinct key spaces: a sat entry must never answer an
// entailment lookup for the same conjunction, and canonical entries are
// level-specific.
TEST(SolverCacheProperty, KindsAndLevelsDoNotAlias) {
  SolverCache cache(64);
  Lcg rng(3);
  Conjunction c = RandomConjunction(rng);

  cache.StoreSat(c, true);
  EXPECT_FALSE(cache.LookupEntails(c, Dnf(c)).has_value());
  EXPECT_FALSE(cache.LookupCanonical(c, CanonicalLevel::kCheap).has_value());

  Conjunction simplified;  // TRUE — visibly different from c
  cache.StoreCanonical(c, CanonicalLevel::kCheap, simplified);
  EXPECT_FALSE(
      cache.LookupCanonical(c, CanonicalLevel::kRedundancy).has_value());
  ASSERT_TRUE(cache.LookupCanonical(c, CanonicalLevel::kCheap).has_value());
  EXPECT_EQ(*cache.LookupCanonical(c, CanonicalLevel::kCheap), simplified);
}

// Capacity 0 disables the cache: lookups miss, stores drop.
TEST(SolverCacheProperty, ZeroCapacityDisables) {
  SolverCache cache(0);
  Lcg rng(11);
  Conjunction c = RandomConjunction(rng);
  cache.StoreSat(c, true);
  EXPECT_FALSE(cache.LookupSat(c).has_value());
  EXPECT_EQ(cache.stats().size, 0u);
}

// Shrinking capacity evicts down to the new bound; Clear() empties but
// keeps the bound.
TEST(SolverCacheProperty, ShrinkAndClear) {
  SolverCache cache(256);
  Lcg rng(21);
  std::vector<Conjunction> inputs;
  while (inputs.size() < 64) {
    Conjunction c = RandomConjunction(rng);
    bool dup = false;
    for (const Conjunction& seen : inputs) {
      if (seen == c) dup = true;
    }
    if (!dup) inputs.push_back(std::move(c));
  }
  for (const Conjunction& c : inputs) cache.StoreSat(c, true);
  EXPECT_GT(cache.stats().size, 16u);

  cache.set_capacity(16);
  EXPECT_LE(cache.stats().size, size_t{16});
  EXPECT_GT(cache.stats().evictions, 0u);

  cache.Clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.capacity(), size_t{16});
}

// Stats sanity: one miss then one hit, and HitRate reflects them.
TEST(SolverCacheProperty, StatsCountTraffic) {
  SolverCache cache(64);
  Lcg rng(31);
  Conjunction c = RandomConjunction(rng);
  EXPECT_FALSE(cache.LookupSat(c).has_value());
  cache.StoreSat(c, false);
  ASSERT_TRUE(cache.LookupSat(c).has_value());
  SolverCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
  EXPECT_FALSE(stats.ToString().empty());
}

}  // namespace
}  // namespace lyric
