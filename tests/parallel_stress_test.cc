// Determinism/stress test for the shared solver cache and the parallel
// evaluator, intended to run under ThreadSanitizer (the CI TSan job runs
// the full suite). Many threads hammer one SolverCache::Global() and one
// shared Database with the §4.1 paper queries; every thread must get the
// identical answer, and TSan must stay silent.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "constraint/solver_cache.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

// The §4.1 worked examples (read-only against the Figure 2 instance,
// apart from CST interning — which is exactly the shared write path the
// test wants to stress).
const char* kPaperQueries[] = {
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and x = 6 and "
    "y = 4) FROM Office_Object CO WHERE CO.extent[E] and CO.translation[D]",
    "SELECT CO, ((u, v) | CO.extent and CO.translation and x = 6 and y = 4) "
    "FROM Office_Object CO",
    "SELECT O FROM Object_in_Room O "
    "WHERE O.location[L] and L(x, y) |= x <= 12",
};

class ParallelStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ASSERT_TRUE(office::AddScaledDesks(&db_, 16, /*seed=*/3).ok());
    SolverCache::Global().Clear();
  }

  void TearDown() override { SolverCache::Global().Clear(); }

  Database db_;
};

// N serial evaluators over one shared database and one shared global
// cache: every interleaving of cache fills/hits/evictions must produce
// the same rendered answers.
TEST_F(ParallelStressTest, ManyEvaluatorsOneSharedCache) {
  // Baseline answers, computed single-threaded.
  std::vector<std::string> expected;
  for (const char* q : kPaperQueries) {
    EvalOptions opts;
    opts.threads = 1;
    Evaluator ev(&db_, opts);
    auto r = ev.Execute(q);
    ASSERT_TRUE(r.ok()) << q << "\n -> " << r.status();
    expected.push_back(r->ToString());
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t, &expected, &mismatches] {
      for (int round = 0; round < kRounds; ++round) {
        // Stagger the query order per thread so cache fills race.
        for (size_t qi = 0; qi < std::size(kPaperQueries); ++qi) {
          size_t q = (qi + static_cast<size_t>(t)) % std::size(kPaperQueries);
          EvalOptions opts;
          opts.threads = 1;
          Evaluator ev(&db_, opts);
          auto r = ev.Execute(kPaperQueries[q]);
          if (!r.ok() || r->ToString() != expected[q]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(SolverCache::Global().stats().hits, 0u);
}

// Concurrent evaluators that are THEMSELVES parallel: worker pools inside
// worker pools, all sharing the global cache and the CST store.
TEST_F(ParallelStressTest, NestedParallelEvaluators) {
  const std::string query =
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and L(x, y) |= (x <= 15 and y <= 8)";
  std::string expected;
  {
    EvalOptions opts;
    opts.threads = 1;
    Evaluator ev(&db_, opts);
    auto r = ev.Execute(query);
    ASSERT_TRUE(r.ok()) << r.status();
    expected = r->ToString();
  }

  constexpr int kOuter = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kOuter; ++t) {
    workers.emplace_back([this, &query, &expected, &mismatches] {
      for (int round = 0; round < 3; ++round) {
        EvalOptions opts;
        opts.threads = 4;
        Evaluator ev(&db_, opts);
        auto r = ev.Execute(query);
        if (!r.ok() || r->ToString() != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Raw cache hammering: concurrent stores/lookups/evictions/re-bounds on a
// tiny shared cache. Answers must stay self-consistent (a lookup never
// returns a foreign verdict) and TSan must stay silent.
TEST_F(ParallelStressTest, RawCacheThrash) {
  SolverCache cache(32);
  VarId x = Variable::Intern("x");
  constexpr int kThreads = 8;
  std::atomic<int> wrong{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, x, t, &wrong] {
      for (int i = 0; i < 400; ++i) {
        // Key k: (x <= k); verdict parity encodes k so a foreign entry
        // is detectable.
        int k = (i * 7 + t) % 64;
        Conjunction c;
        c.Add(LinearConstraint::Le(LinearExpr::Var(x),
                                   LinearExpr::Constant(Rational(k))));
        cache.StoreSat(c, k % 2 == 0);
        std::optional<bool> got = cache.LookupSat(c);
        if (got.has_value() && *got != (k % 2 == 0)) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 97 == 0) cache.set_capacity(16 + (i % 3) * 16);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace lyric
