// Standalone driver for the fuzz harnesses when libFuzzer is not
// available (GCC builds, the CI smoke step, plain ctest runs).
//
//   fuzz_<target> [--mutations=N] <corpus file or directory>...
//
// Every corpus input runs through LLVMFuzzerTestOneInput verbatim, then
// N deterministic mutations per input (seeded byte flips, truncations,
// and duplications via splitmix64) — a fixed-iteration smoke that keeps
// the harness and its corpus exercised on every CI run, with real
// coverage-guided fuzzing available under Clang with the same binaries.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void RunOne(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

void RunMutations(const std::string& seed_input, uint64_t seed,
                  size_t mutations) {
  for (size_t i = 0; i < mutations; ++i) {
    std::string mutated = seed_input;
    uint64_t r = SplitMix64(seed + i);
    switch (r % 4) {
      case 0:  // Flip a byte.
        if (!mutated.empty()) {
          mutated[SplitMix64(r) % mutated.size()] =
              static_cast<char>(SplitMix64(r + 1) & 0xff);
        }
        break;
      case 1:  // Truncate.
        mutated.resize(mutated.empty() ? 0
                                       : SplitMix64(r) % mutated.size());
        break;
      case 2:  // Duplicate a slice into the middle.
        if (!mutated.empty()) {
          size_t at = SplitMix64(r) % mutated.size();
          size_t len = SplitMix64(r + 1) % 32;
          mutated.insert(at, mutated.substr(0, len));
        }
        break;
      default:  // Append garbage.
        for (int k = 0; k < 8; ++k) {
          mutated.push_back(static_cast<char>(SplitMix64(r + k) & 0xff));
        }
        break;
    }
    RunOne(mutated);
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t mutations = 64;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--mutations=", 12) == 0) {
      mutations = static_cast<size_t>(std::strtoull(argv[i] + 12, nullptr, 10));
    } else {
      paths.push_back(argv[i]);
    }
  }
  size_t inputs = 0;
  for (const std::string& path : paths) {
    std::vector<std::string> files;
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(path);
    }
    for (const std::string& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in.good()) {
        std::fprintf(stderr, "cannot read %s\n", file.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string input = buf.str();
      RunOne(input);
      RunMutations(input, 0x5eed0000u + inputs, mutations);
      ++inputs;
    }
  }
  // The empty input and a few degenerate ones, always.
  RunOne("");
  RunOne(std::string(1, '\0'));
  RunOne(std::string(4096, '('));
  std::printf("fuzz smoke: %zu corpus inputs x %zu mutations, clean\n",
              inputs, mutations);
  return 0;
}
