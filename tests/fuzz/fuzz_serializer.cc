// Fuzz harness for the database serializer: arbitrary bytes fed to
// LoadDatabase must produce either a loaded database or a clean Status —
// never a crash, leak, or partial mutation (the loader stages into a
// scratch database). Build with -DLYRIC_FUZZERS=ON.

#include <cstddef>
#include <cstdint>
#include <string>

#include "object/database.h"
#include "storage/serializer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 1 << 16) return 0;
  std::string text(reinterpret_cast<const char*>(data), size);

  lyric::Database db;
  lyric::Status status = lyric::Serializer::LoadDatabase(text, &db);
  if (status.ok()) {
    // A payload that loads must pass the database's own invariants.
    if (!db.CheckIntegrity().ok()) __builtin_trap();
  } else if (db.ObjectCount() != 0) {
    // Rejection must be all-or-nothing.
    __builtin_trap();
  }
  return 0;
}
