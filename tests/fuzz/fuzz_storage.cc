// Fuzz harness for the paged storage decoders: arbitrary bytes treated
// as (a) a WAL file fed to Wal::Replay, (b) a raw page image, and (c) a
// data file whose pages are re-sealed (valid checksums) and then opened
// and scanned as a store. Every path must end in success or a typed
// Status — never a crash, hang, out-of-bounds read, or leak. Re-sealing
// in (c) is what pushes the fuzzer past the checksum gate into the
// B-tree/meta structural validators. Build with -DLYRIC_FUZZERS=ON.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "storage/file_io.h"
#include "storage/paged_store.h"
#include "storage/wal.h"

namespace {

// One scratch path per process; every iteration rewrites it.
std::string ScratchPath(const char* suffix) {
  const char* tmp = ::getenv("TMPDIR");
  std::string base = tmp != nullptr && *tmp != '\0' ? tmp : "/tmp";
  return base + "/fuzz_storage_" + std::to_string(::getpid()) + suffix;
}

void WriteWhole(const std::string& path, const uint8_t* data, size_t size) {
  ::unlink(path.c_str());
  auto f = lyric::storage::File::OpenReadWrite(path);
  if (!f.ok()) __builtin_trap();
  if (!f->WriteAt(0, data, size).ok()) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace lyric::storage;
  if (size > 64 * 1024) return 0;

  // (a) The input is a WAL: replay must scan cleanly, applying only
  // intact committed transactions, and report coherent stats.
  {
    static const std::string wal_path = ScratchPath(".wal");
    WriteWhole(wal_path, data, size);
    uint64_t applied = 0;
    auto stats = Wal::Replay(
        wal_path, [&](PageId, const PageBuf&) {
          ++applied;
          return lyric::Status::OK();
        });
    if (stats.ok()) {
      if (stats->valid_bytes > size) __builtin_trap();
      if (stats->torn_tail_bytes > size) __builtin_trap();
      if (stats->images_applied != applied) __builtin_trap();
    }
  }

  // (b) The first page worth of input is a raw page image.
  if (size >= kPageSize) {
    PageBuf page;
    std::memcpy(page.data(), data, kPageSize);
    if (VerifyPage(page)) {
      MetaPage meta;
      (void)meta.DecodeFrom(page);
    }
  }

  // (c) The input body forms B-tree/overflow pages behind a synthesized
  // valid meta page; every page is sealed so the checksum gate passes
  // and the structural validators do the rejecting. Open + scan + probe
  // must terminate with OK or a typed error.
  {
    const size_t body_pages = size / kPageSize;
    if (body_pages >= 1 && body_pages <= 8) {
      static const std::string db_path = ScratchPath(".lyricpg");
      std::string file(kPageSize * (1 + body_pages), '\0');
      PageBuf page;
      MetaPage meta;
      meta.page_count = 1 + body_pages;
      meta.btree_root = 1;
      meta.record_count = 1;
      meta.EncodeTo(page);
      SealPage(page);
      std::memcpy(file.data(), page.data(), kPageSize);
      for (size_t i = 0; i < body_pages; ++i) {
        std::memcpy(page.data(), data + i * kPageSize, kPageSize);
        // Clamp the type byte to a real PageType so the fuzzer spends
        // its budget inside the node decoders, not on the type check.
        page[4] = static_cast<uint8_t>(2 + (page[4] % 3));  // leaf/int/ovf
        SealPage(page);
        std::memcpy(file.data() + (i + 1) * kPageSize, page.data(),
                    kPageSize);
      }
      WriteWhole(db_path, reinterpret_cast<const uint8_t*>(file.data()),
                 file.size());
      ::unlink(PagedStore::WalPathFor(db_path).c_str());

      StoreOptions opts;
      opts.path = db_path;
      opts.pool_pages = 16;
      auto store_or = PagedStore::Open(opts);
      if (store_or.ok()) {
        auto& store = *store_or;
        size_t rows = 0;
        (void)store->Scan("", [&](std::string_view, std::string_view) {
          // A structurally valid tree can hold at most a few thousand
          // cells across 8 pages; more means a scan runaway.
          if (++rows > 100000) __builtin_trap();
          return lyric::Result<bool>(true);
        });
        (void)store->Get("probe");
        (void)store->Delete("probe");
        (void)store->Close();
      }
    }
  }
  return 0;
}
