// Fuzz harness for the lyric_serverd wire protocol: arbitrary bytes fed
// to the frame decoders must produce either a decoded message or a
// typed Status — never a crash, unbounded allocation, or an
// encode/decode disagreement. Covers truncated length prefixes (every
// short input), oversized and zero-length frames, bad magic/version
// bytes, and payloads whose internal lengths lie.
//
// Round-trip property: any payload the decoders accept must re-encode
// into bytes the decoders accept again, yielding the same message —
// otherwise server and client could disagree about what was said.
//
// Build with -DLYRIC_FUZZERS=ON (libFuzzer under Clang, corpus-replay
// driver elsewhere; see CMakeLists.txt).

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/frame.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 16)) return 0;
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  // Header decoding over the raw prefix (any length, including short).
  lyric::net::FrameHeader header;
  (void)lyric::net::DecodeFrameHeader(bytes.data(), bytes.size(),
                                      lyric::net::kMaxPayloadBytes, &header);

  // Payload decoding over the post-header remainder when there is one,
  // else the whole input — both shapes find bugs.
  const std::string payload = bytes.size() > lyric::net::kFrameHeaderBytes
                                  ? bytes.substr(lyric::net::kFrameHeaderBytes)
                                  : bytes;

  lyric::net::QueryRequest request;
  if (lyric::net::DecodeQueryRequest(payload, &request).ok()) {
    lyric::net::QueryRequest again;
    if (!lyric::net::DecodeQueryRequest(
             lyric::net::EncodeQueryRequest(request), &again)
             .ok()) {
      __builtin_trap();
    }
    if (!(again == request)) __builtin_trap();
  }

  lyric::net::QueryResponse response;
  if (lyric::net::DecodeQueryResponse(payload, &response).ok()) {
    lyric::net::QueryResponse again;
    if (!lyric::net::DecodeQueryResponse(
             lyric::net::EncodeQueryResponse(response), &again)
             .ok()) {
      __builtin_trap();
    }
    if (again.Fingerprint() != response.Fingerprint()) __builtin_trap();
    if (again.status.retry_after_ms() != response.status.retry_after_ms()) {
      __builtin_trap();
    }
  }

  lyric::net::WireError error;
  if (lyric::net::DecodeWireError(payload, &error).ok()) {
    lyric::net::WireError again;
    if (!lyric::net::DecodeWireError(lyric::net::EncodeWireError(error),
                                     &again)
             .ok()) {
      __builtin_trap();
    }
    if (again.code != error.code || again.message != error.message) {
      __builtin_trap();
    }
  }
  return 0;
}
