// Fuzz harness for the LyriC lexer and parser: arbitrary bytes must lex
// and parse to either an AST or a clean diagnostic — never crash, hang,
// or trip a sanitizer. Build with -DLYRIC_FUZZERS=ON; under Clang this
// links libFuzzer, elsewhere the standalone driver replays a corpus with
// deterministic mutations (see standalone_main.cc).

#include <cstddef>
#include <cstdint>
#include <string>

#include "query/diagnostics.h"
#include "query/lexer.h"
#include "query/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Cap the input so pathological token streams stay in smoke-test time.
  if (size > 1 << 16) return 0;
  std::string text(reinterpret_cast<const char*>(data), size);

  auto tokens = lyric::Lex(text);
  if (tokens.ok()) {
    // Exercise both parser entry points and the diagnostic path.
    lyric::Diagnostic diag;
    auto query = lyric::ParseQuery(text, &diag);
    (void)query;
    auto formula = lyric::ParseFormula(text);
    (void)formula;
  }
  return 0;
}
