// util/sync.h contract tests: scoped guards exclude each other, the
// condition variable keeps the mutex held across waits, and — the part
// no other test can cover — the runtime lock-rank checker aborts
// deterministically on hierarchy violations (death tests, active
// whenever the build defines LYRIC_SYNC_RANK_CHECK, which is the
// default via -DLYRIC_RANK_CHECK=ON).

#include "util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace lyric {
namespace sync {
namespace {

TEST(SyncMutexTest, MutexLockExcludesConcurrentCriticalSections) {
  Mutex mu(LockRank::kUnranked, "counter");
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SyncMutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{true};
  // TryLock from another thread: the same-thread case would be a
  // recursion abort under the rank checker, which is its own test below.
  std::thread probe([&mu, &acquired] { acquired = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncMutexTest, RankAndNameAccessors) {
  Mutex mu(LockRank::kScheduler, "test_sched");
  EXPECT_EQ(mu.rank(), static_cast<int>(LockRank::kScheduler));
  EXPECT_STREQ(mu.name(), "test_sched");
}

TEST(SyncSharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu(LockRank::kUnranked, "rw");
  int value = 0;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent_readers{0};
  {
    WriterMutexLock lock(mu);
    value = 42;
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        ReaderMutexLock lock(mu);
        int now = concurrent_readers.fetch_add(1) + 1;
        int seen = max_concurrent_readers.load();
        while (now > seen &&
               !max_concurrent_readers.compare_exchange_weak(seen, now)) {
        }
        EXPECT_EQ(value, 42);  // No torn writes while readers are in.
        concurrent_readers.fetch_sub(1);
      }
    });
  }
  for (auto& th : readers) th.join();
  // Not guaranteed by the standard, but with 4 spinning readers over 200
  // iterations overlap is effectively certain; a regression to exclusive
  // locking would show max == 1.
  EXPECT_GE(max_concurrent_readers.load(), 1);
}

TEST(SyncCondVarTest, WaitReleasesAndReacquiresTheMutex) {
  Mutex mu(LockRank::kUnranked, "cv_mu");
  CondVar cv;
  bool ready = false;
  bool consumed = false;
  std::thread consumer([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    // The wait re-acquired the lock: this write is protected.
    consumed = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  MutexLock lock(mu);
  EXPECT_TRUE(consumed);
}

TEST(SyncCondVarTest, WaitUntilReportsTimeout) {
  Mutex mu(LockRank::kUnranked, "cv_mu");
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_TRUE(cv.WaitUntil(mu, deadline));  // Nobody notifies: timeout.
}

TEST(SyncCondVarTest, WaitForReportsTimeout) {
  Mutex mu(LockRank::kUnranked, "cv_mu");
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_TRUE(cv.WaitFor(mu, std::chrono::milliseconds(5)));
}

TEST(SyncCondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu(LockRank::kUnranked, "cv_mu");
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 4; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(woke.load(), 4);
}

#ifdef LYRIC_SYNC_RANK_CHECK

using SyncRankDeathTest = ::testing::Test;

TEST(SyncRankDeathTest, LockOrderInversionAborts) {
  // The documented hierarchy is scheduler(10) -> ... -> obs registry(50);
  // acquiring the scheduler-ranked lock while holding the registry-ranked
  // one is the seeded inversion the checker must catch.
  Mutex registry_mu(LockRank::kObsRegistry, "seeded_registry");
  Mutex scheduler_mu(LockRank::kScheduler, "seeded_scheduler");
  EXPECT_DEATH(
      {
        MutexLock outer(registry_mu);
        MutexLock inner(scheduler_mu);
      },
      "lock-order inversion");
}

TEST(SyncRankDeathTest, SameRankNestingAborts) {
  // Equal ranks are not orderable either (the check is strictly-greater):
  // two cache shards must never nest.
  Mutex shard_a(LockRank::kCacheShard, "shard_a");
  Mutex shard_b(LockRank::kCacheShard, "shard_b");
  EXPECT_DEATH(
      {
        MutexLock outer(shard_a);
        MutexLock inner(shard_b);
      },
      "lock-order inversion");
}

TEST(SyncRankDeathTest, RecursiveAcquisitionAborts) {
  // Recursive std::mutex locking is UB; the checker turns it into a
  // deterministic abort. Unranked locks participate too.
  Mutex mu(LockRank::kUnranked, "recursive");
  EXPECT_DEATH(
      {
        MutexLock outer(mu);
        MutexLock inner(mu);
      },
      "recursive lock acquisition");
}

TEST(SyncRankDeathTest, AssertHeldAbortsWhenNotHeld) {
  Mutex mu(LockRank::kUnranked, "unheld");
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld failed");
}

TEST(SyncRankDeathTest, CorrectOrderDoesNotAbort) {
  // Descending the documented hierarchy is legal: scheduler -> cache
  // shard -> governor -> registry -> query log -> fault config.
  Mutex sched(LockRank::kScheduler, "ok_sched");
  Mutex shard(LockRank::kCacheShard, "ok_shard");
  Mutex gov(LockRank::kGovernor, "ok_gov");
  Mutex reg(LockRank::kObsRegistry, "ok_reg");
  MutexLock l1(sched);
  MutexLock l2(shard);
  MutexLock l3(gov);
  MutexLock l4(reg);
  reg.AssertHeld();
  sched.AssertHeld();
}

TEST(SyncRankDeathTest, UnrankedLocksAreOrderExempt) {
  // Unranked locks may nest under and over ranked ones (only recursion
  // on the same object is checked), so test-local locks never fight the
  // production hierarchy.
  Mutex ranked(LockRank::kObsRegistry, "ranked");
  Mutex unranked_a(LockRank::kUnranked, "local_a");
  Mutex unranked_b(LockRank::kUnranked, "local_b");
  MutexLock l1(unranked_a);
  MutexLock l2(ranked);
  MutexLock l3(unranked_b);
}

TEST(SyncRankDeathTest, CondVarWaitKeepsLockOnHeldStack) {
  // During a timed wait the mutex entry stays on the held stack: from
  // the caller's perspective the lock is held at every observable point.
  Mutex mu(LockRank::kQueryLog, "wait_mu");
  CondVar cv;
  MutexLock lock(mu);
  cv.WaitFor(mu, std::chrono::milliseconds(1));
  mu.AssertHeld();
}

TEST(SyncRankDeathTest, ReleaseUnblocksTheRank) {
  // After an inner scope releases, the same rank is acquirable again —
  // the stack pops correctly.
  Mutex reg(LockRank::kObsRegistry, "reg");
  Mutex log(LockRank::kQueryLog, "log");
  {
    MutexLock l1(reg);
    MutexLock l2(log);
  }
  {
    MutexLock l1(reg);
    MutexLock l2(log);
  }
}

TEST(SyncRankDeathTest, SharedMutexParticipatesInRankChecking) {
  SharedMutex interner(LockRank::kVarInterner, "interner");
  Mutex fault_cfg(LockRank::kFaultConfig, "fault_cfg");
  Mutex shard(LockRank::kCacheShard, "shard");
  {
    // Legal: shard(35) -> shared interner(80) -> fault config(90).
    MutexLock l1(shard);
    ReaderMutexLock l2(interner);
    MutexLock l3(fault_cfg);
  }
  EXPECT_DEATH(
      {
        WriterMutexLock outer(interner);
        MutexLock inner(shard);
      },
      "lock-order inversion");
}

#endif  // LYRIC_SYNC_RANK_CHECK

}  // namespace
}  // namespace sync
}  // namespace lyric
