// Admission-control acceptance test (ISSUE 5): 16 simultaneous governed
// queries against a scheduler capped at 2 concurrent. Every query must
// pass through admission (none ungoverned), shed arrivals must carry a
// typed kUnavailable with a retry-after hint, retried queries must
// eventually succeed with answers byte-identical to an unscheduled serial
// run, and the cross-query ledger must drain to zero when the storm ends.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "constraint/solver_cache.h"
#include "exec/scheduler.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

// §4.1 worked examples — read-mostly, so 16 copies can run against one
// shared Database; governed via a generous deadline that never trips.
const char* kPaperQueries[] = {
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT CO, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and x = 6 and "
    "y = 4) FROM Office_Object CO WHERE CO.extent[E] and CO.translation[D]",
    "SELECT O FROM Object_in_Room O "
    "WHERE O.location[L] and L(x, y) |= x <= 12",
    "SELECT CO, ((u, v) | CO.extent and CO.translation and x = 6 and y = 4) "
    "FROM Office_Object CO",
};

class SchedulerStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = office::BuildOfficeDatabase(&db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    SolverCache::Global().Clear();
  }
  void TearDown() override { SolverCache::Global().Clear(); }

  Database db_;
};

TEST_F(SchedulerStressTest, SixteenGovernedQueriesThroughATwoLaneScheduler) {
  constexpr int kThreads = 16;

  // Unscheduled serial baseline, one answer per query text.
  std::vector<std::string> expected;
  for (const char* q : kPaperQueries) {
    EvalOptions opts;
    opts.threads = 1;
    Evaluator ev(&db_, opts);
    auto r = ev.Execute(q);
    ASSERT_TRUE(r.ok()) << q << "\n -> " << r.status();
    expected.push_back(r->ToString());
  }

  // A private two-lane scheduler with a short queue, so the 16-thread
  // storm exercises every admission outcome: direct grants, queued
  // (degraded) grants, and queue-full sheds.
  exec::SchedulerLimits limits;
  limits.max_concurrent = 2;
  limits.queue_capacity = 4;
  exec::QueryScheduler sched(limits);

  // Occupy both lanes before the storm: with a warm solver cache the
  // queries are near-instant, so without this the threads would trickle
  // through two free lanes without ever queueing. Held tickets make the
  // contention structural — every arrival must queue or shed.
  auto lane_a = sched.Admit(exec::AdmissionRequest{});
  auto lane_b = sched.Admit(exec::AdmissionRequest{});
  ASSERT_TRUE(lane_a.ok());
  ASSERT_TRUE(lane_b.ok());

  std::atomic<int> started{0};
  std::atomic<uint64_t> sheds_seen{0};
  std::atomic<bool> bad_shed{false};
  std::vector<std::string> answers(kThreads);
  std::vector<Status> governor_statuses(kThreads, Status::Internal("unset"));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      EvalOptions opts;
      opts.threads = 4;  // Degraded grants must still match byte-for-byte.
      opts.deadline_ms = 60000;  // Governed, but never trips.
      opts.scheduler = &sched;
      opts.retry = exec::RetryPolicy{};  // Retries handled manually below.
      Evaluator ev(&db_, opts);
      const char* query = kPaperQueries[id % 4];
      // Barrier: every thread arrives at the scheduler at once.
      started.fetch_add(1);
      while (started.load() < kThreads) std::this_thread::yield();
      for (int attempt = 0; attempt < 1000; ++attempt) {
        auto r = ev.Execute(query);
        if (r.ok()) {
          answers[id] = r->ToString();
          governor_statuses[id] = r->governor_status();
          return;
        }
        // Every shed must be the typed transient status with a hint.
        if (!r.status().IsUnavailable() || r.status().retry_after_ms() == 0) {
          bad_shed.store(true);
          return;
        }
        sheds_seen.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<uint64_t>(r.status().retry_after_ms(), 20)));
      }
    });
  }
  // Hold the lanes until the queue is full (4 waiting) and the arrivals
  // beyond it have been shed at least 12 times — only then start granting.
  // The bound is an event count, so retried sheds can only overshoot it.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < give_up &&
         (sched.stats().waiting < 4 || sheds_seen.load() < 12)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(sheds_seen.load(), 12u);
  lane_a->Release();
  lane_b->Release();
  for (auto& th : threads) th.join();

  EXPECT_FALSE(bad_shed.load())
      << "a rejected query carried something other than "
         "kUnavailable+retry-after";
  for (int id = 0; id < kThreads; ++id) {
    EXPECT_EQ(answers[id], expected[id % 4]) << "thread " << id;
    // Governed end to end: the governor ran and reported no trip.
    EXPECT_TRUE(governor_statuses[id].ok()) << governor_statuses[id];
  }

  exec::SchedulerStats stats = sched.stats();
  // Every query was admitted exactly once (sheds are not admissions),
  // plus the two lane-holding tickets.
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kThreads) + 2);
  EXPECT_LE(stats.peak_active, 2u);  // The cap held at every instant.
  EXPECT_GE(stats.peak_active, 1u);
  // With both lanes held, every first attempt queued or shed.
  EXPECT_GE(stats.queued + stats.shed, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.shed, sheds_seen.load());
  // The storm is over: ledger and queue fully drained.
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.waiting, 0u);
  EXPECT_EQ(stats.reserved_memory, 0u);
}

TEST_F(SchedulerStressTest, EvaluatorRetryLoopRecoversShedsTransparently) {
  // Same storm, but the evaluator's own RetryPolicy absorbs the sheds:
  // callers only ever see success.
  exec::SchedulerLimits limits;
  limits.max_concurrent = 2;
  limits.queue_capacity = 2;
  exec::QueryScheduler sched(limits);

  std::string expected;
  {
    EvalOptions opts;
    opts.threads = 1;
    Evaluator ev(&db_, opts);
    auto r = ev.Execute(kPaperQueries[0]);
    ASSERT_TRUE(r.ok()) << r.status();
    expected = r->ToString();
  }

  constexpr int kThreads = 8;
  std::atomic<int> started{0};
  std::atomic<int> failures{0};
  std::vector<std::string> answers(kThreads);
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      EvalOptions opts;
      opts.threads = 2;
      opts.deadline_ms = 60000;
      opts.scheduler = &sched;
      exec::RetryPolicy patient;
      patient.max_retries = 200;
      patient.base_backoff_ms = 1;
      patient.max_backoff_ms = 8;
      patient.seed = static_cast<uint64_t>(id);
      opts.retry = patient;
      Evaluator ev(&db_, opts);
      started.fetch_add(1);
      while (started.load() < kThreads) std::this_thread::yield();
      auto r = ev.Execute(kPaperQueries[0]);
      if (!r.ok()) {
        failures.fetch_add(1);
        return;
      }
      answers[id] = r->ToString();
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  for (int id = 0; id < kThreads; ++id) {
    EXPECT_EQ(answers[id], expected) << "thread " << id;
  }
  exec::SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kThreads));
  EXPECT_LE(stats.peak_active, 2u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.reserved_memory, 0u);
}

TEST_F(SchedulerStressTest, DegradedGrantForcesSerialExecution) {
  // A queue grant flips the evaluator to threads=1; the answer must be
  // byte-identical to the parallel one (docs/PARALLELISM.md invariant),
  // and the degraded counter must record the downgrade.
  exec::SchedulerLimits limits;
  limits.max_concurrent = 1;
  exec::QueryScheduler sched(limits);

  std::string expected;
  {
    EvalOptions opts;
    opts.threads = 4;
    Evaluator ev(&db_, opts);
    auto r = ev.Execute(kPaperQueries[1]);
    ASSERT_TRUE(r.ok()) << r.status();
    expected = r->ToString();
  }

  // Occupy the single lane, then run a query that must queue behind it.
  auto held = sched.Admit(exec::AdmissionRequest{});
  ASSERT_TRUE(held.ok());
  std::atomic<bool> done{false};
  std::string answer;
  std::thread runner([&] {
    EvalOptions opts;
    opts.threads = 4;
    opts.deadline_ms = 60000;
    opts.scheduler = &sched;
    Evaluator ev(&db_, opts);
    auto r = ev.Execute(kPaperQueries[1]);
    ASSERT_TRUE(r.ok()) << r.status();
    answer = r->ToString();
    done.store(true);
  });
  ASSERT_TRUE(sched.WaitForWaiters(1, 5000));
  EXPECT_FALSE(done.load());
  held->Release();
  runner.join();
  EXPECT_EQ(answer, expected);
  exec::SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.degraded, 1u);  // The queue grant ran serially.
  EXPECT_EQ(stats.active, 0u);
}

}  // namespace
}  // namespace lyric
