// Fault-injection layer: spec parsing, deterministic decisions, and the
// contract at every production site — injected failures degrade service
// (recompute, inline execution, a typed Status) and never corrupt state.

#include "util/fault.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "constraint/solver_cache.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "office/office_db.h"
#include "query/evaluator.h"
#include "storage/serializer.h"

namespace lyric {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fault::ConfigureForTesting(""));
    SolverCache::Global().Clear();
  }
  void TearDown() override { ASSERT_TRUE(fault::ConfigureForTesting("")); }
};

// -- Spec parsing ----------------------------------------------------------

TEST_F(FaultTest, AcceptsWellFormedSpecs) {
  EXPECT_TRUE(fault::ConfigureForTesting("solver_cache:0.5"));
  EXPECT_TRUE(fault::ConfigureForTesting("serializer:1.0:42"));
  EXPECT_TRUE(
      fault::ConfigureForTesting("solver_cache:0.25:1,thread_pool:0.75:2"));
  EXPECT_TRUE(fault::ConfigureForTesting("alloc:0"));
  EXPECT_TRUE(fault::ConfigureForTesting(""));  // Disables everything.
  EXPECT_FALSE(fault::Enabled());
}

TEST_F(FaultTest, RejectsMalformedSpecsAndStaysOnPreviousConfig) {
  ASSERT_TRUE(fault::ConfigureForTesting("solver_cache:1.0"));
  EXPECT_FALSE(fault::ConfigureForTesting("nocolon"));
  EXPECT_FALSE(fault::ConfigureForTesting(":0.5"));
  EXPECT_FALSE(fault::ConfigureForTesting("site:1.5"));       // prob > 1
  EXPECT_FALSE(fault::ConfigureForTesting("site:-0.1"));      // prob < 0
  EXPECT_FALSE(fault::ConfigureForTesting("site:abc"));       // not a number
  EXPECT_FALSE(fault::ConfigureForTesting("site:0.5:seed"));  // bad seed
  // The last good configuration survives a rejected spec.
  EXPECT_TRUE(fault::Enabled());
  EXPECT_TRUE(fault::Inject(fault::kSiteSolverCache));
}

TEST_F(FaultTest, ProbabilityEndpointsAreExact) {
  ASSERT_TRUE(fault::ConfigureForTesting("always:1.0,never:0"));
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(fault::Inject("always"));
    EXPECT_FALSE(fault::Inject("never"));
  }
  // Unconfigured sites never fire even while others are armed.
  EXPECT_FALSE(fault::Inject("unknown_site"));
}

TEST_F(FaultTest, DecisionsAreDeterministicInSeedAndIndex) {
  auto draw_pattern = [](const std::string& spec) {
    EXPECT_TRUE(fault::ConfigureForTesting(spec));
    std::vector<bool> pattern;
    pattern.reserve(256);
    for (int i = 0; i < 256; ++i) pattern.push_back(fault::Inject("s"));
    return pattern;
  };
  std::vector<bool> a = draw_pattern("s:0.5:42");
  std::vector<bool> b = draw_pattern("s:0.5:42");
  std::vector<bool> c = draw_pattern("s:0.5:43");
  EXPECT_EQ(a, b);  // Same seed replays identically.
  EXPECT_NE(a, c);  // A different seed gives a different pattern.
  // The configured probability is roughly honored (p=0.5 over 256 draws;
  // bounds are loose enough to never flake on a fixed seed).
  size_t fired = 0;
  for (bool hit : a) fired += hit ? 1 : 0;
  EXPECT_GT(fired, 64u);
  EXPECT_LT(fired, 192u);
}

TEST_F(FaultTest, InjectionsAreCountedInTheMetricsRegistry) {
  ASSERT_TRUE(fault::ConfigureForTesting("counted:1.0"));
  obs::Counter& counter =
      obs::Registry::Global().GetCounter("fault.injected.counted");
  uint64_t before = counter.value();
  ASSERT_TRUE(fault::Inject("counted"));
  ASSERT_TRUE(fault::Inject("counted"));
  EXPECT_EQ(counter.value(), before + 2);
}

// -- Production sites ------------------------------------------------------

// A paper query whose answer is known; used to prove fault transparency.
constexpr const char* kQuery =
    "SELECT DSK FROM Object_in_Room O, Desk DSK "
    "WHERE O.catalog_object[DSK] and O.location[L] and "
    "L(x, y) |= (0 < x and x < 20 and 0 < y and y < 10)";

TEST_F(FaultTest, SolverCacheFaultsAreTransparentToResults) {
  Database db;
  ASSERT_TRUE(office::BuildOfficeDatabase(&db).ok());
  Evaluator ev(&db);
  auto clean = ev.Execute(kQuery);
  ASSERT_TRUE(clean.ok()) << clean.status();

  // With every lookup missing and every store dropped, the engine
  // recomputes everything — byte-identical answer, no crash.
  ASSERT_TRUE(fault::ConfigureForTesting("solver_cache:1.0"));
  auto faulted = ev.Execute(kQuery);
  ASSERT_TRUE(faulted.ok()) << faulted.status();
  EXPECT_EQ(faulted->ToString(), clean->ToString());

  // Partial failure (half the operations) is equally transparent.
  ASSERT_TRUE(fault::ConfigureForTesting("solver_cache:0.5:11"));
  auto half = ev.Execute(kQuery);
  ASSERT_TRUE(half.ok()) << half.status();
  EXPECT_EQ(half->ToString(), clean->ToString());
}

TEST_F(FaultTest, ThreadPoolFaultDegradesToInlineExecution) {
  Database db;
  ASSERT_TRUE(office::BuildOfficeDatabase(&db).ok());
  ASSERT_TRUE(office::AddScaledDesks(&db, 12, /*seed=*/5).ok());

  EvalOptions serial;
  serial.threads = 1;
  Evaluator serial_ev(&db, serial);
  auto expected = serial_ev.Execute(kQuery);
  ASSERT_TRUE(expected.ok()) << expected.status();

  // Every Submit degrades to the caller's thread: still correct, still
  // byte-identical to the serial answer (the merge order is positional).
  ASSERT_TRUE(fault::ConfigureForTesting("thread_pool:1.0"));
  EvalOptions parallel;
  parallel.threads = 4;
  Evaluator parallel_ev(&db, parallel);
  auto degraded = parallel_ev.Execute(kQuery);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded->ToString(), expected->ToString());

  // Probabilistic degradation (some tasks inline, some pooled) too.
  ASSERT_TRUE(fault::ConfigureForTesting("thread_pool:0.5:3"));
  auto mixed = parallel_ev.Execute(kQuery);
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  EXPECT_EQ(mixed->ToString(), expected->ToString());
}

TEST_F(FaultTest, SerializerFaultsFailWithCleanStatusAndNoMutation) {
  Database db;
  ASSERT_TRUE(office::BuildOfficeDatabase(&db).ok());
  std::string dump = Serializer::DumpDatabase(db).value();

  ASSERT_TRUE(fault::ConfigureForTesting("serializer:1.0"));
  Database target;
  Status load = Serializer::LoadDatabase(dump, &target);
  EXPECT_FALSE(load.ok());
  // Transport faults are transient by contract: typed kUnavailable so
  // RunWithRetry (exec/scheduler.h) knows a repeat attempt can succeed.
  EXPECT_TRUE(load.IsUnavailable()) << load;
  // The target database is untouched by the failed load.
  EXPECT_EQ(target.ObjectCount(), 0u);
  EXPECT_TRUE(target.schema().ClassNames().empty());

  Status save = Serializer::SaveToFile(db, "/tmp/lyric_fault_test.dump");
  EXPECT_FALSE(save.ok());
  EXPECT_TRUE(save.IsUnavailable()) << save;

  // Disarmed, the same payload loads fine — the failure was injected,
  // not a corruption left behind.
  ASSERT_TRUE(fault::ConfigureForTesting(""));
  EXPECT_TRUE(Serializer::LoadDatabase(dump, &target).ok());
  EXPECT_EQ(target.ObjectCount(), db.ObjectCount());
}

TEST_F(FaultTest, ThreadPoolDirectSubmitSurvivesInjection) {
  ASSERT_TRUE(fault::ConfigureForTesting("thread_pool:0.5:9"));
  std::atomic<int> ran{0};
  {
    exec::ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // Destruction drains the queue and joins the workers.
  }
  // Every task ran exactly once whether it was pooled or inlined.
  EXPECT_EQ(ran.load(), 32);
}

TEST_F(FaultTest, MergeFaultRecomputesChunksTransparently) {
  Database db;
  ASSERT_TRUE(office::BuildOfficeDatabase(&db).ok());
  ASSERT_TRUE(office::AddScaledDesks(&db, 12, /*seed=*/5).ok());

  EvalOptions serial;
  serial.threads = 1;
  Evaluator serial_ev(&db, serial);
  auto expected = serial_ev.Execute(kQuery);
  ASSERT_TRUE(expected.ok()) << expected.status();

  // Every chunk handoff is "lost": the merge thread recomputes each chunk
  // inline. Slower, never wrong.
  ASSERT_TRUE(fault::ConfigureForTesting("merge:1.0"));
  uint64_t before =
      obs::Registry::Global().GetCounter("evaluator.merge_recomputed").value();
  EvalOptions parallel;
  parallel.threads = 4;
  Evaluator parallel_ev(&db, parallel);
  auto recomputed = parallel_ev.Execute(kQuery);
  ASSERT_TRUE(recomputed.ok()) << recomputed.status();
  EXPECT_EQ(recomputed->ToString(), expected->ToString());
  EXPECT_GT(
      obs::Registry::Global().GetCounter("evaluator.merge_recomputed").value(),
      before);

  // Probabilistic loss (some chunks survive, some recompute) too.
  ASSERT_TRUE(fault::ConfigureForTesting("merge:0.5:11"));
  auto mixed = parallel_ev.Execute(kQuery);
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  EXPECT_EQ(mixed->ToString(), expected->ToString());
}

TEST_F(FaultTest, TraceFaultDropsSpansNeverResults) {
  Database db;
  ASSERT_TRUE(office::BuildOfficeDatabase(&db).ok());
  EvalOptions traced;
  traced.collect_trace = true;
  Evaluator ev(&db, traced);
  auto clean = ev.Execute(kQuery);
  ASSERT_TRUE(clean.ok()) << clean.status();

  // Every span construction fails: the trace is silently thinner (spans
  // drop, children re-parent) and the answer is untouched.
  ASSERT_TRUE(fault::ConfigureForTesting("trace:1.0"));
  auto untraced = ev.Execute(kQuery);
  ASSERT_TRUE(untraced.ok()) << untraced.status();
  EXPECT_EQ(untraced->ToString(), clean->ToString());

  ASSERT_TRUE(fault::ConfigureForTesting("trace:0.5:7"));
  auto partial = ev.Execute(kQuery);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_EQ(partial->ToString(), clean->ToString());
}

TEST_F(FaultTest, SchedulerFaultShedsWithTypedStatusAndRetryRecovers) {
  Database db;
  ASSERT_TRUE(office::BuildOfficeDatabase(&db).ok());
  Evaluator ev(&db);
  auto clean = ev.Execute(kQuery);
  ASSERT_TRUE(clean.ok()) << clean.status();

  // A forced queue-full shed surfaces as the transient typed status with
  // a retry-after hint — never a crash, never a partial result.
  ASSERT_TRUE(fault::ConfigureForTesting("scheduler:1.0"));
  auto shed = ev.Execute(kQuery);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status();
  EXPECT_GT(shed.status().retry_after_ms(), 0u);

  // With a retry policy the evaluator absorbs probabilistic sheds and the
  // caller sees only the byte-identical success.
  ASSERT_TRUE(fault::ConfigureForTesting("scheduler:0.5:3"));
  EvalOptions retrying;
  exec::RetryPolicy policy;
  policy.max_retries = 32;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  retrying.retry = policy;
  Evaluator retry_ev(&db, retrying);
  auto recovered = retry_ev.Execute(kQuery);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->ToString(), clean->ToString());
}

}  // namespace
}  // namespace lyric
