#include "constraint/existential.h"

#include <gtest/gtest.h>

namespace lyric {
namespace {

class ExistentialTest : public ::testing::Test {
 protected:
  VarId x_ = Variable::Intern("x");
  VarId y_ = Variable::Intern("y");
  VarId z_ = Variable::Intern("z");

  LinearExpr X() { return LinearExpr::Var(x_); }
  LinearExpr Y() { return LinearExpr::Var(y_); }
  LinearExpr Z() { return LinearExpr::Var(z_); }
  LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

  // exists y . (x = 2y and 0 <= y <= 1)  ==  0 <= x <= 2.
  ExistentialConjunction DoubledInterval() {
    Conjunction c;
    c.Add(LinearConstraint::Eq(X(), Y().Scale(Rational(2))));
    c.Add(LinearConstraint::Ge(Y(), C(0)));
    c.Add(LinearConstraint::Le(Y(), C(1)));
    return ExistentialConjunction(c, VarSet{y_});
  }
};

TEST_F(ExistentialTest, BoundIntersectedWithBodyVars) {
  Conjunction c;
  c.Add(LinearConstraint::Le(X(), C(1)));
  ExistentialConjunction ec(c, VarSet{y_});  // y not in body.
  EXPECT_TRUE(ec.bound().empty());
  EXPECT_EQ(ec.FreeVars(), VarSet{x_});
}

TEST_F(ExistentialTest, FreeVars) {
  ExistentialConjunction ec = DoubledInterval();
  EXPECT_EQ(ec.FreeVars(), VarSet{x_});
  EXPECT_EQ(ec.bound(), VarSet{y_});
}

TEST_F(ExistentialTest, EvalFreeChecksExistence) {
  ExistentialConjunction ec = DoubledInterval();
  EXPECT_TRUE(ec.EvalFree({{x_, Rational(0)}}).value());
  EXPECT_TRUE(ec.EvalFree({{x_, Rational(2)}}).value());
  EXPECT_TRUE(ec.EvalFree({{x_, Rational(1, 3)}}).value());
  EXPECT_FALSE(ec.EvalFree({{x_, Rational(3)}}).value());
  EXPECT_FALSE(ec.EvalFree({{x_, Rational(-1)}}).value());
}

TEST_F(ExistentialTest, ToConjunctionEliminates) {
  Conjunction out = DoubledInterval().ToConjunction().value();
  EXPECT_FALSE(out.FreeVars().count(y_));
  EXPECT_TRUE(out.Eval({{x_, Rational(2)}}).value());
  EXPECT_FALSE(out.Eval({{x_, Rational(5, 2)}}).value());
}

TEST_F(ExistentialTest, ConjoinRenamesApart) {
  // (exists y . x = 2y, 0<=y<=1) and (exists y . z = y, 0<=y<=1):
  // the two y's are unrelated; conjunction must not identify them.
  Conjunction c2;
  c2.Add(LinearConstraint::Eq(Z(), Y()));
  c2.Add(LinearConstraint::Ge(Y(), C(0)));
  c2.Add(LinearConstraint::Le(Y(), C(1)));
  ExistentialConjunction other(c2, VarSet{y_});
  ExistentialConjunction both = DoubledInterval().Conjoin(other);
  EXPECT_EQ(both.FreeVars(), (VarSet{x_, z_}));
  // x = 2, z = 0 requires y=1 in the first and y=0 in the second — only
  // possible if the quantifiers stayed separate.
  EXPECT_TRUE(
      both.EvalFree({{x_, Rational(2)}, {z_, Rational(0)}}).value());
}

TEST_F(ExistentialTest, ProjectMarksBound) {
  Conjunction c;
  c.Add(LinearConstraint::Le(X() + Z(), C(1)));
  ExistentialConjunction ec(c);
  ExistentialConjunction projected = ec.Project(VarSet{x_});
  EXPECT_EQ(projected.FreeVars(), VarSet{x_});
  EXPECT_EQ(projected.bound(), VarSet{z_});
  // Any x extends (z can absorb), so projection is everywhere-true.
  EXPECT_TRUE(projected.EvalFree({{x_, Rational(1000)}}).value());
}

TEST_F(ExistentialTest, RenameFreeAvoidsCapture) {
  // Renaming free x to the bound name y must not capture.
  ExistentialConjunction ec = DoubledInterval();
  ExistentialConjunction renamed = ec.RenameFree({{x_, y_}});
  EXPECT_EQ(renamed.FreeVars(), VarSet{y_});
  EXPECT_TRUE(renamed.EvalFree({{y_, Rational(2)}}).value());
  EXPECT_FALSE(renamed.EvalFree({{y_, Rational(3)}}).value());
}

TEST_F(ExistentialTest, SubstituteFreeAvoidsCapture) {
  // Substituting x := y + 1 where y is bound must freshen the quantifier.
  ExistentialConjunction ec = DoubledInterval();
  ExistentialConjunction out = ec.SubstituteFree(x_, Y() + C(1));
  // Now free var is y, meaning y + 1 in [0, 2] -> y in [-1, 1].
  EXPECT_TRUE(out.EvalFree({{y_, Rational(-1)}}).value());
  EXPECT_TRUE(out.EvalFree({{y_, Rational(1)}}).value());
  EXPECT_FALSE(out.EvalFree({{y_, Rational(2)}}).value());
}

TEST_F(ExistentialTest, ToStringShowsQuantifier) {
  std::string s = DoubledInterval().ToString();
  EXPECT_NE(s.find("exists"), std::string::npos);
}

TEST_F(ExistentialTest, DisjunctiveExistentialSatisfiable) {
  DisjunctiveExistential de;
  EXPECT_TRUE(de.IsFalse());
  EXPECT_FALSE(de.Satisfiable().value());
  de.AddDisjunct(DoubledInterval());
  EXPECT_TRUE(de.Satisfiable().value());
}

TEST_F(ExistentialTest, DisjunctiveExistentialToDnf) {
  DisjunctiveExistential de(DoubledInterval());
  Dnf d = de.ToDnf().value();
  EXPECT_FALSE(d.FreeVars().count(y_));
  EXPECT_TRUE(d.Eval({{x_, Rational(1)}}).value());
  EXPECT_FALSE(d.Eval({{x_, Rational(3)}}).value());
}

TEST_F(ExistentialTest, ToDnfSplitsDisequalityOnBoundVar) {
  // exists y . (x = y and y != 1 and 0 <= y <= 2): x in [0,1) u (1,2].
  Conjunction c;
  c.Add(LinearConstraint::Eq(X(), Y()));
  c.Add(LinearConstraint::Neq(Y(), C(1)));
  c.Add(LinearConstraint::Ge(Y(), C(0)));
  c.Add(LinearConstraint::Le(Y(), C(2)));
  DisjunctiveExistential de(ExistentialConjunction(c, VarSet{y_}));
  Dnf d = de.ToDnf().value();
  EXPECT_TRUE(d.Eval({{x_, Rational(1, 2)}}).value());
  EXPECT_FALSE(d.Eval({{x_, Rational(1)}}).value());
  EXPECT_TRUE(d.Eval({{x_, Rational(2)}}).value());
}

TEST_F(ExistentialTest, EntailsQuantifiedLeft) {
  // exists y . (x = 2y, 0<=y<=1)  |=  0 <= x <= 2.
  DisjunctiveExistential lhs(DoubledInterval());
  Conjunction rhs_c;
  rhs_c.Add(LinearConstraint::Ge(X(), C(0)));
  rhs_c.Add(LinearConstraint::Le(X(), C(2)));
  DisjunctiveExistential rhs = DisjunctiveExistential::FromConjunction(rhs_c);
  EXPECT_TRUE(lhs.Entails(rhs).value());
  EXPECT_TRUE(rhs.Entails(lhs).value());  // Also the converse here.
}

TEST_F(ExistentialTest, EntailsQuantifiedRight) {
  // 0 <= x <= 1 |= exists y . (x = y).
  Conjunction lhs_c;
  lhs_c.Add(LinearConstraint::Ge(X(), C(0)));
  lhs_c.Add(LinearConstraint::Le(X(), C(1)));
  Conjunction rhs_c;
  rhs_c.Add(LinearConstraint::Eq(X(), Y()));
  DisjunctiveExistential lhs = DisjunctiveExistential::FromConjunction(lhs_c);
  DisjunctiveExistential rhs(ExistentialConjunction(rhs_c, VarSet{y_}));
  EXPECT_TRUE(lhs.Entails(rhs).value());
}

TEST_F(ExistentialTest, FindPointRestrictsToFreeVars) {
  DisjunctiveExistential de(DoubledInterval());
  auto pt = de.FindPoint().value();
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(pt->size(), 1u);
  EXPECT_TRUE(pt->count(x_));
  EXPECT_GE(pt->at(x_), Rational(0));
  EXPECT_LE(pt->at(x_), Rational(2));
}

TEST_F(ExistentialTest, AndDistributes) {
  // (x in [0,2]) and (x in [1,3]) via existential wrappers = [1,2].
  Conjunction a;
  a.Add(LinearConstraint::Ge(X(), C(0)));
  a.Add(LinearConstraint::Le(X(), C(2)));
  Conjunction b;
  b.Add(LinearConstraint::Ge(X(), C(1)));
  b.Add(LinearConstraint::Le(X(), C(3)));
  DisjunctiveExistential both = DisjunctiveExistential::FromConjunction(a).And(
      DisjunctiveExistential::FromConjunction(b));
  EXPECT_TRUE(both.EvalFree({{x_, Rational(3, 2)}}).value());
  EXPECT_FALSE(both.EvalFree({{x_, Rational(1, 2)}}).value());
}

}  // namespace
}  // namespace lyric
