// E5 — the MAX/MIN ... SUBJECT TO operator (§4.2): exact-rational LP cost
// as the constraint system grows, plus the satisfiability predicate's
// epsilon handling for strict inequalities.
//
// Expected shape: polynomial growth in both variables and constraints;
// strict systems pay a constant factor for the epsilon column; witness
// extraction (FindPoint) tracks feasibility cost.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "constraint/simplex.h"

namespace lyric {
namespace {

void BM_MaximizeByConstraints(benchmark::State& state) {
  auto vars = bench::BenchVars(6);
  Conjunction c = bench::RandomPolytope(
      vars, static_cast<int>(state.range(0)), /*seed=*/21);
  LinearExpr obj;
  for (VarId v : vars) obj.AddTerm(v, Rational(1));
  bench::CounterDeltas obs_deltas(state);
  for (auto _ : state) {
    auto r = Simplex::Maximize(obj, c);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MaximizeByConstraints)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MaximizeByVariables(benchmark::State& state) {
  auto vars = bench::BenchVars(static_cast<size_t>(state.range(0)));
  Conjunction c = bench::RandomPolytope(vars, 24, /*seed=*/22);
  LinearExpr obj;
  for (VarId v : vars) obj.AddTerm(v, Rational(1));
  bench::CounterDeltas obs_deltas(state);
  for (auto _ : state) {
    auto r = Simplex::Maximize(obj, c);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MaximizeByVariables)->Arg(2)->Arg(4)->Arg(8)->Arg(10);

void BM_SatisfiabilityClosed(benchmark::State& state) {
  auto vars = bench::BenchVars(6);
  Conjunction c = bench::RandomPolytope(
      vars, static_cast<int>(state.range(0)), /*seed=*/23);
  bench::CounterDeltas obs_deltas(state);
  for (auto _ : state) {
    auto r = Simplex::IsSatisfiable(c);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SatisfiabilityClosed)->Arg(8)->Arg(32)->Arg(64);

void BM_SatisfiabilityStrict(benchmark::State& state) {
  auto vars = bench::BenchVars(6);
  Conjunction closed = bench::RandomPolytope(
      vars, static_cast<int>(state.range(0)), /*seed=*/23);
  Conjunction strict;
  for (const LinearConstraint& atom : closed.atoms()) {
    strict.Add(atom.op() == RelOp::kLe
                   ? LinearConstraint(atom.lhs(), RelOp::kLt)
                   : atom);
  }
  bench::CounterDeltas obs_deltas(state);
  for (auto _ : state) {
    auto r = Simplex::IsSatisfiable(strict);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SatisfiabilityStrict)->Arg(8)->Arg(32)->Arg(64);

void BM_FindPointWithDisequalities(benchmark::State& state) {
  auto vars = bench::BenchVars(4);
  Conjunction c = bench::RandomPolytope(vars, 12, /*seed=*/25);
  // Puncture the polytope along several hyperplanes through the origin —
  // the witness point the epsilon LP finds often needs repair.
  for (int64_t k = 0; k < state.range(0); ++k) {
    LinearExpr e;
    e.AddTerm(vars[static_cast<size_t>(k) % vars.size()], Rational(1));
    e.AddTerm(vars[(static_cast<size_t>(k) + 1) % vars.size()],
              Rational(-1));
    c.Add(LinearConstraint(e, RelOp::kNeq));
  }
  bench::CounterDeltas obs_deltas(state);
  for (auto _ : state) {
    auto r = Simplex::FindPoint(c);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FindPointWithDisequalities)->Arg(0)->Arg(2)->Arg(4);

}  // namespace
}  // namespace lyric
