// E10 — the manufacturing / warehouse LP workload (§1.2).
//
// Synthetic process hierarchy: P alternative processes over M raw
// materials and K products, each a random feasible polytope. The paper's
// question list maps onto (a) per-process profit maximization (a classic
// LP per stored constraint), (b) purchase planning (MIN per material),
// and (c) producible-range projection. Expected shape: everything is
// polynomial; cost per process grows with M + K.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "constraint/cst_object.h"

namespace lyric {
namespace {

struct Factory {
  std::vector<VarId> materials;
  std::vector<VarId> products;
  std::vector<CstObject> processes;
};

Factory MakeFactory(int num_processes, int num_materials, int num_products,
                    uint64_t seed) {
  Factory f;
  for (int m = 0; m < num_materials; ++m) {
    f.materials.push_back(Variable::Intern("fm" + std::to_string(m)));
  }
  for (int k = 0; k < num_products; ++k) {
    f.products.push_back(Variable::Intern("fp" + std::to_string(k)));
  }
  std::vector<VarId> all = f.materials;
  all.insert(all.end(), f.products.begin(), f.products.end());
  std::mt19937_64 rng(seed);
  for (int p = 0; p < num_processes; ++p) {
    Conjunction c;
    for (VarId v : all) {
      c.Add(LinearConstraint::Ge(LinearExpr::Var(v),
                                 LinearExpr::Constant(Rational(0))));
    }
    // Each product consumes a random bundle of materials.
    for (VarId prod : f.products) {
      LinearExpr need;
      for (VarId mat : f.materials) {
        need.AddTerm(mat, Rational(-1 * static_cast<int64_t>(rng() % 3)));
      }
      need.AddTerm(prod, Rational(1 + static_cast<int64_t>(rng() % 3)));
      c.Add(LinearConstraint::Le(need, LinearExpr::Constant(Rational(0))));
    }
    // Throughput cap.
    LinearExpr total;
    for (VarId prod : f.products) total.AddTerm(prod, Rational(1));
    c.Add(LinearConstraint::Le(
        total, LinearExpr::Constant(Rational(
                   40 + static_cast<int64_t>(rng() % 40)))));
    // Material availability.
    for (VarId mat : f.materials) {
      c.Add(LinearConstraint::Le(
          LinearExpr::Var(mat),
          LinearExpr::Constant(Rational(
              50 + static_cast<int64_t>(rng() % 100)))));
    }
    f.processes.push_back(CstObject::FromConjunction(all, c).value());
  }
  return f;
}

void BM_BestProcessSelection(benchmark::State& state) {
  Factory f = MakeFactory(static_cast<int>(state.range(0)), 4, 3, 42);
  LinearExpr profit;
  for (size_t k = 0; k < f.products.size(); ++k) {
    profit.AddTerm(f.products[k], Rational(5 + static_cast<int64_t>(k)));
  }
  for (VarId mat : f.materials) profit.AddTerm(mat, Rational(-1));
  for (auto _ : state) {
    Rational best(-1000000);
    size_t best_p = 0;
    for (size_t p = 0; p < f.processes.size(); ++p) {
      auto sol = f.processes[p].Maximize(profit).value();
      if (sol.status == LpStatus::kOptimal && sol.value > best) {
        best = sol.value;
        best_p = p;
      }
    }
    benchmark::DoNotOptimize(best_p);
  }
  state.counters["processes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BestProcessSelection)->Arg(2)->Arg(8)->Arg(32);

void BM_PurchasePlanning(benchmark::State& state) {
  Factory f = MakeFactory(4, static_cast<int>(state.range(0)), 3, 43);
  // Demand floor on every product.
  Conjunction demand;
  for (VarId prod : f.products) {
    demand.Add(LinearConstraint::Ge(LinearExpr::Var(prod),
                                    LinearExpr::Constant(Rational(5))));
  }
  CstObject demand_obj =
      CstObject::FromConjunction(f.products, demand).value();
  for (auto _ : state) {
    for (const CstObject& proc : f.processes) {
      CstObject joint = proc.Conjoin(demand_obj).value();
      for (VarId mat : f.materials) {
        auto need = joint.Minimize(LinearExpr::Var(mat));
        benchmark::DoNotOptimize(need);
      }
    }
  }
  state.counters["materials"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PurchasePlanning)->Arg(2)->Arg(4)->Arg(8);

void BM_ProducibleRangeProjection(benchmark::State& state) {
  Factory f = MakeFactory(1, static_cast<int>(state.range(0)), 2, 44);
  for (auto _ : state) {
    // Project the single process onto the two products (eager, the
    // "connection among the quantities" answer).
    auto region = f.processes[0].ProjectEager(f.products);
    benchmark::DoNotOptimize(region);
  }
  state.counters["materials"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ProducibleRangeProjection)->Arg(2)->Arg(4)->Arg(6);

}  // namespace
}  // namespace lyric
