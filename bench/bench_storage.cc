// Persistence costs: dumping and loading scale linearly with the
// database; constraint bodies round-trip through canonical forms, so
// loading re-parses and re-interns each distinct constraint once.

#include <benchmark/benchmark.h>

#include "office/office_db.h"
#include "storage/serializer.h"

namespace lyric {
namespace {

Database MakeDb(int desks) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  (void)ids;
  // Per-desk catalogs maximize distinct constraint objects.
  auto st = office::AddScaledDesks(&db, desks, /*seed=*/3,
                                   /*share_catalog=*/false);
  (void)st;
  return db;
}

void BM_DumpDatabase(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    auto text = Serializer::DumpDatabase(db);
    benchmark::DoNotOptimize(text);
    bytes = text.value().size();
  }
  state.counters["objects"] = static_cast<double>(db.ObjectCount());
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_DumpDatabase)->Arg(4)->Arg(16)->Arg(64);

void BM_LoadDatabase(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  std::string text = Serializer::DumpDatabase(db).value();
  for (auto _ : state) {
    Database loaded;
    auto st = Serializer::LoadDatabase(text, &loaded);
    benchmark::DoNotOptimize(st);
  }
  state.counters["objects"] = static_cast<double>(db.ObjectCount());
}
BENCHMARK(BM_LoadDatabase)->Arg(4)->Arg(16)->Arg(64);

void BM_RoundTrip(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string text = Serializer::DumpDatabase(db).value();
    Database loaded;
    auto st = Serializer::LoadDatabase(text, &loaded);
    benchmark::DoNotOptimize(st);
  }
  state.counters["objects"] = static_cast<double>(db.ObjectCount());
}
BENCHMARK(BM_RoundTrip)->Arg(16);

}  // namespace
}  // namespace lyric
