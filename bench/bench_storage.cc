// Persistence costs. Part one: Serializer dump/load scales linearly with
// the database; constraint bodies round-trip through canonical forms, so
// loading re-parses and re-interns each distinct constraint once. Part
// two: the paged engine (PagedStore) — commit latency is fsync-bound,
// checkpoint amortizes page writeback, and recovery replays the WAL at
// sequential-read speed.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "office/office_db.h"
#include "storage/paged_store.h"
#include "storage/serializer.h"

namespace lyric {
namespace {

Database MakeDb(int desks) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  (void)ids;
  // Per-desk catalogs maximize distinct constraint objects.
  auto st = office::AddScaledDesks(&db, desks, /*seed=*/3,
                                   /*share_catalog=*/false);
  (void)st;
  return db;
}

void BM_DumpDatabase(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    auto text = Serializer::DumpDatabase(db);
    benchmark::DoNotOptimize(text);
    bytes = text.value().size();
  }
  state.counters["objects"] = static_cast<double>(db.ObjectCount());
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_DumpDatabase)->Arg(4)->Arg(16)->Arg(64);

void BM_LoadDatabase(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  std::string text = Serializer::DumpDatabase(db).value();
  for (auto _ : state) {
    Database loaded;
    auto st = Serializer::LoadDatabase(text, &loaded);
    benchmark::DoNotOptimize(st);
  }
  state.counters["objects"] = static_cast<double>(db.ObjectCount());
}
BENCHMARK(BM_LoadDatabase)->Arg(4)->Arg(16)->Arg(64);

void BM_RoundTrip(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string text = Serializer::DumpDatabase(db).value();
    Database loaded;
    auto st = Serializer::LoadDatabase(text, &loaded);
    benchmark::DoNotOptimize(st);
  }
  state.counters["objects"] = static_cast<double>(db.ObjectCount());
}
BENCHMARK(BM_RoundTrip)->Arg(16);

// -- paged engine ----------------------------------------------------------

std::string BenchStorePath() {
  return "/tmp/lyric_bench_store_" + std::to_string(::getpid()) + ".lyricpg";
}

void RemoveStoreFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove(storage::PagedStore::WalPathFor(path).c_str());
}

std::string BenchValue(int i) {
  // ~120 bytes: the order of magnitude of one serialized attribute line.
  std::string v = "value-" + std::to_string(i) + "-";
  v.resize(120, 'x');
  return v;
}

/// One Put + one durable Commit per iteration — the engine's fsync-bound
/// floor. `sync` toggles the WAL fsync so the bench separates the log
/// append cost from the durability cost.
void BM_PagedCommit(benchmark::State& state) {
  const bool sync = state.range(0) != 0;
  const std::string path = BenchStorePath();
  RemoveStoreFiles(path);
  storage::StoreOptions opts;
  opts.path = path;
  opts.sync_commits = sync;
  auto store = storage::PagedStore::Open(opts).value();
  int i = 0;
  bench::CounterDeltas deltas(state);
  for (auto _ : state) {
    auto st = store->Put("key" + std::to_string(i % 512), BenchValue(i));
    if (st.ok()) st = store->Commit();
    if (!st.ok()) state.SkipWithError(st.message().c_str());
    ++i;
  }
  state.SetLabel(sync ? "fsync per commit" : "no fsync (unsafe)");
  (void)store->Close();
  RemoveStoreFiles(path);
}
BENCHMARK(BM_PagedCommit)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

/// `range` Puts batched under one commit: group-commit amortization of
/// the same fsync across a transaction.
void BM_PagedBatchCommit(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const std::string path = BenchStorePath();
  RemoveStoreFiles(path);
  storage::StoreOptions opts;
  opts.path = path;
  auto store = storage::PagedStore::Open(opts).value();
  int i = 0;
  for (auto _ : state) {
    for (int j = 0; j < batch; ++j, ++i) {
      auto st = store->Put("key" + std::to_string(i % 4096), BenchValue(i));
      if (!st.ok()) state.SkipWithError(st.message().c_str());
    }
    auto st = store->Commit();
    if (!st.ok()) state.SkipWithError(st.message().c_str());
  }
  state.counters["puts_per_commit"] = static_cast<double>(batch);
  state.SetItemsProcessed(state.iterations() * batch);
  (void)store->Close();
  RemoveStoreFiles(path);
}
BENCHMARK(BM_PagedBatchCommit)->Arg(1)->Arg(16)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

/// Full-store in-order scan over `range` records.
void BM_PagedScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string path = BenchStorePath();
  RemoveStoreFiles(path);
  storage::StoreOptions opts;
  opts.path = path;
  auto store = storage::PagedStore::Open(opts).value();
  for (int i = 0; i < n; ++i) {
    (void)store->Put("key" + std::to_string(100000 + i), BenchValue(i));
  }
  (void)store->Checkpoint();
  for (auto _ : state) {
    size_t rows = 0;
    auto st = store->Scan("", [&](std::string_view, std::string_view) {
      ++rows;
      return Result<bool>(true);
    });
    if (!st.ok() || rows != static_cast<size_t>(n)) {
      state.SkipWithError("scan failed");
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * n);
  (void)store->Close();
  RemoveStoreFiles(path);
}
BENCHMARK(BM_PagedScan)->Arg(256)->Arg(2048)->Unit(benchmark::kMicrosecond);

/// Open with `range` committed-but-not-checkpointed transactions in the
/// WAL: the redo-recovery path a crash would take.
void BM_PagedRecovery(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  const std::string path = BenchStorePath();
  for (auto _ : state) {
    state.PauseTiming();
    RemoveStoreFiles(path);
    {
      storage::StoreOptions opts;
      opts.path = path;
      auto store = storage::PagedStore::Open(opts).value();
      for (int t = 0; t < txns; ++t) {
        for (int j = 0; j < 8; ++j) {
          (void)store->Put("key" + std::to_string((t * 3 + j) % 64),
                           BenchValue(t));
        }
        (void)store->Commit();
      }
      // No Close/Checkpoint: drop the store with the WAL full, exactly
      // the on-disk state a kill -9 after the last commit leaves.
    }
    state.ResumeTiming();
    storage::StoreOptions opts;
    opts.path = path;
    auto reopened = storage::PagedStore::Open(opts).value();
    benchmark::DoNotOptimize(reopened->recovery().committed_txns);
    state.PauseTiming();
    (void)reopened->Close();
    state.ResumeTiming();
  }
  state.counters["wal_txns"] = static_cast<double>(txns);
  RemoveStoreFiles(path);
}
BENCHMARK(BM_PagedRecovery)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

/// Import the scaled office database into an empty store + Checkpoint —
/// the `.open` seeding path in lyric_shell.
void BM_PagedImportOffice(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  const std::string path = BenchStorePath();
  for (auto _ : state) {
    state.PauseTiming();
    RemoveStoreFiles(path);
    storage::StoreOptions opts;
    opts.path = path;
    auto store = storage::PagedStore::Open(opts).value();
    state.ResumeTiming();
    auto st = store->ImportDatabase(db);
    if (st.ok()) st = store->Checkpoint();
    if (!st.ok()) state.SkipWithError(st.message().c_str());
    state.PauseTiming();
    (void)store->Close();
    state.ResumeTiming();
  }
  state.counters["objects"] = static_cast<double>(db.ObjectCount());
  RemoveStoreFiles(path);
}
BENCHMARK(BM_PagedImportOffice)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lyric
