// E4 — §3.1's canonical-form cost ladder.
//
// The paper commits to exactly two disjunction simplifications (delete
// inconsistent disjuncts, delete syntactic duplicates) because full
// redundancy detection is co-NP-complete, and adopts the [BJM93]
// conjunctive canonical form within a disjunct. The three levels here
// measure that ladder on DNFs with planted duplicates and inconsistent
// disjuncts:
//
//   kSyntactic  — sorting + structural dedupe only (no LP)
//   kCheap      — + Gaussian equality solving + one feasibility LP per
//                 disjunct (the paper's default)
//   kRedundancy — + LP-based redundant-atom removal (quadratic LP calls)
//
// Expected shape: near-linear, linear-with-LP-factor, and visibly
// superlinear cost respectively; disjunct counts after simplification are
// reported as counters.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "constraint/canonical.h"

namespace lyric {
namespace {

void RunLevel(benchmark::State& state, CanonicalLevel level) {
  auto vars = bench::BenchVars(4);
  Dnf d = bench::RandomDnf(vars, static_cast<int>(state.range(0)),
                           /*atoms=*/8, /*seed=*/3);
  size_t out_disjuncts = 0;
  for (auto _ : state) {
    auto r = Canonical::Simplify(d, level);
    benchmark::DoNotOptimize(r);
    out_disjuncts = r.value().size();
  }
  state.counters["disjuncts_in"] = static_cast<double>(d.size());
  state.counters["disjuncts_out"] = static_cast<double>(out_disjuncts);
}

void BM_CanonicalSyntactic(benchmark::State& state) {
  RunLevel(state, CanonicalLevel::kSyntactic);
}
void BM_CanonicalCheap(benchmark::State& state) {
  RunLevel(state, CanonicalLevel::kCheap);
}
void BM_CanonicalRedundancy(benchmark::State& state) {
  RunLevel(state, CanonicalLevel::kRedundancy);
}

BENCHMARK(BM_CanonicalSyntactic)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_CanonicalCheap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_CanonicalRedundancy)->Arg(4)->Arg(16)->Arg(64);

// Within one conjunct: how much does redundancy removal shrink systems
// with many implied atoms?
void BM_ConjunctRedundancyRemoval(benchmark::State& state) {
  auto vars = bench::BenchVars(4);
  // Stack of nested boxes: all but the innermost bounds are redundant.
  Conjunction c;
  for (int64_t k = 1; k <= state.range(0); ++k) {
    for (VarId v : vars) {
      c.Add(LinearConstraint::Le(LinearExpr::Var(v),
                                 LinearExpr::Constant(Rational(k))));
      c.Add(LinearConstraint::Ge(LinearExpr::Var(v),
                                 LinearExpr::Constant(Rational(-k))));
    }
  }
  size_t out_atoms = 0;
  for (auto _ : state) {
    auto r = Canonical::Simplify(c, CanonicalLevel::kRedundancy);
    benchmark::DoNotOptimize(r);
    out_atoms = r.value().size();
  }
  state.counters["atoms_in"] = static_cast<double>(c.size());
  state.counters["atoms_out"] = static_cast<double>(out_atoms);
}
BENCHMARK(BM_ConjunctRedundancyRemoval)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace lyric
