// E8 — the §5 naive implementation vs the direct object evaluator.
//
// The same queries run (a) directly on the object database and (b) after
// flattening, through the LyriC -> SQL-with-constraints translation.
// Expected shape: both PTIME in the database size; flattening itself is
// linear; the flat path pays the up-front unnesting joins, the direct
// path pays per-binding path walks — who wins flips with how selective
// the WHERE is (flat pre-joins amortize over low selectivity).

#include <benchmark/benchmark.h>

#include "office/office_db.h"
#include "query/evaluator.h"
#include "relational/translator.h"

namespace lyric {
namespace {

const char* kFilterQuery =
    "SELECT O FROM Object_in_Room O "
    "WHERE O.location[L] and SAT(L(x, y) and 0 <= x and x <= 10 and "
    "0 <= y and y <= 5)";

const char* kJoinQuery =
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]";

const char* kConstructQuery =
    "SELECT O, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and L(x, y)) "
    "FROM Object_in_Room O, Office_Object CO "
    "WHERE O.catalog_object[CO] and O.location[L] and "
    "CO.extent[E] and CO.translation[D]";

Database MakeDb(int desks) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  (void)ids;
  auto st = office::AddScaledDesks(&db, desks, /*seed=*/99);
  (void)st;
  return db;
}

void RunDirect(benchmark::State& state, const char* query) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Evaluator ev(&db);
    auto r = ev.Execute(query);
    benchmark::DoNotOptimize(r);
  }
}

void RunFlat(benchmark::State& state, const char* query) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  FlatDatabase flat = FlatDatabase::Flatten(db).value();
  for (auto _ : state) {
    FlatTranslator tr(&flat, &db);
    auto r = tr.Execute(query);
    benchmark::DoNotOptimize(r);
  }
}

void BM_Flattening(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  size_t tuples = 0;
  for (auto _ : state) {
    auto flat = FlatDatabase::Flatten(db);
    benchmark::DoNotOptimize(flat);
    tuples = flat.value().TotalTuples();
  }
  state.counters["flat_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_Flattening)->Arg(16)->Arg(64)->Arg(256);

void BM_FilterDirect(benchmark::State& state) {
  RunDirect(state, kFilterQuery);
}
void BM_FilterFlat(benchmark::State& state) { RunFlat(state, kFilterQuery); }
BENCHMARK(BM_FilterDirect)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_FilterFlat)->Arg(16)->Arg(64)->Arg(256);

void BM_JoinDirect(benchmark::State& state) { RunDirect(state, kJoinQuery); }
void BM_JoinFlat(benchmark::State& state) { RunFlat(state, kJoinQuery); }
BENCHMARK(BM_JoinDirect)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_JoinFlat)->Arg(16)->Arg(64)->Arg(256);

void BM_ConstructDirect(benchmark::State& state) {
  RunDirect(state, kConstructQuery);
}
void BM_ConstructFlat(benchmark::State& state) {
  RunFlat(state, kConstructQuery);
}
BENCHMARK(BM_ConstructDirect)->Arg(16)->Arg(64);
BENCHMARK(BM_ConstructFlat)->Arg(16)->Arg(64);

}  // namespace
}  // namespace lyric
