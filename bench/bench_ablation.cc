// Ablations for the design choices DESIGN.md calls out.
//
//  A. Equality substitution before Fourier-Motzkin vs raw FM on the same
//     system with equalities split into inequality pairs — measures how
//     much the Gaussian fast path buys during elimination.
//  B. Canonicalize-early (dedupe after every FM step, the default) vs a
//     no-simplification pipeline — measured through output atom counts on
//     a chained elimination.
//  C. SELECT-result canonicalization level: kCheap vs kRedundancy in the
//     evaluator — the price of paper-style fully simplified answers.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "constraint/fourier_motzkin.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

// --- A: equality substitution vs split equalities --------------------------

Conjunction SystemWithEqualities(int extra_atoms, uint64_t seed) {
  auto vars = bench::BenchVars(4);
  Conjunction c = bench::RandomPolytope(vars, extra_atoms, seed);
  // Chain of equalities linking the variables.
  for (size_t i = 0; i + 1 < vars.size(); ++i) {
    c.Add(LinearConstraint::Eq(
        LinearExpr::Var(vars[i]),
        LinearExpr::Var(vars[i + 1]) + LinearExpr::Constant(Rational(1))));
  }
  return c;
}

Conjunction SplitEqualities(const Conjunction& c) {
  Conjunction out;
  for (const LinearConstraint& atom : c.atoms()) {
    if (atom.IsEquality()) {
      out.Add(LinearConstraint(atom.lhs(), RelOp::kLe));
      out.Add(LinearConstraint(-atom.lhs(), RelOp::kLe));
    } else {
      out.Add(atom);
    }
  }
  return out;
}

void BM_EliminateWithEqualitySubstitution(benchmark::State& state) {
  auto vars = bench::BenchVars(4);
  Conjunction c =
      SystemWithEqualities(static_cast<int>(state.range(0)), 51);
  VarSet keep{vars[0]};
  size_t atoms_out = 0;
  for (auto _ : state) {
    auto r = FourierMotzkin::ProjectOnto(c, keep);
    benchmark::DoNotOptimize(r);
    atoms_out = r.value().size();
  }
  state.counters["atoms_out"] = static_cast<double>(atoms_out);
}
BENCHMARK(BM_EliminateWithEqualitySubstitution)->Arg(2)->Arg(4)->Arg(8);

void BM_EliminateWithSplitEqualities(benchmark::State& state) {
  auto vars = bench::BenchVars(4);
  Conjunction c = SplitEqualities(
      SystemWithEqualities(static_cast<int>(state.range(0)), 51));
  VarSet keep{vars[0]};
  size_t atoms_out = 0;
  for (auto _ : state) {
    auto r = FourierMotzkin::ProjectOnto(c, keep);
    benchmark::DoNotOptimize(r);
    atoms_out = r.value().size();
  }
  state.counters["atoms_out"] = static_cast<double>(atoms_out);
}
BENCHMARK(BM_EliminateWithSplitEqualities)->Arg(2)->Arg(4)->Arg(8);

// --- C: evaluator canonicalization level ------------------------------------

void RunEvaluatorAtLevel(benchmark::State& state, CanonicalLevel level) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  (void)ids;
  auto st = office::AddScaledDesks(&db, 16, 7);
  (void)st;
  EvalOptions opts;
  opts.canonical_level = level;
  const char* q =
      "SELECT O, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and L(x, y)) "
      "FROM Object_in_Room O, Office_Object CO "
      "WHERE O.catalog_object[CO] and O.location[L] and "
      "CO.extent[E] and CO.translation[D]";
  for (auto _ : state) {
    Evaluator ev(&db, opts);
    auto r = ev.Execute(q);
    benchmark::DoNotOptimize(r);
  }
}

void BM_SelectCanonicalCheap(benchmark::State& state) {
  RunEvaluatorAtLevel(state, CanonicalLevel::kCheap);
}
void BM_SelectCanonicalRedundancy(benchmark::State& state) {
  RunEvaluatorAtLevel(state, CanonicalLevel::kRedundancy);
}
BENCHMARK(BM_SelectCanonicalCheap);
BENCHMARK(BM_SelectCanonicalRedundancy);

// --- lazy vs eager SELECT projection ---------------------------------------

void RunProjectionMode(benchmark::State& state, bool eager) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  (void)ids;
  auto st = office::AddScaledDesks(&db, 16, 7);
  (void)st;
  EvalOptions opts;
  opts.eager_select_projection = eager;
  const char* q =
      "SELECT O, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and L(x, y)) "
      "FROM Object_in_Room O, Office_Object CO "
      "WHERE O.catalog_object[CO] and O.location[L] and "
      "CO.extent[E] and CO.translation[D]";
  for (auto _ : state) {
    Evaluator ev(&db, opts);
    auto r = ev.Execute(q);
    benchmark::DoNotOptimize(r);
  }
}

void BM_SelectProjectionEager(benchmark::State& state) {
  RunProjectionMode(state, true);
}
void BM_SelectProjectionLazy(benchmark::State& state) {
  RunProjectionMode(state, false);
}
BENCHMARK(BM_SelectProjectionEager);
BENCHMARK(BM_SelectProjectionLazy);

}  // namespace
}  // namespace lyric
