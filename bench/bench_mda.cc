// E9 — the submarine Maneuver Decision Aid workload (§1.2, [BVCS93]).
//
// Synthetic substitute for the proprietary NUWC goal base: G goals over
// the 4-dimensional maneuver space (course, speed, depth, time), each a
// random polytope around a feasible operating point. The decision-aid
// queries are (a) joint feasibility of the k highest-priority goals and
// (b) the fastest maneuver meeting them — exactly the conjunction +
// optimization shapes the paper motivates.
//
// Expected shape: feasibility scales linearly in the number of conjoined
// goals (one growing LP); the optimization pays one more LP of the same
// size.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "constraint/cst_object.h"

namespace lyric {
namespace {

std::vector<VarId> Dims() {
  return {Variable::Intern("course"), Variable::Intern("speed"),
          Variable::Intern("depth"), Variable::Intern("time")};
}

std::vector<CstObject> MakeGoals(int count, uint64_t seed) {
  std::vector<CstObject> out;
  auto dims = Dims();
  for (int g = 0; g < count; ++g) {
    Conjunction c = bench::RandomPolytope(dims, 6, seed + g, 3, 1000);
    out.push_back(CstObject::FromConjunction(dims, c).value());
  }
  return out;
}

void BM_JointGoalFeasibility(benchmark::State& state) {
  auto goals = MakeGoals(static_cast<int>(state.range(0)), 123);
  for (auto _ : state) {
    CstObject joint = goals[0];
    for (size_t i = 1; i < goals.size(); ++i) {
      joint = joint.Conjoin(goals[i]).value();
    }
    auto sat = joint.Satisfiable();
    benchmark::DoNotOptimize(sat);
  }
  state.counters["goals"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_JointGoalFeasibility)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_BestManeuver(benchmark::State& state) {
  auto goals = MakeGoals(static_cast<int>(state.range(0)), 321);
  LinearExpr speed = LinearExpr::Var(Variable::Intern("speed"));
  for (auto _ : state) {
    CstObject joint = goals[0];
    for (size_t i = 1; i < goals.size(); ++i) {
      joint = joint.Conjoin(goals[i]).value();
    }
    auto best = joint.Maximize(speed);
    benchmark::DoNotOptimize(best);
  }
  state.counters["goals"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BestManeuver)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ManeuverRegionDisplay(benchmark::State& state) {
  // The helmsman's 2-D display: project the joint region onto
  // (speed, depth) eagerly.
  auto goals = MakeGoals(static_cast<int>(state.range(0)), 555);
  std::vector<VarId> display{Variable::Intern("speed"),
                             Variable::Intern("depth")};
  for (auto _ : state) {
    CstObject joint = goals[0];
    for (size_t i = 1; i < goals.size(); ++i) {
      joint = joint.Conjoin(goals[i]).value();
    }
    auto region = joint.ProjectEager(display);
    benchmark::DoNotOptimize(region);
  }
  state.counters["goals"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ManeuverRegionDisplay)->Arg(2)->Arg(4)->Arg(6);

void BM_ContradictingGoalPairs(benchmark::State& state) {
  auto goals = MakeGoals(static_cast<int>(state.range(0)), 777);
  for (auto _ : state) {
    int conflicts = 0;
    for (size_t i = 0; i < goals.size(); ++i) {
      for (size_t j = i + 1; j < goals.size(); ++j) {
        CstObject both = goals[i].Conjoin(goals[j]).value();
        if (!both.Satisfiable().value()) ++conflicts;
      }
    }
    benchmark::DoNotOptimize(conflicts);
  }
  state.counters["goals"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ContradictingGoalPairs)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace lyric
