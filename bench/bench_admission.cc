// Admission-control overhead benchmarks.
//
// The QueryScheduler's promise is that an unconfigured process pays one
// mutex acquisition per query and nothing else. These benchmarks price
// that promise — the free-admission fast path, the full
// admit/reserve/release cycle with limits armed, and a contended
// multi-producer storm through a capped scheduler — and price the
// evaluator end to end with and without admission limits so the per-query
// overhead is visible next to real query cost.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "bench_common.h"
#include "exec/scheduler.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

// Uncontended Admit/Release with no limits configured: the do-nothing
// fast path every query pays once.
void BM_AdmitUnlimited(benchmark::State& state) {
  exec::QueryScheduler sched;
  for (auto _ : state) {
    auto ticket = sched.Admit(exec::AdmissionRequest{});
    benchmark::DoNotOptimize(ticket);
  }
}
BENCHMARK(BM_AdmitUnlimited);

// Uncontended Admit/Release with every limit armed: ledger reserve,
// pressure check, and EWMA update on release.
void BM_AdmitWithLimits(benchmark::State& state) {
  exec::SchedulerLimits limits;
  limits.max_concurrent = 64;
  limits.queue_capacity = 16;
  limits.max_total_memory = 1ull << 30;
  exec::QueryScheduler sched(limits);
  exec::AdmissionRequest request;
  request.deadline_ms = 60000;
  request.memory_budget = 1 << 20;
  for (auto _ : state) {
    auto ticket = sched.Admit(request);
    benchmark::DoNotOptimize(ticket);
  }
}
BENCHMARK(BM_AdmitWithLimits);

// Contended storm: `threads` producers pump admissions through a 2-lane
// scheduler with a deep queue (no shedding, so every admission completes
// and the measured rate is queue+grant throughput).
void BM_AdmitContended(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  exec::SchedulerLimits limits;
  limits.max_concurrent = 2;
  limits.queue_capacity = 1024;
  exec::QueryScheduler sched(limits);
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&sched] {
        for (int i = 0; i < 64; ++i) {
          auto ticket = sched.Admit(exec::AdmissionRequest{});
          benchmark::DoNotOptimize(ticket);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * 64);
}
BENCHMARK(BM_AdmitContended)->Arg(2)->Arg(4)->Arg(8);

// End-to-end evaluator cost, unscheduled vs under a (non-binding)
// concurrency cap: the delta is the whole admission tax on a real query.
void RunPaperQuery(benchmark::State& state, bool capped) {
  Database db;
  if (!office::BuildOfficeDatabase(&db).ok()) {
    state.SkipWithError("office db failed");
    return;
  }
  exec::SchedulerLimits limits;
  if (capped) limits.max_concurrent = 4;
  exec::QueryScheduler sched(limits);
  EvalOptions opts;
  opts.threads = 1;
  opts.scheduler = &sched;
  Evaluator ev(&db, opts);
  const char* kQuery = "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]";
  bench::CounterDeltas deltas(state);
  for (auto _ : state) {
    auto r = ev.Execute(kQuery);
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
}
void BM_PaperQueryUnscheduled(benchmark::State& state) {
  RunPaperQuery(state, false);
}
BENCHMARK(BM_PaperQueryUnscheduled);
void BM_PaperQueryAdmissionCapped(benchmark::State& state) {
  RunPaperQuery(state, true);
}
BENCHMARK(BM_PaperQueryAdmissionCapped);

}  // namespace
}  // namespace lyric
