// E6 — the WHERE-clause constraint predicates (§4.2): satisfiability of
// disjunctive existential formulas and the |= entailment test.
//
// Expected shape: satisfiability is linear in the number of disjuncts
// (one LP each); entailment grows with the *right-hand* disjunct count
// (the refutation case split — co-NP in general), while left-hand
// disjuncts only multiply linearly.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "constraint/entailment.h"

namespace lyric {
namespace {

void BM_DnfSatisfiable(benchmark::State& state) {
  auto vars = bench::BenchVars(4);
  Dnf d = bench::RandomDnf(vars, static_cast<int>(state.range(0)), 8,
                           /*seed=*/31);
  for (auto _ : state) {
    auto r = d.Satisfiable();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DnfSatisfiable)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_EntailsByLhsDisjuncts(benchmark::State& state) {
  auto vars = bench::BenchVars(4);
  Dnf lhs = bench::RandomDnf(vars, static_cast<int>(state.range(0)), 6,
                             /*seed=*/33);
  // rhs: a fixed loose box that everything entails.
  Conjunction box;
  for (VarId v : vars) {
    box.Add(LinearConstraint::Ge(LinearExpr::Var(v),
                                 LinearExpr::Constant(Rational(-1000))));
    box.Add(LinearConstraint::Le(LinearExpr::Var(v),
                                 LinearExpr::Constant(Rational(1000))));
  }
  Dnf rhs(box);
  for (auto _ : state) {
    auto r = Entailment::Entails(lhs, rhs);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EntailsByLhsDisjuncts)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_EntailsByRhsDisjuncts(benchmark::State& state) {
  auto vars = bench::BenchVars(2);
  // lhs: the box [0, 2^k] x [0, 1].
  Conjunction box;
  box.Add(LinearConstraint::Ge(LinearExpr::Var(vars[0]),
                               LinearExpr::Constant(Rational(0))));
  box.Add(LinearConstraint::Le(
      LinearExpr::Var(vars[0]),
      LinearExpr::Constant(Rational(state.range(0)))));
  box.Add(LinearConstraint::Ge(LinearExpr::Var(vars[1]),
                               LinearExpr::Constant(Rational(0))));
  box.Add(LinearConstraint::Le(LinearExpr::Var(vars[1]),
                               LinearExpr::Constant(Rational(1))));
  // rhs: the union of unit slabs [i, i+1] — entailment must cover the lhs
  // by genuinely splitting cases across all disjuncts.
  Dnf rhs;
  for (int64_t i = 0; i < state.range(0); ++i) {
    Conjunction slab;
    slab.Add(LinearConstraint::Ge(LinearExpr::Var(vars[0]),
                                  LinearExpr::Constant(Rational(i))));
    slab.Add(LinearConstraint::Le(LinearExpr::Var(vars[0]),
                                  LinearExpr::Constant(Rational(i + 1))));
    rhs.AddDisjunct(std::move(slab));
  }
  for (auto _ : state) {
    auto r = Entailment::Entails(Dnf(box), rhs);
    benchmark::DoNotOptimize(r);
  }
  state.counters["rhs_disjuncts"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EntailsByRhsDisjuncts)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_OverlapPredicate(benchmark::State& state) {
  // The spatial overlap test (intersection satisfiability) used by the
  // §2.2 Overlap view, at growing atom counts.
  auto vars = bench::BenchVars(2);
  Conjunction a = bench::RandomPolytope(
      vars, static_cast<int>(state.range(0)), /*seed=*/35);
  Conjunction b = bench::RandomPolytope(
      vars, static_cast<int>(state.range(0)), /*seed=*/36);
  for (auto _ : state) {
    auto r = Entailment::Overlaps(Dnf(a), Dnf(b));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OverlapPredicate)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace lyric
