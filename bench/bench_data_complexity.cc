// E7 — §5's headline claim: LyriC evaluation has PTIME data complexity.
//
// A fixed query is evaluated over office databases with N placed desks
// (the query text never changes; only the data grows). Expected shape:
// time grows polynomially — near-linearly for the single-variable
// filter query, quadratically for the pair (self-join) query — and never
// exponentially in N.

#include <benchmark/benchmark.h>

#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

Database MakeDb(int desks) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  (void)ids;
  auto st = office::AddScaledDesks(&db, desks, /*seed=*/77);
  (void)st;
  return db;
}

void BM_FilterQueryByDbSize(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  const char* q =
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and SAT(L(x, y) and 0 <= x and x <= 10 and "
      "0 <= y and y <= 5)";
  size_t rows = 0;
  for (auto _ : state) {
    Evaluator ev(&db);
    auto r = ev.Execute(q);
    benchmark::DoNotOptimize(r);
    rows = r.value().size();
  }
  state.counters["objects"] = static_cast<double>(state.range(0) + 1);
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_FilterQueryByDbSize)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ConstructQueryByDbSize(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  // The §4.1 global-extent construction per room object.
  const char* q =
      "SELECT O, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and L(x, y)) "
      "FROM Object_in_Room O, Office_Object CO "
      "WHERE O.catalog_object[CO] and O.location[L] and "
      "CO.extent[E] and CO.translation[D]";
  for (auto _ : state) {
    Evaluator ev(&db);
    auto r = ev.Execute(q);
    benchmark::DoNotOptimize(r);
  }
  state.counters["objects"] = static_cast<double>(state.range(0) + 1);
}
BENCHMARK(BM_ConstructQueryByDbSize)->Arg(4)->Arg(16)->Arg(64);

void BM_PairQueryByDbSize(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  // Overlapping pairs: a quadratic join, still PTIME.
  const char* q =
      "SELECT O1, O2 "
      "FROM Object_in_Room O1, Object_in_Room O2 "
      "WHERE O1.location[L1] and O1.catalog_object.extent[E1] and "
      "O1.catalog_object.translation[D1] and "
      "O2.location[L2] and O2.catalog_object.extent[E2] and "
      "O2.catalog_object.translation[D2] and "
      "not O1.inv_number = O2.inv_number and "
      "SAT( ((u, v) | E1(w, z) and D1(w, z, x, y, u, v) and L1(x, y)) and "
      "((u, v) | E2(w2, z2) and D2(w2, z2, x2, y2, u, v) and L2(x2, y2)) )";
  for (auto _ : state) {
    Evaluator ev(&db);
    auto r = ev.Execute(q);
    benchmark::DoNotOptimize(r);
  }
  state.counters["objects"] = static_cast<double>(state.range(0) + 1);
}
BENCHMARK(BM_PairQueryByDbSize)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace lyric
