// E7 — §5's headline claim: LyriC evaluation has PTIME data complexity.
//
// A fixed query is evaluated over office databases with N placed desks
// (the query text never changes; only the data grows). Expected shape:
// time grows polynomially — near-linearly for the single-variable
// filter query, quadratically for the pair (self-join) query — and never
// exponentially in N.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "constraint/solver_cache.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

Database MakeDb(int desks) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  (void)ids;
  auto st = office::AddScaledDesks(&db, desks, /*seed=*/77);
  (void)st;
  return db;
}

void BM_FilterQueryByDbSize(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  const char* q =
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and SAT(L(x, y) and 0 <= x and x <= 10 and "
      "0 <= y and y <= 5)";
  size_t rows = 0;
  for (auto _ : state) {
    Evaluator ev(&db);
    auto r = ev.Execute(q);
    benchmark::DoNotOptimize(r);
    rows = r.value().size();
  }
  state.counters["objects"] = static_cast<double>(state.range(0) + 1);
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_FilterQueryByDbSize)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ConstructQueryByDbSize(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  // The §4.1 global-extent construction per room object.
  const char* q =
      "SELECT O, ((u, v) | E(w, z) and D(w, z, x, y, u, v) and L(x, y)) "
      "FROM Object_in_Room O, Office_Object CO "
      "WHERE O.catalog_object[CO] and O.location[L] and "
      "CO.extent[E] and CO.translation[D]";
  for (auto _ : state) {
    Evaluator ev(&db);
    auto r = ev.Execute(q);
    benchmark::DoNotOptimize(r);
  }
  state.counters["objects"] = static_cast<double>(state.range(0) + 1);
}
BENCHMARK(BM_ConstructQueryByDbSize)->Arg(4)->Arg(16)->Arg(64);

void BM_PairQueryByDbSize(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  // Overlapping pairs: a quadratic join, still PTIME.
  const char* q =
      "SELECT O1, O2 "
      "FROM Object_in_Room O1, Object_in_Room O2 "
      "WHERE O1.location[L1] and O1.catalog_object.extent[E1] and "
      "O1.catalog_object.translation[D1] and "
      "O2.location[L2] and O2.catalog_object.extent[E2] and "
      "O2.catalog_object.translation[D2] and "
      "not O1.inv_number = O2.inv_number and "
      "SAT( ((u, v) | E1(w, z) and D1(w, z, x, y, u, v) and L1(x, y)) and "
      "((u, v) | E2(w2, z2) and D2(w2, z2, x2, y2, u, v) and L2(x2, y2)) )";
  for (auto _ : state) {
    Evaluator ev(&db);
    auto r = ev.Execute(q);
    benchmark::DoNotOptimize(r);
  }
  state.counters["objects"] = static_cast<double>(state.range(0) + 1);
}
BENCHMARK(BM_PairQueryByDbSize)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// The same filter query at a fixed data size, sweeping worker threads:
// §5's per-tuple independence means wall time should drop near-linearly
// until the chunk count or the machine runs out. `cache_hit_rate` tracks
// how much satisfiability work the solver memo cache absorbed across
// iterations (the first iteration seeds it, later ones mostly hit).
void BM_FilterQueryByThreads(benchmark::State& state) {
  Database db = MakeDb(128);
  const char* q =
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and SAT(L(x, y) and 0 <= x and x <= 10 and "
      "0 <= y and y <= 5)";
  SolverCache::Global().Clear();
  SolverCache::Stats before = SolverCache::Global().stats();
  {
    bench::CounterDeltas deltas(state);
    for (auto _ : state) {
      EvalOptions opts;
      opts.threads = static_cast<size_t>(state.range(0));
      Evaluator ev(&db, opts);
      auto r = ev.Execute(q);
      benchmark::DoNotOptimize(r);
    }
  }
  SolverCache::Stats after = SolverCache::Global().stats();
  uint64_t hits = after.hits - before.hits;
  uint64_t misses = after.misses - before.misses;
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["cache_hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
}
BENCHMARK(BM_FilterQueryByThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

}  // namespace
}  // namespace lyric
