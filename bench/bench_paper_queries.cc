// E2 — the §4.1 worked queries on the Figure 2 database, timed.
//
// These are the paper's own demonstrations; the bench fixes their cost on
// the reference instance so regressions in the evaluator, the constraint
// engine, or canonicalization show up immediately.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.h"
#include "constraint/solver_cache.h"
#include "obs/metrics.h"
#include "office/office_db.h"
#include "query/evaluator.h"

namespace lyric {
namespace {

struct NamedQuery {
  const char* name;
  const char* text;
};

const NamedQuery kQueries[] = {
    {"Q1_drawer_extent", "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]"},
    {"Q2_global_extent",
     "SELECT CO, ((u, v) | E and D and x = 6 and y = 4) "
     "FROM Office_Object CO WHERE CO.extent[E] and CO.translation[D]"},
    {"Q3_drawer_area",
     "SELECT O, ((u, v) | D(w, z, x, y, u, v) and "
     "DD(w1, z1, x1, y1, u1, v1) and w = u1 and z = v1 and "
     "DC(p, q) and DE(w1, z1) and L(x, y)) "
     "FROM Object_in_Room O, Desk DSK "
     "WHERE O.location[L] and O.catalog_object[DSK] and "
     "DSK.translation[D] and DSK.drawer_center[DC] and "
     "DSK.drawer.translation[DD] and DSK.drawer.extent[DE]"},
    {"Q4_centered_drawer",
     "SELECT DSK FROM Desk DSK WHERE DSK.color = 'red' and "
     "DSK.drawer_center[C] and C(p, q) |= p = 0"},
    {"Q5_walls_entailment",
     "SELECT DSK FROM Object_in_Room O, Desk DSK "
     "WHERE O.catalog_object[DSK] and O.location[L] and "
     "DSK.translation[D] and DSK.drawer_center[DC] and "
     "DSK.drawer.extent[DE] and DSK.drawer.translation[DD] and "
     "((u, v) | D(w, z, x, y, u, v) and DD(w1, z1, x1, y1, u1, v1) and "
     "w = u1 and z = v1 and DC(p, q) and DE(w1, z1) and L(x, y)) "
     "|= ((u, v) | 0 < u and u < 20 and 0 < v and v < 10)"},
    {"Q6_max_subject_to",
     "SELECT MAX(w + z SUBJECT TO ((w, z) | E)) "
     "FROM Desk X WHERE X.extent[E]"},
};

void BM_PaperQuery(benchmark::State& state) {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  (void)ids;
  const NamedQuery& q = kQueries[state.range(0)];
  state.SetLabel(q.name);
  for (auto _ : state) {
    Evaluator ev(&db);
    auto r = ev.Execute(q.text);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PaperQuery)->DenseRange(0, 5);

// The parallel sweep: the Q5-style entailment filter over a database
// scaled to enough room objects that the per-binding chunks actually
// occupy every worker. Wall time at Arg(t) vs Arg(1) is the speedup CI
// records (BENCH_parallel.json); `cache_hit_rate` shows how much of the
// solver work the memo cache absorbed.
void BM_PaperQueryThreads(benchmark::State& state) {
  Database db;
  (void)office::BuildOfficeDatabase(&db);
  (void)office::AddScaledDesks(&db, 48, /*seed=*/77);
  const char* q =
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and "
      "L(x, y) |= (0 < x and x < 20 and 0 < y and y < 10)";
  SolverCache::Global().Clear();
  SolverCache::Stats before = SolverCache::Global().stats();
  {
    bench::CounterDeltas deltas(state);
    for (auto _ : state) {
      EvalOptions opts;
      opts.threads = static_cast<size_t>(state.range(0));
      Evaluator ev(&db, opts);
      auto r = ev.Execute(q);
      benchmark::DoNotOptimize(r);
    }
  }
  SolverCache::Stats after = SolverCache::Global().stats();
  uint64_t hits = after.hits - before.hits;
  uint64_t misses = after.misses - before.misses;
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["cache_hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
}
BENCHMARK(BM_PaperQueryThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// The same sweep with the resource governor armed at generous limits
// (nothing trips; every cancellation checkpoint and accounting hook
// runs). Wall time here vs BM_PaperQueryThreads at the same thread count
// is the governor overhead the CI budget caps at 5% — both series land
// in BENCH_parallel.json (the filter matches the shared prefix), so a
// creeping checkpoint cost is visible run over run.
void BM_PaperQueryThreadsGoverned(benchmark::State& state) {
  Database db;
  (void)office::BuildOfficeDatabase(&db);
  (void)office::AddScaledDesks(&db, 48, /*seed=*/77);
  const char* q =
      "SELECT O FROM Object_in_Room O "
      "WHERE O.location[L] and "
      "L(x, y) |= (0 < x and x < 20 and 0 < y and y < 10)";
  SolverCache::Global().Clear();
  uint64_t trips = 0;
  for (auto _ : state) {
    EvalOptions opts;
    opts.threads = static_cast<size_t>(state.range(0));
    opts.deadline_ms = 600'000;
    opts.memory_budget = 1ull << 40;
    opts.max_pivots = 1ull << 40;
    opts.max_disjuncts = 1ull << 40;
    Evaluator ev(&db, opts);
    auto r = ev.Execute(q);
    benchmark::DoNotOptimize(r);
    if (r.ok() && !r->governor_status().ok()) ++trips;
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  // Any trip at these limits is a governor bug; surface it in the output.
  state.counters["governor_trips"] = static_cast<double>(trips);
}
BENCHMARK(BM_PaperQueryThreadsGoverned)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime();

// The flight-recorder acceptance check: Histogram::Record (bucket + count
// + sum adds, max CAS) must stay within 2x of the Timer::Record it
// replaced on the hot paths. Both are measured back-to-back over the same
// value stream and the ratio lands in the counters, so the budget is
// checked from this bench's own output rather than a separate harness.
void BM_HistogramVsTimerRecord(benchmark::State& state) {
  obs::Timer& timer =
      obs::Registry::Global().GetTimer("bench.record_timer");
  obs::Histogram& hist =
      obs::Registry::Global().GetHistogram("bench.record_hist");
  constexpr int kBatch = 4096;
  // A latency-shaped value stream (spread across buckets so the
  // histogram's bucket-index path sees realistic inputs).
  uint64_t values[kBatch];
  uint64_t v = 1;
  for (int i = 0; i < kBatch; ++i) {
    v = v * 2862933555777941757ull + 3037000493ull;  // splitmix-ish LCG
    values[i] = (v >> 24) % 10'000'000;              // 0..10ms in ns
  }

  uint64_t timer_ns = 0, hist_ns = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kBatch; ++i) timer.Record(values[i]);
    auto t1 = std::chrono::steady_clock::now();
    for (int i = 0; i < kBatch; ++i) hist.Record(values[i]);
    auto t2 = std::chrono::steady_clock::now();
    timer_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    hist_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
            .count());
    benchmark::ClobberMemory();
  }
  const double records =
      static_cast<double>(state.iterations()) * kBatch;
  state.counters["timer_ns_per_record"] =
      static_cast<double>(timer_ns) / records;
  state.counters["histogram_ns_per_record"] =
      static_cast<double>(hist_ns) / records;
  state.counters["ratio"] = timer_ns == 0
                                ? 0.0
                                : static_cast<double>(hist_ns) /
                                      static_cast<double>(timer_ns);
  state.SetItemsProcessed(static_cast<int64_t>(records) * 2);
}
BENCHMARK(BM_HistogramVsTimerRecord);

}  // namespace
}  // namespace lyric
