// Shared workload generators for the benchmark harness.

#ifndef LYRIC_BENCH_BENCH_COMMON_H_
#define LYRIC_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "constraint/conjunction.h"
#include "constraint/dnf.h"
#include "obs/metrics.h"

namespace lyric {
namespace bench {

/// Emits per-iteration engine-counter deltas into the benchmark report.
/// Declare one right before the `for (auto _ : state)` loop; on scope exit
/// every counter that moved during the timed region shows up in the JSON
/// and console output divided by the iteration count (e.g.
/// `simplex.pivots=41.2/iter`).
class CounterDeltas {
 public:
  explicit CounterDeltas(benchmark::State& state)
      : state_(state), before_(obs::Registry::Global().Snapshot()) {}
  ~CounterDeltas() {
    obs::MetricsSnapshot delta =
        obs::Registry::Global().Snapshot().DeltaSince(before_);
    double iters = static_cast<double>(
        state_.iterations() == 0 ? 1 : state_.iterations());
    for (const auto& [name, value] : delta.counters) {
      if (value == 0) continue;
      state_.counters[name] =
          benchmark::Counter(static_cast<double>(value) / iters);
    }
  }
  CounterDeltas(const CounterDeltas&) = delete;
  CounterDeltas& operator=(const CounterDeltas&) = delete;

 private:
  benchmark::State& state_;
  obs::MetricsSnapshot before_;
};

/// Deterministic variable ids bvar0..bvar{n-1}.
inline std::vector<VarId> BenchVars(size_t n) {
  std::vector<VarId> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Variable::Intern("bvar" + std::to_string(i)));
  }
  return out;
}

/// A random *feasible bounded* polytope over `vars`: every constraint is
/// slack at the origin and a bounding box keeps the region finite.
inline Conjunction RandomPolytope(const std::vector<VarId>& vars,
                                  int num_constraints, uint64_t seed,
                                  int64_t coeff_range = 5,
                                  int64_t box = 100) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 12345);
  Conjunction c;
  for (VarId v : vars) {
    c.Add(LinearConstraint::Ge(LinearExpr::Var(v),
                               LinearExpr::Constant(Rational(-box))));
    c.Add(LinearConstraint::Le(LinearExpr::Var(v),
                               LinearExpr::Constant(Rational(box))));
  }
  for (int i = 0; i < num_constraints; ++i) {
    LinearExpr e;
    bool nonzero = false;
    for (VarId v : vars) {
      int64_t coeff = static_cast<int64_t>(rng() % (2 * coeff_range + 1)) -
                      coeff_range;
      if (coeff != 0) nonzero = true;
      e.AddTerm(v, Rational(coeff));
    }
    if (!nonzero) e.AddTerm(vars[i % vars.size()], Rational(1));
    // Loose at the origin: e <= slack with slack >= 1.
    int64_t slack = 1 + static_cast<int64_t>(rng() % 50);
    c.Add(LinearConstraint::Le(e, LinearExpr::Constant(Rational(slack))));
  }
  return c;
}

/// A random DNF with `disjuncts` conjuncts of `atoms` atoms each; roughly
/// a third of the disjuncts are planted inconsistent and duplicates are
/// planted every fourth disjunct.
inline Dnf RandomDnf(const std::vector<VarId>& vars, int disjuncts, int atoms,
                     uint64_t seed) {
  Dnf out;
  Conjunction last;
  for (int d = 0; d < disjuncts; ++d) {
    if (d % 4 == 3 && !last.IsTrue()) {
      out.AddDisjunct(last);  // Planted syntactic duplicate.
      continue;
    }
    Conjunction c = RandomPolytope(vars, atoms, seed * 131 + d);
    if (d % 3 == 2) {
      // Plant inconsistency.
      VarId v = vars[d % vars.size()];
      c.Add(LinearConstraint::Ge(LinearExpr::Var(v),
                                 LinearExpr::Constant(Rational(1))));
      c.Add(LinearConstraint::Le(LinearExpr::Var(v),
                                 LinearExpr::Constant(Rational(0))));
    }
    last = c;
    out.AddDisjunct(std::move(c));
  }
  return out;
}

}  // namespace bench
}  // namespace lyric

#endif  // LYRIC_BENCH_BENCH_COMMON_H_
