// E3 — §3.1's restricted-projection argument.
//
// The paper's four constraint families exist because restricted
// quantifier elimination (eliminate ONE variable, or keep AT MOST ONE) is
// polynomial, while unrestricted elimination blows up. This bench
// regenerates that comparison:
//
//   EliminateOne     — one Fourier-Motzkin step (quadratic output)
//   KeepOneViaLp     — projection onto one variable as two LPs (the
//                      paper's other restricted case)
//   EliminateMany    — iterated FM down to 2 variables (exponential
//                      worst case; output size reported as a counter)
//
// Expected shape: the first two scale polynomially with the number of
// atoms; the third's time and output size grow much faster with the
// number of eliminated variables.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "constraint/existential.h"
#include "constraint/fourier_motzkin.h"

namespace lyric {
namespace {

void BM_EliminateOne(benchmark::State& state) {
  auto vars = bench::BenchVars(6);
  Conjunction c = bench::RandomPolytope(
      vars, static_cast<int>(state.range(0)), /*seed=*/7);
  size_t out_atoms = 0;
  bench::CounterDeltas obs_deltas(state);
  for (auto _ : state) {
    auto r = FourierMotzkin::EliminateVariable(c, vars[0]);
    benchmark::DoNotOptimize(r);
    out_atoms = r.value().size();
  }
  state.counters["atoms_in"] = static_cast<double>(c.size());
  state.counters["atoms_out"] = static_cast<double>(out_atoms);
}
BENCHMARK(BM_EliminateOne)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_KeepOneViaLp(benchmark::State& state) {
  auto vars = bench::BenchVars(6);
  Conjunction c = bench::RandomPolytope(
      vars, static_cast<int>(state.range(0)), /*seed=*/7);
  size_t out_atoms = 0;
  bench::CounterDeltas obs_deltas(state);
  for (auto _ : state) {
    auto r = FourierMotzkin::ProjectOntoAtMostOne(c, vars[0]);
    benchmark::DoNotOptimize(r);
    out_atoms = r.value().size();
  }
  state.counters["atoms_in"] = static_cast<double>(c.size());
  state.counters["atoms_out"] = static_cast<double>(out_atoms);
}
BENCHMARK(BM_KeepOneViaLp)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->MinTime(0.1);

// Unrestricted: eliminate range(0) of 6 variables from a 12-atom system.
void BM_EliminateMany(benchmark::State& state) {
  auto vars = bench::BenchVars(6);
  Conjunction c = bench::RandomPolytope(vars, 12, /*seed=*/11);
  VarSet keep;
  for (size_t i = static_cast<size_t>(state.range(0)); i < vars.size();
       ++i) {
    keep.insert(vars[i]);
  }
  size_t out_atoms = 0;
  bench::CounterDeltas obs_deltas(state);
  for (auto _ : state) {
    auto r = FourierMotzkin::ProjectOnto(c, keep);
    benchmark::DoNotOptimize(r);
    out_atoms = r.value().size();
  }
  state.counters["eliminated"] = static_cast<double>(state.range(0));
  state.counters["atoms_out"] = static_cast<double>(out_atoms);
}
BENCHMARK(BM_EliminateMany)->DenseRange(1, 3)->MinTime(0.05);

// The same elimination done lazily in the existential family: projection
// is constant-time there (§3.1's entire point).
void BM_LazyExistentialProjection(benchmark::State& state) {
  auto vars = bench::BenchVars(6);
  Conjunction c = bench::RandomPolytope(vars, 12, /*seed=*/11);
  VarSet keep;
  for (size_t i = static_cast<size_t>(state.range(0)); i < vars.size();
       ++i) {
    keep.insert(vars[i]);
  }
  ExistentialConjunction ec(c);
  bench::CounterDeltas obs_deltas(state);
  for (auto _ : state) {
    ExistentialConjunction projected = ec.Project(keep);
    benchmark::DoNotOptimize(projected);
  }
  state.counters["eliminated"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_LazyExistentialProjection)->DenseRange(1, 4);

}  // namespace
}  // namespace lyric
