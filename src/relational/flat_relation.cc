#include "relational/flat_relation.h"

#include <algorithm>

namespace lyric {

Result<size_t> FlatRelation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return Status::NotFound("relation has no column '" + name + "'");
}

Status FlatRelation::Add(std::vector<Oid> tuple) {
  if (tuple.size() != columns_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match relation arity " + std::to_string(columns_.size()));
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

void FlatRelation::Dedupe() {
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
}

FlatRelation FlatRelation::WithPrefix(const std::string& prefix) const {
  std::vector<std::string> cols;
  cols.reserve(columns_.size());
  for (const std::string& c : columns_) cols.push_back(prefix + c);
  FlatRelation out(std::move(cols));
  for (const auto& t : tuples_) {
    (void)out.Add(t);
  }
  return out;
}

std::string FlatRelation::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns_[i];
  }
  out += "\n";
  for (const auto& t : tuples_) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += " | ";
      out += t[i].ToString();
    }
    out += "\n";
  }
  out += "(" + std::to_string(tuples_.size()) + " tuples)";
  return out;
}

}  // namespace lyric
