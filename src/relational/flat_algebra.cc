#include "relational/flat_algebra.h"

#include <unordered_map>

namespace lyric {

namespace {

Result<bool> CompareOids(const Oid& a, const std::string& op, const Oid& b) {
  if (op == "=") return a == b;
  if (op == "!=") return a != b;
  int cmp;
  if (a.IsNumeric() && b.IsNumeric()) {
    cmp = a.AsNumeric().Compare(b.AsNumeric());
  } else if (a.kind() == b.kind() &&
             (a.kind() == OidKind::kString || a.kind() == OidKind::kSymbol)) {
    cmp = a.AsString().compare(b.AsString());
  } else {
    return Status::TypeError("cannot order-compare " + a.ToString() +
                             " with " + b.ToString());
  }
  if (op == "<") return cmp < 0;
  if (op == "<=") return cmp <= 0;
  if (op == ">") return cmp > 0;
  if (op == ">=") return cmp >= 0;
  return Status::InvalidArgument("unknown comparison operator '" + op + "'");
}

}  // namespace

Result<FlatRelation> FlatAlgebra::SelectConst(const FlatRelation& rel,
                                              const std::string& col,
                                              const std::string& op,
                                              const Oid& value) {
  LYRIC_ASSIGN_OR_RETURN(size_t idx, rel.ColumnIndex(col));
  FlatRelation out(rel.columns());
  for (const auto& t : rel.tuples()) {
    LYRIC_ASSIGN_OR_RETURN(bool keep, CompareOids(t[idx], op, value));
    if (keep) LYRIC_RETURN_NOT_OK(out.Add(t));
  }
  return out;
}

Result<FlatRelation> FlatAlgebra::SelectCols(const FlatRelation& rel,
                                             const std::string& col1,
                                             const std::string& op,
                                             const std::string& col2) {
  LYRIC_ASSIGN_OR_RETURN(size_t i1, rel.ColumnIndex(col1));
  LYRIC_ASSIGN_OR_RETURN(size_t i2, rel.ColumnIndex(col2));
  FlatRelation out(rel.columns());
  for (const auto& t : rel.tuples()) {
    LYRIC_ASSIGN_OR_RETURN(bool keep, CompareOids(t[i1], op, t[i2]));
    if (keep) LYRIC_RETURN_NOT_OK(out.Add(t));
  }
  return out;
}

Result<FlatRelation> FlatAlgebra::Product(const FlatRelation& a,
                                          const FlatRelation& b) {
  std::vector<std::string> cols = a.columns();
  for (const std::string& c : b.columns()) {
    for (const std::string& existing : a.columns()) {
      if (c == existing) {
        return Status::InvalidArgument("Product: column clash on '" + c +
                                       "'; prefix one side");
      }
    }
    cols.push_back(c);
  }
  FlatRelation out(std::move(cols));
  for (const auto& ta : a.tuples()) {
    for (const auto& tb : b.tuples()) {
      std::vector<Oid> t = ta;
      t.insert(t.end(), tb.begin(), tb.end());
      LYRIC_RETURN_NOT_OK(out.Add(std::move(t)));
    }
  }
  return out;
}

Result<FlatRelation> FlatAlgebra::Join(const FlatRelation& a,
                                       const std::string& lcol,
                                       const FlatRelation& b,
                                       const std::string& rcol) {
  LYRIC_ASSIGN_OR_RETURN(size_t li, a.ColumnIndex(lcol));
  LYRIC_ASSIGN_OR_RETURN(size_t ri, b.ColumnIndex(rcol));
  std::vector<std::string> cols = a.columns();
  for (const std::string& c : b.columns()) {
    for (const std::string& existing : a.columns()) {
      if (c == existing) {
        return Status::InvalidArgument("Join: column clash on '" + c +
                                       "'; prefix one side");
      }
    }
    cols.push_back(c);
  }
  // Hash the smaller side.
  std::unordered_multimap<Oid, const std::vector<Oid>*, OidHash> index;
  index.reserve(b.tuples().size());
  for (const auto& tb : b.tuples()) {
    index.emplace(tb[ri], &tb);
  }
  FlatRelation out(std::move(cols));
  for (const auto& ta : a.tuples()) {
    auto [lo, hi] = index.equal_range(ta[li]);
    for (auto it = lo; it != hi; ++it) {
      std::vector<Oid> t = ta;
      t.insert(t.end(), it->second->begin(), it->second->end());
      LYRIC_RETURN_NOT_OK(out.Add(std::move(t)));
    }
  }
  return out;
}

Result<FlatRelation> FlatAlgebra::Project(
    const FlatRelation& rel, const std::vector<std::string>& cols) {
  std::vector<size_t> idx;
  for (const std::string& c : cols) {
    LYRIC_ASSIGN_OR_RETURN(size_t i, rel.ColumnIndex(c));
    idx.push_back(i);
  }
  FlatRelation out(cols);
  for (const auto& t : rel.tuples()) {
    std::vector<Oid> p;
    p.reserve(idx.size());
    for (size_t i : idx) p.push_back(t[i]);
    LYRIC_RETURN_NOT_OK(out.Add(std::move(p)));
  }
  out.Dedupe();
  return out;
}

Result<DisjunctiveExistential> FlatAlgebra::BuildBody(
    const std::vector<Oid>& tuple, const FlatRelation& rel,
    const Database& db, const std::vector<CstColumnUse>& uses,
    const Conjunction& extra) {
  DisjunctiveExistential body = DisjunctiveExistential::FromConjunction(extra);
  for (const CstColumnUse& use : uses) {
    LYRIC_ASSIGN_OR_RETURN(size_t idx, rel.ColumnIndex(use.column));
    const Oid& oid = tuple[idx];
    if (!oid.IsCst()) {
      return Status::TypeError("column '" + use.column + "' holds " +
                               oid.ToString() + ", not a CST oid");
    }
    LYRIC_ASSIGN_OR_RETURN(CstObject obj, db.GetCst(oid));
    std::vector<VarId> target;
    for (const std::string& v : use.dim_vars) {
      target.push_back(Variable::Intern(v));
    }
    LYRIC_ASSIGN_OR_RETURN(CstObject renamed, obj.RenameTo(target));
    body = body.And(renamed.Body());
  }
  return body;
}

Result<FlatRelation> FlatAlgebra::SelectCstSat(
    const FlatRelation& rel, const Database& db,
    const std::vector<CstColumnUse>& uses, const Conjunction& extra) {
  FlatRelation out(rel.columns());
  for (const auto& t : rel.tuples()) {
    LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential body,
                           BuildBody(t, rel, db, uses, extra));
    LYRIC_ASSIGN_OR_RETURN(bool sat, body.Satisfiable());
    if (sat) LYRIC_RETURN_NOT_OK(out.Add(t));
  }
  return out;
}

Result<FlatRelation> FlatAlgebra::SelectCstEntails(
    const FlatRelation& rel, const Database& db,
    const std::vector<CstColumnUse>& lhs_uses, const Conjunction& lhs_extra,
    const std::vector<CstColumnUse>& rhs_uses,
    const Conjunction& rhs_extra) {
  FlatRelation out(rel.columns());
  for (const auto& t : rel.tuples()) {
    LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential lhs,
                           BuildBody(t, rel, db, lhs_uses, lhs_extra));
    LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential rhs,
                           BuildBody(t, rel, db, rhs_uses, rhs_extra));
    LYRIC_ASSIGN_OR_RETURN(bool holds, lhs.Entails(rhs));
    if (holds) LYRIC_RETURN_NOT_OK(out.Add(t));
  }
  return out;
}

Result<FlatRelation> FlatAlgebra::ConstructCst(
    const FlatRelation& rel, Database* db,
    const std::vector<CstColumnUse>& uses, const Conjunction& extra,
    const std::vector<std::string>& interface_vars,
    const std::string& new_column, bool eager) {
  std::vector<std::string> cols = rel.columns();
  cols.push_back(new_column);
  FlatRelation out(std::move(cols));
  std::vector<VarId> iface;
  VarSet keep;
  for (const std::string& v : interface_vars) {
    VarId id = Variable::Intern(v);
    iface.push_back(id);
    keep.insert(id);
  }
  for (const auto& t : rel.tuples()) {
    LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential body,
                           BuildBody(t, rel, *db, uses, extra));
    CstObject obj;
    if (eager) {
      DisjunctiveExistential projected = body.Project(keep);
      LYRIC_ASSIGN_OR_RETURN(Dnf dnf, projected.ToDnf());
      LYRIC_ASSIGN_OR_RETURN(Dnf simplified,
                             Canonical::Simplify(dnf, CanonicalLevel::kCheap));
      LYRIC_ASSIGN_OR_RETURN(obj, CstObject::FromDnf(iface, simplified));
    } else {
      LYRIC_ASSIGN_OR_RETURN(obj, CstObject::Make(iface, body.Project(keep)));
    }
    LYRIC_ASSIGN_OR_RETURN(Oid oid, db->InternCst(obj));
    std::vector<Oid> extended = t;
    extended.push_back(std::move(oid));
    LYRIC_RETURN_NOT_OK(out.Add(std::move(extended)));
  }
  return out;
}

}  // namespace lyric
