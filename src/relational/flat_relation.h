// Flat constraint relations — the target of the §5 translation.
//
// "The definition of a database in LyriC as a general structure means
// that it is essentially a collection of flat relations. ... We next join
// the class relations, the single-valued attribute relations, and the
// multi-valued attribute relations (after unnesting them) together,
// obtaining a flat relation for each class in the database."
//
// A FlatRelation is a bag of fixed-arity tuples of oids. CST-valued
// columns hold CST oids, so the relations are exactly the "SQL with
// constraints" relations of [BJM93]/[KKR93] that give LyriC its PTIME
// data complexity.

#ifndef LYRIC_RELATIONAL_FLAT_RELATION_H_
#define LYRIC_RELATIONAL_FLAT_RELATION_H_

#include <map>
#include <string>
#include <vector>

#include "object/oid.h"
#include "util/result.h"

namespace lyric {

/// A named-column relation of oids.
class FlatRelation {
 public:
  FlatRelation() = default;
  explicit FlatRelation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<Oid>>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Index of a column; NotFound for unknown names.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Appends a tuple; arity must match.
  Status Add(std::vector<Oid> tuple);

  /// Removes duplicate tuples (relations are sets).
  void Dedupe();

  /// Renames every column with a prefix ("D1." + name) — used when
  /// joining a relation with itself.
  FlatRelation WithPrefix(const std::string& prefix) const;

  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Oid>> tuples_;
};

}  // namespace lyric

#endif  // LYRIC_RELATIONAL_FLAT_RELATION_H_
