// Flattening an object database into per-class relations (§5).

#ifndef LYRIC_RELATIONAL_FLATTEN_H_
#define LYRIC_RELATIONAL_FLATTEN_H_

#include "object/database.h"
#include "relational/flat_relation.h"

namespace lyric {

/// The flat image of a Database: one relation per class (columns: "oid"
/// followed by every attribute visible on the class, inherited included;
/// set-valued attributes are unnested, one row per member, cartesian
/// across several set attributes). Objects missing an attribute value are
/// dropped from that class's relation — flat tuples are total, exactly as
/// the §5 construction's join semantics imply.
///
/// The CST store is shared by reference: flat tuples carry CST oids and
/// resolve them against the originating database.
class FlatDatabase {
 public:
  /// Builds the flat image of `db`. `db` must outlive the result.
  static Result<FlatDatabase> Flatten(const Database& db);

  /// The relation of a class (its full extent, subclasses included).
  Result<const FlatRelation*> Relation(const std::string& class_name) const;

  const Database& origin() const { return *origin_; }

  /// Total number of flat tuples across all classes (diagnostic).
  size_t TotalTuples() const;

  const std::map<std::string, FlatRelation>& relations() const {
    return relations_;
  }

 private:
  const Database* origin_ = nullptr;
  std::map<std::string, FlatRelation> relations_;
};

}  // namespace lyric

#endif  // LYRIC_RELATIONAL_FLATTEN_H_
