// Translation of LyriC queries into flat constraint-relational plans —
// the §5 construction that yields PTIME data complexity.
//
// "We first flatten all path expressions into a single level by the
// addition of class names and variables in the FROM clause. Thus, the
// language is equivalent to SQL with linear constraints and hence has a
// PTIME data complexity."
//
// Scope: the translator covers the conjunctive core of LyriC that the
// paper's own example queries use —
//   * FROM items over classes;
//   * a WHERE conjunction of: path predicates (any depth; translated to
//     equi-joins on the per-class relations), comparisons of a path with
//     a literal or another path, SAT(phi), and phi |= psi where phi, psi
//     are conjunctive formulas whose predicate uses carry explicit
//     dimension variables (the flat form has no schema-name context);
//   * SELECT of query variables, terminal paths, and projection formulas.
// Disjunctive WHERE branches, NOT, bare predicate uses, and views are the
// evaluator's territory; the translator reports NotImplemented for them.

#ifndef LYRIC_RELATIONAL_TRANSLATOR_H_
#define LYRIC_RELATIONAL_TRANSLATOR_H_

#include "query/ast.h"
#include "relational/flat_algebra.h"
#include "relational/flatten.h"

namespace lyric {

/// Executes LyriC queries against a flattened database.
class FlatTranslator {
 public:
  /// `flat` must outlive the translator; `db` receives interned CST
  /// objects created by SELECT projection formulas (it is the same
  /// database `flat` was built from).
  FlatTranslator(const FlatDatabase* flat, Database* db)
      : flat_(flat), db_(db) {}

  /// Parses and executes.
  Result<FlatRelation> Execute(const std::string& query_text);
  Result<FlatRelation> Execute(const ast::Query& query);

 private:
  struct TranslationState;

  Status ProcessFrom(const ast::Query& query, TranslationState* st) const;
  Status ProcessWhere(const ast::WhereExpr& where, TranslationState* st) const;
  // Translates a path to joins; returns the terminal column name.
  Result<std::string> ProcessPath(const ast::PathExpr& path,
                                  TranslationState* st) const;
  // Extracts a conjunctive formula into CST column uses + plain atoms.
  Status ExtractFormula(const ast::Formula& f, const TranslationState& st,
                        std::vector<CstColumnUse>* uses,
                        Conjunction* extra) const;
  Result<LinearExpr> ExtractArith(const ast::ArithExpr& e) const;

  const FlatDatabase* flat_;
  Database* db_;
};

}  // namespace lyric

#endif  // LYRIC_RELATIONAL_TRANSLATOR_H_
