#include "relational/translator.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"

namespace lyric {

struct FlatTranslator::TranslationState {
  FlatRelation rel;
  // Query variable -> column holding its oid.
  std::map<std::string, std::string> var_cols;
  // Object variable -> (class name, column prefix for its attributes).
  std::map<std::string, std::pair<std::string, std::string>> var_objects;
  int fresh_counter = 0;

  std::string Fresh() { return "$t" + std::to_string(fresh_counter++); }
};

Result<FlatRelation> FlatTranslator::Execute(const std::string& query_text) {
  LYRIC_ASSIGN_OR_RETURN(ast::Query query, ParseQuery(query_text));
  return Execute(query);
}

Status FlatTranslator::ProcessFrom(const ast::Query& query,
                                   TranslationState* st) const {
  for (const ast::FromItem& item : query.from) {
    LYRIC_ASSIGN_OR_RETURN(const FlatRelation* rel,
                           flat_->Relation(item.class_name));
    FlatRelation prefixed = rel->WithPrefix(item.var + ".");
    if (st->rel.columns().empty()) {
      st->rel = std::move(prefixed);
    } else {
      LYRIC_ASSIGN_OR_RETURN(st->rel,
                             FlatAlgebra::Product(st->rel, prefixed));
    }
    st->var_cols[item.var] = item.var + ".oid";
    st->var_objects[item.var] = {item.class_name, item.var + "."};
  }
  return Status::OK();
}

Result<std::string> FlatTranslator::ProcessPath(const ast::PathExpr& path,
                                                TranslationState* st) const {
  if (path.head.kind != ast::NameOrLiteral::Kind::kName ||
      !st->var_cols.count(path.head.name)) {
    return Status::NotImplemented(
        "flat translation: path must start at a FROM-bound or previously "
        "joined variable (got '" + path.ToString() + "')");
  }
  if (!path.steps.empty() && !st->var_objects.count(path.head.name)) {
    return Status::NotImplemented(
        "flat translation: variable '" + path.head.name +
        "' holds a terminal value; its attributes are not joined");
  }
  std::string cur_var = path.head.name;
  std::string terminal_col = st->var_cols.at(cur_var);
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const ast::PathExpr::Step& step = path.steps[i];
    auto obj_it = st->var_objects.find(cur_var);
    if (obj_it == st->var_objects.end()) {
      return Status::NotImplemented(
          "flat translation: cannot continue path after a terminal value in "
          + path.ToString());
    }
    const auto& [cls, prefix] = obj_it->second;
    LYRIC_ASSIGN_OR_RETURN(const AttributeDef* attr,
                           db_->schema().FindAttribute(cls, step.attribute));
    std::string attr_col = prefix + step.attribute;
    terminal_col = attr_col;

    // Bind or check the selector.
    std::string bound_var;
    if (step.selector.has_value()) {
      if (step.selector->kind == ast::NameOrLiteral::Kind::kLiteral) {
        LYRIC_ASSIGN_OR_RETURN(
            st->rel, FlatAlgebra::SelectConst(st->rel, attr_col, "=",
                                              step.selector->literal));
      } else {
        bound_var = step.selector->name;
      }
    }

    bool is_last = i + 1 == path.steps.size();
    bool is_object_attr =
        !attr->IsCst() && !Schema::IsPrimitive(attr->target_class);

    if (is_object_attr && (!is_last || !bound_var.empty())) {
      // Join the target class relation so the walk can continue (or the
      // variable can expose the object's attributes later).
      std::string var = bound_var.empty() ? st->Fresh() : bound_var;
      if (st->var_cols.count(var)) {
        // Already joined: just equate.
        LYRIC_ASSIGN_OR_RETURN(
            st->rel, FlatAlgebra::SelectCols(st->rel, attr_col, "=",
                                             st->var_cols.at(var)));
      } else {
        LYRIC_ASSIGN_OR_RETURN(const FlatRelation* target,
                               flat_->Relation(attr->target_class));
        FlatRelation prefixed = target->WithPrefix(var + ".");
        LYRIC_OBS_COUNT("translator.joins");
        LYRIC_ASSIGN_OR_RETURN(
            st->rel,
            FlatAlgebra::Join(st->rel, attr_col, prefixed, var + ".oid"));
        st->var_cols[var] = var + ".oid";
        st->var_objects[var] = {attr->target_class, var + "."};
      }
      cur_var = var;
      terminal_col = st->var_cols.at(var);
    } else if (!bound_var.empty()) {
      // CST or primitive value bound to a variable: alias the column.
      if (st->var_cols.count(bound_var)) {
        LYRIC_ASSIGN_OR_RETURN(
            st->rel, FlatAlgebra::SelectCols(st->rel, attr_col, "=",
                                             st->var_cols.at(bound_var)));
      } else {
        st->var_cols[bound_var] = attr_col;
      }
      cur_var = bound_var;
    } else {
      cur_var = "";  // Terminal unnamed value.
    }
  }
  return terminal_col;
}

Result<LinearExpr> FlatTranslator::ExtractArith(
    const ast::ArithExpr& e) const {
  using Kind = ast::ArithExpr::Kind;
  switch (e.kind) {
    case Kind::kConst:
      return LinearExpr::Constant(e.constant);
    case Kind::kName:
      return LinearExpr::Var(Variable::Intern(e.name));
    case Kind::kPath:
      return Status::NotImplemented(
          "flat translation: path-valued arithmetic operand '" +
          e.ToString() + "'");
    case Kind::kNeg: {
      LYRIC_ASSIGN_OR_RETURN(LinearExpr a, ExtractArith(*e.lhs));
      return -a;
    }
    case Kind::kAdd:
    case Kind::kSub: {
      LYRIC_ASSIGN_OR_RETURN(LinearExpr a, ExtractArith(*e.lhs));
      LYRIC_ASSIGN_OR_RETURN(LinearExpr b, ExtractArith(*e.rhs));
      return e.kind == Kind::kAdd ? a + b : a - b;
    }
    case Kind::kMul: {
      LYRIC_ASSIGN_OR_RETURN(LinearExpr a, ExtractArith(*e.lhs));
      LYRIC_ASSIGN_OR_RETURN(LinearExpr b, ExtractArith(*e.rhs));
      if (a.IsConstant()) return b.Scale(a.constant());
      if (b.IsConstant()) return a.Scale(b.constant());
      return Status::TypeError("non-linear product in formula");
    }
    case Kind::kDiv: {
      LYRIC_ASSIGN_OR_RETURN(LinearExpr a, ExtractArith(*e.lhs));
      LYRIC_ASSIGN_OR_RETURN(LinearExpr b, ExtractArith(*e.rhs));
      if (!b.IsConstant() || b.constant().IsZero()) {
        return Status::TypeError("bad divisor in formula");
      }
      return a.Scale(b.constant().Inverse());
    }
  }
  return Status::Internal("bad arith node");
}

Status FlatTranslator::ExtractFormula(const ast::Formula& f,
                                      const TranslationState& st,
                                      std::vector<CstColumnUse>* uses,
                                      Conjunction* extra) const {
  using Kind = ast::Formula::Kind;
  switch (f.kind) {
    case Kind::kTrue:
      return Status::OK();
    case Kind::kAnd:
      for (const auto& child : f.children) {
        LYRIC_RETURN_NOT_OK(ExtractFormula(*child, st, uses, extra));
      }
      return Status::OK();
    case Kind::kAtom: {
      LYRIC_ASSIGN_OR_RETURN(LinearExpr lhs, ExtractArith(*f.atom_lhs));
      LYRIC_ASSIGN_OR_RETURN(LinearExpr rhs, ExtractArith(*f.atom_rhs));
      if (f.relop == "=") {
        extra->Add(LinearConstraint::Eq(lhs, rhs));
      } else if (f.relop == "!=") {
        extra->Add(LinearConstraint::Neq(lhs, rhs));
      } else if (f.relop == "<=") {
        extra->Add(LinearConstraint::Le(lhs, rhs));
      } else if (f.relop == "<") {
        extra->Add(LinearConstraint::Lt(lhs, rhs));
      } else if (f.relop == ">=") {
        extra->Add(LinearConstraint::Ge(lhs, rhs));
      } else {
        extra->Add(LinearConstraint::Gt(lhs, rhs));
      }
      return Status::OK();
    }
    case Kind::kPred: {
      if (!f.pred_args.has_value()) {
        return Status::NotImplemented(
            "flat translation: predicate uses need explicit dimension "
            "variables (bare '" + f.pred->ToString() +
            "' relies on schema-name context)");
      }
      if (!f.pred->steps.empty() ||
          f.pred->head.kind != ast::NameOrLiteral::Kind::kName) {
        return Status::NotImplemented(
            "flat translation: predicate must be a bound CST variable");
      }
      auto it = st.var_cols.find(f.pred->head.name);
      if (it == st.var_cols.end()) {
        return Status::NotImplemented("flat translation: CST variable '" +
                                      f.pred->head.name + "' is not bound");
      }
      uses->push_back(CstColumnUse{it->second, *f.pred_args});
      return Status::OK();
    }
    default:
      return Status::NotImplemented(
          "flat translation: only conjunctive formulas are supported");
  }
}

Status FlatTranslator::ProcessWhere(const ast::WhereExpr& where,
                                    TranslationState* st) const {
  using Kind = ast::WhereExpr::Kind;
  switch (where.kind) {
    case Kind::kAnd:
      for (const auto& child : where.children) {
        LYRIC_RETURN_NOT_OK(ProcessWhere(*child, st));
      }
      return Status::OK();
    case Kind::kPathPred:
      return ProcessPath(where.path, st).status();
    case Kind::kCompare: {
      if (where.cmp_lhs.kind != ast::WhereExpr::Operand::Kind::kPath) {
        return Status::NotImplemented(
            "flat translation: comparison lhs must be a path");
      }
      LYRIC_ASSIGN_OR_RETURN(std::string lcol,
                             ProcessPath(where.cmp_lhs.path, st));
      if (where.cmp_rhs.kind == ast::WhereExpr::Operand::Kind::kLiteral) {
        LYRIC_ASSIGN_OR_RETURN(
            st->rel, FlatAlgebra::SelectConst(st->rel, lcol, where.cmp_op,
                                              where.cmp_rhs.literal));
      } else {
        LYRIC_ASSIGN_OR_RETURN(std::string rcol,
                               ProcessPath(where.cmp_rhs.path, st));
        LYRIC_ASSIGN_OR_RETURN(
            st->rel,
            FlatAlgebra::SelectCols(st->rel, lcol, where.cmp_op, rcol));
      }
      return Status::OK();
    }
    case Kind::kFormulaSat: {
      std::vector<CstColumnUse> uses;
      Conjunction extra;
      LYRIC_RETURN_NOT_OK(ExtractFormula(*where.formula, *st, &uses, &extra));
      LYRIC_ASSIGN_OR_RETURN(
          st->rel, FlatAlgebra::SelectCstSat(st->rel, *db_, uses, extra));
      return Status::OK();
    }
    case Kind::kEntails: {
      std::vector<CstColumnUse> lhs_uses, rhs_uses;
      Conjunction lhs_extra, rhs_extra;
      const ast::Formula* lhs = where.ent_lhs.get();
      const ast::Formula* rhs = where.ent_rhs.get();
      if (lhs->kind == ast::Formula::Kind::kProject) {
        lhs = lhs->children[0].get();
      }
      if (rhs->kind == ast::Formula::Kind::kProject) {
        rhs = rhs->children[0].get();
      }
      LYRIC_RETURN_NOT_OK(ExtractFormula(*lhs, *st, &lhs_uses, &lhs_extra));
      LYRIC_RETURN_NOT_OK(ExtractFormula(*rhs, *st, &rhs_uses, &rhs_extra));
      LYRIC_ASSIGN_OR_RETURN(
          st->rel,
          FlatAlgebra::SelectCstEntails(st->rel, *db_, lhs_uses, lhs_extra,
                                        rhs_uses, rhs_extra));
      return Status::OK();
    }
    default:
      return Status::NotImplemented(
          "flat translation: OR / NOT in WHERE is not supported; use the "
          "direct evaluator");
  }
}

Result<FlatRelation> FlatTranslator::Execute(const ast::Query& query) {
  LYRIC_OBS_COUNT("translator.queries");
  if (query.is_view) {
    return Status::NotImplemented(
        "flat translation: views are evaluated by the direct evaluator");
  }
  TranslationState st;
  {
    obs::Span span("translate_from");
    LYRIC_RETURN_NOT_OK(ProcessFrom(query, &st));
  }
  if (query.where) {
    obs::Span span("translate_where");
    LYRIC_RETURN_NOT_OK(ProcessWhere(*query.where, &st));
  }
  // SELECT: resolve each item to a column (constructing CST columns for
  // projection formulas), then project.
  obs::Span select_span("translate_select");
  std::vector<std::string> out_cols;
  int cst_counter = 0;
  for (const ast::SelectItem& item : query.select) {
    switch (item.kind) {
      case ast::SelectItem::Kind::kPath: {
        LYRIC_ASSIGN_OR_RETURN(std::string col, ProcessPath(item.path, &st));
        out_cols.push_back(col);
        break;
      }
      case ast::SelectItem::Kind::kFormulaObject: {
        const ast::Formula& f = *item.formula;
        if (f.kind != ast::Formula::Kind::kProject) {
          return Status::TypeError("SELECT constraint item must project");
        }
        std::vector<CstColumnUse> uses;
        Conjunction extra;
        LYRIC_RETURN_NOT_OK(
            ExtractFormula(*f.children[0], st, &uses, &extra));
        std::string col =
            item.name.value_or("cst#" + std::to_string(cst_counter++));
        LYRIC_ASSIGN_OR_RETURN(
            st.rel, FlatAlgebra::ConstructCst(st.rel, db_, uses, extra,
                                              f.proj_vars, col,
                                              /*eager=*/true));
        out_cols.push_back(col);
        break;
      }
      case ast::SelectItem::Kind::kOptimize:
        return Status::NotImplemented(
            "flat translation: MAX/MIN items are evaluated by the direct "
            "evaluator");
    }
  }
  return FlatAlgebra::Project(st.rel, out_cols);
}

}  // namespace lyric
