// Relational operators over flat constraint relations — "SQL with linear
// constraints" (§5, following [BJM93]/[KKR93]).
//
// Plain operators (scan, select, join, project) treat CST oids as opaque
// values; the constraint-aware operators resolve CST columns against the
// originating database and run the constraint engine per tuple:
// satisfiability selection, entailment selection, and construction of new
// CST objects (the SELECT-clause projection formulas).

#ifndef LYRIC_RELATIONAL_FLAT_ALGEBRA_H_
#define LYRIC_RELATIONAL_FLAT_ALGEBRA_H_

#include "constraint/cst_object.h"
#include "object/database.h"
#include "relational/flat_relation.h"

namespace lyric {

/// One CST column use inside a constraint-aware operator: the column
/// holding the CST oid plus the variable names its dimensions take.
struct CstColumnUse {
  std::string column;
  std::vector<std::string> dim_vars;
};

/// Stateless relational operators.
class FlatAlgebra {
 public:
  /// Tuples where column `col` relates to the constant by `op`
  /// (=, !=, <, <=, >, >= — ordered ops require numeric or string oids).
  static Result<FlatRelation> SelectConst(const FlatRelation& rel,
                                          const std::string& col,
                                          const std::string& op,
                                          const Oid& value);

  /// Tuples where two columns relate by `op`.
  static Result<FlatRelation> SelectCols(const FlatRelation& rel,
                                         const std::string& col1,
                                         const std::string& op,
                                         const std::string& col2);

  /// Cartesian product (columns must not clash; use WithPrefix).
  static Result<FlatRelation> Product(const FlatRelation& a,
                                      const FlatRelation& b);

  /// Equi-join on a.lcol = b.rcol (hash join; columns must not clash).
  static Result<FlatRelation> Join(const FlatRelation& a,
                                   const std::string& lcol,
                                   const FlatRelation& b,
                                   const std::string& rcol);

  /// Projection onto `cols` (duplicates removed).
  static Result<FlatRelation> Project(const FlatRelation& rel,
                                      const std::vector<std::string>& cols);

  /// Constraint satisfiability selection: keep tuples where the
  /// conjunction of the used CST objects (interfaces renamed to their
  /// dim_vars) and `extra` is satisfiable.
  static Result<FlatRelation> SelectCstSat(const FlatRelation& rel,
                                           const Database& db,
                                           const std::vector<CstColumnUse>&
                                               uses,
                                           const Conjunction& extra);

  /// Entailment selection: keep tuples where (lhs uses + lhs_extra)
  /// entails (rhs uses + rhs_extra), both as disjunctive existentials.
  static Result<FlatRelation> SelectCstEntails(
      const FlatRelation& rel, const Database& db,
      const std::vector<CstColumnUse>& lhs_uses, const Conjunction& lhs_extra,
      const std::vector<CstColumnUse>& rhs_uses,
      const Conjunction& rhs_extra);

  /// Appends a CST column: for each tuple, the object
  /// ((interface_vars) | conj of uses and extra), interned into `db`.
  /// `eager` materializes the projection by quantifier elimination.
  static Result<FlatRelation> ConstructCst(
      const FlatRelation& rel, Database* db,
      const std::vector<CstColumnUse>& uses, const Conjunction& extra,
      const std::vector<std::string>& interface_vars,
      const std::string& new_column, bool eager);

 private:
  /// Conjunction of the used CST bodies (renamed) and `extra`, as a
  /// disjunctive existential.
  static Result<DisjunctiveExistential> BuildBody(
      const std::vector<Oid>& tuple, const FlatRelation& rel,
      const Database& db, const std::vector<CstColumnUse>& uses,
      const Conjunction& extra);
};

}  // namespace lyric

#endif  // LYRIC_RELATIONAL_FLAT_ALGEBRA_H_
