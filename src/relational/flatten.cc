#include "relational/flatten.h"

namespace lyric {

Result<FlatDatabase> FlatDatabase::Flatten(const Database& db) {
  FlatDatabase out;
  out.origin_ = &db;
  for (const std::string& cls : db.schema().ClassNames()) {
    LYRIC_ASSIGN_OR_RETURN(std::vector<const AttributeDef*> attrs,
                           db.schema().AllAttributes(cls));
    std::vector<std::string> columns{"oid"};
    for (const AttributeDef* a : attrs) columns.push_back(a->name);
    FlatRelation rel(columns);
    for (const Oid& oid : db.Extent(cls)) {
      // Unnest: start with the oid column and extend per attribute,
      // multiplying rows for set-valued attributes.
      std::vector<std::vector<Oid>> rows{{oid}};
      bool total = true;
      for (const AttributeDef* a : attrs) {
        Result<Value> v = db.GetAttribute(oid, a->name);
        if (!v.ok()) {
          total = false;  // Missing attribute: object drops out (join).
          break;
        }
        const std::vector<Oid>& elems = v->elements();
        if (elems.empty()) {
          total = false;  // Empty set: the unnest join is empty.
          break;
        }
        std::vector<std::vector<Oid>> next;
        next.reserve(rows.size() * elems.size());
        for (const std::vector<Oid>& row : rows) {
          for (const Oid& e : elems) {
            std::vector<Oid> extended = row;
            extended.push_back(e);
            next.push_back(std::move(extended));
          }
        }
        rows = std::move(next);
      }
      if (!total) continue;
      for (std::vector<Oid>& row : rows) {
        LYRIC_RETURN_NOT_OK(rel.Add(std::move(row)));
      }
    }
    rel.Dedupe();
    out.relations_.emplace(cls, std::move(rel));
  }
  return out;
}

Result<const FlatRelation*> FlatDatabase::Relation(
    const std::string& class_name) const {
  auto it = relations_.find(class_name);
  if (it == relations_.end()) {
    return Status::NotFound("no flat relation for class '" + class_name +
                            "'");
  }
  return &it->second;
}

size_t FlatDatabase::TotalTuples() const {
  size_t out = 0;
  for (const auto& [cls, rel] : relations_) {
    (void)cls;
    out += rel.size();
  }
  return out;
}

}  // namespace lyric
