#include "geometry/polytope2.h"

#include <algorithm>

#include "constraint/simplex.h"

namespace lyric {

namespace {

// A line a*x + b*y + c relop 0 extracted from an atom.
struct Line {
  Rational a, b, c;
};

Result<std::vector<Line>> ExtractLines(const Conjunction& c, VarId x,
                                       VarId y) {
  std::vector<Line> out;
  for (const LinearConstraint& atom : c.atoms()) {
    if (atom.IsDisequality()) {
      return Status::InvalidArgument(
          "Polytope2: disequalities are not polytopes (" + atom.ToString() +
          ")");
    }
    Line line;
    line.c = atom.lhs().constant();
    for (const auto& [var, coeff] : atom.lhs().terms()) {
      if (var == x) {
        line.a = coeff;
      } else if (var == y) {
        line.b = coeff;
      } else {
        return Status::InvalidArgument(
            "Polytope2: constraint mentions a third variable '" +
            Variable::Name(var) + "'");
      }
    }
    out.push_back(std::move(line));
    // An equality is both <= and >=; represent as two lines so vertex
    // pairing sees both sides.
    if (atom.IsEquality()) {
      out.push_back(Line{-line.a, -line.b, -line.c});
    }
  }
  return out;
}

}  // namespace

int Polytope2::Orientation(const Point2& a, const Point2& b,
                           const Point2& c) {
  Rational cross =
      (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  return cross.Sign();
}

Result<std::vector<Point2>> Polytope2::Vertices(const Conjunction& c, VarId x,
                                                VarId y) {
  // Work on the closure.
  Conjunction closed;
  for (const LinearConstraint& atom : c.atoms()) {
    if (atom.IsDisequality()) {
      return Status::InvalidArgument("Polytope2: disequality atom");
    }
    closed.Add(atom.Closure());
  }
  LYRIC_ASSIGN_OR_RETURN(bool sat, Simplex::IsSatisfiable(closed));
  if (!sat) return std::vector<Point2>{};
  // Boundedness check via LP.
  for (VarId v : {x, y}) {
    LYRIC_ASSIGN_OR_RETURN(LpSolution mx,
                           Simplex::Maximize(LinearExpr::Var(v), closed));
    LYRIC_ASSIGN_OR_RETURN(LpSolution mn,
                           Simplex::Minimize(LinearExpr::Var(v), closed));
    if (mx.status == LpStatus::kUnbounded ||
        mn.status == LpStatus::kUnbounded) {
      return Status::InvalidArgument("Polytope2: region is unbounded");
    }
  }
  LYRIC_ASSIGN_OR_RETURN(std::vector<Line> lines, ExtractLines(closed, x, y));
  // Candidate vertices: pairwise line intersections that satisfy all
  // constraints.
  std::vector<Point2> verts;
  for (size_t i = 0; i < lines.size(); ++i) {
    for (size_t j = i + 1; j < lines.size(); ++j) {
      const Line& p = lines[i];
      const Line& q = lines[j];
      Rational det = p.a * q.b - q.a * p.b;
      if (det.IsZero()) continue;  // Parallel.
      // Solve p.a*x + p.b*y = -p.c ; q.a*x + q.b*y = -q.c.
      Rational vx = ((-p.c) * q.b - (-q.c) * p.b) / det;
      Rational vy = (p.a * (-q.c) - q.a * (-p.c)) / det;
      Assignment pt{{x, vx}, {y, vy}};
      LYRIC_ASSIGN_OR_RETURN(bool inside, closed.Eval(pt));
      if (inside) verts.push_back(Point2{vx, vy});
    }
  }
  // A single point or segment can also come from equalities; if no pair
  // intersects (e.g. only two parallel boundaries active), fall back to
  // LP corners. Vertices may be empty for full-plane conjunctions — but
  // boundedness was checked, so emptiness means a lower-dimensional set;
  // grab one witness point.
  if (verts.empty()) {
    LYRIC_ASSIGN_OR_RETURN(std::optional<Assignment> w,
                           Simplex::FindPoint(closed));
    if (w.has_value()) {
      verts.push_back(Point2{w->at(x), w->at(y)});
    }
    return verts;
  }
  std::sort(verts.begin(), verts.end());
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  if (verts.size() <= 2) return verts;
  // Order counter-clockwise around the centroid via exact convex-hull
  // (gift wrapping is fine at these sizes and stays exact).
  std::vector<Point2> hull;
  // Start from the lexicographically smallest point.
  Point2 start = verts[0];
  Point2 cur = start;
  do {
    hull.push_back(cur);
    Point2 next = verts[0] == cur && verts.size() > 1 ? verts[1] : verts[0];
    for (const Point2& cand : verts) {
      if (cand == cur) continue;
      if (next == cur) {
        next = cand;
        continue;
      }
      int o = Orientation(cur, next, cand);
      if (o < 0) {
        next = cand;
      } else if (o == 0) {
        // Collinear: take the farther one.
        Rational d_next = (next.x - cur.x) * (next.x - cur.x) +
                          (next.y - cur.y) * (next.y - cur.y);
        Rational d_cand = (cand.x - cur.x) * (cand.x - cur.x) +
                          (cand.y - cur.y) * (cand.y - cur.y);
        if (d_cand > d_next) next = cand;
      }
    }
    cur = next;
    if (hull.size() > verts.size() + 1) {
      return Status::Internal("Polytope2: hull walk failed to close");
    }
  } while (!(cur == start));
  return hull;
}

Rational Polytope2::SignedArea(const std::vector<Point2>& pts) {
  Rational twice;
  for (size_t i = 0; i < pts.size(); ++i) {
    const Point2& a = pts[i];
    const Point2& b = pts[(i + 1) % pts.size()];
    twice += a.x * b.y - b.x * a.y;
  }
  return twice * Rational(1, 2);
}

Result<Rational> Polytope2::Area(const Conjunction& c, VarId x, VarId y) {
  LYRIC_ASSIGN_OR_RETURN(std::vector<Point2> verts, Vertices(c, x, y));
  if (verts.size() < 3) return Rational(0);
  Rational area = SignedArea(verts);
  return area.IsNegative() ? -area : area;
}

Result<Conjunction> Polytope2::FromPolygon(const std::vector<Point2>& pts,
                                           VarId x, VarId y) {
  if (pts.size() < 3) {
    return Status::InvalidArgument("FromPolygon: need at least 3 points");
  }
  std::vector<Point2> poly = pts;
  if (SignedArea(poly).Sign() == 0) {
    return Status::InvalidArgument("FromPolygon: degenerate polygon");
  }
  if (SignedArea(poly).IsNegative()) {
    std::reverse(poly.begin(), poly.end());
  }
  Conjunction out;
  for (size_t i = 0; i < poly.size(); ++i) {
    const Point2& a = poly[i];
    const Point2& b = poly[(i + 1) % poly.size()];
    // Inward halfplane for CCW edge a->b:
    //   (b.x-a.x)(Y-a.y) - (b.y-a.y)(X-a.x) >= 0.
    LinearExpr e;
    e.AddTerm(y, b.x - a.x);
    e.AddTerm(x, -(b.y - a.y));
    e.AddConstant(-(b.x - a.x) * a.y + (b.y - a.y) * a.x);
    out.Add(LinearConstraint(-e, RelOp::kLe));  // e >= 0.
  }
  return out;
}

}  // namespace lyric
