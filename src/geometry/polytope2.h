// Exact 2-D polytope utilities over conjunctions.
//
// The paper positions linear-constraint technology against "ad hoc methods
// working on direct representations" and promises that "for low-dimensional
// space, the best known data structures and algorithms will be used". This
// module is that low-dimensional companion: exact vertex enumeration, area,
// and polygon <-> halfplane conversion for two-dimensional CST objects. It
// also gives the test suite an independent oracle for Fourier-Motzkin
// projections (the shadow of a polytope can be checked vertex by vertex).

#ifndef LYRIC_GEOMETRY_POLYTOPE2_H_
#define LYRIC_GEOMETRY_POLYTOPE2_H_

#include <vector>

#include "constraint/conjunction.h"

namespace lyric {

/// An exact point in the plane.
struct Point2 {
  Rational x;
  Rational y;

  bool operator==(const Point2& o) const { return x == o.x && y == o.y; }
  bool operator<(const Point2& o) const {
    if (x != o.x) return x < o.x;
    return y < o.y;
  }
};

/// Exact computational geometry over conjunctions in variables (x, y).
class Polytope2 {
 public:
  /// Vertices of the (closed) polyhedron `c` restricted to variables
  /// `x`, `y`, in counter-clockwise order. Fails for unbounded regions,
  /// conjunctions mentioning other variables, or disequalities. Strict
  /// atoms contribute their closures (vertices of the closure).
  static Result<std::vector<Point2>> Vertices(const Conjunction& c, VarId x,
                                              VarId y);

  /// Exact area of the closure of `c` (0 for empty / degenerate).
  static Result<Rational> Area(const Conjunction& c, VarId x, VarId y);

  /// Halfplane representation of the convex polygon `pts` (any
  /// orientation; at least 3 distinct non-collinear points).
  static Result<Conjunction> FromPolygon(const std::vector<Point2>& pts,
                                         VarId x, VarId y);

  /// Signed area of a polygon (positive when counter-clockwise).
  static Rational SignedArea(const std::vector<Point2>& pts);

  /// Orientation of the triple (a, b, c): >0 counter-clockwise, 0
  /// collinear, <0 clockwise.
  static int Orientation(const Point2& a, const Point2& b, const Point2& c);
};

}  // namespace lyric

#endif  // LYRIC_GEOMETRY_POLYTOPE2_H_
