// Per-query event log: one structured record per evaluation, kept in a
// bounded in-memory ring (the shell's `.log` reads it) and optionally
// appended as JSONL to a sink file with size-based rotation.
//
// The evaluator fills a QueryLogRecord as each query finishes — outcome,
// timing, row count, cache traffic, admission/governor verdicts — and
// hands it to QueryLog::Global().Append(). Recording is cheap (one mutex
// acquisition and, when a sink is configured, one buffered write); the
// record layer deliberately depends only on std + obs so every layer
// above it can log without cycles.
//
// Environment:
//   LYRIC_QUERY_LOG=path[:max_bytes]  append records as JSONL; when the
//       file exceeds max_bytes (default 16 MiB) it is rotated once to
//       `path.1` and restarted.
//   LYRIC_SLOW_MS=N  queries slower than N milliseconds are marked slow
//       and carry their full per-stage profile in the record (the
//       evaluator collects a trace for them even when tracing is off).

#ifndef LYRIC_OBS_QUERY_LOG_H_
#define LYRIC_OBS_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/sync.h"

namespace lyric {
namespace obs {

/// Everything the flight recorder keeps about one query evaluation.
/// String fields hold small closed vocabularies ("ok", "shed", ...) so
/// the log stays decoupled from the evaluator's own enums.
struct QueryLogRecord {
  uint64_t seq = 0;        // assigned by Append, monotonic per process
  uint64_t unix_ms = 0;    // wall-clock completion time
  uint64_t query_hash = 0; // stable hash of the query text
  std::string query;       // leading fragment of the query text
  std::string status;      // "ok" or the error category
  std::string admission;   // "direct", "queued", "degraded", "shed", "off"
  std::string governor;    // "", "deadline", "memory", "cancelled"
  uint64_t duration_ns = 0;
  uint64_t queue_wait_ns = 0;
  uint64_t rows = 0;
  uint32_t threads = 0;
  uint32_t retries = 0;
  uint64_t cache_hits = 0;       // solver-cache deltas over this query
  uint64_t cache_misses = 0;
  uint64_t tombstone_hits = 0;
  bool truncated = false;  // row cap hit
  bool slow = false;       // duration exceeded the LYRIC_SLOW_MS threshold
  std::string stages;      // per-stage profile (slow queries only)

  /// The record as one JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Process-wide bounded ring of recent QueryLogRecords plus the optional
/// JSONL sink. Thread-safe.
class QueryLog {
 public:
  /// The global log. First use reads LYRIC_QUERY_LOG to configure the
  /// sink.
  static QueryLog& Global();

  /// Stamps seq/unix_ms, appends to the ring (evicting the oldest record
  /// past capacity) and to the sink when one is configured.
  void Append(QueryLogRecord record) LYRIC_EXCLUDES(mu_);

  /// The most recent `n` records, oldest first.
  std::vector<QueryLogRecord> Recent(size_t n) const LYRIC_EXCLUDES(mu_);

  /// Records accepted since process start (ring evictions included).
  uint64_t total_appended() const LYRIC_EXCLUDES(mu_);

  /// Points the JSONL sink at `path` (empty disables). Replaces any
  /// sink configured from the environment.
  void ConfigureSink(const std::string& path, uint64_t max_bytes)
      LYRIC_EXCLUDES(mu_);

  /// Shrinks/grows the ring (testing; default capacity 256).
  void SetCapacityForTesting(size_t capacity) LYRIC_EXCLUDES(mu_);
  /// Drops all buffered records (testing).
  void ClearForTesting() LYRIC_EXCLUDES(mu_);

 private:
  QueryLog();

  void AppendToSinkLocked(const std::string& line) LYRIC_REQUIRES(mu_);

  // The sink lock ranks after the obs registry: metric handles must be
  // resolved before taking mu_, never under it (Append hoists its gauge
  // handle for exactly this reason).
  mutable sync::Mutex mu_{sync::LockRank::kQueryLog, "query_log"};
  std::deque<QueryLogRecord> ring_ LYRIC_GUARDED_BY(mu_);
  size_t capacity_ LYRIC_GUARDED_BY(mu_) = 256;
  uint64_t next_seq_ LYRIC_GUARDED_BY(mu_) = 1;
  uint64_t total_ LYRIC_GUARDED_BY(mu_) = 0;
  std::string sink_path_ LYRIC_GUARDED_BY(mu_);
  uint64_t sink_max_bytes_ LYRIC_GUARDED_BY(mu_) = 0;
  uint64_t sink_bytes_ LYRIC_GUARDED_BY(mu_) = 0;
};

/// The slow-query threshold in milliseconds from LYRIC_SLOW_MS, or 0 when
/// unset/invalid (slow-query promotion off). Read once per process.
uint64_t SlowQueryThresholdMs();

/// FNV-1a over the query text — the stable query_hash the log records.
uint64_t HashQueryText(const std::string& text);

}  // namespace obs
}  // namespace lyric

#endif  // LYRIC_OBS_QUERY_LOG_H_
