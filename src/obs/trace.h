// Per-query evaluation tracing: RAII scoped spans building a tree of
// timed stages (parse -> analyze -> FROM enumeration -> per-binding WHERE
// evaluation -> SELECT construction), exportable as indented text and as
// Chrome trace_event JSON (load with chrome://tracing or
// https://ui.perfetto.dev).
//
// Tracing is opt-in and zero-overhead when off: a Span constructed while
// no collector is installed on the current thread is a single
// thread_local null check. Install a collector with ScopedTraceSession
// (the evaluator does this when EvalOptions::collect_trace is set).
//
// Parallel evaluation traces across threads: each worker thread that
// wants its spans recorded opens a WorkerTraceScope against the query's
// collector, which registers a per-thread span lane. Lanes are written
// only by their owning thread (no locking on the span hot path); the
// evaluator joins its workers before the trace is read, which orders all
// lane writes before export. The Chrome export assigns each distinct
// recording thread its own `tid` (the query thread is tid 1), so a
// threads=4 evaluation renders as parallel worker rows.

#ifndef LYRIC_OBS_TRACE_H_
#define LYRIC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace lyric {
namespace obs {

class TraceCollector;

/// One node of a trace tree: a named stage with a start offset and
/// duration (nanoseconds relative to the collector's start).
struct SpanNode {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  std::vector<std::unique_ptr<SpanNode>> children;

  /// The first direct child with the given name, or nullptr.
  const SpanNode* FindChild(const std::string& child_name) const;
  /// Number of direct children with the given name.
  size_t CountChildren(const std::string& child_name) const;
};

namespace internal {

/// A single-writer span sink — the unit the Span hot path sees through
/// the thread_local. The collector's main lane aliases its root tree;
/// each WorkerTraceScope owns a lane whose root is a container node
/// holding the worker's top-level spans.
struct TraceLane {
  TraceCollector* collector = nullptr;
  SpanNode* root = nullptr;
  SpanNode* current = nullptr;
};

}  // namespace internal

/// Collects span trees for one query evaluation: a main tree rooted at
/// "query" on the installing thread, plus one lane per worker thread that
/// opened a WorkerTraceScope.
class TraceCollector {
 public:
  TraceCollector();

  /// Closes the root span at the current time (idempotent; also called by
  /// ScopedTraceSession when the session ends).
  void Finish();

  /// The main-thread span tree (rooted at "query").
  const SpanNode& root() const { return root_; }

  /// One registered worker lane: the thread that recorded it and its
  /// container node (children are the spans recorded on that thread).
  struct WorkerLaneView {
    std::thread::id thread;
    const SpanNode* spans;
  };
  /// Worker lanes in registration order. Read only after the worker
  /// threads have been joined.
  std::vector<WorkerLaneView> worker_lanes() const LYRIC_EXCLUDES(lanes_mu_);

  /// Indented stage breakdown with durations; worker lanes follow the
  /// main tree under "[worker tid=N]" headers.
  std::string ToPrettyString() const LYRIC_EXCLUDES(lanes_mu_);

  /// Chrome trace_event JSON: {"traceEvents": [{"name", "ph": "X", "ts",
  /// "dur", "pid", "tid"}, ...]} with microsecond timestamps. The main
  /// thread is tid 1; each distinct worker thread gets the next integer
  /// tid in lane-registration order.
  std::string ToChromeTraceJson() const LYRIC_EXCLUDES(lanes_mu_);

  /// The collector installed on this thread (via ScopedTraceSession or
  /// WorkerTraceScope), or nullptr.
  static TraceCollector* Current();

 private:
  friend class Span;
  friend class ScopedTraceSession;
  friend class WorkerTraceScope;

  struct WorkerLane {
    internal::TraceLane lane;
    std::thread::id thread;
    SpanNode container;
  };

  uint64_t NowNs() const;
  internal::TraceLane* RegisterWorkerLane() LYRIC_EXCLUDES(lanes_mu_);

  SpanNode root_;
  internal::TraceLane main_lane_;
  std::chrono::steady_clock::time_point base_;
  bool finished_ = false;

  // Guards lane registration only; span recording is lock-free within a
  // lane, and export happens after the owning threads are joined.
  // root_/finished_/main_lane_ are single-owner: written by the query
  // thread only, read after workers join — deliberately unguarded.
  mutable sync::Mutex lanes_mu_{sync::LockRank::kTraceLanes, "trace_lanes"};
  std::vector<std::unique_ptr<WorkerLane>> worker_lanes_
      LYRIC_GUARDED_BY(lanes_mu_);
};

/// Installs a TraceCollector as the current thread's collector for the
/// lifetime of the session (restores the previous one on exit, so
/// sessions nest).
class ScopedTraceSession {
 public:
  explicit ScopedTraceSession(TraceCollector* collector);
  ~ScopedTraceSession();

  /// Finishes the collector and restores the previous one. Idempotent;
  /// the destructor calls it if the caller did not.
  void Stop();

  ScopedTraceSession(const ScopedTraceSession&) = delete;
  ScopedTraceSession& operator=(const ScopedTraceSession&) = delete;

 private:
  TraceCollector* collector_;
  internal::TraceLane* previous_;
  bool stopped_ = false;
};

/// Routes this thread's spans into a fresh worker lane of `collector`
/// for the scope's lifetime. A no-op when `collector` is null, so worker
/// code can pass the (possibly absent) query collector unconditionally.
/// The owning query thread must join this worker before exporting the
/// trace.
class WorkerTraceScope {
 public:
  explicit WorkerTraceScope(TraceCollector* collector);
  ~WorkerTraceScope();

  WorkerTraceScope(const WorkerTraceScope&) = delete;
  WorkerTraceScope& operator=(const WorkerTraceScope&) = delete;

 private:
  internal::TraceLane* previous_ = nullptr;
  bool active_ = false;
};

/// RAII scoped span. A no-op (one thread_local load) when no collector is
/// installed on the current thread.
class Span {
 public:
  explicit Span(const char* name);
  /// Indexed stage, e.g. Span("where", 3) -> "where[3]". The string is
  /// only built when a collector is active.
  Span(const char* name, size_t index);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Open(internal::TraceLane* lane, std::string name);

  internal::TraceLane* lane_ = nullptr;
  SpanNode* node_ = nullptr;
  SpanNode* parent_ = nullptr;
};

}  // namespace obs
}  // namespace lyric

#endif  // LYRIC_OBS_TRACE_H_
