// Per-query evaluation tracing: RAII scoped spans building a tree of
// timed stages (parse -> analyze -> FROM enumeration -> per-binding WHERE
// evaluation -> SELECT construction), exportable as indented text and as
// Chrome trace_event JSON (load with chrome://tracing or
// https://ui.perfetto.dev).
//
// Tracing is opt-in and zero-overhead when off: a Span constructed while
// no TraceCollector is installed on the current thread is a single
// thread_local null check. Install a collector with ScopedTraceSession
// (the evaluator does this when EvalOptions::collect_trace is set).

#ifndef LYRIC_OBS_TRACE_H_
#define LYRIC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lyric {
namespace obs {

/// One node of a trace tree: a named stage with a start offset and
/// duration (nanoseconds relative to the collector's start).
struct SpanNode {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  std::vector<std::unique_ptr<SpanNode>> children;

  /// The first direct child with the given name, or nullptr.
  const SpanNode* FindChild(const std::string& child_name) const;
  /// Number of direct children with the given name.
  size_t CountChildren(const std::string& child_name) const;
};

/// Collects a span tree for one query evaluation. Single-threaded: spans
/// on the installing thread attach to it; other threads are unaffected.
class TraceCollector {
 public:
  TraceCollector();

  /// Closes the root span at the current time (idempotent; also called by
  /// ScopedTraceSession when the session ends).
  void Finish();

  const SpanNode& root() const { return root_; }

  /// Indented stage breakdown with durations.
  std::string ToPrettyString() const;

  /// Chrome trace_event JSON: {"traceEvents": [{"name", "ph": "X", "ts",
  /// "dur", "pid", "tid"}, ...]} with microsecond timestamps.
  std::string ToChromeTraceJson() const;

  /// The collector installed on this thread, or nullptr.
  static TraceCollector* Current();

 private:
  friend class Span;
  friend class ScopedTraceSession;

  uint64_t NowNs() const;

  SpanNode root_;
  SpanNode* current_;
  std::chrono::steady_clock::time_point base_;
  bool finished_ = false;
};

/// Installs a TraceCollector as the current thread's collector for the
/// lifetime of the session (restores the previous one on exit, so
/// sessions nest).
class ScopedTraceSession {
 public:
  explicit ScopedTraceSession(TraceCollector* collector);
  ~ScopedTraceSession();

  /// Finishes the collector and restores the previous one. Idempotent;
  /// the destructor calls it if the caller did not.
  void Stop();

  ScopedTraceSession(const ScopedTraceSession&) = delete;
  ScopedTraceSession& operator=(const ScopedTraceSession&) = delete;

 private:
  TraceCollector* collector_;
  TraceCollector* previous_;
  bool stopped_ = false;
};

/// RAII scoped span. A no-op (one thread_local load) when no collector is
/// installed on the current thread.
class Span {
 public:
  explicit Span(const char* name);
  /// Indexed stage, e.g. Span("where", 3) -> "where[3]". The string is
  /// only built when a collector is active.
  Span(const char* name, size_t index);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Open(TraceCollector* collector, std::string name);

  TraceCollector* collector_ = nullptr;
  SpanNode* node_ = nullptr;
  SpanNode* parent_ = nullptr;
};

}  // namespace obs
}  // namespace lyric

#endif  // LYRIC_OBS_TRACE_H_
