// Process-wide observability metrics: named atomic counters and latency
// timers, collected in a global registry.
//
// Counters are monotonic and always on: an increment is a single relaxed
// atomic add, negligible next to the exact-rational arithmetic it counts
// (bench_paper_queries stays within noise of an uninstrumented build).
// Reading is the only operation that takes a lock: Registry::Snapshot()
// copies every value under the registry mutex, so hot paths never contend
// with readers.
//
// Usage on a hot path — resolve the handle once per call site:
//
//   LYRIC_OBS_COUNT("simplex.pivots");              // +1
//   LYRIC_OBS_COUNT_N("fm.atoms_generated", pairs); // +pairs
//
// or keep an explicit handle when a site needs several updates:
//
//   static obs::Counter& calls =
//       obs::Registry::Global().GetCounter("simplex.lp_solves");
//   calls.Increment();
//
// Snapshots subtract (`DeltaSince`) so per-query and per-benchmark deltas
// come straight out of the monotonic values.

#ifndef LYRIC_OBS_METRICS_H_
#define LYRIC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace lyric {
namespace obs {

/// A named monotonic counter. Obtained from Registry::GetCounter; the
/// reference stays valid for the life of the process.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// A named latency accumulator: count, total and max of recorded
/// durations. Record with ScopedTimer or Record(nanos).
class Timer {
 public:
  void Record(uint64_t nanos) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(nanos, std::memory_order_relaxed);
    uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    while (prev < nanos &&
           !max_ns_.compare_exchange_weak(prev, nanos,
                                          std::memory_order_relaxed)) {
    }
  }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Timer(std::string name) : name_(std::move(name)) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

/// RAII wall-clock measurement into a Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

/// A point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct TimerStats {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, TimerStats> timers;

  /// Per-metric difference `this - before` (counters are monotonic, so the
  /// delta of a later snapshot against an earlier one is non-negative).
  /// Metrics registered after `before` appear with their full value.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& before) const;

  /// Pretty table of the non-zero metrics (one "name  value" line each).
  std::string ToString() const;

  /// {"counters": {...}, "timers": {name: {count, total_ns, max_ns}}}.
  std::string ToJson() const;
};

/// The process-wide metric registry. Get-or-create is mutex-guarded;
/// returned references are stable forever.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Timer& GetTimer(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric. Tests and benchmark setup only —
  /// production counters are monotonic by contract.
  void ResetForTesting();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

/// Escapes `s` for inclusion in a JSON string literal (shared by the
/// metric and trace exporters).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace lyric

/// Increments the named global counter by 1 / by `n`. The handle lookup
/// happens once per call site (function-local static).
#define LYRIC_OBS_COUNT(name) LYRIC_OBS_COUNT_N(name, 1)
#define LYRIC_OBS_COUNT_N(name, n)                            \
  do {                                                        \
    static ::lyric::obs::Counter& lyric_obs_counter_ =        \
        ::lyric::obs::Registry::Global().GetCounter(name);    \
    lyric_obs_counter_.Increment(                             \
        static_cast<uint64_t>(n));                            \
  } while (0)

#endif  // LYRIC_OBS_METRICS_H_
