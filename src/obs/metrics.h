// Process-wide observability metrics: named atomic counters, gauges and
// log-linear latency histograms, collected in a global registry — the
// "flight recorder" substrate the server tooling reports through.
//
// Counters are monotonic and always on: an increment is a single relaxed
// atomic add, negligible next to the exact-rational arithmetic it counts
// (bench_paper_queries stays within noise of an uninstrumented build).
// Gauges are point-in-time values (queue depth, ledger memory, cache
// occupancy) set by their owning subsystem with the same relaxed-atomic
// cost. Histograms bucket recorded values (by convention: nanoseconds)
// into log-linear buckets — 16 linear sub-buckets per power of two, so
// any recorded value lands within ~6% of its bucket's upper edge — and a
// Record is three relaxed adds plus a max CAS, within 2x of the old
// count/total/max Timer (bench_paper_queries reports the measured ratio).
// Reading is the only operation that takes a lock: Registry::Snapshot()
// copies every value under the registry mutex, so hot paths never contend
// with readers.
//
// Usage on a hot path — resolve the handle once per call site:
//
//   LYRIC_OBS_COUNT("simplex.pivots");              // +1
//   LYRIC_OBS_COUNT_N("fm.atoms_generated", pairs); // +pairs
//
// or keep an explicit handle when a site needs several updates:
//
//   static obs::Histogram& lat =
//       obs::Registry::Global().GetHistogram("simplex.solve");
//   obs::ScopedHistogramTimer t(lat);   // records elapsed ns on scope exit
//
// Snapshots subtract (`DeltaSince`) so per-query and per-benchmark deltas
// come straight out of the monotonic values, and export as a pretty
// table, JSON, or Prometheus text exposition (ExportPrometheus). Setting
// LYRIC_METRICS_OUT=path[:interval_ms] arms a background flusher that
// rewrites `path` periodically (and once at exit); a ".prom" suffix
// selects the Prometheus format, anything else gets JSON.

#ifndef LYRIC_OBS_METRICS_H_
#define LYRIC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace lyric {
namespace obs {

/// A named monotonic counter. Obtained from Registry::GetCounter; the
/// reference stays valid for the life of the process.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// A named point-in-time value — queue depth, ledger bytes, cache
/// occupancy. Owned by exactly one subsystem, which calls Set/Add as its
/// state changes; readers see the latest value in Registry snapshots.
/// Signed so transient imbalances (Add/Sub races during shutdown) can
/// never wrap to 2^64.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// A named latency accumulator: count, total and max of recorded
/// durations. Record with ScopedTimer or Record(nanos). Superseded by
/// Histogram on the hot paths (which adds percentiles for the same
/// order-of-magnitude record cost) but kept for call sites that only
/// need count/total/max.
class Timer {
 public:
  void Record(uint64_t nanos) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(nanos, std::memory_order_relaxed);
    uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    while (prev < nanos &&
           !max_ns_.compare_exchange_weak(prev, nanos,
                                          std::memory_order_relaxed)) {
    }
  }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Timer(std::string name) : name_(std::move(name)) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

/// A log-linear histogram of uint64 values (by convention nanoseconds).
///
/// Bucketing: values below 16 get exact buckets; above that, each power
/// of two is split into 16 linear sub-buckets, so the bucket containing a
/// value spans at most 1/16 of its magnitude (p50/p99 read from a
/// snapshot are within ~6% of the true order statistic). 976 buckets
/// cover the full uint64 range in ~8 KB of atomics per histogram.
///
/// Record is wait-free: one relaxed add on the bucket, count and sum, and
/// a relaxed CAS loop for the max — safe from any thread, no locks.
class Histogram {
 public:
  static constexpr size_t kSubBits = 4;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBits;  // 16
  static constexpr size_t kNumBuckets =
      (64 - kSubBits) * kSubBuckets + kSubBuckets;  // 976

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  const std::string& name() const { return name_; }

  /// The bucket a value lands in.
  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) return static_cast<size_t>(value);
    // Highest set bit; value >= 16 so log2 >= kSubBits.
    int log2 = 63 - __builtin_clzll(value);
    size_t sub = static_cast<size_t>(
        (value >> (log2 - static_cast<int>(kSubBits))) & (kSubBuckets - 1));
    return (static_cast<size_t>(log2) - kSubBits + 1) * kSubBuckets + sub;
  }

  /// Upper edge of bucket `index` — the value reported for percentiles
  /// that land in it (so reported quantiles are conservative: >= the true
  /// order statistic, within one sub-bucket width).
  static uint64_t BucketUpperEdge(size_t index) {
    if (index < kSubBuckets) return static_cast<uint64_t>(index);
    size_t block = index / kSubBuckets;  // >= 1
    size_t sub = index % kSubBuckets;
    int log2 = static_cast<int>(block + kSubBits - 1);
    uint64_t width = uint64_t{1} << (log2 - static_cast<int>(kSubBits));
    uint64_t lower = (uint64_t{1} << log2) + sub * width;
    return lower + width - 1;
  }

 private:
  friend class Registry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets]{};
};

/// RAII wall-clock measurement into a Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII wall-clock measurement into a Histogram (nanoseconds).
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedHistogramTimer() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

/// A point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct TimerStats {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
  };

  struct HistogramStats {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    /// Sparse occupied buckets, ascending by index.
    std::vector<std::pair<uint32_t, uint64_t>> buckets;

    /// The value at quantile q in [0, 1] (bucket upper edge — within one
    /// log-linear sub-bucket of the true order statistic). 0 when empty.
    uint64_t ValueAtQuantile(double q) const;
    uint64_t p50() const { return ValueAtQuantile(0.50); }
    uint64_t p90() const { return ValueAtQuantile(0.90); }
    uint64_t p99() const { return ValueAtQuantile(0.99); }
    uint64_t p999() const { return ValueAtQuantile(0.999); }
    uint64_t mean() const { return count == 0 ? 0 : sum / count; }
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, TimerStats> timers;
  std::map<std::string, HistogramStats> histograms;

  /// Per-metric difference `this - before` (counters are monotonic, so the
  /// delta of a later snapshot against an earlier one is non-negative).
  /// Metrics registered after `before` appear with their full value.
  /// Gauges are point-in-time: the delta keeps this snapshot's value.
  /// Histogram bucket counts subtract, so percentiles of a delta describe
  /// only the interval's recordings; max keeps the later snapshot's max.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& before) const;

  /// Pretty table of the non-zero metrics (one "name  value" line each;
  /// histograms print count, p50/p90/p99/p999 and max as durations).
  std::string ToString() const;

  /// {"counters": {...}, "gauges": {...}, "timers": {...},
  ///  "histograms": {name: {count, sum, max, mean, p50, p90, p99, p999}}}.
  std::string ToJson() const;

  /// Prometheus text exposition (version 0.0.4): counters as
  /// `lyric_<name>_total`, gauges as gauges, timers and histograms as
  /// summaries (histograms carry quantile series). Metric names are
  /// sanitized (non-[a-zA-Z0-9_:] -> '_').
  std::string ToPrometheus() const;
};

/// The process-wide metric registry. Get-or-create is mutex-guarded;
/// returned references are stable forever.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name) LYRIC_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) LYRIC_EXCLUDES(mu_);
  Timer& GetTimer(const std::string& name) LYRIC_EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name) LYRIC_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const LYRIC_EXCLUDES(mu_);

  /// Snapshot().ToPrometheus() / Snapshot().ToJson() — the two wire
  /// formats (shell `.metrics`, the LYRIC_METRICS_OUT flusher, and
  /// tools/lyric_stats all speak these).
  std::string ExportPrometheus() const { return Snapshot().ToPrometheus(); }
  std::string ExportJson() const { return Snapshot().ToJson(); }

  /// Zeroes every registered metric. Tests and benchmark setup only —
  /// production counters are monotonic by contract.
  void ResetForTesting() LYRIC_EXCLUDES(mu_);

 private:
  Registry() = default;

  // The registry lock guards only the name -> object maps; the metric
  // objects themselves are atomics, updated lock-free after resolution.
  // Ranked after every subsystem lock (counters resolve under them) and
  // before the sinks (query log, trace lanes).
  mutable sync::Mutex mu_{sync::LockRank::kObsRegistry, "obs_registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      LYRIC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ LYRIC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Timer>> timers_ LYRIC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      LYRIC_GUARDED_BY(mu_);
};

/// Escapes `s` for inclusion in a JSON string literal (shared by the
/// metric, trace and query-log exporters). Output is always valid JSON:
/// quotes/backslashes/control characters are escaped, DEL is escaped,
/// and bytes that do not form valid UTF-8 sequences are replaced with
/// U+FFFD so the document stays parseable.
std::string JsonEscape(const std::string& s);

/// Validates a Prometheus text exposition: every line is a comment or a
/// well-formed `name[{labels}] value` sample, and no series
/// (name + label set) appears twice. Returns true when valid; otherwise
/// false with a description of the first problem in `*error`.
bool ValidatePrometheusExposition(const std::string& text,
                                  std::string* error);

/// Arms the LYRIC_METRICS_OUT=path[:interval_ms] background flusher if
/// the variable is set and the flusher is not already running (a ".prom"
/// path gets Prometheus text, anything else JSON; default interval
/// 5000 ms; a final flush runs at process exit). Called lazily from
/// Registry::Global(); safe to call repeatedly from any thread.
void ArmMetricsFlusherFromEnv();

/// Writes the current metrics to `path` in the format implied by its
/// extension (atomic: temp file + rename). Returns false on I/O failure.
/// The flusher calls this; the shell's `.metrics FORMAT PATH` reuses it.
bool WriteMetricsFile(const std::string& path);

}  // namespace obs
}  // namespace lyric

/// Increments the named global counter by 1 / by `n`. The handle lookup
/// happens once per call site (function-local static).
#define LYRIC_OBS_COUNT(name) LYRIC_OBS_COUNT_N(name, 1)
#define LYRIC_OBS_COUNT_N(name, n)                            \
  do {                                                        \
    static ::lyric::obs::Counter& lyric_obs_counter_ =        \
        ::lyric::obs::Registry::Global().GetCounter(name);    \
    lyric_obs_counter_.Increment(                             \
        static_cast<uint64_t>(n));                            \
  } while (0)

/// Records `nanos` into the named global histogram.
#define LYRIC_OBS_RECORD(name, nanos)                         \
  do {                                                        \
    static ::lyric::obs::Histogram& lyric_obs_hist_ =         \
        ::lyric::obs::Registry::Global().GetHistogram(name);  \
    lyric_obs_hist_.Record(static_cast<uint64_t>(nanos));     \
  } while (0)

#endif  // LYRIC_OBS_METRICS_H_
