#include "obs/profile.h"

namespace lyric {
namespace obs {

std::string QueryProfile::ToString() const {
  std::string out = "stages:\n";
  std::string tree = trace.ToPrettyString();
  // Indent the span tree under the "stages:" heading.
  size_t pos = 0;
  while (pos < tree.size()) {
    size_t end = tree.find('\n', pos);
    if (end == std::string::npos) end = tree.size();
    out += "  " + tree.substr(pos, end - pos) + "\n";
    pos = end + 1;
  }
  out += "counters (this query):\n";
  out += CounterDeltas().ToString();
  return out;
}

}  // namespace obs
}  // namespace lyric
