#include "obs/trace.h"

#include <cstdio>
#include <map>

#include "obs/metrics.h"
#include "util/fault.h"

namespace lyric {
namespace obs {

namespace {

thread_local internal::TraceLane* g_current_lane = nullptr;

std::string FormatDurNs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.3f ms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

void AppendPretty(const SpanNode& node, int depth, std::string* out) {
  std::string label(static_cast<size_t>(depth) * 2, ' ');
  label += node.name;
  if (label.size() < 44) label += std::string(44 - label.size(), ' ');
  *out += label + FormatDurNs(node.dur_ns) + "\n";
  for (const auto& child : node.children) {
    AppendPretty(*child, depth + 1, out);
  }
}

void AppendChromeEvents(const SpanNode& node, int tid, bool* first,
                        std::string* out) {
  if (!*first) *out += ",\n";
  *first = false;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                "\"pid\": 1, \"tid\": %d}",
                static_cast<double>(node.start_ns) / 1e3,
                static_cast<double>(node.dur_ns) / 1e3, tid);
  *out += "{\"name\": \"" + JsonEscape(node.name) +
          "\", \"cat\": \"lyric\", " + buf;
  for (const auto& child : node.children) {
    AppendChromeEvents(*child, tid, first, out);
  }
}

}  // namespace

const SpanNode* SpanNode::FindChild(const std::string& child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  return nullptr;
}

size_t SpanNode::CountChildren(const std::string& child_name) const {
  size_t n = 0;
  for (const auto& child : children) {
    if (child->name == child_name) ++n;
  }
  return n;
}

TraceCollector::TraceCollector()
    : base_(std::chrono::steady_clock::now()) {
  root_.name = "query";
  main_lane_.collector = this;
  main_lane_.root = &root_;
  main_lane_.current = &root_;
}

uint64_t TraceCollector::NowNs() const {
  auto elapsed = std::chrono::steady_clock::now() - base_;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

void TraceCollector::Finish() {
  if (finished_) return;
  finished_ = true;
  root_.dur_ns = NowNs();
  main_lane_.current = &root_;
}

internal::TraceLane* TraceCollector::RegisterWorkerLane() {
  auto worker = std::make_unique<WorkerLane>();
  worker->thread = std::this_thread::get_id();
  worker->lane.collector = this;
  worker->lane.root = &worker->container;
  worker->lane.current = &worker->container;
  internal::TraceLane* lane = &worker->lane;
  sync::MutexLock lock(lanes_mu_);
  worker_lanes_.push_back(std::move(worker));
  return lane;
}

std::vector<TraceCollector::WorkerLaneView> TraceCollector::worker_lanes()
    const {
  std::vector<WorkerLaneView> out;
  sync::MutexLock lock(lanes_mu_);
  out.reserve(worker_lanes_.size());
  for (const auto& worker : worker_lanes_) {
    out.push_back(WorkerLaneView{worker->thread, &worker->container});
  }
  return out;
}

std::string TraceCollector::ToPrettyString() const {
  std::string out;
  AppendPretty(root_, 0, &out);
  std::map<std::thread::id, int> tids;
  sync::MutexLock lock(lanes_mu_);
  for (const auto& worker : worker_lanes_) {
    if (worker->container.children.empty()) continue;
    auto it = tids.find(worker->thread);
    if (it == tids.end()) {
      it = tids.emplace(worker->thread,
                        static_cast<int>(tids.size()) + 2).first;
    }
    out += "[worker tid=" + std::to_string(it->second) + "]\n";
    for (const auto& child : worker->container.children) {
      AppendPretty(*child, 1, &out);
    }
  }
  return out;
}

std::string TraceCollector::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  AppendChromeEvents(root_, /*tid=*/1, &first, &out);
  // Worker lanes: one tid per distinct worker thread, assigned in
  // lane-registration order starting at 2. The container node itself is
  // bookkeeping, not a stage — only its children are emitted.
  std::map<std::thread::id, int> tids;
  sync::MutexLock lock(lanes_mu_);
  for (const auto& worker : worker_lanes_) {
    auto it = tids.find(worker->thread);
    if (it == tids.end()) {
      it = tids.emplace(worker->thread,
                        static_cast<int>(tids.size()) + 2).first;
    }
    for (const auto& child : worker->container.children) {
      AppendChromeEvents(*child, it->second, &first, &out);
    }
  }
  out += "\n]}\n";
  return out;
}

TraceCollector* TraceCollector::Current() {
  return g_current_lane == nullptr ? nullptr : g_current_lane->collector;
}

ScopedTraceSession::ScopedTraceSession(TraceCollector* collector)
    : collector_(collector), previous_(g_current_lane) {
  g_current_lane = collector_ == nullptr ? nullptr : &collector_->main_lane_;
}

ScopedTraceSession::~ScopedTraceSession() { Stop(); }

void ScopedTraceSession::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (collector_ != nullptr) collector_->Finish();
  g_current_lane = previous_;
}

WorkerTraceScope::WorkerTraceScope(TraceCollector* collector) {
  if (collector == nullptr) return;
  previous_ = g_current_lane;
  g_current_lane = collector->RegisterWorkerLane();
  active_ = true;
}

WorkerTraceScope::~WorkerTraceScope() {
  if (!active_) return;
  g_current_lane = previous_;
}

namespace {

// Simulated span-open failure: the span is silently dropped (its children
// re-parent to the enclosing span). Observability may thin out but query
// results are untouched — the contract the trace fault gate verifies.
bool TraceFault() {
  return fault::Enabled() && fault::Inject(fault::kSiteTrace);
}

}  // namespace

Span::Span(const char* name) {
  internal::TraceLane* lane = g_current_lane;
  if (lane == nullptr || TraceFault()) return;
  Open(lane, name);
}

Span::Span(const char* name, size_t index) {
  internal::TraceLane* lane = g_current_lane;
  if (lane == nullptr || TraceFault()) return;
  Open(lane, std::string(name) + "[" + std::to_string(index) + "]");
}

void Span::Open(internal::TraceLane* lane, std::string name) {
  lane_ = lane;
  parent_ = lane->current;
  auto node = std::make_unique<SpanNode>();
  node->name = std::move(name);
  node->start_ns = lane->collector->NowNs();
  node_ = node.get();
  parent_->children.push_back(std::move(node));
  lane->current = node_;
}

Span::~Span() {
  if (node_ == nullptr) return;
  node_->dur_ns = lane_->collector->NowNs() - node_->start_ns;
  lane_->current = parent_;
}

}  // namespace obs
}  // namespace lyric
