#include "obs/trace.h"

#include <cstdio>

#include "obs/metrics.h"
#include "util/fault.h"

namespace lyric {
namespace obs {

namespace {

thread_local TraceCollector* g_current_collector = nullptr;

std::string FormatDurNs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.3f ms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

void AppendPretty(const SpanNode& node, int depth, std::string* out) {
  std::string label(static_cast<size_t>(depth) * 2, ' ');
  label += node.name;
  if (label.size() < 44) label += std::string(44 - label.size(), ' ');
  *out += label + FormatDurNs(node.dur_ns) + "\n";
  for (const auto& child : node.children) {
    AppendPretty(*child, depth + 1, out);
  }
}

void AppendChromeEvents(const SpanNode& node, bool* first,
                        std::string* out) {
  if (!*first) *out += ",\n";
  *first = false;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                "\"pid\": 1, \"tid\": 1}",
                static_cast<double>(node.start_ns) / 1e3,
                static_cast<double>(node.dur_ns) / 1e3);
  *out += "{\"name\": \"" + JsonEscape(node.name) +
          "\", \"cat\": \"lyric\", " + buf;
  for (const auto& child : node.children) {
    AppendChromeEvents(*child, first, out);
  }
}

}  // namespace

const SpanNode* SpanNode::FindChild(const std::string& child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  return nullptr;
}

size_t SpanNode::CountChildren(const std::string& child_name) const {
  size_t n = 0;
  for (const auto& child : children) {
    if (child->name == child_name) ++n;
  }
  return n;
}

TraceCollector::TraceCollector()
    : current_(&root_), base_(std::chrono::steady_clock::now()) {
  root_.name = "query";
}

uint64_t TraceCollector::NowNs() const {
  auto elapsed = std::chrono::steady_clock::now() - base_;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

void TraceCollector::Finish() {
  if (finished_) return;
  finished_ = true;
  root_.dur_ns = NowNs();
  current_ = &root_;
}

std::string TraceCollector::ToPrettyString() const {
  std::string out;
  AppendPretty(root_, 0, &out);
  return out;
}

std::string TraceCollector::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  AppendChromeEvents(root_, &first, &out);
  out += "\n]}\n";
  return out;
}

TraceCollector* TraceCollector::Current() { return g_current_collector; }

ScopedTraceSession::ScopedTraceSession(TraceCollector* collector)
    : collector_(collector), previous_(g_current_collector) {
  g_current_collector = collector_;
}

ScopedTraceSession::~ScopedTraceSession() { Stop(); }

void ScopedTraceSession::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (collector_ != nullptr) collector_->Finish();
  g_current_collector = previous_;
}

namespace {

// Simulated span-open failure: the span is silently dropped (its children
// re-parent to the enclosing span). Observability may thin out but query
// results are untouched — the contract the trace fault gate verifies.
bool TraceFault() {
  return fault::Enabled() && fault::Inject(fault::kSiteTrace);
}

}  // namespace

Span::Span(const char* name) {
  TraceCollector* c = TraceCollector::Current();
  if (c == nullptr || TraceFault()) return;
  Open(c, name);
}

Span::Span(const char* name, size_t index) {
  TraceCollector* c = TraceCollector::Current();
  if (c == nullptr || TraceFault()) return;
  Open(c, std::string(name) + "[" + std::to_string(index) + "]");
}

void Span::Open(TraceCollector* collector, std::string name) {
  collector_ = collector;
  parent_ = collector->current_;
  auto node = std::make_unique<SpanNode>();
  node->name = std::move(name);
  node->start_ns = collector->NowNs();
  node_ = node.get();
  parent_->children.push_back(std::move(node));
  collector->current_ = node_;
}

Span::~Span() {
  if (node_ == nullptr) return;
  node_->dur_ns = collector_->NowNs() - node_->start_ns;
  collector_->current_ = parent_;
}

}  // namespace obs
}  // namespace lyric
