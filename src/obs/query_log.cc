#include "obs/query_log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.h"

namespace lyric {
namespace obs {

namespace {

constexpr uint64_t kDefaultSinkMaxBytes = 16ull << 20;  // 16 MiB
constexpr size_t kQueryTextLimit = 200;

// Splits "path[:max_bytes]" (the suffix must be all digits to count).
void ParseSinkSpec(const std::string& spec, std::string* path,
                   uint64_t* max_bytes) {
  *max_bytes = kDefaultSinkMaxBytes;
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    *path = spec;
    return;
  }
  for (size_t i = colon + 1; i < spec.size(); ++i) {
    if (spec[i] < '0' || spec[i] > '9') {
      *path = spec;
      return;
    }
  }
  *path = spec.substr(0, colon);
  uint64_t parsed = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
  if (parsed > 0) *max_bytes = parsed;
}

void AppendField(std::string* out, const char* key, uint64_t value,
                 bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  *out += key;
  *out += "\": ";
  *out += std::to_string(value);
}

void AppendField(std::string* out, const char* key, const std::string& value,
                 bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  *out += key;
  *out += "\": \"";
  *out += JsonEscape(value);
  *out += '"';
}

void AppendField(std::string* out, const char* key, bool value,
                 bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  *out += key;
  *out += "\": ";
  *out += value ? "true" : "false";
}

}  // namespace

uint64_t HashQueryText(const std::string& text) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit offset basis
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t SlowQueryThresholdMs() {
  static const uint64_t threshold = [] {
    const char* env = std::getenv("LYRIC_SLOW_MS");
    if (env == nullptr || *env == '\0') return uint64_t{0};
    char* end = nullptr;
    uint64_t v = std::strtoull(env, &end, 10);
    return (end != env && *end == '\0') ? v : uint64_t{0};
  }();
  return threshold;
}

std::string QueryLogRecord::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendField(&out, "seq", seq, &first);
  AppendField(&out, "unix_ms", unix_ms, &first);
  // The hash prints as hex so grep / dashboards can match it against
  // trace filenames and cache keys without 20-digit decimals.
  char hash_buf[24];
  std::snprintf(hash_buf, sizeof(hash_buf), "%016llx",
                static_cast<unsigned long long>(query_hash));
  AppendField(&out, "query_hash", std::string(hash_buf), &first);
  AppendField(&out, "query", query, &first);
  AppendField(&out, "status", status, &first);
  AppendField(&out, "admission", admission, &first);
  AppendField(&out, "governor", governor, &first);
  AppendField(&out, "duration_ns", duration_ns, &first);
  AppendField(&out, "queue_wait_ns", queue_wait_ns, &first);
  AppendField(&out, "rows", rows, &first);
  AppendField(&out, "threads", static_cast<uint64_t>(threads), &first);
  AppendField(&out, "retries", static_cast<uint64_t>(retries), &first);
  AppendField(&out, "cache_hits", cache_hits, &first);
  AppendField(&out, "cache_misses", cache_misses, &first);
  AppendField(&out, "tombstone_hits", tombstone_hits, &first);
  AppendField(&out, "truncated", truncated, &first);
  AppendField(&out, "slow", slow, &first);
  if (!stages.empty()) AppendField(&out, "stages", stages, &first);
  out += '}';
  return out;
}

QueryLog& QueryLog::Global() {
  static QueryLog* instance = new QueryLog();
  return *instance;
}

QueryLog::QueryLog() {
  const char* env = std::getenv("LYRIC_QUERY_LOG");
  if (env != nullptr && *env != '\0') {
    ParseSinkSpec(env, &sink_path_, &sink_max_bytes_);
    // Resume the running byte count if the sink already exists so
    // rotation thresholds hold across restarts.
    std::ifstream in(sink_path_, std::ios::ate | std::ios::binary);
    if (in) sink_bytes_ = static_cast<uint64_t>(in.tellg());
  }
}

void QueryLog::Append(QueryLogRecord record) {
  if (record.query.size() > kQueryTextLimit) {
    record.query.resize(kQueryTextLimit);
  }
  // The gauge handle is resolved before taking mu_: GetGauge acquires the
  // registry lock, which ranks BEFORE the query-log lock in the hierarchy
  // (registry -> sink). Resolving it under mu_ — as this code originally
  // did on every append — is a lock-order inversion the rank checker now
  // aborts on; Set itself is a relaxed atomic store needing no lock.
  static Gauge& records_gauge =
      Registry::Global().GetGauge("query_log.records");
  size_t ring_size = 0;
  {
    sync::MutexLock lock(mu_);
    record.seq = next_seq_++;
    record.unix_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    if (!sink_path_.empty()) {
      AppendToSinkLocked(record.ToJson() + "\n");
    }
    ring_.push_back(std::move(record));
    while (ring_.size() > capacity_) ring_.pop_front();
    ++total_;
    ring_size = ring_.size();
  }
  records_gauge.Set(static_cast<int64_t>(ring_size));
}

void QueryLog::AppendToSinkLocked(const std::string& line) {
  if (sink_max_bytes_ > 0 && sink_bytes_ + line.size() > sink_max_bytes_ &&
      sink_bytes_ > 0) {
    // Size-based rotation: one generation of history at `path.1`.
    std::string rotated = sink_path_ + ".1";
    std::remove(rotated.c_str());
    std::rename(sink_path_.c_str(), rotated.c_str());
    sink_bytes_ = 0;
  }
  std::ofstream out(sink_path_, std::ios::app);
  if (!out) return;
  out << line;
  sink_bytes_ += line.size();
}

std::vector<QueryLogRecord> QueryLog::Recent(size_t n) const {
  sync::MutexLock lock(mu_);
  size_t count = std::min(n, ring_.size());
  std::vector<QueryLogRecord> out;
  out.reserve(count);
  for (size_t i = ring_.size() - count; i < ring_.size(); ++i) {
    out.push_back(ring_[i]);
  }
  return out;
}

uint64_t QueryLog::total_appended() const {
  sync::MutexLock lock(mu_);
  return total_;
}

void QueryLog::ConfigureSink(const std::string& path, uint64_t max_bytes) {
  sync::MutexLock lock(mu_);
  sink_path_ = path;
  sink_max_bytes_ = max_bytes == 0 ? kDefaultSinkMaxBytes : max_bytes;
  sink_bytes_ = 0;
  if (!path.empty()) {
    std::ifstream in(path, std::ios::ate | std::ios::binary);
    if (in) sink_bytes_ = static_cast<uint64_t>(in.tellg());
  }
}

void QueryLog::SetCapacityForTesting(size_t capacity) {
  sync::MutexLock lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) ring_.pop_front();
}

void QueryLog::ClearForTesting() {
  sync::MutexLock lock(mu_);
  ring_.clear();
}

}  // namespace obs
}  // namespace lyric
