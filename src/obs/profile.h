// QueryProfile: the per-query observability record the evaluator attaches
// to a ResultSet when EvalOptions::collect_trace is set — the evaluation
// span tree plus registry snapshots taken before and after, so the
// counter *deltas* attribute engine work (simplex pivots, FM
// eliminations, redundancy LPs, ...) to this one query.

#ifndef LYRIC_OBS_PROFILE_H_
#define LYRIC_OBS_PROFILE_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lyric {
namespace obs {

/// Everything observed while evaluating one query.
struct QueryProfile {
  TraceCollector trace;
  MetricsSnapshot counters_before;
  MetricsSnapshot counters_after;

  /// Counter/timer deltas attributable to this query.
  MetricsSnapshot CounterDeltas() const {
    return counters_after.DeltaSince(counters_before);
  }

  /// Stage breakdown (indented spans with durations) followed by the
  /// non-zero counter deltas.
  std::string ToString() const;

  /// Chrome trace_event JSON for chrome://tracing / Perfetto.
  std::string ToChromeTraceJson() const {
    return trace.ToChromeTraceJson();
  }
};

}  // namespace obs
}  // namespace lyric

#endif  // LYRIC_OBS_PROFILE_H_
