#include "obs/metrics.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <fstream>
#include <mutex>  // std::call_once/std::once_flag only (allowed by the gate)
#include <thread>

namespace lyric {
namespace obs {

namespace {

// Formats nanoseconds as a human-friendly duration.
std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f s", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f ms",
                  static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us",
                  static_cast<double>(ns) / 1e3);
  }
  return buf;
}

// Length of the valid UTF-8 sequence starting at s[i], or 0 when the
// bytes there are not well-formed UTF-8 (stray continuation byte,
// truncated sequence, overlong encoding, surrogate, or > U+10FFFF).
size_t Utf8SequenceLength(const std::string& s, size_t i) {
  unsigned char c = static_cast<unsigned char>(s[i]);
  if (c < 0x80) return 1;
  size_t len;
  uint32_t cp;
  if ((c & 0xE0) == 0xC0) {
    len = 2;
    cp = c & 0x1Fu;
  } else if ((c & 0xF0) == 0xE0) {
    len = 3;
    cp = c & 0x0Fu;
  } else if ((c & 0xF8) == 0xF0) {
    len = 4;
    cp = c & 0x07u;
  } else {
    return 0;
  }
  if (i + len > s.size()) return 0;
  for (size_t k = 1; k < len; ++k) {
    unsigned char cc = static_cast<unsigned char>(s[i + k]);
    if ((cc & 0xC0) != 0x80) return 0;
    cp = (cp << 6) | (cc & 0x3Fu);
  }
  if (len == 2 && cp < 0x80) return 0;
  if (len == 3 && (cp < 0x800 || (cp >= 0xD800 && cp <= 0xDFFF))) return 0;
  if (len == 4 && (cp < 0x10000 || cp > 0x10FFFF)) return 0;
  return len;
}

// Prometheus metric names allow [a-zA-Z0-9_:]; everything else in our
// dotted metric names maps to '_', under a "lyric_" namespace prefix.
std::string PrometheusName(const std::string& name) {
  std::string out = "lyric_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (size_t i = 0; i < s.size();) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    if (c < 0x20 || c == 0x7F) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      ++i;
      continue;
    }
    if (c < 0x80) {
      out += static_cast<char>(c);
      ++i;
      continue;
    }
    // Multi-byte: copy well-formed sequences through untouched; replace
    // each invalid byte with U+FFFD so the output is always valid UTF-8
    // (and therefore valid JSON).
    size_t len = Utf8SequenceLength(s, i);
    if (len == 0) {
      out += "\xEF\xBF\xBD";  // U+FFFD REPLACEMENT CHARACTER
      ++i;
    } else {
      out.append(s, i, len);
      i += len;
    }
  }
  return out;
}

uint64_t MetricsSnapshot::HistogramStats::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (const auto& [idx, n] : buckets) {
    seen += n;
    if (seen >= rank) {
      // Report the bucket's upper edge, clamped to the observed max so a
      // high quantile of a small sample is exact.
      return std::min(Histogram::BucketUpperEdge(idx), max);
    }
  }
  return max;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& before) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = before.counters.find(name);
    uint64_t base = it == before.counters.end() ? 0 : it->second;
    out.counters[name] = value >= base ? value - base : 0;
  }
  // Gauges are point-in-time, not cumulative: the delta carries this
  // snapshot's value unchanged.
  out.gauges = gauges;
  for (const auto& [name, stats] : timers) {
    auto it = before.timers.find(name);
    TimerStats delta = stats;
    if (it != before.timers.end()) {
      delta.count = stats.count >= it->second.count
                        ? stats.count - it->second.count
                        : 0;
      delta.total_ns = stats.total_ns >= it->second.total_ns
                           ? stats.total_ns - it->second.total_ns
                           : 0;
      // max_ns is not subtractive; keep the later snapshot's max.
    }
    out.timers[name] = delta;
  }
  for (const auto& [name, stats] : histograms) {
    auto it = before.histograms.find(name);
    HistogramStats delta = stats;
    if (it != before.histograms.end()) {
      const HistogramStats& base = it->second;
      delta.count = stats.count >= base.count ? stats.count - base.count : 0;
      delta.sum = stats.sum >= base.sum ? stats.sum - base.sum : 0;
      // max is not subtractive; keep the later snapshot's max.
      delta.buckets.clear();
      size_t bi = 0;
      for (const auto& [idx, n] : stats.buckets) {
        while (bi < base.buckets.size() && base.buckets[bi].first < idx) ++bi;
        uint64_t sub = (bi < base.buckets.size() &&
                        base.buckets[bi].first == idx)
                           ? base.buckets[bi].second
                           : 0;
        if (n > sub) delta.buckets.emplace_back(idx, n - sub);
      }
    }
    out.histograms[name] = delta;
  }
  return out;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  size_t width = 0;
  for (const auto& [name, value] : counters) {
    if (value != 0) width = std::max(width, name.size());
  }
  for (const auto& [name, value] : gauges) {
    if (value != 0) width = std::max(width, name.size());
  }
  for (const auto& [name, stats] : timers) {
    if (stats.count != 0) width = std::max(width, name.size());
  }
  for (const auto& [name, stats] : histograms) {
    if (stats.count != 0) width = std::max(width, name.size());
  }
  for (const auto& [name, value] : counters) {
    if (value == 0) continue;
    out += "  " + name + std::string(width + 2 - name.size(), ' ') +
           std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    if (value == 0) continue;
    out += "  " + name + std::string(width + 2 - name.size(), ' ') +
           std::to_string(value) + " (gauge)\n";
  }
  for (const auto& [name, stats] : timers) {
    if (stats.count == 0) continue;
    out += "  " + name + std::string(width + 2 - name.size(), ' ') +
           std::to_string(stats.count) + " calls, total " +
           FormatNs(stats.total_ns) + ", max " + FormatNs(stats.max_ns) +
           "\n";
  }
  for (const auto& [name, stats] : histograms) {
    if (stats.count == 0) continue;
    out += "  " + name + std::string(width + 2 - name.size(), ' ') +
           std::to_string(stats.count) + " calls, p50 " +
           FormatNs(stats.p50()) + ", p90 " + FormatNs(stats.p90()) +
           ", p99 " + FormatNs(stats.p99()) + ", p999 " +
           FormatNs(stats.p999()) + ", max " + FormatNs(stats.max) + "\n";
  }
  if (out.empty()) out = "  (no metrics recorded)\n";
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\": ";
    out += std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\": ";
    out += std::to_string(value);
  }
  out += "}, \"timers\": {";
  first = true;
  for (const auto& [name, stats] : timers) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\": {\"count\": ";
    out += std::to_string(stats.count);
    out += ", \"total_ns\": ";
    out += std::to_string(stats.total_ns);
    out += ", \"max_ns\": ";
    out += std::to_string(stats.max_ns);
    out += '}';
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, stats] : histograms) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\": {\"count\": ";
    out += std::to_string(stats.count);
    out += ", \"sum\": ";
    out += std::to_string(stats.sum);
    out += ", \"max\": ";
    out += std::to_string(stats.max);
    out += ", \"mean\": ";
    out += std::to_string(stats.mean());
    out += ", \"p50\": ";
    out += std::to_string(stats.p50());
    out += ", \"p90\": ";
    out += std::to_string(stats.p90());
    out += ", \"p99\": ";
    out += std::to_string(stats.p99());
    out += ", \"p999\": ";
    out += std::to_string(stats.p999());
    out += '}';
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    std::string pname = PrometheusName(name) + "_total";
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  // Timers and histograms record nanoseconds; the "_ns" suffix makes the
  // unit explicit in the series name.
  for (const auto& [name, stats] : timers) {
    std::string pname = PrometheusName(name) + "_ns";
    out += "# TYPE " + pname + " summary\n";
    out += pname + "_sum " + std::to_string(stats.total_ns) + "\n";
    out += pname + "_count " + std::to_string(stats.count) + "\n";
    out += "# TYPE " + pname + "_max gauge\n";
    out += pname + "_max " + std::to_string(stats.max_ns) + "\n";
  }
  for (const auto& [name, stats] : histograms) {
    std::string pname = PrometheusName(name) + "_ns";
    out += "# TYPE " + pname + " summary\n";
    out += pname + "{quantile=\"0.5\"} " + std::to_string(stats.p50()) + "\n";
    out += pname + "{quantile=\"0.9\"} " + std::to_string(stats.p90()) + "\n";
    out += pname + "{quantile=\"0.99\"} " + std::to_string(stats.p99()) +
           "\n";
    out +=
        pname + "{quantile=\"0.999\"} " + std::to_string(stats.p999()) + "\n";
    out += pname + "_sum " + std::to_string(stats.sum) + "\n";
    out += pname + "_count " + std::to_string(stats.count) + "\n";
    out += "# TYPE " + pname + "_max gauge\n";
    out += pname + "_max " + std::to_string(stats.max) + "\n";
  }
  return out;
}

namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool IsNameChar(char c) { return IsNameStartChar(c) || (c >= '0' && c <= '9'); }

}  // namespace

bool ValidatePrometheusExposition(const std::string& text,
                                  std::string* error) {
  std::vector<std::string> seen_series;
  size_t line_no = 0;
  size_t pos = 0;
  auto fail = [&](const std::string& why) {
    if (error) *error = "line " + std::to_string(line_no) + ": " + why;
    return false;
  };
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') continue;  // HELP/TYPE/comment lines.
    // Sample line: name[{labels}] value [timestamp]
    size_t i = 0;
    if (!IsNameStartChar(line[0])) return fail("bad metric name start");
    while (i < line.size() && IsNameChar(line[i])) ++i;
    std::string series = line.substr(0, i);
    if (i < line.size() && line[i] == '{') {
      size_t close = line.find('}', i);
      if (close == std::string::npos) return fail("unterminated label set");
      // Quotes inside the label set must be balanced.
      size_t quotes = 0;
      for (size_t k = i; k < close; ++k) {
        if (line[k] == '"' && (k == 0 || line[k - 1] != '\\')) ++quotes;
      }
      if (quotes % 2 != 0) return fail("unbalanced quotes in labels");
      series = line.substr(0, close + 1);
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail("expected space before value");
    }
    ++i;
    std::string value = line.substr(i);
    // Strip an optional timestamp after the value.
    size_t sp = value.find(' ');
    if (sp != std::string::npos) value = value.substr(0, sp);
    if (value.empty()) return fail("missing value");
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return fail("unparseable value '" + value + "'");
      }
    }
    for (const std::string& prev : seen_series) {
      if (prev == series) return fail("duplicate series " + series);
    }
    seen_series.push_back(series);
  }
  if (error) error->clear();
  return true;
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  // First use of the registry arms the optional LYRIC_METRICS_OUT
  // background flusher (no-op when the variable is unset).
  static std::once_flag arm_once;
  std::call_once(arm_once, [] { ArmMetricsFlusherFromEnv(); });
  return *instance;
}

Counter& Registry::GetCounter(const std::string& name) {
  sync::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(const std::string& name) {
  sync::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return *it->second;
}

Timer& Registry::GetTimer(const std::string& name) {
  sync::MutexLock lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(name, std::unique_ptr<Timer>(new Timer(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  sync::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(name)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  sync::MutexLock lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge->value();
  }
  for (const auto& [name, timer] : timers_) {
    MetricsSnapshot::TimerStats stats;
    stats.count = timer->count_.load(std::memory_order_relaxed);
    stats.total_ns = timer->total_ns_.load(std::memory_order_relaxed);
    stats.max_ns = timer->max_ns_.load(std::memory_order_relaxed);
    out.timers[name] = stats;
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramStats stats;
    stats.count = hist->count_.load(std::memory_order_relaxed);
    stats.sum = hist->sum_.load(std::memory_order_relaxed);
    stats.max = hist->max_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t n = hist->buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) stats.buckets.emplace_back(static_cast<uint32_t>(i), n);
    }
    out.histograms[name] = stats;
  }
  return out;
}

void Registry::ResetForTesting() {
  sync::MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, timer] : timers_) {
    timer->count_.store(0, std::memory_order_relaxed);
    timer->total_ns_.store(0, std::memory_order_relaxed);
    timer->max_ns_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, hist] : histograms_) {
    hist->count_.store(0, std::memory_order_relaxed);
    hist->sum_.store(0, std::memory_order_relaxed);
    hist->max_.store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      hist->buckets_[i].store(0, std::memory_order_relaxed);
    }
  }
}

namespace {

// LYRIC_METRICS_OUT state, set once at arm time.
std::string* g_metrics_out_path = nullptr;

// Splits "path[:suffix]" where the suffix is all digits. Returns true
// and strips the suffix when one is present.
bool SplitNumericSuffix(const std::string& spec, std::string* path,
                        uint64_t* suffix) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    *path = spec;
    return false;
  }
  for (size_t i = colon + 1; i < spec.size(); ++i) {
    if (spec[i] < '0' || spec[i] > '9') {
      *path = spec;
      return false;
    }
  }
  *path = spec.substr(0, colon);
  *suffix = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
  return true;
}

void FlushMetricsAtExit() {
  if (g_metrics_out_path != nullptr) WriteMetricsFile(*g_metrics_out_path);
}

}  // namespace

bool WriteMetricsFile(const std::string& path) {
  bool prom = path.size() >= 5 &&
              path.compare(path.size() - 5, 5, ".prom") == 0;
  std::string body = prom ? Registry::Global().ExportPrometheus()
                          : Registry::Global().ExportJson();
  // Atomic replace: write a temp file next to the target, then rename.
  static std::atomic<uint64_t> seq{0};
  std::string tmp =
      path + ".tmp." + std::to_string(seq.fetch_add(1) % 4 + 1);
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << body;
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void ArmMetricsFlusherFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("LYRIC_METRICS_OUT");
    if (env == nullptr || *env == '\0') return;
    std::string path;
    uint64_t interval_ms = 5000;
    SplitNumericSuffix(env, &path, &interval_ms);
    if (path.empty()) return;
    if (interval_ms == 0) interval_ms = 5000;
    g_metrics_out_path = new std::string(path);
    std::atexit(FlushMetricsAtExit);
    // Detached writer: the registry singleton is leaked, so the thread
    // can safely outlive main() right up to process teardown.
    std::thread([interval_ms] {
      const std::string target = *g_metrics_out_path;
      for (;;) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
        WriteMetricsFile(target);
      }
    }).detach();
  });
}

}  // namespace obs
}  // namespace lyric
