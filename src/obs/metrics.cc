#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace lyric {
namespace obs {

namespace {

// Formats nanoseconds as a human-friendly duration.
std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f s", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f ms",
                  static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us",
                  static_cast<double>(ns) / 1e3);
  }
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& before) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = before.counters.find(name);
    uint64_t base = it == before.counters.end() ? 0 : it->second;
    out.counters[name] = value >= base ? value - base : 0;
  }
  for (const auto& [name, stats] : timers) {
    auto it = before.timers.find(name);
    TimerStats delta = stats;
    if (it != before.timers.end()) {
      delta.count = stats.count >= it->second.count
                        ? stats.count - it->second.count
                        : 0;
      delta.total_ns = stats.total_ns >= it->second.total_ns
                           ? stats.total_ns - it->second.total_ns
                           : 0;
      // max_ns is not subtractive; keep the later snapshot's max.
    }
    out.timers[name] = delta;
  }
  return out;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  size_t width = 0;
  for (const auto& [name, value] : counters) {
    if (value != 0) width = std::max(width, name.size());
  }
  for (const auto& [name, stats] : timers) {
    if (stats.count != 0) width = std::max(width, name.size());
  }
  for (const auto& [name, value] : counters) {
    if (value == 0) continue;
    out += "  " + name + std::string(width + 2 - name.size(), ' ') +
           std::to_string(value) + "\n";
  }
  for (const auto& [name, stats] : timers) {
    if (stats.count == 0) continue;
    out += "  " + name + std::string(width + 2 - name.size(), ' ') +
           std::to_string(stats.count) + " calls, total " +
           FormatNs(stats.total_ns) + ", max " + FormatNs(stats.max_ns) +
           "\n";
  }
  if (out.empty()) out = "  (no metrics recorded)\n";
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\": ";
    out += std::to_string(value);
  }
  out += "}, \"timers\": {";
  first = true;
  for (const auto& [name, stats] : timers) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\": {\"count\": ";
    out += std::to_string(stats.count);
    out += ", \"total_ns\": ";
    out += std::to_string(stats.total_ns);
    out += ", \"max_ns\": ";
    out += std::to_string(stats.max_ns);
    out += '}';
  }
  out += "}}";
  return out;
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return *it->second;
}

Timer& Registry::GetTimer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(name, std::unique_ptr<Timer>(new Timer(name)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->value();
  }
  for (const auto& [name, timer] : timers_) {
    MetricsSnapshot::TimerStats stats;
    stats.count = timer->count_.load(std::memory_order_relaxed);
    stats.total_ns = timer->total_ns_.load(std::memory_order_relaxed);
    stats.max_ns = timer->max_ns_.load(std::memory_order_relaxed);
    out.timers[name] = stats;
  }
  return out;
}

void Registry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, timer] : timers_) {
    timer->count_.store(0, std::memory_order_relaxed);
    timer->total_ns_.store(0, std::memory_order_relaxed);
    timer->max_ns_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace lyric
