#include "algebra/value.h"

namespace lyric {

const char* AValue::TypeName() const {
  if (IsBool()) return "bool";
  if (IsNumber()) return "number";
  if (IsString()) return "string";
  if (IsOid()) return "oid";
  if (IsCst()) return "cst";
  return "list";
}

std::string AValue::ToString() const {
  if (IsBool()) return AsBool() ? "true" : "false";
  if (IsNumber()) return AsNumber().ToString();
  if (IsString()) return "'" + AsString() + "'";
  if (IsOid()) return AsOid().ToString();
  if (IsCst()) return AsCst().ToString();
  std::string out = "[";
  const List& list = AsList();
  for (size_t i = 0; i < list.size(); ++i) {
    if (i > 0) out += ", ";
    out += list[i].ToString();
  }
  return out + "]";
}

}  // namespace lyric
