// Functional forms and constraint primitives of the FP-like algebra (§5).
//
// Functional forms (Backus's alpha, filter, insert, composition,
// construction) capture collection processing; primitive functions
// manipulate constraint objects (conjunction = intersection, entailment =
// containment, projection, optimization). A LyriC SELECT-FROM-WHERE
// block denotes a composition
//
//     ApplyToAll(select-part) . Filter(where-part) . scan
//
// which is exactly how bench/bench_flat_vs_direct's algebra arm runs the
// paper queries.

#ifndef LYRIC_ALGEBRA_COMBINATORS_H_
#define LYRIC_ALGEBRA_COMBINATORS_H_

#include <functional>

#include "algebra/value.h"

namespace lyric {

/// A function of the algebra: AValue -> Result<AValue>.
using AFn = std::function<Result<AValue>(const AValue&)>;

/// Functional forms and primitives. All combinators return by value;
/// captured state is shared_ptr-backed inside AValue, so copies are cheap.
class Fp {
 public:
  // --- functional forms ----------------------------------------------------

  /// Identity.
  static AFn Identity();
  /// The constant function.
  static AFn Constant(AValue v);
  /// Composition: (f . g)(x) = f(g(x)).
  static AFn Compose(AFn f, AFn g);
  /// Backus's alpha: applies f to every element of a list.
  static AFn ApplyToAll(AFn f);
  /// Keeps the list elements where `pred` returns true.
  static AFn Filter(AFn pred);
  /// Construction: [f1, ..., fn](x) = [f1(x), ..., fn(x)].
  static AFn Construct(std::vector<AFn> fns);
  /// Right insert (fold): Insert(op, e)([x1,..,xn]) = op([x1, op([x2, ..
  /// op([xn, e])..]]), where op takes a two-element list.
  static AFn Insert(AFn binop, AValue init);
  /// Selects the i-th element (0-based) of a list.
  static AFn Select(size_t index);
  /// Logical negation of a boolean-valued function.
  static AFn Not(AFn pred);

  // --- constraint primitives -----------------------------------------------

  /// x (cst) -> x intersected with `rhs` (conjunction, §1.1).
  static AFn CstConjoin(CstObject rhs);
  /// [a, b] (two-element list of cst) -> a intersected with b.
  static AFn CstConjoinPair();
  /// x (cst) -> bool: is the point set nonempty?
  static AFn CstSatisfiable();
  /// x (cst) -> bool: x contained in `rhs` (containment = implication).
  static AFn CstEntails(CstObject rhs);
  /// x (cst) -> its projection onto `interface_vars`.
  static AFn CstProject(std::vector<VarId> interface_vars);
  /// x (cst) -> the maximum of `objective` over x (error if infeasible or
  /// unbounded).
  static AFn CstMaximize(LinearExpr objective);
  static AFn CstMinimize(LinearExpr objective);

  // --- scalar primitives -----------------------------------------------------

  /// [a, b] (numbers) -> a + b.
  static AFn NumAdd();
  /// x (number) -> x `op` bound, for op in {"<", "<=", ">", ">=", "=", "!="}.
  static AFn NumCompare(std::string op, Rational bound);
};

}  // namespace lyric

#endif  // LYRIC_ALGEBRA_COMBINATORS_H_
