// Values of the FP-like constraint algebra.
//
// §5 sketches the authors' planned implementation: "a constraint algebra
// in which higher-order operators manipulate collections of objects (e.g.
// sets, lists) some of whose elements may be constraints. Thus, the
// algebra is an FP-like language [Bac78] in which functional forms
// capture common data collections processing abstractions ... and
// primitive functions manipulate objects of different types such as
// intersecting constraints." This module realizes that sketch: a small
// dynamically-typed value universe (scalars, CST objects, lists) that the
// combinators in combinators.h operate on.

#ifndef LYRIC_ALGEBRA_VALUE_H_
#define LYRIC_ALGEBRA_VALUE_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "constraint/cst_object.h"
#include "object/oid.h"

namespace lyric {

/// A value of the constraint algebra: a boolean, an exact number, a
/// string, an oid, a CST object, or a list of values.
class AValue {
 public:
  using List = std::vector<AValue>;

  AValue() : rep_(false) {}
  AValue(bool b) : rep_(b) {}                           // NOLINT
  AValue(Rational r) : rep_(std::move(r)) {}            // NOLINT
  AValue(std::string s) : rep_(std::move(s)) {}         // NOLINT
  AValue(const char* s) : rep_(std::string(s)) {}       // NOLINT
  AValue(Oid oid) : rep_(std::move(oid)) {}             // NOLINT
  AValue(CstObject obj)                                 // NOLINT
      : rep_(std::make_shared<CstObject>(std::move(obj))) {}
  AValue(List list)                                     // NOLINT
      : rep_(std::make_shared<List>(std::move(list))) {}

  bool IsBool() const { return std::holds_alternative<bool>(rep_); }
  bool IsNumber() const { return std::holds_alternative<Rational>(rep_); }
  bool IsString() const { return std::holds_alternative<std::string>(rep_); }
  bool IsOid() const { return std::holds_alternative<Oid>(rep_); }
  bool IsCst() const {
    return std::holds_alternative<std::shared_ptr<CstObject>>(rep_);
  }
  bool IsList() const {
    return std::holds_alternative<std::shared_ptr<List>>(rep_);
  }

  bool AsBool() const { return std::get<bool>(rep_); }
  const Rational& AsNumber() const { return std::get<Rational>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const Oid& AsOid() const { return std::get<Oid>(rep_); }
  const CstObject& AsCst() const {
    return *std::get<std::shared_ptr<CstObject>>(rep_);
  }
  const List& AsList() const { return *std::get<std::shared_ptr<List>>(rep_); }

  /// Human-readable type name ("bool", "number", "cst", "list", ...).
  const char* TypeName() const;

  std::string ToString() const;

 private:
  std::variant<bool, Rational, std::string, Oid, std::shared_ptr<CstObject>,
               std::shared_ptr<List>>
      rep_;
};

}  // namespace lyric

#endif  // LYRIC_ALGEBRA_VALUE_H_
