#include "algebra/combinators.h"

namespace lyric {

namespace {

Status WantList(const AValue& v, const char* who) {
  if (!v.IsList()) {
    return Status::TypeError(std::string(who) + ": expected a list, got " +
                             v.TypeName());
  }
  return Status::OK();
}

Status WantCst(const AValue& v, const char* who) {
  if (!v.IsCst()) {
    return Status::TypeError(std::string(who) +
                             ": expected a CST object, got " + v.TypeName());
  }
  return Status::OK();
}

}  // namespace

AFn Fp::Identity() {
  return [](const AValue& v) -> Result<AValue> { return v; };
}

AFn Fp::Constant(AValue v) {
  return [v](const AValue&) -> Result<AValue> { return v; };
}

AFn Fp::Compose(AFn f, AFn g) {
  return [f, g](const AValue& v) -> Result<AValue> {
    LYRIC_ASSIGN_OR_RETURN(AValue mid, g(v));
    return f(mid);
  };
}

AFn Fp::ApplyToAll(AFn f) {
  return [f](const AValue& v) -> Result<AValue> {
    LYRIC_RETURN_NOT_OK(WantList(v, "ApplyToAll"));
    AValue::List out;
    out.reserve(v.AsList().size());
    for (const AValue& e : v.AsList()) {
      LYRIC_ASSIGN_OR_RETURN(AValue r, f(e));
      out.push_back(std::move(r));
    }
    return AValue(std::move(out));
  };
}

AFn Fp::Filter(AFn pred) {
  return [pred](const AValue& v) -> Result<AValue> {
    LYRIC_RETURN_NOT_OK(WantList(v, "Filter"));
    AValue::List out;
    for (const AValue& e : v.AsList()) {
      LYRIC_ASSIGN_OR_RETURN(AValue keep, pred(e));
      if (!keep.IsBool()) {
        return Status::TypeError("Filter: predicate returned " +
                                 std::string(keep.TypeName()));
      }
      if (keep.AsBool()) out.push_back(e);
    }
    return AValue(std::move(out));
  };
}

AFn Fp::Construct(std::vector<AFn> fns) {
  return [fns](const AValue& v) -> Result<AValue> {
    AValue::List out;
    out.reserve(fns.size());
    for (const AFn& f : fns) {
      LYRIC_ASSIGN_OR_RETURN(AValue r, f(v));
      out.push_back(std::move(r));
    }
    return AValue(std::move(out));
  };
}

AFn Fp::Insert(AFn binop, AValue init) {
  return [binop, init](const AValue& v) -> Result<AValue> {
    LYRIC_RETURN_NOT_OK(WantList(v, "Insert"));
    AValue acc = init;
    const AValue::List& list = v.AsList();
    for (size_t i = list.size(); i-- > 0;) {
      LYRIC_ASSIGN_OR_RETURN(acc, binop(AValue(AValue::List{list[i], acc})));
    }
    return acc;
  };
}

AFn Fp::Select(size_t index) {
  return [index](const AValue& v) -> Result<AValue> {
    LYRIC_RETURN_NOT_OK(WantList(v, "Select"));
    if (index >= v.AsList().size()) {
      return Status::InvalidArgument(
          "Select: index " + std::to_string(index) + " out of range for " +
          std::to_string(v.AsList().size()) + " elements");
    }
    return v.AsList()[index];
  };
}

AFn Fp::Not(AFn pred) {
  return [pred](const AValue& v) -> Result<AValue> {
    LYRIC_ASSIGN_OR_RETURN(AValue b, pred(v));
    if (!b.IsBool()) {
      return Status::TypeError("Not: operand returned " +
                               std::string(b.TypeName()));
    }
    return AValue(!b.AsBool());
  };
}

AFn Fp::CstConjoin(CstObject rhs) {
  return [rhs](const AValue& v) -> Result<AValue> {
    LYRIC_RETURN_NOT_OK(WantCst(v, "CstConjoin"));
    LYRIC_ASSIGN_OR_RETURN(CstObject out, v.AsCst().Conjoin(rhs));
    return AValue(std::move(out));
  };
}

AFn Fp::CstConjoinPair() {
  return [](const AValue& v) -> Result<AValue> {
    LYRIC_RETURN_NOT_OK(WantList(v, "CstConjoinPair"));
    if (v.AsList().size() != 2) {
      return Status::InvalidArgument("CstConjoinPair: need exactly 2 items");
    }
    LYRIC_RETURN_NOT_OK(WantCst(v.AsList()[0], "CstConjoinPair"));
    LYRIC_RETURN_NOT_OK(WantCst(v.AsList()[1], "CstConjoinPair"));
    LYRIC_ASSIGN_OR_RETURN(CstObject out,
                           v.AsList()[0].AsCst().Conjoin(v.AsList()[1].AsCst()));
    return AValue(std::move(out));
  };
}

AFn Fp::CstSatisfiable() {
  return [](const AValue& v) -> Result<AValue> {
    LYRIC_RETURN_NOT_OK(WantCst(v, "CstSatisfiable"));
    LYRIC_ASSIGN_OR_RETURN(bool sat, v.AsCst().Satisfiable());
    return AValue(sat);
  };
}

AFn Fp::CstEntails(CstObject rhs) {
  return [rhs](const AValue& v) -> Result<AValue> {
    LYRIC_RETURN_NOT_OK(WantCst(v, "CstEntails"));
    LYRIC_ASSIGN_OR_RETURN(bool holds, v.AsCst().Entails(rhs));
    return AValue(holds);
  };
}

AFn Fp::CstProject(std::vector<VarId> interface_vars) {
  return [interface_vars](const AValue& v) -> Result<AValue> {
    LYRIC_RETURN_NOT_OK(WantCst(v, "CstProject"));
    LYRIC_ASSIGN_OR_RETURN(CstObject out, v.AsCst().Project(interface_vars));
    return AValue(std::move(out));
  };
}

namespace {
AFn Optimize(LinearExpr objective, bool maximize) {
  return [objective, maximize](const AValue& v) -> Result<AValue> {
    LYRIC_RETURN_NOT_OK(WantCst(v, "CstMaximize/CstMinimize"));
    LYRIC_ASSIGN_OR_RETURN(LpSolution sol,
                           maximize ? v.AsCst().Maximize(objective)
                                    : v.AsCst().Minimize(objective));
    if (sol.status != LpStatus::kOptimal) {
      return Status::InvalidArgument(std::string("optimization is ") +
                                     LpStatusToString(sol.status));
    }
    return AValue(sol.value);
  };
}
}  // namespace

AFn Fp::CstMaximize(LinearExpr objective) {
  return Optimize(std::move(objective), true);
}

AFn Fp::CstMinimize(LinearExpr objective) {
  return Optimize(std::move(objective), false);
}

AFn Fp::NumAdd() {
  return [](const AValue& v) -> Result<AValue> {
    LYRIC_RETURN_NOT_OK(WantList(v, "NumAdd"));
    if (v.AsList().size() != 2 || !v.AsList()[0].IsNumber() ||
        !v.AsList()[1].IsNumber()) {
      return Status::TypeError("NumAdd: need a pair of numbers");
    }
    return AValue(v.AsList()[0].AsNumber() + v.AsList()[1].AsNumber());
  };
}

AFn Fp::NumCompare(std::string op, Rational bound) {
  return [op, bound](const AValue& v) -> Result<AValue> {
    if (!v.IsNumber()) {
      return Status::TypeError("NumCompare: expected a number, got " +
                               std::string(v.TypeName()));
    }
    int cmp = v.AsNumber().Compare(bound);
    bool out;
    if (op == "<") out = cmp < 0;
    else if (op == "<=") out = cmp <= 0;
    else if (op == ">") out = cmp > 0;
    else if (op == ">=") out = cmp >= 0;
    else if (op == "=") out = cmp == 0;
    else if (op == "!=") out = cmp != 0;
    else return Status::InvalidArgument("NumCompare: bad operator '" + op + "'");
    return AValue(out);
  };
}

}  // namespace lyric
