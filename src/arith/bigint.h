// Arbitrary-precision signed integers.
//
// Constraint manipulation — Fourier-Motzkin elimination in particular —
// multiplies and adds coefficients repeatedly; with fixed-width integers the
// coefficients silently overflow and the polyhedron changes shape. All
// constraint coefficients in LyriC are therefore exact rationals over this
// BigInt.
//
// Representation: a small-integer fast path (plain int64, no allocation —
// the overwhelmingly common case for constraint coefficients) promoting on
// overflow to sign-magnitude little-endian 32-bit limbs.

#ifndef LYRIC_ARITH_BIGINT_H_
#define LYRIC_ARITH_BIGINT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/result.h"

namespace lyric {

/// Arbitrary-precision signed integer.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() = default;
  /// Constructs from a machine integer (never allocates).
  BigInt(int64_t v) : small_(v) {}  // NOLINT(runtime/explicit)

  /// Parses a decimal string with optional leading '-'.
  static Result<BigInt> FromString(const std::string& s);

  /// True if this is zero.
  bool IsZero() const { return is_small_ ? small_ == 0 : limbs_.empty(); }
  /// True if this is strictly negative.
  bool IsNegative() const { return is_small_ ? small_ < 0 : negative_; }
  /// -1, 0, or +1.
  int Sign() const {
    if (is_small_) return small_ < 0 ? -1 : (small_ > 0 ? 1 : 0);
    if (limbs_.empty()) return 0;
    return negative_ ? -1 : 1;
  }

  BigInt operator-() const;
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  /// Truncated division (C semantics: rounds toward zero). `o` must be
  /// non-zero; division by zero aborts in debug and returns 0 in release.
  BigInt operator/(const BigInt& o) const;
  /// Remainder matching operator/ (same sign as the dividend).
  BigInt operator%(const BigInt& o) const;

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }

  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  /// Three-way comparison: negative / zero / positive.
  int Compare(const BigInt& o) const;

  /// Absolute value.
  BigInt Abs() const;

  /// Greatest common divisor (always non-negative).
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// Decimal rendering.
  std::string ToString() const;

  /// Best-effort conversion to double (may lose precision; may be inf).
  double ToDouble() const;

  /// Returns the value as int64 if it fits.
  Result<int64_t> ToInt64() const;

  /// Number of limbs (0 for zero); proxies magnitude size for cost models.
  size_t LimbCount() const;

  /// True when the value is held inline (diagnostic for tests/benches).
  bool IsSmallRep() const { return is_small_; }

  /// Hash suitable for unordered containers.
  size_t Hash() const;

 private:
  // Magnitude comparison: -1, 0, +1.
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  // Schoolbook bit-wise long division of magnitudes; sets q and r.
  static void DivModMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              std::vector<uint32_t>* q,
                              std::vector<uint32_t>* r);
  static void Trim(std::vector<uint32_t>* limbs);

  // Builds a big-representation value from sign + magnitude.
  static BigInt FromLimbs(bool negative, std::vector<uint32_t> limbs);
  // The limb representation of this value (copies for small values).
  std::vector<uint32_t> ToLimbs() const;

  bool is_small_ = true;
  int64_t small_ = 0;
  bool negative_ = false;             // Big representation only.
  std::vector<uint32_t> limbs_;       // Little-endian, no trailing zeros.
};

inline std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToString();
}

}  // namespace lyric

#endif  // LYRIC_ARITH_BIGINT_H_
