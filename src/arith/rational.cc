#include "arith/rational.h"

#include <cassert>
#include <cmath>

namespace lyric {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  assert(!den_.IsZero() && "Rational with zero denominator");
  if (den_.IsZero()) den_ = BigInt(1);  // Degrade gracefully in release.
  Normalize();
}

void Rational::Normalize() {
  if (den_.IsNegative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.IsZero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Result<Rational> Rational::FromString(const std::string& s) {
  size_t slash = s.find('/');
  if (slash != std::string::npos) {
    LYRIC_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(s.substr(0, slash)));
    LYRIC_ASSIGN_OR_RETURN(BigInt den,
                           BigInt::FromString(s.substr(slash + 1)));
    if (den.IsZero()) {
      return Status::ArithmeticError("zero denominator in '" + s + "'");
    }
    return Rational(std::move(num), std::move(den));
  }
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    std::string digits = s.substr(0, dot) + s.substr(dot + 1);
    size_t frac_len = s.size() - dot - 1;
    if (frac_len == 0) {
      return Status::ArithmeticError("bad decimal literal '" + s + "'");
    }
    LYRIC_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(digits));
    BigInt den(1);
    const BigInt ten(10);
    for (size_t i = 0; i < frac_len; ++i) den *= ten;
    return Rational(std::move(num), std::move(den));
  }
  LYRIC_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(s));
  return Rational(std::move(num), BigInt(1));
}

Rational Rational::FromDouble(double v) {
  assert(std::isfinite(v));
  // Every finite double is m * 2^e with integer m; extract exactly.
  int exp = 0;
  double mant = std::frexp(v, &exp);  // v = mant * 2^exp, |mant| in [0.5, 1)
  // Scale mantissa to an integer (53 bits suffice).
  int64_t m = static_cast<int64_t>(std::ldexp(mant, 53));
  exp -= 53;
  BigInt num(m);
  BigInt den(1);
  const BigInt two(2);
  if (exp >= 0) {
    for (int i = 0; i < exp; ++i) num *= two;
  } else {
    for (int i = 0; i < -exp; ++i) den *= two;
  }
  return Rational(std::move(num), std::move(den));
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return Rational(num_ * o.num_, den_ * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  assert(!o.IsZero() && "Rational division by zero");
  if (o.IsZero()) return Rational();
  return Rational(num_ * o.den_, den_ * o.num_);
}

int Rational::Compare(const Rational& o) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return (num_ * o.den_).Compare(o.num_ * den_);
}

Rational Rational::Inverse() const {
  assert(!IsZero() && "inverse of zero");
  if (IsZero()) return Rational();
  return Rational(den_, num_);
}

Rational Rational::Abs() const {
  Rational out = *this;
  out.num_ = out.num_.Abs();
  return out;
}

std::string Rational::ToString() const {
  if (IsInteger()) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

double Rational::ToDouble() const { return num_.ToDouble() / den_.ToDouble(); }

size_t Rational::Hash() const {
  size_t h = num_.Hash();
  h ^= den_.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace lyric
