// Exact rational numbers over BigInt.
//
// Invariant: the denominator is strictly positive and gcd(num, den) == 1;
// zero is canonically 0/1. Every arithmetic operation re-normalizes, so two
// Rationals are equal iff their representations are identical — which makes
// syntactic duplicate detection on constraints (a canonical-form step the
// paper calls for) a plain structural comparison.

#ifndef LYRIC_ARITH_RATIONAL_H_
#define LYRIC_ARITH_RATIONAL_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "arith/bigint.h"
#include "util/result.h"

namespace lyric {

/// Exact rational number.
class Rational {
 public:
  /// Constructs zero.
  Rational() : num_(0), den_(1) {}
  /// Constructs an integer value.
  Rational(int64_t v) : num_(v), den_(1) {}  // NOLINT(runtime/explicit)
  /// Constructs num/den; den must be non-zero (asserts in debug).
  Rational(BigInt num, BigInt den);
  Rational(int64_t num, int64_t den) : Rational(BigInt(num), BigInt(den)) {}

  /// Parses "3", "-7/2", or a decimal like "1.25" / "-0.5".
  static Result<Rational> FromString(const std::string& s);
  /// Converts a double that is exactly representable in binary (scaled by
  /// powers of two); intended for literals in tests and examples.
  static Rational FromDouble(double v);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool IsZero() const { return num_.IsZero(); }
  bool IsNegative() const { return num_.IsNegative(); }
  bool IsInteger() const { return den_ == BigInt(1); }
  int Sign() const { return num_.Sign(); }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division; `o` must be non-zero (asserts in debug).
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const { return Compare(o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(o) >= 0; }

  /// Three-way comparison.
  int Compare(const Rational& o) const;

  /// Multiplicative inverse; must be non-zero (asserts in debug).
  Rational Inverse() const;
  Rational Abs() const;

  /// "3", "-7/2".
  std::string ToString() const;
  double ToDouble() const;

  /// Hash suitable for unordered containers.
  size_t Hash() const;

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;
};

inline std::ostream& operator<<(std::ostream& os, const Rational& v) {
  return os << v.ToString();
}

}  // namespace lyric

#endif  // LYRIC_ARITH_RATIONAL_H_
