#include "arith/bigint.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lyric {

namespace {
constexpr uint64_t kBase = 1ull << 32;

// Checked int64 arithmetic via __int128.
inline bool FitsInt64(__int128 v) {
  return v >= static_cast<__int128>(INT64_MIN) &&
         v <= static_cast<__int128>(INT64_MAX);
}
}  // namespace

BigInt BigInt::FromLimbs(bool negative, std::vector<uint32_t> limbs) {
  Trim(&limbs);
  BigInt out;
  if (limbs.empty()) return out;  // Zero.
  // Fits in int64?
  if (limbs.size() <= 2) {
    uint64_t mag = limbs[0];
    if (limbs.size() == 2) mag |= static_cast<uint64_t>(limbs[1]) << 32;
    if (!negative && mag <= static_cast<uint64_t>(INT64_MAX)) {
      out.small_ = static_cast<int64_t>(mag);
      return out;
    }
    if (negative && mag <= (1ull << 63)) {
      out.small_ = static_cast<int64_t>(~mag + 1);
      return out;
    }
  }
  out.is_small_ = false;
  out.small_ = 0;
  out.negative_ = negative;
  out.limbs_ = std::move(limbs);
  return out;
}

std::vector<uint32_t> BigInt::ToLimbs() const {
  if (!is_small_) return limbs_;
  std::vector<uint32_t> out;
  uint64_t mag = small_ < 0 ? ~static_cast<uint64_t>(small_) + 1
                            : static_cast<uint64_t>(small_);
  while (mag != 0) {
    out.push_back(static_cast<uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
  return out;
}

Result<BigInt> BigInt::FromString(const std::string& s) {
  size_t i = 0;
  bool neg = false;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
    neg = s[i] == '-';
    ++i;
  }
  if (i >= s.size()) {
    return Status::ArithmeticError("empty integer literal: '" + s + "'");
  }
  BigInt out;
  const BigInt ten(10);
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return Status::ArithmeticError("bad digit in integer literal: '" + s +
                                     "'");
    }
    out = out * ten + BigInt(s[i] - '0');
  }
  if (neg) out = -out;
  return out;
}

void BigInt::Trim(std::vector<uint32_t>* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

int BigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> BigInt::AddMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  assert(CompareMagnitude(a, b) >= 0);
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= b[i];
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  Trim(&out);
  return out;
}

void BigInt::DivModMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b,
                             std::vector<uint32_t>* q,
                             std::vector<uint32_t>* r) {
  q->assign(a.size(), 0);
  r->clear();
  if (b.empty()) {
    assert(false && "BigInt division by zero");
    q->clear();
    return;
  }
  // Fast path: single-limb divisor.
  if (b.size() == 1) {
    uint64_t d = b[0];
    uint64_t rem = 0;
    for (size_t i = a.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a[i];
      (*q)[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    Trim(q);
    if (rem) {
      r->push_back(static_cast<uint32_t>(rem & 0xffffffffu));
      if (rem >> 32) r->push_back(static_cast<uint32_t>(rem >> 32));
    }
    return;
  }
  // General case: bit-by-bit long division. O(bits(a) * limbs(b)); the
  // coefficients seen in constraint manipulation are small enough that this
  // simple, obviously-correct routine is preferable to Knuth's algorithm D.
  std::vector<uint32_t> rem;
  for (size_t i = a.size(); i-- > 0;) {
    for (int bit = 31; bit >= 0; --bit) {
      // rem = rem * 2 + next bit of a.
      uint32_t carry = (a[i] >> bit) & 1u;
      for (size_t k = 0; k < rem.size(); ++k) {
        uint32_t next_carry = rem[k] >> 31;
        rem[k] = (rem[k] << 1) | carry;
        carry = next_carry;
      }
      if (carry) rem.push_back(carry);
      if (CompareMagnitude(rem, b) >= 0) {
        rem = SubMagnitude(rem, b);
        (*q)[i] |= 1u << bit;
      }
    }
  }
  Trim(q);
  *r = std::move(rem);
}

BigInt BigInt::operator-() const {
  if (is_small_) {
    if (small_ != INT64_MIN) return BigInt(-small_);
    // -INT64_MIN overflows int64; promote.
    std::vector<uint32_t> limbs = ToLimbs();
    return FromLimbs(false, std::move(limbs));
  }
  // Negation can re-enter the small range (e.g. -(2^63)); rebuild.
  return FromLimbs(!negative_, limbs_);
}

BigInt BigInt::operator+(const BigInt& o) const {
  if (is_small_ && o.is_small_) {
    __int128 sum = static_cast<__int128>(small_) + o.small_;
    if (FitsInt64(sum)) return BigInt(static_cast<int64_t>(sum));
  }
  bool a_neg = IsNegative();
  bool b_neg = o.IsNegative();
  std::vector<uint32_t> a = ToLimbs();
  std::vector<uint32_t> b = o.ToLimbs();
  if (a_neg == b_neg) {
    return FromLimbs(a_neg, AddMagnitude(a, b));
  }
  int cmp = CompareMagnitude(a, b);
  if (cmp >= 0) return FromLimbs(a_neg, SubMagnitude(a, b));
  return FromLimbs(b_neg, SubMagnitude(b, a));
}

BigInt BigInt::operator-(const BigInt& o) const {
  if (is_small_ && o.is_small_) {
    __int128 diff = static_cast<__int128>(small_) - o.small_;
    if (FitsInt64(diff)) return BigInt(static_cast<int64_t>(diff));
  }
  return *this + (-o);
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_small_ && o.is_small_) {
    __int128 prod = static_cast<__int128>(small_) * o.small_;
    if (FitsInt64(prod)) return BigInt(static_cast<int64_t>(prod));
  }
  return FromLimbs(IsNegative() != o.IsNegative(),
                   MulMagnitude(ToLimbs(), o.ToLimbs()));
}

BigInt BigInt::operator/(const BigInt& o) const {
  if (is_small_ && o.is_small_) {
    assert(o.small_ != 0 && "BigInt division by zero");
    if (o.small_ == 0) return BigInt();
    if (!(small_ == INT64_MIN && o.small_ == -1)) {
      return BigInt(small_ / o.small_);
    }
  }
  std::vector<uint32_t> q, r;
  DivModMagnitude(ToLimbs(), o.ToLimbs(), &q, &r);
  return FromLimbs(IsNegative() != o.IsNegative(), std::move(q));
}

BigInt BigInt::operator%(const BigInt& o) const {
  if (is_small_ && o.is_small_) {
    assert(o.small_ != 0 && "BigInt modulo by zero");
    if (o.small_ == 0) return BigInt();
    if (!(small_ == INT64_MIN && o.small_ == -1)) {
      return BigInt(small_ % o.small_);
    }
  }
  std::vector<uint32_t> q, r;
  DivModMagnitude(ToLimbs(), o.ToLimbs(), &q, &r);
  return FromLimbs(IsNegative(), std::move(r));
}

int BigInt::Compare(const BigInt& o) const {
  if (is_small_ && o.is_small_) {
    if (small_ != o.small_) return small_ < o.small_ ? -1 : 1;
    return 0;
  }
  bool a_neg = IsNegative();
  bool b_neg = o.IsNegative();
  if (a_neg != b_neg) return a_neg ? -1 : 1;
  int mag = CompareMagnitude(ToLimbs(), o.ToLimbs());
  return a_neg ? -mag : mag;
}

BigInt BigInt::Abs() const {
  if (IsNegative()) return -*this;
  return *this;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  // Small fast path: classic binary-free Euclid on uint64.
  if (a.is_small_ && b.is_small_ && a.small_ != INT64_MIN &&
      b.small_ != INT64_MIN) {
    uint64_t x = static_cast<uint64_t>(a.small_ < 0 ? -a.small_ : a.small_);
    uint64_t y = static_cast<uint64_t>(b.small_ < 0 ? -b.small_ : b.small_);
    while (y != 0) {
      uint64_t r = x % y;
      x = y;
      y = r;
    }
    if (x <= static_cast<uint64_t>(INT64_MAX)) {
      return BigInt(static_cast<int64_t>(x));
    }
  }
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

std::string BigInt::ToString() const {
  if (is_small_) return std::to_string(small_);
  if (limbs_.empty()) return "0";
  // Repeated division by 10^9.
  std::vector<uint32_t> mag = limbs_;
  std::string digits;
  const uint64_t kChunk = 1000000000ull;
  while (!mag.empty()) {
    uint64_t rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<uint32_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    Trim(&mag);
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  std::string out;
  if (negative_) out.push_back('-');
  out.append(digits.rbegin(), digits.rend());
  return out;
}

double BigInt::ToDouble() const {
  if (is_small_) return static_cast<double>(small_);
  double out = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * static_cast<double>(kBase) + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

Result<int64_t> BigInt::ToInt64() const {
  if (is_small_) return small_;
  // Big representation only holds values outside int64 by construction.
  return Status::ArithmeticError("BigInt does not fit in int64: " +
                                 ToString());
}

size_t BigInt::LimbCount() const {
  if (!is_small_) return limbs_.size();
  if (small_ == 0) return 0;
  uint64_t mag = small_ < 0 ? ~static_cast<uint64_t>(small_) + 1
                            : static_cast<uint64_t>(small_);
  return mag >> 32 ? 2 : 1;
}

size_t BigInt::Hash() const {
  // Hash must agree across representations; hash the limb image.
  size_t h = IsNegative() ? 0x9e3779b97f4a7c15ull : 0;
  for (uint32_t limb : ToLimbs()) {
    h ^= limb + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace lyric
