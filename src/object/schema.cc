#include "object/schema.h"

#include <set>

namespace lyric {

std::string CstClassName(size_t dimension) {
  return std::string(kCstClass) + "(" + std::to_string(dimension) + ")";
}

std::optional<size_t> ParseCstClassName(const std::string& name) {
  const std::string prefix = std::string(kCstClass) + "(";
  if (name.size() < prefix.size() + 2 ||
      name.compare(0, prefix.size(), prefix) != 0 || name.back() != ')') {
    return std::nullopt;
  }
  std::string digits = name.substr(prefix.size(),
                                   name.size() - prefix.size() - 1);
  if (digits.empty()) return std::nullopt;
  size_t out = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + static_cast<size_t>(c - '0');
  }
  return out;
}

bool Schema::IsPrimitive(const std::string& name) {
  return name == kIntClass || name == kRealClass || name == kStringClass ||
         name == kBoolClass;
}

Schema::Schema() = default;

bool Schema::HasClass(const std::string& name) const {
  if (IsPrimitive(name) || name == kCstClass) return true;
  if (ParseCstClassName(name).has_value()) return true;
  return classes_.count(name) > 0;
}

Result<const ClassDef*> Schema::GetClass(const std::string& name) const {
  auto it = classes_.find(name);
  if (it != classes_.end()) return &it->second;
  // Built-ins materialize on demand as attribute-free definitions.
  static std::map<std::string, ClassDef>* builtins =
      new std::map<std::string, ClassDef>();
  auto bit = builtins->find(name);
  if (bit != builtins->end()) return &bit->second;
  if (IsPrimitive(name) || name == kCstClass ||
      ParseCstClassName(name).has_value()) {
    ClassDef def;
    def.name = name;
    if (ParseCstClassName(name).has_value()) def.parents = {kCstClass};
    auto [nit, inserted] = builtins->emplace(name, std::move(def));
    (void)inserted;
    return &nit->second;
  }
  return Status::NotFound("class '" + name + "' is not in the schema");
}

Status Schema::AddClass(ClassDef def) {
  if (HasClass(def.name)) {
    return Status::AlreadyExists("class '" + def.name + "' already exists");
  }
  for (const std::string& p : def.parents) {
    if (!HasClass(p)) {
      return Status::NotFound("class '" + def.name + "': unknown parent '" +
                              p + "'");
    }
  }
  // Interface variables must be distinct.
  {
    std::set<std::string> seen;
    for (const std::string& v : def.interface_vars) {
      if (!seen.insert(v).second) {
        return Status::InvalidArgument("class '" + def.name +
                                       "': repeated interface variable '" +
                                       v + "'");
      }
    }
  }
  for (const AttributeDef& attr : def.attributes) {
    if (attr.IsCst()) {
      if (attr.variables.empty()) {
        return Status::InvalidArgument(
            "class '" + def.name + "': CST attribute '" + attr.name +
            "' needs a variable list, e.g. CST(w, z)");
      }
      std::set<std::string> seen;
      for (const std::string& v : attr.variables) {
        if (!seen.insert(v).second) {
          return Status::InvalidArgument(
              "class '" + def.name + "': CST attribute '" + attr.name +
              "' repeats variable '" + v + "'");
        }
      }
      continue;
    }
    if (!HasClass(attr.target_class)) {
      return Status::NotFound("class '" + def.name + "': attribute '" +
                              attr.name + "' targets unknown class '" +
                              attr.target_class + "'");
    }
    if (!attr.variables.empty()) {
      LYRIC_ASSIGN_OR_RETURN(const ClassDef* target,
                             GetClass(attr.target_class));
      if (target->interface_vars.size() != attr.variables.size()) {
        return Status::TypeError(
            "class '" + def.name + "': attribute '" + attr.name +
            "' renames " + std::to_string(attr.variables.size()) +
            " variables but class '" + attr.target_class +
            "' has an interface of " +
            std::to_string(target->interface_vars.size()));
      }
    }
  }
  order_.push_back(def.name);
  classes_.emplace(def.name, std::move(def));
  return Status::OK();
}

bool Schema::IsSubclass(const std::string& sub, const std::string& super) const {
  if (sub == super) return true;
  if (sub == kIntClass && super == kRealClass) return true;
  if (ParseCstClassName(sub).has_value() && super == kCstClass) return true;
  auto it = classes_.find(sub);
  if (it == classes_.end()) return false;
  for (const std::string& p : it->second.parents) {
    if (IsSubclass(p, super)) return true;
  }
  return false;
}

Result<const AttributeDef*> Schema::FindAttribute(
    const std::string& class_name, const std::string& attr) const {
  LYRIC_ASSIGN_OR_RETURN(const ClassDef* def, GetClass(class_name));
  for (const AttributeDef& a : def->attributes) {
    if (a.name == attr) return &a;
  }
  for (const std::string& p : def->parents) {
    Result<const AttributeDef*> up = FindAttribute(p, attr);
    if (up.ok()) return up;
  }
  return Status::NotFound("class '" + class_name + "' has no attribute '" +
                          attr + "'");
}

Result<std::vector<const AttributeDef*>> Schema::AllAttributes(
    const std::string& class_name) const {
  LYRIC_ASSIGN_OR_RETURN(const ClassDef* def, GetClass(class_name));
  std::vector<const AttributeDef*> out;
  std::set<std::string> seen;
  // Own attributes shadow inherited ones.
  for (const AttributeDef& a : def->attributes) {
    if (seen.insert(a.name).second) out.push_back(&a);
  }
  for (const std::string& p : def->parents) {
    LYRIC_ASSIGN_OR_RETURN(std::vector<const AttributeDef*> up,
                           AllAttributes(p));
    for (const AttributeDef* a : up) {
      if (seen.insert(a->name).second) out.push_back(a);
    }
  }
  return out;
}

std::vector<std::string> Schema::SubclassesOf(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [cls, def] : classes_) {
    (void)def;
    if (IsSubclass(cls, name)) out.push_back(cls);
  }
  return out;
}

}  // namespace lyric
