// Logical object identities (oids).
//
// In the XSQL data model (§2.1) every value is an object referred to by a
// logical oid: numbers and strings are oids with built-in semantics,
// named entities like `my_desk` are symbolic oids, `secretary(dept77)` is
// a functional oid built by an id-function, and — LyriC's addition (§3.2)
// — a CST object is an oid whose identity is the canonical form of its
// constraint.

#ifndef LYRIC_OBJECT_OID_H_
#define LYRIC_OBJECT_OID_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "arith/rational.h"

namespace lyric {

/// Discriminator of an oid's built-in kind.
enum class OidKind {
  kInt,     // 20
  kReal,    // 2.5 (exact rational)
  kString,  // 'red'
  kBool,    // true
  kSymbol,  // my_desk
  kCst,     // a CST object, identified by its canonical constraint string
  kFunc,    // f(oid, ...) — id-function application (OID FUNCTION OF)
};

const char* OidKindToString(OidKind kind);

/// An immutable logical object id. Totally ordered and hashable so oids
/// can key maps and sets; comparison is by kind, then by content.
class Oid {
 public:
  /// Constructs the integer oid 0.
  Oid() : kind_(OidKind::kInt), int_(0) {}

  static Oid Int(int64_t v);
  static Oid Real(Rational v);
  static Oid Str(std::string v);
  static Oid Bool(bool v);
  static Oid Symbol(std::string name);
  /// `canonical` must be a CstObject::CanonicalString result; equality of
  /// CST oids is equality of canonical forms (§3.1's accepted notion).
  static Oid Cst(std::string canonical);
  static Oid Func(std::string fn, std::vector<Oid> args);

  OidKind kind() const { return kind_; }
  bool IsCst() const { return kind_ == OidKind::kCst; }

  /// Accessors; each must only be called for the matching kind.
  int64_t AsInt() const { return int_; }
  bool AsBool() const { return int_ != 0; }
  const Rational& AsReal() const { return real_; }
  /// String payload of kString / kSymbol / kCst / kFunc (function name).
  const std::string& AsString() const { return *str_; }
  const std::vector<Oid>& FuncArgs() const { return *args_; }

  /// Numeric value of an int or real oid.
  Rational AsNumeric() const {
    return kind_ == OidKind::kInt ? Rational(int_) : real_;
  }
  bool IsNumeric() const {
    return kind_ == OidKind::kInt || kind_ == OidKind::kReal;
  }

  bool operator==(const Oid& o) const { return Compare(o) == 0; }
  bool operator!=(const Oid& o) const { return Compare(o) != 0; }
  bool operator<(const Oid& o) const { return Compare(o) < 0; }
  int Compare(const Oid& o) const;

  size_t Hash() const;

  /// "20", "'red'", "my_desk", "f(a, b)", "cst:((@0) | @0 <= 1)".
  std::string ToString() const;

 private:
  OidKind kind_;
  int64_t int_ = 0;              // kInt, kBool
  Rational real_;                // kReal
  std::shared_ptr<const std::string> str_;        // kString/kSymbol/kCst/kFunc
  std::shared_ptr<const std::vector<Oid>> args_;  // kFunc
};

inline std::ostream& operator<<(std::ostream& os, const Oid& oid) {
  return os << oid.ToString();
}

struct OidHash {
  size_t operator()(const Oid& oid) const { return oid.Hash(); }
};

}  // namespace lyric

#endif  // LYRIC_OBJECT_OID_H_
