#include "object/oid.h"

namespace lyric {

const char* OidKindToString(OidKind kind) {
  switch (kind) {
    case OidKind::kInt:
      return "int";
    case OidKind::kReal:
      return "real";
    case OidKind::kString:
      return "string";
    case OidKind::kBool:
      return "bool";
    case OidKind::kSymbol:
      return "symbol";
    case OidKind::kCst:
      return "cst";
    case OidKind::kFunc:
      return "func";
  }
  return "?";
}

Oid Oid::Int(int64_t v) {
  Oid o;
  o.kind_ = OidKind::kInt;
  o.int_ = v;
  return o;
}

Oid Oid::Real(Rational v) {
  Oid o;
  o.kind_ = OidKind::kReal;
  o.real_ = std::move(v);
  return o;
}

Oid Oid::Str(std::string v) {
  Oid o;
  o.kind_ = OidKind::kString;
  o.str_ = std::make_shared<const std::string>(std::move(v));
  return o;
}

Oid Oid::Bool(bool v) {
  Oid o;
  o.kind_ = OidKind::kBool;
  o.int_ = v ? 1 : 0;
  return o;
}

Oid Oid::Symbol(std::string name) {
  Oid o;
  o.kind_ = OidKind::kSymbol;
  o.str_ = std::make_shared<const std::string>(std::move(name));
  return o;
}

Oid Oid::Cst(std::string canonical) {
  Oid o;
  o.kind_ = OidKind::kCst;
  o.str_ = std::make_shared<const std::string>(std::move(canonical));
  return o;
}

Oid Oid::Func(std::string fn, std::vector<Oid> args) {
  Oid o;
  o.kind_ = OidKind::kFunc;
  o.str_ = std::make_shared<const std::string>(std::move(fn));
  o.args_ = std::make_shared<const std::vector<Oid>>(std::move(args));
  return o;
}

int Oid::Compare(const Oid& o) const {
  if (kind_ != o.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(o.kind_) ? -1 : 1;
  }
  switch (kind_) {
    case OidKind::kInt:
    case OidKind::kBool:
      if (int_ != o.int_) return int_ < o.int_ ? -1 : 1;
      return 0;
    case OidKind::kReal:
      return real_.Compare(o.real_);
    case OidKind::kString:
    case OidKind::kSymbol:
    case OidKind::kCst:
      return str_->compare(*o.str_);
    case OidKind::kFunc: {
      int c = str_->compare(*o.str_);
      if (c != 0) return c;
      const auto& a = *args_;
      const auto& b = *o.args_;
      for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
        int ci = a[i].Compare(b[i]);
        if (ci != 0) return ci;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

size_t Oid::Hash() const {
  size_t h = static_cast<size_t>(kind_) * 0x9e3779b97f4a7c15ull;
  auto mix = [&h](size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  switch (kind_) {
    case OidKind::kInt:
    case OidKind::kBool:
      mix(static_cast<size_t>(int_));
      break;
    case OidKind::kReal:
      mix(real_.Hash());
      break;
    case OidKind::kString:
    case OidKind::kSymbol:
    case OidKind::kCst:
      mix(std::hash<std::string>()(*str_));
      break;
    case OidKind::kFunc:
      mix(std::hash<std::string>()(*str_));
      for (const Oid& a : *args_) mix(a.Hash());
      break;
  }
  return h;
}

std::string Oid::ToString() const {
  switch (kind_) {
    case OidKind::kInt:
      return std::to_string(int_);
    case OidKind::kBool:
      return int_ ? "true" : "false";
    case OidKind::kReal:
      return real_.ToString();
    case OidKind::kString:
      return "'" + *str_ + "'";
    case OidKind::kSymbol:
      return *str_;
    case OidKind::kCst:
      return *str_;
    case OidKind::kFunc: {
      std::string out = *str_ + "(";
      for (size_t i = 0; i < args_->size(); ++i) {
        if (i > 0) out += ", ";
        out += (*args_)[i].ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace lyric
