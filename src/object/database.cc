#include "object/database.h"

#include <algorithm>

namespace lyric {

Status Database::Insert(const Oid& oid, const std::string& class_name) {
  if (!schema_.HasClass(class_name)) {
    return Status::NotFound("Insert: unknown class '" + class_name + "'");
  }
  if (objects_.count(oid)) {
    return Status::AlreadyExists("object " + oid.ToString() +
                                 " already exists");
  }
  objects_.emplace(oid, ObjectRecord{class_name, {}});
  return Status::OK();
}

Status Database::AddInstanceOf(const Oid& oid,
                               const std::string& class_name) {
  if (!schema_.HasClass(class_name)) {
    return Status::NotFound("AddInstanceOf: unknown class '" + class_name +
                            "'");
  }
  std::vector<std::string>& classes = extra_classes_[oid];
  if (std::find(classes.begin(), classes.end(), class_name) ==
      classes.end()) {
    classes.push_back(class_name);
  }
  return Status::OK();
}

Status Database::CheckValueAgainst(const AttributeDef& attr,
                                   const Value& value) const {
  if (attr.set_valued != value.is_set()) {
    return Status::TypeError(
        "attribute '" + attr.name + "' is " +
        (attr.set_valued ? "set-valued" : "scalar") + " but the value is " +
        (value.is_set() ? "a set" : "a scalar"));
  }
  std::string target = attr.target_class;
  if (attr.IsCst()) target = CstClassName(attr.variables.size());
  for (const Oid& e : value.elements()) {
    if (!InstanceOf(e, target)) {
      return Status::TypeError("value " + e.ToString() +
                               " is not an instance of '" + target +
                               "' required by attribute '" + attr.name + "'");
    }
  }
  return Status::OK();
}

Status Database::SetAttribute(const Oid& oid, const std::string& attr,
                              Value value) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("SetAttribute: no object " + oid.ToString());
  }
  LYRIC_ASSIGN_OR_RETURN(const AttributeDef* def,
                         schema_.FindAttribute(it->second.class_name, attr));
  LYRIC_RETURN_NOT_OK(CheckValueAgainst(*def, value));
  it->second.attrs[attr] = std::move(value);
  return Status::OK();
}

Result<Oid> Database::SetCstAttribute(const Oid& oid, const std::string& attr,
                                      const CstObject& value) {
  LYRIC_ASSIGN_OR_RETURN(Oid cst_oid, InternCst(value));
  LYRIC_RETURN_NOT_OK(SetAttribute(oid, attr, Value::Scalar(cst_oid)));
  return cst_oid;
}

Result<Value> Database::GetAttribute(const Oid& oid,
                                     const std::string& attr) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("GetAttribute: no object " + oid.ToString());
  }
  auto ait = it->second.attrs.find(attr);
  if (ait == it->second.attrs.end()) {
    return Status::NotFound("object " + oid.ToString() +
                            " has no value for attribute '" + attr + "'");
  }
  return ait->second;
}

Status Database::ClearAttribute(const Oid& oid, const std::string& attr) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("ClearAttribute: no object " + oid.ToString());
  }
  if (it->second.attrs.erase(attr) == 0) {
    return Status::NotFound("object " + oid.ToString() +
                            " has no value for attribute '" + attr + "'");
  }
  return Status::OK();
}

Status Database::DeleteObject(const Oid& oid, bool force) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("DeleteObject: no object " + oid.ToString());
  }
  // Find inbound references.
  std::vector<std::pair<Oid, std::string>> referrers;
  for (const auto& [other, rec] : objects_) {
    if (other == oid) continue;
    for (const auto& [attr, value] : rec.attrs) {
      for (const Oid& e : value.elements()) {
        if (e == oid) referrers.emplace_back(other, attr);
      }
    }
  }
  if (!referrers.empty() && !force) {
    return Status::InvalidArgument(
        "object " + oid.ToString() + " is still referenced by " +
        referrers[0].first.ToString() + "." + referrers[0].second +
        (referrers.size() > 1
             ? " and " + std::to_string(referrers.size() - 1) + " more"
             : "") +
        "; pass force to cascade");
  }
  for (const auto& [other, attr] : referrers) {
    ObjectRecord& rec = objects_.at(other);
    const Value& old = rec.attrs.at(attr);
    if (old.is_scalar()) {
      rec.attrs.erase(attr);
    } else {
      std::vector<Oid> kept;
      for (const Oid& e : old.elements()) {
        if (e != oid) kept.push_back(e);
      }
      rec.attrs[attr] = Value::Set(std::move(kept));
    }
  }
  objects_.erase(it);
  extra_classes_.erase(oid);
  return Status::OK();
}

Result<std::string> Database::ClassOf(const Oid& oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("ClassOf: no object " + oid.ToString());
  }
  return it->second.class_name;
}

Result<std::string> Database::DynamicClassOf(const Oid& oid) const {
  auto it = objects_.find(oid);
  if (it != objects_.end()) return it->second.class_name;
  switch (oid.kind()) {
    case OidKind::kInt:
      return std::string(kIntClass);
    case OidKind::kReal:
      return std::string(kRealClass);
    case OidKind::kString:
      return std::string(kStringClass);
    case OidKind::kBool:
      return std::string(kBoolClass);
    case OidKind::kCst: {
      LYRIC_ASSIGN_OR_RETURN(CstObject obj, GetCst(oid));
      return CstClassName(obj.Dimension());
    }
    default:
      break;
  }
  // Extra instance-of declarations give unmanaged oids a class too.
  auto eit = extra_classes_.find(oid);
  if (eit != extra_classes_.end() && !eit->second.empty()) {
    return eit->second.front();
  }
  return Status::NotFound("no class for oid " + oid.ToString());
}

Result<Value> Database::InvokeMethod(const Oid& self, const std::string& name,
                                     const std::vector<Oid>& args) {
  LYRIC_ASSIGN_OR_RETURN(std::string cls, DynamicClassOf(self));
  LYRIC_ASSIGN_OR_RETURN(const MethodEntry* entry,
                         methods_.Resolve(*this, cls, name, args));
  LYRIC_ASSIGN_OR_RETURN(Value out, entry->fn(this, self, args));
  // Check the result against the signature.
  if (out.is_set() != entry->signature.set_valued) {
    return Status::TypeError("method '" + name + "' returned a " +
                             (out.is_set() ? "set" : "scalar") +
                             " against its signature");
  }
  for (const Oid& e : out.elements()) {
    if (!InstanceOf(e, entry->signature.result_class)) {
      return Status::TypeError("method '" + name + "' returned " +
                               e.ToString() + ", not an instance of '" +
                               entry->signature.result_class + "'");
    }
  }
  return out;
}

Result<Oid> Database::InternCst(const CstObject& obj) {
  // CanonicalString runs outside the lock (it may call the simplex); only
  // the store insert is serialized.
  LYRIC_ASSIGN_OR_RETURN(std::string canonical, obj.CanonicalString());
  sync::MutexLock lock(*cst_mu_);
  auto it = cst_store_.find(canonical);
  if (it == cst_store_.end()) {
    cst_store_.emplace(canonical, obj);
  }
  return Oid::Cst(std::move(canonical));
}

Result<CstObject> Database::GetCst(const Oid& oid) const {
  if (!oid.IsCst()) {
    return Status::InvalidArgument("GetCst: " + oid.ToString() +
                                   " is not a CST oid");
  }
  sync::MutexLock lock(*cst_mu_);
  auto it = cst_store_.find(oid.AsString());
  if (it == cst_store_.end()) {
    return Status::NotFound("GetCst: unknown CST oid " + oid.ToString());
  }
  return it->second;
}

size_t Database::CstCount() const {
  sync::MutexLock lock(*cst_mu_);
  return cst_store_.size();
}

bool Database::InstanceOf(const Oid& oid,
                          const std::string& class_name) const {
  // Literal kinds.
  switch (oid.kind()) {
    case OidKind::kInt:
      if (class_name == kIntClass || class_name == kRealClass) return true;
      break;
    case OidKind::kReal:
      if (class_name == kRealClass) return true;
      break;
    case OidKind::kString:
      if (class_name == kStringClass) return true;
      break;
    case OidKind::kBool:
      if (class_name == kBoolClass) return true;
      break;
    case OidKind::kCst: {
      if (class_name == kCstClass) return true;
      auto dim = ParseCstClassName(class_name);
      if (dim.has_value()) {
        Result<CstObject> obj = GetCst(oid);
        if (obj.ok() && obj->Dimension() == *dim) return true;
      }
      break;
    }
    default:
      break;
  }
  auto it = objects_.find(oid);
  if (it != objects_.end() &&
      schema_.IsSubclass(it->second.class_name, class_name)) {
    return true;
  }
  auto eit = extra_classes_.find(oid);
  if (eit != extra_classes_.end()) {
    for (const std::string& cls : eit->second) {
      if (schema_.IsSubclass(cls, class_name)) return true;
    }
  }
  return false;
}

std::vector<Oid> Database::Extent(const std::string& class_name) const {
  std::vector<Oid> out;
  for (const auto& [oid, rec] : objects_) {
    if (schema_.IsSubclass(rec.class_name, class_name)) out.push_back(oid);
  }
  for (const auto& [oid, classes] : extra_classes_) {
    bool member = false;
    for (const std::string& cls : classes) {
      if (schema_.IsSubclass(cls, class_name)) member = true;
    }
    if (member && !objects_.count(oid)) out.push_back(oid);
  }
  // CST oids by dimension.
  auto dim = ParseCstClassName(class_name);
  if (dim.has_value() || class_name == kCstClass) {
    sync::MutexLock lock(*cst_mu_);
    for (const auto& [canonical, obj] : cst_store_) {
      if (!dim.has_value() || obj.Dimension() == *dim) {
        Oid oid = Oid::Cst(canonical);
        if (std::find(out.begin(), out.end(), oid) == out.end()) {
          out.push_back(oid);
        }
      }
    }
  }
  return out;
}

std::vector<Oid> Database::AllObjects() const {
  std::vector<Oid> out;
  out.reserve(objects_.size());
  for (const auto& [oid, rec] : objects_) {
    (void)rec;
    out.push_back(oid);
  }
  return out;
}

Status Database::CheckIntegrity() const {
  for (const auto& [oid, rec] : objects_) {
    for (const auto& [name, value] : rec.attrs) {
      LYRIC_ASSIGN_OR_RETURN(const AttributeDef* def,
                             schema_.FindAttribute(rec.class_name, name));
      Status st = CheckValueAgainst(*def, value);
      if (!st.ok()) {
        return Status(st.code(), "object " + oid.ToString() + ": " +
                                     st.message());
      }
      // Object-class targets must reference stored objects.
      if (!def->IsCst() && !Schema::IsPrimitive(def->target_class)) {
        for (const Oid& e : value.elements()) {
          if (!objects_.count(e) && !extra_classes_.count(e)) {
            return Status::NotFound("object " + oid.ToString() +
                                    " attribute '" + name +
                                    "' references missing object " +
                                    e.ToString());
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace lyric
