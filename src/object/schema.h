// The LyriC database schema: classes, IS-A, attribute signatures, and the
// variable-interface mechanism of §3.2.
//
// A class may declare an ordered *interface* of constraint variables
// (written `Drawer (x, y)` in Figure 1): the variables through which
// objects referencing an instance may constrain it. An attribute can be:
//
//   * a scalar/set attribute over an object class, optionally *renaming*
//     the target's interface (`drawer : (p, q)` invokes Drawer's (x, y)
//     interface as (p, q) in the referencing class's namespace);
//   * a CST attribute (`extent : CST(w, z)`) holding a constraint object
//     whose dimensions are bound to the listed schema variables — two
//     attributes listing the same variable are implicitly equated when
//     they meet inside one constraint formula of a query;
//   * a primitive attribute over `int`, `real`, `string`, or `bool`.

#ifndef LYRIC_OBJECT_SCHEMA_H_
#define LYRIC_OBJECT_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"

namespace lyric {

/// Built-in class names.
inline constexpr const char* kIntClass = "int";
inline constexpr const char* kRealClass = "real";
inline constexpr const char* kStringClass = "string";
inline constexpr const char* kBoolClass = "bool";
inline constexpr const char* kCstClass = "CST";

/// Returns "CST(n)" — the per-dimension CST class name.
std::string CstClassName(size_t dimension);
/// Parses "CST(n)"; nullopt if `name` is not of that form.
std::optional<size_t> ParseCstClassName(const std::string& name);

/// One attribute signature within a class.
struct AttributeDef {
  std::string name;
  /// Double arrow in the paper's signatures (set-valued) vs single arrow.
  bool set_valued = false;
  /// Target class: an object class, a primitive, or kCstClass.
  std::string target_class;
  /// For CST attributes: the schema variables bound to the object's
  /// dimensions, e.g. {"w","z"} for `extent : CST(w,z)`. For object-class
  /// targets: the interface renaming, e.g. {"p","q"} for `drawer : (p,q)`
  /// (empty = use the target class's own interface names).
  std::vector<std::string> variables;

  bool IsCst() const { return target_class == kCstClass; }
};

/// A class definition.
struct ClassDef {
  std::string name;
  /// The externally constrainable variable interface (may be empty).
  std::vector<std::string> interface_vars;
  /// Direct superclasses (IS-A).
  std::vector<std::string> parents;
  std::vector<AttributeDef> attributes;
};

/// The schema: a set of class definitions closed under IS-A.
class Schema {
 public:
  Schema();

  /// Registers a class. Validates: unique name, existing parents, acyclic
  /// IS-A (parents must already exist, so cycles are impossible), known
  /// attribute target classes, interface-renaming arity.
  Status AddClass(ClassDef def);

  bool HasClass(const std::string& name) const;
  /// The definition of `name` (built-ins included).
  Result<const ClassDef*> GetClass(const std::string& name) const;

  /// Reflexive-transitive IS-A test. "int" IS-A "real"; "CST(n)" IS-A
  /// "CST" for every n.
  bool IsSubclass(const std::string& sub, const std::string& super) const;

  /// Looks up `attr` on `class_name`, walking up the IS-A hierarchy
  /// (inheritance, §2.1).
  Result<const AttributeDef*> FindAttribute(const std::string& class_name,
                                            const std::string& attr) const;

  /// All attributes visible on a class (inherited included; an attribute
  /// redefined lower shadows the inherited one).
  Result<std::vector<const AttributeDef*>> AllAttributes(
      const std::string& class_name) const;

  /// Direct and transitive subclasses of `name` that are defined classes
  /// (used for extent computation).
  std::vector<std::string> SubclassesOf(const std::string& name) const;

  /// Every user-defined class name, in registration order.
  const std::vector<std::string>& ClassNames() const { return order_; }

  /// Is `name` one of the primitive classes?
  static bool IsPrimitive(const std::string& name);

 private:
  std::map<std::string, ClassDef> classes_;
  std::vector<std::string> order_;
};

}  // namespace lyric

#endif  // LYRIC_OBJECT_SCHEMA_H_
