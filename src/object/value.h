// Attribute values: a single oid (scalar attributes) or a set of oids
// (set-valued attributes, §2.1).

#ifndef LYRIC_OBJECT_VALUE_H_
#define LYRIC_OBJECT_VALUE_H_

#include <algorithm>
#include <string>
#include <vector>

#include "object/oid.h"

namespace lyric {

/// The value of an attribute on an object.
class Value {
 public:
  /// Constructs an empty set value.
  Value() : is_set_(true) {}

  static Value Scalar(Oid oid) {
    Value v;
    v.is_set_ = false;
    v.elems_ = {std::move(oid)};
    return v;
  }
  static Value Set(std::vector<Oid> oids) {
    Value v;
    v.is_set_ = true;
    std::sort(oids.begin(), oids.end());
    oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
    v.elems_ = std::move(oids);
    return v;
  }

  bool is_set() const { return is_set_; }
  bool is_scalar() const { return !is_set_; }
  /// The scalar oid; only valid when is_scalar().
  const Oid& scalar() const { return elems_[0]; }
  /// The member oids (a singleton for scalars).
  const std::vector<Oid>& elements() const { return elems_; }

  bool Contains(const Oid& oid) const {
    return std::binary_search(elems_.begin(), elems_.end(), oid) ||
           (!is_set_ && elems_[0] == oid);
  }

  bool operator==(const Value& o) const {
    return is_set_ == o.is_set_ && elems_ == o.elems_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

  std::string ToString() const {
    if (!is_set_) return elems_[0].ToString();
    std::string out = "{";
    for (size_t i = 0; i < elems_.size(); ++i) {
      if (i > 0) out += ", ";
      out += elems_[i].ToString();
    }
    return out + "}";
  }

 private:
  bool is_set_;
  std::vector<Oid> elems_;
};

}  // namespace lyric

#endif  // LYRIC_OBJECT_VALUE_H_
