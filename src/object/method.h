// Methods (§2.1): "A method, invoked in the scope of an object on a tuple
// of arguments, returns an answer, and, possibly, changes the state of
// that object. ... An attribute is regarded as a 0-ary method."
//
// Each method has one or more signatures
//
//     Mthd : Arg1, ..., Argk  =>  Result     (scalar)
//     Mthd : Arg1, ..., Argk  =>> Result     (set-valued)
//
// attached to a class; a method with several signatures is *polymorphic*
// and dispatch picks the first signature (walking the receiver's class
// and then its superclasses) whose argument classes admit the actual
// arguments. Implementations are C++ callables.
//
// Methods are deliberately kept out of the declarative query translation
// (§5 excludes them: "they provide unlimited computational power"), but
// 0-ary methods participate in path expressions exactly like attributes,
// and the CST superclasses ship with the polymorphic constraint
// operations §3 promises (dimension, satisfiable, conjoin, ...).

#ifndef LYRIC_OBJECT_METHOD_H_
#define LYRIC_OBJECT_METHOD_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "object/schema.h"
#include "object/value.h"

namespace lyric {

class Database;

/// A method implementation: receiver + arguments -> value. May read and
/// write the database (methods can change object state, §2.1).
using MethodFn = std::function<Result<Value>(Database* db, const Oid& self,
                                             const std::vector<Oid>& args)>;

/// One signature of a (possibly polymorphic) method.
struct MethodSignature {
  std::vector<std::string> arg_classes;
  std::string result_class;
  bool set_valued = false;
};

/// A registered method body under one signature.
struct MethodEntry {
  std::string class_name;
  std::string name;
  MethodSignature signature;
  MethodFn fn;
};

/// Per-database registry of methods, keyed by (class, name); resolution
/// walks the IS-A hierarchy and matches signatures against actual
/// argument classes.
class MethodRegistry {
 public:
  /// Registers a method body. Multiple registrations of the same name on
  /// the same class add polymorphic overloads (checked in order).
  Status Register(std::string class_name, std::string name,
                  MethodSignature signature, MethodFn fn);

  /// Resolves `name` for a receiver of `class_name` with the given actual
  /// argument oids; `db` supplies instance-of tests for the argument
  /// classes. NotFound when nothing matches.
  Result<const MethodEntry*> Resolve(const Database& db,
                                     const std::string& class_name,
                                     const std::string& name,
                                     const std::vector<Oid>& args) const;

  /// True if the class (or a superclass) defines any overload of `name`.
  bool Has(const Schema& schema, const std::string& class_name,
           const std::string& name) const;

  /// True if any class defines a method called `name` (used to keep
  /// method names from being mistaken for attribute variables).
  bool HasAnywhere(const std::string& name) const;

  /// All method names visible on a class, inherited included.
  std::vector<std::string> VisibleMethods(const Schema& schema,
                                          const std::string& class_name) const;

 private:
  // (class, name) -> overloads in registration order.
  std::map<std::pair<std::string, std::string>, std::vector<MethodEntry>>
      methods_;
};

/// Installs the built-in polymorphic CST methods on the CST superclass:
///   dimension()            => int
///   satisfiable()          => bool
///   bounded()              => bool       (every dimension has both bounds)
///   conjoin(CST)           => CST        (intersection, §1.1)
///   disjoin(CST)           => CST        (union)
///   entails(CST)           => bool       (containment = implication)
///   complement()           => CST        (conjunctive objects only)
Status RegisterBuiltinCstMethods(Database* db);

}  // namespace lyric

#endif  // LYRIC_OBJECT_METHOD_H_
