#include "object/method.h"

#include "object/database.h"

namespace lyric {

Status MethodRegistry::Register(std::string class_name, std::string name,
                                MethodSignature signature, MethodFn fn) {
  if (!fn) {
    return Status::InvalidArgument("method '" + name +
                                   "' registered without a body");
  }
  MethodEntry entry{class_name, name, std::move(signature), std::move(fn)};
  methods_[{std::move(class_name), std::move(name)}].push_back(
      std::move(entry));
  return Status::OK();
}

Result<const MethodEntry*> MethodRegistry::Resolve(
    const Database& db, const std::string& class_name,
    const std::string& name, const std::vector<Oid>& args) const {
  // Walk the receiver class, then its parents (breadth-first over IS-A).
  std::vector<std::string> frontier{class_name};
  std::set<std::string> seen;
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& cls : frontier) {
      if (!seen.insert(cls).second) continue;
      auto it = methods_.find({cls, name});
      if (it != methods_.end()) {
        for (const MethodEntry& entry : it->second) {
          if (entry.signature.arg_classes.size() != args.size()) continue;
          bool match = true;
          for (size_t i = 0; i < args.size(); ++i) {
            if (!db.InstanceOf(args[i], entry.signature.arg_classes[i])) {
              match = false;
              break;
            }
          }
          if (match) return &entry;
        }
      }
      Result<const ClassDef*> def = db.schema().GetClass(cls);
      if (def.ok()) {
        for (const std::string& p : (*def)->parents) next.push_back(p);
      }
      // CST(n) implicitly IS-A CST.
      if (ParseCstClassName(cls).has_value()) next.push_back(kCstClass);
      if (cls == kIntClass) next.push_back(kRealClass);
    }
    frontier = std::move(next);
  }
  return Status::NotFound("no method '" + name + "' on class '" +
                          class_name + "' matching " +
                          std::to_string(args.size()) + " argument(s)");
}

bool MethodRegistry::Has(const Schema& schema, const std::string& class_name,
                         const std::string& name) const {
  std::vector<std::string> frontier{class_name};
  std::set<std::string> seen;
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& cls : frontier) {
      if (!seen.insert(cls).second) continue;
      if (methods_.count({cls, name})) return true;
      Result<const ClassDef*> def = schema.GetClass(cls);
      if (def.ok()) {
        for (const std::string& p : (*def)->parents) next.push_back(p);
      }
      if (ParseCstClassName(cls).has_value()) next.push_back(kCstClass);
      if (cls == kIntClass) next.push_back(kRealClass);
    }
    frontier = std::move(next);
  }
  return false;
}

bool MethodRegistry::HasAnywhere(const std::string& name) const {
  for (const auto& [key, overloads] : methods_) {
    (void)overloads;
    if (key.second == name) return true;
  }
  return false;
}

std::vector<std::string> MethodRegistry::VisibleMethods(
    const Schema& schema, const std::string& class_name) const {
  std::vector<std::string> out;
  std::set<std::string> names;
  std::vector<std::string> frontier{class_name};
  std::set<std::string> seen;
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& cls : frontier) {
      if (!seen.insert(cls).second) continue;
      for (const auto& [key, overloads] : methods_) {
        (void)overloads;
        if (key.first == cls && names.insert(key.second).second) {
          out.push_back(key.second);
        }
      }
      Result<const ClassDef*> def = schema.GetClass(cls);
      if (def.ok()) {
        for (const std::string& p : (*def)->parents) next.push_back(p);
      }
      if (ParseCstClassName(cls).has_value()) next.push_back(kCstClass);
    }
    frontier = std::move(next);
  }
  return out;
}

namespace {

Result<CstObject> CstOf(Database* db, const Oid& oid) {
  return db->GetCst(oid);
}

}  // namespace

Status RegisterBuiltinCstMethods(Database* db) {
  MethodRegistry& reg = db->methods();

  LYRIC_RETURN_NOT_OK(reg.Register(
      kCstClass, "dimension", MethodSignature{{}, kIntClass, false},
      [](Database* d, const Oid& self, const std::vector<Oid>&)
          -> Result<Value> {
        LYRIC_ASSIGN_OR_RETURN(CstObject obj, CstOf(d, self));
        return Value::Scalar(Oid::Int(static_cast<int64_t>(obj.Dimension())));
      }));

  LYRIC_RETURN_NOT_OK(reg.Register(
      kCstClass, "satisfiable", MethodSignature{{}, kBoolClass, false},
      [](Database* d, const Oid& self, const std::vector<Oid>&)
          -> Result<Value> {
        LYRIC_ASSIGN_OR_RETURN(CstObject obj, CstOf(d, self));
        LYRIC_ASSIGN_OR_RETURN(bool sat, obj.Satisfiable());
        return Value::Scalar(Oid::Bool(sat));
      }));

  LYRIC_RETURN_NOT_OK(reg.Register(
      kCstClass, "bounded", MethodSignature{{}, kBoolClass, false},
      [](Database* d, const Oid& self, const std::vector<Oid>&)
          -> Result<Value> {
        LYRIC_ASSIGN_OR_RETURN(CstObject obj, CstOf(d, self));
        LYRIC_ASSIGN_OR_RETURN(bool sat, obj.Satisfiable());
        if (!sat) return Value::Scalar(Oid::Bool(true));
        LYRIC_ASSIGN_OR_RETURN(auto box, obj.BoundingBox());
        for (const CstObject::Interval& iv : box) {
          if (!iv.lower.has_value() || !iv.upper.has_value()) {
            return Value::Scalar(Oid::Bool(false));
          }
        }
        return Value::Scalar(Oid::Bool(true));
      }));

  LYRIC_RETURN_NOT_OK(reg.Register(
      kCstClass, "conjoin", MethodSignature{{kCstClass}, kCstClass, false},
      [](Database* d, const Oid& self, const std::vector<Oid>& args)
          -> Result<Value> {
        LYRIC_ASSIGN_OR_RETURN(CstObject a, CstOf(d, self));
        LYRIC_ASSIGN_OR_RETURN(CstObject b, CstOf(d, args[0]));
        // Positional identification of dimensions.
        LYRIC_ASSIGN_OR_RETURN(CstObject aligned, b.RenameTo(a.Interface()));
        LYRIC_ASSIGN_OR_RETURN(CstObject out, a.Conjoin(aligned));
        LYRIC_ASSIGN_OR_RETURN(Oid oid, d->InternCst(out));
        return Value::Scalar(std::move(oid));
      }));

  LYRIC_RETURN_NOT_OK(reg.Register(
      kCstClass, "disjoin", MethodSignature{{kCstClass}, kCstClass, false},
      [](Database* d, const Oid& self, const std::vector<Oid>& args)
          -> Result<Value> {
        LYRIC_ASSIGN_OR_RETURN(CstObject a, CstOf(d, self));
        LYRIC_ASSIGN_OR_RETURN(CstObject b, CstOf(d, args[0]));
        LYRIC_ASSIGN_OR_RETURN(CstObject aligned, b.RenameTo(a.Interface()));
        LYRIC_ASSIGN_OR_RETURN(CstObject out, a.Disjoin(aligned));
        LYRIC_ASSIGN_OR_RETURN(Oid oid, d->InternCst(out));
        return Value::Scalar(std::move(oid));
      }));

  LYRIC_RETURN_NOT_OK(reg.Register(
      kCstClass, "entails", MethodSignature{{kCstClass}, kBoolClass, false},
      [](Database* d, const Oid& self, const std::vector<Oid>& args)
          -> Result<Value> {
        LYRIC_ASSIGN_OR_RETURN(CstObject a, CstOf(d, self));
        LYRIC_ASSIGN_OR_RETURN(CstObject b, CstOf(d, args[0]));
        LYRIC_ASSIGN_OR_RETURN(bool holds, a.Entails(b));
        return Value::Scalar(Oid::Bool(holds));
      }));

  LYRIC_RETURN_NOT_OK(reg.Register(
      kCstClass, "complement", MethodSignature{{}, kCstClass, false},
      [](Database* d, const Oid& self, const std::vector<Oid>&)
          -> Result<Value> {
        LYRIC_ASSIGN_OR_RETURN(CstObject obj, CstOf(d, self));
        LYRIC_ASSIGN_OR_RETURN(CstObject out, obj.Negate());
        LYRIC_ASSIGN_OR_RETURN(Oid oid, d->InternCst(out));
        return Value::Scalar(std::move(oid));
      }));

  return Status::OK();
}

}  // namespace lyric
