// The constraint object base: class extents, attribute storage, and the
// CST store.
//
// Following the model theory of §3.2, a database is a general structure:
// a mapping from oids to classes and attribute values, plus the mapping
// from CST oids to the point sets they denote. The CST store interns
// constraint objects by canonical form, so two attribute writes of
// equivalent-up-to-canonical-form constraints share one oid.

#ifndef LYRIC_OBJECT_DATABASE_H_
#define LYRIC_OBJECT_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "constraint/cst_object.h"
#include "object/method.h"
#include "object/schema.h"
#include "object/value.h"
#include "util/sync.h"

namespace lyric {

/// A stored object: its class and attribute values.
struct ObjectRecord {
  std::string class_name;
  std::map<std::string, Value> attrs;
};

/// An object-oriented constraint database instance over a Schema.
class Database {
 public:
  Database() = default;

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  MethodRegistry& methods() { return methods_; }
  const MethodRegistry& methods() const { return methods_; }

  /// Resolves and invokes a method on `self` (polymorphic dispatch over
  /// the receiver's class and argument classes, §2.1), checking the
  /// result against the matched signature.
  Result<Value> InvokeMethod(const Oid& self, const std::string& name,
                             const std::vector<Oid>& args);

  /// The dynamic class of any oid: stored objects report their class,
  /// literals their primitive class, CST oids "CST(n)". NotFound for
  /// unmanaged symbols.
  Result<std::string> DynamicClassOf(const Oid& oid) const;

  /// Creates an object of `class_name` identified by `oid`.
  Status Insert(const Oid& oid, const std::string& class_name);

  /// Declares `oid` (typically a CST oid) an instance of an additional
  /// class — the mechanism behind CREATE VIEW ... AS SUBCLASS and behind
  /// user CST subclasses such as Region <= CST(2).
  Status AddInstanceOf(const Oid& oid, const std::string& class_name);

  /// Sets an attribute value, checking the signature: the attribute must
  /// exist on the object's class, scalar/set-ness must match, and every
  /// element must be an instance of the target class (CST attributes
  /// additionally check dimension).
  Status SetAttribute(const Oid& oid, const std::string& attr, Value value);

  /// Convenience: stores a CST object into a CST attribute (interning it
  /// first) and returns its oid.
  Result<Oid> SetCstAttribute(const Oid& oid, const std::string& attr,
                              const CstObject& value);

  Result<Value> GetAttribute(const Oid& oid, const std::string& attr) const;

  /// Removes an attribute value ("there is no reason that moving a desk
  /// would be limited in any way" — §6 on fully general CST updates).
  Status ClearAttribute(const Oid& oid, const std::string& attr);

  /// Deletes an object. Fails with InvalidArgument when another object
  /// still references it through an attribute, unless `force` (then the
  /// referencing attribute values are cleared).
  Status DeleteObject(const Oid& oid, bool force = false);
  bool HasObject(const Oid& oid) const { return objects_.count(oid) > 0; }
  Result<std::string> ClassOf(const Oid& oid) const;

  /// Interns a CST object by canonical form and returns its oid.
  /// Thread-safe, and order-independent: the oid IS the canonical form, so
  /// concurrent interleavings produce identical oids and an identical
  /// store (the parallel evaluator's workers intern freely).
  Result<Oid> InternCst(const CstObject& obj) LYRIC_EXCLUDES(*cst_mu_);
  /// The CST object denoted by a CST oid. Thread-safe against InternCst.
  Result<CstObject> GetCst(const Oid& oid) const LYRIC_EXCLUDES(*cst_mu_);

  /// Is `oid` an instance of `class_name`? Covers literals (20 : int),
  /// CST oids (dimension n : CST(n) : CST), stored objects (via IS-A),
  /// and extra instance-of declarations.
  bool InstanceOf(const Oid& oid, const std::string& class_name) const;

  /// All objects whose class IS-A `class_name` (the class extent),
  /// including extra instance-of declarations; deterministic order.
  std::vector<Oid> Extent(const std::string& class_name) const;

  /// All stored oids in deterministic order.
  std::vector<Oid> AllObjects() const;

  /// Read access to the full object store (serialization, debugging).
  const std::map<Oid, ObjectRecord>& objects() const { return objects_; }
  /// Read access to the extra instance-of facts.
  const std::map<Oid, std::vector<std::string>>& extra_instance_of() const {
    return extra_classes_;
  }

  size_t ObjectCount() const { return objects_.size(); }
  size_t CstCount() const LYRIC_EXCLUDES(*cst_mu_);

  /// Full integrity sweep: every stored attribute conforms to its
  /// signature, every referenced oid exists where the signature demands
  /// an object class. Returns the first violation.
  Status CheckIntegrity() const;

 private:
  Status CheckValueAgainst(const AttributeDef& attr, const Value& value) const;

  Schema schema_;
  MethodRegistry methods_;
  std::map<Oid, ObjectRecord> objects_;
  // Guards cst_store_ only: CST interning is the one database write the
  // parallel evaluator's workers perform (via SELECT construction and the
  // builtin CST methods); every other mutation stays on the merge thread.
  // Held by pointer so Database remains movable (sync::Mutex, like
  // std::mutex, is not).
  std::unique_ptr<sync::Mutex> cst_mu_ =
      std::make_unique<sync::Mutex>(sync::LockRank::kCstStore, "cst_store");
  std::map<std::string, CstObject> cst_store_
      LYRIC_GUARDED_BY(*cst_mu_);  // canonical -> object
  // Extra instance-of facts (oid may appear for several classes).
  std::map<Oid, std::vector<std::string>> extra_classes_;
};

}  // namespace lyric

#endif  // LYRIC_OBJECT_DATABASE_H_
