#include "query/result_set.h"

#include <algorithm>

namespace lyric {

void ResultSet::AddRow(std::vector<Oid> row) {
  for (const std::vector<Oid>& existing : rows_) {
    if (existing == row) return;
  }
  rows_.push_back(std::move(row));
}

bool ResultSet::ContainsOid(const Oid& oid) const {
  for (const std::vector<Oid>& row : rows_) {
    if (!row.empty() && row[0] == oid) return true;
  }
  return false;
}

std::vector<Oid> ResultSet::Column(size_t idx) const {
  std::vector<Oid> out;
  for (const std::vector<Oid>& row : rows_) {
    if (idx < row.size()) out.push_back(row[idx]);
  }
  return out;
}

std::string ResultSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns_[i];
  }
  out += "\n";
  for (const std::vector<Oid>& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  out += "(" + std::to_string(rows_.size()) + " row" +
         (rows_.size() == 1 ? "" : "s") + ")";
  if (!governor_status_.ok()) {
    out += "\n-- PARTIAL: " + governor_status_.ToString();
    out += "\n-- " + governor_report_.ToString();
  }
  return out;
}

}  // namespace lyric
