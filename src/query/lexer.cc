#include "query/lexer.h"

#include <cctype>
#include <map>

#include "util/string_util.h"

namespace lyric {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kSelect: return "SELECT";
    case TokenKind::kFrom: return "FROM";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kCreate: return "CREATE";
    case TokenKind::kView: return "VIEW";
    case TokenKind::kAs: return "AS";
    case TokenKind::kSubclass: return "SUBCLASS";
    case TokenKind::kOf: return "OF";
    case TokenKind::kOid: return "OID";
    case TokenKind::kFunction: return "FUNCTION";
    case TokenKind::kSignature: return "SIGNATURE";
    case TokenKind::kMax: return "MAX";
    case TokenKind::kMin: return "MIN";
    case TokenKind::kMaxPoint: return "MAX_POINT";
    case TokenKind::kMinPoint: return "MIN_POINT";
    case TokenKind::kSubject: return "SUBJECT";
    case TokenKind::kTo: return "TO";
    case TokenKind::kSat: return "SAT";
    case TokenKind::kContains: return "CONTAINS";
    case TokenKind::kTrue: return "TRUE";
    case TokenKind::kFalse: return "FALSE";
    case TokenKind::kExists: return "EXISTS";
    case TokenKind::kDot: return ".";
    case TokenKind::kComma: return ",";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kBar: return "|";
    case TokenKind::kEq: return "=";
    case TokenKind::kNeq: return "!=";
    case TokenKind::kLe: return "<=";
    case TokenKind::kLt: return "<";
    case TokenKind::kGe: return ">=";
    case TokenKind::kGt: return ">";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kEntails: return "|=";
    case TokenKind::kArrow: return "=>";
    case TokenKind::kDArrow: return "=>>";
    case TokenKind::kAssign: return ":=";
    case TokenKind::kSemicolon: return ";";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenKind>& Keywords() {
  static const std::map<std::string, TokenKind>* kw =
      new std::map<std::string, TokenKind>{
          {"select", TokenKind::kSelect},
          {"from", TokenKind::kFrom},
          {"where", TokenKind::kWhere},
          {"and", TokenKind::kAnd},
          {"or", TokenKind::kOr},
          {"not", TokenKind::kNot},
          {"create", TokenKind::kCreate},
          {"view", TokenKind::kView},
          {"as", TokenKind::kAs},
          {"subclass", TokenKind::kSubclass},
          {"of", TokenKind::kOf},
          {"oid", TokenKind::kOid},
          {"function", TokenKind::kFunction},
          {"signature", TokenKind::kSignature},
          {"max", TokenKind::kMax},
          {"min", TokenKind::kMin},
          {"max_point", TokenKind::kMaxPoint},
          {"min_point", TokenKind::kMinPoint},
          {"subject", TokenKind::kSubject},
          {"to", TokenKind::kTo},
          {"sat", TokenKind::kSat},
          {"contains", TokenKind::kContains},
          {"true", TokenKind::kTrue},
          {"false", TokenKind::kFalse},
          {"exists", TokenKind::kExists},
      };
  return *kw;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& text) {
  return Lex(text, nullptr);
}

Result<std::vector<Token>> Lex(const std::string& text,
                               size_t* error_offset) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  auto push = [&](TokenKind kind, size_t offset, std::string t = "") {
    Token tok;
    tok.kind = kind;
    tok.text = std::move(t);
    tok.offset = offset;
    out.push_back(std::move(tok));
  };
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comment: -- to end of line.
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '@') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_' || text[j] == '@' || text[j] == '#')) {
        ++j;
      }
      std::string word = text.substr(i, j - i);
      auto kw = Keywords().find(ToLower(word));
      if (kw != Keywords().end()) {
        push(kw->second, start, word);
      } else {
        push(TokenKind::kIdent, start, word);
      }
      i = j;
      continue;
    }
    // Numbers: 42, 2.5 (no leading sign; '-' is an operator).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool has_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(text[j])) ||
                       (text[j] == '.' && !has_dot && j + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(
                            text[j + 1]))))) {
        if (text[j] == '.') has_dot = true;
        ++j;
      }
      std::string num = text.substr(i, j - i);
      LYRIC_ASSIGN_OR_RETURN(Rational value, Rational::FromString(num));
      Token tok;
      tok.kind = TokenKind::kNumber;
      tok.text = num;
      tok.number = std::move(value);
      tok.offset = start;
      out.push_back(std::move(tok));
      i = j;
      continue;
    }
    // Strings: 'red' with '' as the escaped quote.
    if (c == '\'') {
      std::string payload;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (text[j] == '\'') {
          if (j + 1 < n && text[j + 1] == '\'') {
            payload.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        payload.push_back(text[j]);
        ++j;
      }
      if (!closed) {
        if (error_offset != nullptr) *error_offset = start;
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenKind::kString, start, payload);
      i = j;
      continue;
    }
    // Multi-character operators first.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && text[i + 1] == b;
    };
    if (two('|', '=')) { push(TokenKind::kEntails, start); i += 2; continue; }
    if (two('<', '=')) { push(TokenKind::kLe, start); i += 2; continue; }
    if (two('>', '=')) { push(TokenKind::kGe, start); i += 2; continue; }
    if (two('!', '=')) { push(TokenKind::kNeq, start); i += 2; continue; }
    if (two('<', '>')) { push(TokenKind::kNeq, start); i += 2; continue; }
    if (two(':', '=')) { push(TokenKind::kAssign, start); i += 2; continue; }
    if (two('=', '>')) {
      if (i + 2 < n && text[i + 2] == '>') {
        push(TokenKind::kDArrow, start);
        i += 3;
      } else {
        push(TokenKind::kArrow, start);
        i += 2;
      }
      continue;
    }
    switch (c) {
      case '.': push(TokenKind::kDot, start); break;
      case ',': push(TokenKind::kComma, start); break;
      case '(': push(TokenKind::kLParen, start); break;
      case ')': push(TokenKind::kRParen, start); break;
      case '[': push(TokenKind::kLBracket, start); break;
      case ']': push(TokenKind::kRBracket, start); break;
      case '|': push(TokenKind::kBar, start); break;
      case '=': push(TokenKind::kEq, start); break;
      case '<': push(TokenKind::kLt, start); break;
      case '>': push(TokenKind::kGt, start); break;
      case '+': push(TokenKind::kPlus, start); break;
      case '-': push(TokenKind::kMinus, start); break;
      case '*': push(TokenKind::kStar, start); break;
      case '/': push(TokenKind::kSlash, start); break;
      case ';': push(TokenKind::kSemicolon, start); break;
      default:
        if (error_offset != nullptr) *error_offset = start;
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
    ++i;
  }
  push(TokenKind::kEnd, n);
  return out;
}

}  // namespace lyric
