#include "query/formula_builder.h"

#include "exec/governor.h"
#include "query/path_walker.h"

namespace lyric {

Result<LinearExpr> FormulaBuilder::BuildArith(const ast::ArithExpr& expr,
                                              const Binding& binding) const {
  using Kind = ast::ArithExpr::Kind;
  switch (expr.kind) {
    case Kind::kConst:
      return LinearExpr::Constant(expr.constant);
    case Kind::kName: {
      // A bound query variable denotes its (numeric) oid; any other name
      // is a constraint variable.
      auto it = binding.vars.find(expr.name);
      if (declared_->count(expr.name) && it != binding.vars.end()) {
        if (!it->second.IsNumeric()) {
          return Status::TypeError(
              "query variable '" + expr.name +
              "' used in an arithmetic expression is bound to " +
              it->second.ToString() + ", not a number");
        }
        return LinearExpr::Constant(it->second.AsNumeric());
      }
      if (declared_->count(expr.name)) {
        return Status::InvalidArgument(
            "query variable '" + expr.name +
            "' is unbound inside an arithmetic expression");
      }
      return LinearExpr::Var(Variable::Intern(expr.name));
    }
    case Kind::kPath: {
      LYRIC_ASSIGN_OR_RETURN(
          std::vector<PathResult> results,
          WalkPath(*expr.path, binding, *db_, *declared_));
      if (results.empty()) {
        return Status::NotFound("path " + expr.path->ToString() +
                                " has no value under the current binding");
      }
      const Oid& tail = results[0].tail;
      for (const PathResult& r : results) {
        if (r.tail != tail) {
          return Status::TypeError("path " + expr.path->ToString() +
                                   " is not single-valued in an arithmetic "
                                   "expression");
        }
      }
      if (!tail.IsNumeric()) {
        return Status::TypeError("path " + expr.path->ToString() +
                                 " denotes " + tail.ToString() +
                                 ", not a number");
      }
      return LinearExpr::Constant(tail.AsNumeric());
    }
    case Kind::kNeg: {
      LYRIC_ASSIGN_OR_RETURN(LinearExpr e, BuildArith(*expr.lhs, binding));
      return -e;
    }
    case Kind::kAdd:
    case Kind::kSub: {
      LYRIC_ASSIGN_OR_RETURN(LinearExpr a, BuildArith(*expr.lhs, binding));
      LYRIC_ASSIGN_OR_RETURN(LinearExpr b, BuildArith(*expr.rhs, binding));
      return expr.kind == Kind::kAdd ? a + b : a - b;
    }
    case Kind::kMul: {
      LYRIC_ASSIGN_OR_RETURN(LinearExpr a, BuildArith(*expr.lhs, binding));
      LYRIC_ASSIGN_OR_RETURN(LinearExpr b, BuildArith(*expr.rhs, binding));
      // Pseudo-linearity (§4.2): one factor must be constant.
      if (a.IsConstant()) return b.Scale(a.constant());
      if (b.IsConstant()) return a.Scale(b.constant());
      return Status::TypeError(
          "non-linear product in formula: (" + expr.lhs->ToString() +
          ") * (" + expr.rhs->ToString() + ")");
    }
    case Kind::kDiv: {
      LYRIC_ASSIGN_OR_RETURN(LinearExpr a, BuildArith(*expr.lhs, binding));
      LYRIC_ASSIGN_OR_RETURN(LinearExpr b, BuildArith(*expr.rhs, binding));
      if (!b.IsConstant()) {
        return Status::TypeError("division by a non-constant in formula: " +
                                 expr.rhs->ToString());
      }
      if (b.constant().IsZero()) {
        return Status::ArithmeticError("division by zero in formula");
      }
      return a.Scale(b.constant().Inverse());
    }
  }
  return Status::Internal("bad arith node");
}

Result<DisjunctiveExistential> FormulaBuilder::BuildPred(
    const ast::Formula& formula, const Binding& binding,
    IdentityUses* ids) const {
  // Resolve the predicate to a CST oid plus dimension info.
  Oid cst_oid;
  std::vector<DimInfo> dims;
  const ast::PathExpr& pred = *formula.pred;
  bool resolved = false;
  if (pred.steps.empty() &&
      pred.head.kind == ast::NameOrLiteral::Kind::kName &&
      declared_->count(pred.head.name)) {
    auto it = binding.vars.find(pred.head.name);
    if (it == binding.vars.end()) {
      return Status::InvalidArgument("CST variable '" + pred.head.name +
                                     "' is unbound in formula");
    }
    cst_oid = it->second;
    auto dit = binding.cst_dims.find(pred.head.name);
    if (dit != binding.cst_dims.end()) dims = dit->second;
    resolved = true;
  }
  if (!resolved) {
    LYRIC_ASSIGN_OR_RETURN(std::vector<PathResult> results,
                           WalkPath(pred, binding, *db_, *declared_));
    if (results.empty()) {
      return Status::NotFound("CST predicate path " + pred.ToString() +
                              " has no value under the current binding");
    }
    cst_oid = results[0].tail;
    dims = results[0].tail_dims;
    for (const PathResult& r : results) {
      if (r.tail != cst_oid) {
        return Status::TypeError(
            "CST predicate path " + pred.ToString() +
            " is set-valued; select one value with a bracket variable");
      }
    }
  }
  if (!cst_oid.IsCst()) {
    return Status::TypeError("predicate " + pred.ToString() +
                             " denotes " + cst_oid.ToString() +
                             ", which is not a CST object");
  }
  LYRIC_ASSIGN_OR_RETURN(CstObject obj, db_->GetCst(cst_oid));

  // Determine the dimension variable names.
  std::vector<std::string> names;
  if (formula.pred_args.has_value()) {
    if (formula.pred_args->size() != obj.Dimension()) {
      return Status::TypeError(
          "predicate " + pred.ToString() + " has dimension " +
          std::to_string(obj.Dimension()) + " but was invoked with " +
          std::to_string(formula.pred_args->size()) + " variables");
    }
    names = *formula.pred_args;
  } else {
    if (dims.size() != obj.Dimension()) {
      return Status::TypeError(
          "bare predicate use " + pred.ToString() +
          " has no schema variable names; invoke it with explicit "
          "variables O(x1, ..., xn)");
    }
    for (const DimInfo& d : dims) names.push_back(d.display);
  }
  // Record identity uses for the implicit equalities.
  for (size_t i = 0; i < dims.size() && i < names.size(); ++i) {
    ids->uses[dims[i].identity].insert(names[i]);
  }
  std::vector<VarId> target;
  target.reserve(names.size());
  for (const std::string& n : names) target.push_back(Variable::Intern(n));
  // Duplicate names in an invocation (e.g. O(x, x)) mean equality of the
  // two dimensions: rename through fresh variables and equate.
  {
    std::set<VarId> seen;
    std::vector<std::pair<VarId, VarId>> dup_eq;
    for (VarId& v : target) {
      if (!seen.insert(v).second) {
        VarId fresh = Variable::Fresh(Variable::Name(v));
        dup_eq.emplace_back(v, fresh);
        v = fresh;
      }
    }
    LYRIC_ASSIGN_OR_RETURN(CstObject renamed, obj.RenameTo(target));
    DisjunctiveExistential body = renamed.Body();
    if (!dup_eq.empty()) {
      Conjunction eqs;
      for (const auto& [orig, fresh] : dup_eq) {
        eqs.Add(LinearConstraint::Eq(LinearExpr::Var(orig),
                                     LinearExpr::Var(fresh)));
      }
      body = body.And(DisjunctiveExistential::FromConjunction(eqs));
    }
    return body;
  }
}

Result<DisjunctiveExistential> FormulaBuilder::BuildNode(
    const ast::Formula& formula, const Binding& binding,
    IdentityUses* ids) const {
  using Kind = ast::Formula::Kind;
  switch (formula.kind) {
    case Kind::kTrue:
      return DisjunctiveExistential::True();
    case Kind::kFalse:
      return DisjunctiveExistential::False();
    case Kind::kAtom: {
      LYRIC_ASSIGN_OR_RETURN(LinearExpr lhs,
                             BuildArith(*formula.atom_lhs, binding));
      LYRIC_ASSIGN_OR_RETURN(LinearExpr rhs,
                             BuildArith(*formula.atom_rhs, binding));
      LinearConstraint atom = [&] {
        if (formula.relop == "=") return LinearConstraint::Eq(lhs, rhs);
        if (formula.relop == "!=") return LinearConstraint::Neq(lhs, rhs);
        if (formula.relop == "<=") return LinearConstraint::Le(lhs, rhs);
        if (formula.relop == "<") return LinearConstraint::Lt(lhs, rhs);
        if (formula.relop == ">=") return LinearConstraint::Ge(lhs, rhs);
        return LinearConstraint::Gt(lhs, rhs);
      }();
      Conjunction c;
      c.Add(atom);
      return DisjunctiveExistential::FromConjunction(std::move(c));
    }
    case Kind::kAnd: {
      DisjunctiveExistential out = DisjunctiveExistential::True();
      for (const auto& child : formula.children) {
        LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential c,
                               BuildNode(*child, binding, ids));
        out = out.And(c);
      }
      return out;
    }
    case Kind::kOr: {
      DisjunctiveExistential out = DisjunctiveExistential::False();
      for (const auto& child : formula.children) {
        LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential c,
                               BuildNode(*child, binding, ids));
        out = out.Or(c);
      }
      return out;
    }
    case Kind::kNot: {
      LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential operand,
                             BuildNode(*formula.children[0], binding, ids));
      // §3.1 negates conjunctive constraints only.
      if (operand.IsFalse()) return DisjunctiveExistential::True();
      if (operand.size() != 1 || !operand.disjuncts()[0].bound().empty()) {
        return Status::TypeError(
            "NOT applies to conjunctive constraints only (operand is " +
            operand.ToString() + ")");
      }
      Dnf negated = Dnf::NegateConjunction(operand.disjuncts()[0].body());
      return DisjunctiveExistential::FromDnf(negated);
    }
    case Kind::kPred:
      return BuildPred(formula, binding, ids);
    case Kind::kProject: {
      IdentityUses inner;
      LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential body,
                             BuildNode(*formula.children[0], binding,
                                       &inner));
      body = ApplyIdentityEqualities(std::move(body), inner);
      VarSet keep;
      for (const std::string& v : formula.proj_vars) {
        keep.insert(Variable::Intern(v));
      }
      return body.Project(keep);
    }
    case Kind::kExists: {
      IdentityUses inner;
      LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential body,
                             BuildNode(*formula.children[0], binding,
                                       &inner));
      body = ApplyIdentityEqualities(std::move(body), inner);
      // Keep everything except the listed variables.
      VarSet bound;
      for (const std::string& v : formula.proj_vars) {
        bound.insert(Variable::Intern(v));
      }
      VarSet keep;
      for (VarId v : body.FreeVars()) {
        if (!bound.count(v)) keep.insert(v);
      }
      return body.Project(keep);
    }
  }
  return Status::Internal("bad formula node");
}

DisjunctiveExistential FormulaBuilder::ApplyIdentityEqualities(
    DisjunctiveExistential de, const IdentityUses& ids) {
  Conjunction eqs;
  for (const auto& [identity, names] : ids.uses) {
    (void)identity;
    if (names.size() < 2) continue;
    auto it = names.begin();
    VarId first = Variable::Intern(*it);
    for (++it; it != names.end(); ++it) {
      eqs.Add(LinearConstraint::Eq(LinearExpr::Var(first),
                                   LinearExpr::Var(Variable::Intern(*it))));
    }
  }
  if (eqs.IsTrue()) return de;
  return de.And(DisjunctiveExistential::FromConjunction(eqs));
}

Result<DisjunctiveExistential> FormulaBuilder::Build(
    const ast::Formula& formula, const Binding& binding) const {
  IdentityUses ids;
  LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential out,
                         BuildNode(formula, binding, &ids));
  out = ApplyIdentityEqualities(std::move(out), ids);
  // Building a formula DNF-expands ANDs of ORs (the non-Result Dnf::And
  // product); a governed build that tripped max_disjuncts truncated that
  // expansion, so surface the trip before the formula escapes.
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("formula_builder.build"));
  return out;
}

Result<CstObject> FormulaBuilder::BuildProjectionObject(
    const ast::Formula& formula, const Binding& binding, bool eager) const {
  if (formula.kind != ast::Formula::Kind::kProject) {
    return Status::TypeError(
        "a SELECT constraint item must be a projection ((x1,..,xn) | phi)");
  }
  IdentityUses ids;
  LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential body,
                         BuildNode(*formula.children[0], binding, &ids));
  body = ApplyIdentityEqualities(std::move(body), ids);
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("formula_builder.projection"));
  std::vector<VarId> interface_vars;
  for (const std::string& v : formula.proj_vars) {
    interface_vars.push_back(Variable::Intern(v));
  }
  VarSet keep(interface_vars.begin(), interface_vars.end());
  if (eager) {
    // Materialize the projection the way the paper prints its results.
    DisjunctiveExistential projected = body.Project(keep);
    LYRIC_ASSIGN_OR_RETURN(Dnf dnf, projected.ToDnf());
    LYRIC_ASSIGN_OR_RETURN(Dnf simplified,
                           Canonical::Simplify(dnf, CanonicalLevel::kCheap));
    return CstObject::FromDnf(interface_vars, simplified);
  }
  return CstObject::Make(interface_vars, body.Project(keep));
}

}  // namespace lyric
