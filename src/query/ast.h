// Abstract syntax of LyriC queries (§4.2 on top of the XSQL core of §2.2).
//
// A query is
//
//   [CREATE VIEW name AS SUBCLASS OF parent [SIGNATURE a => C, b =>> D]]
//   SELECT item, ...
//   FROM Class Var, ...
//   [OID FUNCTION OF Var, ...]
//   [WHERE condition]
//
// Select items are path expressions, projection formulas
// ((x1,..,xn) | phi) creating new CST objects, or optimization operators
// MAX/MIN/MAX_POINT/MIN_POINT(f SUBJECT TO ((x..) | phi)). WHERE
// conditions combine path-expression predicates, comparisons, the
// satisfiability predicate SAT(phi) (the paper writes a bare
// parenthesized formula), and the entailment predicate phi |= psi.

#ifndef LYRIC_QUERY_AST_H_
#define LYRIC_QUERY_AST_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "object/oid.h"

namespace lyric {
namespace ast {

/// An identifier whose meaning (query variable vs. symbolic oid vs.
/// attribute name) the analyzer resolves, or an already-lexed literal.
struct NameOrLiteral {
  enum class Kind { kName, kLiteral };
  Kind kind = Kind::kName;
  std::string name;
  Oid literal;
  size_t offset = 0;  // Byte offset of the token in the query text.

  static NameOrLiteral Name(std::string n) {
    NameOrLiteral out;
    out.kind = Kind::kName;
    out.name = std::move(n);
    return out;
  }
  static NameOrLiteral Lit(Oid oid) {
    NameOrLiteral out;
    out.kind = Kind::kLiteral;
    out.literal = std::move(oid);
    return out;
  }
};

/// selector0.Attr1[sel1].Attr2[sel2]... (§2.2). The head is a g-selector
/// (oid) or a v-selector (variable); each step names an attribute (or an
/// attribute variable) with an optional selector binding the object at
/// that position.
struct PathExpr {
  NameOrLiteral head;
  struct Step {
    std::string attribute;  // Attribute name or attribute variable.
    std::optional<NameOrLiteral> selector;
    size_t offset = 0;  // Byte offset of the attribute token.
  };
  std::vector<Step> steps;
  size_t offset = 0;  // Byte offset of the head token.

  std::string ToString() const;
};

/// Pseudo-linear arithmetic expressions (§4.2): constants, constraint
/// variables, path expressions denoting numbers, and +,-,*,/ where the
/// formula is linear once paths are instantiated.
struct ArithExpr {
  enum class Kind { kConst, kName, kPath, kAdd, kSub, kMul, kDiv, kNeg };
  Kind kind = Kind::kConst;
  Rational constant;                 // kConst
  std::string name;                  // kName (constraint or query variable)
  std::unique_ptr<PathExpr> path;    // kPath
  std::unique_ptr<ArithExpr> lhs;
  std::unique_ptr<ArithExpr> rhs;    // Unused for kNeg.
  size_t offset = 0;  // Byte offset of the expression's first token.

  std::string ToString() const;
};

/// CST formulas: atoms, boolean structure, CST-object predicate uses, and
/// the projection connector.
struct Formula {
  enum class Kind {
    kAtom, kAnd, kOr, kNot, kPred, kProject, kTrue, kFalse,
    kExists,  // exists v1, v2 . (phi) — dual of kProject: lists the
              // quantified variables instead of the kept ones.
  };
  Kind kind = Kind::kTrue;

  // kAtom: lhs relop rhs.
  std::unique_ptr<ArithExpr> atom_lhs;
  std::unique_ptr<ArithExpr> atom_rhs;
  std::string relop;  // "=", "!=", "<=", "<", ">=", ">"

  // kAnd / kOr: children; kNot / kProject: children[0].
  std::vector<std::unique_ptr<Formula>> children;

  // kPred: a CST object used as an interpreted predicate — named by a
  // query variable or a path expression, with optional explicit dimension
  // variables O(x1,...,xn); without them the schema names apply (§4.2).
  std::unique_ptr<PathExpr> pred;
  std::optional<std::vector<std::string>> pred_args;

  // kProject: ((proj_vars) | children[0]); kExists: the bound variables.
  std::vector<std::string> proj_vars;

  size_t offset = 0;  // Byte offset of the formula's first token.

  std::string ToString() const;
};

/// One SELECT output column.
struct SelectItem {
  std::optional<std::string> name;  // SELECT name = expr.
  enum class Kind { kPath, kFormulaObject, kOptimize };
  Kind kind = Kind::kPath;

  PathExpr path;  // kPath

  // kFormulaObject: a projection formula creating a CST object.
  std::unique_ptr<Formula> formula;

  // kOptimize: MAX/MIN/MAX_POINT/MIN_POINT(objective SUBJECT TO formula).
  enum class OptKind { kMax, kMin, kMaxPoint, kMinPoint };
  OptKind opt = OptKind::kMax;
  std::unique_ptr<ArithExpr> objective;  // Formula in `formula`.

  size_t offset = 0;  // Byte offset of the item's first token.
};

/// FROM Class Var.
struct FromItem {
  std::string class_name;
  std::string var;
  size_t class_offset = 0;  // Byte offset of the class-name token.
  size_t var_offset = 0;    // Byte offset of the variable token.
};

/// WHERE condition tree.
struct WhereExpr {
  enum class Kind {
    kAnd, kOr, kNot,
    kPathPred,   // A path expression used as a boolean predicate.
    kCompare,    // path/literal (=|!=|<|<=|>|>=|CONTAINS) path/literal.
    kFormulaSat, // SAT(phi).
    kEntails,    // phi |= psi.
  };
  Kind kind = Kind::kAnd;
  std::vector<std::unique_ptr<WhereExpr>> children;

  PathExpr path;  // kPathPred.

  struct Operand {
    enum class Kind { kPath, kLiteral } kind = Kind::kLiteral;
    PathExpr path;
    Oid literal;
  };
  Operand cmp_lhs, cmp_rhs;  // kCompare.
  std::string cmp_op;

  std::unique_ptr<Formula> formula;   // kFormulaSat.
  std::unique_ptr<Formula> ent_lhs;   // kEntails.
  std::unique_ptr<Formula> ent_rhs;

  size_t offset = 0;  // Byte offset of the condition's first token.
};

/// SIGNATURE attr => Class (scalar) / attr =>> Class (set-valued).
struct SignatureItem {
  std::string attr;
  bool set_valued = false;
  std::string target_class;
  size_t target_offset = 0;  // Byte offset of the target-class token.
};

/// A full query (optionally a view definition).
struct Query {
  std::vector<SelectItem> select;
  std::vector<FromItem> from;
  std::unique_ptr<WhereExpr> where;          // May be null.
  std::vector<std::string> oid_function_of;  // Empty = plain result.
  std::vector<size_t> oid_function_of_offsets;  // Parallel byte offsets.

  bool is_view = false;
  std::string view_name;    // May be a query variable (higher-order view).
  std::string view_parent;  // SUBCLASS OF.
  std::vector<SignatureItem> signature;
  size_t view_name_offset = 0;    // Byte offset of the view-name token.
  size_t view_parent_offset = 0;  // Byte offset of the parent token.
};

}  // namespace ast
}  // namespace lyric

#endif  // LYRIC_QUERY_AST_H_
