// §3 constraint-family inference and complexity checking over query ASTs.
//
// The paper engineers four constraint families (conjunctive, existential
// conjunctive, disjunctive, disjunctive existential) so that every
// permitted operation stays polynomial, and §3.1 warns that unrestricted
// quantifier elimination blows up. This pass tags every CST-valued
// expression in SELECT/WHERE with its inferred family (LY040 notes) and
// checks closure under the operations the query applies:
//
//   * projection / exists eliminating more than one variable while
//     keeping more than one leaves the restricted fragment — the family
//     escalates to an existential one, and eager materialization runs
//     unrestricted quantifier elimination (LY041);
//   * entailment whose right-hand side carries disjunction falls outside
//     the polynomial entailment checks of §3 (LY042);
//   * conjunctions of disjunctive operands distribute into DNF; when the
//     estimated disjunct product crosses a threshold, LY043 fires;
//   * NOT of a non-conjunctive formula has no representation inside the
//     four families (CstObject::Negate only accepts conjunctive) — LY044;
//   * MAX/MIN over a disjunctive body solves one LP per disjunct (LY045).
//
// The pass is purely syntactic plus schema lookups: predicate uses whose
// stored family cannot be resolved statically are assumed conjunctive
// (the canonical storage family) and the LY040 note says so.

#ifndef LYRIC_QUERY_FAMILY_CHECK_H_
#define LYRIC_QUERY_FAMILY_CHECK_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "constraint/family.h"
#include "object/database.h"
#include "query/ast.h"
#include "query/diagnostics.h"

namespace lyric {

/// The inferred §3 family of one formula, with a saturating estimate of
/// its DNF disjunct count.
struct FamilyEstimate {
  ConstraintFamily family = ConstraintFamily::kConjunctive;
  size_t disjuncts = 1;      // Estimated DNF disjunct count (saturating).
  bool assumed_preds = false;  // True when some predicate family was
                               // assumed rather than resolved.
};

/// Estimated disjunct count at which LY043 (DNF distribution blowup)
/// fires for a conjunction of disjunctive operands.
inline constexpr size_t kDnfBlowupThreshold = 64;

/// Saturation cap for disjunct estimates.
inline constexpr size_t kDisjunctEstimateCap = 1 << 20;

/// Infers families and emits LY040-LY045 findings.
class FamilyChecker {
 public:
  /// `declared` is the set of query-variable names (everything else in an
  /// atom is a constraint variable); `var_dims` maps CST-bound query
  /// variables to their schema dimension names when statically known.
  FamilyChecker(const Database* db, const std::set<std::string>* declared,
                const std::map<std::string, std::vector<std::string>>*
                    var_dims)
      : db_(db), declared_(declared), var_dims_(var_dims) {}

  /// Infers the family of `formula` bottom-up, appending closure warnings
  /// (LY041/LY043/LY044) to `diags`.
  FamilyEstimate Infer(const ast::Formula& formula,
                       std::vector<Diagnostic>* diags) const;

  /// Runs the whole-query pass: one LY040 note per CST-valued expression
  /// in SELECT and WHERE, plus the closure findings their operations
  /// trigger (LY041-LY045).
  void CheckQuery(const ast::Query& query,
                  std::vector<Diagnostic>* diags) const;

  /// The constraint variables a formula mentions free (query variables
  /// excluded; predicate interfaces resolved through `var_dims` and the
  /// schema where possible).
  std::set<std::string> FreeConstraintVars(const ast::Formula& formula)
      const;

 private:
  void CheckWhere(const ast::WhereExpr& where,
                  std::vector<Diagnostic>* diags) const;
  void NoteFamily(const ast::Formula& formula, const std::string& context,
                  const FamilyEstimate& est,
                  std::vector<Diagnostic>* diags) const;
  // Resolves the family of a predicate use when the named CST object is
  // statically reachable (a stored symbolic oid, possibly through
  // scalar attribute steps); null result means "assume conjunctive".
  bool ResolvePredFamily(const ast::PathExpr& pred,
                         FamilyEstimate* out) const;
  // The interface variable names a predicate use contributes.
  void PredInterfaceVars(const ast::Formula& pred,
                         std::set<std::string>* out) const;

  const Database* db_;
  const std::set<std::string>* declared_;
  const std::map<std::string, std::vector<std::string>>* var_dims_;
};

}  // namespace lyric

#endif  // LYRIC_QUERY_FAMILY_CHECK_H_
