#include "query/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace lyric {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::string DiagCodeToString(DiagCode code) {
  int n = static_cast<int>(code);
  std::string digits = std::to_string(n);
  while (digits.size() < 3) digits.insert(digits.begin(), '0');
  return "LY" + digits;
}

Severity DiagCodeDefaultSeverity(DiagCode code) {
  if (code == DiagCode::kFamilyInfo) return Severity::kNote;
  if (code == DiagCode::kDisjunctiveOptimize) return Severity::kNote;
  int n = static_cast<int>(code);
  if (n >= 30) return Severity::kWarning;
  return Severity::kError;
}

const char* DiagCodeTitle(DiagCode code) {
  switch (code) {
    case DiagCode::kLexError:
      return "query text failed to tokenize";
    case DiagCode::kSyntaxError:
      return "query text failed to parse";
    case DiagCode::kUnknownClass:
      return "FROM clause names a class the schema does not define";
    case DiagCode::kUnknownAttribute:
      return "attribute missing on the statically known class";
    case DiagCode::kUseBeforeBind:
      return "variable used before FROM or an earlier conjunct binds it";
    case DiagCode::kClassConflict:
      return "one variable bound at two incompatible classes";
    case DiagCode::kNotNumeric:
      return "non-numeric value used in pseudo-linear arithmetic";
    case DiagCode::kNotCstPredicate:
      return "predicate use of a value that is not a CST object";
    case DiagCode::kArityMismatch:
      return "CST predicate invoked with the wrong number of variables";
    case DiagCode::kUnboundOidVar:
      return "OID FUNCTION OF variable is never bound";
    case DiagCode::kUnknownViewParent:
      return "SUBCLASS OF names a class the schema does not define";
    case DiagCode::kUnknownSigTarget:
      return "SIGNATURE target names a class the schema does not define";
    case DiagCode::kViewExists:
      return "view name collides with an existing class";
    case DiagCode::kBadSelectFormula:
      return "SELECT constraint item is not a projection formula";
    case DiagCode::kUnknownSymbolicOid:
      return "symbolic oid names no stored object";
    case DiagCode::kAttributeVariable:
      return "higher-order attribute variable enumerates at run time";
    case DiagCode::kDuplicateFromVar:
      return "FROM variable declared twice (instances must agree)";
    case DiagCode::kDynamicCstAttribute:
      return "attribute on a CST value cannot be checked statically";
    case DiagCode::kFamilyInfo:
      return "inferred §3 constraint family of a CST expression";
    case DiagCode::kUnrestrictedProjection:
      return "quantifier elimination outside the §3.1 restricted fragment";
    case DiagCode::kDisjunctiveEntailment:
      return "entailment with a disjunctive operand";
    case DiagCode::kDnfBlowup:
      return "DNF distribution estimate exceeds the blowup threshold";
    case DiagCode::kNonConjunctiveNegation:
      return "negation of a non-conjunctive formula";
    case DiagCode::kDisjunctiveOptimize:
      return "optimization over a disjunctive body (one LP per disjunct)";
  }
  return "unknown diagnostic";
}

std::string Diagnostic::ToString() const {
  return std::string(SeverityToString(severity)) + "[" +
         DiagCodeToString(code) + "]: " + message;
}

Diagnostic MakeDiag(DiagCode code, SourceSpan span, std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = DiagCodeDefaultSeverity(code);
  d.message = std::move(message);
  d.span = span;
  return d;
}

LineCol LineColAt(const std::string& text, size_t offset) {
  LineCol out;
  offset = std::min(offset, text.size());
  for (size_t i = 0; i < offset; ++i) {
    if (text[i] == '\n') {
      ++out.line;
      out.col = 1;
    } else {
      ++out.col;
    }
  }
  return out;
}

namespace {

// The full source line containing `offset` (no trailing newline).
std::string LineContaining(const std::string& text, size_t offset,
                           size_t* line_start) {
  offset = std::min(offset, text.size());
  size_t start = text.rfind('\n', offset == 0 ? 0 : offset - 1);
  start = (start == std::string::npos || offset == 0) ? 0 : start + 1;
  if (offset > 0 && start > offset) start = offset;
  size_t end = text.find('\n', offset);
  if (end == std::string::npos) end = text.size();
  *line_start = start;
  return text.substr(start, end - start);
}

void AppendJsonString(std::ostringstream* os, const std::string& s) {
  *os << '"';
  for (char c : s) {
    switch (c) {
      case '"': *os << "\\\""; break;
      case '\\': *os << "\\\\"; break;
      case '\n': *os << "\\n"; break;
      case '\t': *os << "\\t"; break;
      case '\r': *os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
  *os << '"';
}

}  // namespace

std::string RenderDiagnostic(const std::string& source,
                             const Diagnostic& diag,
                             const std::string& filename) {
  LineCol pos = LineColAt(source, diag.span.offset);
  std::ostringstream os;
  if (!filename.empty()) os << filename << ":";
  os << pos.line << ":" << pos.col << ": " << diag.ToString() << "\n";
  size_t line_start = 0;
  std::string line = LineContaining(source, diag.span.offset, &line_start);
  if (!line.empty()) {
    os << "  " << line << "\n  ";
    size_t col = diag.span.offset >= line_start
                     ? diag.span.offset - line_start
                     : 0;
    col = std::min(col, line.size());
    for (size_t i = 0; i < col; ++i) {
      os << (line[i] == '\t' ? '\t' : ' ');
    }
    os << '^';
    size_t span_len = std::max<size_t>(diag.span.length, 1);
    size_t tail = std::min(span_len - 1, line.size() - col);
    for (size_t i = 0; i < tail; ++i) os << '~';
    os << "\n";
  }
  return os.str();
}

std::string RenderDiagnostics(const std::string& source,
                              const std::vector<Diagnostic>& diags,
                              const std::string& filename) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += RenderDiagnostic(source, d, filename);
  }
  return out;
}

std::string DiagnosticsToJson(const std::string& source,
                              const std::vector<Diagnostic>& diags,
                              const std::string& filename) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const Diagnostic& d : diags) {
    if (!first) os << ",";
    first = false;
    LineCol pos = LineColAt(source, d.span.offset);
    os << "\n  {\"file\": ";
    AppendJsonString(&os, filename);
    os << ", \"line\": " << pos.line << ", \"col\": " << pos.col
       << ", \"offset\": " << d.span.offset
       << ", \"length\": " << d.span.length << ", \"code\": \""
       << DiagCodeToString(d.code) << "\", \"severity\": \""
       << SeverityToString(d.severity) << "\", \"message\": ";
    AppendJsonString(&os, d.message);
    os << "}";
  }
  os << (first ? "]" : "\n]");
  return os.str();
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  return CountSeverity(diags, Severity::kError) > 0;
}

size_t CountSeverity(const std::vector<Diagnostic>& diags,
                     Severity severity) {
  return static_cast<size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

}  // namespace lyric
