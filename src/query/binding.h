// Variable bindings during query evaluation.
//
// Besides the oid bound to each query variable, a binding remembers two
// pieces of LyriC-specific context:
//
//  * for a variable bound to a CST oid through an attribute path, the
//    *dimension info*: the display name each dimension carries (the schema
//    variable name after interface renamings along the path — what a bare
//    predicate use `E` denotes) and its *identity* (which object's
//    interface variable it is). Two dimensions with the same identity
//    appearing in one constraint formula are implicitly equated (§4.1's
//    "implicit equalities derived from the schema");
//
//  * for a variable bound to a structured object, the interface map at
//    binding time, so that a later path headed at the variable continues
//    with the renamings already applied (e.g. DSK bound through
//    O.catalog_object keeps O's (x, y) identities).

#ifndef LYRIC_QUERY_BINDING_H_
#define LYRIC_QUERY_BINDING_H_

#include <map>
#include <string>
#include <vector>

#include "object/oid.h"

namespace lyric {

/// One dimension of a CST attribute value as seen from the query.
struct DimInfo {
  /// The variable name a bare predicate use denotes for this dimension.
  std::string display;
  /// Identity key: "<owner oid>.<interface var>" — equal keys are
  /// implicitly equated inside one formula.
  std::string identity;

  bool operator==(const DimInfo& o) const {
    return display == o.display && identity == o.identity;
  }
};

/// Interface map of an object: its class's interface variable -> the
/// display/identity it carries in the current query context.
using IfaceMap = std::map<std::string, DimInfo>;

/// A (partial) assignment of query variables.
struct Binding {
  /// Query variable -> bound oid.
  std::map<std::string, Oid> vars;
  /// Attribute variable -> attribute name (higher-order variables).
  std::map<std::string, std::string> attr_vars;
  /// For variables bound to CST oids via attribute paths: per-dimension
  /// display/identity info.
  std::map<std::string, std::vector<DimInfo>> cst_dims;
  /// For variables bound to structured objects: the interface map at
  /// binding time.
  std::map<std::string, IfaceMap> iface_maps;

  bool Has(const std::string& var) const { return vars.count(var) > 0; }

  /// Orders on the visible assignment only (used to deduplicate result
  /// bindings).
  bool operator<(const Binding& o) const {
    if (vars != o.vars) return vars < o.vars;
    return attr_vars < o.attr_vars;
  }
  bool operator==(const Binding& o) const {
    return vars == o.vars && attr_vars == o.attr_vars;
  }
};

}  // namespace lyric

#endif  // LYRIC_QUERY_BINDING_H_
