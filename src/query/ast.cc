#include "query/ast.h"

namespace lyric {
namespace ast {

namespace {
std::string NameOrLiteralToString(const NameOrLiteral& n) {
  return n.kind == NameOrLiteral::Kind::kName ? n.name
                                              : n.literal.ToString();
}
}  // namespace

std::string PathExpr::ToString() const {
  std::string out = NameOrLiteralToString(head);
  for (const Step& s : steps) {
    out += "." + s.attribute;
    if (s.selector.has_value()) {
      out += "[" + NameOrLiteralToString(*s.selector) + "]";
    }
  }
  return out;
}

std::string ArithExpr::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return constant.ToString();
    case Kind::kName:
      return name;
    case Kind::kPath:
      return path->ToString();
    case Kind::kAdd:
      return "(" + lhs->ToString() + " + " + rhs->ToString() + ")";
    case Kind::kSub:
      return "(" + lhs->ToString() + " - " + rhs->ToString() + ")";
    case Kind::kMul:
      return "(" + lhs->ToString() + " * " + rhs->ToString() + ")";
    case Kind::kDiv:
      return "(" + lhs->ToString() + " / " + rhs->ToString() + ")";
    case Kind::kNeg:
      return "(-" + lhs->ToString() + ")";
  }
  return "?";
}

std::string Formula::ToString() const {
  switch (kind) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return atom_lhs->ToString() + " " + relop + " " + atom_rhs->ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind == Kind::kAnd ? " and " : " or ";
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += "(" + children[i]->ToString() + ")";
      }
      return out;
    }
    case Kind::kNot:
      return "not (" + children[0]->ToString() + ")";
    case Kind::kPred: {
      std::string out = pred->ToString();
      if (pred_args.has_value()) {
        out += "(";
        for (size_t i = 0; i < pred_args->size(); ++i) {
          if (i > 0) out += ", ";
          out += (*pred_args)[i];
        }
        out += ")";
      }
      return out;
    }
    case Kind::kProject: {
      std::string out = "((";
      for (size_t i = 0; i < proj_vars.size(); ++i) {
        if (i > 0) out += ", ";
        out += proj_vars[i];
      }
      out += ") | " + children[0]->ToString() + ")";
      return out;
    }
    case Kind::kExists: {
      std::string out = "exists ";
      for (size_t i = 0; i < proj_vars.size(); ++i) {
        if (i > 0) out += ", ";
        out += proj_vars[i];
      }
      out += " . (" + children[0]->ToString() + ")";
      return out;
    }
  }
  return "?";
}

}  // namespace ast
}  // namespace lyric
