#include "query/family_check.h"

#include <algorithm>
#include <functional>

namespace lyric {

namespace {

size_t SatMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kDisjunctEstimateCap / b) return kDisjunctEstimateCap;
  return std::min(a * b, kDisjunctEstimateCap);
}

size_t SatAdd(size_t a, size_t b) {
  return std::min(a + b, kDisjunctEstimateCap);
}

// Number of atomic constraints in a formula — the disjunct estimate for
// the negation of a conjunctive body (~(a1 and .. and ak) has k
// disjuncts).
size_t CountAtoms(const ast::Formula& f) {
  using Kind = ast::Formula::Kind;
  switch (f.kind) {
    case Kind::kAtom:
    case Kind::kPred:
      return 1;
    case Kind::kTrue:
    case Kind::kFalse:
      return 0;
    default: {
      size_t total = 0;
      for (const auto& child : f.children) {
        total = SatAdd(total, CountAtoms(*child));
      }
      return total;
    }
  }
}

// Truncates a formula rendering for diagnostic messages.
std::string Excerpt(const ast::Formula& f) {
  std::string text = f.ToString();
  constexpr size_t kMax = 48;
  if (text.size() > kMax) {
    text.resize(kMax - 3);
    text += "...";
  }
  return text;
}

// The existential escalation of a family: conjunctive bodies project
// into existential-conjunctive ones, anything disjunctive into
// disjunctive-existential.
ConstraintFamily Existentialize(ConstraintFamily f) {
  return FamilyHasDisjunction(f) ? ConstraintFamily::kDisjunctiveExistential
                                 : ConstraintFamily::kExistentialConjunctive;
}

}  // namespace

void FamilyChecker::PredInterfaceVars(const ast::Formula& pred,
                                      std::set<std::string>* out) const {
  if (pred.pred_args.has_value()) {
    out->insert(pred.pred_args->begin(), pred.pred_args->end());
    return;
  }
  const ast::PathExpr& path = *pred.pred;
  if (path.head.kind != ast::NameOrLiteral::Kind::kName) return;
  if (path.steps.empty()) {
    // A bare variable: use the dimension names recorded when its bracket
    // selector bound it to a CST attribute.
    auto it = var_dims_->find(path.head.name);
    if (it != var_dims_->end()) {
      out->insert(it->second.begin(), it->second.end());
    }
    return;
  }
  // A path: walk the schema from the head's class to the final attribute;
  // a CST attribute's schema variables are the interface.
  std::string cur_class;
  if (declared_->count(path.head.name)) return;  // Class tracked elsewhere.
  Oid sym = Oid::Symbol(path.head.name);
  if (!db_->HasObject(sym)) return;
  Result<std::string> cls = db_->ClassOf(sym);
  if (!cls.ok()) return;
  cur_class = *cls;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    Result<const AttributeDef*> attr =
        db_->schema().FindAttribute(cur_class, path.steps[i].attribute);
    if (!attr.ok()) return;
    if ((*attr)->IsCst()) {
      if (i + 1 == path.steps.size()) {
        out->insert((*attr)->variables.begin(), (*attr)->variables.end());
      }
      return;
    }
    cur_class = (*attr)->target_class;
  }
}

std::set<std::string> FamilyChecker::FreeConstraintVars(
    const ast::Formula& formula) const {
  using Kind = ast::Formula::Kind;
  std::set<std::string> out;
  switch (formula.kind) {
    case Kind::kTrue:
    case Kind::kFalse:
      break;
    case Kind::kAtom: {
      // Constraint variables are the names an atom mentions that are not
      // query variables (those stand for bound constants).
      std::function<void(const ast::ArithExpr&)> walk =
          [&](const ast::ArithExpr& e) {
            using AK = ast::ArithExpr::Kind;
            switch (e.kind) {
              case AK::kName:
                if (!declared_->count(e.name)) out.insert(e.name);
                break;
              case AK::kNeg:
                walk(*e.lhs);
                break;
              case AK::kAdd:
              case AK::kSub:
              case AK::kMul:
              case AK::kDiv:
                walk(*e.lhs);
                walk(*e.rhs);
                break;
              default:
                break;
            }
          };
      walk(*formula.atom_lhs);
      walk(*formula.atom_rhs);
      break;
    }
    case Kind::kPred:
      PredInterfaceVars(formula, &out);
      break;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const auto& child : formula.children) {
        std::set<std::string> sub = FreeConstraintVars(*child);
        out.insert(sub.begin(), sub.end());
      }
      break;
    case Kind::kProject: {
      // ((v1,..,vn) | phi) exposes exactly the projection variables.
      out.insert(formula.proj_vars.begin(), formula.proj_vars.end());
      break;
    }
    case Kind::kExists: {
      out = FreeConstraintVars(*formula.children[0]);
      for (const std::string& v : formula.proj_vars) out.erase(v);
      break;
    }
  }
  return out;
}

bool FamilyChecker::ResolvePredFamily(const ast::PathExpr& pred,
                                      FamilyEstimate* out) const {
  // Only statically stored objects resolve: a symbolic-oid head followed
  // by scalar attribute steps ending at a CST value.
  if (pred.head.kind != ast::NameOrLiteral::Kind::kName) return false;
  if (declared_->count(pred.head.name)) return false;
  Oid cur = Oid::Symbol(pred.head.name);
  if (!db_->HasObject(cur)) return false;
  for (const ast::PathExpr::Step& step : pred.steps) {
    Result<Value> value = db_->GetAttribute(cur, step.attribute);
    if (!value.ok() || !value->is_scalar()) return false;
    cur = value->scalar();
  }
  Result<CstObject> cst = db_->GetCst(cur);
  if (!cst.ok()) return false;
  out->family = cst->Family();
  out->disjuncts = std::max<size_t>(cst->Body().size(), 1);
  out->assumed_preds = false;
  return true;
}

FamilyEstimate FamilyChecker::Infer(const ast::Formula& formula,
                                    std::vector<Diagnostic>* diags) const {
  using Kind = ast::Formula::Kind;
  FamilyEstimate est;
  switch (formula.kind) {
    case Kind::kTrue:
    case Kind::kFalse:
      return est;
    case Kind::kAtom:
      if (formula.relop == "!=") {
        // x != c is (x < c or x > c): inherently disjunctive.
        est.family = ConstraintFamily::kDisjunctive;
        est.disjuncts = 2;
      }
      return est;
    case Kind::kPred: {
      if (!ResolvePredFamily(*formula.pred, &est)) {
        est.assumed_preds = true;  // Canonical storage family.
      }
      return est;
    }
    case Kind::kAnd: {
      est.disjuncts = 1;
      for (const auto& child : formula.children) {
        FamilyEstimate c = Infer(*child, diags);
        est.family = FamilyJoin(est.family, c.family);
        est.disjuncts = SatMul(est.disjuncts, c.disjuncts);
        est.assumed_preds = est.assumed_preds || c.assumed_preds;
      }
      if (est.disjuncts >= kDnfBlowupThreshold) {
        diags->push_back(MakeDiag(
            DiagCode::kDnfBlowup, {formula.offset, 1},
            "conjunction distributes into an estimated " +
                std::to_string(est.disjuncts) +
                " DNF disjuncts (threshold " +
                std::to_string(kDnfBlowupThreshold) +
                "); §3 keeps operations polynomial per disjunct, but the "
                "disjunct count itself multiplies here"));
      }
      return est;
    }
    case Kind::kOr: {
      est.disjuncts = 0;
      for (const auto& child : formula.children) {
        FamilyEstimate c = Infer(*child, diags);
        est.family = FamilyJoin(est.family, c.family);
        est.disjuncts = SatAdd(est.disjuncts, c.disjuncts);
        est.assumed_preds = est.assumed_preds || c.assumed_preds;
      }
      est.family =
          FamilyJoin(est.family, ConstraintFamily::kDisjunctive);
      if (est.disjuncts == 0) est.disjuncts = 1;
      return est;
    }
    case Kind::kNot: {
      FamilyEstimate c = Infer(*formula.children[0], diags);
      if (c.family != ConstraintFamily::kConjunctive) {
        diags->push_back(MakeDiag(
            DiagCode::kNonConjunctiveNegation, {formula.offset, 3},
            "NOT of a " + std::string(ConstraintFamilyToString(c.family)) +
                " formula has no §3 family closed-form (negation is only "
                "defined for conjunctive bodies); the evaluator falls "
                "back to full DNF complementation"));
      }
      // ~(a1 and .. and ak) = (~a1 or .. or ~ak).
      est.family = ConstraintFamily::kDisjunctive;
      if (FamilyHasExistentials(c.family)) {
        est.family = ConstraintFamily::kDisjunctiveExistential;
      }
      est.disjuncts =
          std::max<size_t>(CountAtoms(*formula.children[0]), 1);
      est.assumed_preds = c.assumed_preds;
      return est;
    }
    case Kind::kProject:
    case Kind::kExists: {
      FamilyEstimate c = Infer(*formula.children[0], diags);
      std::set<std::string> body_free =
          FreeConstraintVars(*formula.children[0]);
      size_t eliminated = 0;
      size_t kept = 0;
      if (formula.kind == Kind::kProject) {
        std::set<std::string> keep(formula.proj_vars.begin(),
                                   formula.proj_vars.end());
        for (const std::string& v : body_free) {
          if (keep.count(v)) {
            ++kept;
          } else {
            ++eliminated;
          }
        }
      } else {
        std::set<std::string> drop(formula.proj_vars.begin(),
                                   formula.proj_vars.end());
        for (const std::string& v : body_free) {
          if (drop.count(v)) {
            ++eliminated;
          } else {
            ++kept;
          }
        }
      }
      est = c;
      if (eliminated > 1 && kept > 1) {
        // Outside the restricted projection of §3.1: neither "eliminate
        // at most one" nor "keep at most one" holds. The family absorbs
        // the quantifier; eager materialization runs unrestricted QE.
        est.family = FamilyJoin(Existentialize(c.family), c.family);
        diags->push_back(MakeDiag(
            DiagCode::kUnrestrictedProjection, {formula.offset, 1},
            "projection eliminates " + std::to_string(eliminated) +
                " of " + std::to_string(eliminated + kept) +
                " variables while keeping " + std::to_string(kept) +
                " — outside the restricted fragment of §3.1; the body is "
                "absorbed as " +
                ConstraintFamilyToString(est.family) +
                ", and eager materialization runs unrestricted "
                "quantifier elimination"));
      }
      // Restricted (or trivial) quantification stays in the stored
      // family: QE eliminates eagerly in polynomial time.
      return est;
    }
  }
  return est;
}

void FamilyChecker::NoteFamily(const ast::Formula& formula,
                               const std::string& context,
                               const FamilyEstimate& est,
                               std::vector<Diagnostic>* diags) const {
  std::string msg = context + " " + Excerpt(formula) +
                    ": inferred constraint family " +
                    ConstraintFamilyToString(est.family) + " (~" +
                    std::to_string(est.disjuncts) + " disjunct" +
                    (est.disjuncts == 1 ? "" : "s") + ")";
  if (est.assumed_preds) {
    msg += "; unresolved predicate families assumed conjunctive";
  }
  diags->push_back(
      MakeDiag(DiagCode::kFamilyInfo, {formula.offset, 1}, msg));
}

void FamilyChecker::CheckWhere(const ast::WhereExpr& where,
                               std::vector<Diagnostic>* diags) const {
  using Kind = ast::WhereExpr::Kind;
  switch (where.kind) {
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const auto& child : where.children) CheckWhere(*child, diags);
      return;
    case Kind::kPathPred:
    case Kind::kCompare:
      return;
    case Kind::kFormulaSat: {
      FamilyEstimate est = Infer(*where.formula, diags);
      NoteFamily(*where.formula, "SAT test over", est, diags);
      return;
    }
    case Kind::kEntails: {
      FamilyEstimate lhs = Infer(*where.ent_lhs, diags);
      FamilyEstimate rhs = Infer(*where.ent_rhs, diags);
      NoteFamily(*where.ent_lhs, "entailment lhs", lhs, diags);
      NoteFamily(*where.ent_rhs, "entailment rhs", rhs, diags);
      if (FamilyHasDisjunction(rhs.family) && rhs.disjuncts > 1) {
        diags->push_back(MakeDiag(
            DiagCode::kDisjunctiveEntailment,
            {where.ent_rhs->offset, 1},
            "entailment right-hand side is " +
                std::string(ConstraintFamilyToString(rhs.family)) +
                " (~" + std::to_string(rhs.disjuncts) +
                " disjuncts): phi |= (d1 or d2 or ...) falls outside "
                "the per-disjunct polynomial entailment checks of §3 "
                "and requires quantifier elimination of the right side"));
      }
      return;
    }
  }
}

void FamilyChecker::CheckQuery(const ast::Query& query,
                               std::vector<Diagnostic>* diags) const {
  for (size_t i = 0; i < query.select.size(); ++i) {
    const ast::SelectItem& item = query.select[i];
    const std::string slot = "SELECT item " + std::to_string(i + 1) + ",";
    switch (item.kind) {
      case ast::SelectItem::Kind::kPath:
        break;
      case ast::SelectItem::Kind::kFormulaObject: {
        FamilyEstimate est = Infer(*item.formula, diags);
        NoteFamily(*item.formula, slot, est, diags);
        break;
      }
      case ast::SelectItem::Kind::kOptimize: {
        FamilyEstimate est = Infer(*item.formula, diags);
        NoteFamily(*item.formula, slot + " optimization body", est, diags);
        if (FamilyHasDisjunction(est.family) && est.disjuncts > 1) {
          diags->push_back(MakeDiag(
              DiagCode::kDisjunctiveOptimize, {item.offset, 1},
              "MAX/MIN over a " +
                  std::string(ConstraintFamilyToString(est.family)) +
                  " body solves one linear program per disjunct (~" +
                  std::to_string(est.disjuncts) + ")"));
        }
        break;
      }
    }
  }
  if (query.where) CheckWhere(*query.where, diags);
}

}  // namespace lyric
