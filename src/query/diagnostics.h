// Structured query diagnostics: stable codes, severities, and source
// spans for every finding the static analysis layer produces.
//
// Every diagnostic carries an `LY0xx` code (inventoried in
// docs/DIAGNOSTICS.md), a severity, and a byte-offset span into the query
// text. Rendering maps offsets to 1-based line:col positions and prints
// caret snippets:
//
//   query.lyric:3:21: error[LY011]: class 'Desk' has no attribute
//   'location'
//     SELECT X FROM Desk X WHERE X.location[L]
//                                  ^~~~~~~~
//
// The codes are grouped by decade:
//   LY001..LY009  lexical / syntax errors
//   LY010..LY029  schema / typing errors (§2.2 discipline)
//   LY030..LY039  portability warnings (dynamic features the analyzer
//                 cannot check statically)
//   LY040..LY049  §3 constraint-family / complexity findings

#ifndef LYRIC_QUERY_DIAGNOSTICS_H_
#define LYRIC_QUERY_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace lyric {

/// How severe a finding is. Errors abort evaluation in pre-flight mode
/// and fail `lyric_check`; warnings and notes are informational.
enum class Severity {
  kError,
  kWarning,
  kNote,
};

const char* SeverityToString(Severity severity);

/// Stable diagnostic codes. The numeric value is part of the public
/// contract (tests and tooling match on the rendered "LY0xx" string);
/// never renumber, only append.
enum class DiagCode {
  // Lexical / syntax.
  kLexError = 1,            // LY001
  kSyntaxError = 2,         // LY002
  // Schema / typing errors.
  kUnknownClass = 10,       // LY010: FROM or view header names no class.
  kUnknownAttribute = 11,   // LY011: attribute missing on a known class.
  kUseBeforeBind = 12,      // LY012: variable read before it is bound.
  kClassConflict = 13,      // LY013: one variable, two incompatible classes.
  kNotNumeric = 14,         // LY014: non-number used in arithmetic.
  kNotCstPredicate = 15,    // LY015: predicate use of a non-CST value.
  kArityMismatch = 16,      // LY016: predicate invoked with wrong dimension.
  kUnboundOidVar = 17,      // LY017: OID FUNCTION OF variable never bound.
  kUnknownViewParent = 18,  // LY018: SUBCLASS OF names no class.
  kUnknownSigTarget = 19,   // LY019: signature target names no class.
  kViewExists = 20,         // LY020: view name collides with a class.
  kBadSelectFormula = 21,   // LY021: SELECT formula is not a projection.
  // Portability warnings.
  kUnknownSymbolicOid = 30,  // LY030: g-selector names no stored object.
  kAttributeVariable = 31,   // LY031: higher-order attribute variable.
  kDuplicateFromVar = 32,    // LY032: FROM variable declared twice.
  kDynamicCstAttribute = 33, // LY033: attribute on a CST value, unchecked.
  // §3 constraint-family / complexity findings.
  kFamilyInfo = 40,          // LY040: inferred family of a CST expression.
  kUnrestrictedProjection = 41,  // LY041: QE outside the §3.1 fragment.
  kDisjunctiveEntailment = 42,   // LY042: |= with a disjunctive operand.
  kDnfBlowup = 43,               // LY043: DNF distribution estimate large.
  kNonConjunctiveNegation = 44,  // LY044: NOT of a non-conjunctive formula.
  kDisjunctiveOptimize = 45,     // LY045: MAX/MIN over a disjunctive body.
};

/// "LY011" etc.; stable across releases.
std::string DiagCodeToString(DiagCode code);

/// The severity a code carries by default (family notes are kNote, the
/// LY03x/LY04x groups are kWarning, everything else kError).
Severity DiagCodeDefaultSeverity(DiagCode code);

/// One-line description of what the code means (used by docs and
/// `lyric_check --codes`).
const char* DiagCodeTitle(DiagCode code);

/// Half-open byte range [offset, offset + length) in the query text.
struct SourceSpan {
  size_t offset = 0;
  size_t length = 1;
};

/// One finding of the static analysis layer.
struct Diagnostic {
  DiagCode code = DiagCode::kSyntaxError;
  Severity severity = Severity::kError;
  std::string message;
  SourceSpan span;

  /// "error[LY012]: message" (no source context).
  std::string ToString() const;
};

/// Constructs a diagnostic with the code's default severity.
Diagnostic MakeDiag(DiagCode code, SourceSpan span, std::string message);

/// 1-based line and column of a byte offset in `text`.
struct LineCol {
  size_t line = 1;
  size_t col = 1;
};
LineCol LineColAt(const std::string& text, size_t offset);

/// Renders one diagnostic against its source: position line plus a caret
/// snippet underlining the span. `filename` prefixes the position when
/// non-empty.
std::string RenderDiagnostic(const std::string& source,
                             const Diagnostic& diag,
                             const std::string& filename = "");

/// Renders a batch in order.
std::string RenderDiagnostics(const std::string& source,
                              const std::vector<Diagnostic>& diags,
                              const std::string& filename = "");

/// Machine-readable rendering for `lyric_check --format=json`: a JSON
/// array of {file, line, col, offset, length, code, severity, message}.
std::string DiagnosticsToJson(const std::string& source,
                              const std::vector<Diagnostic>& diags,
                              const std::string& filename = "");

/// True when any diagnostic is an error.
bool HasErrors(const std::vector<Diagnostic>& diags);

/// Counts by severity.
size_t CountSeverity(const std::vector<Diagnostic>& diags,
                     Severity severity);

}  // namespace lyric

#endif  // LYRIC_QUERY_DIAGNOSTICS_H_
