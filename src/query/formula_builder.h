// Instantiation of CST formulas (§4.2) under a variable binding.
//
// A formula's pseudo-linear atoms become linear constraints once bound
// query variables and number-valued paths are replaced by constants; a
// predicate use O or O(x1,..,xn) splices in the CST object's constraint
// with its interface renamed to the given (or schema-derived) variables;
// the projection connector maps onto DisjunctiveExistential::Project.
//
// Implicit equalities: while building, every predicate dimension reports
// (identity key, query variable); at the top level and at each projection
// boundary, dimensions sharing an identity but named differently are
// equated — reproducing §4.1's p = x1 and q = y1.

#ifndef LYRIC_QUERY_FORMULA_BUILDER_H_
#define LYRIC_QUERY_FORMULA_BUILDER_H_

#include <set>

#include "constraint/cst_object.h"
#include "object/database.h"
#include "query/ast.h"
#include "query/binding.h"

namespace lyric {

/// Formula instantiation entry points. Stateless; all context rides in.
class FormulaBuilder {
 public:
  FormulaBuilder(Database* db, const std::set<std::string>* declared)
      : db_(db), declared_(declared) {}

  /// Builds the formula into a disjunctive existential constraint over
  /// the formula's constraint variables (implicit equalities applied).
  Result<DisjunctiveExistential> Build(const ast::Formula& formula,
                                       const Binding& binding) const;

  /// Builds a top-level projection formula ((x1..xn) | phi) into a CST
  /// object with interface (x1..xn). With `eager`, quantifier elimination
  /// materializes the projected constraint (the form the paper prints);
  /// otherwise the projection is absorbed into the existential family.
  Result<CstObject> BuildProjectionObject(const ast::Formula& formula,
                                          const Binding& binding,
                                          bool eager) const;

  /// Instantiates a pseudo-linear arithmetic expression: bound query
  /// variables and paths must denote numbers; remaining names are
  /// constraint variables; after substitution the result must be linear.
  Result<LinearExpr> BuildArith(const ast::ArithExpr& expr,
                                const Binding& binding) const;

 private:
  struct IdentityUses {
    // identity key -> constraint variable names used for it.
    std::map<std::string, std::set<std::string>> uses;
    void Merge(const IdentityUses& o) {
      for (const auto& [k, names] : o.uses) {
        uses[k].insert(names.begin(), names.end());
      }
    }
  };

  Result<DisjunctiveExistential> BuildNode(const ast::Formula& formula,
                                           const Binding& binding,
                                           IdentityUses* ids) const;
  Result<DisjunctiveExistential> BuildPred(const ast::Formula& formula,
                                           const Binding& binding,
                                           IdentityUses* ids) const;
  static DisjunctiveExistential ApplyIdentityEqualities(
      DisjunctiveExistential de, const IdentityUses& ids);

  Database* db_;
  const std::set<std::string>* declared_;
};

}  // namespace lyric

#endif  // LYRIC_QUERY_FORMULA_BUILDER_H_
