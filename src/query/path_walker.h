// Path-expression evaluation (§2.2): enumerating the database paths that
// satisfy ground instances of a path expression, extending bindings at
// bracket selectors, and threading interface renamings for the implicit
// schema equalities.

#ifndef LYRIC_QUERY_PATH_WALKER_H_
#define LYRIC_QUERY_PATH_WALKER_H_

#include <set>

#include "object/database.h"
#include "query/ast.h"
#include "query/binding.h"

namespace lyric {

/// One satisfying walk of a path expression.
struct PathResult {
  Binding binding;  // Input binding possibly extended at selectors.
  Oid tail;         // The object at the end of the database path.
  /// Dimension info when the tail was reached through a CST attribute.
  std::vector<DimInfo> tail_dims;
};

/// Walks `path` in `db` under `binding`. `db` is mutable because path
/// steps may invoke 0-ary methods ("an attribute is regarded as a 0-ary
/// method", §2.1), and constraint-producing methods intern their results. `declared` is the set of names
/// that are query variables (FROM variables, bracket-bound variables,
/// view header variables): an identifier outside it denotes a symbolic
/// oid (g-selector) or a literal attribute name.
///
/// Unbound declared variables in head position are an error (bind them
/// via FROM or an earlier predicate); unbound variables in bracket
/// selectors and unbound attribute variables enumerate.
Result<std::vector<PathResult>> WalkPath(const ast::PathExpr& path,
                                         const Binding& binding,
                                         Database& db,
                                         const std::set<std::string>& declared);

/// Collects every variable name a query declares: FROM variables, bracket
/// selector identifiers, and the view-name variable when it is not an
/// existing class.
std::set<std::string> CollectDeclaredVars(const ast::Query& query,
                                          const Database& db);

/// The default interface map of an object reached directly (not through a
/// renaming attribute): each interface variable of its class maps to
/// itself with identity "<oid>.<var>".
Result<IfaceMap> DefaultIfaceMap(const Oid& oid, const Database& db);

}  // namespace lyric

#endif  // LYRIC_QUERY_PATH_WALKER_H_
