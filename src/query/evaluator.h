// The LyriC query evaluator — the paper's "naive implementation" (§5),
// operating directly on the object database.
//
// Evaluation follows the formal XSQL semantics of §2.2: FROM variables
// range over class extents; WHERE is evaluated per substitution, with
// path-expression predicates extending the substitution at bracket
// selectors (a pragmatic left-to-right binding order — bind a variable
// via FROM or an earlier conjunct before using it); SELECT items are
// evaluated under each surviving substitution, constructing new CST
// objects for projection formulas and running exact LPs for MAX/MIN.
// CREATE VIEW materializes the result as a new subclass (higher-order
// class variables supported: a view named by a FROM variable creates one
// class per binding of that variable).

#ifndef LYRIC_QUERY_EVALUATOR_H_
#define LYRIC_QUERY_EVALUATOR_H_

#include <cstdint>
#include <optional>

#include "constraint/canonical.h"
#include "exec/governor.h"
#include "exec/scheduler.h"
#include "object/database.h"
#include "query/ast.h"
#include "query/binding.h"
#include "query/result_set.h"

namespace lyric {

/// The default worker-thread count: the LYRIC_THREADS environment
/// variable clamped to [1, 64] (CI sweeps it), 1 when unset or
/// unparseable. Read once per process.
size_t DefaultEvalThreads();

/// Evaluator knobs.
struct EvalOptions {
  /// Materialize SELECT projections by quantifier elimination (prints the
  /// simplified constraints the paper shows). Turn off to keep lazy
  /// existential bodies — constant-time projection, opaque output.
  bool eager_select_projection = true;
  /// Canonicalization level for created CST objects. The default runs the
  /// [BJM93] conjunctive canonical form including LP-based redundant-atom
  /// removal, matching the simplified answers the paper prints; kCheap
  /// skips the per-atom LP calls (bench/bench_canonical quantifies the
  /// trade).
  CanonicalLevel canonical_level = CanonicalLevel::kRedundancy;
  /// Safety valve on result size: evaluation stops once the result holds
  /// this many rows. The truncation is flagged on the ResultSet
  /// (`truncated()`) and counted as `evaluator.rows_truncated`.
  size_t max_rows = 1000000;
  /// Run the static analyzer before evaluating: schema typos and
  /// bind-before-use mistakes fail fast with positioned messages instead
  /// of surfacing mid-evaluation. Off by default so that exploratory
  /// queries over half-built schemas still run.
  bool analyze_first = false;
  /// Record a per-query obs::QueryProfile (stage span tree + counter
  /// deltas) and attach it to the ResultSet. Off by default: with no
  /// collector installed every obs::Span is a single null check.
  bool collect_trace = false;
  /// Slow-query threshold in milliseconds: a query slower than this is
  /// marked slow in the per-query log and its full per-stage profile is
  /// promoted into the log record (a trace is collected for every query
  /// while the threshold is armed, even with collect_trace off — the
  /// profile still only attaches to the ResultSet under collect_trace).
  /// Unset defaults to LYRIC_SLOW_MS; 0 disables promotion.
  std::optional<uint64_t> slow_ms;
  /// Worker threads for per-binding WHERE/SELECT evaluation (each
  /// candidate binding's satisfiability/entailment work is an independent
  /// simplex problem — §5's PTIME argument is per-tuple). 1 = serial. The
  /// chunked results merge back in input order, so parallel output is
  /// byte-identical to serial output (docs/PARALLELISM.md). CREATE VIEW
  /// queries always run serially: materialization mutates the schema
  /// mid-scan. Default: DefaultEvalThreads().
  size_t threads = DefaultEvalThreads();
  /// When set, re-bounds the process-wide SolverCache before evaluation
  /// (entries; 0 disables memoization). Unset leaves the global
  /// configuration (LYRIC_CACHE_CAPACITY env, default 4096) alone.
  std::optional<size_t> cache_capacity;
  /// -- Resource governor (docs/ROBUSTNESS.md) -------------------------
  /// Per-query limits, enforced cooperatively by the constraint kernels.
  /// A trip never fails the query: Execute returns an OK Result whose
  /// ResultSet carries the partial rows, the typed trip Status
  /// (kDeadlineExceeded / kResourceExhausted via governor_status()) and a
  /// GovernorReport of the progress made. All four default from the
  /// environment (LYRIC_DEADLINE_MS, LYRIC_MEMORY_BUDGET); unset means
  /// unlimited, and with no limit set the governor costs nothing.
  /// Wall-clock deadline for the whole query, in milliseconds.
  std::optional<uint64_t> deadline_ms =
      exec::GovernorLimits::FromEnv().deadline_ms;
  /// Budget in bytes for kernel-accounted transient allocations.
  std::optional<uint64_t> memory_budget =
      exec::GovernorLimits::FromEnv().memory_budget;
  /// Cap on total simplex pivots across the query.
  std::optional<uint64_t> max_pivots;
  /// Cap on total DNF disjuncts materialized across the query.
  std::optional<uint64_t> max_disjuncts;
  /// -- Admission control (docs/ROBUSTNESS.md) -------------------------
  /// Every Execute passes through the process-wide QueryScheduler before
  /// evaluating: with no limits configured admission is free; with a cap
  /// the query may queue, run degraded (serial), or be shed with a typed
  /// kUnavailable + retry-after. The three knobs below, when set,
  /// reconfigure the scheduler (0 clears the corresponding limit) — the
  /// same idiom as cache_capacity. Process defaults come from
  /// LYRIC_MAX_CONCURRENT / LYRIC_QUEUE_CAPACITY / LYRIC_QUEUE_TIMEOUT_MS.
  /// Cap on concurrently executing queries process-wide.
  std::optional<uint64_t> max_concurrent_queries;
  /// Cap on queries waiting for a slot (beyond it arrivals are shed).
  std::optional<uint64_t> queue_capacity;
  /// Max milliseconds an arrival may wait before being shed.
  std::optional<uint64_t> queue_timeout_ms;
  /// Test seam: admission goes through this scheduler instead of
  /// QueryScheduler::Global() when set.
  exec::QueryScheduler* scheduler = nullptr;
  /// Retry policy for transient (kUnavailable) Execute failures —
  /// admission sheds and injected transport faults. Unset defaults to
  /// RetryPolicy::FromEnv() (LYRIC_RETRY=retries[:base_ms[:seed]]; retry
  /// disabled when the variable is unset).
  std::optional<exec::RetryPolicy> retry;
};

/// Executes LyriC queries against a Database.
class Evaluator {
 public:
  explicit Evaluator(Database* db, EvalOptions options = EvalOptions())
      : db_(db), options_(options) {}

  /// Parses and executes.
  Result<ResultSet> Execute(const std::string& query_text);
  /// Executes a parsed query.
  Result<ResultSet> Execute(const ast::Query& query);

  /// Names of classes the last CREATE VIEW created.
  const std::vector<std::string>& created_classes() const {
    return created_classes_;
  }

 private:
  /// The WHERE/SELECT product of one FROM binding: every surviving
  /// (extended) binding paired with its SELECT rows, in evaluation order.
  /// Computed on worker threads in parallel mode; `status` carries the
  /// first failure. The merge commits rows strictly in input order so
  /// truncation counts committed merged rows, never per-worker rows.
  struct BindingOutcome {
    Status status = Status::OK();
    std::vector<std::pair<Binding, std::vector<std::vector<Oid>>>>
        per_survivor;
  };

  // The shared front door behind both public Execute overloads: installs
  // a trace session when needed (collect_trace, or a slow-query threshold
  // is armed), parses `text` when `parsed` is null, runs the retry loop,
  // and appends one QueryLogRecord per outermost evaluation. Exactly one
  // of text/parsed is non-null.
  Result<ResultSet> ExecuteLogged(const std::string* text,
                                  const ast::Query* parsed);
  // The untraced evaluation pipeline. Admission (scheduling) happens at
  // the top of ExecuteImpl; ExecuteWithRetry retries transient failures
  // (shed admissions, injected faults) under the configured RetryPolicy,
  // counting retries into *retries for the query log.
  Result<ResultSet> ExecuteWithRetry(const ast::Query& query,
                                     uint32_t* retries);
  Result<ResultSet> ExecuteImpl(const ast::Query& query);
  /// Runs WHERE + SELECT for one base binding (no ResultSet mutation, no
  /// view materialization — safe on worker threads).
  BindingOutcome EvalOneBinding(const ast::Query& query, const Binding& base,
                                const std::set<std::string>& declared);
  /// Commits one outcome's rows into `out` in order; returns false when
  /// the result hit max_rows (caller stops committing). Runs view
  /// materialization for serial view queries.
  Result<bool> CommitOutcome(const ast::Query& query, BindingOutcome outcome,
                             ResultSet* out);
  /// The chunked parallel scan: partitions `bindings`, evaluates chunks on
  /// a worker pool, merges deterministically in input order.
  Result<ResultSet> ExecuteParallel(const ast::Query& query,
                                    const std::set<std::string>& declared,
                                    ResultSet out,
                                    const std::vector<Binding>& bindings,
                                    size_t threads);
  Result<std::vector<Binding>> EnumerateFrom(const ast::Query& query) const;
  Result<std::vector<Binding>> EvalWhere(const ast::WhereExpr& where,
                                         const Binding& binding,
                                         const std::set<std::string>& declared,
                                         int depth) const;
  Result<std::vector<std::vector<Oid>>> EvalSelect(
      const ast::Query& query, const Binding& binding,
      const std::set<std::string>& declared);
  Result<Oid> EvalOptimize(const ast::SelectItem& item, const Binding& binding,
                           const std::set<std::string>& declared);
  Status MaterializeView(const ast::Query& query, const Binding& binding,
                         const std::vector<Oid>& row);

  Database* db_;
  EvalOptions options_;
  std::vector<std::string> created_classes_;
};

}  // namespace lyric

#endif  // LYRIC_QUERY_EVALUATOR_H_
