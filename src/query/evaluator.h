// The LyriC query evaluator — the paper's "naive implementation" (§5),
// operating directly on the object database.
//
// Evaluation follows the formal XSQL semantics of §2.2: FROM variables
// range over class extents; WHERE is evaluated per substitution, with
// path-expression predicates extending the substitution at bracket
// selectors (a pragmatic left-to-right binding order — bind a variable
// via FROM or an earlier conjunct before using it); SELECT items are
// evaluated under each surviving substitution, constructing new CST
// objects for projection formulas and running exact LPs for MAX/MIN.
// CREATE VIEW materializes the result as a new subclass (higher-order
// class variables supported: a view named by a FROM variable creates one
// class per binding of that variable).

#ifndef LYRIC_QUERY_EVALUATOR_H_
#define LYRIC_QUERY_EVALUATOR_H_

#include "constraint/canonical.h"
#include "object/database.h"
#include "query/ast.h"
#include "query/binding.h"
#include "query/result_set.h"

namespace lyric {

/// Evaluator knobs.
struct EvalOptions {
  /// Materialize SELECT projections by quantifier elimination (prints the
  /// simplified constraints the paper shows). Turn off to keep lazy
  /// existential bodies — constant-time projection, opaque output.
  bool eager_select_projection = true;
  /// Canonicalization level for created CST objects. The default runs the
  /// [BJM93] conjunctive canonical form including LP-based redundant-atom
  /// removal, matching the simplified answers the paper prints; kCheap
  /// skips the per-atom LP calls (bench/bench_canonical quantifies the
  /// trade).
  CanonicalLevel canonical_level = CanonicalLevel::kRedundancy;
  /// Safety valve on result size: evaluation stops once the result holds
  /// this many rows. The truncation is flagged on the ResultSet
  /// (`truncated()`) and counted as `evaluator.rows_truncated`.
  size_t max_rows = 1000000;
  /// Run the static analyzer before evaluating: schema typos and
  /// bind-before-use mistakes fail fast with positioned messages instead
  /// of surfacing mid-evaluation. Off by default so that exploratory
  /// queries over half-built schemas still run.
  bool analyze_first = false;
  /// Record a per-query obs::QueryProfile (stage span tree + counter
  /// deltas) and attach it to the ResultSet. Off by default: with no
  /// collector installed every obs::Span is a single null check.
  bool collect_trace = false;
};

/// Executes LyriC queries against a Database.
class Evaluator {
 public:
  explicit Evaluator(Database* db, EvalOptions options = EvalOptions())
      : db_(db), options_(options) {}

  /// Parses and executes.
  Result<ResultSet> Execute(const std::string& query_text);
  /// Executes a parsed query.
  Result<ResultSet> Execute(const ast::Query& query);

  /// Names of classes the last CREATE VIEW created.
  const std::vector<std::string>& created_classes() const {
    return created_classes_;
  }

 private:
  // The untraced evaluation pipeline; the public Execute overloads wrap it
  // in a trace session when options_.collect_trace is set.
  Result<ResultSet> ExecuteImpl(const ast::Query& query);
  Result<std::vector<Binding>> EnumerateFrom(const ast::Query& query) const;
  Result<std::vector<Binding>> EvalWhere(const ast::WhereExpr& where,
                                         const Binding& binding,
                                         const std::set<std::string>& declared,
                                         int depth) const;
  Result<std::vector<std::vector<Oid>>> EvalSelect(
      const ast::Query& query, const Binding& binding,
      const std::set<std::string>& declared);
  Result<Oid> EvalOptimize(const ast::SelectItem& item, const Binding& binding,
                           const std::set<std::string>& declared);
  Status MaterializeView(const ast::Query& query, const Binding& binding,
                         const std::vector<Oid>& row);

  Database* db_;
  EvalOptions options_;
  std::vector<std::string> created_classes_;
};

}  // namespace lyric

#endif  // LYRIC_QUERY_EVALUATOR_H_
