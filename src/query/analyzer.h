// Static semantic analysis of LyriC queries — the typing discipline §2.2
// alludes to ("we do not discuss typing and type errors in XSQL queries
// here"; this module does).
//
// The analyzer validates a parsed query against the schema before any
// data is touched:
//   * FROM classes exist; repeated FROM variables get a consistency note;
//   * every path expression type-checks step by step: the attribute must
//     exist on the statically known class, selectors bind variables of
//     the attribute's target class, CST attributes end paths in CST(n);
//   * variables are bound before use under the evaluator's left-to-right
//     conjunct order (OR branches and NOT bodies do not export bindings);
//   * CST predicate invocations have the right arity when the dimension
//     is statically known;
//   * view headers reference existing parent classes and signature
//     targets;
//   * every CST-valued expression in SELECT/WHERE is tagged with its
//     inferred §3 constraint family, with warnings when an operation
//     leaves the polynomial fragment (see family_check.h).
//
// Every finding is a structured Diagnostic with a stable LY0xx code and
// a source span (see diagnostics.h). Check() never fails — it collects
// all findings, continuing past errors clause by clause. Analyze() is
// the legacy strict form: the first error diagnostic becomes a Status.

#ifndef LYRIC_QUERY_ANALYZER_H_
#define LYRIC_QUERY_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "object/database.h"
#include "query/ast.h"
#include "query/diagnostics.h"

namespace lyric {

/// Result of an analysis pass.
struct AnalysisReport {
  /// Variable -> statically inferred class name (object class, "CST(n)",
  /// or a primitive); only variables with a determinable class appear.
  std::map<std::string, std::string> var_classes;
  /// Non-fatal findings, human-readable (mirrors the warning/note
  /// diagnostics for callers predating structured diagnostics).
  std::vector<std::string> warnings;
  /// Every finding, structured: errors, warnings, and family notes.
  std::vector<Diagnostic> diagnostics;
  /// For variables bound via a bracket selector at a CST attribute: the
  /// schema dimension names (e.g. E -> {w, z} for extent : CST(w, z)).
  std::map<std::string, std::vector<std::string>> var_dims;

  bool has_errors() const { return HasErrors(diagnostics); }
};

/// Stateless semantic analyzer over a database's schema.
class Analyzer {
 public:
  explicit Analyzer(const Database* db) : db_(db) {}

  /// Validates `query`, collecting every finding as a Diagnostic. Never
  /// fails: errors are reported and the walk continues with the next
  /// independent clause. When no errors are found, the §3 family pass
  /// runs and appends its LY040-LY045 findings.
  AnalysisReport Check(const ast::Query& query) const;

  /// Strict form: returns the report, or converts the first error
  /// diagnostic into a Status (unknown classes map to NotFound, view
  /// redefinition to AlreadyExists, the rest to TypeError).
  Result<AnalysisReport> Analyze(const ast::Query& query) const;

 private:
  struct Scope;

  // Each Check* emits diagnostics into the report and returns false when
  // it hit an error severe enough to stop the enclosing clause walk.
  bool CheckWhere(const ast::WhereExpr& where, Scope* scope,
                  AnalysisReport* report) const;
  // Checks a path, binding selector variables in `scope`; on success
  // stores the statically known class of the tail into `tail_class`
  // ("" when undeterminable).
  bool CheckPath(const ast::PathExpr& path, Scope* scope,
                 AnalysisReport* report, bool binding_allowed,
                 std::string* tail_class) const;
  bool CheckFormula(const ast::Formula& formula, const Scope& scope,
                    AnalysisReport* report) const;
  bool CheckArith(const ast::ArithExpr& expr, const Scope& scope,
                  AnalysisReport* report) const;

  const Database* db_;
};

/// The status code the strict Analyze() maps an error diagnostic to.
StatusCode DiagCodeToStatusCode(DiagCode code);

/// One-call front end for the lint tools: parses `text` and, when it
/// parses, runs Check(). Parse failures surface as a single LY001/LY002
/// diagnostic. Diagnostics come back sorted by source offset.
struct CheckResult {
  bool parsed = false;
  std::vector<Diagnostic> diagnostics;
  std::map<std::string, std::string> var_classes;
};
CheckResult CheckQueryText(const Database& db, const std::string& text);

}  // namespace lyric

#endif  // LYRIC_QUERY_ANALYZER_H_
