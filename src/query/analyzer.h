// Static semantic analysis of LyriC queries — the typing discipline §2.2
// alludes to ("we do not discuss typing and type errors in XSQL queries
// here"; this module does).
//
// The analyzer validates a parsed query against the schema before any
// data is touched:
//   * FROM classes exist; repeated FROM variables get a consistency note;
//   * every path expression type-checks step by step: the attribute must
//     exist on the statically known class, selectors bind variables of
//     the attribute's target class, CST attributes end paths in CST(n);
//   * variables are bound before use under the evaluator's left-to-right
//     conjunct order (OR branches and NOT bodies do not export bindings);
//   * CST predicate invocations have the right arity when the dimension
//     is statically known;
//   * view headers reference existing parent classes and signature
//     targets.
//
// Hard violations return a Status; softer findings (higher-order
// attribute variables, unknown symbolic oids, comparisons whose kinds
// cannot be checked statically) are collected as warnings.

#ifndef LYRIC_QUERY_ANALYZER_H_
#define LYRIC_QUERY_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "object/database.h"
#include "query/ast.h"

namespace lyric {

/// Result of a successful analysis.
struct AnalysisReport {
  /// Variable -> statically inferred class name (object class, "CST(n)",
  /// or a primitive); only variables with a determinable class appear.
  std::map<std::string, std::string> var_classes;
  /// Non-fatal findings, human-readable.
  std::vector<std::string> warnings;
};

/// Stateless semantic analyzer over a database's schema.
class Analyzer {
 public:
  explicit Analyzer(const Database* db) : db_(db) {}

  /// Validates `query`; returns the report or the first hard violation.
  Result<AnalysisReport> Analyze(const ast::Query& query) const;

 private:
  struct Scope;

  Status AnalyzeWhere(const ast::WhereExpr& where, Scope* scope,
                      AnalysisReport* report) const;
  // Checks a path, binding selector variables in `scope`; returns the
  // statically known class of the tail ("" when undeterminable).
  Result<std::string> AnalyzePath(const ast::PathExpr& path, Scope* scope,
                                  AnalysisReport* report,
                                  bool binding_allowed) const;
  Status AnalyzeFormula(const ast::Formula& formula, const Scope& scope,
                        AnalysisReport* report) const;
  Status AnalyzeArith(const ast::ArithExpr& expr, const Scope& scope,
                      AnalysisReport* report) const;

  const Database* db_;
};

}  // namespace lyric

#endif  // LYRIC_QUERY_ANALYZER_H_
