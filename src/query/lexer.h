// Lexer for the LyriC text syntax.

#ifndef LYRIC_QUERY_LEXER_H_
#define LYRIC_QUERY_LEXER_H_

#include <cstddef>
#include <vector>

#include "query/token.h"
#include "util/result.h"

namespace lyric {

/// Tokenizes `text`; the result always ends with a kEnd token. Comments
/// run from "--" to end of line.
Result<std::vector<Token>> Lex(const std::string& text);

/// Like Lex, but on failure also reports the byte offset of the offending
/// character through `error_offset` (when non-null), for diagnostics with
/// source spans.
Result<std::vector<Token>> Lex(const std::string& text,
                               size_t* error_offset);

}  // namespace lyric

#endif  // LYRIC_QUERY_LEXER_H_
