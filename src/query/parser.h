// Recursive-descent parser for the LyriC text syntax.
//
// Grammar sketch (see ast.h for the shapes):
//
//   query    := [CREATE VIEW ident AS SUBCLASS OF ident]
//               SELECT item (',' item)*
//               [SIGNATURE attr (=>|=>>) class (',' ...)*]
//               FROM class var (',' class var)*
//               [OID FUNCTION OF var (',' var)*]
//               [WHERE cond]
//   item     := [ident '='] (optimize | projection | path)
//   optimize := (MAX|MIN|MAX_POINT|MIN_POINT) '(' arith SUBJECT TO formula ')'
//   projection := '(' '(' var (',' var)* ')' '|' formula ')'
//   cond     := or-tree of: SAT '(' formula ')', formula '|=' formula,
//               path, operand cmp operand, '(' cond ')', NOT cond
//   formula  := or/and/not tree of atoms (chained comparisons allowed:
//               0 <= x <= 10), predicate uses O or O(x1,..,xn) where O is
//               a variable or a path expression, and projections
//   path     := selector ('.' attr ['[' selector ']'])*
//
// Keywords are case-insensitive. The paper's bare-parenthesized WHERE
// constraint test is written SAT(...) here; its |= predicate is verbatim.

#ifndef LYRIC_QUERY_PARSER_H_
#define LYRIC_QUERY_PARSER_H_

#include "query/ast.h"
#include "query/diagnostics.h"
#include "query/token.h"
#include "util/result.h"

namespace lyric {

/// Parses one LyriC query (optionally terminated by ';').
Result<ast::Query> ParseQuery(const std::string& text);

/// Like ParseQuery, but on failure also fills `diag` (when non-null) with
/// an LY001/LY002 diagnostic carrying the source span of the offending
/// token — the structured form the lint tools render with carets.
Result<ast::Query> ParseQuery(const std::string& text, Diagnostic* diag);

/// Parses a standalone CST formula — handy for tests and the API.
Result<ast::Formula> ParseFormula(const std::string& text);

/// Parses one formula from a token stream starting at *pos, advancing
/// *pos past it (used by the storage layer to embed constraint bodies in
/// larger grammars).
Result<ast::Formula> ParseFormulaPrefix(const std::vector<Token>& tokens,
                                        size_t* pos);

}  // namespace lyric

#endif  // LYRIC_QUERY_PARSER_H_
