// Tokens of the LyriC text syntax.

#ifndef LYRIC_QUERY_TOKEN_H_
#define LYRIC_QUERY_TOKEN_H_

#include <string>

#include "arith/rational.h"

namespace lyric {

/// Token kinds. Keywords are matched case-insensitively and mapped onto
/// dedicated kinds; every other identifier is kIdent.
enum class TokenKind {
  kEnd,
  kIdent,    // my_desk, X, drawer
  kNumber,   // 42, 2.5 (payload in `number`)
  kString,   // 'red'
  // Keywords.
  kSelect, kFrom, kWhere, kAnd, kOr, kNot,
  kCreate, kView, kAs, kSubclass, kOf, kOid, kFunction, kSignature,
  kMax, kMin, kMaxPoint, kMinPoint, kSubject, kTo,
  kSat, kContains, kTrue, kFalse, kExists,
  // Punctuation / operators.
  kDot, kComma, kLParen, kRParen, kLBracket, kRBracket, kBar,
  kEq, kNeq, kLe, kLt, kGe, kGt,
  kPlus, kMinus, kStar, kSlash,
  kEntails,   // |=
  kArrow,     // =>   (scalar signature)
  kDArrow,    // =>>  (set-valued signature)
  kAssign,    // :=   (unused, reserved)
  kSemicolon,
};

const char* TokenKindToString(TokenKind kind);

/// One lexed token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // Raw identifier / string payload.
  Rational number;    // kNumber payload.
  size_t offset = 0;  // Byte offset in the query text.
};

}  // namespace lyric

#endif  // LYRIC_QUERY_TOKEN_H_
